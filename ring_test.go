package ring_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ring"
)

func startCluster(t *testing.T) (*ring.Cluster, *ring.Client) {
	t.Helper()
	cl, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2, Spares: 1,
		Memgests: []ring.Scheme{ring.Rep(1, 3), ring.Rep(3, 3), ring.SRS(3, 2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return cl, c
}

func TestFacadeQuickstart(t *testing.T) {
	_, c := startCluster(t)
	if _, err := c.Put("greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, ver, err := c.Get("greeting")
	if err != nil || string(val) != "hello" || ver != 1 {
		t.Fatalf("get: %q v%d %v", val, ver, err)
	}
	// Raise resilience: replicate, then erasure code.
	if _, err := c.Move("greeting", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Move("greeting", 3); err != nil {
		t.Fatal(err)
	}
	val, ver, err = c.Get("greeting")
	if err != nil || string(val) != "hello" || ver != 3 {
		t.Fatalf("after moves: %q v%d %v", val, ver, err)
	}
	if err := c.Delete("greeting"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("greeting"); !errors.Is(err, ring.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestFacadeMemgestManagement(t *testing.T) {
	_, c := startCluster(t)
	id, err := c.CreateMemgest(ring.SRS(2, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := c.GetMemgestDescriptor(id)
	if err != nil || sc.K != 2 || sc.M != 1 || sc.S != 3 {
		t.Fatalf("descriptor %v %v", sc, err)
	}
	if err := c.SetDefaultMemgest(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteMemgest(id); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSurvivesNodeFailure(t *testing.T) {
	cl, c := startCluster(t)
	var vals [][]byte
	for i := 0; i < 10; i++ {
		v := bytes.Repeat([]byte{byte(i)}, 256)
		if _, err := c.PutIn(fmt.Sprintf("k%d", i), v, 3); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	cl.KillNode(1) // a coordinator
	for i := 0; i < 10; i++ {
		got, _, err := c.Get(fmt.Sprintf("k%d", i))
		if err != nil || !bytes.Equal(got, vals[i]) {
			t.Fatalf("k%d after failure: %v", i, err)
		}
	}
}

func TestFacadeVersioning(t *testing.T) {
	cl, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2,
		Memgests:          []ring.Scheme{ring.SRS(3, 2, 3), ring.Rep(1, 3)},
		KeepDurableBackup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if _, err := c.PutIn("vk", []byte("durable"), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.PutIn("vk", []byte(fmt.Sprintf("fast-%d", i)), 2); err != nil {
			t.Fatal(err)
		}
	}
	// Newest is the last unreliable write.
	val, ver, err := c.Get("vk")
	if err != nil || string(val) != "fast-9" || ver != 11 {
		t.Fatalf("newest: %q v%d %v", val, ver, err)
	}
	// The pinned durable backup is still readable by version.
	val, ver, err = c.GetVersion("vk", 1)
	if err != nil || string(val) != "durable" || ver != 1 {
		t.Fatalf("backup: %q v%d %v", val, ver, err)
	}
	// A middle unreliable version was GCed.
	if _, _, err := c.GetVersion("vk", 5); !errors.Is(err, ring.ErrNotFound) {
		t.Fatalf("GCed version: %v", err)
	}
}
