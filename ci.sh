#!/bin/sh
# ci.sh [stage] — the checks a change must pass before merging. With no
# argument every stage runs sequentially (the local pre-push flow);
# .github/workflows/ci.yml fans the stages out as three parallel jobs:
#
# lint — fast static gate:
#   1. formatting: gofmt must be a no-op across the tree
#   2. go vet across the tree
#   3. ringlint: the project-specific analyzers (internal/lint) over
#      the whole tree — hot-path allocation, sim determinism, sleepy
#      tests, atomic-field discipline, wire-protocol pairing, ack
#      ordering (quorum, persistence, and transition-journal barriers).
#      Any finding fails the build; exemptions are //ring: directives
#      in the source, where review can see them.
#   4. external static analysis, version-pinned: staticcheck and
#      govulncheck. Both run via `go run tool@version`, so they need
#      module-proxy access; offline runs skip them with a warning
#      while CI (which always has network) enforces them.
#
# test — the tier-1 gate:
#   5. everything builds, every test passes
#   6. the concurrency-heavy packages under the race detector
#      (the simulator-driven experiments are legitimately slow there,
#      hence the generous timeout); the durable path — replog engine,
#      core crash-recovery e2e, sim disk fault plane — rides in
#      ./internal/... and so runs under -race here too
#
# chaos — fuzz, bench, and the chaos/BENCH canaries:
#   7. fuzz smoke: each fuzz target runs for 10s — long enough to
#      catch a round-trip regression, short enough for every push.
#      FuzzWALReplay is the durability one: arbitrary bytes as a WAL
#      segment must replay without panicking and re-replay identically.
#   8. bench smoke: every benchmark compiles and runs one iteration,
#      output saved to bench.txt (uploaded as a CI artifact)
#   9. chaos smoke: three fixed ringchaos seeds through the full
#      seed -> schedule -> workload -> linearizability-check pipeline,
#      three -durable seeds over the disk fault plane (kill -9 +
#      recover-from-disk, WAL corruption, fsync faults), and three
#      -elasticity seeds mixing live scheme conversions and join/leave
#      resizes into the fault schedule, hard-bounded at 30s each. The
#      deep seed sweeps run nightly
#      (.github/workflows/nightly-chaos.yml); this is the per-push
#      canary that the chaos harness itself still works.
#  10. BENCH trajectory: scripts/cluster.sh boots a real 5-process
#      cluster over TCP, drives it with cmd/ringload (GF kernels +
#      closed-loop rep3 and srs3.2, plus the rep3+bulkconv elasticity
#      row: the same workload measured during a continuous background
#      bulk conversion), then re-runs the suite on durable clusters
#      (DURABLE=1: -data-dir with fsync=always and fsync=interval —
#      the durability-tax rows), writes BENCH_10.json, and fails on a
#      >10% ops/sec or GB/s regression against the newest committed
#      BENCH_*.json (a no-op for rows the trajectory has no earlier
#      point for). The file is uploaded as a CI artifact.
set -ex

# Version pins for the external analyzers. CI caches on these; bump
# deliberately.
STATICCHECK_VERSION=2024.1.1
GOVULNCHECK_VERSION=v1.1.3

stage_lint() {
    test -z "$(gofmt -l .)"
    go vet ./...

    go build -o bin/ringlint ./cmd/ringlint
    ./bin/ringlint ./...

    # External analyzers: enforced whenever the module proxy is
    # reachable (always true in CI), skipped with a loud warning when
    # offline.
    if go run "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" -version >/dev/null 2>&1; then
        go run "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" ./...
        go run "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}" ./...
    else
        echo "WARNING: module proxy unreachable; skipping staticcheck + govulncheck (CI enforces them)" >&2
    fi
}

stage_test() {
    go build ./...
    go test ./...
    go test -race -timeout 900s ./internal/...
}

stage_chaos() {
    go test -run=NONE -fuzz=FuzzWireRoundTrip -fuzztime=10s ./internal/proto/
    go test -run=NONE -fuzz=FuzzSRSRoundTrip -fuzztime=10s ./internal/srs/
    go test -run=NONE -fuzz=FuzzGFKernels -fuzztime=10s ./internal/gf/
    go test -run=NONE -fuzz=FuzzWALReplay -fuzztime=10s ./internal/wal/
    go test -run=NONE -fuzz=FuzzCFGBuild -fuzztime=10s ./internal/lint/flow/

    go test -run=NONE -bench=. -benchtime=1x ./... | tee bench.txt

    go build -o bin/ringchaos ./cmd/ringchaos
    timeout 30 ./bin/ringchaos -seeds 1:3 -v
    timeout 30 ./bin/ringchaos -durable -seeds 1:3 -v
    timeout 30 ./bin/ringchaos -elasticity -seeds 1:3 -v

    DURABLE=1 BENCH_OUT=BENCH_10.json ISSUE=10 PREV_DIR=. DURATION=3s timeout 300 scripts/cluster.sh
}

case "${1:-all}" in
lint) stage_lint ;;
test) stage_test ;;
chaos) stage_chaos ;;
all)
    stage_lint
    stage_test
    stage_chaos
    ;;
*)
    echo "usage: ci.sh [lint|test|chaos]" >&2
    exit 2
    ;;
esac
