#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. formatting: gofmt must be a no-op across the tree
#   2. tier-1 gate: everything builds, every test passes
#   3. go vet across the tree
#   4. the concurrency-heavy packages under the race detector
#      (the simulator-driven experiments are legitimately slow there,
#      hence the generous timeout)
#   5. bench smoke: every benchmark compiles and runs one iteration,
#      output saved to bench.txt (uploaded as a CI artifact)
set -ex

test -z "$(gofmt -l .)"
go build ./...
go test ./...
go vet ./...
go test -race -timeout 900s ./internal/...
go test -run=NONE -bench=. -benchtime=1x ./... | tee bench.txt
