// Package ring is a strongly consistent, distributed, in-memory
// key-value store with per-item resilience management, a from-scratch
// Go implementation of the system described in "Fast and
// strongly-consistent per-item resilience in key-value stores"
// (Taranov, Alonso, Hoefler; EuroSys 2018).
//
// Every key lives in a single strongly consistent namespace, but each
// key-value pair can be stored under its own storage scheme — a
// "memgest" — ranging from unreliable single copies (Rep(1,s)) through
// quorum replication (Rep(r,s)) to Stretched Reed-Solomon erasure
// coding (SRS(k,m,s)). Stretched Reed-Solomon spreads the data blocks
// of an RS(k,m) code over s >= k nodes so that every scheme shares the
// key-to-node mapping i = h(key) mod s; keys are found without knowing
// their scheme and can be moved between schemes with a purely local
// operation on their coordinator.
//
// The package is a facade over the full implementation: an embedded
// in-process cluster for applications and tests, plus the types needed
// to talk to a TCP deployment started with cmd/ringd.
//
//	cluster, _ := ring.Start(ring.Config{
//		Shards: 3, Redundant: 2, Spares: 1,
//		Memgests: []ring.Scheme{ring.Rep(1, 3), ring.Rep(3, 3), ring.SRS(3, 2, 3)},
//	})
//	defer cluster.Stop()
//	c, _ := cluster.NewClient()
//	c.PutIn("hot-item", value, 2)  // replicated 3x
//	c.Move("hot-item", 3)          // re-encode as SRS(3,2,3), locally
package ring

import (
	"fmt"
	"time"

	"ring/internal/client"
	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/status"
)

// Scheme describes a storage scheme (memgest descriptor).
type Scheme = proto.Scheme

// MemgestID identifies a memgest.
type MemgestID = proto.MemgestID

// Version numbers versions of a key.
type Version = proto.Version

// Rep builds a replication descriptor Rep(r,s); r=1 is the unreliable
// scheme.
func Rep(r, s int) Scheme { return proto.Rep(r, s) }

// SRS builds a Stretched Reed-Solomon descriptor SRS(k,m,s).
func SRS(k, m, s int) Scheme { return proto.SRS(k, m, s) }

// ErrNotFound is returned by Get, Delete and Move for missing keys.
var ErrNotFound = client.ErrNotFound

// Config describes an embedded cluster.
type Config struct {
	// Shards is s: the number of key shards / coordinator nodes.
	Shards int
	// Redundant is d: the number of redundancy nodes, bounding the
	// parity count of SRS memgests (m <= d) and the replication factor
	// of Rep memgests (r <= s+d).
	Redundant int
	// Spares is the number of idle nodes ready to replace failures.
	Spares int
	// Memgests are created at boot with IDs 1..n; the first is the
	// default storage scheme.
	Memgests []Scheme
	// BlockSize is the SRS logical block capacity (default 64 KiB).
	BlockSize int
	// HeartbeatEvery and FailAfter tune the failure detector.
	HeartbeatEvery time.Duration
	FailAfter      time.Duration
	// KeepVersions retains that many superseded committed versions of
	// each key (default 0: GC after every committed put).
	KeepVersions int
	// KeepDurableBackup pins the newest committed version stored in a
	// reliable scheme while newer versions live in the unreliable
	// Rep(1) memgest — the paper's "preserving previous reliable
	// copies" for the heavy-updates use case.
	KeepDurableBackup bool
}

// Cluster is an embedded in-process Ring deployment: every node runs
// as a goroutine-driven state machine over an in-memory fabric, with
// the same protocol, replication, recovery, and failure handling as a
// TCP deployment.
type Cluster struct {
	inner *core.Cluster
}

// Start boots an embedded cluster.
func Start(cfg Config) (*Cluster, error) {
	spec := core.ClusterSpec{
		Shards:    cfg.Shards,
		Redundant: cfg.Redundant,
		Spares:    cfg.Spares,
		Memgests:  cfg.Memgests,
		Opts: core.Options{
			BlockSize:         cfg.BlockSize,
			HeartbeatEvery:    cfg.HeartbeatEvery,
			FailAfter:         cfg.FailAfter,
			KeepVersions:      cfg.KeepVersions,
			KeepDurableBackup: cfg.KeepDurableBackup,
		},
	}
	inner, err := core.StartCluster(spec)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Stop shuts down every node.
func (c *Cluster) Stop() { c.inner.Stop() }

// KillNode crashes one node (for failure testing); the leader will
// promote a spare. Node IDs are assigned 0..s+d+n-1 in role order
// (coordinators, redundant, spares).
func (c *Cluster) KillNode(id uint32) { c.inner.Kill(proto.NodeID(id)) }

// StatusServer serves one node's monitoring endpoints over HTTP:
// /status, /metrics, /debug/ringvars, and /debug/trace.
type StatusServer = status.Server

// ServeStatus starts the monitoring endpoints for one node of the
// embedded cluster on addr ("127.0.0.1:0" picks a free port; the
// server's Addr reports it). `ringctl stats -http <addr,...>` can then
// aggregate the cluster.
func (c *Cluster) ServeStatus(nodeID uint32, addr string) (*StatusServer, error) {
	r, ok := c.inner.Runs[proto.NodeID(nodeID)]
	if !ok {
		return nil, fmt.Errorf("ring: no node %d", nodeID)
	}
	return status.Serve(r, addr)
}

// NewClient connects a client to the embedded cluster.
func (c *Cluster) NewClient() (*Client, error) {
	inner, err := client.Dial(c.inner.Fabric, []string{core.NodeAddr(c.inner.Cfg.Leader)}, client.Options{})
	if err != nil {
		return nil, err
	}
	return &Client{inner: inner}, nil
}

// Client is a synchronous Ring client, safe for concurrent use.
type Client struct {
	inner *client.Client
}

// Close releases the client.
func (c *Client) Close() { c.inner.Close() }

// Put stores value under key in the default memgest and returns the
// committed version.
func (c *Client) Put(key string, value []byte) (Version, error) {
	return c.inner.Put(key, value)
}

// PutIn stores value under key in a specific memgest.
func (c *Client) PutIn(key string, value []byte, mg MemgestID) (Version, error) {
	return c.inner.PutIn(key, value, mg)
}

// Get returns the value and version of key's newest committed version.
func (c *Client) Get(key string) ([]byte, Version, error) {
	return c.inner.Get(key)
}

// GetVersion returns a specific retained version of key (0 = newest);
// with Config.KeepVersions > 0 this reads the preserved older copy —
// e.g. the last reliable version of a key currently parked in the
// unreliable memgest.
func (c *Client) GetVersion(key string, ver Version) ([]byte, Version, error) {
	return c.inner.GetVersion(key, ver)
}

// Delete removes key.
func (c *Client) Delete(key string) error { return c.inner.Delete(key) }

// Move transfers key to another memgest without resending its value;
// thanks to SRS coding the re-encode is local to the coordinator.
func (c *Client) Move(key string, mg MemgestID) (Version, error) {
	return c.inner.Move(key, mg)
}

// CreateMemgest instantiates a new storage scheme at runtime.
func (c *Client) CreateMemgest(sc Scheme) (MemgestID, error) {
	return c.inner.CreateMemgest(sc)
}

// DeleteMemgest removes a memgest; keys stored only in it are lost.
func (c *Client) DeleteMemgest(id MemgestID) error {
	return c.inner.DeleteMemgest(id)
}

// SetDefaultMemgest selects the scheme used by Put.
func (c *Client) SetDefaultMemgest(id MemgestID) error {
	return c.inner.SetDefaultMemgest(id)
}

// GetMemgestDescriptor returns a memgest's scheme.
func (c *Client) GetMemgestDescriptor(id MemgestID) (Scheme, error) {
	return c.inner.GetMemgestDescriptor(id)
}

// ------------------------------------------------- asynchronous operations

// PutFuture resolves an asynchronous put; Wait returns the committed
// version.
type PutFuture = client.PutFuture

// GetFuture resolves an asynchronous get; Wait returns value and
// version.
type GetFuture = client.GetFuture

// DeleteFuture resolves an asynchronous delete.
type DeleteFuture = client.DeleteFuture

// Pipeline issues asynchronous operations with a bounded number
// outstanding; see Client.NewPipeline.
type Pipeline = client.Pipeline

// PutAsync stores value under key in the default memgest without
// waiting for the commit; many puts can be kept in flight at once.
func (c *Client) PutAsync(key string, value []byte) *PutFuture {
	return c.inner.PutAsync(key, value)
}

// PutInAsync stores value under key in a specific memgest without
// waiting.
func (c *Client) PutInAsync(key string, value []byte, mg MemgestID) *PutFuture {
	return c.inner.PutInAsync(key, value, mg)
}

// GetAsync fetches key's newest committed value without waiting.
func (c *Client) GetAsync(key string) *GetFuture { return c.inner.GetAsync(key) }

// DeleteAsync removes key without waiting for the commit.
func (c *Client) DeleteAsync(key string) *DeleteFuture { return c.inner.DeleteAsync(key) }

// NewPipeline creates a pipeline over this client bounded to depth
// outstanding operations (<= 0 selects 16): issue calls block only
// while the bound is reached, and Flush waits for all completions.
func (c *Client) NewPipeline(depth int) *Pipeline { return c.inner.NewPipeline(depth) }
