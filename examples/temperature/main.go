// Temperature: transparent multi-temperature data management (the
// first use case of Section 2). A tracker counts accesses per key;
// keys that turn hot are promoted into replicated storage for
// performance, keys that cool down are demoted into erasure-coded
// storage for memory savings — all with move requests, invisibly to
// readers, under full strong consistency.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ring"
)

const (
	mgHot  ring.MemgestID = 1 // Rep(3,3): fast, 3x memory
	mgCold ring.MemgestID = 2 // SRS(3,2,3): slower puts, 1.66x memory
)

// tracker is a simple exponential-decay temperature tracker, the kind
// of standard scheme the paper cites for classifying data.
type tracker struct {
	temp map[string]float64
}

func (t *tracker) touch(key string) { t.temp[key] += 1 }
func (t *tracker) decay() {
	for k := range t.temp {
		t.temp[k] *= 0.5
	}
}

func main() {
	cluster, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2,
		Memgests: []ring.Scheme{ring.Rep(3, 3), ring.SRS(3, 2, 3)},
		// Size the SRS heaps for the 200 KiB working set per shard.
		BlockSize: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	c, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Load a working set of 200 items into cold storage.
	const items = 200
	value := make([]byte, 1024)
	placement := make(map[string]ring.MemgestID)
	for i := 0; i < items; i++ {
		key := fmt.Sprintf("item:%03d", i)
		if _, err := c.PutIn(key, value, mgCold); err != nil {
			log.Fatal(err)
		}
		placement[key] = mgCold
	}

	tr := &tracker{temp: make(map[string]float64)}
	rng := rand.New(rand.NewSource(1))

	// Simulate several epochs of skewed access: 90% of reads hit 10%
	// of the keys, and the hot set shifts every epoch.
	for epoch := 0; epoch < 4; epoch++ {
		hotBase := epoch * 20
		for op := 0; op < 2000; op++ {
			var key string
			if rng.Float64() < 0.9 {
				key = fmt.Sprintf("item:%03d", hotBase+rng.Intn(items/10))
			} else {
				key = fmt.Sprintf("item:%03d", rng.Intn(items))
			}
			if _, _, err := c.Get(key); err != nil {
				log.Fatal(err)
			}
			tr.touch(key)
		}

		// Temperature pass: promote hot keys, demote cooled ones.
		promoted, demoted := 0, 0
		for key, mg := range placement {
			hot := tr.temp[key] > 50
			switch {
			case hot && mg == mgCold:
				if _, err := c.Move(key, mgHot); err != nil {
					log.Fatal(err)
				}
				placement[key] = mgHot
				promoted++
			case !hot && mg == mgHot:
				if _, err := c.Move(key, mgCold); err != nil {
					log.Fatal(err)
				}
				placement[key] = mgCold
				demoted++
			}
		}
		tr.decay()

		hotCount := 0
		for _, mg := range placement {
			if mg == mgHot {
				hotCount++
			}
		}
		// Memory footprint: hot keys cost 3x, cold keys 1.66x.
		mem := float64(hotCount)*3 + float64(items-hotCount)*5.0/3.0
		allHot := float64(items) * 3
		fmt.Printf("epoch %d: promoted %3d, demoted %3d, hot=%3d/%d, memory %.0f units (%.0f%% of all-hot)\n",
			epoch, promoted, demoted, hotCount, items, mem*1.024, 100*mem/allHot)
	}
	fmt.Println("every key stayed strongly consistent and readable throughout")
}
