// Quickstart: boot the paper's 5-node deployment (3 coordinators, 2
// redundancy nodes) with the seven memgests of Figure 3, then walk a
// key through the API: put, get, move across resilience levels,
// runtime memgest creation, and delete — and watch the whole thing
// through the observability layer (/debug/ringvars + the aggregated
// stats view behind `ringctl stats -watch`).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ring"
	"ring/internal/status"
)

func main() {
	cluster, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2, Spares: 1,
		Memgests: []ring.Scheme{
			ring.Rep(1, 3),    // 1: unreliable, fastest
			ring.Rep(2, 3),    // 2
			ring.Rep(3, 3),    // 3: classic triplication
			ring.Rep(4, 3),    // 4
			ring.SRS(2, 1, 3), // 5: stretched RS(2,1)
			ring.SRS(3, 1, 3), // 6
			ring.SRS(3, 2, 3), // 7: RS(3,2), 1.66x storage
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Expose every node's monitoring endpoints; a real deployment gets
	// the same from `ringd -http`.
	var statusAddrs []string
	for id := uint32(0); id < 6; id++ { // 3 coords + 2 redundant + 1 spare
		srv, err := cluster.ServeStatus(id, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		statusAddrs = append(statusAddrs, srv.Addr())
	}

	c, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Put into the default memgest (the unreliable Rep(1,3)).
	ver, err := c.Put("user:42", []byte(`{"name":"ada"}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put user:42 -> version %d in Rep(1,3)\n", ver)

	// The key's importance grew: replicate it three-fold. The value is
	// not resent — the coordinator re-homes it locally.
	if ver, err = c.Move("user:42", 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("move user:42 -> version %d in Rep(3,3)\n", ver)

	// It cooled down: erasure-code it to cut memory from 3x to 1.66x.
	if ver, err = c.Move("user:42", 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("move user:42 -> version %d in SRS(3,2,3)\n", ver)

	// Reads never need to know the storage scheme.
	val, ver, err := c.Get("user:42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get user:42 -> %s (version %d)\n", val, ver)

	// Storage schemes are managed at runtime.
	id, err := c.CreateMemgest(ring.SRS(2, 2, 3))
	if err != nil {
		log.Fatal(err)
	}
	sc, _ := c.GetMemgestDescriptor(id)
	fmt.Printf("created memgest %d: %v (tolerates %d failures, %.2fx storage)\n",
		id, sc, sc.Tolerates(), sc.StorageOverhead())
	if _, err := c.PutIn("config:theme", []byte("dark"), id); err != nil {
		log.Fatal(err)
	}

	if err := c.Delete("user:42"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deleted user:42")

	// Finally, watch the cluster the way an operator would: scrape and
	// aggregate every node's /debug/ringvars a couple of times — the
	// exact loop behind `ringctl stats -watch`.
	fmt.Println("\ncluster stats (ringctl stats -watch):")
	if err := status.WatchStats(os.Stdout, statusAddrs, 100*time.Millisecond, 2); err != nil {
		log.Fatal(err)
	}
}
