// Auction: the heavy-updates use case of Section 2. Items in an online
// auction live in reliable erasure-coded storage; when the bidding
// frenzy of the final seconds arrives, the item is moved to the
// unreliable high-performance memgest to absorb the update storm, and
// a durable backup version is kept by the versioning machinery
// (KeepVersions). After the auction closes, the final state is moved
// back to reliable storage.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"ring"
)

const (
	mgReliable ring.MemgestID = 1 // SRS(3,2,3)
	mgFast     ring.MemgestID = 2 // Rep(1,3): immediate commits
)

func main() {
	cluster, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2,
		Memgests: []ring.Scheme{ring.SRS(3, 2, 3), ring.Rep(1, 3)},
		// Pin the last reliable version while the live item churns in
		// the unreliable memgest — even a node crash cannot lose more
		// than the in-frenzy bids.
		KeepDurableBackup: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	c, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	bid := func(amount uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, amount)
		return b
	}
	amount := func(v []byte) uint64 { return binary.LittleEndian.Uint64(v) }

	// The item starts reliably stored.
	if _, err := c.PutIn("auction:lot-7", bid(100), mgReliable); err != nil {
		log.Fatal(err)
	}
	fmt.Println("lot-7 listed at 100 in SRS(3,2,3)")

	// Final seconds: move to the fast memgest before the storm.
	moveVer, err := c.Move("auction:lot-7", mgFast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bidding frenzy detected -> moved to Rep(1,3)")

	// KeepVersions preserved the erasure-coded copy: even while the
	// live item is in unreliable storage, the last durable state is
	// still readable (and survives a node crash).
	backup, backupVer, err := c.GetVersion("auction:lot-7", moveVer-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable backup still readable: bid %d at version %d in SRS(3,2,3)\n",
		amount(backup), backupVer)

	// A burst of concurrent bidders. Each reads the current high bid
	// and overbids; versioning keeps writes strongly ordered.
	const bidders, bidsEach = 8, 50
	start := time.Now()
	var wg sync.WaitGroup
	for b := 0; b < bidders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			bc, err := cluster.NewClient()
			if err != nil {
				log.Fatal(err)
			}
			defer bc.Close()
			for i := 0; i < bidsEach; i++ {
				cur, _, err := bc.Get("auction:lot-7")
				if err != nil {
					log.Fatal(err)
				}
				if _, err := bc.PutIn("auction:lot-7", bid(amount(cur)+1), mgFast); err != nil {
					log.Fatal(err)
				}
			}
		}(b)
	}
	wg.Wait()
	elapsed := time.Since(start)

	val, ver, err := c.Get("auction:lot-7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bids absorbed in %v (%.0f updates/sec), final bid %d at version %d\n",
		bidders*bidsEach, elapsed.Round(time.Millisecond),
		float64(bidders*bidsEach)/elapsed.Seconds(), amount(val), ver)

	// Auction closed: persist the outcome reliably again.
	if _, err := c.Move("auction:lot-7", mgReliable); err != nil {
		log.Fatal(err)
	}
	val, ver, _ = c.Get("auction:lot-7")
	fmt.Printf("closed -> final bid %d committed to SRS(3,2,3) as version %d\n", amount(val), ver)
}
