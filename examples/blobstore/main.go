// Blobstore: the temporary-blob / write-commit pattern of Section 2
// (block blobs on Azure Storage). Uploads land in the unreliable
// memgest — no replication cost while the user is still deciding —
// and are either committed (moved to erasure-coded storage with one
// request, no data resent) or discarded by a TTL janitor. The memory
// footprint of an uncommitted blob is S*tau instead of S*O*tau.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ring"
)

const (
	mgStaging    ring.MemgestID = 1 // Rep(1,3)
	mgPersistent ring.MemgestID = 2 // SRS(3,2,3)
)

type session struct {
	key      string
	uploaded time.Time
}

func main() {
	cluster, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2,
		Memgests:  []ring.Scheme{ring.Rep(1, 3), ring.SRS(3, 2, 3)},
		BlockSize: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	c, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(7))
	const ttl = 150 * time.Millisecond
	var pending []session
	committed, discarded := 0, 0
	var stagedBytes, persistedBytes int

	upload := func(i int) {
		blob := make([]byte, 8<<10)
		rng.Read(blob)
		key := fmt.Sprintf("blob:%04d", i)
		if _, err := c.PutIn(key, blob, mgStaging); err != nil {
			log.Fatal(err)
		}
		pending = append(pending, session{key: key, uploaded: time.Now()})
		stagedBytes += len(blob)
	}

	// The janitor discards blobs whose session expired uncommitted.
	janitor := func() {
		keep := pending[:0]
		for _, s := range pending {
			if time.Since(s.uploaded) > ttl {
				if err := c.Delete(s.key); err != nil {
					log.Fatal(err)
				}
				discarded++
				continue
			}
			keep = append(keep, s)
		}
		pending = keep
	}

	// Simulate users: upload, edit (overwrite in staging), then 60%
	// commit and 40% walk away.
	for i := 0; i < 60; i++ {
		upload(i)
		// Apply a "filter": overwrite the staged blob. Still cheap —
		// Rep(1) commits immediately.
		edited := make([]byte, 8<<10)
		rng.Read(edited)
		if _, err := c.PutIn(pending[len(pending)-1].key, edited, mgStaging); err != nil {
			log.Fatal(err)
		}
		if rng.Float64() < 0.6 {
			// Commit: one move request, ~5µs in the paper's testbed;
			// the blob bytes never leave the cluster.
			s := pending[len(pending)-1]
			if _, err := c.Move(s.key, mgPersistent); err != nil {
				log.Fatal(err)
			}
			pending = pending[:len(pending)-1]
			committed++
			persistedBytes += 8 << 10
		}
		if i%10 == 9 {
			time.Sleep(ttl / 3)
			janitor()
		}
	}
	time.Sleep(ttl + 50*time.Millisecond)
	janitor()

	// Committed blobs are durable and readable; discarded ones gone.
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("blob:%04d", i)
		_, _, err := c.Get(key)
		if err != nil && err != ring.ErrNotFound {
			log.Fatal(err)
		}
	}

	const overhead = 5.0 / 3.0 // SRS(3,2) storage factor
	naive := float64(stagedBytes) * overhead
	actual := float64(persistedBytes)*overhead + float64(stagedBytes-persistedBytes)
	fmt.Printf("blobs: %d committed, %d discarded, %d still pending\n", committed, discarded, len(pending))
	fmt.Printf("staging memory: %.0f KiB actually used vs %.0f KiB if everything were stored reliably up front (%.0f%% saved on uncommitted data)\n",
		actual/1024, naive/1024, 100*(1-actual/naive))
}
