// Pagerank: the "importance of the data" use case of Section 2. In
// iterative algorithms the cost of losing intermediate state grows
// with every iteration — recomputing from scratch gets more expensive.
// This example runs PageRank over a small synthetic graph, storing the
// rank vector shards in Ring and *raising their resilience as the
// computation progresses*: early iterations live in the unreliable
// memgest (cheap to lose, cheap to redo), later iterations are moved
// into replicated and finally erasure-coded storage with single move
// requests.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"ring"
)

const (
	mgCheap    ring.MemgestID = 1 // Rep(1,3)
	mgSafer    ring.MemgestID = 2 // Rep(2,3)
	mgDurable  ring.MemgestID = 3 // SRS(3,2,3)
	nodes                     = 120
	iterations                = 12
	damping                   = 0.85
)

// memgestFor implements the escalation policy: the deeper into the
// computation, the more expensive a loss, the stronger the scheme.
func memgestFor(iter int) ring.MemgestID {
	switch {
	case iter < iterations/3:
		return mgCheap
	case iter < 2*iterations/3:
		return mgSafer
	default:
		return mgDurable
	}
}

func encode(ranks []float64) []byte {
	buf := make([]byte, 8*len(ranks))
	for i, r := range ranks {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(r))
	}
	return buf
}

func decode(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

func main() {
	cluster, err := ring.Start(ring.Config{
		Shards: 3, Redundant: 2,
		Memgests:  []ring.Scheme{ring.Rep(1, 3), ring.Rep(2, 3), ring.SRS(3, 2, 3)},
		BlockSize: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	c, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A random sparse directed graph.
	rng := rand.New(rand.NewSource(42))
	out := make([][]int, nodes)
	for u := 0; u < nodes; u++ {
		deg := 1 + rng.Intn(5)
		for d := 0; d < deg; d++ {
			out[u] = append(out[u], rng.Intn(nodes))
		}
	}

	ranks := make([]float64, nodes)
	for i := range ranks {
		ranks[i] = 1.0 / nodes
	}

	current := mgCheap
	for iter := 0; iter < iterations; iter++ {
		next := make([]float64, nodes)
		for i := range next {
			next[i] = (1 - damping) / nodes
		}
		for u := 0; u < nodes; u++ {
			share := damping * ranks[u] / float64(len(out[u]))
			for _, v := range out[u] {
				next[v] += share
			}
		}
		ranks = next

		// Persist this iteration's state at the appropriate resilience.
		want := memgestFor(iter)
		if _, err := c.PutIn("pagerank/state", encode(ranks), want); err != nil {
			log.Fatal(err)
		}
		if want != current {
			fmt.Printf("iteration %2d: escalated resilience -> memgest %d\n", iter, want)
			current = want
		}
	}

	// The final state is durably erasure coded; read it back and show
	// the top-ranked vertices.
	stored, ver, err := c.Get("pagerank/state")
	if err != nil {
		log.Fatal(err)
	}
	final := decode(stored)
	best, bestRank := 0, 0.0
	var sum float64
	for i, r := range final {
		sum += r
		if r > bestRank {
			best, bestRank = i, r
		}
	}
	sc, _ := c.GetMemgestDescriptor(mgDurable)
	fmt.Printf("converged after %d iterations (version %d, stored as %v)\n", iterations, ver, sc)
	fmt.Printf("rank mass %.4f, top vertex %d with rank %.5f\n", sum, best, bestRank)
	fmt.Println("early iterations were cheap to store; the expensive-to-recompute tail is durable")
}
