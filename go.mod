module ring

go 1.22
