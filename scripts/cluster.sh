#!/usr/bin/env bash
# cluster.sh — one-command multi-process benchmark: build ringd and
# ringload, launch an N-node Ring cluster as real OS processes over
# TCP loopback, drive it with the load generator, and tear it down.
#
# Usage:
#   scripts/cluster.sh                    # 5-node rep3+srs3.2, BENCH suite
#   scripts/cluster.sh -mode open -rate 5000 -duration 10s
#
# Environment knobs:
#   NODES=5        cluster size (shards=3, redundant=2 fixed by default)
#   RING_GROUPS=1  memgest groups per node (one core each; see ringd -groups)
#   BASE_PORT=7400 first TCP port (node i uses BASE_PORT + i*RING_GROUPS)
#   BLOCK_SIZE=    SRS logical block size; the SRS memgest holds
#                  lcm(k,s) blocks total, so it must cover the key
#                  space times a couple of retained versions
#                  (default 4 MiB, ~12 MiB of SRS capacity)
#   DURATION=5s    measurement window per scheme
#   BENCH_OUT=     write a benchjson trajectory file (e.g. BENCH_6.json)
#   PREV_DIR=      gate against committed BENCH_*.json in this directory
#   ISSUE=6        issue number recorded in BENCH_OUT
#
# Any extra arguments are passed to ringload verbatim; with none, the
# full BENCH suite (GF kernels + closed-loop rep3 and srs3.2) runs.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${NODES:-5}"
# RING_GROUPS, not GROUPS: bash reserves GROUPS (the user's group
# list) and silently ignores assignments to it.
RING_GROUPS="${RING_GROUPS:-1}"
case "$NODES" in ''|*[!0-9]*|0) NODES=5 ;; esac
case "$RING_GROUPS" in ''|*[!0-9]*|0) RING_GROUPS=1 ;; esac
BASE_PORT="${BASE_PORT:-7400}"
BLOCK_SIZE="${BLOCK_SIZE:-$((4 << 20))}"
DURATION="${DURATION:-5s}"
ISSUE="${ISSUE:-6}"

mkdir -p bin
go build -o bin/ringd ./cmd/ringd
go build -o bin/ringload ./cmd/ringload

ringd_log="$(mktemp)"
./bin/ringd -launch "$NODES" -base-port "$BASE_PORT" -groups "$RING_GROUPS" \
  -shards 3 -redundant 2 -memgests rep3,srs3.2 -block-size "$BLOCK_SIZE" \
  >"$ringd_log" 2>&1 &
launcher=$!
trap 'kill "$launcher" 2>/dev/null || true; wait "$launcher" 2>/dev/null || true' EXIT

# The launcher prints RING_NODES=<addr,...> once the children are spawned.
nodes=""
for _ in $(seq 1 50); do
  nodes="$(sed -n 's/^RING_NODES=//p' "$ringd_log" | head -1)"
  [ -n "$nodes" ] && break
  kill -0 "$launcher" 2>/dev/null || { cat "$ringd_log"; echo "cluster.sh: launcher died" >&2; exit 1; }
  sleep 0.1
done
[ -n "$nodes" ] || { cat "$ringd_log"; echo "cluster.sh: no RING_NODES from launcher" >&2; exit 1; }
echo "cluster.sh: cluster up on $nodes (groups=$RING_GROUPS)"

args=(-nodes "$nodes" -groups "$RING_GROUPS" -duration "$DURATION" -issue "$ISSUE")
[ -n "${BENCH_OUT:-}" ] && args+=(-bench-out "$BENCH_OUT")
[ -n "${PREV_DIR:-}" ] && args+=(-prev-dir "$PREV_DIR")
if [ "$#" -gt 0 ]; then
  args+=("$@")
else
  args+=(-suite)
fi

rc=0
./bin/ringload "${args[@]}" || rc=$?
[ "$rc" -eq 0 ] || cat "$ringd_log" >&2
exit "$rc"
