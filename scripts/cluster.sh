#!/usr/bin/env bash
# cluster.sh — one-command multi-process benchmark: build ringd and
# ringload, launch an N-node Ring cluster as real OS processes over
# TCP loopback, drive it with the load generator, and tear it down.
#
# Usage:
#   scripts/cluster.sh                    # 5-node rep3+srs3.2, BENCH suite
#   scripts/cluster.sh -mode open -rate 5000 -duration 10s
#
# Environment knobs:
#   NODES=5        cluster size (shards=3, redundant=2 fixed by default)
#   RING_GROUPS=1  memgest groups per node (one core each; see ringd -groups)
#   BASE_PORT=7400 first TCP port (node i uses BASE_PORT + i*RING_GROUPS;
#                  each extra DURABLE pass shifts the base by 100)
#   BLOCK_SIZE=    SRS logical block size; the SRS memgest holds
#                  lcm(k,s) blocks total, so it must cover the key
#                  space times a couple of retained versions
#                  (default 4 MiB, ~12 MiB of SRS capacity)
#   DURATION=5s    measurement window per scheme
#   DURABLE=0      1 = after the volatile pass, re-run the suite on
#                  durable clusters (-data-dir) with fsync=always and
#                  fsync=interval, merging the extra rows (schemes
#                  rep3+fsync=..., srs3.2+fsync=...) into BENCH_OUT —
#                  the durability-tax trajectory
#   BENCH_OUT=     write a benchjson trajectory file (e.g. BENCH_7.json)
#   PREV_DIR=      gate against committed BENCH_*.json in this directory
#   ISSUE=7        issue number recorded in BENCH_OUT
#
# Any extra arguments are passed to ringload verbatim; with none, the
# full BENCH suite runs: GF kernels, closed-loop rep3 and srs3.2, and
# the rep3+bulkconv elasticity row (the same closed-loop workload
# measured while a background bulk conversion churns the key space
# between the two memgests).
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${NODES:-5}"
# RING_GROUPS, not GROUPS: bash reserves GROUPS (the user's group
# list) and silently ignores assignments to it.
RING_GROUPS="${RING_GROUPS:-1}"
case "$NODES" in ''|*[!0-9]*|0) NODES=5 ;; esac
case "$RING_GROUPS" in ''|*[!0-9]*|0) RING_GROUPS=1 ;; esac
BASE_PORT="${BASE_PORT:-7400}"
BLOCK_SIZE="${BLOCK_SIZE:-$((4 << 20))}"
DURATION="${DURATION:-5s}"
DURABLE="${DURABLE:-0}"
ISSUE="${ISSUE:-7}"

mkdir -p bin
go build -o bin/ringd ./cmd/ringd
go build -o bin/ringload ./cmd/ringload

launcher=""
ringd_log=""
stop_cluster() {
  [ -n "$launcher" ] || return 0
  kill "$launcher" 2>/dev/null || true
  wait "$launcher" 2>/dev/null || true
  launcher=""
}
trap stop_cluster EXIT

# boot_cluster BASE_PORT [extra ringd args...] — launches the cluster
# and sets $nodes to the RING_NODES address list the launcher prints.
boot_cluster() {
  local port="$1"; shift
  ringd_log="$(mktemp)"
  ./bin/ringd -launch "$NODES" -base-port "$port" -groups "$RING_GROUPS" \
    -shards 3 -redundant 2 -memgests rep3,srs3.2 -block-size "$BLOCK_SIZE" "$@" \
    >"$ringd_log" 2>&1 &
  launcher=$!
  nodes=""
  for _ in $(seq 1 50); do
    nodes="$(sed -n 's/^RING_NODES=//p' "$ringd_log" | head -1)"
    [ -n "$nodes" ] && break
    kill -0 "$launcher" 2>/dev/null || { cat "$ringd_log"; echo "cluster.sh: launcher died" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$nodes" ] || { cat "$ringd_log"; echo "cluster.sh: no RING_NODES from launcher" >&2; exit 1; }
  echo "cluster.sh: cluster up on $nodes (groups=$RING_GROUPS)"
}

# run_load [extra ringload args...] — drives the booted cluster; on
# failure dumps the launcher log and exits.
run_load() {
  local rc=0
  ./bin/ringload -nodes "$nodes" -groups "$RING_GROUPS" -duration "$DURATION" \
    -issue "$ISSUE" "$@" || rc=$?
  [ "$rc" -eq 0 ] || { cat "$ringd_log" >&2; exit "$rc"; }
}

bench=()
[ -n "${BENCH_OUT:-}" ] && bench=(-bench-out "$BENCH_OUT")
gate=()
[ -n "${PREV_DIR:-}" ] && gate=(-prev-dir "$PREV_DIR")

if [ "$#" -gt 0 ]; then
  # Explicit ringload arguments: single volatile pass, verbatim.
  boot_cluster "$BASE_PORT"
  run_load "${bench[@]}" "${gate[@]}" "$@"
  exit 0
fi

if [ "$DURABLE" != "1" ]; then
  boot_cluster "$BASE_PORT"
  run_load "${bench[@]}" "${gate[@]}" -suite -convert
  exit 0
fi

# DURABLE=1: three passes — volatile baseline, then the same suite on
# durable clusters with fsync=always and fsync=interval. The extra rows
# merge into BENCH_OUT under distinct scheme labels and the regression
# gate runs once, on the merged trajectory. Between passes the launcher
# is SIGTERM'd so every child closes its WAL cleanly.
data_dir="$(mktemp -d)"
trap 'stop_cluster; rm -rf "$data_dir"' EXIT

boot_cluster "$BASE_PORT"
run_load "${bench[@]}" -suite -convert
stop_cluster

boot_cluster "$((BASE_PORT + 100))" -data-dir "$data_dir/always" -fsync always
run_load "${bench[@]}" -bench-merge -kernels=false -suite \
  -rep-scheme rep3+fsync=always -srs-scheme srs3.2+fsync=always
stop_cluster

boot_cluster "$((BASE_PORT + 200))" -data-dir "$data_dir/interval" -fsync interval
run_load "${bench[@]}" "${gate[@]}" -bench-merge -kernels=false -suite \
  -rep-scheme rep3+fsync=interval -srs-scheme srs3.2+fsync=interval
