// Package benchjson defines the machine-checked benchmark trajectory:
// a small, stable JSON schema (BENCH_<n>.json) that the bench smoke
// writes on every run and compares against the last committed
// BENCH_*.json. The point is to turn "we made it faster" into a
// regression gate: kernel GB/s and cluster ops/sec may drift within a
// tolerance, but a real regression fails CI with the two numbers side
// by side.
//
// The schema is deliberately append-only: new fields may be added,
// existing ones never change meaning, so BENCH_6.json remains
// comparable against BENCH_60.json.
package benchjson

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ring/internal/gf"
)

// Schema is the current schema version; bump only on incompatible
// change (which the package doc forbids — prefer new fields).
const Schema = 1

// Result is one benchmark run: the kernels of this host plus any
// cluster measurements taken against a live deployment.
type Result struct {
	Schema  int       `json:"schema"`
	Issue   int       `json:"issue"`
	Host    Host      `json:"host"`
	Kernels []Kernel  `json:"kernels,omitempty"`
	Cluster []Cluster `json:"cluster,omitempty"`
}

// Host records where the numbers were taken; comparisons across
// different hosts are advisory, not gating.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	MaxProcs  int    `json:"max_procs"`
}

// CurrentHost describes this process's host.
func CurrentHost() Host {
	return Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
}

// Kernel is one GF slice-kernel measurement: the word-wide throughput
// and the byte-wise reference baseline on the same buffer size.
type Kernel struct {
	Name     string  `json:"name"`
	Bytes    int     `json:"bytes"`
	GBps     float64 `json:"gbps"`
	BaseGBps float64 `json:"base_gbps"`
	Speedup  float64 `json:"speedup"`
}

// Cluster is one load-generator measurement against a live
// deployment.
type Cluster struct {
	Scheme     string  `json:"scheme"`
	Mode       string  `json:"mode"` // "closed" or "open"
	Procs      int     `json:"procs"`
	Groups     int     `json:"groups"`
	Clients    int     `json:"clients"`
	ValueBytes int     `json:"value_bytes"`
	Mix        string  `json:"mix"`
	Ops        int     `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50us      float64 `json:"p50_us"`
	P99us      float64 `json:"p99_us"`
	P999us     float64 `json:"p999_us"`
}

// Write marshals r to path (indented, trailing newline, 0644).
func Write(path string, r Result) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Read unmarshals one result file.
func Read(path string) (Result, error) {
	var r Result
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return r, fmt.Errorf("benchjson: %s has schema %d, want %d", path, r.Schema, Schema)
	}
	return r, nil
}

// FindPrevious locates the committed BENCH_<n>.json in dir with the
// highest issue number strictly below `issue`. ok is false when the
// trajectory has no earlier point (the first PR to seed it).
func FindPrevious(dir string, issue int) (Result, string, bool, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return Result{}, "", false, err
	}
	best, bestIssue := "", -1
	for _, m := range matches {
		base := strings.TrimSuffix(filepath.Base(m), ".json")
		n, err := strconv.Atoi(strings.TrimPrefix(base, "BENCH_"))
		if err != nil || n >= issue {
			continue
		}
		if n > bestIssue {
			best, bestIssue = m, n
		}
	}
	if best == "" {
		return Result{}, "", false, nil
	}
	r, err := Read(best)
	if err != nil {
		return Result{}, best, false, err
	}
	return r, best, true, nil
}

// Compare reports the regressions of cur versus prev beyond the
// fractional tolerance tol (0.10 = 10%): kernel GB/s matched by
// (name, bytes) and cluster ops/sec matched by (scheme, mode).
// Entries present on only one side are ignored — the trajectory grows
// — and an empty slice means the gate passes.
func Compare(prev, cur Result, tol float64) []string {
	var regressions []string
	floor := 1 - tol
	prevKernels := make(map[string]Kernel, len(prev.Kernels))
	for _, k := range prev.Kernels {
		prevKernels[k.Name+"/"+strconv.Itoa(k.Bytes)] = k
	}
	curKernels := make([]string, 0, len(cur.Kernels))
	kByKey := make(map[string]Kernel, len(cur.Kernels))
	for _, k := range cur.Kernels {
		key := k.Name + "/" + strconv.Itoa(k.Bytes)
		curKernels = append(curKernels, key)
		kByKey[key] = k
	}
	sort.Strings(curKernels)
	for _, key := range curKernels {
		k := kByKey[key]
		p, ok := prevKernels[key]
		if !ok {
			continue
		}
		if k.GBps < p.GBps*floor {
			regressions = append(regressions, fmt.Sprintf(
				"kernel %s: %.2f GB/s vs %.2f GB/s in BENCH_%d (-%.0f%%)",
				key, k.GBps, p.GBps, prev.Issue, (1-k.GBps/p.GBps)*100))
		}
	}
	prevCluster := make(map[string]Cluster, len(prev.Cluster))
	for _, c := range prev.Cluster {
		prevCluster[c.Scheme+"/"+c.Mode] = c
	}
	for _, c := range cur.Cluster {
		p, ok := prevCluster[c.Scheme+"/"+c.Mode]
		if !ok {
			continue
		}
		if c.OpsPerSec < p.OpsPerSec*floor {
			regressions = append(regressions, fmt.Sprintf(
				"cluster %s/%s: %.0f ops/s vs %.0f ops/s in BENCH_%d (-%.0f%%)",
				c.Scheme, c.Mode, c.OpsPerSec, p.OpsPerSec, prev.Issue,
				(1-c.OpsPerSec/p.OpsPerSec)*100))
		}
	}
	return regressions
}

// MeasureGFKernels times the three word-wide GF kernels and their
// byte-wise references on `size`-byte buffers, long enough for stable
// numbers (~100ms per kernel). Each number is the best of three
// timings, so one scheduler preemption on a loaded box doesn't read as
// a kernel regression.
//
//ring:wallclock offline benchmark timing
func MeasureGFKernels(size int) []Kernel {
	src := make([]byte, size)
	dst := make([]byte, size)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	const c = 0x57
	gbps := func(f func()) float64 {
		best := 0.0
		for try := 0; try < 3; try++ {
			// Warm up (builds lazy tables, faults pages, trains the
			// branch predictor), then time enough iterations to cover
			// ~100ms.
			f()
			start := time.Now()
			f()
			per := time.Since(start)
			iters := 1
			if per > 0 {
				iters = int(100*time.Millisecond/per) + 1
			}
			start = time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			el := time.Since(start).Seconds()
			if v := float64(size) * float64(iters) / el / 1e9; v > best {
				best = v
			}
		}
		return best
	}
	out := []Kernel{
		{Name: "MulSlice", Bytes: size,
			GBps:     gbps(func() { gf.MulSlice(c, src, dst) }),
			BaseGBps: gbps(func() { gf.MulSliceRef(c, src, dst) })},
		{Name: "MulSliceXor", Bytes: size,
			GBps:     gbps(func() { gf.MulSliceXor(c, src, dst) }),
			BaseGBps: gbps(func() { gf.MulSliceXorRef(c, src, dst) })},
		{Name: "XorSlice", Bytes: size,
			GBps:     gbps(func() { gf.XorSlice(src, dst) }),
			BaseGBps: gbps(func() { gf.XorSliceRef(src, dst) })},
	}
	for i := range out {
		if out[i].BaseGBps > 0 {
			out[i].Speedup = out[i].GBps / out[i].BaseGBps
		}
	}
	return out
}

// GeomeanSpeedup returns the geometric mean of the kernel speedups —
// the single number the acceptance gate tracks across the suite.
func GeomeanSpeedup(kernels []Kernel) float64 {
	if len(kernels) == 0 {
		return 0
	}
	prod := 1.0
	for _, k := range kernels {
		if k.Speedup <= 0 {
			return 0
		}
		prod *= k.Speedup
	}
	return math.Pow(prod, 1/float64(len(kernels)))
}
