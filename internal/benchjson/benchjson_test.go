package benchjson

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample(issue int, mulGBps, opsPerSec float64) Result {
	return Result{
		Schema: Schema,
		Issue:  issue,
		Host:   CurrentHost(),
		Kernels: []Kernel{
			{Name: "MulSlice", Bytes: 4096, GBps: mulGBps, BaseGBps: 1.0, Speedup: mulGBps},
			{Name: "XorSlice", Bytes: 4096, GBps: 30, BaseGBps: 2.5, Speedup: 12},
		},
		Cluster: []Cluster{
			{Scheme: "rep3", Mode: "closed", Procs: 5, Clients: 4,
				ValueBytes: 1024, Mix: "update-heavy", Ops: 1000,
				OpsPerSec: opsPerSec, P50us: 100, P99us: 400, P999us: 900},
		},
	}
}

func TestRoundTripAndFindPrevious(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		issue int
		gbps  float64
	}{{3, 3.0}, {5, 4.0}} {
		path := filepath.Join(dir, "BENCH_"+itoa(tc.issue)+".json")
		if err := Write(path, sample(tc.issue, tc.gbps, 5000)); err != nil {
			t.Fatal(err)
		}
	}

	got, err := Read(filepath.Join(dir, "BENCH_5.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Issue != 5 || got.Kernels[0].GBps != 4.0 || got.Cluster[0].OpsPerSec != 5000 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	prev, path, ok, err := FindPrevious(dir, 6)
	if err != nil || !ok {
		t.Fatalf("FindPrevious: ok=%v err=%v", ok, err)
	}
	if prev.Issue != 5 || filepath.Base(path) != "BENCH_5.json" {
		t.Fatalf("FindPrevious picked issue %d (%s), want 5", prev.Issue, path)
	}
	// Only files strictly below the issue count as "previous".
	prev, _, ok, err = FindPrevious(dir, 4)
	if err != nil || !ok || prev.Issue != 3 {
		t.Fatalf("FindPrevious(4): issue=%d ok=%v err=%v, want 3/true", prev.Issue, ok, err)
	}
	if _, _, ok, _ = FindPrevious(dir, 3); ok {
		t.Fatal("FindPrevious found a predecessor for the first trajectory point")
	}
}

func TestCompare(t *testing.T) {
	prev := sample(5, 4.0, 5000)

	// Within tolerance and improvements: no regressions.
	if regs := Compare(prev, sample(6, 3.7, 4600), 0.10); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	if regs := Compare(prev, sample(6, 8.0, 9000), 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}

	// Kernel and cluster regressions are both reported.
	regs := Compare(prev, sample(6, 2.0, 3000), 0.10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if !strings.Contains(regs[0], "MulSlice") || !strings.Contains(regs[1], "rep3/closed") {
		t.Fatalf("unexpected regression text: %v", regs)
	}

	// New entries with no predecessor never gate.
	cur := sample(6, 4.0, 5000)
	cur.Kernels = append(cur.Kernels, Kernel{Name: "MulSliceXor", Bytes: 4096, GBps: 0.1})
	cur.Cluster = append(cur.Cluster, Cluster{Scheme: "srs3.2", Mode: "closed", OpsPerSec: 1})
	if regs := Compare(prev, cur, 0.10); len(regs) != 0 {
		t.Fatalf("new entries flagged: %v", regs)
	}
}

func TestMeasureGFKernelsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop")
	}
	ks := MeasureGFKernels(4096)
	if len(ks) != 3 {
		t.Fatalf("got %d kernels, want 3", len(ks))
	}
	for _, k := range ks {
		if k.GBps <= 0 || k.BaseGBps <= 0 || k.Speedup <= 0 {
			t.Errorf("kernel %s has non-positive throughput: %+v", k.Name, k)
		}
	}
	if g := GeomeanSpeedup(ks); g <= 0 {
		t.Errorf("GeomeanSpeedup = %v, want > 0", g)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
