package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// Segment files are named wal-%08d.log with 1-based indexes that only
// ever grow; each starts with an 8-byte magic and holds a stream of
// [u32 length][u32 crc32c(payload)][payload] frames, little-endian.
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	magic      = "RINGWAL1"
	headerSize = len(magic)
	frameSize  = 8 // u32 length + u32 crc32c
	// maxRecord bounds a single payload; a length field beyond it is
	// treated as tail damage, not an allocation request.
	maxRecord = 16 << 20

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// it zero.
	DefaultSegmentBytes = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a WAL.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one
	// reaches this size (0 = DefaultSegmentBytes).
	SegmentBytes int
}

// WAL is an open write-ahead log. Append adds one record to the active
// segment (rotating first if it is full), Sync makes everything
// appended so far crash-durable, and PruneTo drops a prefix of sealed
// segments once their records are superseded elsewhere. A sealed
// segment has always been synced, so sealing never loses data under
// any fsync policy.
type WAL struct {
	fs       FS
	segBytes int64

	active    File
	activeIdx uint64
	sealed    []uint64 // ascending, all synced and closed

	dirty   bool
	damaged bool
	syncs   uint64
	appends uint64
}

// SegName returns the file name of segment idx; exported for tests and
// the fault plane.
func SegName(idx uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var idx uint64
	digits := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(digits) == 0 {
		return 0, false
	}
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(c-'0')
	}
	return idx, true
}

// Open replays every intact record through replay in log order,
// truncates the torn tail, and leaves the log open for appending.
//
// The first invalid frame ends the log: the segment is truncated at
// the last valid record and every later segment is deleted. A frame
// that is merely incomplete (the crash cut it short) is a torn tail —
// the normal aftermath of a crash. A frame that is fully present but
// fails its CRC, or any invalid frame in a non-final segment, is
// *damage*: data that was once durable has been lost, so Damaged
// reports true and the caller must treat local state as a hint rather
// than truth (the recovery protocol falls back to a full resync).
func Open(fsys FS, opts Options, replay func(seg uint64, payload []byte) error) (*WAL, error) {
	segBytes := int64(opts.SegmentBytes)
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	w := &WAL{fs: fsys, segBytes: segBytes}

	names, err := fsys.List()
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	if len(idxs) == 0 {
		return w, w.createSegment(1)
	}

	broken := false
	end := len(idxs) // 1 + index (into idxs) of the segment ending the log
	var tail int64   // valid byte length of segment idxs[end-1]
	for i, idx := range idxs {
		data, err := w.fs.ReadFile(SegName(idx))
		if err != nil {
			return nil, err
		}
		validEnd, clean, torn := scanSegment(data, func(payload []byte) error {
			if replay == nil {
				return nil
			}
			return replay(idx, payload)
		})
		if clean {
			continue
		}
		// Invalid frame: this segment ends the log here.
		broken, end, tail = true, i+1, validEnd
		if !torn || i < len(idxs)-1 {
			// Fully-present-but-corrupt frame, or any break before the
			// final segment: durable bytes were lost, not just a torn
			// tail.
			w.damaged = true
		}
		break
	}

	if !broken {
		// Every segment replayed cleanly: reopen the last for appending.
		last := idxs[len(idxs)-1]
		f, err := w.fs.OpenFile(SegName(last))
		if err != nil {
			return nil, err
		}
		w.active, w.activeIdx = f, last
		w.sealed = append(w.sealed, idxs[:len(idxs)-1]...)
		return w, nil
	}

	// Truncate the broken segment at its last valid record and drop
	// everything after it.
	last := idxs[end-1]
	f, err := w.fs.OpenFile(SegName(last))
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(tail); err != nil {
		f.Close() //ring:durableok failed-path teardown, the primary error wins
		return nil, err
	}
	if tail < int64(headerSize) {
		// Not even an intact magic: rewrite the header.
		if err := f.Truncate(0); err != nil {
			f.Close() //ring:durableok failed-path teardown, the primary error wins
			return nil, err
		}
		if _, err := f.Append([]byte(magic)); err != nil {
			f.Close() //ring:durableok failed-path teardown, the primary error wins
			return nil, err
		}
	}
	w.active, w.activeIdx = f, last
	for _, idx := range idxs[end:] {
		if err := w.fs.Remove(SegName(idx)); err != nil {
			f.Close() //ring:durableok failed-path teardown, the primary error wins
			return nil, err
		}
	}
	w.sealed = append(w.sealed, idxs[:end-1]...)
	w.dirty = true // the truncation itself wants an fsync
	return w, nil
}

// scanSegment walks one segment's frames, calling replay for each
// valid payload. It returns the byte offset of the end of the last
// valid record, whether the whole segment was consumed cleanly, and —
// when it was not — whether the invalid frame looks like a torn tail
// (incomplete frame) rather than corruption (fully present, bad CRC).
func scanSegment(data []byte, replay func([]byte) error) (validEnd int64, clean, torn bool) {
	if len(data) < headerSize || string(data[:headerSize]) != magic {
		// A header shorter than the magic is a torn creation; a full
		// header with wrong bytes is corruption.
		return 0, false, len(data) < headerSize
	}
	off := headerSize
	for off < len(data) {
		if len(data)-off < frameSize {
			return int64(off), false, true
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxRecord || off+frameSize+int(length) > len(data) {
			return int64(off), false, true
		}
		payload := data[off+frameSize : off+frameSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return int64(off), false, false
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				// A replay error marks the record unusable but the frame
				// itself was intact; treat as corruption.
				return int64(off), false, false
			}
		}
		off += frameSize + int(length)
	}
	return int64(off), true, false
}

func (w *WAL) createSegment(idx uint64) error {
	f, err := w.fs.OpenFile(SegName(idx))
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		f.Close() //ring:durableok failed-path teardown, the primary error wins
		return err
	}
	if _, err := f.Append([]byte(magic)); err != nil {
		f.Close() //ring:durableok failed-path teardown, the primary error wins
		return err
	}
	w.active, w.activeIdx = f, idx
	w.dirty = true
	return nil
}

// Append adds one record to the log and returns the index of the
// segment it landed in (the unit of pruning). The record is not
// durable until the next Sync.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	if w.active.Size() >= w.segBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [frameSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.active.Append(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.active.Append(payload); err != nil {
		return 0, err
	}
	w.dirty = true
	w.appends++
	return w.activeIdx, nil
}

// rotate seals the active segment — synced, closed, never written
// again — and opens the next one.
func (w *WAL) rotate() error {
	if err := w.active.Sync(); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return err
	}
	w.syncs++
	w.dirty = false
	w.sealed = append(w.sealed, w.activeIdx)
	return w.createSegment(w.activeIdx + 1)
}

// Sync makes every appended record crash-durable.
func (w *WAL) Sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.syncs++
	return nil
}

// Dirty reports whether unsynced appends exist.
func (w *WAL) Dirty() bool { return w.dirty }

// Damaged reports whether Open found evidence of lost durable bytes
// (mid-log corruption) rather than just a torn tail.
func (w *WAL) Damaged() bool { return w.damaged }

// ActiveSegment returns the index of the segment now accepting
// appends.
func (w *WAL) ActiveSegment() uint64 { return w.activeIdx }

// SealedSegments returns the ascending indexes of sealed segments.
func (w *WAL) SealedSegments() []uint64 { return append([]uint64(nil), w.sealed...) }

// Syncs counts fsyncs issued by this WAL (including seals).
func (w *WAL) Syncs() uint64 { return w.syncs }

// Appends counts records appended by this WAL instance.
func (w *WAL) Appends() uint64 { return w.appends }

// PruneTo deletes every sealed segment with index < idx. The caller
// must only prune a *prefix* whose records are all superseded by
// synced state elsewhere — pruning from the middle could resurrect a
// purged version on replay.
func (w *WAL) PruneTo(idx uint64) error {
	kept := w.sealed[:0]
	for i, s := range w.sealed {
		if s >= idx {
			kept = append(kept, s)
			continue
		}
		if err := w.fs.Remove(SegName(s)); err != nil {
			// Keep the failed segment and everything not yet visited in
			// the sealed list; replaying or re-pruning them later is
			// merely wasteful, losing track of them is not (a dropped
			// entry is never pruned and its segLive count never settles).
			w.sealed = append(kept, w.sealed[i:]...)
			return err
		}
	}
	w.sealed = kept
	return nil
}

// Compact replaces the entire log with the given records: they are
// written to a fresh segment (or several) with indexes above every
// existing one, synced, and only then are the old segments deleted.
// A crash at any point leaves a log that replays to the same state —
// old and new segments merely overlap and replay is idempotent.
// Recovery uses this to rewrite the surviving records once, so prune
// bookkeeping restarts exact; the returned slice gives the segment
// each record landed in.
func (w *WAL) Compact(records [][]byte) ([]uint64, error) {
	oldSealed := append([]uint64(nil), w.sealed...)
	oldActive := w.activeIdx
	if err := w.active.Sync(); err != nil {
		return nil, err
	}
	if err := w.active.Close(); err != nil {
		return nil, err
	}
	w.sealed = w.sealed[:0]
	if err := w.createSegment(oldActive + 1); err != nil {
		return nil, err
	}
	segs := make([]uint64, len(records))
	for i, rec := range records {
		seg, err := w.Append(rec)
		if err != nil {
			return nil, err
		}
		segs[i] = seg
	}
	if err := w.Sync(); err != nil {
		return nil, err
	}
	// New state durable: the old segments are now redundant.
	for _, idx := range append(oldSealed, oldActive) {
		if err := w.fs.Remove(SegName(idx)); err != nil {
			return nil, err
		}
	}
	return segs, nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.active.Close() //ring:durableok sync failed, its error wins
		return err
	}
	return w.active.Close()
}
