package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

type replayed struct {
	seg     uint64
	payload []byte
}

func collect(t *testing.T, fs FS, opts Options) (*WAL, []replayed) {
	t.Helper()
	var recs []replayed
	w, err := Open(fs, opts, func(seg uint64, payload []byte) error {
		recs = append(recs, replayed{seg, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, recs
}

func TestAppendReopenReplay(t *testing.T) {
	fs := NewMemFS()
	w, recs := collect(t, fs, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-gamma")}
	for _, p := range want {
		if _, err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs = collect(t, fs, Options{})
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r.payload, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r.payload, want[i])
		}
	}
}

func TestUnsyncedAppendSurvivesCleanClose(t *testing.T) {
	// Under fsync policy "never" the WAL is never synced mid-run, but a
	// clean Close still lands everything.
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{})
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if !w.Dirty() {
		t.Fatal("append did not mark the log dirty")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := collect(t, fs, Options{})
	if len(recs) != 1 || string(recs[0].payload) != "x" {
		t.Fatalf("replay after close = %v", recs)
	}
}

func TestRotationAndSealedSegments(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("r"), 40)
	segs := map[uint64]bool{}
	for i := 0; i < 6; i++ {
		seg, err := w.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		segs[seg] = true
	}
	if len(segs) < 3 {
		t.Fatalf("6 oversized appends landed in only %d segments", len(segs))
	}
	if got := len(w.SealedSegments()); got != len(segs)-1 {
		t.Fatalf("SealedSegments = %d, want %d", got, len(segs)-1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := collect(t, fs, Options{SegmentBytes: 64})
	if len(recs) != 6 {
		t.Fatalf("replayed %d records across rotated segments, want 6", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].seg < recs[i-1].seg {
			t.Fatalf("replay out of segment order: %d then %d", recs[i-1].seg, recs[i].seg)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{})
	if _, err := w.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("torn-away-record")); err != nil {
		t.Fatal(err)
	}
	// Crash before the second sync: MemFS keeps the synced prefix plus
	// a random cut of the unsynced suffix — a torn final record.
	fs.Crash(rand.New(rand.NewSource(7)))

	w2, recs := collect(t, fs, Options{})
	if len(recs) != 1 || string(recs[0].payload) != "kept" {
		t.Fatalf("replay after torn tail = %v, want just %q", recs, "kept")
	}
	if w2.Damaged() {
		t.Fatal("a torn tail must not count as damage")
	}
	// The truncated log must accept appends again and stay consistent.
	if _, err := w2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs = collect(t, fs, Options{})
	if len(recs) != 2 || string(recs[1].payload) != "after" {
		t.Fatalf("replay after recovery append = %v", recs)
	}
}

func TestBitFlipDetectedAsDamage(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{})
	for i := 0; i < 4; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.CorruptWAL(rand.New(rand.NewSource(3))) {
		t.Fatal("CorruptWAL found nothing to flip")
	}
	w2, recs := collect(t, fs, Options{})
	if !w2.Damaged() {
		t.Fatal("bit flip in a fully-present record must report Damaged")
	}
	if len(recs) >= 4 {
		t.Fatalf("corrupted log replayed all %d records", len(recs))
	}
	// Whatever survived must be an exact prefix.
	for i, r := range recs {
		want := fmt.Sprintf("record-%d-padding-padding", i)
		if string(r.payload) != want {
			t.Fatalf("record %d = %q, want %q", i, r.payload, want)
		}
	}
}

func TestCorruptionInNonFinalSegmentIsDamage(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("z"), 40)
	for i := 0; i < 4; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the FIRST segment mid-record: even though the break looks
	// like a torn tail locally, later segments exist, so it is damage.
	name := SegName(1)
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(len(data) - 3)); err != nil {
		t.Fatal(err)
	}
	w2, _ := collect(t, fs, Options{SegmentBytes: 64})
	if !w2.Damaged() {
		t.Fatal("mid-log truncation must report Damaged")
	}
}

func TestPruneToDropsPrefix(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("p"), 40)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	sealed := w.SealedSegments()
	if len(sealed) < 2 {
		t.Fatalf("want >=2 sealed segments, got %v", sealed)
	}
	cut := sealed[len(sealed)-1] // drop all but the newest sealed segment
	if err := w.PruneTo(cut); err != nil {
		t.Fatal(err)
	}
	if got := w.SealedSegments(); len(got) != 1 || got[0] != cut {
		t.Fatalf("SealedSegments after prune = %v, want [%d]", got, cut)
	}
	for _, s := range sealed[:len(sealed)-1] {
		if fs.FileSize(SegName(s)) != 0 {
			t.Fatalf("pruned segment %d still on disk", s)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := collect(t, fs, Options{SegmentBytes: 64})
	if len(recs) == 0 || len(recs) >= 5 {
		t.Fatalf("replay after prune = %d records", len(recs))
	}
}

func TestCompactRewritesLog(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("c"), 40)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	keep := [][]byte{[]byte("survivor-1"), []byte("survivor-2")}
	segs, err := w.Compact(keep)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("Compact placements = %v", segs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := collect(t, fs, Options{SegmentBytes: 64})
	if len(recs) != 2 || string(recs[0].payload) != "survivor-1" || string(recs[1].payload) != "survivor-2" {
		t.Fatalf("replay after compact = %v", recs)
	}
}

func TestFailingSyncSurfaces(t *testing.T) {
	fs := NewMemFS()
	w, _ := collect(t, fs, Options{})
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fsyncgate")
	fs.FailSyncs(boom)
	if err := w.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync with failing disk = %v, want %v", err, boom)
	}
	fs.FailSyncs(nil)
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync after heal = %v", err)
	}
}

func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	fs := DirFS(dir)
	w, err := Open(fs, Options{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("d"), 40)
	for i := 0; i < 4; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	w2, err := Open(fs, Options{SegmentBytes: 64}, func(uint64, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("DirFS replayed %d records, want 4", n)
	}
	if err := w2.PruneTo(w2.ActiveSegment()); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// failRemoveFS fails Remove for selected names; everything else passes
// through.
type failRemoveFS struct {
	FS
	fail map[string]error
}

func (f *failRemoveFS) Remove(name string) error {
	if err := f.fail[name]; err != nil {
		return err
	}
	return f.FS.Remove(name)
}

func TestPruneToErrorKeepsRemainder(t *testing.T) {
	// Regression: a mid-prune Remove failure used to rebuild the sealed
	// list from only the segments visited so far, dropping the untouched
	// remainder — segments that still existed on disk but could never be
	// pruned again.
	fs := &failRemoveFS{FS: NewMemFS(), fail: map[string]error{}}
	w, _ := collect(t, fs, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("p"), 40)
	for i := 0; i < 7; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	sealed := w.SealedSegments()
	if len(sealed) < 3 {
		t.Fatalf("want >=3 sealed segments, got %v", sealed)
	}
	boom := errors.New("remove blocked")
	fs.fail[SegName(sealed[1])] = boom
	if err := w.PruneTo(w.ActiveSegment()); !errors.Is(err, boom) {
		t.Fatalf("PruneTo = %v, want %v", err, boom)
	}
	// The failed segment AND everything after it must stay tracked.
	got := w.SealedSegments()
	want := sealed[1:]
	if len(got) != len(want) {
		t.Fatalf("SealedSegments after failed prune = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SealedSegments after failed prune = %v, want %v", got, want)
		}
	}
	// Heal the disk: a retry prunes the rest.
	delete(fs.fail, SegName(sealed[1]))
	if err := w.PruneTo(w.ActiveSegment()); err != nil {
		t.Fatal(err)
	}
	if got := w.SealedSegments(); len(got) != 0 {
		t.Fatalf("SealedSegments after healed prune = %v", got)
	}
}
