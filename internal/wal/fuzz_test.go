package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay appends arbitrary bytes to a valid log and checks the
// contract the recovery path depends on: Open never panics, never
// errors, and always recovers the valid records as an exact prefix.
// (Appended garbage can in principle frame-align into extra "valid"
// records — CRC32C is detection, not authentication — so the check is
// prefix equality, not exact length.)
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint8(3))
	f.Add([]byte("RINGWAL1"), uint8(0))
	f.Add([]byte{0x04, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}, uint8(5))
	f.Fuzz(func(t *testing.T, garbage []byte, nrecs uint8) {
		fs := NewMemFS()
		w, err := Open(fs, Options{SegmentBytes: 256}, nil)
		if err != nil {
			t.Fatalf("Open fresh: %v", err)
		}
		want := make([][]byte, 0, nrecs%8)
		for i := 0; i < int(nrecs%8); i++ {
			p := bytes.Repeat([]byte{byte(i + 1)}, 5+i*13)
			if _, err := w.Append(p); err != nil {
				t.Fatalf("Append: %v", err)
			}
			want = append(want, p)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Splice the garbage onto the tail of the newest segment.
		names, err := fs.List()
		if err != nil || len(names) == 0 {
			t.Fatalf("List: %v %v", names, err)
		}
		tail, err := fs.OpenFile(names[len(names)-1])
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		if _, err := tail.Append(garbage); err != nil {
			t.Fatalf("splice: %v", err)
		}

		var got [][]byte
		w2, err := Open(fs, Options{SegmentBytes: 256}, func(_ uint64, payload []byte) error {
			got = append(got, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			t.Fatalf("Open over garbage: %v", err)
		}
		if len(got) < len(want) {
			t.Fatalf("recovered %d records, want at least the %d valid ones", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d = %x, want %x", i, got[i], want[i])
			}
		}
		// The recovered log must be appendable and re-openable.
		if _, err := w2.Append([]byte("post")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		if _, err := Open(fs, Options{SegmentBytes: 256}, nil); err != nil {
			t.Fatalf("re-Open: %v", err)
		}
	})
}
