// Package wal implements the append-only write-ahead log of the
// durable storage layer: a sequence of fixed-prefix segment files,
// each a stream of CRC32C-framed records, with torn-tail detection and
// truncation on open, segment rotation, and prefix pruning.
//
// The package also defines the small filesystem slice (FS/File) the
// whole durable layer is written against, with two implementations: a
// directory of real files (DirFS) for cmd/ringd, and an in-memory
// filesystem (MemFS) with crash semantics — unsynced bytes are torn
// off at a crash point — for the simulator's disk fault plane.
package wal

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is a flat directory of named files — everything the durable layer
// needs from a filesystem.
type FS interface {
	// OpenFile opens name for reading and appending, creating it empty
	// if it does not exist.
	OpenFile(name string) (File, error)
	// ReadFile returns the entire current content of name.
	ReadFile(name string) ([]byte, error)
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
}

// File is one open file. Appends go to the end; reads address absolute
// offsets; Sync makes everything appended so far crash-durable.
type File interface {
	Append(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Size() int64
	Sync() error
	Close() error
}

// DirFS returns an FS backed by the directory dir, which must exist.
func DirFS(dir string) FS { return dirFS{dir: dir} }

type dirFS struct{ dir string }

func (d dirFS) OpenFile(name string) (File, error) {
	path := filepath.Join(d.dir, name)
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		// A new dirent is not crash-durable until the directory itself
		// is fsynced: without this, a freshly rotated WAL segment or
		// Bitcask data file can vanish entirely after power loss even
		// though File.Sync succeeded on its contents.
		if err := d.syncDir(); err != nil {
			f.Close() //ring:durableok failed-path teardown, the primary error wins
			return nil, err
		}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //ring:durableok failed-path teardown, the primary error wins
		return nil, err
	}
	return &osFile{f: f, size: st.Size()}, nil
}

// syncDir fsyncs the directory itself, making file creations and
// removals crash-durable.
func (d dirFS) syncDir() error {
	df, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	if err := df.Sync(); err != nil {
		df.Close() //ring:durableok failed-path teardown, the primary error wins
		return err
	}
	return df.Close()
}

func (d dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d dirFS) Remove(name string) error {
	err := os.Remove(filepath.Join(d.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	// Make the removal itself crash-durable, so Compact/Merge never
	// treat an old generation as gone while its dirent could reappear.
	return d.syncDir()
}

func (d dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// osFile tracks the append offset explicitly so that Truncate followed
// by Append never leaves a hole: every write lands at the tracked end.
type osFile struct {
	f    *os.File
	size int64
}

func (o *osFile) Append(p []byte) (int, error) {
	n, err := o.f.WriteAt(p, o.size)
	o.size += int64(n)
	return n, err
}

func (o *osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

func (o *osFile) Truncate(size int64) error {
	if err := o.f.Truncate(size); err != nil {
		return err
	}
	o.size = size
	return nil
}

func (o *osFile) Size() int64  { return o.size }
func (o *osFile) Sync() error  { return o.f.Sync() }
func (o *osFile) Close() error { return o.f.Close() }

// MemFS is an in-memory FS with crash semantics for the simulator's
// disk fault plane: each file remembers how much of it has been
// synced, Crash tears every file back to its synced prefix plus a
// random-length torn fragment of the unsynced suffix, FlipBit models
// media corruption, and FailSyncs models a disk whose fsync starts
// returning errors (fsyncgate). All methods are safe for concurrent
// use; the counters feed the simulator's disk cost model.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	syncErr error
	syncs   uint64
}

type memFile struct {
	fs     *MemFS
	name   string
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

func (m *MemFS) OpenFile(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{fs: m, name: name}
		m.files[name] = f
	}
	return f, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Crash models a machine crash: every file keeps its synced prefix
// plus a rng-chosen prefix of its unsynced suffix — the torn final
// record the WAL must detect and truncate on the next open.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		if len(f.data) > f.synced {
			keep := f.synced + rng.Intn(len(f.data)-f.synced+1)
			f.data = f.data[:keep]
			f.synced = keep
		}
	}
}

// FlipBit flips one bit of name at the given bit offset — media
// corruption the CRC framing must catch.
func (m *MemFS) FlipBit(name string, bit int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || bit < 0 || bit/8 >= int64(len(f.data)) {
		return false
	}
	f.data[bit/8] ^= 1 << uint(bit%8)
	return true
}

// CorruptWAL flips one rng-chosen bit in the record region of the
// newest WAL segment that has any records, reporting whether a bit was
// flipped.
func (m *MemFS) CorruptWAL(rng *rand.Rand) bool {
	m.mu.Lock()
	var target *memFile
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		if strings.HasPrefix(name, segPrefix) && len(f.data) > headerSize {
			target = f // sorted ascending: the last match is the newest
		}
	}
	if target == nil {
		m.mu.Unlock()
		return false
	}
	span := int64(len(target.data)-headerSize) * 8
	bit := int64(headerSize)*8 + int64(rng.Int63n(span))
	target.data[bit/8] ^= 1 << uint(bit%8)
	m.mu.Unlock()
	return true
}

// FailSyncs makes every subsequent Sync on every file return err; a
// nil err heals the disk.
func (m *MemFS) FailSyncs(err error) {
	m.mu.Lock()
	m.syncErr = err
	m.mu.Unlock()
}

// Syncs counts successful fsyncs across all files — the simulator
// charges its fsync latency model on deltas of this counter.
func (m *MemFS) Syncs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// FileSize reports the current size of name (0 if absent); for tests.
func (m *MemFS) FileSize(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

func (f *memFile) Append(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.data = append(f.data, p...)
	f.fs.mu.Unlock()
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 || off >= int64(len(f.data)) {
		return 0, fmt.Errorf("wal: read past end of %s", f.name)
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("wal: short read of %s", f.name)
	}
	return n, nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("wal: bad truncate of %s to %d", f.name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (f *memFile) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.data))
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.syncErr != nil {
		return f.fs.syncErr
	}
	f.synced = len(f.data)
	f.fs.syncs++
	return nil
}

func (f *memFile) Close() error { return nil }
