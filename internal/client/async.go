package client

// Asynchronous client API: PutAsync/GetAsync/DeleteAsync issue a
// request and return immediately with a future, so a single client
// keeps many requests in flight over the fabric — the pipelining the
// paper's throughput experiments (Fig 9, Table 1) rely on. Each
// in-flight operation runs the same timeout + re-resolve retry state
// machine as the synchronous API (which is just issue-then-Wait, a
// pipeline of depth one), multiplexed over the client's single
// endpoint by the waiter map. The Pipeline helper bounds the number
// of outstanding operations and aggregates completions for bulk
// loads and benchmarks.

import (
	"sync"
	"sync/atomic"

	"ring/internal/proto"
	"ring/internal/transport"
)

// future is the completion cell shared by the typed futures: the
// operation goroutine fills msg/err and closes done.
type future struct {
	done chan struct{}
	msg  proto.Message
	err  error
}

func (f *future) wait() (proto.Message, error) {
	<-f.done
	return f.msg, f.err
}

// The do*Op helpers run one key-routed operation synchronously; they
// are the unit of work shared by the synchronous API, the standalone
// futures, and pipeline workers.

func (c *Client) doPutOp(key string, value []byte, mg proto.MemgestID) (proto.Message, error) {
	return c.doKeyOp(key,
		func(req proto.ReqID) proto.Message {
			return &proto.Put{Req: req, Key: key, Value: value, Memgest: mg}
		},
		func(m proto.Message) proto.Status { return m.(*proto.PutReply).Status })
}

func (c *Client) doGetOp(key string, ver proto.Version) (proto.Message, error) {
	return c.doKeyOp(key,
		func(req proto.ReqID) proto.Message { return &proto.Get{Req: req, Key: key, Version: ver} },
		func(m proto.Message) proto.Status { return m.(*proto.GetReply).Status })
}

func (c *Client) doDeleteOp(key string) (proto.Message, error) {
	return c.doKeyOp(key,
		func(req proto.ReqID) proto.Message { return &proto.Delete{Req: req, Key: key} },
		func(m proto.Message) proto.Status { return m.(*proto.DeleteReply).Status })
}

// startOp issues one operation asynchronously on its own goroutine.
func (c *Client) startOp(op func() (proto.Message, error)) *future {
	f := &future{done: make(chan struct{})}
	go func() {
		f.msg, f.err = op()
		close(f.done)
	}()
	return f
}

// ----------------------------------------------------------- typed futures

// PutFuture resolves an asynchronous Put.
type PutFuture struct{ f *future }

// Wait blocks until the put commits (or fails) and returns the
// committed version.
func (f *PutFuture) Wait() (proto.Version, error) { return putResult(f.f.wait()) }

func putResult(m proto.Message, err error) (proto.Version, error) {
	if err != nil {
		return 0, err
	}
	r := m.(*proto.PutReply)
	if r.Status != proto.StOK {
		return 0, r.Status.Err()
	}
	return r.Version, nil
}

// GetFuture resolves an asynchronous Get.
type GetFuture struct{ f *future }

// Wait blocks until the reply arrives and returns the value and its
// version (or ErrNotFound).
func (f *GetFuture) Wait() ([]byte, proto.Version, error) { return getResult(f.f.wait()) }

func getResult(m proto.Message, err error) ([]byte, proto.Version, error) {
	if err != nil {
		return nil, 0, err
	}
	r := m.(*proto.GetReply)
	switch r.Status {
	case proto.StOK:
		return r.Value, r.Version, nil
	case proto.StNotFound:
		return nil, 0, ErrNotFound
	default:
		return nil, 0, r.Status.Err()
	}
}

// DeleteFuture resolves an asynchronous Delete.
type DeleteFuture struct{ f *future }

// Wait blocks until the tombstone commits (or ErrNotFound).
func (f *DeleteFuture) Wait() error { return deleteResult(f.f.wait()) }

func deleteResult(m proto.Message, err error) error {
	if err != nil {
		return err
	}
	r := m.(*proto.DeleteReply)
	if r.Status == proto.StNotFound {
		return ErrNotFound
	}
	return r.Status.Err()
}

// ------------------------------------------------------------- issue calls

// PutAsync stores value under key in the default memgest without
// waiting for the commit.
func (c *Client) PutAsync(key string, value []byte) *PutFuture {
	return c.PutInAsync(key, value, 0)
}

// PutInAsync stores value under key in a specific memgest without
// waiting for the commit.
func (c *Client) PutInAsync(key string, value []byte, mg proto.MemgestID) *PutFuture {
	return &PutFuture{f: c.startOp(func() (proto.Message, error) { return c.doPutOp(key, value, mg) })}
}

// GetAsync fetches the newest committed value of key without waiting.
func (c *Client) GetAsync(key string) *GetFuture {
	return c.GetVersionAsync(key, 0)
}

// GetVersionAsync fetches a specific retained version of key
// (0 = newest) without waiting.
func (c *Client) GetVersionAsync(key string, ver proto.Version) *GetFuture {
	return &GetFuture{f: c.startOp(func() (proto.Message, error) { return c.doGetOp(key, ver) })}
}

// DeleteAsync removes key without waiting for the commit.
func (c *Client) DeleteAsync(key string) *DeleteFuture {
	return &DeleteFuture{f: c.startOp(func() (proto.Message, error) { return c.doDeleteOp(key) })}
}

// ---------------------------------------------------------------- pipeline

// Pipeline issues asynchronous operations with a bounded number
// outstanding: an issue call blocks while the bound is reached, then
// fires and returns without waiting for completion. Operations run on
// a fixed pool of worker goroutines (one per slot of depth) rather
// than a goroutine per request, so the steady-state issue path pays
// no goroutine spawn or stack growth. It is safe for concurrent use;
// Flush waits for everything issued so far and returns the first
// operation error (puts and deletes fail on any non-OK status, gets
// additionally on ErrNotFound). The workers exit when the client
// closes; operations issued after that resolve with the transport's
// closed error.
type Pipeline struct {
	c    *Client
	work chan func()
	wg   sync.WaitGroup

	// inflight counts operations currently executing; it is bounded by
	// the worker count and exists for observation (tests, stats).
	inflight atomic.Int32

	mu  sync.Mutex
	err error // first failure, sticky until Flush resets it
}

// NewPipeline creates a pipeline bounded to depth outstanding
// operations (<= 0 selects 16).
func (c *Client) NewPipeline(depth int) *Pipeline {
	if depth <= 0 {
		depth = 16
	}
	p := &Pipeline{c: c, work: make(chan func())}
	for i := 0; i < depth; i++ {
		go func() {
			for {
				select {
				case op := <-p.work:
					op()
				case <-c.closed:
					return
				}
			}
		}()
	}
	return p
}

// submit hands one operation to a worker, blocking while every worker
// is busy — that block is what bounds the pipeline depth.
func (p *Pipeline) submit(op func() (proto.Message, error), result func(proto.Message, error) error) *future {
	f := &future{done: make(chan struct{})}
	p.wg.Add(1)
	job := func() {
		Metrics.PipelineDepth.Observe(int64(p.inflight.Add(1)))
		f.msg, f.err = op()
		err := result(f.msg, f.err)
		p.inflight.Add(-1)
		p.end(err)
		close(f.done)
	}
	select {
	case p.work <- job:
	case <-p.c.closed:
		f.err = transport.ErrClosed
		p.end(f.err)
		close(f.done)
	}
	return f
}

func (p *Pipeline) end(err error) {
	if err != nil {
		p.mu.Lock()
		if p.err == nil {
			p.err = err
		}
		p.mu.Unlock()
	}
	p.wg.Done()
}

// Put issues an asynchronous put into the default memgest.
func (p *Pipeline) Put(key string, value []byte) *PutFuture {
	return p.PutIn(key, value, 0)
}

// PutIn issues an asynchronous put into a specific memgest.
func (p *Pipeline) PutIn(key string, value []byte, mg proto.MemgestID) *PutFuture {
	return &PutFuture{f: p.submit(
		func() (proto.Message, error) { return p.c.doPutOp(key, value, mg) },
		func(m proto.Message, err error) error { _, e := putResult(m, err); return e })}
}

// Get issues an asynchronous get.
func (p *Pipeline) Get(key string) *GetFuture {
	return &GetFuture{f: p.submit(
		func() (proto.Message, error) { return p.c.doGetOp(key, 0) },
		func(m proto.Message, err error) error { _, _, e := getResult(m, err); return e })}
}

// Delete issues an asynchronous delete.
func (p *Pipeline) Delete(key string) *DeleteFuture {
	return &DeleteFuture{f: p.submit(
		func() (proto.Message, error) { return p.c.doDeleteOp(key) },
		func(m proto.Message, err error) error { return deleteResult(m, err) })}
}

// Flush waits for every operation issued so far to complete and
// returns the first error among them (nil if all succeeded). The
// error is cleared, so a pipeline can be reused across batches.
func (p *Pipeline) Flush() error {
	p.wg.Wait()
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	return err
}
