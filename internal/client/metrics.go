package client

import "ring/internal/metrics"

// Metrics holds the process-wide client instruments, registered in
// metrics.Default under "client.*". Process-scoped like the transport
// counters: every client in this process (there is typically one per
// tool or benchmark) accumulates into them.
var Metrics struct {
	// Requests counts operations issued (first attempts only);
	// Retries counts re-resolve-and-retry cycles on top of those.
	Requests metrics.Counter
	Retries  metrics.Counter
	// Timeouts counts individual calls that expired without a reply.
	Timeouts metrics.Counter
	// Resolves counts configuration re-discoveries.
	Resolves metrics.Counter
	// PipelineDepth is the high-water mark of concurrently executing
	// pipelined operations.
	PipelineDepth metrics.MaxGauge
}

func init() {
	d := metrics.Default
	d.Register("client.requests", &Metrics.Requests)
	d.Register("client.retries", &Metrics.Retries)
	d.Register("client.timeouts", &Metrics.Timeouts)
	d.Register("client.resolves", &Metrics.Resolves)
	d.Register("client.pipeline_depth", &Metrics.PipelineDepth)
}
