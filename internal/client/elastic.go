package client

import (
	"fmt"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
)

// Convert re-encodes the newest committed version of key into memgest
// to, on the key's coordinator. from restricts the conversion to keys
// currently in that memgest (0 = whichever memgest holds the highest
// version). The call returns once the destination write committed and
// the source copy was purged — the transition window the coordinator
// holds open is invisible here beyond latency.
func (c *Client) Convert(key string, from, to proto.MemgestID) (proto.Version, error) {
	reply, err := c.doKeyOp(key,
		func(req proto.ReqID) proto.Message {
			return &proto.Convert{Req: req, Key: key, From: from, To: to}
		},
		func(m proto.Message) proto.Status { return m.(*proto.ConvertReply).Status })
	if err != nil {
		return 0, err
	}
	r := reply.(*proto.ConvertReply)
	if r.Status == proto.StNotFound {
		return 0, ErrNotFound
	}
	return r.Version, r.Status.Err()
}

// ConvertPrefix bulk-converts every key matching prefix into memgest
// to. A coordinator only converts the keys of shards it owns, so the
// client fans the request out to every distinct coordinator and sums
// the per-node counts. Returns the number of keys converted (partial
// on error: coordinators already answered have converted their keys).
func (c *Client) ConvertPrefix(prefix string, from, to proto.MemgestID) (int, error) {
	Metrics.Requests.Inc()
	cfg := c.Config()
	if cfg == nil || cfg.Shards() == 0 {
		return 0, fmt.Errorf("client: no configuration")
	}
	total := 0
	seen := make(map[proto.NodeID]bool)
	for _, id := range cfg.Coords {
		if seen[id] {
			continue
		}
		seen[id] = true
		var lastErr error
		done := false
		for attempt := 0; attempt <= c.opts.Retries; attempt++ {
			if attempt > 0 {
				Metrics.Retries.Inc()
				_ = c.resolve(nil)
				time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
			}
			req := c.reqID()
			reply, err := c.call(core.NodeAddr(id), req,
				&proto.Convert{Req: req, Key: prefix, From: from, To: to, Prefix: true})
			if err != nil {
				lastErr = err
				continue
			}
			r, ok := reply.(*proto.ConvertReply)
			if !ok {
				lastErr = fmt.Errorf("client: unexpected reply %T", reply)
				continue
			}
			if retryStatus(r.Status) {
				lastErr = r.Status.Err()
				continue
			}
			if err := r.Status.Err(); err != nil {
				return total, err
			}
			total += int(r.Converted)
			done = true
			break
		}
		if !done {
			if lastErr == nil {
				lastErr = ErrTimeout
			}
			return total, lastErr
		}
	}
	return total, nil
}

// doResize runs a leader-routed membership request.
func (c *Client) doResize(op proto.ResizeOp, node proto.NodeID) (*proto.ResizeReply, error) {
	Metrics.Requests.Inc()
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			Metrics.Retries.Inc()
			_ = c.resolve(nil)
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		to, err := c.leaderAddr()
		if err != nil {
			lastErr = err
			continue
		}
		req := c.reqID()
		reply, err := c.call(to, req, &proto.Resize{Req: req, Op: op, Node: node})
		if err != nil {
			lastErr = err
			continue
		}
		r, ok := reply.(*proto.ResizeReply)
		if !ok {
			lastErr = fmt.Errorf("client: unexpected reply %T", reply)
			continue
		}
		if retryStatus(r.Status) {
			lastErr = r.Status.Err()
			continue
		}
		return r, nil
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, lastErr
}

// ResizeJoin admits node into the cluster as a spare (quarantine-then-
// announce: the node must be running and rejoining). Idempotent.
// Returns the epoch of the configuration that includes the node.
func (c *Client) ResizeJoin(node proto.NodeID) (proto.Epoch, error) {
	r, err := c.doResize(proto.ResizeJoin, node)
	if err != nil {
		return 0, err
	}
	_ = c.resolve(nil)
	return r.Epoch, r.Status.Err()
}

// ResizeLeave gracefully removes node: the leader fences it behind a
// configuration that excludes it, substitutes a spare into its roles,
// and announces cluster-wide once the fence acks. Returns the number
// of placement slots that actually moved (the minimal-movement
// metric) and the new epoch.
func (c *Client) ResizeLeave(node proto.NodeID) (int, proto.Epoch, error) {
	r, err := c.doResize(proto.ResizeLeave, node)
	if err != nil {
		return 0, 0, err
	}
	_ = c.resolve(nil)
	return int(r.Moved), r.Epoch, r.Status.Err()
}
