package client

import (
	"bytes"
	"testing"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
)

// TestQuorumSurvivesPartitionedReplica: with one replica of a Rep(4,3)
// memgest unreachable, puts still commit through the remaining
// majority — the availability property quorum replication buys.
func TestQuorumSurvivesPartitionedReplica(t *testing.T) {
	spec := testSpec()
	spec.Memgests = []proto.Scheme{proto.Rep(4, 3)}
	cl, err := core.StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c, err := Dial(cl.Fabric, []string{core.NodeAddr(0)}, Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Partition node 4 (the second redundancy node, a replica of every
	// shard): all traffic to it vanishes.
	cl.Fabric.SetDropFunc(func(from, to string) bool { return to == core.NodeAddr(4) })
	defer cl.Fabric.SetDropFunc(nil)

	val := bytes.Repeat([]byte("p"), 256)
	for i := 0; i < 6; i++ {
		key := "part-" + string(rune('a'+i))
		if _, err := c.PutIn(key, val, 1); err != nil {
			t.Fatalf("put %s with partitioned replica: %v", key, err)
		}
		got, _, err := c.Get(key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("get %s: %v", key, err)
		}
	}
}

// TestParityPartitionHeals: SRS puts need every parity ack, so a
// partitioned parity node stalls them — until the failure detector
// declares it dead, promotes a spare, rebuilds parity, and the
// client's retries go through.
func TestParityPartitionHeals(t *testing.T) {
	spec := testSpec()
	spec.Memgests = []proto.Scheme{proto.SRS(2, 1, 3)}
	cl, err := core.StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c, err := Dial(cl.Fabric, []string{core.NodeAddr(0)}, Options{Timeout: 500 * time.Millisecond, Retries: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Warm write before the partition.
	if _, err := c.PutIn("pre", []byte("before"), 1); err != nil {
		t.Fatal(err)
	}

	// Node 3 is parity 0 of the SRS(2,1,3) memgest. Cut it off.
	cl.Fabric.SetDropFunc(func(from, to string) bool { return to == core.NodeAddr(3) })

	// The put stalls initially, then succeeds once the leader promotes
	// a spare parity node; the client's retry loop rides it out.
	done := make(chan error, 1)
	go func() {
		_, err := c.PutIn("during", []byte("heal"), 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("put never healed: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("put did not complete after parity failover")
	}
	// Pre-partition data still readable; parity was rebuilt on the
	// spare, so the stripe remains recoverable.
	got, _, err := c.Get("pre")
	if err != nil || string(got) != "before" {
		t.Fatalf("pre-partition key: %v", err)
	}
	got, _, err = c.Get("during")
	if err != nil || string(got) != "heal" {
		t.Fatalf("healed key: %v", err)
	}
}
