package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/testutil"
	"ring/internal/transport"
)

// TestTCPClusterEndToEnd boots a full 5-node cluster over real TCP
// sockets on loopback — the ringd deployment path — and exercises the
// client API against it, including a node crash.
func TestTCPClusterEndToEnd(t *testing.T) {
	spec := core.ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 1,
		Memgests: []proto.Scheme{
			proto.Rep(3, 3),
			proto.SRS(3, 2, 3),
		},
		Opts: core.Options{
			BlockSize:      64 << 10,
			HeartbeatEvery: 20 * time.Millisecond,
			FailAfter:      150 * time.Millisecond,
		},
	}
	cfg, err := core.BootConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	nodes := cfg.AllNodes()

	// Register every node on its own fabric first (port 0), then remap
	// all logical names to the bound addresses on every fabric.
	fabrics := make(map[proto.NodeID]*transport.TCPFabric)
	endpoints := make(map[proto.NodeID]transport.Endpoint)
	for _, id := range nodes {
		f := transport.NewTCPFabric()
		f.Map(core.NodeAddr(id), "127.0.0.1:0")
		ep, err := f.Register(core.NodeAddr(id))
		if err != nil {
			t.Fatal(err)
		}
		fabrics[id] = f
		endpoints[id] = ep
	}
	bound := make(map[proto.NodeID]string)
	for id, ep := range endpoints {
		bound[id] = transport.BoundAddr(ep)
	}
	clientFabric := transport.NewTCPFabric()
	clientFabric.Map("client/1", "127.0.0.1:0")
	for id, addr := range bound {
		clientFabric.Map(core.NodeAddr(id), addr)
		for _, f := range fabrics {
			f.Map(core.NodeAddr(id), addr)
		}
	}
	// The endpoints were registered before the remap; that is fine —
	// they were bound by concrete address already. Wrap them in
	// runners via a fabric that returns the existing endpoint.
	runners := make(map[proto.NodeID]*core.Runner)
	for _, id := range nodes {
		n := core.New(id, cfg.Clone(), spec.Opts)
		r, err := core.StartRunner(n, preRegistered{endpoints[id]}, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		runners[id] = r
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	c, err := Dial(clientFabric, []string{core.NodeAddr(0)}, Options{Timeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	val := bytes.Repeat([]byte("tcp"), 400)
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("tcp-%d", i)
		if _, err := c.PutIn(key, val, proto.MemgestID(i%2+1)); err != nil {
			t.Fatalf("put over TCP: %v", err)
		}
	}
	for i := 0; i < 12; i++ {
		got, _, err := c.Get(fmt.Sprintf("tcp-%d", i))
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("get over TCP: %v", err)
		}
	}
	if _, err := c.Move("tcp-0", 2); err != nil {
		t.Fatalf("move over TCP: %v", err)
	}

	// Crash a coordinator; the spare takes over and data survives.
	runners[2].Stop()
	delete(runners, 2)
	reconfigured := testutil.Eventually(15*time.Second, 30*time.Millisecond, func() bool {
		var epoch proto.Epoch
		runners[0].Inspect(func(n *core.Node) { epoch = n.Config().Epoch })
		return epoch >= 2
	})
	if !reconfigured {
		t.Fatal("no reconfiguration over TCP")
	}
	for i := 0; i < 12; i++ {
		got, _, err := c.Get(fmt.Sprintf("tcp-%d", i))
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("get after TCP failover: %v", err)
		}
	}
}

// preRegistered adapts an already-registered endpoint to the Fabric
// interface StartRunner expects.
type preRegistered struct{ ep transport.Endpoint }

func (p preRegistered) Register(string) (transport.Endpoint, error) { return p.ep, nil }
