// Package client implements the synchronous Ring client: the
// key-to-node routing of Section 5.1 (i = h(key) mod s), request/reply
// correlation, and the timeout + re-resolve fallback of Section 5.5
// (clients that get no answer re-discover the configuration and retry
// against the node now responsible for the key).
package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/store"
	"ring/internal/transport"
)

// Options tunes client behaviour.
type Options struct {
	// Timeout bounds one attempt of one request.
	Timeout time.Duration
	// Retries bounds re-resolve-and-retry cycles.
	Retries int
}

func (o Options) defaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 8
	}
	return o
}

// ErrTimeout is returned when a request exhausted its retries.
var ErrTimeout = errors.New("client: request timed out")

// ErrNotFound is returned by Get/Delete/Move for missing keys.
var ErrNotFound = errors.New("client: key not found")

var clientSeq atomic.Uint64

// Client is a synchronous Ring client. It is safe for concurrent use.
type Client struct {
	opts Options
	ep   transport.Endpoint

	mu      sync.Mutex
	cfg     *proto.Config
	nextReq uint64
	waiters map[proto.ReqID]chan proto.Message

	closed chan struct{}
}

// Dial registers a client endpoint on the fabric and fetches the
// configuration from the given bootstrap node addresses.
func Dial(fabric transport.Fabric, bootstrap []string, opts Options) (*Client, error) {
	addr := fmt.Sprintf("client/%d", clientSeq.Add(1))
	ep, err := fabric.Register(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		opts:    opts.defaults(),
		ep:      ep,
		nextReq: 1,
		waiters: make(map[proto.ReqID]chan proto.Message),
		closed:  make(chan struct{}),
	}
	go c.recvLoop()
	if err := c.resolve(bootstrap); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the client endpoint.
func (c *Client) Close() {
	select {
	case <-c.closed:
		return
	default:
	}
	close(c.closed)
	c.ep.Close()
}

// Config returns the client's current view of the cluster.
func (c *Client) Config() *proto.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

func (c *Client) recvLoop() {
	for {
		p, err := c.ep.Recv()
		if err != nil {
			return
		}
		// Servers coalesce replies bound for the same client into one
		// TBatch packet; deliver each to its waiter.
		_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
			msg, err := proto.Decode(enc)
			if err != nil {
				return nil
			}
			req, ok := requestID(msg)
			if !ok {
				return nil
			}
			c.mu.Lock()
			ch := c.waiters[req]
			delete(c.waiters, req)
			c.mu.Unlock()
			if ch != nil {
				ch <- msg
			}
			return nil
		})
		transport.ReleaseBuf(p.Payload)
	}
}

// requestID extracts the correlation id from a reply message.
func requestID(m proto.Message) (proto.ReqID, bool) {
	switch r := m.(type) {
	case *proto.PutReply:
		return r.Req, true
	case *proto.GetReply:
		return r.Req, true
	case *proto.DeleteReply:
		return r.Req, true
	case *proto.MoveReply:
		return r.Req, true
	case *proto.MemgestReply:
		return r.Req, true
	case *proto.ResolveReply:
		return r.Req, true
	case *proto.ConvertReply:
		return r.Req, true
	case *proto.ResizeReply:
		return r.Req, true
	}
	return 0, false
}

// call sends a request to `to` and waits for the matching reply.
// timerPool recycles timeout timers across calls: time.After would
// leave a live runtime timer behind for the full timeout after every
// completed request, which at pipelined rates means thousands of
// orphaned timers churning the timer heap.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

func (c *Client) call(to string, req proto.ReqID, msg proto.Message) (proto.Message, error) {
	ch := make(chan proto.Message, 1)
	c.mu.Lock()
	c.waiters[req] = ch
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.waiters, req)
		c.mu.Unlock()
	}
	if err := c.ep.Send(to, proto.AppendEncode(transport.AcquireBuf(), msg)); err != nil {
		cleanup()
		return nil, err
	}
	t := acquireTimer(c.opts.Timeout)
	defer releaseTimer(t)
	select {
	case reply := <-ch:
		return reply, nil
	case <-t.C:
		Metrics.Timeouts.Inc()
		cleanup()
		return nil, ErrTimeout
	case <-c.closed:
		cleanup()
		return nil, transport.ErrClosed
	}
}

func (c *Client) reqID() proto.ReqID {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := proto.ReqID(c.nextReq)
	c.nextReq++
	return r
}

// resolve queries the given addresses (or every node of the last known
// config) for the freshest configuration — the client-side analogue of
// the paper's multicast re-discovery.
func (c *Client) resolve(addrs []string) error {
	Metrics.Resolves.Inc()
	if addrs == nil {
		c.mu.Lock()
		if c.cfg != nil {
			for _, id := range c.cfg.AllNodes() {
				addrs = append(addrs, core.NodeAddr(id))
			}
		}
		c.mu.Unlock()
	}
	var best *proto.Config
	for _, a := range addrs {
		req := c.reqID()
		reply, err := c.call(a, req, &proto.Resolve{Req: req})
		if err != nil {
			continue
		}
		rr, ok := reply.(*proto.ResolveReply)
		if !ok {
			continue
		}
		if best == nil || rr.Config.Epoch > best.Epoch {
			best = rr.Config
		}
	}
	if best == nil {
		return fmt.Errorf("client: no node answered resolve")
	}
	c.mu.Lock()
	c.cfg = best
	c.mu.Unlock()
	return nil
}

func (c *Client) coordinatorFor(key string) (string, error) {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	if cfg == nil || cfg.Shards() == 0 {
		return "", fmt.Errorf("client: no configuration")
	}
	return core.NodeAddr(cfg.CoordinatorOf(store.KeyHash(key))), nil
}

func (c *Client) leaderAddr() (string, error) {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	if cfg == nil {
		return "", fmt.Errorf("client: no configuration")
	}
	return core.NodeAddr(cfg.Leader), nil
}

// retryStatus reports whether a status warrants re-resolving and
// retrying.
func retryStatus(s proto.Status) bool {
	return s == proto.StWrongNode || s == proto.StRetry || s == proto.StUnavailable
}

// doKeyOp runs a key-routed request with timeout/wrong-node retry.
func (c *Client) doKeyOp(key string, build func(proto.ReqID) proto.Message, status func(proto.Message) proto.Status) (proto.Message, error) {
	Metrics.Requests.Inc()
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			Metrics.Retries.Inc()
			_ = c.resolve(nil)
			// Brief backoff: the cluster may be mid-reconfiguration.
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		to, err := c.coordinatorFor(key)
		if err != nil {
			lastErr = err
			continue
		}
		req := c.reqID()
		reply, err := c.call(to, req, build(req))
		if err != nil {
			lastErr = err
			continue
		}
		if s := status(reply); retryStatus(s) {
			lastErr = s.Err()
			continue
		}
		return reply, nil
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, lastErr
}

// Put stores value under key in the cluster's default memgest.
func (c *Client) Put(key string, value []byte) (proto.Version, error) {
	return c.PutIn(key, value, 0)
}

// PutIn stores value under key in a specific memgest. It is the
// one-deep special case of the asynchronous path: issue, then wait.
func (c *Client) PutIn(key string, value []byte, mg proto.MemgestID) (proto.Version, error) {
	return c.PutInAsync(key, value, mg).Wait()
}

// Get fetches the newest committed value of key.
func (c *Client) Get(key string) ([]byte, proto.Version, error) {
	return c.GetVersion(key, 0)
}

// GetVersion fetches a specific retained version of key (0 = newest).
// Older versions exist while in flight or when the cluster runs with
// KeepVersions > 0 — e.g. the durable copy a key had before being
// moved to the unreliable memgest.
func (c *Client) GetVersion(key string, ver proto.Version) ([]byte, proto.Version, error) {
	return c.GetVersionAsync(key, ver).Wait()
}

// Delete removes key.
func (c *Client) Delete(key string) error {
	return c.DeleteAsync(key).Wait()
}

// Move transfers key to another memgest without resending its value.
func (c *Client) Move(key string, mg proto.MemgestID) (proto.Version, error) {
	reply, err := c.doKeyOp(key,
		func(req proto.ReqID) proto.Message { return &proto.Move{Req: req, Key: key, Memgest: mg} },
		func(m proto.Message) proto.Status { return m.(*proto.MoveReply).Status })
	if err != nil {
		return 0, err
	}
	r := reply.(*proto.MoveReply)
	if r.Status == proto.StNotFound {
		return 0, ErrNotFound
	}
	return r.Version, r.Status.Err()
}

// doLeaderOp runs a leader-routed management request.
func (c *Client) doLeaderOp(build func(proto.ReqID) proto.Message) (*proto.MemgestReply, error) {
	Metrics.Requests.Inc()
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			Metrics.Retries.Inc()
			_ = c.resolve(nil)
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		to, err := c.leaderAddr()
		if err != nil {
			lastErr = err
			continue
		}
		req := c.reqID()
		reply, err := c.call(to, req, build(req))
		if err != nil {
			lastErr = err
			continue
		}
		r, ok := reply.(*proto.MemgestReply)
		if !ok {
			lastErr = fmt.Errorf("client: unexpected reply %T", reply)
			continue
		}
		if retryStatus(r.Status) {
			lastErr = r.Status.Err()
			continue
		}
		return r, nil
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, lastErr
}

// CreateMemgest instantiates a new storage scheme and returns its ID.
func (c *Client) CreateMemgest(sc proto.Scheme) (proto.MemgestID, error) {
	r, err := c.doLeaderOp(func(req proto.ReqID) proto.Message {
		return &proto.CreateMemgest{Req: req, Scheme: sc}
	})
	if err != nil {
		return 0, err
	}
	if r.Status != proto.StOK {
		return 0, r.Status.Err()
	}
	// Refresh the config so subsequent puts route into the new scheme.
	_ = c.resolve(nil)
	return r.Memgest, nil
}

// DeleteMemgest removes a memgest.
func (c *Client) DeleteMemgest(id proto.MemgestID) error {
	r, err := c.doLeaderOp(func(req proto.ReqID) proto.Message {
		return &proto.DeleteMemgest{Req: req, Memgest: id}
	})
	if err != nil {
		return err
	}
	_ = c.resolve(nil)
	return r.Status.Err()
}

// SetDefaultMemgest selects the memgest for puts without an explicit
// scheme.
func (c *Client) SetDefaultMemgest(id proto.MemgestID) error {
	r, err := c.doLeaderOp(func(req proto.ReqID) proto.Message {
		return &proto.SetDefault{Req: req, Memgest: id}
	})
	if err != nil {
		return err
	}
	_ = c.resolve(nil)
	return r.Status.Err()
}

// GetMemgestDescriptor fetches a memgest's scheme.
func (c *Client) GetMemgestDescriptor(id proto.MemgestID) (proto.Scheme, error) {
	r, err := c.doLeaderOp(func(req proto.ReqID) proto.Message {
		return &proto.GetDescriptor{Req: req, Memgest: id}
	})
	if err != nil {
		return proto.Scheme{}, err
	}
	if r.Status != proto.StOK {
		return proto.Scheme{}, r.Status.Err()
	}
	return r.Scheme, nil
}
