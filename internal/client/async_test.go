package client

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestAsyncPutGetDelete(t *testing.T) {
	_, c := startCluster(t)

	// Issue a window of puts before waiting on any of them.
	futs := make([]*PutFuture, 32)
	for i := range futs {
		futs[i] = c.PutInAsync(fmt.Sprintf("async-%d", i), []byte(fmt.Sprintf("v%d", i)), 2)
	}
	for i, f := range futs {
		if ver, err := f.Wait(); err != nil || ver != 1 {
			t.Fatalf("put %d: v%d %v", i, ver, err)
		}
	}

	gets := make([]*GetFuture, len(futs))
	for i := range gets {
		gets[i] = c.GetAsync(fmt.Sprintf("async-%d", i))
	}
	for i, f := range gets {
		val, ver, err := f.Wait()
		if err != nil || ver != 1 || !bytes.Equal(val, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("get %d: %q v%d %v", i, val, ver, err)
		}
	}

	if err := c.DeleteAsync("async-0").Wait(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetAsync("async-0").Wait(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted: %v", err)
	}
	// A delete of a missing key resolves to ErrNotFound through the
	// future as well.
	if err := c.DeleteAsync("async-never").Wait(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestAsyncFutureWaitIsIdempotent(t *testing.T) {
	_, c := startCluster(t)
	f := c.PutInAsync("idem", []byte("v"), 2)
	v1, err1 := f.Wait()
	v2, err2 := f.Wait()
	if v1 != v2 || !errors.Is(err1, err2) && (err1 != nil || err2 != nil) {
		t.Fatalf("Wait not idempotent: (%v,%v) vs (%v,%v)", v1, err1, v2, err2)
	}
}

func TestPipelineBoundsOutstanding(t *testing.T) {
	_, c := startCluster(t)
	const depth = 4
	p := c.NewPipeline(depth)
	for i := 0; i < 64; i++ {
		p.PutIn(fmt.Sprintf("pipe-%d", i), []byte("v"), 2)
		if n := p.inflight.Load(); int(n) > depth {
			t.Fatalf("outstanding %d > depth %d", n, depth)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Everything issued before Flush is visible afterwards.
	for i := 0; i < 64; i++ {
		if _, _, err := c.Get(fmt.Sprintf("pipe-%d", i)); err != nil {
			t.Fatalf("get pipe-%d after flush: %v", i, err)
		}
	}
}

func TestPipelineMixedOpsAndReuse(t *testing.T) {
	_, c := startCluster(t)
	p := c.NewPipeline(8)
	for i := 0; i < 16; i++ {
		p.PutIn(fmt.Sprintf("mix-%d", i), []byte{byte(i)}, 2)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Second batch on the same pipeline: gets and deletes, with typed
	// results available through the returned futures.
	gf := p.Get("mix-3")
	p.Delete("mix-5")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if val, _, err := gf.Wait(); err != nil || !bytes.Equal(val, []byte{3}) {
		t.Fatalf("pipelined get: %q %v", val, err)
	}
	if _, _, err := c.Get("mix-5"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mix-5 not deleted: %v", err)
	}
}

func TestPipelineSurfacesFirstError(t *testing.T) {
	_, c := startCluster(t)
	p := c.NewPipeline(8)
	p.Get("pipeline-missing-key") // NotFound becomes the flush error
	err := p.Flush()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("flush err = %v, want ErrNotFound", err)
	}
	// The error is consumed: a clean batch flushes clean.
	p.PutIn("pipe-ok", []byte("v"), 2)
	if err := p.Flush(); err != nil {
		t.Fatalf("reused pipeline: %v", err)
	}
}

func TestPipelineConcurrentIssuers(t *testing.T) {
	_, c := startCluster(t)
	p := c.NewPipeline(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				p.PutIn(fmt.Sprintf("conc-%d-%d", g, i), []byte("v"), 2)
			}
		}(g)
	}
	wg.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		for i := 0; i < 16; i++ {
			if _, _, err := c.Get(fmt.Sprintf("conc-%d-%d", g, i)); err != nil {
				t.Fatalf("conc-%d-%d: %v", g, i, err)
			}
		}
	}
}

func TestAsyncManyInFlightOverwritesSameKey(t *testing.T) {
	// Pipelined writes to the same key stress the version chain and
	// the coalesced commit+purge path; the final committed version must
	// be the highest issued.
	_, c := startCluster(t)
	p := c.NewPipeline(8)
	for i := 0; i < 40; i++ {
		p.PutIn("hot", []byte{byte(i)}, 2)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	_, ver, err := c.Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	if ver != 40 {
		t.Fatalf("version after 40 pipelined overwrites = %d", ver)
	}
}
