package client

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/testutil"
)

func testSpec() core.ClusterSpec {
	return core.ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 2,
		Memgests: []proto.Scheme{
			proto.Rep(1, 3),
			proto.Rep(3, 3),
			proto.SRS(2, 1, 3),
			proto.SRS(3, 2, 3),
		},
		Opts: core.Options{
			BlockSize:      16 << 10,
			HeartbeatEvery: 20 * time.Millisecond,
			FailAfter:      120 * time.Millisecond,
		},
		TickEvery: 10 * time.Millisecond,
	}
}

func startCluster(t *testing.T) (*core.Cluster, *Client) {
	t.Helper()
	cl, err := core.StartCluster(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := Dial(cl.Fabric, []string{core.NodeAddr(0)}, Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return cl, c
}

func TestLivePutGetDelete(t *testing.T) {
	_, c := startCluster(t)
	for mgi, mg := range []proto.MemgestID{1, 2, 3, 4} {
		key := fmt.Sprintf("live-%d", mgi)
		val := bytes.Repeat([]byte{byte(mgi)}, 1024)
		ver, err := c.PutIn(key, val, mg)
		if err != nil || ver != 1 {
			t.Fatalf("put %s: v%d %v", key, ver, err)
		}
		got, ver, err := c.Get(key)
		if err != nil || ver != 1 || !bytes.Equal(got, val) {
			t.Fatalf("get %s: v%d %v", key, ver, err)
		}
		if err := c.Delete(key); err != nil {
			t.Fatalf("delete %s: %v", key, err)
		}
		if _, _, err := c.Get(key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get deleted %s: %v", key, err)
		}
	}
}

func TestLiveDefaultMemgest(t *testing.T) {
	_, c := startCluster(t)
	if _, err := c.Put("defkey", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefaultMemgest(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("defkey2", []byte("w")); err != nil {
		t.Fatal(err)
	}
	sc, err := c.GetMemgestDescriptor(4)
	if err != nil || sc.Kind != proto.SchemeSRS || sc.K != 3 || sc.M != 2 {
		t.Fatalf("descriptor: %v %v", sc, err)
	}
}

func TestLiveMove(t *testing.T) {
	_, c := startCluster(t)
	val := bytes.Repeat([]byte("z"), 2048)
	if _, err := c.PutIn("mv", val, 1); err != nil {
		t.Fatal(err)
	}
	for _, mg := range []proto.MemgestID{4, 2, 3, 1} {
		if _, err := c.Move("mv", mg); err != nil {
			t.Fatalf("move to %d: %v", mg, err)
		}
		got, _, err := c.Get("mv")
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("get after move to %d: %v", mg, err)
		}
	}
	if _, err := c.Move("absent", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("move missing: %v", err)
	}
}

func TestLiveCreateMemgest(t *testing.T) {
	_, c := startCluster(t)
	id, err := c.CreateMemgest(proto.SRS(2, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutIn("newk", []byte("v"), id); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Get("newk")
	if err != nil || string(got) != "v" {
		t.Fatalf("get: %q %v", got, err)
	}
	if err := c.DeleteMemgest(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutIn("newk2", []byte("v"), id); err == nil {
		t.Fatal("put into deleted memgest succeeded")
	}
}

func TestLiveConcurrentClients(t *testing.T) {
	cl, _ := startCluster(t)
	const clients, per = 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(cl.Fabric, []string{core.NodeAddr(0)}, Options{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			mg := proto.MemgestID(ci%4 + 1)
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("cc-%d-%d", ci, i)
				val := []byte(key)
				if _, err := c.PutIn(key, val, mg); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				got, _, err := c.Get(key)
				if err != nil || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("get %s: %v", key, err)
					return
				}
			}
			errs <- nil
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveContendedKey(t *testing.T) {
	// Multiple clients hammer one key; versions must be unique and
	// strictly increasing per the strong-consistency contract.
	cl, _ := startCluster(t)
	const writers, per = 3, 20
	vers := make(chan proto.Version, writers*per)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(cl.Fabric, []string{core.NodeAddr(0)}, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			mg := proto.MemgestID(w%2*3 + 1) // alternate REP1 / SRS32
			for i := 0; i < per; i++ {
				v, err := c.PutIn("hot", []byte(fmt.Sprintf("w%d-%d", w, i)), mg)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				vers <- v
			}
		}(w)
	}
	wg.Wait()
	close(vers)
	seen := make(map[proto.Version]bool)
	max := proto.Version(0)
	count := 0
	for v := range vers {
		if seen[v] {
			t.Fatalf("version %d assigned twice", v)
		}
		seen[v] = true
		if v > max {
			max = v
		}
		count++
	}
	if int(max) != count {
		t.Fatalf("versions not dense: max=%d count=%d", max, count)
	}
}

func TestLiveCoordinatorFailover(t *testing.T) {
	cl, c := startCluster(t)
	keys := make(map[string][]byte)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("fo-%d", i)
		val := bytes.Repeat([]byte{byte(i)}, 512)
		mg := []proto.MemgestID{2, 3, 4}[i%3] // only reliable schemes
		if _, err := c.PutIn(key, val, mg); err != nil {
			t.Fatal(err)
		}
		keys[key] = val
	}
	// Kill a non-leader coordinator.
	cl.Kill(1)
	// Wait for reconfiguration to propagate.
	reconfigured := testutil.Eventually(10*time.Second, 20*time.Millisecond, func() bool {
		var epoch proto.Epoch
		cl.Runs[0].Inspect(func(n *core.Node) { epoch = n.Config().Epoch })
		return epoch >= 2
	})
	if !reconfigured {
		t.Fatal("cluster never reconfigured")
	}
	// All keys must be readable post-failover (client retries ride out
	// the recovery window).
	for key, val := range keys {
		got, _, err := c.Get(key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("get %s after failover: %v", key, err)
		}
	}
	// Writes work too.
	if _, err := c.PutIn("post", []byte("alive"), 2); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
}

func TestLiveLeaderFailover(t *testing.T) {
	cl, c := startCluster(t)
	if _, err := c.PutIn("lk", []byte("v"), 2); err != nil {
		t.Fatal(err)
	}
	cl.Kill(0)
	failedOver := testutil.Eventually(10*time.Second, 20*time.Millisecond, func() bool {
		var lead proto.NodeID
		var serving bool
		cl.Runs[1].Inspect(func(n *core.Node) { lead = n.Config().Leader; serving = n.Serving() })
		return lead == 1 && serving
	})
	if !failedOver {
		t.Fatal("no new leader")
	}
	got, _, err := c.Get("lk")
	if err != nil || string(got) != "v" {
		t.Fatalf("get after leader failover: %q %v", got, err)
	}
	// Management ops route to the new leader after re-resolve.
	if _, err := c.CreateMemgest(proto.Rep(2, 3)); err != nil {
		t.Fatalf("create after leader failover: %v", err)
	}
}

func TestLiveDialFailsWithoutNodes(t *testing.T) {
	cl, err := core.StartCluster(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if _, err := Dial(cl.Fabric, []string{"node/99"}, Options{Timeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("dial to nonexistent bootstrap succeeded")
	}
}
