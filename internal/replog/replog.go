// Package replog implements the coordinator-side machinery of a
// memgest's replicated log: sequence allocation, per-entry ack
// tracking against a required quorum, and a bounded ordered log of
// recent entries kept for redundancy-node catch-up.
//
// Every memgest has one log per shard (Section 5.2: "Each memgest has
// a special replicated log to propagate updates generated from client
// requests within itself"). Entries commit independently — the paper
// explicitly allows higher versions to commit before lower ones — so
// the tracker has no prefix-commit constraint.
package replog

import (
	"fmt"
	"sort"

	"ring/internal/proto"
)

// Tracker allocates sequence numbers and counts acknowledgements until
// each entry reaches its required quorum.
type Tracker struct {
	next    proto.Seq
	pending map[proto.Seq]*entry
}

type entry struct {
	need int
	acks map[proto.NodeID]bool
}

// NewTracker creates a tracker whose first sequence is 1.
func NewTracker() *Tracker {
	return &Tracker{next: 1, pending: make(map[proto.Seq]*entry)}
}

// Next allocates the next sequence number.
func (t *Tracker) Next() proto.Seq {
	s := t.next
	t.next++
	return s
}

// Advance moves the allocator past seq. A coordinator recovering from
// disk calls this with the highest sequence its durable state (or a
// peer's fetch reply) mentions, so re-allocated sequences can never
// collide with its previous life's.
func (t *Tracker) Advance(seq proto.Seq) {
	if seq >= t.next {
		t.next = seq + 1
	}
}

// Open registers an in-flight entry requiring `need` remote acks.
// need == 0 entries are trivially complete and are not registered.
func (t *Tracker) Open(seq proto.Seq, need int) {
	if need < 0 {
		panic(fmt.Sprintf("replog: negative ack requirement %d", need))
	}
	if need == 0 {
		return
	}
	if _, ok := t.pending[seq]; ok {
		panic(fmt.Sprintf("replog: seq %d opened twice", seq))
	}
	t.pending[seq] = &entry{need: need, acks: make(map[proto.NodeID]bool)}
}

// Ack records an acknowledgement from a node. It returns true exactly
// once: when the entry reaches its quorum. Duplicate acks from the
// same node and acks for unknown (already complete or never opened)
// sequences are ignored.
func (t *Tracker) Ack(seq proto.Seq, from proto.NodeID) bool {
	e, ok := t.pending[seq]
	if !ok {
		return false
	}
	if e.acks[from] {
		return false
	}
	e.acks[from] = true
	if len(e.acks) >= e.need {
		delete(t.pending, seq)
		return true
	}
	return false
}

// Pending returns the number of in-flight entries.
func (t *Tracker) Pending() int { return len(t.pending) }

// Cancel drops an in-flight entry (e.g. the memgest was deleted).
func (t *Tracker) Cancel(seq proto.Seq) { delete(t.pending, seq) }

// PendingSeqs returns the in-flight sequences in ascending order.
func (t *Tracker) PendingSeqs() []proto.Seq {
	out := make([]proto.Seq, 0, len(t.pending))
	for s := range t.pending {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Record is one retained log entry: the marshaled replication message
// that produced it, so it can be re-sent verbatim to a node catching
// up.
type Record struct {
	Seq     proto.Seq
	Payload []byte
}

// Log is a bounded in-order record of recent replication messages.
// When the bound is exceeded the oldest entries are discarded; nodes
// that have fallen behind the log's base must take a full state
// transfer (MetaFetch) instead of a log replay.
type Log struct {
	max  int
	base proto.Seq // sequence of recs[0]
	recs []Record
}

// NewLog creates a log retaining at most max entries (max <= 0 selects
// a default of 4096).
func NewLog(max int) *Log {
	if max <= 0 {
		max = 4096
	}
	return &Log{max: max, base: 1}
}

// Append stores a record; sequences must be appended in strictly
// increasing order.
func (l *Log) Append(seq proto.Seq, payload []byte) {
	if n := len(l.recs); n > 0 && seq <= l.recs[n-1].Seq {
		panic(fmt.Sprintf("replog: append of seq %d after %d", seq, l.recs[n-1].Seq))
	}
	l.recs = append(l.recs, Record{Seq: seq, Payload: payload})
	if len(l.recs) > l.max {
		drop := len(l.recs) - l.max
		l.base = l.recs[drop].Seq
		l.recs = append([]Record(nil), l.recs[drop:]...)
	}
}

// Since returns all records with sequence > seq, or ok=false when the
// log has been truncated past seq (full state transfer required).
func (l *Log) Since(seq proto.Seq) (recs []Record, ok bool) {
	if len(l.recs) == 0 {
		return nil, true
	}
	if seq+1 < l.base {
		return nil, false
	}
	i := sort.Search(len(l.recs), func(i int) bool { return l.recs[i].Seq > seq })
	return append([]Record(nil), l.recs[i:]...), true
}

// Len returns the number of retained records.
func (l *Log) Len() int { return len(l.recs) }

// Base returns the oldest retained sequence (or the next sequence when
// empty).
func (l *Log) Base() proto.Seq { return l.base }

// LastSeq returns the newest retained sequence, or 0 when empty.
func (l *Log) LastSeq() proto.Seq {
	if len(l.recs) == 0 {
		return 0
	}
	return l.recs[len(l.recs)-1].Seq
}
