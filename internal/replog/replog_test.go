package replog

import (
	"testing"

	"ring/internal/proto"
)

func TestTrackerSequences(t *testing.T) {
	tr := NewTracker()
	if tr.Next() != 1 || tr.Next() != 2 || tr.Next() != 3 {
		t.Fatal("sequences must start at 1 and increment")
	}
}

func TestTrackerQuorum(t *testing.T) {
	tr := NewTracker()
	tr.Open(1, 2)
	if tr.Pending() != 1 {
		t.Fatal("pending != 1")
	}
	if tr.Ack(1, 10) {
		t.Fatal("quorum reached with 1 of 2 acks")
	}
	if tr.Ack(1, 10) {
		t.Fatal("duplicate ack counted")
	}
	if !tr.Ack(1, 11) {
		t.Fatal("quorum not reached with 2 of 2 acks")
	}
	if tr.Ack(1, 12) {
		t.Fatal("ack after completion returned true")
	}
	if tr.Pending() != 0 {
		t.Fatal("entry not cleaned up")
	}
}

func TestTrackerZeroNeed(t *testing.T) {
	tr := NewTracker()
	tr.Open(5, 0) // no-op: immediately complete
	if tr.Pending() != 0 {
		t.Fatal("zero-need entry registered")
	}
	if tr.Ack(5, 1) {
		t.Fatal("ack on unregistered seq")
	}
}

func TestTrackerDoubleOpenPanics(t *testing.T) {
	tr := NewTracker()
	tr.Open(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double open did not panic")
		}
	}()
	tr.Open(1, 1)
}

func TestTrackerCancelAndPendingSeqs(t *testing.T) {
	tr := NewTracker()
	tr.Open(3, 1)
	tr.Open(1, 1)
	tr.Open(2, 1)
	seqs := tr.PendingSeqs()
	if len(seqs) != 3 || seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("PendingSeqs = %v", seqs)
	}
	tr.Cancel(2)
	if tr.Pending() != 2 {
		t.Fatal("cancel failed")
	}
	if tr.Ack(2, 1) {
		t.Fatal("ack on cancelled entry")
	}
}

func TestTrackerOutOfOrderCommits(t *testing.T) {
	// Higher sequences may complete before lower ones (the paper's
	// independent-commit property).
	tr := NewTracker()
	tr.Open(1, 2)
	tr.Open(2, 1)
	if !tr.Ack(2, 7) {
		t.Fatal("seq 2 should commit first")
	}
	tr.Ack(1, 7)
	if !tr.Ack(1, 8) {
		t.Fatal("seq 1 should commit after")
	}
}

func TestLogAppendSince(t *testing.T) {
	l := NewLog(10)
	for s := proto.Seq(1); s <= 5; s++ {
		l.Append(s, []byte{byte(s)})
	}
	if l.Len() != 5 || l.Base() != 1 || l.LastSeq() != 5 {
		t.Fatalf("len=%d base=%d last=%d", l.Len(), l.Base(), l.LastSeq())
	}
	recs, ok := l.Since(2)
	if !ok || len(recs) != 3 || recs[0].Seq != 3 {
		t.Fatalf("Since(2) = %v %v", recs, ok)
	}
	recs, ok = l.Since(5)
	if !ok || len(recs) != 0 {
		t.Fatalf("Since(5) = %v %v", recs, ok)
	}
	recs, ok = l.Since(0)
	if !ok || len(recs) != 5 {
		t.Fatalf("Since(0) = %v %v", recs, ok)
	}
}

func TestLogTruncation(t *testing.T) {
	l := NewLog(3)
	for s := proto.Seq(1); s <= 10; s++ {
		l.Append(s, nil)
	}
	if l.Len() != 3 || l.Base() != 8 {
		t.Fatalf("len=%d base=%d", l.Len(), l.Base())
	}
	if _, ok := l.Since(5); ok {
		t.Fatal("Since below base must report truncation")
	}
	recs, ok := l.Since(7)
	if !ok || len(recs) != 3 {
		t.Fatalf("Since(7) = %v %v", recs, ok)
	}
}

func TestLogEmptySince(t *testing.T) {
	l := NewLog(0)
	recs, ok := l.Since(0)
	if !ok || len(recs) != 0 {
		t.Fatal("empty log Since failed")
	}
	if l.LastSeq() != 0 {
		t.Fatal("empty LastSeq != 0")
	}
}

func TestLogOutOfOrderAppendPanics(t *testing.T) {
	l := NewLog(0)
	l.Append(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	l.Append(2, nil)
}
