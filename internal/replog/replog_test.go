package replog

import (
	"testing"

	"ring/internal/proto"
)

func TestTrackerSequences(t *testing.T) {
	tr := NewTracker()
	if tr.Next() != 1 || tr.Next() != 2 || tr.Next() != 3 {
		t.Fatal("sequences must start at 1 and increment")
	}
}

func TestTrackerQuorum(t *testing.T) {
	tr := NewTracker()
	tr.Open(1, 2)
	if tr.Pending() != 1 {
		t.Fatal("pending != 1")
	}
	if tr.Ack(1, 10) {
		t.Fatal("quorum reached with 1 of 2 acks")
	}
	if tr.Ack(1, 10) {
		t.Fatal("duplicate ack counted")
	}
	if !tr.Ack(1, 11) {
		t.Fatal("quorum not reached with 2 of 2 acks")
	}
	if tr.Ack(1, 12) {
		t.Fatal("ack after completion returned true")
	}
	if tr.Pending() != 0 {
		t.Fatal("entry not cleaned up")
	}
}

func TestTrackerZeroNeed(t *testing.T) {
	tr := NewTracker()
	tr.Open(5, 0) // no-op: immediately complete
	if tr.Pending() != 0 {
		t.Fatal("zero-need entry registered")
	}
	if tr.Ack(5, 1) {
		t.Fatal("ack on unregistered seq")
	}
}

func TestTrackerDoubleOpenPanics(t *testing.T) {
	tr := NewTracker()
	tr.Open(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double open did not panic")
		}
	}()
	tr.Open(1, 1)
}

func TestTrackerCancelAndPendingSeqs(t *testing.T) {
	tr := NewTracker()
	tr.Open(3, 1)
	tr.Open(1, 1)
	tr.Open(2, 1)
	seqs := tr.PendingSeqs()
	if len(seqs) != 3 || seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("PendingSeqs = %v", seqs)
	}
	tr.Cancel(2)
	if tr.Pending() != 2 {
		t.Fatal("cancel failed")
	}
	if tr.Ack(2, 1) {
		t.Fatal("ack on cancelled entry")
	}
}

func TestTrackerOutOfOrderCommits(t *testing.T) {
	// Higher sequences may complete before lower ones (the paper's
	// independent-commit property).
	tr := NewTracker()
	tr.Open(1, 2)
	tr.Open(2, 1)
	if !tr.Ack(2, 7) {
		t.Fatal("seq 2 should commit first")
	}
	tr.Ack(1, 7)
	if !tr.Ack(1, 8) {
		t.Fatal("seq 1 should commit after")
	}
}

func TestLogAppendSince(t *testing.T) {
	l := NewLog(10)
	for s := proto.Seq(1); s <= 5; s++ {
		l.Append(s, []byte{byte(s)})
	}
	if l.Len() != 5 || l.Base() != 1 || l.LastSeq() != 5 {
		t.Fatalf("len=%d base=%d last=%d", l.Len(), l.Base(), l.LastSeq())
	}
	recs, ok := l.Since(2)
	if !ok || len(recs) != 3 || recs[0].Seq != 3 {
		t.Fatalf("Since(2) = %v %v", recs, ok)
	}
	recs, ok = l.Since(5)
	if !ok || len(recs) != 0 {
		t.Fatalf("Since(5) = %v %v", recs, ok)
	}
	recs, ok = l.Since(0)
	if !ok || len(recs) != 5 {
		t.Fatalf("Since(0) = %v %v", recs, ok)
	}
}

func TestLogTruncation(t *testing.T) {
	l := NewLog(3)
	for s := proto.Seq(1); s <= 10; s++ {
		l.Append(s, nil)
	}
	if l.Len() != 3 || l.Base() != 8 {
		t.Fatalf("len=%d base=%d", l.Len(), l.Base())
	}
	if _, ok := l.Since(5); ok {
		t.Fatal("Since below base must report truncation")
	}
	recs, ok := l.Since(7)
	if !ok || len(recs) != 3 {
		t.Fatalf("Since(7) = %v %v", recs, ok)
	}
}

func TestLogTruncationAtCommitBoundary(t *testing.T) {
	// A follower whose last applied sequence sits exactly one below the
	// log's base is still servable: Since(base-1) yields every retained
	// record with nothing missing in between. One sequence further back
	// and the gap is real — replay must be refused in favour of a full
	// state transfer.
	l := NewLog(4)
	for s := proto.Seq(1); s <= 9; s++ {
		l.Append(s, []byte{byte(s)})
	}
	base := l.Base() // 6: entries 6..9 retained
	if base != 6 {
		t.Fatalf("base = %d, want 6", base)
	}
	recs, ok := l.Since(base - 1)
	if !ok || len(recs) != 4 || recs[0].Seq != base {
		t.Fatalf("Since(base-1) = %v %v, want the full retained window", recs, ok)
	}
	if _, ok := l.Since(base - 2); ok {
		t.Fatal("Since(base-2) must report truncation: seq base-1 is gone")
	}
	// The boundary tracks further truncation.
	l.Append(10, nil)
	if l.Base() != 7 {
		t.Fatalf("base after append = %d, want 7", l.Base())
	}
	if _, ok := l.Since(5); ok {
		t.Fatal("previously-servable follower fell behind the moving base")
	}
}

func TestLogTruncationWithSparseSequences(t *testing.T) {
	// Sequence numbers can be sparse (cancelled entries never retry
	// their seq). The truncation check is about the oldest retained
	// sequence, not the count of records.
	l := NewLog(2)
	l.Append(2, nil)
	l.Append(5, nil)
	l.Append(9, nil) // drops seq 2; base becomes 5
	if l.Base() != 5 {
		t.Fatalf("base = %d, want 5", l.Base())
	}
	recs, ok := l.Since(4)
	if !ok || len(recs) != 2 || recs[0].Seq != 5 {
		t.Fatalf("Since(4) = %v %v", recs, ok)
	}
	// seq 3/4 were never appended, but a follower at 3 cannot prove
	// that from the log alone: anything below base-1 is refused.
	if _, ok := l.Since(3); ok {
		t.Fatal("Since(3) below base-1 must report truncation")
	}
}

func TestReplayOfLogWithAbortedVersion(t *testing.T) {
	// A coordinator appends the replication record before the quorum
	// resolves; an abort (Cancel) leaves the record in the log. Replay
	// must deliver it verbatim — redundancy nodes reconcile aborted
	// versions from the metadata, not from log surgery — and the
	// tracker must treat the aborted sequence as dead.
	tr := NewTracker()
	l := NewLog(8)

	s1 := tr.Next()
	tr.Open(s1, 2)
	l.Append(s1, []byte("v1"))
	if !tr.Ack(s1, 10) {
		tr.Ack(s1, 11)
	}

	s2 := tr.Next()
	tr.Open(s2, 2)
	l.Append(s2, []byte("v2-aborted"))
	tr.Ack(s2, 10)
	tr.Cancel(s2) // aborted before quorum

	if tr.Ack(s2, 11) {
		t.Fatal("late ack on an aborted sequence reported a commit")
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending = %d after abort, want 0", tr.Pending())
	}

	// The aborted sequence's record still replays in order.
	recs, ok := l.Since(0)
	if !ok || len(recs) != 2 {
		t.Fatalf("Since(0) = %v %v", recs, ok)
	}
	if recs[1].Seq != s2 || string(recs[1].Payload) != "v2-aborted" {
		t.Fatalf("aborted record not replayed verbatim: %v", recs[1])
	}

	// Progress resumes past the aborted sequence with a fresh one.
	s3 := tr.Next()
	if s3 != s2+1 {
		t.Fatalf("next seq after abort = %d, want %d", s3, s2+1)
	}
	tr.Open(s3, 1)
	l.Append(s3, []byte("v3"))
	if !tr.Ack(s3, 10) {
		t.Fatal("post-abort entry failed to commit")
	}
	if got, _ := l.Since(s1); len(got) != 2 || got[0].Seq != s2 || got[1].Seq != s3 {
		t.Fatalf("Since(%d) = %v, want aborted then committed record", s1, got)
	}
}

func TestLogEmptySince(t *testing.T) {
	l := NewLog(0)
	recs, ok := l.Since(0)
	if !ok || len(recs) != 0 {
		t.Fatal("empty log Since failed")
	}
	if l.LastSeq() != 0 {
		t.Fatal("empty LastSeq != 0")
	}
}

func TestLogOutOfOrderAppendPanics(t *testing.T) {
	l := NewLog(0)
	l.Append(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	l.Append(2, nil)
}
