package replog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"ring/internal/bitcask"
	"ring/internal/proto"
	"ring/internal/wal"
)

// Durable persists a node's memgest state across crashes by pairing
// the two storage engines:
//
//   - the WAL (internal/wal) records write-ahead appends — metadata
//     plus, for Rep memgests, the value — the moment an entry enters a
//     metadata table, before any ack leaves the node;
//   - the Bitcask store (internal/bitcask) holds one record per
//     *committed* entry, written when the entry commits, keyed by
//     (memgest, shard, version, key).
//
// Group commit: mutations only buffer; the hosting runner (or the
// simulator) calls MaybeSync after each event batch, which fsyncs per
// the configured policy — and always Bitcask before the WAL. That
// ordering is the crash-consistency backbone: a record present in the
// durable WAL implies every Bitcask effect of earlier batches is
// durable too, so replay never needs cross-engine ordering beyond
// "Bitcask end-state first, then the WAL on top".
//
// WAL segments are pruned prefix-only, and a segment only becomes
// prunable once every append in it is resolved — its commit landed in
// a *synced* Bitcask record, or it was purged or reset — so pruning
// can never orphan a committed record, and never resurrects a purged
// version (mid-log gaps are impossible).
type Durable struct {
	w    *wal.WAL
	db   *bitcask.DB
	opts DurableOptions

	stash   map[ShardKey]*RecoveredShard
	damaged bool

	// unresolved maps each write-ahead append still awaiting its
	// commit/purge to the WAL segment holding it; segLive counts the
	// records blocking each segment from pruning.
	unresolved map[urKey]uint64
	segLive    map[uint64]int
	// pendingSegs are segments owed one decrement at the next
	// successful Sync (commit/purge/reset records, and resolved
	// appends, stop blocking only once their Bitcask effect is synced).
	pendingSegs []uint64

	lastSync time.Duration
	appends  uint64
	syncs    uint64
}

type urKey struct {
	sk  ShardKey
	seq proto.Seq
}

// FsyncPolicy selects when group commit actually fsyncs.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs after every event batch that dirtied the
	// store: an ack implies durability. The only policy under which a
	// crash cannot lose acknowledged writes locally.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per interval of the node's
	// event clock; a crash loses at most one interval of acked writes
	// (the group's other copies still hold them).
	FsyncInterval
	// FsyncNever leaves syncing to segment seals and Close.
	FsyncNever
)

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("replog: unknown fsync policy %q (want always, interval or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
}

// DurableOptions configures a Durable store.
type DurableOptions struct {
	Policy   FsyncPolicy
	Interval time.Duration // FsyncInterval period (0 = 5ms)

	WALSegmentBytes  int
	DataSegmentBytes int
	// CompactDead triggers a Bitcask merge once this many superseded
	// records accumulate (0 = 1<<16).
	CompactDead int
}

// ShardKey addresses one shard of one memgest in the durable store.
type ShardKey struct {
	Memgest proto.MemgestID
	Shard   uint32
}

// RecoveredEntry is one committed entry replayed from disk.
type RecoveredEntry struct {
	Rec proto.MetaRecord
	Seq proto.Seq
	// Value is the persisted value bytes when HasValue (Rep memgests);
	// SRS memgests persist metadata only and re-decode block data from
	// the parity group.
	Value    []byte
	HasValue bool
}

// RecoveredShard is the durable state of one shard: every committed
// entry, the highest sequence this node ever saw for the shard, and
// the delta floor for resyncing with the group.
type RecoveredShard struct {
	Entries []RecoveredEntry // sorted by (key, version)
	MaxSeq  proto.Seq
	// Since is the sequence the group sync can start from: peers only
	// need to send records with Seq > Since. 0 forces a full transfer
	// (fresh store, unresolved gaps, or detected corruption).
	Since proto.Seq
	// OpenConverts lists scheme transitions whose journal window was
	// open at the crash and whose destination version never committed:
	// each rolled back to the source scheme (old-or-new, never hybrid).
	// Rec.Key/Version name the destination version that was dropped;
	// Rec.Memgest is the source memgest the key remains in. Recovery
	// needs nothing from this — it exists for crash tests and metrics.
	OpenConverts []proto.MetaRecord
}

type entryKey struct {
	key string
	ver proto.Version
}

// WAL record kinds.
const (
	kAppend = 1 // write-ahead append: full record (+ value for Rep)
	kCommit = 2 // commit marker: the entry moved to Bitcask
	kPurge  = 3 // version purged (GC or abort)
	kReset  = 4 // all prior records of the shard are void (role shed)
	// Scheme-transition journal (elasticity): kConvBegin opens a
	// conversion window before the destination write-ahead append,
	// kConvEnd closes it ordered before the ack (or on abort). A begin
	// whose destination version never committed proves the transition
	// rolled back to the source scheme — the old-or-new guarantee the
	// crash tests pin. Rec carries the destination key/version; its
	// Memgest field records the *source* memgest.
	kConvBegin = 5
	kConvEnd   = 6
)

// OpenDurable opens (or creates) the store in fsys, replaying the
// Bitcask keydir and the WAL into the recovered stash. Recovery ends
// with a normalization pass: committed entries are (re)written to
// Bitcask where missing, surviving uncommitted appends are compacted
// into a fresh WAL generation, and the old segments are dropped — so
// prune bookkeeping restarts exact and replay cost never accretes
// across restarts.
func OpenDurable(fsys wal.FS, opts DurableOptions) (*Durable, error) {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Millisecond
	}
	if opts.CompactDead <= 0 {
		opts.CompactDead = 1 << 16
	}
	db, err := bitcask.Open(fsys, bitcask.Options{SegmentBytes: opts.DataSegmentBytes})
	if err != nil {
		return nil, err
	}
	d := &Durable{
		db:         db,
		opts:       opts,
		stash:      make(map[ShardKey]*RecoveredShard),
		unresolved: make(map[urKey]uint64),
		segLive:    make(map[uint64]int),
	}

	// Phase 1: the WAL, in log order, into per-shard replay state.
	type walShard struct {
		entries    map[entryKey]*RecoveredEntry // appends; Committed set by kCommit
		purged     map[entryKey]bool
		unresolved map[proto.Seq]entryKey
		deferred   []entryKey // commits whose append is not in the WAL
		convOpen   map[entryKey]proto.MetaRecord
		maxSeq     proto.Seq
	}
	walSt := make(map[ShardKey]*walShard)
	shard := func(sk ShardKey) *walShard {
		st, ok := walSt[sk]
		if !ok {
			st = &walShard{
				entries:    make(map[entryKey]*RecoveredEntry),
				purged:     make(map[entryKey]bool),
				unresolved: make(map[proto.Seq]entryKey),
				convOpen:   make(map[entryKey]proto.MetaRecord),
			}
			walSt[sk] = st
		}
		return st
	}
	w, err := wal.Open(fsys, wal.Options{SegmentBytes: opts.WALSegmentBytes}, func(_ uint64, payload []byte) error {
		r, ok := decodeWALRecord(payload)
		if !ok {
			d.damaged = true
			return nil
		}
		st := shard(r.sk)
		ek := entryKey{r.rec.Key, r.rec.Version}
		switch r.kind {
		case kAppend:
			st.entries[ek] = &RecoveredEntry{Rec: r.rec, Seq: r.seq, Value: r.value, HasValue: r.hasValue}
			st.unresolved[r.seq] = ek
			delete(st.purged, ek)
		case kCommit:
			if e, ok := st.entries[ek]; ok {
				e.Rec.Committed = true
			} else {
				st.deferred = append(st.deferred, ek)
			}
			delete(st.unresolved, r.seq)
		case kPurge:
			delete(st.entries, ek)
			st.purged[ek] = true
			if r.seq != 0 {
				delete(st.unresolved, r.seq)
			}
		case kConvBegin:
			st.convOpen[ek] = r.rec
		case kConvEnd:
			delete(st.convOpen, ek)
		case kReset:
			delete(walSt, r.sk)
			return nil
		default:
			d.damaged = true
			return nil
		}
		if r.seq > st.maxSeq {
			st.maxSeq = r.seq
		}
		return nil
	})
	if err != nil {
		db.Close() //ring:durableok open failed, the WAL error is the one to surface
		return nil, err
	}
	d.w = w
	if w.Damaged() || db.Damaged() {
		d.damaged = true
	}

	// Phase 2: the Bitcask end-state — every synced committed entry.
	type finalShard struct {
		entries map[entryKey]*RecoveredEntry
		maxSeq  proto.Seq
		full    bool // force Since = 0
	}
	final := make(map[ShardKey]*finalShard)
	fshard := func(sk ShardKey) *finalShard {
		st, ok := final[sk]
		if !ok {
			st = &finalShard{entries: make(map[entryKey]*RecoveredEntry)}
			final[sk] = st
		}
		return st
	}
	err = db.Range(func(k string, v []byte) error {
		sk, ek, ok := decodeDBKey(k)
		if !ok {
			d.damaged = true
			return nil
		}
		e, ok := decodeEnvelope(v)
		if !ok {
			d.damaged = true
			return nil
		}
		e.Rec.Committed = true
		st := fshard(sk)
		st.entries[ek] = &e
		if e.Seq > st.maxSeq {
			st.maxSeq = e.Seq
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: merge the WAL on top. The sync ordering (Bitcask before
	// WAL, same group commit) means a durable WAL record implies its
	// batch's predecessors hit Bitcask, so "end-state plus WAL deltas"
	// is a consistent cut.
	type pendingAppend struct {
		sk ShardKey
		e  *RecoveredEntry
	}
	var uncommitted []pendingAppend
	for sk, st := range walSt {
		fs := fshard(sk)
		if st.maxSeq > fs.maxSeq {
			fs.maxSeq = st.maxSeq
		}
		for ek := range st.purged {
			delete(fs.entries, ek)
		}
		for ek, e := range st.entries {
			if e.Rec.Committed {
				if bc, ok := fs.entries[ek]; ok && bc.HasValue && !e.HasValue {
					e.Value, e.HasValue = bc.Value, true
				}
				fs.entries[ek] = e
				continue
			}
			if _, ok := fs.entries[ek]; ok {
				// Committed in Bitcask supersedes the write-ahead copy.
				delete(st.unresolved, e.Seq)
				continue
			}
			uncommitted = append(uncommitted, pendingAppend{sk, e})
		}
		for _, ek := range st.deferred {
			if _, ok := fs.entries[ek]; !ok {
				// A commit marker whose entry is nowhere: durable state
				// was lost; only a full transfer is safe.
				fs.full = true
			}
		}
	}

	// Phase 4: build the stash (committed entries only — an append that
	// never committed was never acknowledged, so dropping it is a legal
	// outcome of the crashed operation; it still lowers Since so the
	// group sync re-covers its range).
	skeys := make([]ShardKey, 0, len(final))
	for sk := range final {
		skeys = append(skeys, sk)
	}
	sort.Slice(skeys, func(i, j int) bool {
		a, b := skeys[i], skeys[j]
		if a.Memgest != b.Memgest {
			return a.Memgest < b.Memgest
		}
		return a.Shard < b.Shard
	})
	for _, sk := range skeys {
		fs := final[sk]
		rs := &RecoveredShard{MaxSeq: fs.maxSeq}
		for _, e := range fs.entries {
			rs.Entries = append(rs.Entries, *e)
		}
		sort.Slice(rs.Entries, func(i, j int) bool {
			a, b := &rs.Entries[i], &rs.Entries[j]
			if a.Rec.Key != b.Rec.Key {
				return a.Rec.Key < b.Rec.Key
			}
			return a.Rec.Version < b.Rec.Version
		})
		rs.Since = fs.maxSeq
		if st, ok := walSt[sk]; ok {
			for seq := range st.unresolved {
				if seq-1 < rs.Since {
					rs.Since = seq - 1
				}
			}
			// A conversion journaled open whose destination version never
			// committed rolled back at the crash: the uncommitted append
			// (if any survived) is dropped above, so the key remains in
			// its source scheme.
			for ek, rec := range st.convOpen {
				if _, committed := fs.entries[ek]; !committed {
					rs.OpenConverts = append(rs.OpenConverts, rec)
				}
			}
			sort.Slice(rs.OpenConverts, func(i, j int) bool {
				a, b := &rs.OpenConverts[i], &rs.OpenConverts[j]
				if a.Key != b.Key {
					return a.Key < b.Key
				}
				return a.Version < b.Version
			})
		}
		if fs.full || d.damaged {
			rs.Since = 0
		}
		d.stash[sk] = rs
	}

	// Phase 5: normalize on disk. Committed entries all land in
	// Bitcask; the WAL is rewritten to hold exactly the surviving
	// uncommitted appends.
	for _, sk := range skeys {
		fs := final[sk]
		eks := make([]entryKey, 0, len(fs.entries))
		for ek := range fs.entries {
			eks = append(eks, ek)
		}
		sort.Slice(eks, func(i, j int) bool {
			if eks[i].key != eks[j].key {
				return eks[i].key < eks[j].key
			}
			return eks[i].ver < eks[j].ver
		})
		for _, ek := range eks {
			e := fs.entries[ek]
			env := encodeEnvelope(e)
			key := encodeDBKey(sk, ek)
			if cur, ok, err := db.Get(key); err == nil && ok && bytes.Equal(cur, env) {
				continue
			}
			if err := db.Put(key, env); err != nil {
				return nil, err
			}
		}
	}
	if err := db.Sync(); err != nil {
		return nil, err
	}
	sort.Slice(uncommitted, func(i, j int) bool {
		a, b := uncommitted[i], uncommitted[j]
		if a.sk != b.sk {
			if a.sk.Memgest != b.sk.Memgest {
				return a.sk.Memgest < b.sk.Memgest
			}
			return a.sk.Shard < b.sk.Shard
		}
		return a.e.Seq < b.e.Seq
	})
	recs := make([][]byte, len(uncommitted))
	for i, p := range uncommitted {
		recs[i] = encodeWALRecord(kAppend, p.sk, p.e.Seq, &p.e.Rec, p.e.Value, p.e.HasValue)
	}
	segs, err := w.Compact(recs)
	if err != nil {
		return nil, err
	}
	for i, p := range uncommitted {
		d.unresolved[urKey{p.sk, p.e.Seq}] = segs[i]
		d.segLive[segs[i]]++
	}
	return d, nil
}

// Recovered returns the replayed durable state, keyed by shard. The
// caller installs it into the node's memgest tables on the first
// config push and treats it as read-only afterwards.
func (d *Durable) Recovered() map[ShardKey]*RecoveredShard { return d.stash }

// Damaged reports whether recovery found evidence of lost durable
// bytes (every stash shard then carries Since == 0).
func (d *Durable) Damaged() bool { return d.damaged }

// Append persists a write-ahead append: the entry just added to a
// metadata table, before any ack references it. value rides along for
// Rep memgests (hasValue); SRS appends are metadata-only.
func (d *Durable) Append(sk ShardKey, seq proto.Seq, rec *proto.MetaRecord, value []byte, hasValue bool) error {
	seg, err := d.w.Append(encodeWALRecord(kAppend, sk, seq, rec, value, hasValue))
	if err != nil {
		return err
	}
	d.unresolved[urKey{sk, seq}] = seg
	d.segLive[seg]++
	d.appends++
	return nil
}

// Commit persists an entry's commit: the full record goes to Bitcask
// and a slim marker to the WAL, resolving the matching append.
func (d *Durable) Commit(sk ShardKey, seq proto.Seq, rec *proto.MetaRecord, value []byte, hasValue bool) error {
	e := RecoveredEntry{Rec: *rec, Seq: seq, Value: value, HasValue: hasValue}
	e.Rec.Committed = true
	if err := d.db.Put(encodeDBKey(sk, entryKey{rec.Key, rec.Version}), encodeEnvelope(&e)); err != nil {
		return err
	}
	slim := proto.MetaRecord{Key: rec.Key, Version: rec.Version}
	seg, err := d.w.Append(encodeWALRecord(kCommit, sk, seq, &slim, nil, false))
	if err != nil {
		return err
	}
	d.segLive[seg]++
	d.pendingSegs = append(d.pendingSegs, seg)
	d.resolve(sk, seq)
	return nil
}

// Install persists an entry learned through recovery (already
// committed group-wide): Bitcask only — there is no append to resolve
// and no ordering against the WAL to keep.
func (d *Durable) Install(sk ShardKey, seq proto.Seq, rec *proto.MetaRecord, value []byte, hasValue bool) error {
	e := RecoveredEntry{Rec: *rec, Seq: seq, Value: value, HasValue: hasValue}
	e.Rec.Committed = true
	return d.db.Put(encodeDBKey(sk, entryKey{rec.Key, rec.Version}), encodeEnvelope(&e))
}

// Purge removes a version (GC of superseded versions, or abort of an
// uncommitted append). seq is the purged entry's sequence when known.
func (d *Durable) Purge(sk ShardKey, seq proto.Seq, key string, ver proto.Version) error {
	if err := d.db.Delete(encodeDBKey(sk, entryKey{key, ver})); err != nil {
		return err
	}
	slim := proto.MetaRecord{Key: key, Version: ver}
	seg, err := d.w.Append(encodeWALRecord(kPurge, sk, seq, &slim, nil, false))
	if err != nil {
		return err
	}
	d.segLive[seg]++
	d.pendingSegs = append(d.pendingSegs, seg)
	if seq != 0 {
		d.resolve(sk, seq)
	}
	return nil
}

// ConvertBegin journals the opening of a scheme transition, BEFORE the
// destination version's write-ahead append. sk addresses the
// destination (memgest, shard); rec names the destination key/version
// with its Memgest field recording the source memgest. A begin without
// a matching end after a crash marks a transition that rolled back.
func (d *Durable) ConvertBegin(sk ShardKey, seq proto.Seq, rec *proto.MetaRecord) error {
	seg, err := d.w.Append(encodeWALRecord(kConvBegin, sk, seq, rec, nil, false))
	if err != nil {
		return err
	}
	d.segLive[seg]++
	d.pendingSegs = append(d.pendingSegs, seg)
	return nil
}

// ConvertEnd journals the close of a scheme transition — on commit it
// must be appended before the client ack escapes (the ackorder journal
// barrier); on abort it simply closes the window.
func (d *Durable) ConvertEnd(sk ShardKey, seq proto.Seq, rec *proto.MetaRecord) error {
	seg, err := d.w.Append(encodeWALRecord(kConvEnd, sk, seq, rec, nil, false))
	if err != nil {
		return err
	}
	d.segLive[seg]++
	d.pendingSegs = append(d.pendingSegs, seg)
	return nil
}

// Reset voids all durable state of a shard — the node shed the role,
// so replaying any of it after a crash would resurrect another
// node's past.
func (d *Durable) Reset(sk ShardKey) error {
	if _, err := d.db.DeletePrefix(string(encodeDBPrefix(sk))); err != nil {
		return err
	}
	seg, err := d.w.Append(encodeWALRecord(kReset, sk, 0, &proto.MetaRecord{}, nil, false))
	if err != nil {
		return err
	}
	d.segLive[seg]++
	d.pendingSegs = append(d.pendingSegs, seg)
	for uk, aseg := range d.unresolved {
		if uk.sk == sk {
			delete(d.unresolved, uk)
			d.pendingSegs = append(d.pendingSegs, aseg)
		}
	}
	delete(d.stash, sk)
	return nil
}

func (d *Durable) resolve(sk ShardKey, seq proto.Seq) {
	uk := urKey{sk, seq}
	if seg, ok := d.unresolved[uk]; ok {
		delete(d.unresolved, uk)
		d.pendingSegs = append(d.pendingSegs, seg)
	}
}

// Dirty reports whether unsynced mutations exist.
func (d *Durable) Dirty() bool { return d.w.Dirty() || d.db.Dirty() }

// MaybeSync applies the fsync policy at a group-commit boundary, where
// now is the node's event clock. The hosting runner must not emit the
// batch's outputs if this fails: an un-fsyncable disk means acks can
// no longer promise durability, so the node crash-stops instead
// (fsyncgate semantics).
func (d *Durable) MaybeSync(now time.Duration) error {
	switch d.opts.Policy {
	case FsyncAlways:
		if d.Dirty() {
			return d.Sync()
		}
	case FsyncInterval:
		if d.Dirty() && now-d.lastSync >= d.opts.Interval {
			d.lastSync = now
			return d.Sync()
		}
	case FsyncNever:
	}
	return nil
}

// Sync fsyncs Bitcask, then the WAL — the order the crash-consistency
// invariant depends on — then settles prune bookkeeping and drops any
// fully-resolved prefix of sealed WAL segments.
func (d *Durable) Sync() error {
	if err := d.db.Sync(); err != nil {
		return err
	}
	if err := d.w.Sync(); err != nil {
		return err
	}
	d.syncs++
	for _, seg := range d.pendingSegs {
		d.segLive[seg]--
	}
	d.pendingSegs = d.pendingSegs[:0]
	return d.checkpoint()
}

// checkpoint prunes the fully-resolved sealed prefix of the WAL and
// compacts Bitcask once enough dead records accumulate.
func (d *Durable) checkpoint() error {
	sealed := d.w.SealedSegments()
	cut := -1
	for i, seg := range sealed {
		if d.segLive[seg] != 0 {
			break
		}
		cut = i
	}
	if cut >= 0 {
		if err := d.w.PruneTo(sealed[cut] + 1); err != nil {
			return err
		}
		for _, seg := range sealed[:cut+1] {
			delete(d.segLive, seg)
		}
	}
	if d.db.Dead() >= d.opts.CompactDead {
		return d.db.Merge()
	}
	return nil
}

// Stats is a point-in-time summary for tests and monitoring.
type Stats struct {
	Appends     uint64
	Syncs       uint64
	Unresolved  int
	WALSegments int
	DataFiles   int
	LiveKeys    int
}

// DurableStats reports the store's counters.
func (d *Durable) DurableStats() Stats {
	return Stats{
		Appends:     d.appends,
		Syncs:       d.syncs,
		Unresolved:  len(d.unresolved),
		WALSegments: len(d.w.SealedSegments()) + 1,
		DataFiles:   len(d.db.Files()),
		LiveKeys:    d.db.Len(),
	}
}

// Close flushes and fsyncs both engines and closes every file.
func (d *Durable) Close() error {
	err := d.Sync()
	if werr := d.w.Close(); err == nil {
		err = werr
	}
	if derr := d.db.Close(); err == nil {
		err = derr
	}
	return err
}

// --- encodings -------------------------------------------------------

// Bitcask keys: [mg u32][shard u32][version u64][key bytes], all
// little-endian. The 8-byte (mg, shard) prefix is the unit of Reset.
func encodeDBPrefix(sk ShardKey) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(sk.Memgest))
	binary.LittleEndian.PutUint32(b[4:], sk.Shard)
	return b[:]
}

func encodeDBKey(sk ShardKey, ek entryKey) string {
	b := make([]byte, 0, 16+len(ek.key))
	b = append(b, encodeDBPrefix(sk)...)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(ek.ver))
	b = append(b, v[:]...)
	b = append(b, ek.key...)
	return string(b)
}

func decodeDBKey(s string) (ShardKey, entryKey, bool) {
	if len(s) < 16 {
		return ShardKey{}, entryKey{}, false
	}
	b := []byte(s)
	sk := ShardKey{
		Memgest: proto.MemgestID(binary.LittleEndian.Uint32(b[0:])),
		Shard:   binary.LittleEndian.Uint32(b[4:]),
	}
	ek := entryKey{
		ver: proto.Version(binary.LittleEndian.Uint64(b[8:])),
		key: string(b[16:]),
	}
	return sk, ek, true
}

// Bitcask envelope: [seq u64][metaRecord][hasValue u8][value].
func encodeEnvelope(e *RecoveredEntry) []byte {
	b := make([]byte, 0, 40+len(e.Rec.Key)+len(e.Value))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Seq))
	b = appendMetaRecord(b, &e.Rec)
	if e.HasValue {
		b = append(b, 1)
		b = append(b, e.Value...)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeEnvelope(b []byte) (RecoveredEntry, bool) {
	var e RecoveredEntry
	if len(b) < 9 {
		return e, false
	}
	e.Seq = proto.Seq(binary.LittleEndian.Uint64(b))
	rec, rest, ok := readMetaRecord(b[8:])
	if !ok || len(rest) < 1 {
		return e, false
	}
	e.Rec = rec
	if rest[0] == 1 {
		e.HasValue = true
		e.Value = append([]byte(nil), rest[1:]...)
	} else if len(rest) != 1 {
		return e, false
	}
	return e, true
}

// WAL record: [kind u8][mg u32][shard u32][seq u64][metaRecord]
// [hasValue u8][value]; kCommit/kPurge carry a slim record (key and
// version only), kReset an empty one.
func encodeWALRecord(kind byte, sk ShardKey, seq proto.Seq, rec *proto.MetaRecord, value []byte, hasValue bool) []byte {
	b := make([]byte, 0, 48+len(rec.Key)+len(value))
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(sk.Memgest))
	b = binary.LittleEndian.AppendUint32(b, sk.Shard)
	b = binary.LittleEndian.AppendUint64(b, uint64(seq))
	b = appendMetaRecord(b, rec)
	if hasValue {
		b = append(b, 1)
		b = append(b, value...)
	} else {
		b = append(b, 0)
	}
	return b
}

type walRecord struct {
	kind     byte
	sk       ShardKey
	seq      proto.Seq
	rec      proto.MetaRecord
	value    []byte
	hasValue bool
}

func decodeWALRecord(b []byte) (walRecord, bool) {
	var r walRecord
	if len(b) < 17 {
		return r, false
	}
	r.kind = b[0]
	r.sk.Memgest = proto.MemgestID(binary.LittleEndian.Uint32(b[1:]))
	r.sk.Shard = binary.LittleEndian.Uint32(b[5:])
	r.seq = proto.Seq(binary.LittleEndian.Uint64(b[9:]))
	rec, rest, ok := readMetaRecord(b[17:])
	if !ok || len(rest) < 1 {
		return r, false
	}
	r.rec = rec
	if rest[0] == 1 {
		r.hasValue = true
		r.value = append([]byte(nil), rest[1:]...)
	} else if len(rest) != 1 {
		return r, false
	}
	return r, true
}

// appendMetaRecord mirrors the wire encoding of proto.MetaRecord
// ([u16 keyLen][key][version u64][memgest u32][flags][length u32]
// [locBlock u32][locOff u32]) without going through a proto writer.
func appendMetaRecord(b []byte, m *proto.MetaRecord) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Key)))
	b = append(b, m.Key...)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Version))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Memgest))
	var flags byte
	if m.Committed {
		flags |= 1
	}
	if m.Tombstone {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, m.Length)
	b = binary.LittleEndian.AppendUint32(b, m.LocBlock)
	b = binary.LittleEndian.AppendUint32(b, m.LocOff)
	return b
}

func readMetaRecord(b []byte) (proto.MetaRecord, []byte, bool) {
	var m proto.MetaRecord
	if len(b) < 2 {
		return m, nil, false
	}
	klen := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	// 25 fixed bytes follow the key: version 8 + memgest 4 + flags 1 +
	// length 4 + locBlock 4 + locOff 4.
	if len(b) < klen+25 {
		return m, nil, false
	}
	m.Key = string(b[:klen])
	b = b[klen:]
	m.Version = proto.Version(binary.LittleEndian.Uint64(b))
	m.Memgest = proto.MemgestID(binary.LittleEndian.Uint32(b[8:]))
	flags := b[12]
	m.Committed = flags&1 != 0
	m.Tombstone = flags&2 != 0
	m.Length = binary.LittleEndian.Uint32(b[13:])
	m.LocBlock = binary.LittleEndian.Uint32(b[17:])
	m.LocOff = binary.LittleEndian.Uint32(b[21:])
	return m, b[25:], true
}
