package replog

import (
	"math/rand"
	"testing"

	"ring/internal/proto"
	"ring/internal/wal"
)

// The transition journal's crash semantics: a conv-begin without its
// conv-end after a crash proves the window was open, and recovery
// surfaces it in OpenConverts exactly when the destination version
// never committed — the old-or-new (never hybrid) guarantee at the
// storage layer.

// convRec names a destination key/version whose Memgest field records
// the source memgest, as the core layer journals it.
func convRec(key string, ver proto.Version, src proto.MemgestID) *proto.MetaRecord {
	return &proto.MetaRecord{Key: key, Version: ver, Memgest: src, Length: 4}
}

func TestOpenConvertListedAfterCrash(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})

	// The window opens before the destination write-ahead append; the
	// crash lands before the destination version commits.
	cr := convRec("k", 8, 1)
	if err := d.ConvertBegin(testSK, 5, cr); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(testSK, 5, rec("k", 8), val("k", 8), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(1)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if rs == nil {
		t.Fatal("shard lost")
	}
	if got := len(rs.OpenConverts); got != 1 {
		t.Fatalf("OpenConverts = %d records, want 1", got)
	}
	oc := rs.OpenConverts[0]
	if oc.Key != "k" || oc.Version != 8 || oc.Memgest != 1 {
		t.Fatalf("OpenConverts[0] = %+v, want k@8 from memgest 1", oc)
	}
	// The rolled-back transition leaves no trace of the uncommitted
	// destination version.
	if e := shardEntry(t, rs, "k", 8); e != nil {
		t.Fatalf("uncommitted destination version resurfaced: %+v", e)
	}
}

func TestClosedConvertNotListed(t *testing.T) {
	// Commit path: begin, destination append+commit, end — ordered
	// before the ack would have escaped. Nothing is open at the crash.
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	cr := convRec("k", 8, 1)
	if err := d.ConvertBegin(testSK, 5, cr); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, testSK, 5, "k", 8)
	mustCommit(t, d, testSK, 5, "k", 8)
	if err := d.ConvertEnd(testSK, 5, cr); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(2)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if rs == nil {
		t.Fatal("shard lost")
	}
	if len(rs.OpenConverts) != 0 {
		t.Fatalf("closed transition listed open: %+v", rs.OpenConverts)
	}
	e := shardEntry(t, rs, "k", 8)
	if e == nil || !e.Rec.Committed {
		t.Fatalf("committed destination version lost: %+v", e)
	}
}

func TestAbortedConvertNotListed(t *testing.T) {
	// Abort path: begin, uncommitted append, purge, end. The window
	// closed before the crash, so recovery owes nothing.
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	cr := convRec("k", 8, 1)
	if err := d.ConvertBegin(testSK, 5, cr); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, testSK, 5, "k", 8)
	if err := d.Purge(testSK, 5, "k", 8); err != nil {
		t.Fatal(err)
	}
	if err := d.ConvertEnd(testSK, 5, cr); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(3)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if rs == nil {
		t.Fatal("shard lost")
	}
	if len(rs.OpenConverts) != 0 {
		t.Fatalf("aborted transition listed open: %+v", rs.OpenConverts)
	}
	if e := shardEntry(t, rs, "k", 8); e != nil {
		t.Fatalf("purged destination version resurfaced: %+v", e)
	}
}
