package replog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ring/internal/proto"
	"ring/internal/wal"
)

var testSK = ShardKey{Memgest: 1, Shard: 0}

func openDurable(t *testing.T, fs wal.FS, opts DurableOptions) *Durable {
	t.Helper()
	d, err := OpenDurable(fs, opts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d
}

func rec(key string, ver proto.Version) *proto.MetaRecord {
	return &proto.MetaRecord{Key: key, Version: ver, Memgest: testSK.Memgest, Length: 4}
}

func val(key string, ver proto.Version) []byte {
	return []byte(fmt.Sprintf("%s@%d", key, ver))
}

func mustAppend(t *testing.T, d *Durable, sk ShardKey, seq proto.Seq, key string, ver proto.Version) {
	t.Helper()
	if err := d.Append(sk, seq, rec(key, ver), val(key, ver), true); err != nil {
		t.Fatalf("Append %s@%d: %v", key, ver, err)
	}
}

func mustCommit(t *testing.T, d *Durable, sk ShardKey, seq proto.Seq, key string, ver proto.Version) {
	t.Helper()
	if err := d.Commit(sk, seq, rec(key, ver), val(key, ver), true); err != nil {
		t.Fatalf("Commit %s@%d: %v", key, ver, err)
	}
}

func shardEntry(t *testing.T, rs *RecoveredShard, key string, ver proto.Version) *RecoveredEntry {
	t.Helper()
	for i := range rs.Entries {
		e := &rs.Entries[i]
		if e.Rec.Key == key && e.Rec.Version == ver {
			return e
		}
	}
	return nil
}

func TestCommitSurvivesCrash(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	mustAppend(t, d, testSK, 1, "a", 7)
	mustCommit(t, d, testSK, 1, "a", 7)
	mustAppend(t, d, testSK, 2, "b", 3)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// kill -9: no Close.
	fs.Crash(rand.New(rand.NewSource(1)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if rs == nil {
		t.Fatal("shard lost")
	}
	e := shardEntry(t, rs, "a", 7)
	if e == nil || !e.Rec.Committed || !e.HasValue || !bytes.Equal(e.Value, val("a", 7)) {
		t.Fatalf("committed entry after crash = %+v", e)
	}
	// The uncommitted append must not surface as an entry, but must
	// lower the delta floor below its sequence.
	if shardEntry(t, rs, "b", 3) != nil {
		t.Fatal("uncommitted append surfaced as a recovered entry")
	}
	if rs.Since != 1 {
		t.Fatalf("Since = %d, want 1 (below the unresolved append)", rs.Since)
	}
	if rs.MaxSeq != 2 {
		t.Fatalf("MaxSeq = %d, want 2", rs.MaxSeq)
	}
}

func TestUnsyncedCommitLostCleanly(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncNever})
	mustAppend(t, d, testSK, 1, "a", 1)
	mustCommit(t, d, testSK, 1, "a", 1)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, testSK, 2, "b", 1)
	mustCommit(t, d, testSK, 2, "b", 1)
	// Crash with the second commit unsynced: it may vanish, but replay
	// must stay consistent and Since must not claim to cover seq 2.
	fs.Crash(rand.New(rand.NewSource(42)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncNever})
	if d2.Damaged() {
		t.Fatal("torn unsynced tail must not be damage")
	}
	rs := d2.Recovered()[testSK]
	if rs == nil {
		t.Fatal("shard lost")
	}
	if e := shardEntry(t, rs, "a", 1); e == nil || !e.Rec.Committed {
		t.Fatalf("synced commit lost: %+v", e)
	}
	if shardEntry(t, rs, "b", 1) == nil && rs.Since >= 2 {
		t.Fatalf("entry b lost but Since = %d claims coverage of seq 2", rs.Since)
	}
}

// TestTruncateNeverOrphansCommitted is the satellite case: write-ahead
// appends spread over several rotated WAL segments, a subset commits,
// and the commit-boundary truncation (prefix prune at sync) runs. No
// committed record may be orphaned — every commit must survive reopen
// even though the segments holding their appends are gone.
func TestTruncateNeverOrphansCommitted(t *testing.T) {
	fs := wal.NewMemFS()
	opts := DurableOptions{
		Policy:          FsyncAlways,
		WALSegmentBytes: 256, // force rotation every few records
	}
	d := openDurable(t, fs, opts)

	const n = 40
	for i := 0; i < n; i++ {
		mustAppend(t, d, testSK, proto.Seq(i+1), fmt.Sprintf("k%02d", i), 1)
	}
	// Commit a prefix: seqs 1..25. The tail 26..40 stays write-ahead.
	for i := 0; i < 25; i++ {
		mustCommit(t, d, testSK, proto.Seq(i+1), fmt.Sprintf("k%02d", i), 1)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	st := d.DurableStats()
	if st.Unresolved != 15 {
		t.Fatalf("Unresolved = %d, want 15", st.Unresolved)
	}
	// Rotation must actually have happened for the test to mean anything.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("no meaningful segment rotation: %v", names)
	}

	// kill -9, reopen: all 25 commits present, all 15 appends covered by Since.
	fs.Crash(rand.New(rand.NewSource(9)))
	d2 := openDurable(t, fs, opts)
	rs := d2.Recovered()[testSK]
	if rs == nil {
		t.Fatal("shard lost")
	}
	for i := 0; i < 25; i++ {
		key := fmt.Sprintf("k%02d", i)
		e := shardEntry(t, rs, key, 1)
		if e == nil || !e.Rec.Committed {
			t.Fatalf("committed %s orphaned by truncation (entry=%+v)", key, e)
		}
		if !bytes.Equal(e.Value, val(key, 1)) {
			t.Fatalf("committed %s value corrupted: %q", key, e.Value)
		}
	}
	if rs.Since != 25 {
		t.Fatalf("Since = %d, want 25 (first unresolved append is seq 26)", rs.Since)
	}
	if rs.MaxSeq != 40 {
		t.Fatalf("MaxSeq = %d, want 40", rs.MaxSeq)
	}

	// Second life: commit the stragglers, prune again, crash again.
	for i := 25; i < n; i++ {
		mustCommit(t, d2, testSK, proto.Seq(i+1), fmt.Sprintf("k%02d", i), 1)
	}
	if err := d2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d2.DurableStats().Unresolved; got != 0 {
		t.Fatalf("Unresolved after full commit = %d", got)
	}
	fs.Crash(rand.New(rand.NewSource(10)))
	d3 := openDurable(t, fs, opts)
	rs3 := d3.Recovered()[testSK]
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%02d", i)
		if e := shardEntry(t, rs3, key, 1); e == nil || !e.Rec.Committed {
			t.Fatalf("committed %s lost in second life", key)
		}
	}
	if rs3.Since != 40 {
		t.Fatalf("Since = %d, want 40 (everything resolved)", rs3.Since)
	}
}

func TestPruneShrinksWAL(t *testing.T) {
	fs := wal.NewMemFS()
	opts := DurableOptions{Policy: FsyncAlways, WALSegmentBytes: 256}
	d := openDurable(t, fs, opts)
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			seq := proto.Seq(round*8 + i + 1)
			key := fmt.Sprintf("r%dk%d", round, i)
			mustAppend(t, d, testSK, seq, key, 1)
			mustCommit(t, d, testSK, seq, key, 1)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Everything resolved: the sealed prefix must be pruned away.
	if got := d.DurableStats().WALSegments; got > 3 {
		t.Fatalf("WAL kept %d segments despite full resolution", got)
	}
}

func TestPurgeAndAbort(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	mustAppend(t, d, testSK, 1, "k", 1)
	mustCommit(t, d, testSK, 1, "k", 1)
	mustAppend(t, d, testSK, 2, "k", 2)
	mustCommit(t, d, testSK, 2, "k", 2)
	// GC the superseded version, and abort an uncommitted append.
	if err := d.Purge(testSK, 1, "k", 1); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, testSK, 3, "dead", 1)
	if err := d.Purge(testSK, 3, "dead", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(2)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if shardEntry(t, rs, "k", 1) != nil {
		t.Fatal("purged version resurrected")
	}
	if e := shardEntry(t, rs, "k", 2); e == nil || !e.Rec.Committed {
		t.Fatal("surviving version lost")
	}
	if shardEntry(t, rs, "dead", 1) != nil {
		t.Fatal("aborted append resurrected")
	}
	if rs.Since != 3 {
		t.Fatalf("Since = %d, want 3 (abort resolves the append)", rs.Since)
	}
}

func TestResetFencesShard(t *testing.T) {
	fs := wal.NewMemFS()
	other := ShardKey{Memgest: 2, Shard: 1}
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	mustAppend(t, d, testSK, 1, "mine", 1)
	mustCommit(t, d, testSK, 1, "mine", 1)
	if err := d.Append(other, 5, rec("keep", 1), val("keep", 1), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(other, 5, rec("keep", 1), val("keep", 1), true); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, d, testSK, 2, "pending", 1)
	// Role shed: everything of testSK is void, including the pending append.
	if err := d.Reset(testSK); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(3)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	if rs := d2.Recovered()[testSK]; rs != nil && len(rs.Entries) > 0 {
		t.Fatalf("reset shard replayed %d entries", len(rs.Entries))
	}
	ors := d2.Recovered()[other]
	if e := shardEntry(t, ors, "keep", 1); e == nil || !e.Rec.Committed {
		t.Fatal("reset bled into another shard")
	}
	// Writes in a new life after the reset must replay normally.
	mustAppend(t, d2, testSK, 1, "newlife", 1)
	mustCommit(t, d2, testSK, 1, "newlife", 1)
	if err := d2.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(4)))
	d3 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	if e := shardEntry(t, d3.Recovered()[testSK], "newlife", 1); e == nil || !e.Rec.Committed {
		t.Fatal("post-reset commit lost")
	}
}

func TestInstallPersists(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	// Recovery installs: committed group-wide, seq unknown locally.
	if err := d.Install(testSK, 0, rec("inst", 4), nil, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Install(testSK, 0, rec("instv", 2), val("instv", 2), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(5)))

	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if e := shardEntry(t, rs, "inst", 4); e == nil || !e.Rec.Committed || e.HasValue {
		t.Fatalf("metadata-only install = %+v", e)
	}
	if e := shardEntry(t, rs, "instv", 2); e == nil || !e.HasValue || !bytes.Equal(e.Value, val("instv", 2)) {
		t.Fatalf("valued install = %+v", e)
	}
}

func TestCorruptionForcesFullResync(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	for i := 0; i < 6; i++ {
		seq := proto.Seq(i + 1)
		key := fmt.Sprintf("k%d", i)
		mustAppend(t, d, testSK, seq, key, 1)
		mustCommit(t, d, testSK, seq, key, 1)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.CorruptWAL(rand.New(rand.NewSource(6))) {
		t.Fatal("CorruptWAL found nothing to flip")
	}
	d2, err := OpenDurable(fs, DurableOptions{Policy: FsyncAlways})
	if err != nil {
		t.Fatalf("open over corruption must recover, got %v", err)
	}
	if !d2.Damaged() {
		t.Fatal("bit flip not reported as damage")
	}
	for _, rs := range d2.Recovered() {
		if rs.Since != 0 {
			t.Fatalf("damaged store advertised Since = %d, want 0", rs.Since)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"never", FsyncNever}} {
		p, err := ParseFsyncPolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Fatalf("String() = %q, want %q", p.String(), tc.in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}

	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncInterval, Interval: 5 * time.Millisecond})
	base := fs.Syncs()
	mustAppend(t, d, testSK, 1, "a", 1)
	if err := d.MaybeSync(1 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fs.Syncs() != base {
		t.Fatal("interval policy synced before the interval elapsed")
	}
	if err := d.MaybeSync(6 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fs.Syncs() == base {
		t.Fatal("interval policy never synced")
	}

	dn := openDurable(t, wal.NewMemFS(), DurableOptions{Policy: FsyncNever})
	mustAppend(t, dn, testSK, 1, "a", 1)
	if err := dn.MaybeSync(time.Hour); err != nil {
		t.Fatal(err)
	}
	if dn.DurableStats().Syncs != 0 {
		t.Fatal("never policy synced")
	}
}

func TestFsyncErrorSurfaces(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	mustAppend(t, d, testSK, 1, "a", 1)
	boom := errors.New("fsyncgate")
	fs.FailSyncs(boom)
	if err := d.MaybeSync(0); !errors.Is(err, boom) {
		t.Fatalf("MaybeSync over failing disk = %v, want %v", err, boom)
	}
}

func TestBitcaskMergeTriggered(t *testing.T) {
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways, CompactDead: 8, DataSegmentBytes: 512})
	for i := 0; i < 32; i++ {
		seq := proto.Seq(i + 1)
		mustAppend(t, d, testSK, seq, "hot", proto.Version(i+1))
		mustCommit(t, d, testSK, seq, "hot", proto.Version(i+1))
		if i > 0 {
			if err := d.Purge(testSK, proto.Seq(i), "hot", proto.Version(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if dead := d.DurableStats(); dead.DataFiles > 4 {
		t.Fatalf("merge never triggered: %d data files, %d live keys", dead.DataFiles, dead.LiveKeys)
	}
	fs.Crash(rand.New(rand.NewSource(8)))
	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	rs := d2.Recovered()[testSK]
	if e := shardEntry(t, rs, "hot", 32); e == nil || !e.Rec.Committed {
		t.Fatal("live version lost across merge + crash")
	}
	if len(rs.Entries) != 1 {
		t.Fatalf("%d entries survived, want 1 (rest purged)", len(rs.Entries))
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	// Crashing immediately after a recovery (normalization rewrote the
	// WAL and Bitcask) must replay to the identical state.
	fs := wal.NewMemFS()
	d := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	for i := 0; i < 10; i++ {
		seq := proto.Seq(i + 1)
		key := fmt.Sprintf("k%d", i)
		mustAppend(t, d, testSK, seq, key, 1)
		if i%2 == 0 {
			mustCommit(t, d, testSK, seq, key, 1)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(rand.New(rand.NewSource(12)))

	snap := func(d *Durable) string {
		rs := d.Recovered()[testSK]
		var b bytes.Buffer
		fmt.Fprintf(&b, "since=%d max=%d\n", rs.Since, rs.MaxSeq)
		for _, e := range rs.Entries {
			fmt.Fprintf(&b, "%s@%d c=%v v=%q seq=%d\n", e.Rec.Key, e.Rec.Version, e.Rec.Committed, e.Value, e.Seq)
		}
		return b.String()
	}
	d2 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	first := snap(d2)
	// kill -9 right after recovery, before any new traffic.
	fs.Crash(rand.New(rand.NewSource(13)))
	d3 := openDurable(t, fs, DurableOptions{Policy: FsyncAlways})
	if second := snap(d3); second != first {
		t.Fatalf("recovery not idempotent:\nfirst:\n%ssecond:\n%s", first, second)
	}
}

func TestTrackerAdvance(t *testing.T) {
	tr := NewTracker()
	tr.Advance(10)
	if got := tr.Next(); got != 11 {
		t.Fatalf("Next after Advance(10) = %d", got)
	}
	tr.Advance(5) // must never move backwards
	if got := tr.Next(); got != 12 {
		t.Fatalf("Next after stale Advance = %d", got)
	}
}

func TestReadMetaRecordTruncated(t *testing.T) {
	// Regression: the bounds check was 4 bytes short, so a payload cut
	// inside the trailing LocBlock/LocOff fields panicked instead of
	// returning ok=false — turning corruption that slipped past the CRC
	// (or a cross-version record) into a recovery crash loop.
	full := appendMetaRecord(nil, &proto.MetaRecord{
		Key: "key", Version: 7, Memgest: 3, Committed: true,
		Length: 4, LocBlock: 9, LocOff: 11,
	})
	for cut := 1; cut <= len(full); cut++ {
		if _, _, ok := readMetaRecord(full[:len(full)-cut]); ok {
			t.Fatalf("meta record with %d bytes cut off parsed ok", cut)
		}
	}
	m, rest, ok := readMetaRecord(full)
	if !ok || len(rest) != 0 || m.Key != "key" || m.Version != 7 ||
		!m.Committed || m.Length != 4 || m.LocBlock != 9 || m.LocOff != 11 {
		t.Fatalf("full meta record = %+v ok=%v rest=%d", m, ok, len(rest))
	}
}
