// Package testutil holds small helpers shared by Ring's tests.
package testutil

import "time"

// Eventually polls cond every step until it returns true or timeout
// elapses, and reports whether the condition was met. It is the
// sanctioned replacement for bare time.Sleep in tests (enforced by the
// sleepytest analyzer): a polled test passes the moment its condition
// holds and times out loudly when it never does, instead of guessing a
// delay that is wrong on a loaded CI machine and wasteful on a fast
// one. Virtual-time tests should drive the simulator's tickUntil
// instead.
func Eventually(timeout, step time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(step)
	}
}
