package lint

import (
	"go/ast"
	"go/types"
)

// durablePkgs are the storage-engine packages whose error returns are
// load-bearing: a dropped error from a WAL append, a Bitcask put, or a
// group-commit sync silently converts "durable" into "probably
// durable", the exact bug class the fsyncgate chaos schedule exists to
// catch at runtime. This catches it at compile time instead.
var durablePkgs = map[string]bool{
	"ring/internal/wal":     true,
	"ring/internal/bitcask": true,
	"ring/internal/replog":  true,
}

// DurablePath forbids discarding the error of any error-returning
// call into the durable storage packages (internal/wal,
// internal/bitcask, internal/replog): as a bare expression statement,
// through a blank assignment, or inside a go/defer statement whose
// result nobody can observe. Test files are checked too — a
// durability test that ignores Close is testing the page cache.
//
// The escape hatch is //ring:durableok on the call's line or the
// enclosing function's doc comment, for the few sites where dropping
// the error is the design (e.g. closing an engine that is already
// known damaged on a teardown path).
var DurablePath = &Analyzer{
	Name: "durablepath",
	Doc:  "no discarded errors from internal/wal, internal/bitcask, or internal/replog calls (//ring:durableok to justify)",
	Run:  runDurablePath,
}

func runDurablePath(pass *Pass) error {
	report := func(call *ast.CallExpr, fn *types.Func, how string) {
		if pass.lineDirective(call.Pos(), "durableok") ||
			enclosingFuncHasDirective(pass, call.Pos(), "durableok") {
			return
		}
		pass.Reportf(call.Pos(), "durable error discarded: %s.%s returns an error that %s (check it, or justify with //ring:durableok)",
			fn.Pkg().Name(), fn.Name(), how)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if fn, ok := durableErrCall(pass, call); ok {
						report(call, fn, "this statement drops")
					}
				}
			case *ast.GoStmt:
				if fn, ok := durableErrCall(pass, st.Call); ok {
					report(st.Call, fn, "a go statement cannot observe")
				}
			case *ast.DeferStmt:
				if fn, ok := durableErrCall(pass, st.Call); ok {
					report(st.Call, fn, "a defer statement cannot observe")
				}
			case *ast.AssignStmt:
				// `v, _ := call()` for a single multi-result call, or a
				// blank slot in a parallel assignment. The error is
				// always the last result, so only the last (or the
				// call's own) LHS slot matters.
				if len(st.Rhs) == 1 {
					call, ok := st.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn, ok := durableErrCall(pass, call); ok && isBlank(st.Lhs[len(st.Lhs)-1]) {
						report(call, fn, "a blank assignment drops")
					}
					return true
				}
				for i, rhs := range st.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || i >= len(st.Lhs) {
						continue
					}
					if fn, ok := durableErrCall(pass, call); ok && isBlank(st.Lhs[i]) {
						report(call, fn, "a blank assignment drops")
					}
				}
			}
			return true
		})
	}
	return nil
}

// durableErrCall reports whether call resolves to a function or method
// of one of the durable storage packages whose last result is error.
// Interface methods (e.g. wal.FS) resolve to the interface's package,
// so fakes and wrappers are covered at the call site that matters.
func durableErrCall(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.Ident:
		id = f
	default:
		return nil, false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !durablePkgs[fn.Pkg().Path()] {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return nil, false
	}
	last := res.At(res.Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return nil, false
	}
	return fn, true
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
