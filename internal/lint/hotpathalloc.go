package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the zero-allocation message path. Functions
// annotated //ring:hotpath, and every same-package function they
// statically reach, may not:
//
//   - call into package fmt (formatting allocates; move error
//     construction behind a //ring:hotpath-stop cold helper)
//   - concatenate strings with + or +=
//   - build closures that capture variables and escape (assigned,
//     stored, returned, or launched — a literal passed directly as a
//     call argument or invoked in place is assumed non-escaping)
//   - box non-pointer values into interfaces (pointers, channels, maps
//     and funcs ride in an interface without allocating; everything
//     else escapes to the heap)
//   - append to a local slice declared without capacity (var s []T,
//     s := []T{}, s := make([]T, 0)) — preallocate or reuse a buffer
//
// Traversal is per package: a cross-package call is the callee
// package's responsibility, annotated at its own entry point (proto's
// AppendEncode/Decode, transport's Send, core's drain/flush). Calls
// through an interface propagate to every same-package concrete method
// implementing it, which is how annotating AppendEncode covers all 35+
// message encode methods. //ring:hotpath-stop bounds the walk at
// deliberate exits: cold error constructors and subsystems governed by
// their own rules (the Node state machine).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//ring:hotpath functions and their local callees must not allocate via fmt, string concat, escaping closures, interface boxing, or un-preallocated append",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	stops := map[*ast.FuncDecl]bool{}
	type rootedFn struct {
		fd   *ast.FuncDecl
		root string
	}
	var queue []rootedFn
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
			if hasDirective(fd.Doc, "hotpath-stop") {
				stops[fd] = true
			} else if hasDirective(fd.Doc, "hotpath") {
				queue = append(queue, rootedFn{fd, fd.Name.Name})
			}
		}
	}

	seen := map[*ast.FuncDecl]bool{}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		if seen[item.fd] || stops[item.fd] || item.fd.Body == nil {
			continue
		}
		seen[item.fd] = true
		checkHotFunc(pass, item.fd, item.root)
		for _, callee := range localCallees(pass, item.fd, decls) {
			if !seen[callee] && !stops[callee] {
				queue = append(queue, rootedFn{callee, item.root})
			}
		}
	}
	return nil
}

// localCallees resolves the same-package functions fd can call:
// static calls plus, for calls through a same-package interface, every
// same-package concrete method implementing it.
func localCallees(pass *Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	added := map[*ast.FuncDecl]bool{}
	add := func(obj types.Object) {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() != pass.Pkg {
			return
		}
		if d := decls[fn]; d != nil && !added[d] {
			added[d] = true
			out = append(out, d)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			add(pass.Info.Uses[fun])
		case *ast.SelectorExpr:
			if sel := pass.Info.Selections[fun]; sel != nil {
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					for _, m := range implementorsOf(pass, iface, sel.Obj().Name()) {
						add(m)
					}
				} else {
					add(sel.Obj())
				}
			} else {
				add(pass.Info.Uses[fun.Sel]) // pkg-qualified: filtered by Pkg above
			}
		}
		return true
	})
	return out
}

// implementorsOf finds the method named name on every package-scope
// named type (or its pointer) implementing iface.
func implementorsOf(pass *Pass, iface *types.Interface, name string) []types.Object {
	var out []types.Object
	scope := pass.Pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		T := obj.Type()
		if _, ok := T.Underlying().(*types.Interface); ok {
			continue
		}
		for _, t := range []types.Type{T, types.NewPointer(T)} {
			if !types.Implements(t, iface) {
				continue
			}
			if m, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, name); m != nil {
				out = append(out, m)
			}
			break
		}
	}
	return out
}

// checkHotFunc flags the allocation patterns inside one hot function.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, root string) {
	info := pass.Info
	badSlices := unpreallocatedLocals(pass, fd)

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeFromPkg(info, n, "fmt"); ok {
				pass.Reportf(n.Pos(), "hot path (via %s): call to fmt.%s allocates", root, name)
			}
			checkCallBoxing(pass, n, root)
			if isBuiltin(info, n.Fun, "append") && len(n.Args) > 0 {
				if id, ok := n.Args[0].(*ast.Ident); ok && badSlices[info.Uses[id]] {
					pass.Reportf(n.Pos(), "hot path (via %s): append to un-preallocated local slice %s (declare with capacity or reuse a buffer)", root, id.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) {
				pass.Reportf(n.Pos(), "hot path (via %s): string concatenation allocates", root)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.Pos(), "hot path (via %s): string concatenation allocates", root)
			}
			checkAssignBoxing(pass, n, root)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fd, n, root)
		case *ast.CompositeLit:
			checkCompositeBoxing(pass, n, root)
		case *ast.FuncLit:
			if capturesOutside(pass, fd, n) && escapes(n, stack) {
				pass.Reportf(n.Pos(), "hot path (via %s): escaping closure captures variables and allocates", root)
			}
		}
		return true
	})
}

// unpreallocatedLocals collects local slice variables declared with no
// capacity, clearing any that are later reassigned a real buffer. A
// variable stays flagged at most once: reassignment from append(...)
// marks it good so only the first growth is reported.
func unpreallocatedLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	bad := map[types.Object]bool{}
	mark := func(id *ast.Ident, isBad bool) {
		if obj := pass.Info.Defs[id]; obj != nil {
			bad[obj] = isBad
		} else if obj := pass.Info.Uses[id]; obj != nil {
			if _, tracked := bad[obj]; tracked || isBad {
				bad[obj] = isBad
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if len(n.Values) != 0 {
				return true
			}
			if at, ok := n.Type.(*ast.ArrayType); ok && at.Len == nil {
				for _, id := range n.Names {
					mark(id, true)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				// Self-append (s = append(s, ...)) does not change
				// status: growing a bad slice keeps it bad.
				if isSelfAppend(pass, id, n.Rhs[i]) {
					continue
				}
				mark(id, isEmptySliceExpr(pass, n.Rhs[i]))
			}
		}
		return true
	})
	return bad
}

// isSelfAppend reports whether e is append(id, ...) growing the same
// variable it is assigned back to.
func isSelfAppend(pass *Pass, id *ast.Ident, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || !isBuiltin(pass.Info, call.Fun, "append") || len(call.Args) == 0 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	lobj := pass.Info.Uses[id]
	if lobj == nil {
		lobj = pass.Info.Defs[id]
	}
	return lobj != nil && pass.Info.Uses[arg] == lobj
}

// isEmptySliceExpr reports whether e is a capacity-free fresh slice:
// []T{} with no elements, or make([]T, 0) with no cap.
func isEmptySliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		at, ok := e.Type.(*ast.ArrayType)
		return ok && at.Len == nil && len(e.Elts) == 0
	case *ast.CallExpr:
		if !isBuiltin(pass.Info, e.Fun, "make") || len(e.Args) != 2 {
			return false
		}
		if at, ok := e.Args[0].(*ast.ArrayType); !ok || at.Len != nil {
			return false
		}
		tv := pass.Info.Types[e.Args[1]]
		return tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
	}
	return ok && b.Info()&types.IsString != 0
}

// ----------------------------------------------------------------- boxing

// needsBox reports whether storing a value of type t into an interface
// allocates: pointers, channels, maps, funcs, interfaces and nil ride
// in the interface word for free; everything else is heap-boxed.
func needsBox(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		if b := t.Underlying().(*types.Basic); b.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func reportBox(pass *Pass, pos token.Pos, root string, t types.Type) {
	pass.Reportf(pos, "hot path (via %s): %s boxed into interface allocates", root, types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// checkCallBoxing flags concrete non-pointer arguments passed to
// interface-typed parameters (including conversions T(x) where T is an
// interface, and variadic ...interface{} tails).
func checkCallBoxing(pass *Pass, call *ast.CallExpr, root string) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.Info.Types[call.Args[0]].Type; needsBox(at) {
				reportBox(pass, call.Args[0].Pos(), root, at)
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if !isInterface(pt) {
			continue
		}
		if at := pass.Info.Types[arg].Type; needsBox(at) {
			reportBox(pass, arg.Pos(), root, at)
		}
	}
}

func checkAssignBoxing(pass *Pass, n *ast.AssignStmt, root string) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt := pass.Info.Types[n.Lhs[i]].Type
		if n.Tok == token.DEFINE {
			if id, ok := n.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if !isInterface(lt) {
			continue
		}
		if rt := pass.Info.Types[n.Rhs[i]].Type; needsBox(rt) {
			reportBox(pass, n.Rhs[i].Pos(), root, rt)
		}
	}
}

func checkReturnBoxing(pass *Pass, fd *ast.FuncDecl, n *ast.ReturnStmt, root string) {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	res := obj.Type().(*types.Signature).Results()
	if res.Len() != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		if !isInterface(res.At(i).Type()) {
			continue
		}
		if rt := pass.Info.Types[r].Type; needsBox(rt) {
			reportBox(pass, r.Pos(), root, rt)
		}
	}
}

func checkCompositeBoxing(pass *Pass, lit *ast.CompositeLit, root string) {
	lt := pass.Info.Types[lit].Type
	if lt == nil {
		return
	}
	elemType := func(i int, kv *ast.KeyValueExpr) types.Type {
		switch u := lt.Underlying().(type) {
		case *types.Slice:
			return u.Elem()
		case *types.Array:
			return u.Elem()
		case *types.Map:
			return u.Elem()
		case *types.Struct:
			if kv != nil {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if f, _ := pass.Info.Uses[id].(*types.Var); f != nil {
						return f.Type()
					}
				}
				return nil
			}
			if i < u.NumFields() {
				return u.Field(i).Type()
			}
		}
		return nil
	}
	for i, el := range lit.Elts {
		kv, _ := el.(*ast.KeyValueExpr)
		val := el
		if kv != nil {
			val = kv.Value
		}
		ft := elemType(i, kv)
		if !isInterface(ft) {
			continue
		}
		if vt := pass.Info.Types[val].Type; needsBox(vt) {
			reportBox(pass, val.Pos(), root, vt)
		}
	}
}

// ---------------------------------------------------------------- closures

// capturesOutside reports whether lit references variables declared in
// fd but outside lit itself.
func capturesOutside(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < fd.End() && (pos < lit.Pos() || pos >= lit.End()) {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// escapes approximates whether a closure literal outlives the call
// frame: a literal invoked in place or passed directly as a call
// argument is assumed non-escaping (the overwhelmingly common
// callback shape, stack-allocated by the compiler); anything assigned,
// stored, returned, or launched via go/defer escapes.
func escapes(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if parent.Fun == lit {
			// Immediately invoked — unless the invocation launches a
			// goroutine, which moves the frame to the heap.
			if len(stack) >= 2 {
				if _, ok := stack[len(stack)-2].(*ast.GoStmt); ok {
					return true
				}
			}
			return false
		}
		for _, a := range parent.Args {
			if a == lit {
				// Direct callback argument — unless launched.
				if len(stack) >= 2 {
					switch stack[len(stack)-2].(type) {
					case *ast.GoStmt, *ast.DeferStmt:
						return true
					}
				}
				return false
			}
		}
	}
	return true
}
