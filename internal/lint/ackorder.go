package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ring/internal/lint/flow"
)

// AckOrder enforces the paper's acknowledgement-ordering invariant as
// a dataflow property: on protocol-handler paths (rooted at functions
// annotated //ring:handler), no reply or ack emission may be
// statically reachable before the barrier calls the handler owes —
// quorum bookkeeping (tracker Open/Ack, quorumAcks), durable
// persistence (persist*, SyncDurable, calls into the storage engines),
// and the transition journal (persistConvert*: the conv-begin/conv-end
// records a scheme transition must order before its ack, so a crash
// replays to exactly the old or the new scheme).
//
//	//ring:handler                requires quorum and persist
//	//ring:handler persist        replica-side: persist-before-ack only
//	//ring:handler quorum         quorum only
//	//ring:handler journal        transition handler: journal-before-ack
//
// An emission is a send/sendNode/Send call whose message is a
// *...Reply or *...Ack struct that succeeds: Status absent, Status set
// to StOK, or Status forwarded from a parameter that some call site
// fills with StOK (how replyStatus and the fail closures are seen
// through). Non-OK constant statuses are error replies, not acks.
//
// The analysis is interprocedural over the same-package call graph
// (internal/lint/flow): a call into a function every path of which
// passes a barrier counts as that barrier; a call into a function that
// can emit a bare ack counts as an emission at the call site. Calls
// through function-typed parameters or into other packages are
// invisible — the soundness boundary documented in DESIGN.md.
//
// //ring:ackok on an emission's line exempts it (and stops its
// propagation to callers); the deliberate ChaosUnsafeAck commit in
// core is the canonical site.
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc:  "//ring:handler paths must pass their quorum and persist barriers before any reply/ack emission",
	Run:  runAckOrder,
}

// Barrier classes.
const (
	clsQuorum = iota
	clsPersist
	clsJournal
	numClasses
)

var className = [numClasses]string{"quorum", "persist", "journal"}

type ackEvKind int

const (
	evBarrier ackEvKind = iota
	evAck
	evCall
)

// ackEvent is one classified call inside a CFG node.
type ackEvent struct {
	kind    ackEvKind
	class   [numClasses]bool // barrier classes (evBarrier)
	callees []*flow.Unit     // same-package resolutions (evCall)
	label   string           // message type or callee name, for diagnostics
	pos     token.Pos        // report position (call start)
	ord     token.Pos        // intra-node ordering position (call end: nested calls run first)
	exempt  bool             // //ring:ackok on the line
}

type ackState struct {
	pass   *Pass
	cg     *flow.CallGraph
	events map[*flow.Unit]map[*flow.Node][]ackEvent
	// params maps each unit to its declared parameter objects, in
	// order, for the status-forwarding summary.
	params map[*flow.Unit][]types.Object
	// fwd[u] marks parameter indices of u that flow into the Status
	// field of an otherwise-success reply emitted (transitively) by u.
	fwd map[*flow.Unit]map[int]bool
	// barrierAll[u][c]: every entry->exit path of u passes a class-c
	// barrier.
	barrierAll map[*flow.Unit]*[numClasses]bool
	// bareAck[u][c]: some path from u's entry reaches an ack emission
	// before any class-c barrier.
	bareAck map[*flow.Unit]*[numClasses]bool
}

func runAckOrder(pass *Pass) error {
	st := &ackState{
		pass:       pass,
		cg:         flow.NewCallGraph(pass.Pkg, pass.Info, pass.Files, pass.IsTestFile),
		events:     map[*flow.Unit]map[*flow.Node][]ackEvent{},
		params:     map[*flow.Unit][]types.Object{},
		fwd:        map[*flow.Unit]map[int]bool{},
		barrierAll: map[*flow.Unit]*[numClasses]bool{},
		bareAck:    map[*flow.Unit]*[numClasses]bool{},
	}
	roots := map[*flow.Unit]*[numClasses]bool{}
	for _, u := range st.cg.Units {
		st.params[u] = unitParams(pass.Info, u)
		st.fwd[u] = map[int]bool{}
		st.barrierAll[u] = &[numClasses]bool{}
		st.bareAck[u] = &[numClasses]bool{}
		if fd, ok := u.Decl.(*ast.FuncDecl); ok {
			if req, ok := handlerClasses(fd); ok {
				roots[u] = req
			}
		}
	}
	if len(roots) == 0 {
		return nil // nothing annotated; the package has no handler protocol
	}

	st.computeForwarding()
	for _, u := range st.cg.Units {
		st.events[u] = st.classify(u)
	}
	st.fixBarrierAll()
	st.fixBareAck()

	// bareEntered[u][c]: u is (transitively) entered on a path that
	// has not yet passed its class-c barrier.
	entered := map[*flow.Unit]*[numClasses]bool{}
	for _, u := range st.cg.Units {
		entered[u] = &[numClasses]bool{}
	}
	for u, req := range roots {
		*entered[u] = *req
	}
	for changed := true; changed; {
		changed = false
		for _, u := range st.cg.Units {
			for c := 0; c < numClasses; c++ {
				if !entered[u][c] {
					continue
				}
				st.eachBareEvent(u, c, func(e ackEvent) {
					if e.kind != evCall || e.exempt {
						return
					}
					for _, v := range e.callees {
						if !entered[v][c] {
							entered[v][c] = true
							changed = true
						}
					}
				})
			}
		}
	}

	// Report every non-exempt emission reachable bare in an
	// entered-bare unit, at the most local position: the primitive
	// send, or the call through which a bare emission is reachable.
	for _, u := range st.cg.Units {
		for c := 0; c < numClasses; c++ {
			if !entered[u][c] {
				continue
			}
			st.eachBareEvent(u, c, func(e ackEvent) {
				if e.exempt || !st.ackish(e, c) {
					return
				}
				switch e.kind {
				case evAck:
					pass.Reportf(e.pos, "handler path emits %s before its %s barrier", e.label, className[c])
				case evCall:
					pass.Reportf(e.pos, "handler path can emit a reply through %s before its %s barrier", e.label, className[c])
				}
			})
		}
	}
	return nil
}

// handlerClasses parses a //ring:handler directive: leading arguments
// name the required barrier classes; a bare directive (or one going
// straight to justification prose) requires quorum and persist — the
// journal class is only owed where named, by transition handlers.
func handlerClasses(fd *ast.FuncDecl) (*[numClasses]bool, bool) {
	args, ok := directiveArgs(fd.Doc, "handler")
	if !ok {
		return nil, false
	}
	var req [numClasses]bool
	named := false
loop:
	for _, a := range args {
		switch a {
		case "quorum":
			req[clsQuorum] = true
			named = true
		case "persist":
			req[clsPersist] = true
			named = true
		case "journal":
			req[clsJournal] = true
			named = true
		default:
			break loop // justification prose
		}
	}
	if !named {
		req[clsQuorum], req[clsPersist] = true, true
	}
	return &req, true
}

// unitParams returns the declared parameter objects of a unit in
// order.
func unitParams(info *types.Info, u *flow.Unit) []types.Object {
	var ft *ast.FuncType
	switch d := u.Decl.(type) {
	case *ast.FuncDecl:
		ft = d.Type
	case *ast.FuncLit:
		ft = d.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// paramIndex returns the index of e in u's parameter list, or -1.
func (st *ackState) paramIndex(u *flow.Unit, e ast.Expr) int {
	id, ok := e.(*ast.Ident)
	if !ok {
		return -1
	}
	obj := st.pass.Info.Uses[id]
	if obj == nil {
		return -1
	}
	for i, p := range st.params[u] {
		if p == obj {
			return i
		}
	}
	return -1
}

// computeForwarding fills fwd to a fixpoint: a parameter forwards into
// a Status field directly (send with Status: param) or through a call
// passing it at a forwarding index of a same-package callee.
func (st *ackState) computeForwarding() {
	for changed := true; changed; {
		changed = false
		for _, u := range st.cg.Units {
			ast.Inspect(u.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a literal's body is its own unit
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if msg, status := st.replyArg(u, call); msg != "" && status != nil {
					if i := st.paramIndex(u, status); i >= 0 && !st.fwd[u][i] {
						st.fwd[u][i] = true
						changed = true
					}
				}
				for _, v := range st.cg.Callees(call) {
					for i := range st.fwd[v] {
						if i < len(call.Args) {
							if j := st.paramIndex(u, call.Args[i]); j >= 0 && !st.fwd[u][j] {
								st.fwd[u][j] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// replyArg inspects a send-like call: if some argument is a
// *...Reply/*...Ack message it returns the message type name and the
// Status field's value expression (nil when the Status key is absent).
// A non-reply call returns ("", nil).
func (st *ackState) replyArg(u *flow.Unit, call *ast.CallExpr) (string, ast.Expr) {
	if !isSendLike(call) {
		return "", nil
	}
	for _, arg := range call.Args {
		name := replyTypeName(st.pass.Info, arg)
		if name == "" {
			continue
		}
		lit := st.resolveComposite(u, arg)
		if lit == nil {
			return name, nil
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Status" {
				return name, kv.Value
			}
		}
		return name, nil
	}
	return "", nil
}

// isSendLike matches the repo's emission chokepoints by name:
// Node.send/sendNode and transport-style Send.
func isSendLike(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return name == "send" || name == "sendNode" || name == "Send"
}

// replyTypeName returns the named struct type of e when its name ends
// in Reply or Ack (through one pointer), else "".
func replyTypeName(info *types.Info, e ast.Expr) string {
	t := info.Types[e].Type
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if strings.HasSuffix(name, "Reply") || strings.HasSuffix(name, "Ack") {
		return name
	}
	return ""
}

// resolveComposite finds the composite literal behind a message
// argument: the literal itself, &literal, or an identifier assigned
// exactly one literal in the unit.
func (st *ackState) resolveComposite(u *flow.Unit, e ast.Expr) *ast.CompositeLit {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return e
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if lit, ok := e.X.(*ast.CompositeLit); ok {
				return lit
			}
		}
	case *ast.Ident:
		obj := st.pass.Info.Uses[e]
		if obj == nil {
			return nil
		}
		var lit *ast.CompositeLit
		count := 0
		ast.Inspect(u.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				def := st.pass.Info.Defs[id]
				if def == nil {
					def = st.pass.Info.Uses[id]
				}
				if def != obj {
					continue
				}
				count++
				lit = st.resolveLit(as.Rhs[i])
			}
			return true
		})
		if count == 1 {
			return lit
		}
	}
	return nil
}

func (st *ackState) resolveLit(e ast.Expr) *ast.CompositeLit {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return e
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if lit, ok := e.X.(*ast.CompositeLit); ok {
				return lit
			}
		}
	}
	return nil
}

// isStOK reports whether e names the success status constant.
func isStOK(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "StOK"
	case *ast.SelectorExpr:
		return e.Sel.Name == "StOK"
	}
	return false
}

// classify builds the ordered event lists of one unit's CFG nodes.
func (st *ackState) classify(u *flow.Unit) map[*flow.Node][]ackEvent {
	info := st.pass.Info
	out := map[*flow.Node][]ackEvent{}
	for _, n := range u.Graph.Nodes {
		var evs []ackEvent
		flow.ScanNode(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			base := ackEvent{
				pos:    call.Pos(),
				ord:    call.End(),
				exempt: st.pass.directiveEnabled("ackok") && st.pass.lineDirective(call.Pos(), "ackok"),
			}

			// Barrier primitives win outright: the call IS the barrier.
			if cls, ok := barrierPrimitive(info, call); ok {
				e := base
				e.kind = evBarrier
				e.class = cls
				evs = append(evs, e)
				return true
			}

			// Ack primitives: a send-like call with a succeeding
			// reply/ack message.
			if msg, status := st.replyArg(u, call); msg != "" {
				success := true
				if status != nil {
					switch {
					case isStOK(status):
						success = true
					case info.Types[status].Value != nil:
						success = false // a non-OK constant: an error reply
					case st.paramIndex(u, status) >= 0:
						// Forwarded status: the emission materializes at
						// call sites passing StOK (computeForwarding).
						success = false
					default:
						success = true // computed status: conservative
					}
				}
				if success {
					e := base
					e.kind = evAck
					e.label = msg
					evs = append(evs, e)
					return true
				}
				return true
			}

			// Same-package calls carry their callee summaries; a call
			// filling a forwarding parameter with StOK is an emission
			// here.
			callees := st.cg.Callees(call)
			if len(callees) > 0 {
				for _, v := range callees {
					for i := range st.fwd[v] {
						if i < len(call.Args) && st.statusArgAcks(u, call.Args[i]) {
							e := base
							e.kind = evAck
							e.label = "a success reply via " + v.Name
							evs = append(evs, e)
						}
					}
				}
				e := base
				e.kind = evCall
				e.callees = callees
				e.label = calleeLabel(call)
				evs = append(evs, e)
			}
			return true
		})
		if len(evs) > 0 {
			// Nested calls execute before their callers: order by end
			// position.
			for i := 1; i < len(evs); i++ {
				for j := i; j > 0 && evs[j].ord < evs[j-1].ord; j-- {
					evs[j], evs[j-1] = evs[j-1], evs[j]
				}
			}
			out[n] = evs
		}
	}
	return out
}

// statusArgAcks classifies an argument filling a forwarding status
// parameter: StOK is an ack, another constant is an error reply, a
// forwarded parameter is handled by the fwd fixpoint, anything
// computed is conservatively an ack.
func (st *ackState) statusArgAcks(u *flow.Unit, arg ast.Expr) bool {
	if isStOK(arg) {
		return true
	}
	if st.pass.Info.Types[arg].Value != nil {
		return false
	}
	if st.paramIndex(u, arg) >= 0 {
		return false
	}
	return true
}

// barrierPrimitive classifies a call as a quorum or persist barrier.
func barrierPrimitive(info *types.Info, call *ast.CallExpr) ([numClasses]bool, bool) {
	var cls [numClasses]bool
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return cls, false
	}
	switch {
	case name == "quorumAcks":
		cls[clsQuorum] = true
		return cls, true
	case name == "Open" || name == "Ack":
		// Quorum bookkeeping methods on the replication tracker.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if s := info.Selections[sel]; s != nil && typeNameContains(s.Recv(), "Tracker") {
				cls[clsQuorum] = true
				return cls, true
			}
		}
	case strings.HasPrefix(name, "persistConvert"):
		// The transition journal: a durable append (so it satisfies the
		// persist obligation) that is also the journal barrier a
		// transition handler owes. Checked before the generic persist
		// prefix so the journal class binds.
		cls[clsPersist], cls[clsJournal] = true, true
		return cls, true
	case strings.HasPrefix(name, "persist") || name == "SyncDurable":
		cls[clsPersist] = true
		return cls, true
	}
	if fn := flow.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && durablePkgs[fn.Pkg().Path()] {
		cls[clsPersist] = true
		return cls, true
	}
	return cls, false
}

func typeNameContains(t types.Type, frag string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.Contains(named.Obj().Name(), frag)
}

func calleeLabel(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.FuncLit:
		return "a function literal"
	}
	return "a call"
}

// barrierish reports whether executing e completes a class-c barrier:
// a primitive barrier, or a call every candidate callee of which
// passes the barrier on every path.
func (st *ackState) barrierish(e ackEvent, c int) bool {
	switch e.kind {
	case evBarrier:
		return e.class[c]
	case evCall:
		if len(e.callees) == 0 {
			return false
		}
		for _, v := range e.callees {
			if !st.barrierAll[v][c] {
				return false
			}
		}
		return true
	}
	return false
}

// ackish reports whether executing e can emit a bare class-c ack.
func (st *ackState) ackish(e ackEvent, c int) bool {
	if e.exempt {
		return false
	}
	switch e.kind {
	case evAck:
		return true
	case evCall:
		for _, v := range e.callees {
			if st.bareAck[v][c] {
				return true
			}
		}
	}
	return false
}

// nodeBarrier reports whether flowing THROUGH n passes a class-c
// barrier.
func (st *ackState) nodeBarrier(u *flow.Unit, n *flow.Node, c int) bool {
	for _, e := range st.events[u][n] {
		if st.barrierish(e, c) {
			return true
		}
	}
	return false
}

// eachBareEvent visits, in order, every event of u reachable from its
// entry before a class-c barrier.
func (st *ackState) eachBareEvent(u *flow.Unit, c int, fn func(ackEvent)) {
	reach := u.Graph.ReachableAvoiding(u.Graph.Entry, func(n *flow.Node) bool {
		return st.nodeBarrier(u, n, c)
	})
	for n := range reach {
		for _, e := range st.events[u][n] {
			// The event is visited before a barrier check: a callee can
			// emit a bare ack AND pass the barrier on every path, and
			// the emission still precedes the barrier.
			fn(e)
			if st.barrierish(e, c) {
				break // events after the barrier are guarded
			}
		}
	}
}

func (st *ackState) fixBarrierAll() {
	for changed := true; changed; {
		changed = false
		for _, u := range st.cg.Units {
			for c := 0; c < numClasses; c++ {
				if st.barrierAll[u][c] {
					continue
				}
				if u.Graph.AllPathsPass(func(n *flow.Node) bool { return st.nodeBarrier(u, n, c) }) {
					st.barrierAll[u][c] = true
					changed = true
				}
			}
		}
	}
}

func (st *ackState) fixBareAck() {
	for changed := true; changed; {
		changed = false
		for _, u := range st.cg.Units {
			for c := 0; c < numClasses; c++ {
				if st.bareAck[u][c] {
					continue
				}
				found := false
				st.eachBareEvent(u, c, func(e ackEvent) {
					if st.ackish(e, c) {
						found = true
					}
				})
				if found {
					st.bareAck[u][c] = true
					changed = true
				}
			}
		}
	}
}
