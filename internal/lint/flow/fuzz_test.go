package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzCFGBuild asserts the CFG builder never panics on any parseable
// function body, and that the graph it produces is structurally sane:
// edges symmetric, every node registered. Semantically bogus input
// (goto to a missing label, break outside a loop) must degrade to
// dropped edges, not failures.
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		``,
		`x := 1`,
		`if a { b() } else if c { d() }`,
		`for i := 0; i < 10; i++ { continue }`,
		`for { select { case <-a: return; default: } }`,
		`L: for { for range xs { break L } }`,
		`switch x { case 1, 2: fallthrough; case 3: default: }`,
		`switch v := x.(type) { case int: _ = v }`,
		`goto M; M: goto Q`,
		`defer f(); go g(); ch <- 1; <-ch`,
		`break; continue; fallthrough`,
		`func() { for {} }()`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // not parseable as a function body
		}
		fd, ok := file.Decls[0].(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			t.Skip()
		}
		g := Build(fd.Body) // must not panic
		if g.Entry == nil || g.Exit == nil {
			t.Fatal("missing entry/exit")
		}
		inGraph := map[*Node]bool{}
		for _, n := range g.Nodes {
			inGraph[n] = true
		}
		for _, n := range g.Nodes {
			for _, s := range n.Succs {
				if !inGraph[s] {
					t.Fatal("edge to unregistered node")
				}
				found := false
				for _, p := range s.Preds {
					if p == n {
						found = true
						break
					}
				}
				if !found {
					t.Fatal("asymmetric edge")
				}
			}
		}
		// Queries must terminate and not panic either.
		g.ExitReachable()
		g.AllPathsPass(func(n *Node) bool { return false })
	})
}
