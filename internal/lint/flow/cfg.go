// Package flow builds per-function control-flow graphs and
// same-package call graphs for ringlint's dataflow analyzers
// (ackorder, lockguard, goroutinelife). It is pure go/ast + go/types —
// no external analysis framework — and deliberately conservative:
// extra CFG edges are acceptable (they only weaken a "must pass"
// claim and widen a "may reach" one, both safe directions for the
// analyzers built on top), missing edges are not.
//
// Granularity: one Node per simple statement or control expression.
// Composite statements are decomposed — an if contributes a node for
// its condition, a for contributes nodes for init/cond/post, a select
// contributes one node per communication clause — so a Node's Ast
// never contains a nested statement (function literals excepted; their
// bodies are separate functions and analyzers must not descend into
// them when scanning a node). Synthetic anchor nodes (Ast == nil)
// stitch constructs together and carry no events.
//
// Termination modelling: return, panic, os.Exit, log.Fatal* and
// runtime.Goexit edges go to Exit. A for loop with no condition and no
// reachable break never reaches Exit — exactly the property
// goroutinelife checks. break/continue honour labels; goto resolves
// forward and backward (an unresolvable label drops the edge rather
// than failing, so building never errors on parseable input).
package flow

import (
	"go/ast"
)

// Node is one CFG vertex: a simple statement or a control expression.
// Entry, Exit and anchor nodes are synthetic (Ast == nil).
type Node struct {
	Ast   ast.Node
	Succs []*Node
	Preds []*Node
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry, Exit *Node
	Nodes       []*Node
}

// Build constructs the CFG of a function body. It never panics on
// syntactically valid input; semantic nonsense (goto to a missing
// label, break outside a loop) degrades to dropped edges.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: map[string]*Node{},
	}
	b.g.Entry = b.newNode(nil)
	b.g.Exit = b.newNode(nil)
	out := b.stmt(body, []*Node{b.g.Entry})
	b.linkAll(out, b.g.Exit)
	for _, pg := range b.gotos {
		if tgt, ok := b.labels[pg.label]; ok {
			b.link(pg.from, tgt)
		}
	}
	return b.g
}

// ctxKind distinguishes what an unlabeled break/continue binds to.
type ctxKind int

const (
	ctxLoop ctxKind = iota
	ctxSwitch
	ctxSelect
)

// ctx is one enclosing breakable construct.
type ctx struct {
	kind  ctxKind
	label string
	// breakOut accumulates nodes whose control transfers past the
	// construct.
	breakOut []*Node
	// continueTo is the node a continue jumps to (loops only).
	continueTo *Node
}

type pendingGoto struct {
	from  *Node
	label string
}

type builder struct {
	g      *Graph
	ctxs   []*ctx
	labels map[string]*Node
	gotos  []pendingGoto
	// pendingLabel is the label to attach to the next loop/switch/
	// select built (set by LabeledStmt).
	pendingLabel string
}

func (b *builder) newNode(a ast.Node) *Node {
	n := &Node{Ast: a}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) linkAll(from []*Node, to *Node) {
	for _, f := range from {
		b.link(f, to)
	}
}

// node creates a node for a, wires in -> a, and returns it as the new
// frontier element.
func (b *builder) node(a ast.Node, in []*Node) *Node {
	n := b.newNode(a)
	b.linkAll(in, n)
	return n
}

func (b *builder) pushCtx(kind ctxKind, continueTo *Node) *ctx {
	c := &ctx{kind: kind, label: b.pendingLabel, continueTo: continueTo}
	b.pendingLabel = ""
	b.ctxs = append(b.ctxs, c)
	return c
}

func (b *builder) popCtx() {
	b.ctxs = b.ctxs[:len(b.ctxs)-1]
}

// findBreak returns the innermost breakable context, or the one with
// the given label.
func (b *builder) findBreak(label string) *ctx {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		c := b.ctxs[i]
		if label == "" || c.label == label {
			return c
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *ctx {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		c := b.ctxs[i]
		if c.kind != ctxLoop {
			continue
		}
		if label == "" || c.label == label {
			return c
		}
	}
	return nil
}

// stmt builds the subgraph of s. in is the frontier flowing into s;
// the returned slice is the frontier flowing out (empty when control
// never falls through, e.g. after return or an infinite loop).
func (b *builder) stmt(s ast.Stmt, in []*Node) []*Node {
	if s == nil {
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		for _, st := range s.List {
			in = b.stmt(st, in)
		}
		return in

	case *ast.LabeledStmt:
		// The anchor is both the goto target and the entry into the
		// labeled statement.
		anchor := b.node(nil, in)
		b.labels[s.Label.Name] = anchor
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, []*Node{anchor})
		b.pendingLabel = ""
		return out

	case *ast.IfStmt:
		b.pendingLabel = ""
		in = b.stmt(s.Init, in)
		cond := b.node(s.Cond, in)
		thenOut := b.stmt(s.Body, []*Node{cond})
		if s.Else != nil {
			elseOut := b.stmt(s.Else, []*Node{cond})
			return append(thenOut, elseOut...)
		}
		return append(thenOut, cond)

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		in = b.stmt(s.Init, in)
		var head *Node
		if s.Cond != nil {
			head = b.node(s.Cond, in)
		} else {
			head = b.node(nil, in)
		}
		b.pendingLabel = label
		c := b.pushCtx(ctxLoop, head) // continue target patched below if post exists
		var post *Node
		if s.Post != nil {
			post = b.newNode(s.Post)
			c.continueTo = post
		}
		bodyOut := b.stmt(s.Body, []*Node{head})
		b.popCtx()
		if post != nil {
			b.linkAll(bodyOut, post)
			b.link(post, head)
		} else {
			b.linkAll(bodyOut, head)
		}
		out := c.breakOut
		if s.Cond != nil {
			out = append(out, head)
		}
		return out

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		// The head evaluates X once and the per-iteration assignment;
		// modelled as one node carrying X.
		head := b.node(s.X, in)
		b.pendingLabel = label
		c := b.pushCtx(ctxLoop, head)
		bodyOut := b.stmt(s.Body, []*Node{head})
		b.popCtx()
		b.linkAll(bodyOut, head)
		// A range loop may always complete (conservative for ranging
		// over a never-closed channel; see package doc).
		return append(c.breakOut, head)

	case *ast.SwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		in = b.stmt(s.Init, in)
		var head *Node
		if s.Tag != nil {
			head = b.node(s.Tag, in)
		} else {
			head = b.node(nil, in)
		}
		b.pendingLabel = label
		return b.switchClauses(s.Body, head)

	case *ast.TypeSwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		in = b.stmt(s.Init, in)
		head := b.node(s.Assign, in)
		b.pendingLabel = label
		return b.switchClauses(s.Body, head)

	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.node(nil, in)
		b.pendingLabel = label
		c := b.pushCtx(ctxSelect, nil)
		var out []*Node
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			var entry *Node
			if comm.Comm != nil {
				entry = b.node(comm.Comm, []*Node{head})
			} else {
				entry = b.node(nil, []*Node{head}) // default clause
			}
			fr := []*Node{entry}
			for _, st := range comm.Body {
				fr = b.stmt(st, fr)
			}
			out = append(out, fr...)
		}
		b.popCtx()
		// A select with no clauses blocks forever: no fallthrough edge.
		return append(out, c.breakOut...)

	case *ast.ReturnStmt:
		n := b.node(s, in)
		b.link(n, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		n := b.node(s, in)
		switch s.Tok.String() {
		case "break":
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if c := b.findBreak(label); c != nil {
				c.breakOut = append(c.breakOut, n)
			}
		case "continue":
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if c := b.findContinue(label); c != nil && c.continueTo != nil {
				b.link(n, c.continueTo)
			}
		case "goto":
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: n, label: s.Label.Name})
			}
		case "fallthrough":
			// Handled in switchClauses via the frontier it returns;
			// here (malformed placement) it degrades to fallthrough
			// into the next statement.
			return []*Node{n}
		}
		return nil

	case *ast.ExprStmt:
		n := b.node(s, in)
		if isTerminalCall(s.X) {
			b.link(n, b.g.Exit)
			return nil
		}
		return []*Node{n}

	default:
		// Simple statements: assign, decl, incdec, send, go, defer,
		// empty. One node, straight through.
		return []*Node{b.node(s, in)}
	}
}

// switchClauses wires the case clauses of a (type) switch: head
// branches to each clause's guard chain, guards flow into the body,
// fallthrough flows into the next body, and — when no default exists —
// head flows past the whole construct.
func (b *builder) switchClauses(body *ast.BlockStmt, head *Node) []*Node {
	c := b.pushCtx(ctxSwitch, nil)
	hasDefault := false
	var out []*Node
	// anchors[i] is the body entry of clause i, the fallthrough target
	// of clause i-1.
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	anchors := make([]*Node, len(clauses))
	for i := range clauses {
		anchors[i] = b.newNode(nil)
	}
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
			b.link(head, anchors[i])
		} else {
			// Guard expressions evaluate in order; each may match
			// (enter the body) or not. Conservatively: head -> g1 ->
			// ... -> gn, every guard -> body anchor.
			fr := []*Node{head}
			for _, g := range cc.List {
				gn := b.node(g, fr)
				fr = []*Node{gn}
				b.link(gn, anchors[i])
			}
		}
		fr := []*Node{anchors[i]}
		fellThrough := false
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && j == len(cc.Body)-1 {
				n := b.node(br, fr)
				if i+1 < len(anchors) {
					b.link(n, anchors[i+1])
				} else {
					out = append(out, n)
				}
				fellThrough = true
				fr = nil
				break
			}
			fr = b.stmt(st, fr)
		}
		if !fellThrough {
			out = append(out, fr...)
		}
	}
	if !hasDefault {
		out = append(out, head)
	}
	b.popCtx()
	return append(out, c.breakOut...)
}

// isTerminalCall reports whether e is a call that never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*. Purely syntactic (flow
// has no type information by design), which is good enough for the
// conservative analyses built on top.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
