package flow

import (
	"go/ast"
	"go/types"
)

// Unit is one analyzable function: a declared function/method or a
// function literal. Units are the vertices of the same-package call
// graph and the domain of interprocedural summaries.
type Unit struct {
	// Name labels diagnostics: the declared name, or "func literal".
	Name string
	// Decl is the *ast.FuncDecl or *ast.FuncLit.
	Decl ast.Node
	Body *ast.BlockStmt
	// Graph is the unit's CFG, built eagerly.
	Graph *Graph
}

// CallGraph resolves same-package callees conservatively: static
// calls, calls through local variables bound to exactly one function
// literal, and calls through a same-package interface (expanded to
// every same-package implementor, the hotpathalloc convention).
type CallGraph struct {
	Pkg   *types.Package
	Info  *types.Info
	Units []*Unit

	byDecl map[ast.Node]*Unit
	byFunc map[*types.Func]*Unit
	// byVar maps a local variable to the single function literal it is
	// bound to, when that binding is unambiguous (one assignment,
	// right-hand side a literal).
	byVar map[types.Object]*Unit
}

// NewCallGraph enumerates the units of the files (skipping any file
// for which skip returns true, normally the _test.go predicate),
// builds their CFGs, and indexes callee resolution.
func NewCallGraph(pkg *types.Package, info *types.Info, files []*ast.File, skip func(*ast.File) bool) *CallGraph {
	cg := &CallGraph{
		Pkg:    pkg,
		Info:   info,
		byDecl: map[ast.Node]*Unit{},
		byFunc: map[*types.Func]*Unit{},
		byVar:  map[types.Object]*Unit{},
	}
	// Variables assigned function literals; a variable assigned more
	// than once is ambiguous and dropped.
	litBindings := map[types.Object]*ast.FuncLit{}
	ambiguous := map[types.Object]bool{}
	bind := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if lit, ok := rhs.(*ast.FuncLit); ok && !ambiguous[obj] && litBindings[obj] == nil {
			litBindings[obj] = lit
			return
		}
		// Reassignment (or a non-literal binding) poisons the entry.
		delete(litBindings, obj)
		ambiguous[obj] = true
	}

	for _, f := range files {
		if skip != nil && skip(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				u := &Unit{Name: n.Name.Name, Decl: n, Body: n.Body, Graph: Build(n.Body)}
				cg.Units = append(cg.Units, u)
				cg.byDecl[n] = u
				if fn, ok := info.Defs[n.Name].(*types.Func); ok {
					cg.byFunc[fn] = u
				}
			case *ast.FuncLit:
				u := &Unit{Name: "func literal", Decl: n, Body: n.Body, Graph: Build(n.Body)}
				cg.Units = append(cg.Units, u)
				cg.byDecl[n] = u
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							bind(id, n.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i < len(n.Values) {
						bind(id, n.Values[i])
					}
				}
			}
			return true
		})
	}
	for obj, lit := range litBindings {
		if u := cg.byDecl[lit]; u != nil {
			cg.byVar[obj] = u
		}
	}
	return cg
}

// UnitOf returns the unit for a *ast.FuncDecl or *ast.FuncLit, or nil.
func (cg *CallGraph) UnitOf(decl ast.Node) *Unit { return cg.byDecl[decl] }

// Callees resolves the same-package units call may invoke. Calls
// through function-typed parameters or fields, and calls into other
// packages, resolve to nothing — the documented soundness boundary.
func (cg *CallGraph) Callees(call *ast.CallExpr) []*Unit {
	var out []*Unit
	seen := map[*Unit]bool{}
	add := func(u *Unit) {
		if u != nil && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	addObj := func(obj types.Object) {
		switch obj := obj.(type) {
		case *types.Func:
			if obj.Pkg() == cg.Pkg {
				add(cg.byFunc[obj])
			}
		case *types.Var:
			add(cg.byVar[obj])
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		addObj(cg.Info.Uses[fun])
	case *ast.FuncLit:
		add(cg.byDecl[fun])
	case *ast.SelectorExpr:
		if sel := cg.Info.Selections[fun]; sel != nil {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				for _, m := range cg.implementorsOf(iface, sel.Obj().Name()) {
					addObj(m)
				}
			} else {
				addObj(sel.Obj())
			}
		} else {
			addObj(cg.Info.Uses[fun.Sel]) // pkg-qualified; filtered by Pkg above
		}
	}
	return out
}

// implementorsOf finds the method named name on every package-scope
// named type (or its pointer) implementing iface — interface dispatch
// expands to every same-package implementor.
func (cg *CallGraph) implementorsOf(iface *types.Interface, name string) []types.Object {
	var out []types.Object
	scope := cg.Pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		T := obj.Type()
		if _, ok := T.Underlying().(*types.Interface); ok {
			continue
		}
		for _, t := range []types.Type{T, types.NewPointer(T)} {
			if !types.Implements(t, iface) {
				continue
			}
			if m, _, _ := types.LookupFieldOrMethod(t, true, cg.Pkg, name); m != nil {
				out = append(out, m)
			}
			break
		}
	}
	return out
}

// CalleeFunc resolves call to the single *types.Func it statically
// invokes (through an identifier, selector, or interface method
// object), or nil. Unlike Callees this crosses package boundaries —
// it is how analyzers classify calls into other packages.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ScanNode visits the expressions belonging to one CFG node in source
// order, without descending into function literal bodies (those are
// separate units). The node's Ast is visited directly; anchor nodes
// yield nothing.
func ScanNode(n *Node, visit func(ast.Node) bool) {
	if n.Ast == nil {
		return
	}
	ast.Inspect(n.Ast, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x == nil {
			return false
		}
		return visit(x)
	})
}
