package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of func f() { ... } and returns it.
func parseBody(t testing.TB, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// build parses and builds, asserting basic graph sanity: every edge is
// symmetric between Succs and Preds.
func build(t testing.TB, src string) *Graph {
	t.Helper()
	g := Build(parseBody(t, src))
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			found := false
			for _, p := range s.Preds {
				if p == n {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric edge in CFG for %q", src)
			}
		}
	}
	return g
}

func TestExitReachableShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"empty", ``, true},
		{"straight line", `x := 1; _ = x`, true},
		{"if both arms", `if c() { a() } else { b() }`, true},
		{"infinite loop", `for { a() }`, false},
		{"infinite loop with break", `for { if c() { break }; a() }`, true},
		{"infinite loop with return", `for { if c() { return } }`, true},
		{"cond loop", `for c() { a() }`, true},
		{"range loop", `for _, v := range xs { use(v) }`, true},
		{"labeled break from nested", `L: for { for { break L } }`, true},
		{"labeled break wrong loop", `L: for { M: for { break M } }`, false},
		{"continue only", `for { continue }`, false},
		{"select no default", `for { select { case <-ch: } }`, false},
		{"select with exit case", `for { select { case <-done: return; case <-ch: } }`, true},
		{"select empty blocks forever", `select {}`, false},
		{"return", `return`, true},
		{"panic terminates", `panic("x")`, true},
		{"loop ending in panic", `for { panic("x") }`, true},
		{"os.Exit terminates", `os.Exit(1)`, true},
		{"goto over loop", `goto L; for { }; L: a()`, true},
		{"goto backward loop", `L: a(); goto L`, false},
		{"switch no default falls through", `switch x { case 1: for {} }`, true},
		{"switch default all loop", `switch x { case 1: for {}; default: for {} }`, false},
		{"type switch", `switch x.(type) { case int: return }`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := build(t, c.src)
			if got := g.ExitReachable(); got != c.want {
				t.Errorf("ExitReachable(%q) = %v, want %v", c.src, got, c.want)
			}
		})
	}
}

// callNamed returns a stop predicate matching nodes containing a call
// to the named function.
func callNamed(name string) func(*Node) bool {
	return func(n *Node) bool {
		found := false
		ScanNode(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
		return found
	}
}

func TestAllPathsPass(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"straight line", `barrier(); emit()`, true},
		{"one arm misses", `if c() { barrier() }; emit()`, false},
		{"both arms pass", `if c() { barrier() } else { barrier() }; emit()`, true},
		{"early return skips", `if c() { return }; barrier()`, false},
		{"barrier in cond", `if barrier() { emit() } else { emit() }`, true},
		{"loop may skip", `for c() { barrier() }`, false},
		{"switch no default skips", `switch x { case 1: barrier() }`, false},
		{"switch default covers", `switch x { case 1: barrier(); default: barrier() }`, true},
		{"defer is not a pass", `defer barrier()`, true}, // the defer STATEMENT executes on every path
		{"select all cases pass", `select { case <-a: barrier(); case <-b: barrier() }`, true},
		{"select one case misses", `select { case <-a: barrier(); case <-b: }`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := build(t, c.src)
			if got := g.AllPathsPass(callNamed("barrier")); got != c.want {
				t.Errorf("AllPathsPass(%q) = %v, want %v", c.src, got, c.want)
			}
		})
	}
}

func TestReachableAvoidingStopsAtBarrier(t *testing.T) {
	// emit() after the barrier must not be bare-reachable; the one in
	// the unguarded arm must.
	g := build(t, `
if c() {
	barrier()
	emit()
} else {
	emit()
}
`)
	reach := g.ReachableAvoiding(g.Entry, callNamed("barrier"))
	var bare, guarded int
	for n := range reach {
		if callNamed("emit")(n) {
			bare++
		}
	}
	for _, n := range g.Nodes {
		if callNamed("emit")(n) && !reach[n] {
			guarded++
		}
	}
	if bare != 1 || guarded != 1 {
		t.Errorf("bare=%d guarded=%d, want 1 and 1", bare, guarded)
	}
}

func TestNodeGranularity(t *testing.T) {
	// The if condition and its body are separate nodes: the barrier
	// node is the condition, and is itself reachable (its events run),
	// but nothing past it is.
	g := build(t, `
if barrier() {
	emit()
}
emit()
`)
	reach := g.ReachableAvoiding(g.Entry, callNamed("barrier"))
	for n := range reach {
		if callNamed("emit")(n) {
			t.Errorf("emit reachable avoiding barrier; condition node should block both arms")
		}
	}
}

func TestDeferCollected(t *testing.T) {
	g := build(t, `
mu.Lock()
defer mu.Unlock()
work()
`)
	defers := 0
	for _, n := range g.Nodes {
		if _, ok := n.Ast.(*ast.DeferStmt); ok {
			defers++
		}
	}
	if defers != 1 {
		t.Errorf("got %d defer nodes, want 1", defers)
	}
	if !g.ExitReachable() {
		t.Error("exit unreachable")
	}
}
