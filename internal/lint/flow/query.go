package flow

// ReachableAvoiding returns every node reachable from start without
// flowing THROUGH a node for which stop returns true. A stopping node
// is itself included in the result — control reaches it and executes
// its events up to the stopping one — but its successors are not
// explored. With a nil stop this is plain reachability.
func (g *Graph) ReachableAvoiding(start *Node, stop func(*Node) bool) map[*Node]bool {
	seen := map[*Node]bool{}
	stack := []*Node{start}
	seen[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stop != nil && stop(n) {
			continue
		}
		for _, s := range n.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ExitReachable reports whether the function can terminate: Exit is
// reachable from Entry. False means every execution loops (or blocks)
// forever — the goroutinelife "no shutdown path" condition.
func (g *Graph) ExitReachable() bool {
	return g.ReachableAvoiding(g.Entry, nil)[g.Exit]
}

// AllPathsPass reports whether every Entry -> Exit path flows through
// a node satisfying pass — a forward must-analysis phrased as its
// contrapositive: no barrier-avoiding path reaches Exit.
func (g *Graph) AllPathsPass(pass func(*Node) bool) bool {
	return !g.ReachableAvoiding(g.Entry, pass)[g.Exit]
}
