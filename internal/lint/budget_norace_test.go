//go:build !race

package lint

import "time"

// repoCleanBudget bounds TestRepoClean's wall clock. The full-module
// sweep is dominated by one `go list -export` (cached across runs by
// listOutput) plus type-checking and nine analyzers over every
// package; 60s is generous on a cold build cache and an order of
// magnitude above a warm run, so tripping it means the analyzers (or
// the loader cache) regressed, not that the machine was slow.
const repoCleanBudget = 60 * time.Second
