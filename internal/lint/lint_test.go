package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fixtureDir(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestHotPathAlloc(t *testing.T) {
	RunFixture(t, HotPathAlloc, fixtureDir("hotpathalloc"), "fixture/hotpathalloc")
}

func TestSimDeterminism(t *testing.T) {
	// The fixture impersonates a restricted import path.
	RunFixture(t, SimDeterminism, fixtureDir("simdeterminism"), "ring/internal/core")
}

func TestSimDeterminismUnrestrictedPath(t *testing.T) {
	// The same sources under an unrestricted path produce no findings.
	pkg, err := LoadDir(fixtureDir("simdeterminism"), "fixture/unrestricted")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{SimDeterminism})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside restricted packages: %s: %s", pkg.Fset.Position(d.Pos), d.Message)
	}
}

func TestSleepyTest(t *testing.T) {
	RunFixture(t, SleepyTest, fixtureDir("sleepytest"), "fixture/sleepytest")
}

func TestAtomicField(t *testing.T) {
	RunFixture(t, AtomicField, fixtureDir("atomicfield"), "fixture/atomicfield")
}

func TestWirePair(t *testing.T) {
	RunFixture(t, WirePair, fixtureDir("wirepair"), "fixture/wirepair")
}

func TestDurablePath(t *testing.T) {
	RunFixture(t, DurablePath, fixtureDir("durablepath"), "fixture/durablepath")
}

func TestAckOrder(t *testing.T) {
	RunFixture(t, AckOrder, fixtureDir("ackorder"), "fixture/ackorder")
}

func TestLockGuard(t *testing.T) {
	RunFixture(t, LockGuard, fixtureDir("lockguard"), "fixture/lockguard")
}

func TestGoroutineLife(t *testing.T) {
	RunFixture(t, GoroutineLife, fixtureDir("goroutinelife"), "fixture/goroutinelife")
}

// TestAckOrderChaosSiteWouldFire asserts the //ring:ackok exemption on
// the deliberate ChaosUnsafeAck early-commit in internal/core is load-
// bearing: with the directive ignored, ackorder flags that exact line.
// This keeps the exemption honest — if the chaos block is ever
// restructured so the unsafe ack is no longer on a handler path, the
// stale directive shows up here.
func TestAckOrderChaosSiteWouldFire(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/core")
	}
	pkgs, err := Load("../..", "./internal/core")
	if err != nil {
		t.Fatalf("load core: %v", err)
	}
	var core *Package
	for _, pkg := range pkgs {
		if pkg.PkgPath == "ring/internal/core" {
			core = pkg
		}
	}
	if core == nil {
		t.Fatal("ring/internal/core not loaded")
	}

	honored, err := RunAnalyzers(core, []*Analyzer{AckOrder})
	if err != nil {
		t.Fatalf("run (directives honored): %v", err)
	}
	for _, d := range honored {
		t.Errorf("unexpected finding with exemptions honored: %s: %s", core.Fset.Position(d.Pos), d.Message)
	}

	ignored, err := RunAnalyzersIgnoring(core, []*Analyzer{AckOrder}, map[string]bool{"ackok": true})
	if err != nil {
		t.Fatalf("run (ackok ignored): %v", err)
	}
	found := false
	for _, d := range ignored {
		pos := core.Fset.Position(d.Pos)
		if filepath.Base(pos.Filename) != "coord.go" {
			continue
		}
		line := sourceLine(t, pos.Filename, pos.Line)
		if strings.Contains(line, "ring:ackok") && strings.Contains(line, "commitEntry") {
			found = true
		}
	}
	if !found {
		t.Errorf("ackorder did not flag the ChaosUnsafeAck commitEntry line with ackok ignored; got %d findings:", len(ignored))
		for _, d := range ignored {
			t.Logf("  %s: %s", core.Fset.Position(d.Pos), d.Message)
		}
	}
}

// sourceLine reads one line (1-based) of a source file.
func sourceLine(t *testing.T, filename string, n int) string {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("read %s: %v", filename, err)
	}
	lines := strings.Split(string(data), "\n")
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

// TestRepoClean runs the full suite over the real module and demands
// zero findings: the committed tree must satisfy its own lint gate.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	start := time.Now()
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
		diags, err := RunAnalyzers(pkg, Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.PkgPath, pkg.Fset.Position(d.Pos), d.Message)
		}
	}
	// Wall-clock budget: the suite must stay fast enough to run on
	// every push. repoCleanBudget is build-tag-selected (60s, 180s
	// under -race).
	if elapsed := time.Since(start); elapsed > repoCleanBudget {
		t.Errorf("full-module lint sweep took %v, budget %v: loader cache or analyzer perf regressed", elapsed, repoCleanBudget)
	}
}

func TestMatchDirective(t *testing.T) {
	cases := []struct {
		comment, name string
		want          bool
	}{
		{"//ring:hotpath", "hotpath", true},
		{"// ring:hotpath", "hotpath", true},
		{"//ring:hotpath reason text", "hotpath", true},
		{"//ring:hotpath-stop", "hotpath", false},
		{"//ring:hotpath-stop", "hotpath-stop", true},
		{"//ring:hotpathx", "hotpath", false},
		{"// regular comment", "hotpath", false},
		{"/*ring:hotpath*/", "hotpath", false},
	}
	for _, c := range cases {
		if got := matchDirective(c.comment, c.name); got != c.want {
			t.Errorf("matchDirective(%q, %q) = %v, want %v", c.comment, c.name, got, c.want)
		}
	}
}
