package lint

import (
	"path/filepath"
	"testing"
)

func fixtureDir(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestHotPathAlloc(t *testing.T) {
	RunFixture(t, HotPathAlloc, fixtureDir("hotpathalloc"), "fixture/hotpathalloc")
}

func TestSimDeterminism(t *testing.T) {
	// The fixture impersonates a restricted import path.
	RunFixture(t, SimDeterminism, fixtureDir("simdeterminism"), "ring/internal/core")
}

func TestSimDeterminismUnrestrictedPath(t *testing.T) {
	// The same sources under an unrestricted path produce no findings.
	pkg, err := LoadDir(fixtureDir("simdeterminism"), "fixture/unrestricted")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{SimDeterminism})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside restricted packages: %s: %s", pkg.Fset.Position(d.Pos), d.Message)
	}
}

func TestSleepyTest(t *testing.T) {
	RunFixture(t, SleepyTest, fixtureDir("sleepytest"), "fixture/sleepytest")
}

func TestAtomicField(t *testing.T) {
	RunFixture(t, AtomicField, fixtureDir("atomicfield"), "fixture/atomicfield")
}

func TestWirePair(t *testing.T) {
	RunFixture(t, WirePair, fixtureDir("wirepair"), "fixture/wirepair")
}

func TestDurablePath(t *testing.T) {
	RunFixture(t, DurablePath, fixtureDir("durablepath"), "fixture/durablepath")
}

// TestRepoClean runs the full suite over the real module and demands
// zero findings: the committed tree must satisfy its own lint gate.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
		diags, err := RunAnalyzers(pkg, Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.PkgPath, pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}

func TestMatchDirective(t *testing.T) {
	cases := []struct {
		comment, name string
		want          bool
	}{
		{"//ring:hotpath", "hotpath", true},
		{"// ring:hotpath", "hotpath", true},
		{"//ring:hotpath reason text", "hotpath", true},
		{"//ring:hotpath-stop", "hotpath", false},
		{"//ring:hotpath-stop", "hotpath-stop", true},
		{"//ring:hotpathx", "hotpath", false},
		{"// regular comment", "hotpath", false},
		{"/*ring:hotpath*/", "hotpath", false},
	}
	for _, c := range cases {
		if got := matchDirective(c.comment, c.name); got != c.want {
			t.Errorf("matchDirective(%q, %q) = %v, want %v", c.comment, c.name, got, c.want)
		}
	}
}
