//go:build race

package lint

import "time"

// repoCleanBudget under the race detector: ci.sh runs the internal
// test tree with -race, which slows the type checker and analyzers
// roughly an order of magnitude, so the wall-clock assertion scales
// with it rather than being skipped (a 10x regression should still
// fail under race).
const repoCleanBudget = 180 * time.Second
