package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WirePair checks the symmetry of the hand-rolled wire protocol in any
// package defining a MsgType tag type (internal/proto in the real
// tree). For every MsgType constant it requires:
//
//   - exactly one message type whose Type() method returns it;
//   - an encode method on that message type;
//   - a case arm for it in Decode's dispatch switch;
//   - that the Decode arm constructs a value of the very type whose
//     Type() returns the tag — a crossed arm (case TGet dispatching to
//     decPut) is the asymmetry that silently corrupts a replicated
//     log, the failure mode that sank early erasure-coded stores.
//
// A tag that deliberately has no message struct — a frame envelope
// like TBatch, which AppendBatch writes and ForEachPacked strips before
// Decode ever sees it — is exempted with //ring:wireframe on its
// declaration.
var WirePair = &Analyzer{
	Name: "wirepair",
	Doc:  "every MsgType tag needs a message type, encode method, and matching Decode arm (//ring:wireframe for frame-level tags)",
	Run:  runWirePair,
}

func runWirePair(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	scope := pass.Pkg.Scope()
	tagTypeName, _ := scope.Lookup("MsgType").(*types.TypeName)
	if tagTypeName == nil {
		return nil // not a wire-protocol package
	}
	tagType := tagTypeName.Type()

	// Collect every MsgType constant in package scope, with its
	// declaration site for directives and diagnostics.
	tags := map[types.Object]*ast.Ident{}
	frameTags := map[types.Object]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || name.Name == "_" || !types.Identical(obj.Type(), tagType) {
						continue
					}
					tags[obj] = name
					if hasDirective(gd.Doc, "wireframe") || hasDirective(vs.Doc, "wireframe") || hasDirective(vs.Comment, "wireframe") {
						frameTags[obj] = true
					}
				}
			}
		}
	}
	if len(tags) == 0 {
		return nil
	}

	// Walk method declarations: Type() methods claiming tags, and
	// encode methods per receiver type.
	typeReturns := map[types.Object][]*ast.FuncDecl{} // tag -> Type() decls returning it
	tagOfRecv := map[string]types.Object{}            // receiver type name -> tag
	hasEncode := map[string]bool{}
	var decodeFn *ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				if fd.Name.Name == "Decode" {
					decodeFn = fd
				}
				continue
			}
			recv := recvTypeName(fd)
			if recv == "" {
				continue
			}
			switch fd.Name.Name {
			case "encode":
				hasEncode[recv] = true
			case "Type":
				tag := returnedTag(pass, fd, tags)
				if tag == nil {
					continue
				}
				typeReturns[tag] = append(typeReturns[tag], fd)
				tagOfRecv[recv] = tag
			}
		}
	}

	// Decode dispatch arms: tag -> constructed message type name.
	armType := map[types.Object]string{}
	armPos := map[types.Object]token.Pos{}
	if decodeFn != nil {
		collectDecodeArms(pass, decodeFn, tags, armType, armPos)
	}

	for tag, ident := range tags {
		if frameTags[tag] {
			continue
		}
		claims := typeReturns[tag]
		switch len(claims) {
		case 0:
			pass.Reportf(ident.Pos(), "wire tag %s has no message type: no Type() method returns it (//ring:wireframe if it is a frame envelope)", tag.Name())
		case 1:
			recv := recvTypeName(claims[0])
			if !hasEncode[recv] {
				pass.Reportf(claims[0].Pos(), "message type %s (tag %s) has no encode method: it cannot be serialized symmetrically", recv, tag.Name())
			}
			if decodeFn != nil {
				got, ok := armType[tag]
				switch {
				case !ok:
					pass.Reportf(ident.Pos(), "wire tag %s has no case arm in Decode: messages of type %s cannot be decoded", tag.Name(), recv)
				case got != "" && got != recv:
					pass.Reportf(armPos[tag], "Decode arm for tag %s constructs *%s, but %s's Type() returns %s: crossed decode arm corrupts the wire protocol", tag.Name(), got, recv, tag.Name())
				}
			}
		default:
			for _, fd := range claims {
				pass.Reportf(fd.Pos(), "duplicate wire tag %s: more than one Type() method returns it", tag.Name())
			}
		}
	}
	return nil
}

// recvTypeName returns the receiver's named type, stripping a pointer.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// returnedTag resolves the single `return <tagConst>` of a Type()
// method, or nil when the body is not of that shape.
func returnedTag(pass *Pass, fd *ast.FuncDecl, tags map[types.Object]*ast.Ident) types.Object {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return nil
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	id, ok := ret.Results[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if _, isTag := tags[obj]; !isTag {
		return nil
	}
	return obj
}

// collectDecodeArms records, for each single-tag case clause in
// Decode's dispatch switch, the concrete message type the arm
// constructs (via a dec* call returning *T or a &T{} literal; "" when
// the arm's shape is unrecognized and the pairing is unverifiable).
func collectDecodeArms(pass *Pass, decodeFn *ast.FuncDecl, tags map[types.Object]*ast.Ident, armType map[types.Object]string, armPos map[types.Object]token.Pos) {
	ast.Inspect(decodeFn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok || len(cc.List) != 1 {
			return true
		}
		id, ok := cc.List[0].(*ast.Ident)
		if !ok {
			return true
		}
		tag := pass.Info.Uses[id]
		if _, isTag := tags[tag]; !isTag {
			return true
		}
		armType[tag] = ""
		armPos[tag] = cc.Pos()
		for _, stmt := range cc.Body {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if name := constructedMsgType(pass, as.Rhs[0]); name != "" {
				armType[tag] = name
			}
		}
		return true
	})
}

// constructedMsgType names the message type built by a decode arm's
// right-hand side: decPut(r) -> "Put", &Tick{} -> "Tick".
func constructedMsgType(pass *Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		t := pass.Info.Types[e].Type
		if t == nil {
			return ""
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
			return named.Obj().Name()
		}
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return ""
		}
		if cl, ok := e.X.(*ast.CompositeLit); ok {
			if id, ok := cl.Type.(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}
