package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"ring/internal/lint/flow"
)

// LockGuard checks mutex discipline as a forward dataflow problem over
// the flow CFGs:
//
//  1. Guarded fields. A struct field is mutex-guarded when declared so
//     (//ring:guardedby mu on the field) or when inference says so: at
//     least two accesses hold the sibling mutex and at least 75% of
//     all accesses do. Every access to a guarded field must then hold
//     that mutex on every path reaching it.
//  2. Blocking under a lock. While any mutex may be held, no blocking
//     operation runs: channel send/receive (outside a select with a
//     default), ranging over a channel, time.Sleep, calls into the
//     durable-storage packages, the transport package, or net, and
//     same-package calls that transitively reach one of those.
//  3. Double lock. Calling Lock on a mutex already held on every path
//     self-deadlocks.
//
// Lock state is tracked per (root object, selector path) — r.mu and
// e.fs.mu are distinct keys — with a three-point lattice
// unheld/held/maybe merged at CFG joins. `defer mu.Unlock()` leaves
// the state held, which is the point: the lock is held to function
// exit. Function entry is assumed all-unheld; a callee relying on its
// caller's lock shows up as a mostly-unheld field in inference rather
// than a finding, the documented soundness trade.
//
// Test files are skipped entirely. //ring:lockok (line or enclosing
// function doc) exempts a finding; a function whose doc carries it is
// exempt wholesale — the audit trail for the deliberate
// hold-across-fsync sections in Runner.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "guarded fields are accessed under their mutex and nothing blocks while a mutex is held",
	Run:  runLockGuard,
}

// lockVal is the per-key lattice value. Absence from the state map is
// unheld.
type lockVal int

const (
	lkHeld lockVal = iota + 1
	lkMaybe
)

// lockKey names one mutex (or the base of a field access): the root
// object plus the selector path from it ("mu", "fs.mu", "" for a bare
// local).
type lockKey struct {
	base types.Object
	path string
}

func (k lockKey) String() string {
	if k.path == "" {
		return k.base.Name()
	}
	return k.base.Name() + "." + k.path
}

type lockOpKind int

const (
	opLock    lockOpKind = iota // Lock
	opRLock                     // RLock (held, but not a self-deadlock on repeat)
	opTryLock                   // TryLock/TryRLock: maybe-held after
	opUnlock                    // Unlock/RUnlock
	opAccess                    // read or write of a mutex-sibling field
	opBlock                     // a blocking primitive
	opCall                      // same-package call (blocking via summary)
)

// lockOp is one position-ordered event inside a CFG node.
type lockOp struct {
	kind    lockOpKind
	key     lockKey // lock/unlock ops
	keyOK   bool
	field   *types.Var // access ops
	guard   lockKey    // the mutex key that would guard this access
	guardOK bool
	callees []*flow.Unit // opCall
	pos     token.Pos
	label   string
}

type lockState struct {
	pass *Pass
	cg   *flow.CallGraph
	// mutexSib maps every field of a mutex-carrying struct to the name
	// of the sibling mutex field guarding it (the declared //ring:guardedby
	// target, else the struct's first mutex field).
	mutexSib map[*types.Var]string
	declared map[*types.Var]bool // //ring:guardedby present
	ops      map[*flow.Unit]map[*flow.Node][]lockOp
	mayBlock map[*flow.Unit]bool
	// ctorOf lists the named struct types a unit constructs (composite
	// literal); accesses to their fields in that unit are exempt from
	// both inference and reporting — initialization before sharing.
	ctorOf map[*flow.Unit]map[*types.Named]bool
	outs   map[*flow.Unit]map[*flow.Node]map[lockKey]lockVal
}

func runLockGuard(pass *Pass) error {
	st := &lockState{
		pass:     pass,
		cg:       flow.NewCallGraph(pass.Pkg, pass.Info, pass.Files, pass.IsTestFile),
		mutexSib: map[*types.Var]string{},
		declared: map[*types.Var]bool{},
		ops:      map[*flow.Unit]map[*flow.Node][]lockOp{},
		mayBlock: map[*flow.Unit]bool{},
		ctorOf:   map[*flow.Unit]map[*types.Named]bool{},
		outs:     map[*flow.Unit]map[*flow.Node]map[lockKey]lockVal{},
	}
	st.scanStructs()
	for _, u := range st.cg.Units {
		st.ctorOf[u] = st.constructedTypes(u)
		st.ops[u] = st.extractOps(u)
	}
	st.fixMayBlock()
	for _, u := range st.cg.Units {
		st.outs[u] = st.dataflow(u)
	}

	// Inference: count accesses per field across the package, split by
	// whether the sibling mutex is must-held at the access.
	type count struct{ total, held int }
	counts := map[*types.Var]*count{}
	st.eachAccess(func(u *flow.Unit, op lockOp, state map[lockKey]lockVal) {
		c := counts[op.field]
		if c == nil {
			c = &count{}
			counts[op.field] = c
		}
		c.total++
		if op.guardOK && state[op.guard] == lkHeld {
			c.held++
		}
	})
	guarded := map[*types.Var]bool{}
	for f := range st.mutexSib {
		if st.declared[f] {
			guarded[f] = true
			continue
		}
		if c := counts[f]; c != nil && c.held >= 2 && c.held*4 >= c.total*3 {
			guarded[f] = true
		}
	}

	exempt := func(pos token.Pos) bool {
		return pass.directiveEnabled("lockok") &&
			(pass.lineDirective(pos, "lockok") || enclosingFuncHasDirective(pass, pos, "lockok"))
	}
	heldAny := func(state map[lockKey]lockVal) (lockKey, bool) {
		var best lockKey
		found := false
		for k, v := range state {
			if v == lkHeld {
				return k, true
			}
			best, found = k, true
		}
		return best, found
	}

	// Reporting walk: replay each node's ops against its in-state.
	for _, u := range st.cg.Units {
		for _, n := range u.Graph.Nodes {
			state := st.inState(u, n)
			for _, op := range st.ops[u][n] {
				switch op.kind {
				case opLock:
					if op.keyOK && state[op.key] == lkHeld && !exempt(op.pos) {
						pass.Reportf(op.pos, "%s.Lock while %s is already held (self-deadlock)", op.key, op.key)
					}
				case opAccess:
					if guarded[op.field] && !st.ctorOf[u][namedOwner(op.field)] {
						if (!op.guardOK || state[op.guard] != lkHeld) && !exempt(op.pos) {
							pass.Reportf(op.pos, "field %s is guarded by %s but accessed without holding it",
								op.field.Name(), st.mutexSib[op.field])
						}
					}
				case opBlock:
					if k, held := heldAny(state); held && !exempt(op.pos) {
						pass.Reportf(op.pos, "%s while %s is held", op.label, k)
					}
				case opCall:
					blocking := false
					for _, v := range op.callees {
						if st.mayBlock[v] {
							blocking = true
						}
					}
					if blocking {
						if k, held := heldAny(state); held && !exempt(op.pos) {
							pass.Reportf(op.pos, "call to %s may block while %s is held", op.label, k)
						}
					}
				}
				st.apply(state, op)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------- structs

// scanStructs finds every package-scope struct carrying a
// sync.Mutex/RWMutex field and records, for each non-mutex field, the
// sibling mutex guarding it.
func (st *lockState) scanStructs() {
	for _, f := range st.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			s, ok := n.(*ast.StructType)
			if !ok || s.Fields == nil {
				return true
			}
			var mutexName string
			for _, fd := range s.Fields.List {
				for _, name := range fd.Names {
					if v, ok := st.pass.Info.Defs[name].(*types.Var); ok && isMutexType(v.Type()) {
						mutexName = name.Name
					}
				}
				if mutexName != "" {
					break
				}
			}
			if mutexName == "" {
				return true
			}
			for _, fd := range s.Fields.List {
				sib := mutexName
				declared := false
				if args, ok := directiveArgs(fd.Doc, "guardedby"); ok && len(args) > 0 {
					sib, declared = args[0], true
				} else if args, ok := directiveArgs(fd.Comment, "guardedby"); ok && len(args) > 0 {
					sib, declared = args[0], true
				}
				for _, name := range fd.Names {
					v, ok := st.pass.Info.Defs[name].(*types.Var)
					if !ok || isMutexType(v.Type()) {
						continue
					}
					if _, isChan := v.Type().Underlying().(*types.Chan); isChan && !declared {
						// A channel is its own synchronization; sending
						// on one is not a guarded-field access.
						continue
					}
					st.mutexSib[v] = sib
					if declared {
						st.declared[v] = true
					}
				}
			}
			return true
		})
	}
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// namedOwner returns the named struct type declaring field f, or nil.
func namedOwner(f *types.Var) *types.Named {
	// The field's parent scope does not lead back to the type; walk the
	// package scope instead.
	if f.Pkg() == nil {
		return nil
	}
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		s, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < s.NumFields(); i++ {
			if s.Field(i) == f {
				return named
			}
		}
	}
	return nil
}

// constructedTypes lists named struct types the unit builds with a
// composite literal.
func (st *lockState) constructedTypes(u *flow.Unit) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	ast.Inspect(u.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := st.pass.Info.Types[lit].Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				out[named] = true
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------- keys

// exprKey resolves a selector chain rooted at a plain identifier to a
// (base object, path) key. Anything else — an index expression, a call
// result — is unkeyable.
func exprKey(info *types.Info, e ast.Expr) (lockKey, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if _, ok := obj.(*types.Var); ok {
			return lockKey{base: obj}, true
		}
	case *ast.ParenExpr:
		return exprKey(info, e.X)
	case *ast.SelectorExpr:
		k, ok := exprKey(info, e.X)
		if !ok {
			return lockKey{}, false
		}
		if k.path == "" {
			k.path = e.Sel.Name
		} else {
			k.path += "." + e.Sel.Name
		}
		return k, true
	}
	return lockKey{}, false
}

// ---------------------------------------------------------------- ops

type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// nonBlockingComms collects the positions of communication operations
// belonging to selects that have a default clause — those never block.
func nonBlockingComms(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				out = append(out, posRange{cc.Comm.Pos(), cc.Comm.End()})
			}
		}
		return true
	})
	return out
}

var lockMethods = map[string]lockOpKind{
	"Lock":     opLock,
	"RLock":    opRLock,
	"TryLock":  opTryLock,
	"TryRLock": opTryLock,
	"Unlock":   opUnlock,
	"RUnlock":  opUnlock,
}

// extractOps builds the position-ordered op lists of one unit.
func (st *lockState) extractOps(u *flow.Unit) map[*flow.Node][]lockOp {
	info := st.pass.Info
	nbComms := nonBlockingComms(u.Body)
	out := map[*flow.Node][]lockOp{}
	for _, n := range u.Graph.Nodes {
		if _, ok := n.Ast.(*ast.DeferStmt); ok {
			// Deferred calls run at return; in particular a deferred
			// Unlock does NOT release the lock here — held-to-exit is
			// exactly the model we want.
			continue
		}
		var ops []lockOp
		// A range head whose expression is a channel blocks per
		// iteration.
		if ex, ok := n.Ast.(ast.Expr); ok {
			if t := info.Types[ex].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ops = append(ops, lockOp{kind: opBlock, pos: ex.Pos(), label: "ranging over a channel"})
				}
			}
		}
		// The call a go statement spawns runs in another goroutine; it
		// never blocks the spawner (its arguments, evaluated here, can).
		var spawned *ast.CallExpr
		if g, ok := n.Ast.(*ast.GoStmt); ok {
			spawned = g.Call
		}
		var lockRecvs []posRange
		flow.ScanNode(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.SendStmt:
				if !inRanges(nbComms, x.Pos()) {
					ops = append(ops, lockOp{kind: opBlock, pos: x.Pos(), label: "channel send"})
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !inRanges(nbComms, x.Pos()) {
					ops = append(ops, lockOp{kind: opBlock, pos: x.Pos(), label: "channel receive"})
				}
			case *ast.CallExpr:
				if x == spawned {
					return true
				}
				if op, ok := st.classifyCall(u, x); ok {
					ops = append(ops, op)
					if op.kind <= opUnlock {
						if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel {
							lockRecvs = append(lockRecvs, posRange{sel.X.Pos(), sel.X.End()})
						}
					}
				}
			case *ast.SelectorExpr:
				if op, ok := st.classifyAccess(x); ok {
					ops = append(ops, op)
				}
			}
			return true
		})
		// Drop field accesses that are just the spine of a lock call
		// (the m.mu in m.mu.Lock()) — they are the discipline, not a
		// guarded access.
		kept := ops[:0]
		for _, op := range ops {
			if op.kind == opAccess && inRanges(lockRecvs, op.pos) {
				continue
			}
			kept = append(kept, op)
		}
		ops = kept
		for i := 1; i < len(ops); i++ {
			for j := i; j > 0 && ops[j].pos < ops[j-1].pos; j-- {
				ops[j], ops[j-1] = ops[j-1], ops[j]
			}
		}
		if len(ops) > 0 {
			out[n] = ops
		}
	}
	return out
}

// classifyCall turns a call into a lock op, a blocking primitive, or a
// same-package call event.
func (st *lockState) classifyCall(u *flow.Unit, call *ast.CallExpr) (lockOp, bool) {
	info := st.pass.Info
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if kind, isLockM := lockMethods[sel.Sel.Name]; isLockM && isMutexType(info.Types[sel.X].Type) {
			key, keyOK := exprKey(info, sel.X)
			return lockOp{kind: kind, key: key, keyOK: keyOK, pos: call.Pos()}, true
		}
	}
	if _, ok := calleeFromPkg(info, call, "time", "Sleep"); ok {
		return lockOp{kind: opBlock, pos: call.Pos(), label: "time.Sleep"}, true
	}
	if fn := flow.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg() != st.pass.Pkg {
		p := fn.Pkg().Path()
		if durablePkgs[p] || p == "ring/internal/transport" || p == "net" {
			return lockOp{kind: opBlock, pos: call.Pos(),
				label: "call to " + fn.Pkg().Name() + "." + fn.Name()}, true
		}
	}
	if callees := st.cg.Callees(call); len(callees) > 0 {
		return lockOp{kind: opCall, callees: callees, pos: call.Pos(), label: calleeLabel(call)}, true
	}
	return lockOp{}, false
}

// classifyAccess turns a field selection into an access op when the
// field has a sibling mutex.
func (st *lockState) classifyAccess(sel *ast.SelectorExpr) (lockOp, bool) {
	info := st.pass.Info
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return lockOp{}, false
	}
	f, ok := s.Obj().(*types.Var)
	if !ok {
		return lockOp{}, false
	}
	sib, tracked := st.mutexSib[f]
	if !tracked {
		return lockOp{}, false
	}
	op := lockOp{kind: opAccess, field: f, pos: sel.Sel.Pos()}
	if base, ok := exprKey(info, sel.X); ok {
		if base.path == "" {
			base.path = sib
		} else {
			base.path += "." + sib
		}
		op.guard, op.guardOK = base, true
	}
	return op, true
}

// ---------------------------------------------------------------- summaries

// fixMayBlock marks units containing a blocking primitive, closed
// under same-package calls.
func (st *lockState) fixMayBlock() {
	for _, u := range st.cg.Units {
		for _, ops := range st.ops[u] {
			for _, op := range ops {
				if op.kind == opBlock {
					st.mayBlock[u] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, u := range st.cg.Units {
			if st.mayBlock[u] {
				continue
			}
			for _, ops := range st.ops[u] {
				for _, op := range ops {
					if op.kind != opCall {
						continue
					}
					for _, v := range op.callees {
						if st.mayBlock[v] {
							st.mayBlock[u] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------- dataflow

func mergeState(dst, src map[lockKey]lockVal) {
	for k, v := range src {
		if dst[k] != v {
			dst[k] = lkMaybe // disagreement (incl. unheld-vs-held) joins to maybe
		}
	}
	for k, v := range dst {
		if v == lkHeld && src[k] == 0 {
			dst[k] = lkMaybe
		}
	}
}

func cloneState(s map[lockKey]lockVal) map[lockKey]lockVal {
	out := make(map[lockKey]lockVal, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func equalState(a, b map[lockKey]lockVal) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// apply runs one op's transfer on the state in place.
func (st *lockState) apply(state map[lockKey]lockVal, op lockOp) {
	if !op.keyOK {
		return
	}
	switch op.kind {
	case opLock, opRLock:
		state[op.key] = lkHeld
	case opTryLock:
		state[op.key] = lkMaybe
	case opUnlock:
		delete(state, op.key)
	}
}

// inState merges the predecessors' out-states of n. The entry node
// (and any node with no predecessors) starts all-unheld. Predecessors
// the fixpoint has not computed yet are bottom — the identity of the
// merge, NOT all-unheld — otherwise a loop back edge poisons the head
// to maybe on the first pass and the damage is permanent.
func (st *lockState) inState(u *flow.Unit, n *flow.Node) map[lockKey]lockVal {
	outs := st.outs[u]
	var in map[lockKey]lockVal
	for _, p := range n.Preds {
		po, computed := outs[p]
		if !computed {
			continue
		}
		if in == nil {
			in = cloneState(po)
			continue
		}
		mergeState(in, po)
	}
	if in == nil {
		in = map[lockKey]lockVal{}
	}
	return in
}

// dataflow computes the out-state of every node to a fixpoint.
func (st *lockState) dataflow(u *flow.Unit) map[*flow.Node]map[lockKey]lockVal {
	outs := map[*flow.Node]map[lockKey]lockVal{}
	st.outs[u] = outs
	for changed := true; changed; {
		changed = false
		for _, n := range u.Graph.Nodes {
			state := st.inState(u, n)
			for _, op := range st.ops[u][n] {
				st.apply(state, op)
			}
			if !equalState(state, outs[n]) {
				outs[n] = state
				changed = true
			}
		}
	}
	return outs
}

// eachAccess replays every unit and hands each field access to fn with
// the lock state in effect at it. Constructor units are skipped for
// the types they build.
func (st *lockState) eachAccess(fn func(u *flow.Unit, op lockOp, state map[lockKey]lockVal)) {
	for _, u := range st.cg.Units {
		for _, n := range u.Graph.Nodes {
			state := st.inState(u, n)
			for _, op := range st.ops[u][n] {
				if op.kind == opAccess && !st.ctorOf[u][namedOwner(op.field)] {
					fn(u, op, state)
				}
				st.apply(state, op)
			}
		}
	}
}
