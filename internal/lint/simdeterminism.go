package lint

import (
	"go/ast"
	"strings"
)

// restrictedPkgs are the packages whose state machines must be
// deterministic: they run under the discrete-event simulator, where a
// single wall-clock read or global-RNG draw silently desynchronizes a
// calibrated run from its seed.
var restrictedPkgs = []string{
	"ring/internal/core",
	"ring/internal/sim",
	"ring/internal/srs",
}

// wallClockFuncs are the package time functions that observe or wait
// on real time. time.Duration arithmetic and constants remain free.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true, "Tick": true,
	"Since": true, "Until": true,
}

// globalRandFuncs are the math/rand package-level functions backed by
// the shared global source. rand.New(rand.NewSource(seed)) is the
// sanctioned replacement and stays legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

// SimDeterminism forbids wall-clock time and global math/rand inside
// the simulated packages (core, sim, srs): their state machines must
// take time as an argument (the event clock) and randomness from a
// seeded source, so every simnet run is reproducible from its seed.
// The deliberate real-time boundary — core's Runner, which hosts the
// same state machine on a live fabric — opts out per function with
// //ring:wallclock. Test files are exempt (they drive the harness).
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "no time.Now/Sleep/After or global math/rand in internal/core, internal/sim, internal/srs (use the event clock and seeded RNGs; //ring:wallclock for real-time boundaries)",
	Run:  runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	if !restrictedPath(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) || fileDirective(pass, f, "wallclock") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, "wallclock") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pn := pkgNameOf(pass.Info, sel.X)
				if pn == nil {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if wallClockFuncs[sel.Sel.Name] {
						pass.Reportf(call.Pos(), "nondeterminism in simulated package: time.%s reads the wall clock (take the event-clock time.Duration as an argument, or mark the real-time boundary //ring:wallclock)", sel.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[sel.Sel.Name] {
						pass.Reportf(call.Pos(), "nondeterminism in simulated package: rand.%s draws from the global source (use a seeded rand.New(rand.NewSource(...)))", sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

func restrictedPath(path string) bool {
	for _, p := range restrictedPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
