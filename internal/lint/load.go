package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one loaded, type-checked unit ready for analysis. The
// syntax includes the package's in-package _test.go files; external
// test packages (package foo_test) load as their own Package.
type Package struct {
	PkgPath    string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	TypeErrors []error
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	ForTest      string
	Match        []string
}

// Load lists, parses and type-checks the packages matching patterns in
// the module rooted at (or containing) dir. Dependencies — including
// test-only dependencies — are imported from compiled export data
// produced by `go list -export`, so loading works offline and never
// re-type-checks the standard library from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	out, err := listOutput(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		// Synthesized test variants carry ForTest (and a bracketed
		// import path); only plain packages contribute export data.
		if p.ForTest == "" && p.Export != "" && !strings.Contains(p.ImportPath, " ") {
			exports[p.ImportPath] = p.Export
		}
		if len(p.Match) > 0 && p.ForTest == "" && !p.DepOnly &&
			!strings.Contains(p.ImportPath, " ") && !strings.HasSuffix(p.ImportPath, ".test") {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, tgt := range targets {
		if len(tgt.GoFiles)+len(tgt.TestGoFiles)+len(tgt.XTestGoFiles) == 0 {
			continue
		}
		base, err := check(fset, imp, tgt.ImportPath, tgt.Dir,
			append(append([]string{}, tgt.GoFiles...), tgt.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, base)
		if len(tgt.XTestGoFiles) > 0 {
			// The external test package imports the test-augmented
			// package under test, which only exists as the source
			// check above — substitute it for the export data.
			sub := &substImporter{imp: imp, path: tgt.ImportPath, pkg: base.Pkg}
			xt, err := check(fset, sub, tgt.ImportPath+"_test", tgt.Dir, tgt.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// ----------------------------------------------------------- list cache

// listOutput returns the `go list -export -json` output for patterns,
// consulting an on-disk cache first. `go list -export` is the dominant
// cost of Load — it compiles every dependency's export data — and its
// output is a pure function of the module's source state and the
// toolchain, so the cache key is a hash over go.mod, every tracked .go
// file, the toolchain version/target, the listing directory, and the
// patterns. A hit is trusted only after every Export artifact it names
// still exists on disk (the build cache may have been trimmed since).
func listOutput(dir string, patterns []string) ([]byte, error) {
	key, err := listCacheKey(dir, patterns)
	if err != nil {
		// Unhashable tree (permission error mid-walk, dir outside any
		// module): fall back to an uncached listing rather than failing
		// a path that would otherwise work.
		return runGoList(dir, patterns)
	}
	path := filepath.Join(os.TempDir(), "ringlint-list-"+key+".json")
	if out, err := os.ReadFile(path); err == nil && exportsValid(out) {
		return out, nil
	}
	out, err := runGoList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// Atomic publish (temp + rename) so concurrent loaders never read a
	// torn file; losing the race just means both write the same bytes.
	if tmp, err := os.CreateTemp(os.TempDir(), "ringlint-list-*.tmp"); err == nil {
		if _, werr := tmp.Write(out); werr == nil && tmp.Close() == nil {
			os.Rename(tmp.Name(), path)
		} else {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}
	return out, nil
}

func runGoList(dir string, patterns []string) ([]byte, error) {
	args := []string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,DepOnly,ForTest,Match",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	return out, nil
}

// listCacheKey hashes everything the go list output can depend on.
// The walk skips directories go itself ignores (dot, underscore,
// testdata) so fixture edits do not invalidate the cache.
func listCacheKey(dir string, patterns []string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		root = parent
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s/%s\x00%s\x00%s\x00%s\x00",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		root, abs, strings.Join(patterns, "\x00"))
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (strings.HasPrefix(name, ".") ||
				strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if name != "go.mod" && !strings.HasSuffix(name, ".go") {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, p)
		fmt.Fprintf(h, "%s\x00%d\x00", filepath.ToSlash(rel), len(data))
		h.Write(data)
		return nil
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8]), nil
}

// exportsValid reports whether every export artifact a cached listing
// references still exists. The go build cache prunes by LRU, so a
// stale hit must fall through to a fresh `go list -export` (which
// regenerates the artifacts) instead of failing later in the importer.
func exportsValid(out []byte) bool {
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			return true
		} else if err != nil {
			return false
		}
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return false
			}
		}
	}
}

// check parses and type-checks one set of files as a package.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	p := &Package{PkgPath: pkgPath, Fset: fset, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Pkg, _ = conf.Check(pkgPath, fset, files, p.Info) // errors collected above
	return p, nil
}

// exportImporter returns a types importer that reads gc export data
// located by find (import path -> export file).
func exportImporter(fset *token.FileSet, find func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// substImporter substitutes one source-checked package (the package
// under test, augmented with its _test.go files) into an otherwise
// export-data-backed importer.
type substImporter struct {
	imp  types.Importer
	path string
	pkg  *types.Package
}

func (s *substImporter) Import(path string) (*types.Package, error) {
	if path == s.path {
		return s.pkg, nil
	}
	return s.imp.Import(path)
}

// CheckFiles parses and type-checks an explicit file list as one
// package, resolving imports through find (import path -> export data
// file). It is the vet-protocol entry point used by cmd/ringlint,
// where the go command supplies both the file list and the export map.
func CheckFiles(pkgPath string, files []string, find func(path string) (string, bool)) (*Package, error) {
	fset := token.NewFileSet()
	return check(fset, exportImporter(fset, find), pkgPath, "", files)
}

// LoadDir parses and type-checks a single directory of Go files as one
// package — the fixture loader for analyzer tests. pkgPath overrides
// the import path the analyzers observe, letting fixtures impersonate
// restricted paths like ring/internal/core. Imports resolve lazily via
// `go list -export` (standard library only, by construction of the
// fixtures).
func LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	return check(fset, exportImporter(fset, lazyExportFinder()), pkgPath, dir, names)
}

var (
	lazyMu      sync.Mutex
	lazyExports = map[string]string{}
)

// lazyExportFinder resolves an import path to its export file by
// shelling out to `go list -export` on first use, with a process-wide
// cache.
func lazyExportFinder() func(path string) (string, bool) {
	return func(path string) (string, bool) {
		lazyMu.Lock()
		defer lazyMu.Unlock()
		if f, ok := lazyExports[path]; ok {
			return f, f != ""
		}
		out, err := exec.Command("go", "list", "-e", "-export", "-f", "{{.Export}}", path).Output()
		f := strings.TrimSpace(string(out))
		if err != nil {
			f = ""
		}
		lazyExports[path] = f
		return f, f != ""
	}
}
