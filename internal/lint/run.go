package lint

import (
	"fmt"
	"sort"
)

// RunAnalyzers runs the given analyzers over one loaded package and
// returns their findings sorted by source position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersIgnoring(pkg, analyzers, nil)
}

// RunAnalyzersIgnoring is RunAnalyzers with the named //ring:
// exemption directives disabled — the test hook that asserts exempted
// findings would otherwise fire.
func RunAnalyzersIgnoring(pkg *Package, analyzers []*Analyzer, ignore map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:         a,
			Fset:             pkg.Fset,
			Files:            pkg.Files,
			Pkg:              pkg.Pkg,
			Info:             pkg.Info,
			PkgPath:          pkg.PkgPath,
			IgnoreDirectives: ignore,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			d.Analyzer = name
			d.Message = name + ": " + d.Message
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
