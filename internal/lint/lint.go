// Package lint implements ringlint, Ring's project-specific
// static-analysis suite. It locks in the invariants the hot-path and
// determinism work bought — properties the compiler cannot see and
// reviewer vigilance cannot be trusted with:
//
//   - hotpathalloc: functions annotated //ring:hotpath (and the local
//     functions they reach) stay free of the allocation patterns that
//     would regress the zero-allocation message path.
//   - simdeterminism: the simulated packages (core, sim, srs) never
//     read wall-clock time or the global math/rand state, so simnet
//     runs stay reproducible.
//   - sleepytest: no bare time.Sleep in _test.go files — the flake
//     class the tickUntil/poll helpers eradicated.
//   - atomicfield: a struct field accessed through sync/atomic calls
//     anywhere in a package must be accessed atomically everywhere in
//     it, catching races -race only finds on executed interleavings.
//   - wirepair: every wire message type tag has a matching message
//     struct, encode method, and Decode arm, and no Decode arm
//     constructs a message of a different tag.
//   - durablepath: no call into the durable storage packages
//     (internal/wal, internal/bitcask, internal/replog) discards its
//     error — a dropped fsync or append error silently un-durables an
//     acknowledged write.
//   - ackorder: on //ring:handler-annotated protocol handlers, no
//     reply or ack emission is statically reachable before the
//     quorum-bookkeeping and persist calls the handler owes — the
//     paper's "acknowledge only after quorum and durability" rule as
//     a dataflow property (internal/lint/flow).
//   - lockguard: mutex-guarded fields (inferred by majority of
//     accesses, or declared //ring:guardedby) are accessed under
//     their mutex, and no blocking operation — durable-storage or
//     network call, channel send/receive, select, sleep — runs while
//     a sync.Mutex/RWMutex is held.
//   - goroutinelife: goroutines spawned in non-test code have a
//     shutdown path (CFG exit reachable: a return, break, or select
//     exit case), and time.After/time.Tick never sit in a loop (the
//     classic timer-leak shape).
//
// The suite is built directly on go/ast and go/types (no external
// analysis framework: the module is dependency-free by policy), with
// packages loaded through `go list -export` so dependencies are
// imported from compiled export data exactly as go vet does. The
// driver lives in cmd/ringlint, runnable standalone or as a
// `go vet -vettool=` backend.
//
// # Directives
//
// Analyzers are steered by //ring: directive comments:
//
//	//ring:hotpath       marks a function as an allocation-free root
//	//ring:hotpath-stop  stops hot-path traversal (cold error exits,
//	                     subsystems bounded by their own rules)
//	//ring:wallclock     exempts a function from simdeterminism (the
//	                     deliberate real-time boundary, e.g. Runner)
//	//ring:sleepok       exempts one sleep in a test (doc or same line)
//	//ring:nonatomic     exempts one access from atomicfield (e.g.
//	                     constructor init before the value is shared)
//	//ring:wireframe     marks a MsgType constant as a frame envelope
//	                     tag with no message struct (TBatch)
//	//ring:durableok     exempts one durable-storage call (line or
//	                     enclosing function) from durablepath
//	//ring:handler       marks a protocol handler as an ackorder root;
//	                     optional args name the barrier classes owed
//	                     ("quorum", "persist"; bare means both)
//	//ring:ackok         exempts one reply/ack emission (same line)
//	                     from ackorder — the ChaosUnsafeAck injection
//	                     site is the canonical use
//	//ring:guardedby     on a struct field: declares the sibling mutex
//	                     field guarding it (overrides inference)
//	//ring:lockok        exempts one access or blocking call (line or
//	                     enclosing function) from lockguard
//	//ring:goroutineok   exempts one goroutine spawn or timer-in-loop
//	                     (line or enclosing function) from
//	                     goroutinelife
//
// Every exemption is greppable: the directive is the audit trail.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source. The
// Message carries an "<analyzer>: " prefix for the human-readable
// renderings; Analyzer holds the bare name for structured output
// (ringlint -json).
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path the analyzers see. Fixture tests
	// override it to impersonate restricted paths.
	PkgPath string
	// IgnoreDirectives disables honoring the named //ring: exemption
	// directives — a test hook for asserting that an exempted finding
	// would otherwise fire (e.g. the ChaosUnsafeAck //ring:ackok site).
	IgnoreDirectives map[string]bool

	report func(Diagnostic)
}

// directiveEnabled reports whether the named directive should be
// honored in this pass (see IgnoreDirectives).
func (p *Pass) directiveEnabled(name string) bool {
	return !p.IgnoreDirectives[name]
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// FileOf returns the *ast.File of this pass containing pos.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Analyzers is the full suite in the order ringlint runs it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		SimDeterminism,
		SleepyTest,
		AtomicField,
		WirePair,
		DurablePath,
		AckOrder,
		LockGuard,
		GoroutineLife,
	}
}

// ---------------------------------------------------------------- directives

const directivePrefix = "ring:"

// hasDirective reports whether the comment group contains a
// //ring:<name> directive line (justification text after the name is
// allowed and encouraged).
func hasDirective(g *ast.CommentGroup, name string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if matchDirective(c.Text, name) {
			return true
		}
	}
	return false
}

func matchDirective(comment, name string) bool {
	text, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return false // a /* */ group is never a directive
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), directivePrefix+name)
	if !ok {
		return false
	}
	// Exact name match: "ring:hotpath-stop" must not satisfy
	// "hotpath". Anything after the name must be separated by space.
	return text == "" || text[0] == ' ' || text[0] == '\t'
}

// directiveArgs returns the whitespace-separated tokens following a
// //ring:<name> directive in g, and whether the directive is present.
// Parsing of meaningful arguments (vs trailing justification prose) is
// the caller's business.
func directiveArgs(g *ast.CommentGroup, name string) ([]string, bool) {
	if g == nil {
		return nil, false
	}
	for _, c := range g.List {
		if !matchDirective(c.Text, name) {
			continue
		}
		text, _ := strings.CutPrefix(c.Text, "//")
		text, _ = strings.CutPrefix(strings.TrimSpace(text), directivePrefix+name)
		return strings.Fields(text), true
	}
	return nil, false
}

// lineDirective reports whether a //ring:<name> directive comment sits
// on the same line as pos (trailing-comment exemption form).
func (p *Pass) lineDirective(pos token.Pos, name string) bool {
	f := p.FileOf(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, g := range f.Comments {
		if p.Fset.Position(g.Pos()).Line != line {
			continue
		}
		if hasDirective(g, name) {
			return true
		}
	}
	return false
}

// fileDirective reports whether a //ring:<name> directive appears in a
// comment group above the package clause of f.
func fileDirective(p *Pass, f *ast.File, name string) bool {
	if hasDirective(f.Doc, name) {
		return true
	}
	for _, g := range f.Comments {
		if g.End() < f.Package && hasDirective(g, name) {
			return true
		}
	}
	return false
}

// enclosingFuncHasDirective reports whether the innermost FuncDecl
// containing pos carries the directive in its doc comment.
func enclosingFuncHasDirective(p *Pass, pos token.Pos, name string) bool {
	f := p.FileOf(pos)
	if f == nil {
		return false
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		return hasDirective(fd.Doc, name)
	}
	return false
}

// ------------------------------------------------------------- type helpers

// pkgNameOf resolves an identifier to the imported package it names,
// or nil.
func pkgNameOf(info *types.Info, x ast.Expr) *types.PkgName {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// calleeFromPkg reports whether call is pkgPath.funcName(...) and, if
// names is non-empty, whether funcName is one of names.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if len(names) == 0 {
		return sel.Sel.Name, true
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// walkStack visits every node below root, passing the stack of
// ancestors (outermost first, not including n itself). Returning false
// from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}
