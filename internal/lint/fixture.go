package lint

import (
	"fmt"
	"regexp"
	"strconv"
)

// TB is the subset of testing.TB the fixture harness needs, kept as a
// local interface so this package does not import testing outside its
// own tests.
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

// want patterns are written as Go string literals, double- or
// back-quoted: // want "regexp" `regexp`
const quotedRe = `"(?:[^"\\]|\\.)*"|` + "`[^`]*`"

var (
	wantRe   = regexp.MustCompile(`//\s*want((?:\s+(?:` + quotedRe + `))+)\s*$`)
	quotedRx = regexp.MustCompile(quotedRe)
)

// RunFixture loads the fixture package in dir under the given import
// path, runs a single analyzer over it, and matches the diagnostics
// against `// want "regexp"` comments in the fixture sources, in the
// style of golang.org/x/tools' analysistest: every diagnostic must
// match a want on its line, and every want must be satisfied.
func RunFixture(t TB, a *Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	for _, err := range pkg.TypeErrors {
		t.Fatalf("fixture %s does not type-check: %v", dir, err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		re   *regexp.Regexp
		used bool
	}
	wants := map[string][]*want{} // "file:line" -> wants
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRx.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}
