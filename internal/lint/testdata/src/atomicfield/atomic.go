// Package atomicfield is the fixture for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type counters struct {
	sent     uint64 // accessed atomically somewhere: must be everywhere
	recv     uint64
	plain    int // never touched atomically: free
	shutdown int32
}

func (c *counters) bump() {
	atomic.AddUint64(&c.sent, 1)
	atomic.AddUint64(&c.recv, 1)
	atomic.StoreInt32(&c.shutdown, 1)
	c.plain++ // fine: never atomic
}

func (c *counters) read() (uint64, uint64) {
	s := c.sent // want `non-atomic access to field sent`
	r := atomic.LoadUint64(&c.recv)
	return s, r
}

func (c *counters) mixed() {
	if c.shutdown == 1 { // want `non-atomic access to field shutdown`
		return
	}
}

// newCounters fills fields before the value is shared.
func newCounters() *counters {
	c := &counters{}
	c.sent = 0 //ring:nonatomic pre-publication init
	return c
}

// reset is wholly pre-publication.
//
//ring:nonatomic called only before the collector is shared
func (c *counters) reset() {
	c.sent = 0
	c.recv = 0
}

// literal initialization is exempt without any directive: keyed
// composite-literal fields are not selector accesses.
var zero = counters{sent: 0, recv: 0}
