// Package durablepath is the fixture for the durablepath analyzer: it
// calls the real durable storage packages and discards errors in every
// shape the analyzer must catch, plus the shapes it must leave alone.
package durablepath

import (
	"ring/internal/bitcask"
	"ring/internal/replog"
	"ring/internal/wal"
)

func dropsOnWAL(w *wal.WAL) {
	w.Sync()     // want `durable error discarded: wal\.Sync`
	w.Close()    // want `durable error discarded: wal\.Close`
	_ = w.Sync() // want `durable error discarded: wal\.Sync`
	if _, err := w.Append(nil); err != nil {
		panic(err)
	}
	_, _ = w.Append(nil)    // want `durable error discarded: wal\.Append`
	seg, _ := w.Append(nil) // want `durable error discarded: wal\.Append`
	_ = seg

	// Results that are not errors stay free.
	_ = w.ActiveSegment()
	_ = w.Dirty()
}

func dropsOnBitcask(db *bitcask.DB) {
	db.Put("k", nil)             // want `durable error discarded: bitcask\.Put`
	defer db.Close()             // want `durable error discarded: bitcask\.Close`
	go db.Sync()                 // want `durable error discarded: bitcask\.Sync`
	_, _, _ = db.Get("k")        // want `durable error discarded: bitcask\.Get`
	n, _ := db.DeletePrefix("p") // want `durable error discarded: bitcask\.DeletePrefix`
	_ = n
}

func dropsOnDurable(d *replog.Durable, sk replog.ShardKey) {
	d.Purge(sk, 1, "k", 2) // want `durable error discarded: replog\.Purge`
	d.MaybeSync(0)         // want `durable error discarded: replog\.MaybeSync`
	if err := d.Reset(sk); err != nil {
		panic(err)
	}
	// Error-free accessors stay free.
	_ = d.Dirty()
	_ = d.DurableStats()
}

// interfaceCovered pins that calls through the wal.FS interface — the
// seam the simulator's fault injection lives behind — are checked too.
func interfaceCovered(fsys wal.FS) {
	fsys.Remove("seg") // want `durable error discarded: wal\.Remove`
	if _, err := fsys.OpenFile("seg"); err != nil {
		panic(err)
	}
}

// justified carries the function-level exemption: a teardown path
// closing an engine already known damaged.
//
//ring:durableok damaged-engine teardown, nothing left to lose
func justified(w *wal.WAL) {
	w.Close()
}

func lineJustified(db *bitcask.DB) {
	db.Close() //ring:durableok fixture teardown
}

// parallelAssign pins the per-slot blank check in a parallel
// assignment: only the durable call's own slot may trip it.
func parallelAssign(w *wal.WAL, db *bitcask.DB) {
	a, _ := w.Appends(), db.Sync() // want `durable error discarded: bitcask\.Sync`
	_, b := db.Len(), w.Sync()
	if b != nil {
		panic(b)
	}
	_ = a
}
