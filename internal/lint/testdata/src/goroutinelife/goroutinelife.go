// Fixture for the goroutinelife analyzer: shutdown-path reachability
// on spawned functions and the time.After/time.Tick-in-loop leak.
package goroutinelife

import "time"

type server struct {
	done chan struct{}
	in   chan int
}

// spinForever has no way out: the classic runaway worker.
func (s *server) spinForever() {
	for {
		work()
	}
}

// drainUntilDone exits through the done case.
func (s *server) drainUntilDone() {
	for {
		select {
		case <-s.done:
			return
		case v := <-s.in:
			use(v)
		}
	}
}

// drainUntilClosed exits when the input channel closes.
func (s *server) drainUntilClosed() {
	for v := range s.in {
		use(v)
	}
}

func (s *server) start() {
	go s.spinForever() // want "goroutine spinForever has no shutdown path"
	go s.drainUntilDone()
	go s.drainUntilClosed()
	go func() {
		for {
			select {
			case <-s.done:
				return
			default:
			}
			work()
		}
	}()
	go func() { // want "goroutine func literal has no shutdown path"
		for {
			work()
		}
	}()
}

// startPinned documents a process-lifetime worker.
//
//ring:goroutineok the stats worker lives for the whole process
func (s *server) startPinned() {
	go s.spinForever()
}

func (s *server) startPinnedInline() {
	go s.spinForever() //ring:goroutineok deliberate: killed by process exit
}

// ---------------------------------------------------------------- timers

func (s *server) pollLeaky() {
	for {
		select {
		case <-s.done:
			return
		case <-time.After(time.Second): // want `time.After in a loop leaks a timer`
			work()
		}
	}
}

func (s *server) pollFixed() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			work()
		}
	}
}

// oneShotTimeout is fine: the timer is not in a loop.
func (s *server) oneShotTimeout() {
	select {
	case <-s.done:
	case <-time.After(time.Second):
	}
}

func work()     {}
func use(v int) {}
