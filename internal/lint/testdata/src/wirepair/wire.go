// Package wirepair is the fixture for the wirepair analyzer.
package wirepair

import "errors"

// MsgType is the 1-byte wire tag, as in internal/proto.
type MsgType byte

const (
	TPut    MsgType = iota + 1 // two Type() methods claim this below
	TGet                       // message lacks an encode method
	TDel                       // Decode arm constructs the wrong type
	TAck                       // want `wire tag TAck has no case arm in Decode`
	TOrphan                    // want `wire tag TOrphan has no message type`
	TStat                      // fully paired: no diagnostics

	// The elasticity vocabulary: transition and resize messages mirror
	// internal/proto's TConvert/TResize family.
	TConvert      // fully paired: no diagnostics
	TConvertReply // Decode arm crossed with Convert
	TResize       // fully paired: no diagnostics
	TResizeReply  // want `wire tag TResizeReply has no case arm in Decode`

	// TFrame is a frame envelope: written by the batcher, stripped
	// before Decode ever runs, so it deliberately has no message type.
	TFrame MsgType = 0xFF //ring:wireframe envelope tag
)

type Put struct{ K, V string }

func (*Put) Type() MsgType   { return TPut } // want `duplicate wire tag TPut`
func (*Put) encode(b []byte) {}

// PutV2 illegally reuses Put's tag.
type PutV2 struct{ K, V, Meta string }

func (*PutV2) Type() MsgType   { return TPut } // want `duplicate wire tag TPut`
func (*PutV2) encode(b []byte) {}

type Get struct{ K string }

func (*Get) Type() MsgType { return TGet } // want `message type Get \(tag TGet\) has no encode method`

type Del struct{ K string }

func (*Del) Type() MsgType   { return TDel }
func (*Del) encode(b []byte) {}

type Ack struct{ Seq uint64 }

func (*Ack) Type() MsgType   { return TAck }
func (*Ack) encode(b []byte) {}

type Stat struct{ N int }

func (*Stat) Type() MsgType   { return TStat }
func (*Stat) encode(b []byte) {}

type Convert struct{ K string }

func (*Convert) Type() MsgType   { return TConvert }
func (*Convert) encode(b []byte) {}

type ConvertReply struct{ Ver uint64 }

func (*ConvertReply) Type() MsgType   { return TConvertReply }
func (*ConvertReply) encode(b []byte) {}

type Resize struct{ Node uint32 }

func (*Resize) Type() MsgType   { return TResize }
func (*Resize) encode(b []byte) {}

type ResizeReply struct{ Moved uint32 }

func (*ResizeReply) Type() MsgType   { return TResizeReply }
func (*ResizeReply) encode(b []byte) {}

func decPut(b []byte) *Put       { return &Put{} }
func decGet(b []byte) *Get       { return &Get{} }
func decStat(b []byte) *Stat     { return &Stat{} }
func decConv(b []byte) *Convert  { return &Convert{} }
func decResize(b []byte) *Resize { return &Resize{} }

// Decode is the dispatch switch the analyzer pairs against Type().
func Decode(b []byte) (interface{}, error) {
	if len(b) == 0 {
		return nil, errors.New("short buffer")
	}
	switch MsgType(b[0]) {
	case TPut:
		m := decPut(b[1:])
		return m, nil
	case TGet:
		m := decGet(b[1:])
		return m, nil
	case TDel: // want `Decode arm for tag TDel constructs \*Put, but Del's Type\(\) returns TDel`
		m := decPut(b[1:])
		return m, nil
	case TStat:
		m := decStat(b[1:])
		return m, nil
	case TConvert:
		m := decConv(b[1:])
		return m, nil
	case TConvertReply: // want `Decode arm for tag TConvertReply constructs \*Convert, but ConvertReply's Type\(\) returns TConvertReply`
		m := decConv(b[1:])
		return m, nil
	case TResize:
		m := decResize(b[1:])
		return m, nil
	}
	return nil, errors.New("unknown tag")
}
