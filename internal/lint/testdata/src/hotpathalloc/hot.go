// Package hotpathalloc is the fixture for the hotpathalloc analyzer.
package hotpathalloc

import "fmt"

type sink struct {
	out []byte
	msg string
}

// encodeHot is a hot-path root.
//
//ring:hotpath
func encodeHot(s *sink, name string, n int) {
	fmt.Println(name)       // want `call to fmt\.Println allocates` `string boxed into interface`
	s.msg = name + "suffix" // want `string concatenation allocates`
	s.msg += "more"         // want `string concatenation allocates`
	var grow []byte         // declared without capacity
	grow = append(grow, 1)  // want `append to un-preallocated local slice grow`
	ready := make([]byte, 0, 8)
	ready = append(ready, 2) // preallocated: fine
	s.out = append(s.out, ready...)
	helper(s, n)
	if coldFail(n) != nil {
		return
	}
}

// helper is reached from encodeHot and checked under the same root.
func helper(s *sink, n int) {
	_ = s
	record(n) // want `hot path \(via encodeHot\): int boxed into interface`
}

func record(v interface{}) { _ = v }

// coldFail is a deliberate traversal boundary: error construction off
// the hot path.
//
//ring:hotpath-stop cold error exit
func coldFail(n int) error {
	return fmt.Errorf("cold: %d", n) // fine: behind hotpath-stop
}

// notHot is never reached from a root and stays unchecked.
func notHot() {
	fmt.Println("free to allocate")
}
