package hotpathalloc

// Message mirrors the proto.Message shape: a same-package interface
// whose dynamic dispatch must propagate the hot-path walk to every
// concrete implementation.
type Message interface {
	enc(buf []byte) []byte
}

type putMsg struct{ key string }

func (m *putMsg) enc(buf []byte) []byte {
	m.key += "!" // want `hot path \(via dispatch\): string concatenation allocates`
	return buf
}

type getMsg struct{ n int }

func (m *getMsg) enc(buf []byte) []byte {
	return append(buf, byte(m.n)) // appending to a parameter: fine
}

// dispatch is hot; the interface call reaches both enc methods.
//
//ring:hotpath
func dispatch(m Message, buf []byte) []byte {
	return m.enc(buf)
}

// closures exercises the escape approximation.
//
//ring:hotpath
func closures(items []int, each func(func(int))) int {
	total := 0
	each(func(v int) { total += v }) // direct call argument: fine
	f := func() int { return total } // want `escaping closure captures variables`
	go func() { total++ }()          // want `escaping closure captures variables`
	func() { total *= 2 }()          // invoked in place: fine
	return f()
}

// boxing exercises the non-call boxing sites.
//
//ring:hotpath
func boxing(n int, p *sink) {
	var any interface{}
	any = n                  // want `int boxed into interface`
	any = p                  // pointer: fine
	vals := []interface{}{n} // want `int boxed into interface`
	_ = any
	_ = vals
}

// boxReturn exercises interface-typed results.
//
//ring:hotpath
func boxReturn(n int, p *sink) (interface{}, interface{}) {
	return n, p // want `int boxed into interface`
}
