// Fixture for the ackorder analyzer: self-contained stand-ins for the
// core protocol vocabulary (send, Tracker, persist*, *Reply/*Ack
// message types, StOK) so the analyzer's naming conventions bind
// without importing ring packages.
package ackorder

type Status int

const (
	StOK Status = iota
	StErr
)

type PutReply struct {
	Req    uint64
	Status Status
}

type MoveReply struct {
	Status Status
}

// RepAck has no Status field: every emission of it is a success ack.
type RepAck struct{ Seq uint64 }

// Probe does not end in Reply/Ack and is never an ack.
type Probe struct{ Seq uint64 }

type Tracker struct{ need int }

func (t *Tracker) Open(seq uint64, need int) {}
func (t *Tracker) Ack(seq uint64, from int) bool {
	t.need--
	return t.need == 0
}

type Node struct {
	tr  Tracker
	log []uint64
}

func (n *Node) send(to int, m interface{}) {}

func (n *Node) persistAppend(seq uint64) error {
	n.log = append(n.log, seq)
	return nil
}

func (n *Node) quorumAcks() int { return 2 }

func unlucky() bool { return false }

// ---------------------------------------------------------------- clean

// handleClean passes both barriers before any emission: the zero-need
// fast path acks only after persistAppend and quorumAcks have run.
//
//ring:handler
func (n *Node) handleClean(req uint64) {
	if err := n.persistAppend(req); err != nil {
		n.send(0, &PutReply{Req: req, Status: StErr}) // error reply: not an ack
		return
	}
	need := n.quorumAcks()
	if need == 0 {
		n.send(0, &PutReply{Req: req, Status: StOK})
		return
	}
	n.tr.Open(req, need)
}

// persistVia passes the persist barrier on every path, so calling it
// counts as persisting.
func (n *Node) persistVia(req uint64) {
	if err := n.persistAppend(req); err != nil {
		panic(err)
	}
}

// handleCleanViaHelper persists through a helper before acking.
//
//ring:handler persist
func (n *Node) handleCleanViaHelper(req uint64) {
	n.persistVia(req)
	n.send(0, &PutReply{Req: req, Status: StOK})
}

// handleProbe emits a non-reply message before the barrier: fine.
//
//ring:handler persist
func (n *Node) handleProbe(req uint64) {
	n.send(1, &Probe{Seq: req})
	n.persistVia(req)
}

// ---------------------------------------------------------------- bare acks

// handleEarlyAck acks before persisting: the bug class.
//
//ring:handler persist
func (n *Node) handleEarlyAck(req uint64) {
	n.send(0, &PutReply{Req: req, Status: StOK}) // want "emits PutReply before its persist barrier"
	n.persistVia(req)
}

// handleBranchAck misses the persist barrier on one branch.
//
//ring:handler persist
func (n *Node) handleBranchAck(req uint64) {
	if unlucky() {
		n.send(0, &PutReply{Req: req, Status: StOK}) // want "emits PutReply before its persist barrier"
		return
	}
	n.persistVia(req)
	n.send(0, &PutReply{Req: req, Status: StOK})
}

// handleStatusless acks with a status-free message before persisting:
// without a Status field every emission is a success.
//
//ring:handler persist
func (n *Node) handleStatusless(req uint64) {
	n.send(1, &RepAck{Seq: req}) // want "emits RepAck before its persist barrier"
	n.persistVia(req)
}

// handleNoQuorum persists but never opens quorum bookkeeping before
// acking; only the quorum class fires.
//
//ring:handler
func (n *Node) handleNoQuorum(req uint64) {
	n.persistVia(req)
	n.send(0, &PutReply{Req: req, Status: StOK}) // want "emits PutReply before its quorum barrier"
	n.tr.Open(req, 2)
}

// ---------------------------------------------------------------- interproc

// ackEarly emits an unconditional success reply; it is itself entered
// bare from handleViaHelper, so the emission is reported here too (a
// report at each link of the chain is the designed behavior).
func (n *Node) ackEarly(to int, req uint64) {
	n.send(to, &PutReply{Req: req, Status: StOK}) // want "emits PutReply before its quorum barrier"
}

//ring:handler quorum
func (n *Node) handleViaHelper(req uint64) {
	n.ackEarly(0, req) // want "can emit a reply through ackEarly before its quorum barrier"
	n.tr.Open(req, 2)
}

// reply forwards its status argument into the emission; whether it
// acks is decided at each call site.
func (n *Node) reply(to int, req uint64, s Status) {
	n.send(to, &PutReply{Req: req, Status: s})
}

//ring:handler persist
func (n *Node) handleForwarded(req uint64) {
	if unlucky() {
		n.reply(0, req, StErr) // error at the call site: not an ack
		return
	}
	n.reply(0, req, StOK) // want "emits a success reply via reply before its persist barrier"
	n.persistVia(req)
}

// ---------------------------------------------------------------- journal

// persistConvertBegin stands in for the transition journal: a durable
// append that is also the journal barrier (both classes).
func (n *Node) persistConvertBegin(seq uint64) {
	n.log = append(n.log, seq)
}

// handleConvertClean journals the transition window open before the
// ack; the convert journal satisfies persist and journal at once.
//
//ring:handler persist journal
func (n *Node) handleConvertClean(req uint64) {
	n.persistConvertBegin(req)
	n.send(0, &MoveReply{Status: StOK})
}

// handleJournalIsPersist: the convert journal is itself a durable
// append, so a plain persist obligation is satisfied by it too.
//
//ring:handler persist
func (n *Node) handleJournalIsPersist(req uint64) {
	n.persistConvertBegin(req)
	n.send(0, &PutReply{Req: req, Status: StOK})
}

// handlePersistNotJournal persists — but an ordinary append is not the
// transition journal, so only the journal class fires.
//
//ring:handler persist journal
func (n *Node) handlePersistNotJournal(req uint64) {
	n.persistVia(req)
	n.send(0, &PutReply{Req: req, Status: StOK}) // want "emits PutReply before its journal barrier"
	n.persistConvertBegin(req)
}

// handleJournalEarlyAck acks before any journal record exists: the
// transition bug class (a crash in the gap loses the acknowledged
// transition).
//
//ring:handler journal
func (n *Node) handleJournalEarlyAck(req uint64) {
	n.send(0, &PutReply{Req: req, Status: StOK}) // want "emits PutReply before its journal barrier"
	n.persistConvertBegin(req)
}

// ---------------------------------------------------------------- exemption

// handleChaos mirrors the deliberate ChaosUnsafeAck injection site:
// the directive keeps the suite green and greppable.
//
//ring:handler persist
func (n *Node) handleChaos(req uint64) {
	n.send(0, &PutReply{Req: req, Status: StOK}) //ring:ackok deliberate unsafe-ack injection
	n.persistVia(req)
}
