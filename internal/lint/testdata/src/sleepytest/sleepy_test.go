package sleepytest

import (
	"testing"
	"time"
)

func TestSleeps(t *testing.T) {
	time.Sleep(10 * time.Millisecond) // want `bare time\.Sleep in test`
	<-time.After(time.Millisecond)    // want `bare <-time\.After in test`

	ch := make(chan struct{})
	select { // timeout bound on a legitimate wait: fine
	case <-ch:
	case <-time.After(time.Second):
	}

	time.Sleep(time.Millisecond) //ring:sleepok kernel timer granularity is the thing under test
}

// TestJustified needs real elapsed time end to end.
//
//ring:sleepok measures wall-clock pacing itself
func TestJustified(t *testing.T) {
	time.Sleep(time.Millisecond) // fine: function-level sleepok
}

func helperDelay(d time.Duration) {
	time.Sleep(d) // want `bare time\.Sleep in test`
}
