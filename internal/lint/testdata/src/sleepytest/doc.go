// Package sleepytest is the fixture for the sleepytest analyzer: only
// _test.go files are checked, so sleeps here are fine.
package sleepytest

import "time"

func productionDelay() {
	time.Sleep(time.Millisecond) // non-test file: not this analyzer's business
}
