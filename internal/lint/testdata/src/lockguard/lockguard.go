// Fixture for the lockguard analyzer: guarded-field inference,
// declared guards, blocking-under-lock, and double-lock detection.
package lockguard

import (
	"sync"
	"time"
)

// counter's n field is inferred guarded: three accesses hold mu, none
// do not (>= 2 held and >= 75%).
type counter struct {
	mu sync.Mutex
	n  int
}

func newCounter() *counter { return &counter{n: 1} } // constructor: exempt

func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

func (c *counter) racyPeek() int {
	return c.n // want "field n is guarded by mu but accessed without holding it"
}

func (c *counter) branchyPeek(fast bool) int {
	if fast {
		return c.n // want "field n is guarded by mu but accessed without holding it"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// mostly's v field is NOT inferred guarded: two of four accesses hold
// the lock (50% < 75%), the entry-state-unheld convention for values
// locked by callers.
type mostly struct {
	mu sync.Mutex
	v  int
}

func (m *mostly) lockedTouch() {
	m.mu.Lock()
	m.v++
	m.v--
	m.mu.Unlock()
}

func (m *mostly) callerLockedTouch() {
	m.v++
	m.v--
}

// declared overrides inference: one access total, but the directive
// makes the guard mandatory.
type declared struct {
	mu sync.Mutex
	q  []int //ring:guardedby mu
}

func (d *declared) push(x int) { // the lhs write and the append read each count
	d.q = append(d.q, x) // want "field q is guarded by mu" "field q is guarded by mu"
}

// exempted documents a deliberately unguarded access.
func (d *declared) snapshotLen() int {
	return len(d.q) //ring:lockok racy length read is advisory only
}

// ---------------------------------------------------------------- blocking

type worker struct {
	mu   sync.Mutex
	out  chan int
	done chan struct{}
}

func (w *worker) blockySend(v int) {
	w.mu.Lock()
	w.out <- v // want "channel send while w.mu is held"
	w.mu.Unlock()
}

func (w *worker) blockyRecv() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return <-w.out // want "channel receive while w.mu is held"
}

func (w *worker) sleepyHold() {
	w.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while w.mu is held"
	w.mu.Unlock()
}

// tryPublish uses a default clause: the send cannot block, so holding
// the lock across it is fine.
func (w *worker) tryPublish(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case w.out <- v:
	default:
	}
}

// unlockedSend is the fixed shape: release before communicating.
func (w *worker) unlockedSend(v int) {
	w.mu.Lock()
	w.mu.Unlock()
	w.out <- v
}

// waits blocks on a receive; callers holding a lock inherit the
// finding through the may-block summary.
func (w *worker) waits() {
	<-w.done
}

func (w *worker) holdsAcrossHelper() {
	w.mu.Lock()
	w.waits() // want "call to waits may block while w.mu is held"
	w.mu.Unlock()
}

// ---------------------------------------------------------------- deadlock

func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want `c.mu.Lock while c.mu is already held \(self-deadlock\)`
	c.mu.Unlock()
	c.mu.Unlock()
}

// reacquire is fine: the first hold ends before the second begins.
func (c *counter) reacquire() {
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// distinct keys never collide: locking two different mutexes nests.
func transfer(a, b *counter) {
	a.mu.Lock()
	b.mu.Lock()
	a.n += b.n
	b.n = 0
	b.mu.Unlock()
	a.mu.Unlock()
}
