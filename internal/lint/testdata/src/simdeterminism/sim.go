// Package simdeterminism is the fixture for the simdeterminism
// analyzer; the test loads it under the ring/internal/core import path.
package simdeterminism

import (
	"math/rand"
	"time"
)

type node struct {
	deadline time.Duration
	rng      *rand.Rand
}

func (n *node) handle(now time.Duration) {
	if now > n.deadline { // event-clock arithmetic: fine
		n.deadline = now + 50*time.Millisecond
	}
	_ = time.Now()                   // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)     // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{})      // want `time\.Since reads the wall clock`
	_ = rand.Intn(10)                // want `rand\.Intn draws from the global source`
	rand.Shuffle(2, func(i, j int) { // want `rand\.Shuffle draws from the global source`
	})
	_ = n.rng.Intn(10) // seeded source: fine
}

// StartLive is the deliberate real-time boundary, like core's Runner.
//
//ring:wallclock bridges the live fabric to the event-driven node
func (n *node) StartLive() time.Time {
	return time.Now() // fine: behind //ring:wallclock
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // sanctioned replacement
}
