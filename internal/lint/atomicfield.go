package lint

import (
	"go/ast"
	"go/types"
)

// atomicFns are the sync/atomic package-level functions whose first
// argument addresses the word they operate on.
var atomicFns = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFns[op+ty] = true
		}
	}
}

// AtomicField enforces all-or-nothing atomicity per struct field: a
// field passed to a sync/atomic function anywhere in the package must
// be accessed through sync/atomic everywhere in it (test files
// included). A single plain load next to atomic stores is a data race
// that -race only reports on the interleavings a run happens to
// execute; this catches it on every path, statically.
//
// Initialization inside a composite literal is exempt (the value is
// not shared yet), and a justified plain access — a constructor
// filling fields before publication — carries //ring:nonatomic on its
// line or enclosing function. Fields of the atomic.Int64/Uint64/...
// wrapper types need no analysis: their only access path is atomic.
//
// The check is per package, which matches reality here: a field
// shared across packages is exported, and Ring's counters all live
// behind the typed wrappers in internal/metrics.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere (//ring:nonatomic to justify pre-publication access)",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Phase 1: find fields used atomically, remembering the selector
	// nodes inside atomic calls so phase 2 does not re-flag them.
	atomicFields := map[types.Object]string{} // field -> example atomic fn
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := calleeFromPkg(pass.Info, call, "sync/atomic")
			if !ok || !atomicFns[name] || len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := fieldOf(pass, sel); obj != nil {
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = "atomic." + name
				}
				inAtomicCall[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: every other access to those fields must be atomic.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			obj := fieldOf(pass, sel)
			if obj == nil {
				return true
			}
			fn, isAtomic := atomicFields[obj]
			if !isAtomic {
				return true
			}
			if pass.lineDirective(sel.Pos(), "nonatomic") || enclosingFuncHasDirective(pass, sel.Pos(), "nonatomic") {
				return true
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed with %s elsewhere in this package (use sync/atomic everywhere; //ring:nonatomic for pre-publication init)", obj.Name(), fn)
			return true
		})
	}
	return nil
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) types.Object {
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
