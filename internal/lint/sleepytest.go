package lint

import (
	"go/ast"
)

// SleepyTest bans bare time.Sleep (and its disguise, a bare
// <-time.After(d) statement) from _test.go files. Sleeping for a guess
// at "long enough" is the flake class the tickUntil/poll helpers
// eradicated: on a loaded CI machine the guess is wrong, and on a fast
// one it wastes wall-clock. Poll a condition instead —
// testutil.Eventually for live clusters, harness tickUntil for
// virtual-time tests. A genuinely justified sleep carries
// //ring:sleepok with its justification, either on the enclosing
// function's doc comment or trailing on the sleep line.
//
// select statements that include a time.After case are untouched:
// bounding a legitimate wait with a timeout is the correct pattern.
var SleepyTest = &Analyzer{
	Name: "sleepytest",
	Doc:  "no bare time.Sleep in _test.go files (poll with testutil.Eventually or tickUntil; //ring:sleepok to justify)",
	Run:  runSleepyTest,
}

func runSleepyTest(pass *Pass) error {
	for _, f := range pass.Files {
		if !pass.IsTestFile(f) {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, ok := calleeFromPkg(pass.Info, n, "time", "Sleep"); ok {
					reportSleep(pass, n, "bare time.Sleep in test")
				}
			case *ast.ExprStmt:
				// <-time.After(d) as a standalone statement is a sleep
				// with extra steps. The same ExprStmt as a select
				// CommClause's comm is a timeout bound and stays legal.
				if len(stack) > 0 {
					if _, ok := stack[len(stack)-1].(*ast.CommClause); ok {
						return true
					}
				}
				if recv, ok := n.X.(*ast.UnaryExpr); ok {
					if call, ok := recv.X.(*ast.CallExpr); ok {
						if _, ok := calleeFromPkg(pass.Info, call, "time", "After"); ok {
							reportSleep(pass, call, "bare <-time.After in test")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportSleep(pass *Pass, n ast.Node, what string) {
	if pass.lineDirective(n.Pos(), "sleepok") || enclosingFuncHasDirective(pass, n.Pos(), "sleepok") {
		return
	}
	pass.Reportf(n.Pos(), "%s: poll a condition (testutil.Eventually, harness tickUntil) instead of guessing a delay; //ring:sleepok to justify", what)
}
