package lint

import (
	"go/ast"

	"ring/internal/lint/flow"
)

// GoroutineLife checks goroutine lifecycle hygiene in non-test code:
//
//  1. Every goroutine needs a shutdown path. The spawned function's
//     CFG must be able to reach its exit — a return, a break out of
//     the loop, a select case that returns. A `for { ... }` with no
//     way out runs until process death, which in a node that is
//     supposed to be Close-able is a leak (and under the sim harness,
//     a determinism hazard). The body is resolved conservatively: a
//     function literal directly, or a same-package declared function;
//     a goroutine running another package's code is out of scope.
//  2. time.After and time.Tick allocate a timer/ticker that is never
//     collected before firing; inside a loop that is an unbounded
//     leak. Loops must hoist a time.NewTimer/NewTicker instead.
//
// //ring:goroutineok (line or enclosing function doc) exempts a spawn
// or timer with a justification — e.g. a worker whose lifetime really
// is the process.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "goroutines have a reachable shutdown path; no time.After/time.Tick inside loops",
	Run:  runGoroutineLife,
}

func runGoroutineLife(pass *Pass) error {
	cg := flow.NewCallGraph(pass.Pkg, pass.Info, pass.Files, pass.IsTestFile)
	exemptAt := func(n ast.Node) bool {
		return pass.directiveEnabled("goroutineok") &&
			(pass.lineDirective(n.Pos(), "goroutineok") || enclosingFuncHasDirective(pass, n.Pos(), "goroutineok"))
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if exemptAt(n) {
					return true
				}
				for _, u := range cg.Callees(n.Call) {
					if !u.Graph.ExitReachable() {
						pass.Reportf(n.Pos(), "goroutine %s has no shutdown path: its exit is unreachable", u.Name)
					}
				}
			case *ast.CallExpr:
				name, ok := calleeFromPkg(pass.Info, n, "time", "After", "Tick")
				if !ok {
					return true
				}
				inLoop := false
				for _, anc := range stack {
					switch anc.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						inLoop = true
					}
				}
				if inLoop && !exemptAt(n) {
					pass.Reportf(n.Pos(), "time.%s in a loop leaks a timer per iteration; hoist a time.NewTimer/NewTicker", name)
				}
			}
			return true
		})
	}
	return nil
}
