package reliability

import (
	"math"
	"testing"

	"ring/internal/srs"
)

func TestRSChainStructure(t *testing.T) {
	// RS(3,2) generator must match the worked example of Appendix A.1
	// (with lambda=1, mu=10):
	//   [-5   5    0   0]
	//   [10 -14    4   0]
	//   [ 0  10  -13   3]
	//   [ 0   0    0   0]
	prm := Params{Lambda: 1, DataBytes: 1, NetBytesPerSec: 1, CompSecPerByte: 0}
	// Force mu = 10 by picking T_reconst = secondsPerYear/10.
	prm.DataBytes = secondsPerYear / 10
	prm.NetBytesPerSec = 1
	c := RSChain(3, 2, prm)
	want := [][]float64{
		{-5, 5, 0, 0},
		{10, -14, 4, 0},
		{0, 10, -13, 3},
		{0, 0, 0, 0},
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(c.Q[i][j]-want[i][j]) > 1e-9 {
				t.Fatalf("Q[%d][%d] = %v, want %v", i, j, c.Q[i][j], want[i][j])
			}
		}
	}
}

func TestSRSChainStructureSRS214(t *testing.T) {
	// Appendix A.2's example: SRS(2,1,4) has 4 states and splits the
	// second failure 2/5 survive, 3/5 fail.
	prm := Params{Lambda: 1, DataBytes: secondsPerYear / 10, NetBytesPerSec: 1}
	layout := srs.MustLayout(2, 1, 4)
	c := SRSChain(layout, prm)
	if c.States() != 4 || c.Absorbing != 3 {
		t.Fatalf("states=%d absorbing=%d", c.States(), c.Absorbing)
	}
	// lambda_i = (s+m-i) lambda per the Appendix formula (the worked
	// example matrix in the paper uses s+m+1 nodes, inconsistent with
	// its own formula; we follow the formula).
	if math.Abs(c.Q[0][1]-5) > 1e-9 {
		t.Fatalf("Q[0][1] = %v, want 5 (5 nodes x lambda)", c.Q[0][1])
	}
	if math.Abs(c.Q[1][2]-4*0.4) > 1e-9 {
		t.Fatalf("Q[1][2] = %v, want 1.6 (4 lambda x 2/5)", c.Q[1][2])
	}
	if math.Abs(c.Q[1][3]-4*0.6) > 1e-9 {
		t.Fatalf("Q[1][3] = %v, want 2.4 (4 lambda x 3/5)", c.Q[1][3])
	}
	// From state 2 every further failure is fatal.
	if math.Abs(c.Q[2][3]-3) > 1e-9 {
		t.Fatalf("Q[2][3] = %v, want 3", c.Q[2][3])
	}
}

func TestTransientConservation(t *testing.T) {
	c := RSChain(3, 2, DefaultParams())
	for _, tm := range []float64{0, 1e-6, 0.01, 0.5, 1, 5} {
		p := c.Transient(tm)
		sum := 0.0
		for _, v := range p {
			if v < -1e-12 {
				t.Fatalf("negative probability %v at t=%v", v, tm)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v at t=%v", sum, tm)
		}
	}
}

func TestReliabilityMonotoneInTime(t *testing.T) {
	c := RSChain(2, 1, DefaultParams())
	r1 := c.Reliability(0.25)
	r2 := c.Reliability(1)
	r3 := c.Reliability(4)
	if !(r1 >= r2 && r2 >= r3) {
		t.Fatalf("reliability not decreasing in time: %v %v %v", r1, r2, r3)
	}
	if r2 <= 0 || r2 >= 1 {
		t.Fatalf("annual reliability out of range: %v", r2)
	}
}

func TestMoreParityMoreReliable(t *testing.T) {
	prm := DefaultParams()
	var last float64 = -1
	for m := 1; m <= 4; m++ {
		r := RSChain(4, m, prm).Reliability(1)
		n := Nines(r)
		if n <= last {
			t.Fatalf("RS(4,%d) nines %v not above RS(4,%d) %v", m, n, m-1, last)
		}
		last = n
	}
}

func TestFigure2Band(t *testing.T) {
	// The RS anchors of Figure 2 span roughly 2 to 14 nines, increasing
	// with m. Our calibration must land in that band.
	prm := DefaultParams()
	lo := Nines(RSChain(2, 1, prm).Reliability(1))
	hi := Nines(RSChain(7, 5, prm).Reliability(1))
	if lo < 1.5 || lo > 5 {
		t.Fatalf("RS(2,1) = %.2f nines, want 2-4ish", lo)
	}
	if hi < 9 {
		t.Fatalf("RS(7,5) = %.2f nines, want >= 9", hi)
	}
	if hi <= lo {
		t.Fatal("nines not increasing with parity")
	}
}

func TestStretchingKeepsReliability(t *testing.T) {
	// Figure 2's main claim: stretching maintains approximately the
	// same reliability level — here, within one "nine" of the parent
	// code, for every family we can build on up to 8 data nodes.
	prm := DefaultParams()
	for k := 2; k <= 4; k++ {
		for m := 1; m < k; m++ {
			base := Nines(SRSChain(srs.MustLayout(k, m, k), prm).Reliability(1))
			for s := k + 1; s <= 7; s++ {
				n := Nines(SRSChain(srs.MustLayout(k, m, s), prm).Reliability(1))
				if math.Abs(n-base) > 1.5 {
					t.Fatalf("SRS(%d,%d,%d) = %.2f nines vs RS anchor %.2f: stretching changed reliability too much", k, m, s, n, base)
				}
			}
		}
	}
}

func TestSRSEqualsRSWhenNotStretched(t *testing.T) {
	// SRS(k,m,k) is RS(k,m); the two model builders must agree.
	prm := DefaultParams()
	for _, c := range []struct{ k, m int }{{2, 1}, {3, 2}, {4, 2}} {
		rs := RSChain(c.k, c.m, prm).Reliability(1)
		ss := SRSChain(srs.MustLayout(c.k, c.m, c.k), prm).Reliability(1)
		if math.Abs(Nines(rs)-Nines(ss)) > 0.3 {
			t.Fatalf("RS(%d,%d) %v nines vs SRS anchor %v nines", c.k, c.m, Nines(rs), Nines(ss))
		}
	}
}

func TestAvailabilityBand(t *testing.T) {
	// Figure 16's qualitative claims: every scheme's interval
	// availability stays in a narrow low-nines band, and codes with
	// more nodes in the stripe are less available — SRS(2,1,s) is the
	// best family.
	prm := DefaultParams()
	mu := prm.Mu()
	avail := func(k, m, s int) float64 {
		return Nines(SRSChain(srs.MustLayout(k, m, s), prm).Repairable(mu).IntervalAvailability(1))
	}
	a21 := avail(2, 1, 3)
	a54 := avail(5, 4, 5)
	if a21 < 1.5 || a21 > 6 {
		t.Fatalf("SRS(2,1,3) availability %.2f nines outside band", a21)
	}
	if a54 >= a21 {
		t.Fatalf("bigger stripe should be less available: SRS(5,4) %.2f vs SRS(2,1) %.2f", a54, a21)
	}
	// Stretching changes availability only mildly.
	if d := math.Abs(avail(2, 1, 3) - avail(2, 1, 6)); d > 1 {
		t.Fatalf("stretching moved availability by %.2f nines", d)
	}
}

func TestNines(t *testing.T) {
	if Nines(0.99) < 1.99 || Nines(0.99) > 2.01 {
		t.Fatalf("Nines(0.99) = %v", Nines(0.99))
	}
	if Nines(1) != 16 {
		t.Fatal("Nines(1) must cap at 16")
	}
	if Nines(0) != 0 {
		t.Fatal("Nines(0) must be 0")
	}
}

func TestIntervalAvailability(t *testing.T) {
	prm := DefaultParams()
	c := RSChain(3, 2, prm)
	av := c.IntervalAvailability(1)
	r := c.Reliability(1)
	if av <= 0 || av >= 1 {
		t.Fatalf("availability %v out of range", av)
	}
	// Availability (time in fully-recovered state) is below
	// reliability (no data loss).
	if av >= r {
		t.Fatalf("availability %v should be below reliability %v", av, r)
	}
	// And far above the no-repair bound.
	if Nines(av) < 2 || Nines(av) > 6 {
		t.Fatalf("availability %.3f nines outside plausible band", Nines(av))
	}
}

func TestMuFromParams(t *testing.T) {
	p := Params{Lambda: 1, DataBytes: 5e9, NetBytesPerSec: 5e9, CompSecPerByte: 0}
	// T_reconst = 1s -> mu = one per second in yearly units.
	if math.Abs(p.Mu()-secondsPerYear) > 1 {
		t.Fatalf("Mu = %v", p.Mu())
	}
}

func TestRepairableConservation(t *testing.T) {
	prm := DefaultParams()
	c := RSChain(3, 2, prm).Repairable(prm.Mu())
	for _, tm := range []float64{0.01, 0.5, 1} {
		p := c.Transient(tm)
		sum := 0.0
		for _, v := range p {
			if v < -1e-12 {
				t.Fatalf("negative probability at t=%v", tm)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("repairable chain leaks probability: %v", sum)
		}
	}
	// Repairing the fail state must not change the original chain.
	orig := RSChain(3, 2, prm)
	if orig.Q[orig.Absorbing][0] != 0 {
		t.Fatal("Repairable mutated the source chain")
	}
}

func TestRepairableImprovesAvailability(t *testing.T) {
	prm := DefaultParams()
	base := RSChain(2, 1, prm)
	a0 := base.IntervalAvailability(1)
	a1 := base.Repairable(prm.Mu()).IntervalAvailability(1)
	if a1 <= a0 {
		t.Fatalf("repairable availability %v should exceed absorbing %v", a1, a0)
	}
}

func TestLambdaSensitivity(t *testing.T) {
	// Halving the failure rate must increase reliability.
	lo := DefaultParams()
	hi := lo
	hi.Lambda = lo.Lambda / 2
	rLo := RSChain(3, 2, lo).Reliability(1)
	rHi := RSChain(3, 2, hi).Reliability(1)
	if rHi <= rLo {
		t.Fatalf("lower lambda should raise reliability: %v vs %v", rHi, rLo)
	}
	// Faster rebuild (bigger mu) must too.
	fast := lo
	fast.NetBytesPerSec = lo.NetBytesPerSec * 4
	fast.CompSecPerByte = lo.CompSecPerByte / 4
	rFast := RSChain(3, 2, fast).Reliability(1)
	if rFast <= rLo {
		t.Fatalf("faster rebuild should raise reliability: %v vs %v", rFast, rLo)
	}
}
