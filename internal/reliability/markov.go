// Package reliability implements the fault-resilience analysis of the
// paper's Appendix A: continuous-time Markov chain (CTMC) models for
// RS(k,m) (Figure 14) and SRS(k,m,s) (Figure 15) storage, solved for
// annual reliability (Figure 2) and interval availability (Figure 16).
//
// The SRS model's structural inputs — the probability f_i that the
// code survives i simultaneous node failures, and the hypergeometric
// data/parity failure split p_ij — are computed exactly from the srs
// package's layout enumeration, so the analysis shares its ground
// truth with the storage implementation.
package reliability

import (
	"fmt"
	"math"

	"ring/internal/srs"
)

// Chain is a CTMC over a small state space: Q is the generator matrix
// (Q[i][j] is the i->j transition rate for i != j; diagonals make rows
// sum to zero) and Absorbing is the index of the data-loss state.
type Chain struct {
	Q         [][]float64
	Absorbing int
}

// States returns the state count.
func (c *Chain) States() int { return len(c.Q) }

// validate panics on malformed generators; models are built by this
// package, so errors are programming bugs.
func (c *Chain) validate() {
	for i, row := range c.Q {
		if len(row) != len(c.Q) {
			panic("reliability: generator not square")
		}
		sum := 0.0
		for j, v := range row {
			if i != j && v < 0 {
				panic(fmt.Sprintf("reliability: negative rate Q[%d][%d]=%v", i, j, v))
			}
			sum += v
		}
		if math.Abs(sum) > 1e-6*math.Abs(c.Q[i][i])+1e-9 {
			panic(fmt.Sprintf("reliability: row %d sums to %v", i, sum))
		}
	}
}

// uniformized returns the DTMC matrix P = I + Q/lambda (non-negative,
// row-stochastic) and the uniformization rate lambda.
func (c *Chain) uniformized() ([][]float64, float64) {
	lambda := 0.0
	for i := range c.Q {
		if d := -c.Q[i][i]; d > lambda {
			lambda = d
		}
	}
	n := len(c.Q)
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		for j := range p[i] {
			v := 0.0
			if lambda > 0 {
				v = c.Q[i][j] / lambda
			}
			if i == j {
				v++
			}
			p[i][j] = v
		}
	}
	return p, lambda
}

// matMul multiplies two dense square matrices.
func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			row := b[k]
			for j := 0; j < n; j++ {
				out[i][j] += aik * row[j]
			}
		}
	}
	return out
}

// vecMat computes v * M for a row vector.
func vecMat(v []float64, m [][]float64) []float64 {
	n := len(v)
	out := make([]float64, n)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m[i]
		for j := 0; j < n; j++ {
			out[j] += vi * row[j]
		}
	}
	return out
}

// expStep computes e^{Q dt} by uniformization: a Poisson-weighted sum
// of powers of the uniformized DTMC. All terms are non-negative, so
// there is no cancellation — essential for resolving 14-nines
// reliabilities. lambda*dt must be modest (<= ~600) to keep the
// Poisson weights representable; Transient splits larger horizons.
func (c *Chain) expStep(dt float64) [][]float64 {
	p, lambda := c.uniformized()
	n := len(c.Q)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	a := lambda * dt
	// Term k=0: weight e^{-a} * I.
	w := math.Exp(-a)
	term := identity(n)
	addScaled(out, term, w)
	// Iterate until the remaining Poisson mass is negligible.
	cum := w
	for k := 1; cum < 1-1e-16 && k < 100000; k++ {
		term = matMul(term, p)
		w *= a / float64(k)
		if w > 0 {
			addScaled(out, term, w)
		}
		cum += w
		if k > int(a)+60 && w < 1e-18 {
			break
		}
	}
	return out
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

func addScaled(dst, src [][]float64, w float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += w * src[i][j]
		}
	}
}

// Transient returns the state distribution at time t starting from
// state 0, i.e. p0 * e^{Qt}. Large lambda*t horizons are handled by
// computing a small-step matrix via uniformization and squaring it
// (both operations preserve non-negativity, so precision holds).
func (c *Chain) Transient(t float64) []float64 {
	c.validate()
	n := len(c.Q)
	p0 := make([]float64, n)
	p0[0] = 1
	if t <= 0 {
		return p0
	}
	_, lambda := c.uniformized()
	if lambda == 0 {
		return p0
	}
	// Choose dt so lambda*dt <= 400, and the number of doublings to
	// reach t.
	squarings := 0
	dt := t
	for lambda*dt > 400 {
		dt /= 2
		squarings++
	}
	m := c.expStep(dt)
	for s := 0; s < squarings; s++ {
		m = matMul(m, m)
	}
	return vecMat(p0, m)
}

// Reliability returns R(t) = 1 - P_absorbing(t): the probability that
// no data has been lost by time t.
func (c *Chain) Reliability(t float64) float64 {
	p := c.Transient(t)
	r := 1 - p[c.Absorbing]
	if r < 0 {
		return 0
	}
	return r
}

// PointAvailability returns A(t) = P_0(t): per Appendix A.3, only the
// fully recovered state is available.
func (c *Chain) PointAvailability(t float64) float64 {
	return c.Transient(t)[0]
}

// Repairable returns a copy of the chain in which the absorbing
// data-loss state is repaired (restored from external backup and
// re-initialized) at the given rate. The availability analysis of
// Figure 16 uses this variant: with an absorbing fail state, interval
// availability would be dominated by the data-loss probability and
// more-redundant codes would paradoxically look more available,
// contradicting the figure's "more nodes in the stripe decreases the
// availability" ordering. Repairing the fail state at the rebuild
// rate recovers exactly that ordering.
func (c *Chain) Repairable(rate float64) *Chain {
	n := len(c.Q)
	q := make([][]float64, n)
	for i := range q {
		q[i] = append([]float64(nil), c.Q[i]...)
	}
	q[c.Absorbing][0] += rate
	q[c.Absorbing][c.Absorbing] -= rate
	return &Chain{Q: q, Absorbing: c.Absorbing}
}

// IntervalAvailability returns Aav(tau) = (1/tau) * Integral of A(t),
// computed by trapezoidal integration over N power-iterated steps of
// the step matrix.
func (c *Chain) IntervalAvailability(tau float64) float64 {
	c.validate()
	const steps = 4096
	dt := tau / steps
	_, lambda := c.uniformized()
	if lambda == 0 {
		return 1
	}
	// Build the one-step matrix (split if lambda*dt too large).
	sub := 1
	for lambda*dt/float64(sub) > 400 {
		sub *= 2
	}
	m := c.expStep(dt / float64(sub))
	for s := 1; s < sub; s *= 2 {
		m = matMul(m, m)
	}
	n := len(c.Q)
	p := make([]float64, n)
	p[0] = 1
	sum := 0.0
	prev := 1.0 // A(0)
	for i := 0; i < steps; i++ {
		p = vecMat(p, m)
		cur := p[0]
		sum += (prev + cur) / 2 * dt
		prev = cur
	}
	return sum / tau
}

// Nines converts a probability p into "number of nines":
// -log10(1 - p), capped at 16 (the resolution of float64).
func Nines(p float64) float64 {
	if p >= 1 {
		return 16
	}
	n := -math.Log10(1 - p)
	if n > 16 {
		return 16
	}
	if n < 0 {
		return 0
	}
	return n
}

// Params are the physical inputs of the Appendix A models.
type Params struct {
	// Lambda is the failure rate of a single node, per year.
	Lambda float64
	// DataBytes is the full data set size C of Eqn. (6).
	DataBytes float64
	// NetBytesPerSec is the recovery network bandwidth B_N.
	NetBytesPerSec float64
	// CompSecPerByte models T_comp(C) = CompSecPerByte * C.
	CompSecPerByte float64
}

// DefaultParams land the Figure 2 reproduction in the paper's 2–14
// nines band: monthly node failures, 600 GiB of data, a 40 Gb/s
// recovery network, and erasure-coding compute at about 1 GB/s.
func DefaultParams() Params {
	return Params{
		Lambda:         12, // one failure per node-month
		DataBytes:      600 * (1 << 30),
		NetBytesPerSec: 5e9,
		CompSecPerByte: 1e-9,
	}
}

const secondsPerYear = 365.25 * 24 * 3600

// Mu returns the parity-node rebuild rate (per year) of Eqn. (6):
// mu = 1 / T_reconst with T_reconst = C/B_N + T_comp(C).
func (p Params) Mu() float64 {
	t := p.DataBytes/p.NetBytesPerSec + p.CompSecPerByte*p.DataBytes
	return secondsPerYear / t
}

// RSChain builds the Figure 14 Markov model of RS(k,m): states
// 0..m count failures, state m+1 is the absorbing fail state.
func RSChain(k, m int, prm Params) *Chain {
	lam, mu := prm.Lambda, prm.Mu()
	n := m + 2
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i := 0; i <= m; i++ {
		fail := float64(k+m-i) * lam
		q[i][i+1] += fail
		q[i][i] -= fail
		if i > 0 {
			q[i][i-1] += mu
			q[i][i] -= mu
		}
	}
	return &Chain{Q: q, Absorbing: m + 1}
}

// SRSChain builds the Figure 15 model of SRS(k,m,s): states 0..u count
// failures, with survival probabilities p_i = f_{i+1}/f_i from exact
// enumeration, state-dependent recovery rates mixing data-node
// (mu*k/s) and parity-node (mu) rebuild speeds weighted by the
// hypergeometric p_ij, and transitions to the absorbing state u+1.
func SRSChain(layout *srs.Layout, prm Params) *Chain {
	lam, mu := prm.Lambda, prm.Mu()
	s, m, k := layout.S, layout.M, layout.K
	// f[i] = probability the code survives i simultaneous failures.
	u := layout.MaxTolerated()
	f := make([]float64, u+2)
	for i := 0; i <= u+1; i++ {
		f[i] = layout.TolerationProbability(i)
	}
	n := u + 2
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i := 0; i <= u; i++ {
		total := float64(s+m-i) * lam
		var pSurvive float64
		if f[i] > 0 {
			pSurvive = f[i+1] / f[i]
		}
		if i+1 <= u && pSurvive > 0 {
			q[i][i+1] += total * pSurvive
			q[i][i] -= total * pSurvive
		}
		if lose := total * (1 - pSurvive); lose > 0 {
			q[i][u+1] += lose
			q[i][i] -= lose
		}
		if i > 0 {
			q[i][i-1] += srsRecoveryRate(i, s, m, k, mu)
			q[i][i] -= srsRecoveryRate(i, s, m, k, mu)
		}
	}
	return &Chain{Q: q, Absorbing: u + 1}
}

// srsRecoveryRate computes mu_i = sum_j mu_ij * p_ij of Appendix A.2.
func srsRecoveryRate(i, s, m, k int, mu float64) float64 {
	// p_ij: probability that j of the i failed nodes are data nodes,
	// hypergeometric over s data + m parity nodes, truncated to
	// i-j <= m.
	denom := 0.0
	for x := 0; x <= i; x++ {
		if i-x > m || x > s {
			continue
		}
		denom += float64(srs.CountSubsets(s, x) * srs.CountSubsets(m, i-x))
	}
	if denom == 0 {
		return mu
	}
	rate := 0.0
	for j := 0; j <= i; j++ {
		if i-j > m || j > s {
			continue
		}
		pij := float64(srs.CountSubsets(s, j)*srs.CountSubsets(m, i-j)) / denom
		// A data node holds k/s of a parity node's data, so with
		// recovery time linear in data size its rebuild rate is
		// mu_D = (s/k) mu. (The paper's Appendix prints mu_D = (k/s)mu,
		// which contradicts its own statement that stretched data
		// nodes store less and therefore recover faster; we use the
		// physically consistent rate. See DESIGN.md.)
		muij := float64(j)/float64(i)*float64(s)/float64(k)*mu + float64(i-j)/float64(i)*mu
		rate += pij * muij
	}
	return rate
}
