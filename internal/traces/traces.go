// Package traces reproduces the storage-pricing analysis of Figure 10:
// five I/O traces from the Storage Performance Council (two put-heavy
// OLTP traces from a large financial institution, three get-dominant
// traces from a popular search engine) priced under three storage
// schemes — hot (Rep(3)), cold (SRS(3,2,3)) and simple (Rep(1)).
//
// The original SPC trace files are not redistributable, so this
// package carries their published aggregate statistics (request
// counts, read/write mix, transferred volume, footprint) and can
// synthesize request streams with matching aggregates. The pricing
// model is linear in exactly those aggregates, which is why matching
// them reproduces the figure.
package traces

import (
	"fmt"
	"math/rand"
)

// Stats are the aggregate characteristics of one trace.
type Stats struct {
	Name string
	// Requests is the total number of I/O requests.
	Requests int
	// WriteFrac is the fraction of requests that are writes.
	WriteFrac float64
	// AvgReqBytes is the mean request size.
	AvgReqBytes int
	// FootprintBytes is the live data footprint accessed by the trace.
	FootprintBytes int64
	// DurationHours is the trace capture duration.
	DurationHours float64
}

// ReadBytes returns the total bytes read.
func (s Stats) ReadBytes() float64 {
	return float64(s.Requests) * (1 - s.WriteFrac) * float64(s.AvgReqBytes)
}

// WriteBytes returns the total bytes written.
func (s Stats) WriteBytes() float64 {
	return float64(s.Requests) * s.WriteFrac * float64(s.AvgReqBytes)
}

// The five traces of Figure 10, with aggregates matching the published
// SPC trace characteristics (OLTP applications at a large financial
// institution; a popular search engine).
var (
	Financial1 = Stats{Name: "Financial1", Requests: 5334987, WriteFrac: 0.768, AvgReqBytes: 3700, FootprintBytes: 17 << 30, DurationHours: 12.1}
	Financial2 = Stats{Name: "Financial2", Requests: 3699194, WriteFrac: 0.176, AvgReqBytes: 2600, FootprintBytes: 8 << 30, DurationHours: 11.5}
	WebSearch1 = Stats{Name: "WebSearch1", Requests: 1055448, WriteFrac: 0.0002, AvgReqBytes: 15500, FootprintBytes: 15 << 30, DurationHours: 2.4}
	WebSearch2 = Stats{Name: "WebSearch2", Requests: 4579809, WriteFrac: 0.0002, AvgReqBytes: 15700, FootprintBytes: 16 << 30, DurationHours: 4.3}
	WebSearch3 = Stats{Name: "WebSearch3", Requests: 4261709, WriteFrac: 0.0002, AvgReqBytes: 15600, FootprintBytes: 16 << 30, DurationHours: 4.5}
)

// All returns the five Figure 10 traces in the figure's order.
func All() []Stats {
	return []Stats{Financial1, Financial2, WebSearch1, WebSearch2, WebSearch3}
}

// SchemeClass is one of the three priced storage classes.
type SchemeClass int

const (
	// Simple is unreplicated Rep(1) storage.
	Simple SchemeClass = iota
	// Hot is Rep(3) replication (Azure hot tier).
	Hot
	// Cold is SRS(3,2,3) erasure coding (Azure cool tier).
	Cold
)

func (s SchemeClass) String() string {
	switch s {
	case Simple:
		return "simple"
	case Hot:
		return "hot"
	case Cold:
		return "cold"
	}
	return fmt.Sprintf("class(%d)", int(s))
}

// Pricing holds the per-class price vector, modeled on the Azure Blob
// Storage pricing (Central US, Feb 2018) cited by the paper:
// write/read prices per 10,000 operations, storage per GB-month, and
// data transfer per GB. Azure has no "simple" tier; per the paper it
// is priced like hot but with puts 3x cheaper (no replication).
type Pricing struct {
	WritePer10K   float64
	ReadPer10K    float64
	StoragePerGB  float64 // per GB-month
	TransferPerGB float64
}

// AzurePrices returns the price vectors per class.
func AzurePrices() map[SchemeClass]Pricing {
	hot := Pricing{WritePer10K: 0.05, ReadPer10K: 0.004, StoragePerGB: 0.0184, TransferPerGB: 0.01}
	cool := Pricing{WritePer10K: 0.10, ReadPer10K: 0.01, StoragePerGB: 0.01, TransferPerGB: 0.01}
	simple := hot
	simple.WritePer10K = hot.WritePer10K / 3
	return map[SchemeClass]Pricing{Simple: simple, Hot: hot, Cold: cool}
}

// CostBreakdown itemizes the price of running one trace on one class,
// the components stacked in Figure 10.
type CostBreakdown struct {
	Class    SchemeClass
	Write    float64
	Read     float64
	Transfer float64
	Storage  float64
}

// Total sums the components.
func (c CostBreakdown) Total() float64 { return c.Write + c.Read + c.Transfer + c.Storage }

// Cost prices a trace under a class: operation costs from the request
// counts, transfer from bytes moved, and storage for holding the
// footprint at constant capacity for one month (the paper's "storing
// data at a constant capacity").
func Cost(tr Stats, class SchemeClass, prices map[SchemeClass]Pricing) CostBreakdown {
	p := prices[class]
	const gb = 1 << 30
	writes := float64(tr.Requests) * tr.WriteFrac
	reads := float64(tr.Requests) * (1 - tr.WriteFrac)
	return CostBreakdown{
		Class:    class,
		Write:    writes / 10000 * p.WritePer10K,
		Read:     reads / 10000 * p.ReadPer10K,
		Transfer: (tr.ReadBytes() + tr.WriteBytes()) / gb * p.TransferPerGB,
		Storage:  float64(tr.FootprintBytes) / gb * p.StoragePerGB,
	}
}

// Normalized prices a trace under all three classes and divides by the
// simple class's total — the y axis of Figure 10.
func Normalized(tr Stats) map[SchemeClass]CostBreakdown {
	prices := AzurePrices()
	base := Cost(tr, Simple, prices).Total()
	out := make(map[SchemeClass]CostBreakdown, 3)
	for _, cl := range []SchemeClass{Simple, Hot, Cold} {
		c := Cost(tr, cl, prices)
		c.Write /= base
		c.Read /= base
		c.Transfer /= base
		c.Storage /= base
		out[cl] = c
	}
	return out
}

// Op is one synthesized trace request.
type Op struct {
	Write bool
	Key   string
	Size  int
}

// Synthesize produces n requests whose aggregate read/write mix and
// mean size match the trace statistics; the key space is sized so the
// footprint matches at the mean request size. Used to drive the KVS
// with trace-shaped load.
func Synthesize(tr Stats, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	keys := int(tr.FootprintBytes / int64(tr.AvgReqBytes))
	if keys < 1 {
		keys = 1
	}
	ops := make([]Op, n)
	for i := range ops {
		// Request sizes: uniform in [avg/2, 3avg/2], preserving the mean.
		size := tr.AvgReqBytes/2 + rng.Intn(tr.AvgReqBytes)
		ops[i] = Op{
			Write: rng.Float64() < tr.WriteFrac,
			Key:   fmt.Sprintf("%s-%08d", tr.Name, rng.Intn(keys)),
			Size:  size,
		}
	}
	return ops
}
