package traces

import (
	"strings"
	"testing"
)

func TestParseStatsRoundTrip(t *testing.T) {
	input := `# the two financial traces of Figure 10
Financial1,5334987,0.768,3700,18253611008,12.1

Financial2,3699194,0.176,2600,8589934592,11.5
`
	got, err := ParseStats(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d traces, want 2", len(got))
	}
	if got[0] != Financial1 {
		t.Fatalf("Financial1 round trip: %+v != %+v", got[0], Financial1)
	}
	if got[1] != Financial2 {
		t.Fatalf("Financial2 round trip: %+v != %+v", got[1], Financial2)
	}
}

func TestParseStatsLineErrors(t *testing.T) {
	cases := []struct {
		line string
		want string // substring of the error
	}{
		{"justaname", "want 6 fields"},
		{"a,1,0.5,100,1000,1.0,extra", "want 6 fields"},
		{",1,0.5,100,1000,1.0", "empty name"},
		{"t,zero,0.5,100,1000,1.0", "bad requests"},
		{"t,-5,0.5,100,1000,1.0", "bad requests"},
		{"t,1,1.5,100,1000,1.0", "bad write_frac"},
		{"t,1,frac,100,1000,1.0", "bad write_frac"},
		{"t,1,0.5,0,1000,1.0", "bad avg_req_bytes"},
		{"t,1,0.5,100,huge,1.0", "bad footprint_bytes"},
		{"t,1,0.5,100,1000,0", "bad duration_hours"},
	}
	for _, c := range cases {
		if _, err := ParseStatsLine(c.line); err == nil {
			t.Errorf("ParseStatsLine(%q) accepted", c.line)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseStatsLine(%q) error %q, want substring %q", c.line, err, c.want)
		}
	}
}

func TestParseStatsReportsLineNumber(t *testing.T) {
	input := "# header\nFinancial1,5334987,0.768,3700,18253611008,12.1\nbroken line\n"
	_, err := ParseStats(strings.NewReader(input))
	if err == nil {
		t.Fatal("malformed file accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
}
