package traces

import (
	"math"
	"testing"
)

func TestTraceStatsShape(t *testing.T) {
	if len(All()) != 5 {
		t.Fatal("figure 10 uses five traces")
	}
	// Financial traces are put-heavy or mixed; web search is get-only.
	if Financial1.WriteFrac < 0.5 {
		t.Fatal("Financial1 must be write-heavy")
	}
	for _, ws := range []Stats{WebSearch1, WebSearch2, WebSearch3} {
		if ws.WriteFrac > 0.01 {
			t.Fatalf("%s must be read-dominant", ws.Name)
		}
	}
	if Financial1.ReadBytes() <= 0 || Financial1.WriteBytes() <= 0 {
		t.Fatal("byte accounting broken")
	}
}

func TestCostComponentsPositive(t *testing.T) {
	prices := AzurePrices()
	for _, tr := range All() {
		for _, cl := range []SchemeClass{Simple, Hot, Cold} {
			c := Cost(tr, cl, prices)
			if c.Write < 0 || c.Read < 0 || c.Transfer <= 0 || c.Storage <= 0 {
				t.Fatalf("%s/%v: nonpositive components %+v", tr.Name, cl, c)
			}
			if c.Total() <= 0 {
				t.Fatalf("%s/%v: nonpositive total", tr.Name, cl)
			}
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	// The headline numbers of Section 6.2: for Financial1 (put-heavy),
	// cold is ~5.5x simple and ~2x hot.
	n := Normalized(Financial1)
	if tot := n[Simple].Total(); math.Abs(tot-1) > 1e-9 {
		t.Fatalf("simple not normalized: %v", tot)
	}
	coldX := n[Cold].Total()
	hotX := n[Hot].Total()
	if coldX < 3.5 || coldX > 7.5 {
		t.Fatalf("Financial1 cold = %.2fx simple, paper says ~5.5x", coldX)
	}
	ratio := coldX / hotX
	if ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("Financial1 cold/hot = %.2f, paper says ~2x", ratio)
	}
	// Write cost dominates the put-heavy trace under cold.
	if n[Cold].Write < n[Cold].Read {
		t.Fatal("cold Financial1 must be write-dominated")
	}
	// Get-dominant traces: the scheme choice matters much less, and
	// cold can even be competitive (cheaper storage).
	for _, tr := range []Stats{WebSearch1, WebSearch2, WebSearch3} {
		nw := Normalized(tr)
		if nw[Cold].Total() > 3 {
			t.Fatalf("%s cold = %.2fx simple: read traces should not explode", tr.Name, nw[Cold].Total())
		}
	}
	// Ordering for put-heavy traces: simple < hot < cold.
	for _, tr := range []Stats{Financial1} {
		nf := Normalized(tr)
		if !(nf[Simple].Total() < nf[Hot].Total() && nf[Hot].Total() < nf[Cold].Total()) {
			t.Fatalf("%s ordering broken: %v %v %v", tr.Name,
				nf[Simple].Total(), nf[Hot].Total(), nf[Cold].Total())
		}
	}
}

func TestSynthesizeMatchesAggregates(t *testing.T) {
	ops := Synthesize(Financial1, 50000, 1)
	if len(ops) != 50000 {
		t.Fatal("wrong op count")
	}
	writes := 0
	var bytes int64
	keys := map[string]bool{}
	for _, op := range ops {
		if op.Write {
			writes++
		}
		bytes += int64(op.Size)
		keys[op.Key] = true
		if op.Size <= 0 {
			t.Fatal("nonpositive request size")
		}
	}
	gotFrac := float64(writes) / 50000
	if math.Abs(gotFrac-Financial1.WriteFrac) > 0.02 {
		t.Fatalf("write fraction %.3f, want %.3f", gotFrac, Financial1.WriteFrac)
	}
	avg := float64(bytes) / 50000
	if math.Abs(avg-float64(Financial1.AvgReqBytes)) > float64(Financial1.AvgReqBytes)/10 {
		t.Fatalf("avg size %.0f, want ~%d", avg, Financial1.AvgReqBytes)
	}
	if len(keys) < 1000 {
		t.Fatalf("key space too small: %d", len(keys))
	}
}

func TestSchemeClassString(t *testing.T) {
	if Simple.String() != "simple" || Hot.String() != "hot" || Cold.String() != "cold" {
		t.Fatal("class names wrong")
	}
}
