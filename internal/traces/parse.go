package traces

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseStatsLine parses one CSV record of trace aggregates:
//
//	name,requests,write_frac,avg_req_bytes,footprint_bytes,duration_hours
//
// mirroring the fields of Stats. It rejects malformed records with an
// error naming the offending field, so a typo'd trace file fails
// loudly instead of silently pricing garbage.
func ParseStatsLine(line string) (Stats, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 6 {
		return Stats{}, fmt.Errorf("traces: want 6 fields, got %d in %q", len(fields), line)
	}
	for i, f := range fields {
		fields[i] = strings.TrimSpace(f)
	}
	var s Stats
	s.Name = fields[0]
	if s.Name == "" {
		return Stats{}, fmt.Errorf("traces: empty name in %q", line)
	}
	var err error
	if s.Requests, err = strconv.Atoi(fields[1]); err != nil || s.Requests <= 0 {
		return Stats{}, fmt.Errorf("traces: bad requests %q (want positive integer)", fields[1])
	}
	if s.WriteFrac, err = strconv.ParseFloat(fields[2], 64); err != nil || s.WriteFrac < 0 || s.WriteFrac > 1 {
		return Stats{}, fmt.Errorf("traces: bad write_frac %q (want 0..1)", fields[2])
	}
	if s.AvgReqBytes, err = strconv.Atoi(fields[3]); err != nil || s.AvgReqBytes <= 0 {
		return Stats{}, fmt.Errorf("traces: bad avg_req_bytes %q (want positive integer)", fields[3])
	}
	if s.FootprintBytes, err = strconv.ParseInt(fields[4], 10, 64); err != nil || s.FootprintBytes <= 0 {
		return Stats{}, fmt.Errorf("traces: bad footprint_bytes %q (want positive integer)", fields[4])
	}
	if s.DurationHours, err = strconv.ParseFloat(fields[5], 64); err != nil || s.DurationHours <= 0 {
		return Stats{}, fmt.Errorf("traces: bad duration_hours %q (want positive number)", fields[5])
	}
	return s, nil
}

// ParseStats reads a whole trace-statistics file: one CSV record per
// line, blank lines and #-comments skipped. Errors carry the 1-based
// line number.
func ParseStats(r io.Reader) ([]Stats, error) {
	var out []Stats
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := ParseStatsLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
