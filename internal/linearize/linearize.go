// Package linearize checks recorded operation histories for per-key
// linearizability against a register (last-write-wins) model, in the
// style of Wing & Gong's algorithm with Lowe's memoization.
//
// Ring's consistency contract is per item: each key is an independent
// linearizable register (puts and deletes totally ordered, gets
// observing the latest committed write). Linearizability is a local
// (composable) property — a history is linearizable iff every per-key
// sub-history is — so the checker splits the history by key and
// searches each sub-history separately, which keeps the exponential
// search tractable for chaos-scale workloads: thousands of ops over a
// small keyspace decompose into many short sub-histories.
package linearize

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Kind is the operation type of a history entry.
type Kind uint8

const (
	// KPut writes value Arg.
	KPut Kind = iota
	// KGet reads: Found/Val record the observation.
	KGet
	// KDelete removes the key.
	KDelete
)

func (k Kind) String() string {
	switch k {
	case KPut:
		return "put"
	case KGet:
		return "get"
	case KDelete:
		return "del"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one invocation/response pair recorded by the instrumented
// client. Values are represented by hashes (uint64), not bytes: the
// checker only needs equality.
type Op struct {
	// Client identifies the issuing client; at most one op per client
	// is outstanding at a time (the recorder enforces this).
	Client int
	Kind   Kind
	Key    string
	// Arg is the value written (KPut only).
	Arg uint64
	// Found/Val are the observation of a KGet: whether the key existed
	// and the hash of the value read.
	Found bool
	Val   uint64
	// Invoke and Return bound the operation in real (virtual) time.
	Invoke, Return time.Duration
	// Done is false for operations that never got a response (client
	// gave up, node crashed). A pending put/delete MAY have taken
	// effect; a pending get is ignored.
	Done bool
}

func (o Op) String() string {
	done := ""
	if !o.Done {
		done = " pending"
	}
	obs := ""
	switch o.Kind {
	case KPut:
		obs = fmt.Sprintf("(%x)", o.Arg)
	case KGet:
		if o.Done {
			if o.Found {
				obs = fmt.Sprintf("=%x", o.Val)
			} else {
				obs = "=absent"
			}
		}
	}
	return fmt.Sprintf("c%d %s %q%s [%v,%v]%s",
		o.Client, o.Kind, o.Key, obs, o.Invoke, o.Return, done)
}

// Verdict is the outcome of a check.
type Verdict uint8

const (
	// Linearizable: a valid total order exists for every key.
	Linearizable Verdict = iota
	// Violation: some key's sub-history admits no valid total order.
	Violation
	// Exhausted: the search budget ran out before a verdict (treat as
	// inconclusive, not as a pass).
	Exhausted
)

func (v Verdict) String() string {
	switch v {
	case Linearizable:
		return "linearizable"
	case Violation:
		return "VIOLATION"
	case Exhausted:
		return "exhausted"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Result reports a check outcome. For Violation and Exhausted, Key
// names the offending key and Ops is its sub-history (the witness to
// replay or shrink against).
type Result struct {
	Verdict Verdict
	Key     string
	Ops     []Op
}

func (r Result) String() string {
	if r.Verdict == Linearizable {
		return "linearizable"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s on key %q (%d ops):\n", r.Verdict, r.Key, len(r.Ops))
	for _, o := range r.Ops {
		fmt.Fprintf(&b, "  %s\n", o)
	}
	return b.String()
}

// DefaultBudget bounds the number of search states explored per key.
// Sub-histories from closed-loop chaos clients are short and rarely
// need more than a few thousand states.
const DefaultBudget = 2_000_000

// Check partitions the history by key and verifies each sub-history
// independently. budget caps search states per key (<=0 means
// DefaultBudget). The first violating key is reported; keys are
// checked in sorted order so the verdict is deterministic.
func Check(history []Op, budget int) Result {
	if budget <= 0 {
		budget = DefaultBudget
	}
	byKey := make(map[string][]Op)
	for _, o := range history {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ok, exhausted := checkKey(byKey[k], budget)
		if exhausted {
			return Result{Verdict: Exhausted, Key: k, Ops: byKey[k]}
		}
		if !ok {
			return Result{Verdict: Violation, Key: k, Ops: byKey[k]}
		}
	}
	return Result{Verdict: Linearizable}
}

// regState is the register automaton state threaded through the
// search.
type regState struct {
	present bool
	val     uint64
}

const inf = time.Duration(math.MaxInt64)

// checkKey runs the WGL search over one key's sub-history. It returns
// whether a valid linearization of all completed operations exists
// (pending writes may optionally be linearized; pending gets are
// dropped up front — with no observation they constrain nothing).
func checkKey(ops []Op, budget int) (ok, exhausted bool) {
	work := make([]Op, 0, len(ops))
	completed := 0
	for _, o := range ops {
		if !o.Done {
			if o.Kind == KGet {
				continue
			}
			o.Return = inf
		} else {
			completed++
		}
		work = append(work, o)
	}
	if completed == 0 {
		return true, false
	}
	// Deterministic order regardless of how the recorder interleaved
	// per-client streams.
	sort.SliceStable(work, func(i, j int) bool {
		if work[i].Invoke != work[j].Invoke {
			return work[i].Invoke < work[j].Invoke
		}
		return work[i].Client < work[j].Client
	})
	s := &search{ops: work, budget: budget, memo: make(map[string]bool)}
	ok = s.rec(newBitset(len(work)), regState{}, completed)
	return ok, s.budget <= 0
}

type search struct {
	ops    []Op
	budget int
	memo   map[string]bool
}

// rec returns true if the remaining (un-linearized) completed ops can
// be linearized starting from st. lin marks ops already placed.
func (s *search) rec(lin bitset, st regState, remaining int) bool {
	if remaining == 0 {
		return true
	}
	s.budget--
	if s.budget <= 0 {
		return false
	}
	key := lin.key(st)
	if s.memo[key] {
		return false
	}

	// An op may be linearized next only if no other un-linearized
	// completed op returned strictly before it was invoked.
	minReturn := inf
	for i, o := range s.ops {
		if lin.has(i) {
			continue
		}
		if o.Done && o.Return < minReturn {
			minReturn = o.Return
		}
	}
	for i, o := range s.ops {
		if lin.has(i) || o.Invoke > minReturn {
			continue
		}
		next, applies := apply(st, o)
		if !applies {
			continue
		}
		rem := remaining
		if o.Done {
			rem--
		}
		if s.rec(lin.with(i), next, rem) {
			return true
		}
		if s.budget <= 0 {
			return false
		}
	}
	s.memo[key] = true
	return false
}

// apply runs one op against the register, returning the next state
// and whether the op's observation is consistent with st.
func apply(st regState, o Op) (regState, bool) {
	switch o.Kind {
	case KPut:
		return regState{present: true, val: o.Arg}, true
	case KDelete:
		return regState{}, true
	case KGet:
		if !o.Done {
			return st, false // dropped in checkKey; defensive
		}
		if o.Found != st.present {
			return st, false
		}
		if st.present && o.Val != st.val {
			return st, false
		}
		return st, true
	}
	return st, false
}

// bitset is a small immutable bitset used as the memo key together
// with the register state.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) with(i int) bitset {
	nb := make(bitset, len(b))
	copy(nb, b)
	nb[i/64] |= 1 << uint(i%64)
	return nb
}

func (b bitset) key(st regState) string {
	var sb strings.Builder
	sb.Grow(len(b)*8 + 10)
	for _, w := range b {
		for sh := 0; sh < 64; sh += 8 {
			sb.WriteByte(byte(w >> uint(sh)))
		}
	}
	if st.present {
		sb.WriteByte(1)
		for sh := 0; sh < 64; sh += 8 {
			sb.WriteByte(byte(st.val >> uint(sh)))
		}
	} else {
		sb.WriteByte(0)
	}
	return sb.String()
}
