package linearize

import (
	"testing"
	"time"
)

// ms builds a duration in milliseconds for compact fixtures.
func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func put(c int, key string, v uint64, inv, ret int) Op {
	return Op{Client: c, Kind: KPut, Key: key, Arg: v, Invoke: ms(inv), Return: ms(ret), Done: true}
}

func get(c int, key string, v uint64, inv, ret int) Op {
	return Op{Client: c, Kind: KGet, Key: key, Found: true, Val: v, Invoke: ms(inv), Return: ms(ret), Done: true}
}

func getAbsent(c int, key string, inv, ret int) Op {
	return Op{Client: c, Kind: KGet, Key: key, Found: false, Invoke: ms(inv), Return: ms(ret), Done: true}
}

func del(c int, key string, inv, ret int) Op {
	return Op{Client: c, Kind: KDelete, Key: key, Invoke: ms(inv), Return: ms(ret), Done: true}
}

func pending(o Op) Op {
	o.Done = false
	o.Return = 0
	return o
}

func wantVerdict(t *testing.T, h []Op, want Verdict) {
	t.Helper()
	got := Check(h, 0)
	if got.Verdict != want {
		t.Fatalf("verdict = %v, want %v\n%s", got.Verdict, want, got)
	}
}

func TestSequentialHistory(t *testing.T) {
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		get(0, "a", 1, 20, 30),
		put(0, "a", 2, 40, 50),
		get(0, "a", 2, 60, 70),
		del(0, "a", 80, 90),
		getAbsent(0, "a", 100, 110),
	}, Linearizable)
}

func TestConcurrentWritesEitherOrderOK(t *testing.T) {
	// Two overlapping puts; a later read may see either one.
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 20),
		put(1, "a", 2, 5, 25),
		get(2, "a", 1, 30, 40),
	}, Linearizable)
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 20),
		put(1, "a", 2, 5, 25),
		get(2, "a", 2, 30, 40),
	}, Linearizable)
}

func TestReadDuringWriteMaySeeEitherValue(t *testing.T) {
	// A get concurrent with a put may see the old or the new value.
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		put(0, "a", 2, 20, 40),
		get(1, "a", 1, 25, 35),
	}, Linearizable)
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		put(0, "a", 2, 20, 40),
		get(1, "a", 2, 25, 35),
	}, Linearizable)
}

func TestStaleReadViolation(t *testing.T) {
	// The put completed before the get was invoked, yet the get saw
	// the older value: a stale read.
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		put(0, "a", 2, 20, 30),
		get(1, "a", 1, 40, 50),
	}, Violation)
}

func TestLostUpdateViolation(t *testing.T) {
	// An acknowledged write is never observed again: reads strictly
	// after it keep returning the previous value.
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		put(1, "a", 2, 20, 30), // acked...
		get(0, "a", 1, 40, 50), // ...but both later reads miss it
		get(1, "a", 1, 60, 70),
	}, Violation)
}

func TestSplitBrainWriteViolation(t *testing.T) {
	// Two clients each read their own write after both writes
	// completed — impossible in any single order of a register.
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		put(1, "a", 2, 0, 10),
		get(0, "a", 1, 20, 30),
		get(1, "a", 2, 20, 30),
	}, Violation)
}

func TestReadAfterDeleteViolation(t *testing.T) {
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		del(0, "a", 20, 30),
		get(1, "a", 1, 40, 50),
	}, Violation)
}

func TestPendingWriteMayTakeEffect(t *testing.T) {
	// A put whose response was lost may still have been applied; a
	// later read seeing it is legal...
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		pending(put(1, "a", 2, 20, 0)),
		get(0, "a", 2, 30, 40),
	}, Linearizable)
	// ...and so is a read that never sees it.
	wantVerdict(t, []Op{
		put(0, "a", 1, 0, 10),
		pending(put(1, "a", 2, 20, 0)),
		get(0, "a", 1, 30, 40),
	}, Linearizable)
}

func TestPendingWriteCannotFlipFlop(t *testing.T) {
	// A pending write takes effect at most once: the value cannot
	// reappear after being overwritten.
	wantVerdict(t, []Op{
		pending(put(0, "a", 2, 0, 0)),
		put(1, "a", 1, 5, 15),
		get(2, "a", 2, 20, 30), // pending put linearized here
		put(1, "a", 3, 40, 50),
		get(2, "a", 2, 60, 70), // ...it cannot apply again
	}, Violation)
}

func TestPendingGetIgnored(t *testing.T) {
	// A get without a response constrains nothing, even if its
	// recorded observation would be absurd.
	h := []Op{
		put(0, "a", 1, 0, 10),
		pending(get(1, "a", 999, 20, 0)),
		get(0, "a", 1, 30, 40),
	}
	wantVerdict(t, h, Linearizable)
}

func TestKeysCheckedIndependently(t *testing.T) {
	// A violation on one key is reported even when other keys are
	// clean, and the witness names the right key.
	h := []Op{
		put(0, "clean", 7, 0, 10),
		get(1, "clean", 7, 20, 30),
		put(0, "bad", 1, 0, 10),
		put(0, "bad", 2, 20, 30),
		get(1, "bad", 1, 40, 50),
	}
	r := Check(h, 0)
	if r.Verdict != Violation || r.Key != "bad" {
		t.Fatalf("got %v on key %q, want Violation on %q\n%s", r.Verdict, r.Key, "bad", r)
	}
	if len(r.Ops) != 3 {
		t.Fatalf("witness has %d ops, want 3 (only the violating key's)", len(r.Ops))
	}
}

func TestAbsentThenPresent(t *testing.T) {
	wantVerdict(t, []Op{
		getAbsent(0, "a", 0, 10),
		put(1, "a", 1, 20, 30),
		get(0, "a", 1, 40, 50),
	}, Linearizable)
	// Absent read after a completed put with no delete: violation.
	wantVerdict(t, []Op{
		put(1, "a", 1, 0, 10),
		getAbsent(0, "a", 20, 30),
	}, Violation)
}

func TestBudgetExhaustion(t *testing.T) {
	// Many concurrent writes with an unsatisfiable read force the
	// search to enumerate; a tiny budget must yield Exhausted, not a
	// false pass or a hang.
	var h []Op
	for i := 0; i < 12; i++ {
		h = append(h, put(i, "a", uint64(i+1), 0, 100))
	}
	h = append(h, get(20, "a", 999, 200, 210))
	r := Check(h, 50)
	if r.Verdict != Exhausted {
		t.Fatalf("verdict = %v, want Exhausted", r.Verdict)
	}
}

func TestEmptyAndTrivialHistories(t *testing.T) {
	wantVerdict(t, nil, Linearizable)
	wantVerdict(t, []Op{pending(put(0, "a", 1, 0, 0))}, Linearizable)
	wantVerdict(t, []Op{pending(get(0, "a", 1, 0, 0))}, Linearizable)
}
