package linearize

import (
	"testing"
	"time"
)

// FuzzCheck decodes an arbitrary byte string into a history and
// asserts the checker terminates without panicking and returns a
// defined verdict. A tight budget keeps each input fast; Exhausted is
// an acceptable outcome, a panic or hang is not.
func FuzzCheck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 2, 3, 4})
	f.Add([]byte{
		0, 0, 1, 0, 10, // put a=1 [0,10]
		1, 1, 1, 20, 30, // get a=1 [20,30]
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h []Op
		for i := 0; i+5 <= len(data) && len(h) < 40; i += 5 {
			b := data[i : i+5]
			inv := time.Duration(b[3]) * time.Millisecond
			ret := inv + time.Duration(b[4])*time.Millisecond
			o := Op{
				Client: int(b[0] % 8),
				Kind:   Kind(b[0] / 8 % 3),
				Key:    string(rune('a' + b[1]%4)),
				Arg:    uint64(b[2] % 8),
				Found:  b[2]%2 == 0,
				Val:    uint64(b[2] / 2 % 8),
				Invoke: inv,
				Return: ret,
				Done:   b[4] != 0xff,
			}
			h = append(h, o)
		}
		r := Check(h, 50_000)
		switch r.Verdict {
		case Linearizable, Violation, Exhausted:
		default:
			t.Fatalf("undefined verdict %d", r.Verdict)
		}
		if r.Verdict != Linearizable && r.Key == "" && len(h) > 0 {
			t.Fatalf("non-pass verdict %v without a witness key", r.Verdict)
		}
	})
}
