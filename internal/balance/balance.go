// Package balance implements the load- and memory-balancing analysis
// of Section 5.4. A single memgest group concentrates parity data and
// parity work on the d redundancy nodes (the unfilled rectangles of
// Figure 3); creating s+d memgest groups and rotating their role
// assignment round-robin over the nodes equalizes both memory and
// recovery workload. This package computes the rotated assignments and
// quantifies the imbalance either layout produces for a set of
// schemes, which is what the ablation benchmark reports.
package balance

import (
	"fmt"

	"ring/internal/proto"
)

// Assignment maps the roles of one memgest group onto physical nodes.
type Assignment struct {
	// Coords[i] is the node coordinating shard i.
	Coords []proto.NodeID
	// Redundant[j] is the j-th redundancy node.
	Redundant []proto.NodeID
}

// Rotated returns the s+d rotated assignments of Section 5.4: group g
// assigns shard i to node (g+i) mod (s+d) and redundancy slot j to
// node (g+s+j) mod (s+d). Every node coordinates s of the s+d groups
// and serves as a redundancy node in the remaining d.
func Rotated(s, d int) []Assignment {
	if s < 1 || d < 0 {
		panic(fmt.Sprintf("balance: invalid group shape s=%d d=%d", s, d))
	}
	n := s + d
	out := make([]Assignment, n)
	for g := 0; g < n; g++ {
		a := Assignment{
			Coords:    make([]proto.NodeID, s),
			Redundant: make([]proto.NodeID, d),
		}
		for i := 0; i < s; i++ {
			a.Coords[i] = proto.NodeID((g + i) % n)
		}
		for j := 0; j < d; j++ {
			a.Redundant[j] = proto.NodeID((g + s + j) % n)
		}
		out[g] = a
	}
	return out
}

// Load is the per-node resource accounting of one layout.
type Load struct {
	// DataBytes is primary plus redundancy bytes stored.
	DataBytes float64
	// MetaBytes counts metadata hashtable bytes (parity nodes hold
	// the metadata of every shard in their stripe).
	MetaBytes float64
	// PutWork counts messages handled per logical put (coordinator
	// dispatch plus redundancy application).
	PutWork float64
}

// schemeLoads returns per-role loads for one memgest of the given
// scheme holding `data` primary bytes in total, with `meta` metadata
// bytes per shard.
//
// Coordinator of shard i: data/s primary bytes, meta metadata, 1 unit
// of put work per put. SRS parity node: data/k parity bytes (parity is
// not stretched), s*meta metadata, and it participates in every put of
// every shard. Rep replica: it holds a full copy of each shard it
// replicates.
func schemeLoads(sc proto.Scheme, data, meta float64) (coord, redundant Load) {
	s := float64(sc.S)
	coord = Load{DataBytes: data / s, MetaBytes: meta, PutWork: 1}
	switch sc.Kind {
	case proto.SchemeSRS:
		redundant = Load{
			DataBytes: data / float64(sc.K),
			MetaBytes: s * meta,
			PutWork:   s, // one parity update per put of any shard
		}
	case proto.SchemeRep:
		// Each replica set takes the first r-1 redundancy candidates;
		// with r-1 <= d every redundancy node replicates every shard
		// it is chosen for. For the analysis we charge the average.
		if sc.R > 1 {
			redundant = Load{
				DataBytes: data / s * float64(sc.R-1),
				MetaBytes: s * meta,
				PutWork:   s,
			}
		}
	}
	return coord, redundant
}

// Imbalance reports max/mean of a per-node metric; 1.0 is perfectly
// balanced.
func Imbalance(perNode []float64) float64 {
	if len(perNode) == 0 {
		return 1
	}
	max, sum := perNode[0], 0.0
	for _, v := range perNode {
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(perNode))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// Analyze computes per-node memory loads for a set of schemes, each
// holding `dataPerMemgest` bytes, under either a single group (the
// Figure 3 layout) or the rotated layout. It returns the per-node
// total bytes.
func Analyze(schemes []proto.Scheme, s, d int, dataPerMemgest, metaPerShard float64, rotated bool) []float64 {
	n := s + d
	nodes := make([]float64, n)
	groups := []Assignment{{
		Coords:    seq(0, s),
		Redundant: seq(s, d),
	}}
	if rotated {
		groups = Rotated(s, d)
	}
	for gi, g := range groups {
		// Shards are partitioned across groups: each group carries
		// 1/len(groups) of the data.
		frac := 1.0 / float64(len(groups))
		_ = gi
		for _, sc := range schemes {
			coord, red := schemeLoads(sc, dataPerMemgest*frac, metaPerShard*frac)
			for _, nd := range g.Coords {
				nodes[nd] += coord.DataBytes + coord.MetaBytes
			}
			redCount := sc.RedundantNodes()
			for j, nd := range g.Redundant {
				if j >= redCount && sc.Kind == proto.SchemeSRS {
					continue // only m parity nodes are used
				}
				share := 1.0
				if sc.Kind == proto.SchemeRep {
					// Replica bytes split across the chosen replicas.
					if redCount == 0 {
						continue
					}
					if j >= min(redCount, d) {
						continue
					}
					share = 1 / float64(min(redCount, d))
				}
				nodes[nd] += (red.DataBytes + red.MetaBytes) * share
			}
		}
	}
	return nodes
}

func seq(start, n int) []proto.NodeID {
	out := make([]proto.NodeID, n)
	for i := range out {
		out[i] = proto.NodeID(start + i)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
