package balance

import (
	"testing"

	"ring/internal/proto"
)

func TestRotatedShape(t *testing.T) {
	groups := Rotated(3, 2)
	if len(groups) != 5 {
		t.Fatalf("%d groups, want s+d=5", len(groups))
	}
	// Group 0 is the identity layout.
	if groups[0].Coords[0] != 0 || groups[0].Redundant[0] != 3 {
		t.Fatalf("group 0 wrong: %+v", groups[0])
	}
	// Group 1 is rotated by one.
	if groups[1].Coords[0] != 1 || groups[1].Redundant[1] != 0 {
		t.Fatalf("group 1 wrong: %+v", groups[1])
	}
}

func TestRotatedIsBalanced(t *testing.T) {
	// Every node must coordinate exactly s groups and be redundant in
	// exactly d groups.
	s, d := 3, 2
	coordCount := make(map[proto.NodeID]int)
	redCount := make(map[proto.NodeID]int)
	for _, g := range Rotated(s, d) {
		for _, n := range g.Coords {
			coordCount[n]++
		}
		for _, n := range g.Redundant {
			redCount[n]++
		}
	}
	for n := proto.NodeID(0); n < 5; n++ {
		if coordCount[n] != s {
			t.Fatalf("node %d coordinates %d groups, want %d", n, coordCount[n], s)
		}
		if redCount[n] != d {
			t.Fatalf("node %d redundant in %d groups, want %d", n, redCount[n], d)
		}
	}
}

func TestRotatedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape accepted")
		}
	}()
	Rotated(0, 2)
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{1, 1, 1}); got != 1 {
		t.Fatalf("balanced imbalance = %v", got)
	}
	if got := Imbalance([]float64{2, 1, 0}); got != 2 {
		t.Fatalf("imbalance = %v, want 2", got)
	}
	if got := Imbalance(nil); got != 1 {
		t.Fatal("empty input")
	}
	if got := Imbalance([]float64{0, 0}); got != 1 {
		t.Fatal("zero metric")
	}
}

func TestRotationRemovesImbalance(t *testing.T) {
	// The Figure 3 memgest set on 5 nodes: a single group leaves the
	// two redundancy nodes heavier (SRS parity is data/k > data/s, and
	// they carry every scheme's redundancy); rotation equalizes.
	schemes := []proto.Scheme{
		proto.Rep(3, 3),
		proto.SRS(2, 1, 3),
		proto.SRS(3, 2, 3),
	}
	single := Analyze(schemes, 3, 2, 1e9, 1e6, false)
	rotated := Analyze(schemes, 3, 2, 1e9, 1e6, true)
	si, ri := Imbalance(single), Imbalance(rotated)
	if si < 1.05 {
		t.Fatalf("single group should be imbalanced, got %v", si)
	}
	if ri > 1.01 {
		t.Fatalf("rotated layout should be balanced, got %v", ri)
	}
	// Total bytes must be conserved across layouts.
	var ts, tr float64
	for i := range single {
		ts += single[i]
		tr += rotated[i]
	}
	if d := ts - tr; d > 1e-3*ts || d < -1e-3*ts {
		t.Fatalf("layouts store different totals: %v vs %v", ts, tr)
	}
}

func TestAnalyzeUnreliableScheme(t *testing.T) {
	// Rep(1) has no redundancy: all bytes on coordinators either way.
	single := Analyze([]proto.Scheme{proto.Rep(1, 3)}, 3, 2, 9e8, 0, false)
	if single[0] != 3e8 || single[3] != 0 {
		t.Fatalf("Rep(1) distribution wrong: %v", single)
	}
}
