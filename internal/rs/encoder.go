package rs

import (
	"errors"
	"fmt"

	"ring/internal/gf"
)

// Encoder implements systematic RS(k,m) coding: k data shards are
// stored verbatim, m parity shards are linear combinations given by
// the generator matrix G, so the full coding matrix is H = [I; G].
type Encoder struct {
	k, m int
	// h is the (k+m) x k coding matrix [I; G].
	h Matrix
}

var (
	// ErrShardCount is returned when the number of shards passed to an
	// operation does not match the code parameters.
	ErrShardCount = errors.New("rs: wrong number of shards")
	// ErrShardSize is returned when shards have inconsistent sizes.
	ErrShardSize = errors.New("rs: shards have inconsistent sizes")
	// ErrTooFewShards is returned when fewer than k shards survive.
	ErrTooFewShards = errors.New("rs: too few shards to reconstruct")
)

// NewEncoder constructs an RS(k,m) encoder. It requires k >= 1,
// m >= 0, and k+m <= 256 (the field size bounds the number of
// distinguishable shards).
func NewEncoder(k, m int) (*Encoder, error) {
	if k < 1 {
		return nil, fmt.Errorf("rs: k must be >= 1, got %d", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("rs: m must be >= 0, got %d", m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("rs: k+m must be <= 256, got %d", k+m)
	}
	e := &Encoder{k: k, m: m, h: buildCodingMatrix(k, m)}
	// Pre-build the word-wide product tables for every generator
	// coefficient so the lazy 128 KiB builds happen here, not on the
	// first encode of the commit path.
	for j := 0; j < m; j++ {
		gf.WarmTables(e.h[k+j]...)
	}
	return e, nil
}

// buildCodingMatrix produces H = [I; G] with the property that any k
// rows are linearly independent, which holds exactly when every square
// submatrix of G is nonsingular. G is a Cauchy matrix
// (G[i][j] = 1/(x_i + y_j) with all x_i, y_j distinct), which has that
// property, normalized by column scaling (which preserves it) so that
// the first parity row is all ones. The all-ones first row makes the
// m=1 codes pure XOR, matching Eqn. (4) of the paper
// (P1 = D1 ^ D2 ^ ...) and the generator convention g_1j = j^0 = 1 of
// the Vandermonde description in Section 3.2.
func buildCodingMatrix(k, m int) Matrix {
	h := NewMatrix(k+m, k)
	for i := 0; i < k; i++ {
		h[i][i] = 1
	}
	if m == 0 {
		return h
	}
	// Cauchy points: x_i = i for parity rows, y_j = m+j for data
	// columns. All 2^8 field elements are distinct integers, so
	// x_i ^ y_j != 0 as long as i != m+j, which holds by construction
	// for k+m <= 256.
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			h[k+i][j] = gf.Inv(byte(i) ^ byte(m+j))
		}
	}
	// Scale each column so row k (the first parity row) is all ones.
	for j := 0; j < k; j++ {
		c := gf.Inv(h[k][j])
		for i := 0; i < m; i++ {
			h[k+i][j] = gf.Mul(h[k+i][j], c)
		}
	}
	return h
}

// DataShards returns k.
func (e *Encoder) DataShards() int { return e.k }

// ParityShards returns m.
func (e *Encoder) ParityShards() int { return e.m }

// TotalShards returns k+m.
func (e *Encoder) TotalShards() int { return e.k + e.m }

// CodingMatrix returns a copy of H = [I; G].
func (e *Encoder) CodingMatrix() Matrix { return e.h.Clone() }

// GeneratorRow returns a copy of row j (0-based) of the generator
// matrix G, i.e. the coefficients applied to the k data shards to form
// parity shard j.
func (e *Encoder) GeneratorRow(j int) []byte {
	if j < 0 || j >= e.m {
		panic(fmt.Sprintf("rs: parity row %d out of range [0,%d)", j, e.m))
	}
	return append([]byte(nil), e.h[e.k+j]...)
}

// Coefficient returns G[parity][data]: the factor multiplying data
// shard `data` in parity shard `parity`. This single byte is what the
// delta update rule P' = P XOR g*delta needs.
func (e *Encoder) Coefficient(parity, data int) byte {
	if parity < 0 || parity >= e.m {
		panic(fmt.Sprintf("rs: parity index %d out of range [0,%d)", parity, e.m))
	}
	if data < 0 || data >= e.k {
		panic(fmt.Sprintf("rs: data index %d out of range [0,%d)", data, e.k))
	}
	return e.h[e.k+parity][data]
}

func checkShardSizes(shards [][]byte) (int, error) {
	size := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
	}
	if size < 0 {
		return 0, ErrShardSize
	}
	return size, nil
}

// Encode computes the m parity shards for the given k data shards.
// All data shards must be non-nil and equally sized. The returned
// parity shards have the same size.
func (e *Encoder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != e.k {
		return nil, fmt.Errorf("%w: got %d data shards, want %d", ErrShardCount, len(data), e.k)
	}
	size, err := checkShardSizes(data)
	if err != nil {
		return nil, err
	}
	for _, s := range data {
		if s == nil {
			return nil, fmt.Errorf("%w: nil data shard", ErrShardSize)
		}
	}
	parity := make([][]byte, e.m)
	for j := 0; j < e.m; j++ {
		p := make([]byte, size)
		row := e.h[e.k+j]
		// First shard multiplies straight into p (it is fresh zeros);
		// the rest accumulate.
		gf.MulSlice(row[0], data[0], p)
		for i := 1; i < len(data); i++ {
			gf.MulSliceXor(row[i], data[i], p)
		}
		parity[j] = p
	}
	return parity, nil
}

// EncodeInto is like Encode but writes into caller-provided parity
// buffers, which must be m equally sized slices matching the data
// shard size. It avoids allocation in hot paths.
func (e *Encoder) EncodeInto(data, parity [][]byte) error {
	if len(data) != e.k || len(parity) != e.m {
		return ErrShardCount
	}
	size, err := checkShardSizes(data)
	if err != nil {
		return err
	}
	for j, p := range parity {
		if len(p) != size {
			return ErrShardSize
		}
		row := e.h[e.k+j]
		// The first multiply overwrites p, so no zeroing pass is
		// needed before the accumulating XORs.
		gf.MulSlice(row[0], data[0], p)
		for i := 1; i < len(data); i++ {
			gf.MulSliceXor(row[i], data[i], p)
		}
	}
	return nil
}

// ParityDelta computes, for every parity shard, the delta to XOR into
// it when data shard dataIdx changes by `delta` (delta = old XOR new).
// This implements the paper's update rule: the parity node XORs the
// stored parity with the update multiplied by the matrix coefficient.
func (e *Encoder) ParityDelta(dataIdx int, delta []byte) [][]byte {
	out := make([][]byte, e.m)
	for j := 0; j < e.m; j++ {
		d := make([]byte, len(delta))
		gf.MulSlice(e.Coefficient(j, dataIdx), delta, d)
		out[j] = d
	}
	return out
}

// Verify recomputes parity from the data shards and reports whether it
// matches the provided parity shards.
func (e *Encoder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != e.k+e.m {
		return false, ErrShardCount
	}
	parity, err := e.Encode(shards[:e.k])
	if err != nil {
		return false, err
	}
	for j, p := range parity {
		got := shards[e.k+j]
		if len(got) != len(p) {
			return false, nil
		}
		for i := range p {
			if p[i] != got[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct fills in the nil entries of shards (length k+m, data
// shards first) from any k surviving shards. Surviving shards are left
// untouched; missing ones are allocated and recomputed.
//
// Recovery follows the paper: choose k linearly independent surviving
// rows of H, invert them to get a decoding matrix, and multiply the
// surviving shards by the rows corresponding to the missing data
// blocks. Missing parity is then re-encoded from the recovered data.
func (e *Encoder) Reconstruct(shards [][]byte) error {
	if len(shards) != e.k+e.m {
		return ErrShardCount
	}
	present := make([]int, 0, e.k)
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		}
	}
	if len(present) < e.k {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, len(present), e.k+e.m, e.k)
	}
	size, err := checkShardSizes(shards)
	if err != nil {
		return err
	}

	allDataPresent := true
	for i := 0; i < e.k; i++ {
		if shards[i] == nil {
			allDataPresent = false
			break
		}
	}

	if !allDataPresent {
		// Build the decoding matrix from the first k surviving rows.
		// Any k rows of H are independent (MDS), so the first k work.
		rows := present[:e.k]
		sub := e.h.PickRows(rows)
		dec, err := sub.Invert()
		if err != nil {
			return fmt.Errorf("rs: decode submatrix singular: %w", err)
		}
		inputs := make([][]byte, e.k)
		for i, r := range rows {
			inputs[i] = shards[r]
		}
		for i := 0; i < e.k; i++ {
			if shards[i] != nil {
				continue
			}
			out := make([]byte, size)
			gf.MulSlice(dec[i][0], inputs[0], out)
			for c := 1; c < len(inputs); c++ {
				gf.MulSliceXor(dec[i][c], inputs[c], out)
			}
			shards[i] = out
		}
	}

	// Recompute any missing parity directly from the (now complete)
	// data shards; this is identical to encoding.
	for j := 0; j < e.m; j++ {
		if shards[e.k+j] != nil {
			continue
		}
		out := make([]byte, size)
		row := e.h[e.k+j]
		gf.MulSlice(row[0], shards[0], out)
		for i := 1; i < e.k; i++ {
			gf.MulSliceXor(row[i], shards[i], out)
		}
		shards[e.k+j] = out
	}
	return nil
}

// ReconstructShard recovers a single missing shard (by index, data
// shards first) from the provided surviving shards map and returns it.
// It is the building block of the on-demand block recovery path, where
// a parity node gathers any k blocks of the stripe and decodes exactly
// one block.
func (e *Encoder) ReconstructShard(idx int, survivors map[int][]byte) ([]byte, error) {
	if idx < 0 || idx >= e.k+e.m {
		return nil, fmt.Errorf("rs: shard index %d out of range", idx)
	}
	if len(survivors) < e.k {
		return nil, fmt.Errorf("%w: %d survivors, need %d", ErrTooFewShards, len(survivors), e.k)
	}
	shards := make([][]byte, e.k+e.m)
	n := 0
	for i, s := range survivors {
		if i < 0 || i >= e.k+e.m || i == idx {
			continue
		}
		if n == e.k {
			break
		}
		shards[i] = s
		n++
	}
	if err := e.Reconstruct(shards); err != nil {
		return nil, err
	}
	return shards[idx], nil
}

// SplitJoin helpers ---------------------------------------------------

// Split divides data into k equally sized shards, zero-padding the
// tail. The shard size is ceil(len(data)/k).
func (e *Encoder) Split(data []byte) [][]byte {
	shardSize := (len(data) + e.k - 1) / e.k
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, e.k)
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		lo := i * shardSize
		if lo < len(data) {
			hi := lo + shardSize
			if hi > len(data) {
				hi = len(data)
			}
			copy(shards[i], data[lo:hi])
		}
	}
	return shards
}

// Join concatenates the k data shards and truncates to size bytes,
// reversing Split.
func (e *Encoder) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < e.k {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, size)
	for i := 0; i < e.k && len(out) < size; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("rs: data shard %d missing in Join", i)
		}
		out = append(out, shards[i]...)
	}
	if len(out) < size {
		return nil, fmt.Errorf("rs: joined %d bytes, want %d", len(out), size)
	}
	return out[:size], nil
}
