package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ring/internal/gf"
)

func mustEncoder(t testing.TB, k, m int) *Encoder {
	t.Helper()
	e, err := NewEncoder(k, m)
	if err != nil {
		t.Fatalf("NewEncoder(%d,%d): %v", k, m, err)
	}
	return e
}

func randShards(rng *rand.Rand, n, size int) [][]byte {
	s := make([][]byte, n)
	for i := range s {
		s[i] = make([]byte, size)
		rng.Read(s[i])
	}
	return s
}

func TestNewEncoderValidation(t *testing.T) {
	for _, c := range []struct{ k, m int }{{0, 1}, {-1, 2}, {3, -1}, {200, 100}} {
		if _, err := NewEncoder(c.k, c.m); err == nil {
			t.Errorf("NewEncoder(%d,%d) should fail", c.k, c.m)
		}
	}
	if _, err := NewEncoder(1, 0); err != nil {
		t.Errorf("NewEncoder(1,0): %v", err)
	}
	if _, err := NewEncoder(128, 128); err != nil {
		t.Errorf("NewEncoder(128,128): %v", err)
	}
}

func TestCodingMatrixSystematic(t *testing.T) {
	for _, c := range []struct{ k, m int }{{2, 1}, {3, 1}, {3, 2}, {5, 4}, {7, 5}} {
		e := mustEncoder(t, c.k, c.m)
		h := e.CodingMatrix()
		top := h.SubMatrix(0, c.k, 0, c.k)
		if !top.Equal(Identity(c.k)) {
			t.Fatalf("RS(%d,%d): top of H is not identity:\n%v", c.k, c.m, top)
		}
	}
}

func TestCodingMatrixMDS(t *testing.T) {
	// Any k rows of H must be linearly independent: exhaustively check
	// all k-subsets for small codes.
	for _, c := range []struct{ k, m int }{{2, 1}, {2, 2}, {3, 2}, {3, 3}, {4, 3}} {
		e := mustEncoder(t, c.k, c.m)
		n := c.k + c.m
		idx := make([]int, c.k)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == c.k {
				sub := e.h.PickRows(idx)
				if sub.Rank() != c.k {
					t.Fatalf("RS(%d,%d): rows %v dependent", c.k, c.m, idx)
				}
				return
			}
			for i := start; i < n; i++ {
				idx[depth] = i
				rec(i+1, depth+1)
			}
		}
		rec(0, 0)
	}
}

func TestEncodeXorParityForM1(t *testing.T) {
	// With one parity shard the generator row must be all ones
	// (pure XOR), matching Eqn. (4) of the paper: P = D1 ^ D2 ^ ...
	for k := 2; k <= 6; k++ {
		e := mustEncoder(t, k, 1)
		row := e.GeneratorRow(0)
		for i, v := range row {
			if v != 1 {
				t.Fatalf("RS(%d,1) generator row[%d] = %d, want 1", k, i, v)
			}
		}
	}
	e := mustEncoder(t, 2, 1)
	data := [][]byte{{0xa0, 0x01}, {0x0b, 0x10}}
	parity, err := e.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0xab, 0x11}
	if !bytes.Equal(parity[0], want) {
		t.Fatalf("XOR parity = %x, want %x", parity[0], want)
	}
}

func TestEncodeVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ k, m int }{{2, 1}, {3, 2}, {4, 2}, {6, 3}} {
		e := mustEncoder(t, c.k, c.m)
		data := randShards(rng, c.k, 512)
		parity, err := e.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		all := append(append([][]byte{}, data...), parity...)
		ok, err := e.Verify(all)
		if err != nil || !ok {
			t.Fatalf("RS(%d,%d) Verify = %v, %v", c.k, c.m, ok, err)
		}
		// Corrupt one byte; Verify must fail.
		all[0][3] ^= 0xff
		ok, err = e.Verify(all)
		if err != nil || ok {
			t.Fatalf("RS(%d,%d) Verify after corruption = %v, %v", c.k, c.m, ok, err)
		}
	}
}

func TestEncodeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := mustEncoder(t, 3, 2)
	data := randShards(rng, 3, 256)
	want, err := e.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	parity := randShards(rng, 2, 256) // dirty buffers must be zeroed
	if err := e.EncodeInto(data, parity); err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if !bytes.Equal(parity[j], want[j]) {
			t.Fatalf("EncodeInto parity %d mismatch", j)
		}
	}
	if err := e.EncodeInto(data, randShards(rng, 2, 100)); err != ErrShardSize {
		t.Fatalf("size mismatch: got %v", err)
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range []struct{ k, m int }{{2, 1}, {3, 2}, {4, 3}} {
		e := mustEncoder(t, c.k, c.m)
		data := randShards(rng, c.k, 128)
		parity, err := e.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		orig := append(append([][]byte{}, data...), parity...)
		n := c.k + c.m
		// Enumerate every erasure pattern of size <= m.
		for mask := 0; mask < 1<<n; mask++ {
			erased := 0
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					erased++
				}
			}
			if erased == 0 || erased > c.m {
				continue
			}
			shards := make([][]byte, n)
			for i := range shards {
				if mask&(1<<i) == 0 {
					shards[i] = append([]byte(nil), orig[i]...)
				}
			}
			if err := e.Reconstruct(shards); err != nil {
				t.Fatalf("RS(%d,%d) mask %b: %v", c.k, c.m, mask, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], orig[i]) {
					t.Fatalf("RS(%d,%d) mask %b shard %d wrong", c.k, c.m, mask, i)
				}
			}
		}
	}
}

func TestReconstructTooFew(t *testing.T) {
	e := mustEncoder(t, 3, 2)
	shards := make([][]byte, 5)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 8)
	if err := e.Reconstruct(shards); err == nil {
		t.Fatal("expected failure with 2 of 5 shards")
	}
}

func TestReconstructShard(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e := mustEncoder(t, 3, 2)
	data := randShards(rng, 3, 64)
	parity, _ := e.Encode(data)
	// Recover data shard 1 from data0, parity0, parity1.
	got, err := e.ReconstructShard(1, map[int][]byte{0: data[0], 3: parity[0], 4: parity[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1]) {
		t.Fatal("ReconstructShard returned wrong data")
	}
	// Too few survivors.
	if _, err := e.ReconstructShard(1, map[int][]byte{0: data[0]}); err == nil {
		t.Fatal("expected too-few error")
	}
}

func TestParityDeltaMatchesReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ k, m int }{{2, 1}, {3, 2}, {5, 3}} {
		e := mustEncoder(t, c.k, c.m)
		data := randShards(rng, c.k, 200)
		parity, _ := e.Encode(data)
		// Mutate shard idx and apply delta updates.
		for idx := 0; idx < c.k; idx++ {
			newShard := make([]byte, 200)
			rng.Read(newShard)
			delta := make([]byte, 200)
			copy(delta, data[idx])
			gf.XorSlice(newShard, delta) // delta = old ^ new
			pd := e.ParityDelta(idx, delta)

			updated := make([][]byte, c.m)
			for j := range parity {
				updated[j] = append([]byte(nil), parity[j]...)
				gf.XorSlice(pd[j], updated[j])
			}

			// Ground truth: re-encode with the new shard.
			newData := make([][]byte, c.k)
			copy(newData, data)
			newData[idx] = newShard
			want, _ := e.Encode(newData)
			for j := range want {
				if !bytes.Equal(updated[j], want[j]) {
					t.Fatalf("RS(%d,%d) delta update of shard %d parity %d mismatch", c.k, c.m, idx, j)
				}
			}
		}
	}
}

func TestSplitJoin(t *testing.T) {
	e := mustEncoder(t, 3, 2)
	for _, n := range []int{0, 1, 2, 3, 10, 100, 101} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		shards := e.Split(data)
		if len(shards) != 3 {
			t.Fatalf("Split returned %d shards", len(shards))
		}
		got, err := e.Join(shards, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: round trip failed", n)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	e := mustEncoder(t, 3, 2)
	if _, err := e.Encode(make([][]byte, 2)); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	if _, err := e.Encode([][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 5)}); err != ErrShardSize {
		t.Fatalf("uneven sizes: got %v", err)
	}
	if _, err := e.Encode([][]byte{make([]byte, 4), nil, make([]byte, 4)}); err == nil {
		t.Fatal("nil data shard accepted")
	}
}

// Property: for random data, erasing any m random shards and
// reconstructing always restores the original (quick-checked).
func TestReconstructProperty(t *testing.T) {
	e := mustEncoder(t, 4, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randShards(rng, 4, 96)
		parity, _ := e.Encode(data)
		orig := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, 6)
		for i := range shards {
			shards[i] = append([]byte(nil), orig[i]...)
		}
		// Erase two distinct random shards.
		a := rng.Intn(6)
		b := rng.Intn(6)
		for b == a {
			b = rng.Intn(6)
		}
		shards[a], shards[b] = nil, nil
		if err := e.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeRS32_1KiB(b *testing.B) {
	e := mustEncoder(b, 3, 2)
	rng := rand.New(rand.NewSource(1))
	data := randShards(rng, 3, 1024)
	parity := randShards(rng, 2, 1024)
	b.SetBytes(3 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.EncodeInto(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS32_1KiB(b *testing.B) {
	e := mustEncoder(b, 3, 2)
	rng := rand.New(rand.NewSource(2))
	data := randShards(rng, 3, 1024)
	parity, _ := e.Encode(data)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := [][]byte{nil, data[1], data[2], parity[0], nil}
		if err := e.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
