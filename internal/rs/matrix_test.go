package rs

import (
	"math/rand"
	"testing"

	"ring/internal/gf"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if id[i][j] != want {
				t.Fatalf("Identity[%d][%d] = %d", i, j, id[i][j])
			}
		}
	}
}

func TestVandermondeEntries(t *testing.T) {
	v := Vandermonde(4, 3)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			if v[r][c] != gf.Pow(byte(r), c) {
				t.Fatalf("V[%d][%d] = %d, want %d", r, c, v[r][c], gf.Pow(byte(r), c))
			}
		}
	}
}

func TestMulByIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(5, 5)
	for i := range m {
		rng.Read(m[i])
	}
	if !m.Mul(Identity(5)).Equal(m) {
		t.Fatal("m * I != m")
	}
	if !Identity(5).Mul(m).Equal(m) {
		t.Fatal("I * m != m")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 8; n++ {
		// Retry until we draw an invertible matrix (overwhelmingly likely).
		for tries := 0; ; tries++ {
			m := NewMatrix(n, n)
			for i := range m {
				rng.Read(m[i])
			}
			inv, err := m.Invert()
			if err != nil {
				if tries > 20 {
					t.Fatalf("n=%d: no invertible matrix found", n)
				}
				continue
			}
			if !m.Mul(inv).Equal(Identity(n)) {
				t.Fatalf("n=%d: m * m^-1 != I", n)
			}
			if !inv.Mul(m).Equal(Identity(n)) {
				t.Fatalf("n=%d: m^-1 * m != I", n)
			}
			break
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(3, 3)
	m[0][0], m[0][1], m[0][2] = 1, 2, 3
	copy(m[1], m[0]) // duplicate row -> singular
	m[2][0], m[2][1], m[2][2] = 4, 5, 6
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestRank(t *testing.T) {
	if got := Identity(4).Rank(); got != 4 {
		t.Fatalf("rank(I4) = %d", got)
	}
	m := NewMatrix(3, 4)
	m[0] = []byte{1, 0, 0, 0}
	m[1] = []byte{0, 1, 0, 0}
	m[2] = []byte{1, 1, 0, 0} // row0 + row1
	if got := m.Rank(); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
	z := NewMatrix(2, 2)
	if got := z.Rank(); got != 0 {
		t.Fatalf("rank(zero) = %d", got)
	}
}

func TestVandermondeSquareInvertible(t *testing.T) {
	// Square Vandermonde with distinct points must be invertible.
	for n := 1; n <= 10; n++ {
		v := Vandermonde(n, n)
		if _, err := v.Invert(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSubMatrixAndPickRows(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := range m {
		for j := range m[i] {
			m[i][j] = byte(10*i + j)
		}
	}
	s := m.SubMatrix(1, 3, 0, 2)
	if s.Rows() != 2 || s.Cols() != 2 || s[0][0] != 10 || s[1][1] != 21 {
		t.Fatalf("SubMatrix wrong: %v", s)
	}
	p := m.PickRows([]int{2, 0})
	if p[0][0] != 20 || p[1][0] != 0 {
		t.Fatalf("PickRows wrong: %v", p)
	}
	// Mutating the copy must not affect the original.
	s[0][0] = 99
	if m[1][0] == 99 {
		t.Fatal("SubMatrix aliases original")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 2))
}
