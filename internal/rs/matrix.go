// Package rs implements systematic Reed-Solomon erasure coding over
// GF(2^8), the RS(k,m) building block that Stretched Reed-Solomon
// (package srs) expands.
//
// The encoding matrix is H = [I; G] of shape (k+m) x k (Eqn. (1) of
// the paper): the identity rows pass the k data blocks through and
// the generator rows G produce the m parity blocks. G is derived from
// a Vandermonde matrix and normalized so that any k rows of H are
// linearly independent, giving the MDS property: the data survives
// any m simultaneous block losses.
package rs

import (
	"errors"
	"fmt"

	"ring/internal/gf"
)

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix [][]byte

// NewMatrix allocates a zero rows x cols matrix.
func NewMatrix(rows, cols int) Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("rs: invalid matrix shape %dx%d", rows, cols))
	}
	backing := make([]byte, rows*cols)
	m := make(Matrix, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// Vandermonde returns the rows x cols matrix with entries a_ij = i^j
// (row index raised to column index), the classical construction whose
// square submatrices built from distinct rows are invertible.
func Vandermonde(rows, cols int) Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m[r][c] = gf.Pow(byte(r), c)
		}
	}
	return m
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return len(m) }

// Cols returns the number of columns.
func (m Matrix) Cols() int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	out := NewMatrix(m.Rows(), m.Cols())
	for i, row := range m {
		copy(out[i], row)
	}
	return out
}

// Mul returns the matrix product m x other.
func (m Matrix) Mul(other Matrix) Matrix {
	if m.Cols() != other.Rows() {
		panic(fmt.Sprintf("rs: shape mismatch %dx%d * %dx%d", m.Rows(), m.Cols(), other.Rows(), other.Cols()))
	}
	out := NewMatrix(m.Rows(), other.Cols())
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < other.Cols(); c++ {
			var acc byte
			for k := 0; k < m.Cols(); k++ {
				acc ^= gf.Mul(m[r][k], other[k][c])
			}
			out[r][c] = acc
		}
	}
	return out
}

// SubMatrix returns the matrix slice [r0,r1) x [c0,c1) as a copy.
func (m Matrix) SubMatrix(r0, r1, c0, c1 int) Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out[r-r0], m[r][c0:c1])
	}
	return out
}

// PickRows returns a copy of the given rows, in order.
func (m Matrix) PickRows(rows []int) Matrix {
	out := NewMatrix(len(rows), m.Cols())
	for i, r := range rows {
		copy(out[i], m[r])
	}
	return out
}

// ErrSingular is returned when a matrix that must be invertible is not.
var ErrSingular = errors.New("rs: matrix is singular")

// Invert returns the inverse of the square matrix m via Gauss-Jordan
// elimination on the augmented matrix [m | I].
func (m Matrix) Invert() (Matrix, error) {
	n := m.Rows()
	if n != m.Cols() {
		panic(fmt.Sprintf("rs: cannot invert non-square %dx%d matrix", m.Rows(), m.Cols()))
	}
	work := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	if err := work.gaussJordan(n); err != nil {
		return nil, err
	}
	return work.SubMatrix(0, n, n, 2*n), nil
}

// gaussJordan reduces the left n columns of the augmented matrix to
// the identity, applying the same operations to the remaining columns.
func (m Matrix) gaussJordan(n int) error {
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Scale the pivot row to make the pivot 1.
		if p := m[col][col]; p != 1 {
			inv := gf.Inv(p)
			for c := range m[col] {
				m[col][c] = gf.Mul(m[col][c], inv)
			}
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			gf.MulSliceXor(f, m[col], m[r])
		}
	}
	return nil
}

// Rank returns the rank of m over GF(2^8).
func (m Matrix) Rank() int {
	work := m.Clone()
	rows, cols := work.Rows(), work.Cols()
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		inv := gf.Inv(work[rank][col])
		for c := col; c < cols; c++ {
			work[rank][c] = gf.Mul(work[rank][c], inv)
		}
		for r := 0; r < rows; r++ {
			if r == rank || work[r][col] == 0 {
				continue
			}
			gf.MulSliceXor(work[r][col], work[rank], work[r])
		}
		rank++
	}
	return rank
}

// Equal reports whether two matrices have identical shape and entries.
func (m Matrix) Equal(other Matrix) bool {
	if m.Rows() != other.Rows() || m.Cols() != other.Cols() {
		return false
	}
	for i, row := range m {
		for j, v := range row {
			if other[i][j] != v {
				return false
			}
		}
	}
	return true
}

// String formats the matrix for debugging.
func (m Matrix) String() string {
	s := ""
	for _, row := range m {
		s += fmt.Sprintf("%3d\n", row)
	}
	return s
}
