package sim

import (
	"fmt"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/store"
)

// Client is a simulated Ring client: it routes by key hash like the
// real client and correlates replies, but lives inside the event loop.
type Client struct {
	sim     *Sim
	addr    string
	cfg     *proto.Config
	nextReq proto.ReqID
	pending map[proto.ReqID]pendingOp
}

type pendingOp struct {
	sentAt time.Duration
	done   func(latency time.Duration, reply proto.Message)
}

// NewClient registers a simulated client on the fabric.
func NewClient(s *Sim, name string, cfg *proto.Config) *Client {
	c := &Client{
		sim:     s,
		addr:    "client/" + name,
		cfg:     cfg,
		nextReq: 1,
		pending: make(map[proto.ReqID]pendingOp),
	}
	s.RegisterClient(c.addr, c.onMessage)
	return c
}

// Addr returns the client's fabric address.
func (c *Client) Addr() string { return c.addr }

// SetConfig updates the client's routing view (e.g. after simulated
// failover).
func (c *Client) SetConfig(cfg *proto.Config) { c.cfg = cfg }

func (c *Client) onMessage(now time.Duration, _ string, msg proto.Message) {
	var req proto.ReqID
	switch r := msg.(type) {
	case *proto.PutReply:
		req = r.Req
	case *proto.GetReply:
		req = r.Req
	case *proto.DeleteReply:
		req = r.Req
	case *proto.MoveReply:
		req = r.Req
	case *proto.MemgestReply:
		req = r.Req
	case *proto.ResolveReply:
		req = r.Req
	default:
		return
	}
	op, ok := c.pending[req]
	if !ok {
		return
	}
	delete(c.pending, req)
	if op.done != nil {
		op.done(now-op.sentAt, msg)
	}
}

func (c *Client) coordAddr(key string) string {
	return core.NodeAddr(c.cfg.CoordinatorOf(store.KeyHash(key)))
}

// do sends a request at virtual time `at` and invokes done with the
// measured latency when the reply arrives.
func (c *Client) do(at time.Duration, to string, build func(proto.ReqID) proto.Message, done func(time.Duration, proto.Message)) {
	c.sim.At(at, func(now time.Duration) {
		req := c.nextReq
		c.nextReq++
		c.pending[req] = pendingOp{sentAt: now, done: done}
		c.sim.Send(c.addr, to, build(req))
	})
}

// PutAt schedules a put.
func (c *Client) PutAt(at time.Duration, key string, value []byte, mg proto.MemgestID, done func(time.Duration, *proto.PutReply)) {
	c.do(at, c.coordAddr(key), func(req proto.ReqID) proto.Message {
		return &proto.Put{Req: req, Key: key, Value: value, Memgest: mg}
	}, func(lat time.Duration, m proto.Message) {
		if r, ok := m.(*proto.PutReply); ok && done != nil {
			done(lat, r)
		}
	})
}

// GetAt schedules a get.
func (c *Client) GetAt(at time.Duration, key string, done func(time.Duration, *proto.GetReply)) {
	c.do(at, c.coordAddr(key), func(req proto.ReqID) proto.Message {
		return &proto.Get{Req: req, Key: key}
	}, func(lat time.Duration, m proto.Message) {
		if r, ok := m.(*proto.GetReply); ok && done != nil {
			done(lat, r)
		}
	})
}

// MoveAt schedules a move.
func (c *Client) MoveAt(at time.Duration, key string, mg proto.MemgestID, done func(time.Duration, *proto.MoveReply)) {
	c.do(at, c.coordAddr(key), func(req proto.ReqID) proto.Message {
		return &proto.Move{Req: req, Key: key, Memgest: mg}
	}, func(lat time.Duration, m proto.Message) {
		if r, ok := m.(*proto.MoveReply); ok && done != nil {
			done(lat, r)
		}
	})
}

// DeleteAt schedules a delete.
func (c *Client) DeleteAt(at time.Duration, key string, done func(time.Duration, *proto.DeleteReply)) {
	c.do(at, c.coordAddr(key), func(req proto.ReqID) proto.Message {
		return &proto.Delete{Req: req, Key: key}
	}, func(lat time.Duration, m proto.Message) {
		if r, ok := m.(*proto.DeleteReply); ok && done != nil {
			done(lat, r)
		}
	})
}

// PutSync performs a put and runs the simulation until it completes,
// returning the latency. Only valid when no other traffic is pending.
func (c *Client) PutSync(key string, value []byte, mg proto.MemgestID) (time.Duration, *proto.PutReply, error) {
	var lat time.Duration
	var reply *proto.PutReply
	c.PutAt(c.sim.Now(), key, value, mg, func(l time.Duration, r *proto.PutReply) {
		lat, reply = l, r
	})
	for reply == nil && c.sim.Step() {
	}
	if reply == nil {
		return 0, nil, fmt.Errorf("sim: put %q got no reply", key)
	}
	return lat, reply, nil
}

// GetSync performs a get synchronously.
func (c *Client) GetSync(key string) (time.Duration, *proto.GetReply, error) {
	var lat time.Duration
	var reply *proto.GetReply
	c.GetAt(c.sim.Now(), key, func(l time.Duration, r *proto.GetReply) {
		lat, reply = l, r
	})
	for reply == nil && c.sim.Step() {
	}
	if reply == nil {
		return 0, nil, fmt.Errorf("sim: get %q got no reply", key)
	}
	return lat, reply, nil
}

// MoveSync performs a move synchronously.
func (c *Client) MoveSync(key string, mg proto.MemgestID) (time.Duration, *proto.MoveReply, error) {
	var lat time.Duration
	var reply *proto.MoveReply
	c.MoveAt(c.sim.Now(), key, mg, func(l time.Duration, r *proto.MoveReply) {
		lat, reply = l, r
	})
	for reply == nil && c.sim.Step() {
	}
	if reply == nil {
		return 0, nil, fmt.Errorf("sim: move %q got no reply", key)
	}
	return lat, reply, nil
}
