// Package sim is the discrete-event network-and-CPU simulator that
// stands in for the paper's InfiniBand testbed. It drives the exact
// same core.Node state machines that run in production, but in virtual
// time, with a calibrated cost model:
//
//   - Links have a fixed one-way propagation delay plus a
//     size-proportional serialization term (NIC bandwidth). Outgoing
//     messages of one node share its NIC and are serialized.
//   - Each node has a single CPU (the paper's servers are
//     single-threaded). Handling a message costs a base overhead plus
//     terms proportional to the actual bytes the node copied, XORed
//     into parity, decoded, or installed during recovery — all read
//     from the node's own Stats counters, so the model charges for
//     the work the real implementation performed.
//
// Because the protocol structure (hops, fan-outs, byte counts) is
// real, the relative shapes of the paper's figures — REP1 < REPr <
// SRS put latency, crossovers with object size, throughput saturation
// of a single-threaded coordinator — emerge from execution rather
// than being hard-coded; only the per-unit constants are calibrated.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
)

// CostModel holds the calibrated constants. The defaults approximate
// the paper's testbed: QDR InfiniBand RDMA (about 2 µs one-way for
// small messages) and a 2.4 GHz Xeon running single-threaded servers.
type CostModel struct {
	// NetDelay is the one-way propagation + switch + NIC-to-NIC delay.
	NetDelay time.Duration
	// NetBytesPerSec is the serialization bandwidth of one NIC.
	NetBytesPerSec float64
	// CPUFixed is the per-message handling overhead (dispatch, hash
	// lookups, verb posting).
	CPUFixed time.Duration
	// CPUFixedRepl is the cheaper handling overhead of the redundancy
	// plane (RepAppend/ParityUpdate/Purge apply paths have no client
	// dispatch, routing, or version allocation).
	CPUFixedRepl time.Duration
	// CPUPerByteCopy charges for bytes written into the local store.
	CPUPerByteCopy time.Duration
	// CPUPerByteXor charges for bytes of GF-multiply/XOR parity work.
	CPUPerByteXor time.Duration
	// CPUPerByteDecode charges for erasure-decode bytes (recovery).
	CPUPerByteDecode time.Duration
	// CPUPerByteMeta charges for metadata record installation during
	// recovery.
	CPUPerByteMeta time.Duration
	// CPUPerByteSend charges for staging outgoing message bytes.
	CPUPerByteSend time.Duration
}

// DefaultModel returns constants calibrated so that the Figure 7
// reproduction lands in the paper's range (get ≈ 5 µs, REP1 put
// ≈ 5 µs at small sizes, SRS32 put ≈ 3x REP1 at 2 KiB).
func DefaultModel() CostModel {
	return CostModel{
		NetDelay:         1500 * time.Nanosecond,
		NetBytesPerSec:   3.2e9, // ~26 Gb/s effective of the 40 Gb/s link
		CPUFixed:         1400 * time.Nanosecond,
		CPUFixedRepl:     700 * time.Nanosecond,
		CPUPerByteCopy:   time.Nanosecond / 4,
		CPUPerByteXor:    2 * time.Nanosecond,
		CPUPerByteDecode: time.Nanosecond / 2,
		CPUPerByteMeta:   time.Nanosecond / 4,
		CPUPerByteSend:   time.Nanosecond / 4,
	}
}

// event kinds.
type evKind uint8

const (
	evDeliver evKind = iota + 1 // message arrives at a node or client
	evTick                      // periodic node timer
	evUser                      // scheduled callback (workload arrival)
	evProcess                   // a node CPU picks its next queued message
)

type event struct {
	at   time.Duration
	seq  uint64 // tie-break for determinism
	kind evKind

	to      string
	from    string
	msg     proto.Message
	payload int // wire size

	node proto.NodeID // evTick
	inc  uint64       // target incarnation (evTick, evProcess)
	fn   func(now time.Duration)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// nodeHost wraps a core.Node with its simulated CPU and NIC. Incoming
// messages enter a FIFO queue and are handled one at a time by the
// single simulated CPU — state transitions run at the virtual time the
// CPU reaches them, not at delivery time, so overload behaves like a
// real single-threaded server (queueing delay, not reordering).
type nodeHost struct {
	node      *core.Node
	queue     []queuedMsg
	procAt    bool // an evProcess event is scheduled
	cpuFreeAt time.Duration
	nicFreeAt time.Duration
	dead      bool
	// inc is the node's incarnation, bumped on every Kill and Restart.
	// Node-bound events (ticks, CPU process slots) carry the
	// incarnation they were scheduled for and are discarded on
	// mismatch, so a restarted node never processes events queued for
	// its previous life. In-flight network messages are NOT gated —
	// packets really do arrive at a rebooted machine — and are instead
	// rejected by the rejoining quarantine in core.
	inc       uint64
	tickEvery time.Duration
	lastStats core.Stats
}

type queuedMsg struct {
	from string
	msg  proto.Message
	size int
	tick bool
}

// Sim is one simulation instance. Not safe for concurrent use.
type Sim struct {
	Model CostModel

	now     time.Duration
	seq     uint64
	events  eventHeap
	nodes   map[proto.NodeID]*nodeHost
	clients map[string]func(now time.Duration, from string, msg proto.Message)

	// Boot parameters, kept so Restart can construct a fresh (empty)
	// state machine for a node that crashed.
	cfg0 *proto.Config
	opts core.Options

	// Fault plane (see faults.go).
	faultFn FaultFunc
	blocked map[string]map[string]bool

	// Disk fault plane (see durable.go); nil unless EnableDurable ran.
	dur *durPlane

	// Elasticity control agent (see elastic.go); nil until the first
	// convert/join/leave nemesis step fires.
	elastic *nemesisAgent

	// Delivered counts messages delivered, for sanity checks.
	Delivered uint64
	// BytesOnWire sums delivered payload bytes, for the ablations that
	// compare network cost of different strategies.
	BytesOnWire uint64
	// Faults counts injected message faults, for assertions that a
	// nemesis schedule actually did something.
	Faults FaultStats
}

// New creates a simulator over a booted cluster configuration: one
// state machine per node in the config.
func New(cfg *proto.Config, opts core.Options, model CostModel) *Sim {
	s := &Sim{
		Model:   model,
		nodes:   make(map[proto.NodeID]*nodeHost),
		clients: make(map[string]func(time.Duration, string, proto.Message)),
		cfg0:    cfg.Clone(),
		opts:    opts,
		blocked: make(map[string]map[string]bool),
	}
	for _, id := range cfg.AllNodes() {
		s.nodes[id] = &nodeHost{node: core.New(id, cfg.Clone(), opts)}
	}
	return s
}

// NewFromSpec boots a simulator from a cluster spec.
func NewFromSpec(spec core.ClusterSpec, model CostModel) (*Sim, error) {
	cfg, err := core.BootConfig(spec)
	if err != nil {
		return nil, err
	}
	return New(cfg, spec.Opts, model), nil
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Node returns the state machine of a node (for inspection).
func (s *Sim) Node(id proto.NodeID) *core.Node { return s.nodes[id].node }

// Kill marks a node crashed: its CPU queue is discarded, node-bound
// events already in the heap are invalidated by the incarnation bump,
// and in-flight traffic addressed to it is dropped on delivery. See
// Restart for the other half.
func (s *Sim) Kill(id proto.NodeID) {
	h := s.nodes[id]
	h.dead = true
	h.inc++
	h.queue = nil
	h.procAt = false
	// kill -9 for the simulated disk: unsynced bytes are torn off.
	s.crashDisk(id)
}

// RegisterClient installs a handler for messages sent to a client
// address.
func (s *Sim) RegisterClient(addr string, fn func(now time.Duration, from string, msg proto.Message)) {
	s.clients[addr] = fn
}

// EnableTicks schedules periodic timer events for every node, in node
// ID order: the first ticks share a timestamp and the event heap
// breaks ties by insertion sequence, so map-order insertion would make
// tick processing order — and everything downstream — vary run to run.
func (s *Sim) EnableTicks(every time.Duration) {
	ids := make([]proto.NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := s.nodes[id]
		h.tickEvery = every
		s.push(&event{at: s.now + every, kind: evTick, node: id, inc: h.inc})
	}
}

// At schedules fn at an absolute virtual time.
func (s *Sim) At(at time.Duration, fn func(now time.Duration)) {
	if at < s.now {
		at = s.now
	}
	s.push(&event{at: at, kind: evUser, fn: fn})
}

// Send injects a message from a client address into the fabric.
func (s *Sim) Send(from, to string, msg proto.Message) {
	size := len(proto.Encode(msg))
	s.deliver(s.now+s.Model.NetDelay+s.txTime(size), from, to, msg, size)
}

func (s *Sim) txTime(size int) time.Duration {
	return time.Duration(float64(size) / s.Model.NetBytesPerSec * 1e9)
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// Run processes events until the queue drains or the horizon passes.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 {
		if until > 0 && s.events[0].at > until {
			break
		}
		s.Step()
	}
	if until > s.now {
		s.now = until
	}
}

// Step processes exactly one event; it returns false when the queue is
// empty. It is the building block for callers that must run until a
// condition holds while periodic ticks keep the queue non-empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	switch e.kind {
	case evUser:
		e.fn(s.now)
	case evTick:
		h := s.nodes[e.node]
		if h.dead || e.inc != h.inc {
			return true // stale chain from a previous incarnation
		}
		s.enqueue(h, e.node, queuedMsg{tick: true})
		if h.tickEvery > 0 {
			s.push(&event{at: s.now + h.tickEvery, kind: evTick, node: e.node, inc: h.inc})
		}
	case evDeliver:
		s.Delivered++
		s.BytesOnWire += uint64(e.payload)
		if fn, ok := s.clients[e.to]; ok {
			fn(s.now, e.from, e.msg)
			return true
		}
		id, ok := parseNode(e.to)
		if !ok {
			return true
		}
		h, ok := s.nodes[id]
		if !ok || h.dead {
			return true
		}
		s.enqueue(h, id, queuedMsg{from: e.from, msg: e.msg, size: e.payload})
	case evProcess:
		h := s.nodes[e.node]
		if e.inc != h.inc {
			return true // CPU slot scheduled for a previous incarnation
		}
		h.procAt = false
		if h.dead || len(h.queue) == 0 {
			return true
		}
		qm := h.queue[0]
		h.queue = h.queue[1:]
		s.process(h, e.node, qm)
		if len(h.queue) > 0 {
			h.procAt = true
			s.push(&event{at: h.cpuFreeAt, kind: evProcess, node: e.node, inc: h.inc})
		}
	}
	return true
}

// enqueue appends a message to a node's CPU queue and schedules the
// processor if it is not already scheduled.
func (s *Sim) enqueue(h *nodeHost, id proto.NodeID, qm queuedMsg) {
	h.queue = append(h.queue, qm)
	if h.procAt {
		return
	}
	h.procAt = true
	at := s.now
	if h.cpuFreeAt > at {
		at = h.cpuFreeAt
	}
	s.push(&event{at: at, kind: evProcess, node: id, inc: h.inc})
}

// RunToQuiescence drains all events regardless of horizon.
func (s *Sim) RunToQuiescence() { s.Run(0) }

// process runs one queued message on the node's CPU at the current
// virtual time and schedules its outputs through the NIC.
func (s *Sim) process(h *nodeHost, id proto.NodeID, qm queuedMsg) {
	start := s.now
	var outs []core.Out
	if qm.tick {
		outs = h.node.HandleTick(start)
	} else {
		outs = h.node.HandleMessage(start, qm.from, qm.msg)
	}

	// Charge CPU for the actual work performed, read from the node's
	// own counters. Small control messages (acks, heartbeats, ticks)
	// cost a fraction of a full request dispatch, approximating cheap
	// RDMA completions.
	st := h.node.Stats
	var d time.Duration
	switch {
	case isControl(qm):
		// Acks, heartbeats, commit notices, ticks: cheap completions.
		d = s.Model.CPUFixed / 4
	case isReplicationPlane(qm.msg):
		d = s.Model.CPUFixedRepl
	default:
		d = s.Model.CPUFixed
	}
	d += time.Duration(st.BytesWritten-h.lastStats.BytesWritten) * s.Model.CPUPerByteCopy
	d += time.Duration(st.BytesParityXor-h.lastStats.BytesParityXor) * s.Model.CPUPerByteXor
	d += time.Duration(st.BytesDecoded-h.lastStats.BytesDecoded) * s.Model.CPUPerByteDecode
	d += time.Duration(st.BytesMetaInstalled-h.lastStats.BytesMetaInstalled) * s.Model.CPUPerByteMeta
	d += time.Duration(qm.size) * s.Model.CPUPerByteCopy
	h.lastStats = st

	// Group commit at the batch boundary, BEFORE any outputs escape. A
	// failed fsync crash-stops the node: its acknowledgements for this
	// batch are never sent, exactly like the real runner.
	syncCost, syncOK := s.syncDurable(h, id)
	if !syncOK {
		s.Kill(id)
		return
	}
	d += syncCost

	outBufs := make([]int, len(outs))
	for i, o := range outs {
		size := len(proto.Encode(o.Msg))
		outBufs[i] = size
		d += time.Duration(size) * s.Model.CPUPerByteSend
	}
	done := start + d
	h.cpuFreeAt = done

	// Serialize outgoing messages through the NIC.
	nic := h.nicFreeAt
	if done > nic {
		nic = done
	}
	for i, o := range outs {
		tx := s.txTime(outBufs[i])
		nic += tx
		s.deliver(nic+s.Model.NetDelay, core.NodeAddr(id), o.To, o.Msg, outBufs[i])
	}
	h.nicFreeAt = nic
}

// isReplicationPlane reports whether a message is handled by the
// redundancy apply path rather than the client dispatch path.
func isReplicationPlane(m proto.Message) bool {
	switch m.(type) {
	case *proto.RepAppend, *proto.ParityUpdate, *proto.Purge, *proto.RepCommit:
		return true
	}
	return false
}

// isControl reports whether a queued item is a pure control message
// whose handling approximates a cheap RDMA completion. Client
// operations are never control messages, however small their wire
// size.
func isControl(qm queuedMsg) bool {
	if qm.tick {
		return true
	}
	switch qm.msg.(type) {
	case *proto.RepAck, *proto.ParityAck, *proto.RepCommit,
		*proto.Heartbeat, *proto.HeartbeatAck, *proto.ConfigAck:
		return true
	}
	return false
}

func parseNode(addr string) (proto.NodeID, bool) {
	var id uint32
	if _, err := fmt.Sscanf(addr, "node/%d", &id); err != nil {
		return 0, false
	}
	return proto.NodeID(id), true
}
