package sim

import (
	"time"

	"ring/internal/core"
	"ring/internal/linearize"
	"ring/internal/proto"
	"ring/internal/replog"
)

// ChaosRunSpec fully determines one chaos run: cluster shape, seeded
// workload, seeded (or explicit) nemesis schedule, and horizon. Two
// runs with equal specs produce bit-identical schedules, histories,
// and verdicts — that is what makes `ringchaos -seed N` a repro
// command.
type ChaosRunSpec struct {
	Seed int64
	// Schedule overrides the seed-generated nemesis schedule (used for
	// replaying and shrinking). Nil means GenSchedule(Seed, ..., Active).
	Schedule *Schedule
	// Workload tunes the chaos clients; its Seed field is forced to
	// Seed.
	Workload ChaosOptions
	// Active is the window in which the nemesis acts; it always heals,
	// calms, and restarts by its end.
	Active time.Duration
	// Horizon bounds the whole run (Active plus settle time for
	// retries, failover, and recovery).
	Horizon time.Duration
	// UnsafeAck injects the ack-before-quorum bug (core.Options.
	// ChaosUnsafeAck) to validate that the checker catches it.
	UnsafeAck bool
	// UnsafeConvert injects the ack-before-journal transition bug
	// (core.Options.ChaosUnsafeConvert): converts acknowledge before
	// the destination write is quorum-durable and purge the source
	// eagerly. Only observable with Elasticity (or an explicit schedule
	// containing convert steps).
	UnsafeConvert bool
	// Elasticity makes the seed-generated schedule
	// GenElasticitySchedule: live scheme conversions and join/leave
	// resizes blended into the fault mix, driven by the control agent.
	Elasticity bool
	// CheckBudget caps linearizability search states per key (<=0:
	// linearize.DefaultBudget).
	CheckBudget int
	// Durable activates the disk fault plane: every node runs a real
	// durable engine (fsync=always) on a simulated crash-semantics
	// disk, the seed-generated schedule becomes GenDurableSchedule
	// (kill -9 + recover-from-disk, WAL corruption, fsync faults), and
	// restarted nodes recover from disk instead of rejoining empty.
	Durable bool
}

func (s ChaosRunSpec) withDefaults() ChaosRunSpec {
	if s.Active <= 0 {
		s.Active = 40 * time.Millisecond
	}
	if s.Horizon <= 0 {
		s.Horizon = 4 * s.Active
	}
	return s
}

// ChaosRunResult is everything a driver needs to report, shrink, and
// reproduce.
type ChaosRunResult struct {
	Schedule  Schedule
	History   []linearize.Op
	Check     linearize.Result
	Faults    FaultStats
	Abandoned int
	// ElasticAcked/ElasticAbandoned count control-plane operations
	// (converts, resizes) that completed or ran out of retries; zero on
	// runs without elasticity steps.
	ElasticAcked     int
	ElasticAbandoned int
	// Completed is true when every client finished before the horizon
	// (false usually means the cluster wedged — worth investigating
	// even when the history is clean).
	Completed bool
}

// chaosCluster is the fixed cluster shape chaos runs use: 3 shards,
// 2 redundancy nodes, 2 spares (the paper's Figure 3 layout), and a
// mixed group of RELIABLE memgests only — Rep(1) loses data on a
// crash by design, so including it would make every crash a false
// "violation".
func chaosCluster(unsafeAck, unsafeConvert bool) core.ClusterSpec {
	return core.ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 2,
		Memgests: []proto.Scheme{
			proto.Rep(2, 3),
			proto.Rep(3, 3),
			proto.SRS(2, 1, 3),
			proto.SRS(3, 2, 3),
		},
		Opts: core.Options{
			BlockSize:      4096,
			HeartbeatEvery: 200 * time.Microsecond,
			// FailAfter must sit comfortably above the nemesis's maximum
			// message delay (GenSchedule caps it at 1.5ms): the paper's
			// model is crash-stop with accurate-enough failure detection,
			// so benign jitter must not read as death. A detection
			// timeout below the network's delay bound turns every flaky
			// window into a spurious-failover storm in which live
			// coordinators are deposed mid-write — a fault model the
			// protocol (like the paper's) does not claim to survive.
			FailAfter:          4 * time.Millisecond,
			ChaosUnsafeAck:     unsafeAck,
			ChaosUnsafeConvert: unsafeConvert,
		},
	}
}

// chaosMemgests are the memgest IDs of chaosCluster, in boot order.
func chaosMemgests() []proto.MemgestID { return []proto.MemgestID{1, 2, 3, 4} }

// RunChaos executes one deterministic chaos run: boot the Figure 3
// cluster in the simulator, apply the nemesis schedule, drive the
// seeded workload, and check the recorded history for per-key
// linearizability.
func RunChaos(spec ChaosRunSpec) ChaosRunResult {
	spec = spec.withDefaults()
	cluster := chaosCluster(spec.UnsafeAck, spec.UnsafeConvert)
	cfg, err := core.BootConfig(cluster)
	if err != nil {
		panic(err) // static spec; cannot fail
	}
	s := New(cfg, cluster.Opts, DefaultModel())
	if spec.Durable {
		// fsync=always: an acknowledged write is a durable write, so
		// every committed entry must survive any kill in the schedule.
		if err := s.EnableDurable(spec.Seed, replog.DurableOptions{Policy: replog.FsyncAlways}); err != nil {
			panic(err) // fresh in-memory disks; cannot fail
		}
	}
	s.EnableTicks(100 * time.Microsecond)

	w := spec.Workload.withDefaults()
	w.Seed = spec.Seed
	if len(w.Memgests) == 0 {
		w.Memgests = chaosMemgests()
	}
	if w.ThinkTime <= 0 {
		// Spread each client's operations over the nemesis window so
		// faults land on in-flight traffic.
		w.ThinkTime = spec.Active / time.Duration(w.OpsPerClient)
	}

	sched := GenSchedule(spec.Seed, cfg.AllNodes(), spec.Active)
	if spec.Durable {
		sched = GenDurableSchedule(spec.Seed, cfg.AllNodes(), spec.Active)
	}
	if spec.Elasticity {
		// Converts target the workload's keyspace and memgests so
		// transitions land on keys with live traffic.
		sched = GenElasticitySchedule(spec.Seed, cfg.AllNodes(), spec.Active, w.Keys, w.Memgests)
	}
	if spec.Schedule != nil {
		sched = *spec.Schedule
	}
	sched.Apply(s, spec.Seed*1_000_000_007+12345)

	h := NewChaosHarness(s, cfg, w)
	hist := h.Run(spec.Horizon)

	res := ChaosRunResult{
		Schedule:  sched,
		History:   hist,
		Check:     linearize.Check(hist, spec.CheckBudget),
		Faults:    s.Faults,
		Abandoned: h.Abandoned,
		Completed: h.Done(),
	}
	if s.elastic != nil {
		res.ElasticAcked = s.elastic.Acked
		res.ElasticAbandoned = s.elastic.Abandoned
	}
	return res
}

// ShrinkSchedule greedily removes nemesis steps while the violation
// persists: repeated passes try dropping each step and re-running the
// (deterministic) run with the reduced schedule, keeping any removal
// that still yields a non-linearizable verdict. The result is a
// locally minimal schedule for the same seed. Returns the shrunk
// schedule and the number of full runs spent.
func ShrinkSchedule(spec ChaosRunSpec, sched Schedule) (Schedule, int) {
	runs := 0
	fails := func(cand Schedule) bool {
		runs++
		s := spec
		s.Schedule = &cand
		return RunChaos(s).Check.Verdict == linearize.Violation
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(sched.Steps); i++ {
			cand := sched.Without(i)
			if fails(cand) {
				sched = cand
				improved = true
				i-- // the next step shifted into this slot
			}
		}
	}
	return sched, runs
}
