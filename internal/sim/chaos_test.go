package sim

import (
	"fmt"
	"testing"
	"time"

	"ring/internal/core"
	"ring/internal/linearize"
	"ring/internal/proto"
	"ring/internal/store"
)

// TestChaosSeedsLinearizable is the bread-and-butter chaos check: a
// band of seeds, each a full generated nemesis schedule (crashes,
// partitions, flaky links) over the mixed Rep/SRS cluster, must yield
// a linearizable history. On failure it prints the one-line repro.
func TestChaosSeedsLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := RunChaos(ChaosRunSpec{Seed: seed})
		if r.Check.Verdict != linearize.Linearizable {
			t.Errorf("seed %d: %v\nrepro: ringchaos -seed %d\nschedule: %s\n%s",
				seed, r.Check.Verdict, seed, r.Schedule, r.Check)
		}
		if !r.Completed {
			t.Errorf("seed %d: workload did not complete before the horizon", seed)
		}
	}
}

// TestChaosDeterministicReplay is the replayability contract behind
// `ringchaos -seed N`: two runs of the same spec must produce the
// same schedule, the same fault counts, and a bit-identical history.
func TestChaosDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{2, 5, 13} {
		a := RunChaos(ChaosRunSpec{Seed: seed})
		b := RunChaos(ChaosRunSpec{Seed: seed})
		if a.Schedule.String() != b.Schedule.String() {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", seed, a.Schedule, b.Schedule)
		}
		if a.Faults != b.Faults {
			t.Fatalf("seed %d: fault stats differ: %+v vs %+v", seed, a.Faults, b.Faults)
		}
		if len(a.History) != len(b.History) {
			t.Fatalf("seed %d: history lengths differ: %d vs %d", seed, len(a.History), len(b.History))
		}
		for i := range a.History {
			if a.History[i] != b.History[i] {
				t.Fatalf("seed %d: history[%d] differs:\n%v\n%v", seed, i, a.History[i], b.History[i])
			}
		}
	}
}

// TestChaosUnsafeAckCaught validates the whole pipeline end to end: an
// injected ack-before-quorum bug must produce a violation on some
// seed, the shrinker must reduce the schedule to a subset, and the
// shrunk schedule — round-tripped through its string form, as a repro
// command would — must still reproduce the violation.
func TestChaosUnsafeAckCaught(t *testing.T) {
	var spec ChaosRunSpec
	var full ChaosRunResult
	found := false
	for seed := int64(1); seed <= 20; seed++ {
		spec = ChaosRunSpec{Seed: seed, UnsafeAck: true}
		full = RunChaos(spec)
		if full.Check.Verdict == linearize.Violation {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("injected ack-before-quorum bug not caught on any seed in 1..20")
	}

	shrunk, runs := ShrinkSchedule(spec, full.Schedule)
	if len(shrunk.Steps) > len(full.Schedule.Steps) {
		t.Fatalf("shrink grew the schedule: %d -> %d steps", len(full.Schedule.Steps), len(shrunk.Steps))
	}
	if runs == 0 {
		t.Fatal("shrinker did not run")
	}
	// Every surviving step must come from the original schedule.
	orig := make(map[string]bool)
	for _, st := range full.Schedule.Steps {
		orig[st.String()] = true
	}
	for _, st := range shrunk.Steps {
		if !orig[st.String()] {
			t.Fatalf("shrunk step %q not in original schedule", st)
		}
	}

	parsed, err := ParseSchedule(shrunk.String())
	if err != nil {
		t.Fatalf("shrunk schedule does not re-parse: %v", err)
	}
	spec.Schedule = &parsed
	if r := RunChaos(spec); r.Check.Verdict != linearize.Violation {
		t.Fatalf("shrunk schedule %q does not reproduce the violation (got %v)",
			shrunk, r.Check.Verdict)
	}
	t.Logf("seed %d: caught, shrunk %d -> %d steps in %d runs: %s",
		spec.Seed, len(full.Schedule.Steps), len(shrunk.Steps), runs, shrunk)
}

// TestChaosScheduleRoundTrip pins the schedule wire format: generated
// schedules must survive String -> ParseSchedule unchanged.
func TestChaosScheduleRoundTrip(t *testing.T) {
	cfg := mustChaosConfig(t)
	for seed := int64(1); seed <= 10; seed++ {
		s := GenSchedule(seed, cfg.AllNodes(), 40*time.Millisecond)
		p, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.String() != s.String() {
			t.Fatalf("seed %d: round trip changed schedule:\n%s\n%s", seed, s, p)
		}
		if len(p.Steps) != len(s.Steps) {
			t.Fatalf("seed %d: step count changed", seed)
		}
	}
	if _, err := ParseSchedule("1ms:frobnicate:3"); err == nil {
		t.Fatal("unknown step kind must not parse")
	}
	if _, err := ParseSchedule("1ms:kill"); err == nil {
		t.Fatal("kill without node must not parse")
	}
}

// TestKillRestartStaleEvents pins the incarnation fencing: after Kill,
// a node's previous state machine must never run again — no tick, no
// queued CPU slot, no delivery — even while the simulation keeps
// stepping, and a Restart brings up a fresh quarantined instance that
// rejoins without inheriting any of that state.
func TestKillRestartStaleEvents(t *testing.T) {
	spec := chaosCluster(false, false)
	s, err := NewFromSpec(spec, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTicks(100 * time.Microsecond)
	cfg := mustChaosConfig(t)

	// Drive traffic so the victim has queued work when it dies.
	h := NewChaosHarness(s, cfg, ChaosOptions{
		Seed: 7, Clients: 3, Keys: 2, OpsPerClient: 40,
		ThinkTime: 50 * time.Microsecond, Memgests: chaosMemgests(),
	})

	victim := cfg.CoordinatorOf(store.KeyHash("k0"))
	killed := false
	var old *core.Node
	s.At(2*time.Millisecond, func(time.Duration) {
		old = s.Node(victim)
		s.Kill(victim)
		killed = true
	})
	s.At(4*time.Millisecond, func(time.Duration) { s.Restart(victim) })

	var eventsAtKill uint64
	for h.running > 0 && s.Now() < 100*time.Millisecond && s.Step() {
		if killed && old != nil && eventsAtKill == 0 {
			eventsAtKill = old.Metrics.Events.Load()
		}
		if killed && old != nil && old.Metrics.Events.Load() > eventsAtKill && eventsAtKill != 0 {
			t.Fatalf("dead incarnation processed %d events after Kill",
				old.Metrics.Events.Load()-eventsAtKill)
		}
	}
	if !killed {
		t.Fatal("kill callback never fired")
	}
	if s.Node(victim) == old {
		t.Fatal("Restart did not install a fresh state machine")
	}
	if s.Dead(victim) {
		t.Fatal("victim still marked dead after Restart")
	}
	res := linearize.Check(h.History(), 0)
	if res.Verdict != linearize.Linearizable {
		t.Fatalf("history not linearizable across kill+restart:\n%s", res)
	}
}

// TestParkedReadsSurviveCoordinatorKill is the parked-get regression:
// reads outstanding against a coordinator when it is killed must not
// hang forever — the client's timeout/re-resolve path must get every
// one re-served after failover, and the total history must stay
// linearizable (no acked write lost, no stale value resurrected).
func TestParkedReadsSurviveCoordinatorKill(t *testing.T) {
	cfg := mustChaosConfig(t)
	victim := cfg.CoordinatorOf(store.KeyHash("k0"))
	sched, err := ParseSchedule(fmt.Sprintf("3ms:kill:%d;30ms:restart:%d", victim, victim))
	if err != nil {
		t.Fatal(err)
	}
	r := RunChaos(ChaosRunSpec{
		Seed:     11,
		Schedule: &sched,
		// A single hot key puts every operation on the victim's shard,
		// so gets are in flight against it at the moment it dies.
		Workload: ChaosOptions{Clients: 3, Keys: 1, OpsPerClient: 30},
	})
	if !r.Completed {
		t.Fatal("workload wedged: some client never finished after the failover")
	}
	if r.Abandoned > 0 {
		t.Fatalf("%d operations exhausted retries; failover should re-serve them", r.Abandoned)
	}
	if r.Check.Verdict != linearize.Linearizable {
		t.Fatalf("history not linearizable across coordinator kill:\n%s", r.Check)
	}
}

// mustChaosConfig boots the canonical chaos cluster configuration.
func mustChaosConfig(t *testing.T) *proto.Config {
	t.Helper()
	cfg, err := core.BootConfig(chaosCluster(false, false))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
