package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
)

func paperSpec() core.ClusterSpec {
	return core.ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 2,
		Memgests: []proto.Scheme{
			proto.Rep(1, 3),    // 1
			proto.Rep(2, 3),    // 2
			proto.Rep(3, 3),    // 3
			proto.Rep(4, 3),    // 4
			proto.SRS(2, 1, 3), // 5
			proto.SRS(3, 1, 3), // 6
			proto.SRS(3, 2, 3), // 7
		},
		Opts: core.Options{BlockSize: 1 << 20},
	}
}

func newSim(t *testing.T) (*Sim, *Client) {
	t.Helper()
	s, err := NewFromSpec(paperSpec(), DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := core.BootConfig(paperSpec())
	return s, NewClient(s, "t", cfg)
}

func TestSimPutGetRoundTrip(t *testing.T) {
	s, c := newSim(t)
	val := bytes.Repeat([]byte("x"), 1024)
	lat, pr, err := c.PutSync("k", val, 7)
	if err != nil || pr.Status != proto.StOK {
		t.Fatalf("put: %v %+v", err, pr)
	}
	if lat <= 0 {
		t.Fatal("zero put latency")
	}
	glat, gr, err := c.GetSync("k")
	if err != nil || gr.Status != proto.StOK || !bytes.Equal(gr.Value, val) {
		t.Fatalf("get: %v %+v", err, gr)
	}
	if glat <= 0 || glat >= lat {
		t.Fatalf("get latency %v should be below SRS32 put latency %v", glat, lat)
	}
	if s.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

// TestSimLatencyOrdering checks the central qualitative result of
// Figure 7: REP1 < REP2/REP3 < REP4 and SRS(3,2) slowest; get latency
// identical across schemes.
func TestSimLatencyOrdering(t *testing.T) {
	_, c := newSim(t)
	val := bytes.Repeat([]byte("v"), 1024)
	lat := map[proto.MemgestID]time.Duration{}
	for mg := proto.MemgestID(1); mg <= 7; mg++ {
		key := fmt.Sprintf("k-%d", mg)
		l, pr, err := c.PutSync(key, val, mg)
		if err != nil || pr.Status != proto.StOK {
			t.Fatalf("put mg %d: %v", mg, err)
		}
		lat[mg] = l
	}
	if !(lat[1] < lat[2] && lat[2] <= lat[3]) {
		t.Fatalf("REP ordering violated: %v %v %v", lat[1], lat[2], lat[3])
	}
	if !(lat[3] < lat[4]) {
		t.Fatalf("REP4 (quorum 2) must exceed REP3 (quorum 1): %v %v", lat[3], lat[4])
	}
	if !(lat[1] < lat[5]) {
		t.Fatalf("SRS21 must exceed REP1: %v %v", lat[1], lat[5])
	}
	// Paper: SRS21 and SRS31 have the same put latency (both replicate
	// to one parity node).
	ratio := float64(lat[5]) / float64(lat[6])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("SRS21 vs SRS31 latency should match: %v %v", lat[5], lat[6])
	}
	if !(lat[7] > lat[6]) {
		t.Fatalf("SRS32 (two parity nodes) must be slowest: %v vs %v", lat[7], lat[6])
	}
	// Gets are scheme-independent.
	var getLat []time.Duration
	for mg := proto.MemgestID(1); mg <= 7; mg++ {
		l, _, err := c.GetSync(fmt.Sprintf("k-%d", mg))
		if err != nil {
			t.Fatal(err)
		}
		getLat = append(getLat, l)
	}
	for _, l := range getLat[1:] {
		r := float64(l) / float64(getLat[0])
		if r < 0.95 || r > 1.05 {
			t.Fatalf("get latencies differ across schemes: %v", getLat)
		}
	}
}

// TestSimAbsoluteScale keeps the calibration honest: small-object REP1
// puts and gets must land in the paper's ~5 µs regime (2–10 µs band),
// and SRS32 put must be roughly 2–4x REP1 at 1 KiB.
func TestSimAbsoluteScale(t *testing.T) {
	_, c := newSim(t)
	small := bytes.Repeat([]byte("s"), 64)
	l1, _, _ := c.PutSync("cal-1", small, 1)
	if l1 < 2*time.Microsecond || l1 > 10*time.Microsecond {
		t.Fatalf("REP1 put(64B) = %v, want ~5µs", l1)
	}
	gl, _, _ := c.GetSync("cal-1")
	if gl < 2*time.Microsecond || gl > 10*time.Microsecond {
		t.Fatalf("get(64B) = %v, want ~5µs", gl)
	}
	kib := bytes.Repeat([]byte("k"), 1024)
	lr, _, _ := c.PutSync("cal-2", kib, 1)
	ls, _, _ := c.PutSync("cal-3", kib, 7)
	ratio := float64(ls) / float64(lr)
	if ratio < 1.8 || ratio > 4.5 {
		t.Fatalf("SRS32/REP1 put ratio = %.2f (%v vs %v), want ~3x", ratio, ls, lr)
	}
}

// TestSimMoveCheaperThanPut reproduces the Figure 8 observation: moving
// a large object into a reliable scheme is cheaper than putting it
// there directly, because the value does not cross the client link.
func TestSimMoveCheaperThanPut(t *testing.T) {
	_, c := newSim(t)
	big := bytes.Repeat([]byte("b"), 2048)
	if _, pr, err := c.PutSync("mv", big, 1); err != nil || pr.Status != proto.StOK {
		t.Fatal(err)
	}
	mlat, mr, err := c.MoveSync("mv", 7)
	if err != nil || mr.Status != proto.StOK {
		t.Fatalf("move: %v", err)
	}
	plat, _, _ := c.PutSync("direct", big, 7)
	if mlat >= plat {
		t.Fatalf("move (%v) should beat direct put (%v) for 2KiB", mlat, plat)
	}
	// Move to the unreliable scheme is nearly size-independent.
	if _, _, err := c.PutSync("mv2", big, 7); err != nil {
		t.Fatal(err)
	}
	m1, _, _ := c.MoveSync("mv2", 1)
	if _, _, err := c.PutSync("mv3", bytes.Repeat([]byte("b"), 64), 7); err != nil {
		t.Fatal(err)
	}
	m2, _, _ := c.MoveSync("mv3", 1)
	ratio := float64(m1) / float64(m2)
	if ratio > 1.6 {
		t.Fatalf("move-to-REP1 latency should be ~size-independent: 2KiB %v vs 64B %v", m1, m2)
	}
}

// TestSimThroughputSaturation drives an open-loop load and checks that
// a single-threaded coordinator saturates: offered load beyond the
// service rate must not increase completions proportionally.
func TestSimThroughputSaturation(t *testing.T) {
	s, c := newSim(t)
	val := bytes.Repeat([]byte("t"), 1024)
	done := 0
	// Offer 2M puts/sec to one coordinator for 50ms of virtual time.
	interval := 500 * time.Nanosecond
	n := 0
	for at := time.Duration(0); at < 50*time.Millisecond; at += interval {
		key := "hot" // single shard
		c.PutAt(at, key, val, 1, func(time.Duration, *proto.PutReply) { done++ })
		n++
	}
	s.RunToQuiescence()
	if done != n {
		t.Fatalf("lost replies: %d of %d", done, n)
	}
	elapsed := s.Now()
	rate := float64(done) / elapsed.Seconds()
	// The single-threaded coordinator should cap out in the hundreds
	// of thousands per second, far below the 2M offered.
	if rate > 1.6e6 {
		t.Fatalf("coordinator served %.0f puts/sec: cost model too cheap", rate)
	}
	if rate < 1e5 {
		t.Fatalf("coordinator served only %.0f puts/sec: cost model too expensive", rate)
	}
}

// TestSimRecovery runs the coordinator-failure experiment inside the
// simulator: kill a coordinator, let the (virtual-time) heartbeats
// elect and promote, and verify data survives.
func TestSimRecovery(t *testing.T) {
	spec := paperSpec()
	spec.Opts.HeartbeatEvery = 20 * time.Microsecond
	spec.Opts.FailAfter = 100 * time.Microsecond
	s, err := NewFromSpec(spec, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := core.BootConfig(spec)
	c := NewClient(s, "r", cfg)

	val := bytes.Repeat([]byte("r"), 512)
	var stored []string
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("rk-%d", i)
		if _, pr, err := c.PutSync(key, val, 7); err != nil || pr.Status != proto.StOK {
			t.Fatal(err)
		}
		stored = append(stored, key)
	}
	// Kill coordinator 1 and run ticks for a while.
	s.Kill(1)
	s.EnableTicks(10 * time.Microsecond)
	s.Run(s.Now() + 10*time.Millisecond)

	lead := s.Node(0)
	if lead.Config().Epoch < 2 {
		t.Fatal("no reconfiguration in virtual time")
	}
	// Route with the new config.
	c.SetConfig(lead.Config().Clone())
	for _, key := range stored {
		_, gr, err := c.GetSync(key)
		if err != nil || gr.Status != proto.StOK || !bytes.Equal(gr.Value, val) {
			t.Fatalf("get %s after simulated failover: %v %v", key, err, gr.Status)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64) {
		s, err := NewFromSpec(paperSpec(), DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		cfg, _ := core.BootConfig(paperSpec())
		c := NewClient(s, "d", cfg)
		for i := 0; i < 20; i++ {
			c.PutAt(time.Duration(i)*time.Microsecond, fmt.Sprintf("k%d", i%5),
				bytes.Repeat([]byte{byte(i)}, 256), proto.MemgestID(i%7+1), nil)
		}
		s.RunToQuiescence()
		return s.Now(), s.Delivered
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Fatalf("simulation not deterministic: (%v,%d) vs (%v,%d)", t1, d1, t2, d2)
	}
}
