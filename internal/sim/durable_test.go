package sim

import (
	"testing"
	"time"

	"ring/internal/linearize"
	"ring/internal/proto"
	"ring/internal/replog"
)

// TestDurableChaosSeedsLinearizable is the disk-fault counterpart of
// the bread-and-butter chaos check: a band of seeds, each a generated
// crash-recovery schedule (kill -9 + recover-from-disk, WAL bit
// flips, fsync faults) over the mixed Rep/SRS cluster with fsync=
// always, must yield a linearizable history — every write the cluster
// acknowledged survives every crash in the schedule.
func TestDurableChaosSeedsLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := RunChaos(ChaosRunSpec{Seed: seed, Durable: true})
		if r.Check.Verdict != linearize.Linearizable {
			t.Errorf("seed %d: %v\nrepro: ringchaos -durable -seed %d\nschedule: %s\n%s",
				seed, r.Check.Verdict, seed, r.Schedule, r.Check)
		}
		if !r.Completed {
			t.Errorf("seed %d: workload did not complete before the horizon", seed)
		}
	}
}

// TestDurableChaosDeterministicReplay pins replayability with the disk
// fault plane active: the crash-truncation points, corruption bits,
// and fsync faults are all seeded, so two runs of the same spec are
// bit-identical.
func TestDurableChaosDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		a := RunChaos(ChaosRunSpec{Seed: seed, Durable: true})
		b := RunChaos(ChaosRunSpec{Seed: seed, Durable: true})
		if a.Schedule.String() != b.Schedule.String() {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", seed, a.Schedule, b.Schedule)
		}
		if a.Faults != b.Faults {
			t.Fatalf("seed %d: fault stats differ: %+v vs %+v", seed, a.Faults, b.Faults)
		}
		if len(a.History) != len(b.History) {
			t.Fatalf("seed %d: history lengths differ: %d vs %d", seed, len(a.History), len(b.History))
		}
		for i := range a.History {
			if a.History[i] != b.History[i] {
				t.Fatalf("seed %d: history[%d] differs:\n%v\n%v", seed, i, a.History[i], b.History[i])
			}
		}
	}
}

// TestDurableScheduleRoundTrip pins the wire format of the new disk
// nemesis steps: generated durable schedules must survive String ->
// ParseSchedule unchanged.
func TestDurableScheduleRoundTrip(t *testing.T) {
	cfg := mustChaosConfig(t)
	seen := map[NemesisKind]bool{}
	for seed := int64(1); seed <= 40; seed++ {
		s := GenDurableSchedule(seed, cfg.AllNodes(), 40*time.Millisecond)
		for _, st := range s.Steps {
			seen[st.Kind] = true
		}
		parsed, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if parsed.String() != s.String() {
			t.Fatalf("seed %d: round trip changed the schedule:\n%s\n%s", seed, s, parsed)
		}
	}
	for _, k := range []NemesisKind{NemKill, NemRestart, NemCorrupt, NemFsyncErr, NemFsyncOK, NemFsyncSlow} {
		if !seen[k] {
			t.Errorf("40 seeds never generated nemesis kind %d", k)
		}
	}
}

// TestDurableCorruptionDetected pins the CRC story end to end inside
// the simulator: kill a node, flip a bit in its WAL, restart it — the
// recovered durable engine must either have truncated the corruption
// away or flagged the log damaged, and in the damaged case the node
// must advertise nothing recovered beyond what the CRC validated; the
// cluster then still serves a linearizable history.
func TestDurableCorruptionDetected(t *testing.T) {
	var victim proto.NodeID = 1
	sched := Schedule{Steps: []NemesisStep{
		{At: 10 * time.Millisecond, Kind: NemKill, A: victim},
		{At: 12 * time.Millisecond, Kind: NemCorrupt, A: victim},
		{At: 16 * time.Millisecond, Kind: NemRestart, A: victim},
	}}
	corrupted := false
	for seed := int64(1); seed <= 10 && !corrupted; seed++ {
		spec := ChaosRunSpec{Seed: seed, Durable: true, Schedule: &sched}
		r := RunChaos(spec)
		if r.Check.Verdict != linearize.Linearizable {
			t.Fatalf("seed %d: corruption broke linearizability: %s\nrepro: ringchaos -durable -seed %d -schedule '%s'",
				seed, r.Check, seed, sched)
		}
		if r.Faults.Corrupted > 0 {
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("no seed in 1..10 produced an actual WAL bit flip")
	}
}

// TestDurableFsyncErrorCrashStops pins fsyncgate semantics in the
// simulator: when a node's disk starts failing fsyncs, the node must
// stop (crash-stop) rather than keep acknowledging writes it cannot
// make durable.
func TestDurableFsyncErrorCrashStops(t *testing.T) {
	cfg := mustChaosConfig(t)
	s := New(cfg, chaosCluster(false, false).Opts, DefaultModel())
	if err := s.EnableDurable(42, replog.DurableOptions{Policy: replog.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	s.EnableTicks(100 * time.Microsecond)

	var victim proto.NodeID = 1
	s.At(2*time.Millisecond, func(time.Duration) { s.FailDisk(victim, true) })
	// Heartbeats and ticks dirty nothing; drive a write through the
	// victim coordinator so its group commit actually fsyncs.
	w := NewChaosHarness(s, cfg, ChaosOptions{
		Clients: 2, OpsPerClient: 40, Seed: 42,
		ThinkTime: 100 * time.Microsecond, Memgests: chaosMemgests(),
	})
	w.Run(20 * time.Millisecond)

	if !s.Dead(victim) {
		t.Fatal("node with a failing disk kept running past its next group commit")
	}
}
