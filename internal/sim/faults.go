package sim

import (
	"time"

	"ring/internal/core"
	"ring/internal/proto"
)

// This file is the simulator's fault plane: crash/restart with
// incarnation fencing, address-pair partitions, and a per-message
// fault hook that can drop, delay, or duplicate traffic. Everything
// runs in virtual time, so a seeded nemesis schedule (nemesis.go)
// replays bit-for-bit.

// FaultAction is the verdict of a FaultFunc for one message about to
// enter the fabric. Zero value = deliver normally. Reordering is not a
// separate knob: delaying some messages and not others reorders them.
type FaultAction struct {
	// Drop discards the message (it never arrives).
	Drop bool
	// Delay postpones arrival by the given extra virtual time.
	Delay time.Duration
	// Duplicate delivers a second copy one NetDelay after the first.
	Duplicate bool
}

// FaultFunc inspects a message at send time and decides its fate. It
// is called in deterministic event order, so a seeded implementation
// makes the whole run replayable. It must not retain msg.
type FaultFunc func(now time.Duration, from, to string, msg proto.Message, size int) FaultAction

// FaultStats counts injected faults.
type FaultStats struct {
	Dropped, Delayed, Duplicated uint64
	// Corrupted counts WAL bit flips that actually landed (a corrupt
	// step on an empty WAL is a no-op).
	Corrupted uint64
}

// SetFaultFunc installs (or, with nil, removes) the message fault
// hook. It is consulted for every message entering the fabric, from
// clients and nodes alike, after the partition check.
func (s *Sim) SetFaultFunc(fn FaultFunc) { s.faultFn = fn }

// Partition bidirectionally blocks traffic between two fabric
// addresses. Messages already in flight are not recalled (they were
// on the wire before the cut).
func (s *Sim) Partition(a, b string) {
	s.block(a, b)
	s.block(b, a)
}

// Heal removes a Partition between two addresses.
func (s *Sim) Heal(a, b string) {
	s.unblock(a, b)
	s.unblock(b, a)
}

// PartitionNodes is Partition over node IDs.
func (s *Sim) PartitionNodes(a, b proto.NodeID) {
	s.Partition(core.NodeAddr(a), core.NodeAddr(b))
}

// HealNodes is Heal over node IDs.
func (s *Sim) HealNodes(a, b proto.NodeID) {
	s.Heal(core.NodeAddr(a), core.NodeAddr(b))
}

// HealAll removes every partition.
func (s *Sim) HealAll() {
	for k := range s.blocked {
		delete(s.blocked, k)
	}
}

func (s *Sim) block(from, to string) {
	m := s.blocked[from]
	if m == nil {
		m = make(map[string]bool)
		s.blocked[from] = m
	}
	m[to] = true
}

func (s *Sim) unblock(from, to string) {
	if m := s.blocked[from]; m != nil {
		delete(m, to)
		if len(m) == 0 {
			delete(s.blocked, from)
		}
	}
}

// Dead reports whether a node is currently crashed.
func (s *Sim) Dead(id proto.NodeID) bool { return s.nodes[id].dead }

// Restart brings a killed node back as a rejoining quarantined state
// machine built from the boot configuration: it knows peer addresses
// but installs no data roles until the current leader re-admits it.
// With the disk fault plane active (EnableDurable) the node recovers
// from its surviving disk state first — replaying the WAL, rebuilding
// its tables up to the durable commit index, and advertising the
// recovered state in its Join so the leader lets it keep its roles and
// delta-sync; otherwise it comes back EMPTY (core.NewRejoining). The
// incarnation bump fences every event scheduled for the previous life.
func (s *Sim) Restart(id proto.NodeID) {
	h := s.nodes[id]
	h.inc++
	h.dead = false
	h.queue = nil
	h.procAt = false
	h.cpuFreeAt = s.now
	h.nicFreeAt = s.now
	h.lastStats = core.Stats{}
	h.node = s.recoverNode(id)
	if h.tickEvery > 0 {
		s.push(&event{at: s.now + h.tickEvery, kind: evTick, node: id, inc: h.inc})
	}
}

// deliver schedules one message's arrival, applying the partition
// table and the fault hook. `at` is the fault-free arrival time
// (sender-side NIC serialization and propagation already included).
func (s *Sim) deliver(at time.Duration, from, to string, msg proto.Message, size int) {
	if s.blocked[from][to] {
		s.Faults.Dropped++
		return
	}
	if s.faultFn != nil {
		a := s.faultFn(s.now, from, to, msg, size)
		if a.Drop {
			s.Faults.Dropped++
			return
		}
		if a.Delay > 0 {
			s.Faults.Delayed++
			at += a.Delay
		}
		if a.Duplicate {
			s.Faults.Duplicated++
			s.push(&event{
				at:   at + s.Model.NetDelay,
				kind: evDeliver, from: from, to: to, msg: msg, payload: size,
			})
		}
	}
	s.push(&event{at: at, kind: evDeliver, from: from, to: to, msg: msg, payload: size})
}
