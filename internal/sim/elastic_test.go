package sim

import (
	"testing"
	"time"

	"ring/internal/linearize"
)

// TestElasticitySeedsLinearizable is the elasticity chaos lane: a band
// of seeds whose schedules blend live scheme conversions and graceful
// join/leave resizes into the usual fault mix, each of which must
// yield a linearizable client history. Across the band the control
// agent must actually land operations — a lane that never completes a
// convert or resize tests nothing.
func TestElasticitySeedsLinearizable(t *testing.T) {
	acked := 0
	for seed := int64(1); seed <= 8; seed++ {
		r := RunChaos(ChaosRunSpec{Seed: seed, Elasticity: true})
		if r.Check.Verdict != linearize.Linearizable {
			t.Errorf("seed %d: %v\nrepro: ringchaos -elasticity -seed %d\nschedule: %s\n%s",
				seed, r.Check.Verdict, seed, r.Schedule, r.Check)
		}
		if !r.Completed {
			t.Errorf("seed %d: workload did not complete before the horizon", seed)
		}
		acked += r.ElasticAcked
	}
	if acked == 0 {
		t.Fatal("no elastic control operation completed on any seed; the lane is inert")
	}
}

// TestElasticityDeterministicReplay extends the replay contract to the
// elasticity lane: same spec, same schedule, same fault counts, same
// history, same control-plane outcome.
func TestElasticityDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		a := RunChaos(ChaosRunSpec{Seed: seed, Elasticity: true})
		b := RunChaos(ChaosRunSpec{Seed: seed, Elasticity: true})
		if a.Schedule.String() != b.Schedule.String() {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", seed, a.Schedule, b.Schedule)
		}
		if a.Faults != b.Faults {
			t.Fatalf("seed %d: fault stats differ: %+v vs %+v", seed, a.Faults, b.Faults)
		}
		if a.ElasticAcked != b.ElasticAcked || a.ElasticAbandoned != b.ElasticAbandoned {
			t.Fatalf("seed %d: control-plane outcomes differ: %d/%d vs %d/%d",
				seed, a.ElasticAcked, a.ElasticAbandoned, b.ElasticAcked, b.ElasticAbandoned)
		}
		if len(a.History) != len(b.History) {
			t.Fatalf("seed %d: history lengths differ: %d vs %d", seed, len(a.History), len(b.History))
		}
		for i := range a.History {
			if a.History[i] != b.History[i] {
				t.Fatalf("seed %d: history[%d] differs:\n%v\n%v", seed, i, a.History[i], b.History[i])
			}
		}
	}
}

// TestElasticityScheduleRoundTrip pins the wire format of the new step
// kinds: generated elasticity schedules must survive String ->
// ParseSchedule unchanged, and malformed elastic steps must not parse.
func TestElasticityScheduleRoundTrip(t *testing.T) {
	cfg := mustChaosConfig(t)
	for seed := int64(1); seed <= 10; seed++ {
		s := GenElasticitySchedule(seed, cfg.AllNodes(), 40*time.Millisecond, 6, chaosMemgests())
		p, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.String() != s.String() {
			t.Fatalf("seed %d: round trip changed schedule:\n%s\n%s", seed, s, p)
		}
	}
	for _, good := range []string{"3ms:convert:2:4", "5ms:leave:5", "9ms:join:5"} {
		p, err := ParseSchedule(good)
		if err != nil {
			t.Fatalf("%q must parse: %v", good, err)
		}
		if p.String() != good {
			t.Fatalf("%q round-tripped to %q", good, p)
		}
	}
	for _, bad := range []string{"3ms:convert:2", "3ms:convert", "5ms:leave", "9ms:join"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("%q must not parse", bad)
		}
	}
}

// TestChaosUnsafeConvertCaught validates the elasticity lane end to
// end the same way TestChaosUnsafeAckCaught validates the write path:
// an injected ack-before-journal transition bug (the convert
// acknowledges before the destination write is quorum-durable and
// eagerly purges the source) must produce a linearizability violation
// on some seed, and the shrunk schedule must still reproduce it after
// a round trip through its string form.
func TestChaosUnsafeConvertCaught(t *testing.T) {
	var spec ChaosRunSpec
	var full ChaosRunResult
	found := false
	for seed := int64(1); seed <= 30; seed++ {
		spec = ChaosRunSpec{Seed: seed, Elasticity: true, UnsafeConvert: true}
		full = RunChaos(spec)
		if full.Check.Verdict == linearize.Violation {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("injected ack-before-journal convert bug not caught on any seed in 1..30")
	}

	shrunk, runs := ShrinkSchedule(spec, full.Schedule)
	if len(shrunk.Steps) > len(full.Schedule.Steps) {
		t.Fatalf("shrink grew the schedule: %d -> %d steps", len(full.Schedule.Steps), len(shrunk.Steps))
	}
	if runs == 0 {
		t.Fatal("shrinker did not run")
	}
	parsed, err := ParseSchedule(shrunk.String())
	if err != nil {
		t.Fatalf("shrunk schedule does not re-parse: %v", err)
	}
	spec.Schedule = &parsed
	if r := RunChaos(spec); r.Check.Verdict != linearize.Violation {
		t.Fatalf("shrunk schedule %q does not reproduce the violation (got %v)",
			shrunk, r.Check.Verdict)
	}
	t.Logf("seed %d: caught, shrunk %d -> %d steps in %d runs: %s",
		spec.Seed, len(full.Schedule.Steps), len(shrunk.Steps), runs, shrunk)
}
