package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"ring/internal/core"
	"ring/internal/linearize"
	"ring/internal/proto"
	"ring/internal/store"
)

// This file is the instrumented workload side of the chaos harness:
// closed-loop clients that issue puts/gets/deletes against the
// simulated cluster, retry and re-resolve through failures like the
// real client library, and record every operation as an
// invocation/response pair for the linearizability checker. All
// randomness comes from seeded generators, so a run is a pure
// function of its seed.

// ChaosOptions parameterizes a chaos workload.
type ChaosOptions struct {
	// Seed drives key/op selection; each client derives its own rng.
	Seed int64
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Keys is the keyspace size. Small keyspaces maximize contention,
	// which is what shakes out consistency bugs.
	Keys int
	// OpsPerClient bounds each client's operation count.
	OpsPerClient int
	// OpTimeout is how long a client waits for a reply before
	// re-resolving and retrying.
	OpTimeout time.Duration
	// OpRetries bounds attempts per operation; past it the operation
	// is abandoned and recorded as pending (it may or may not have
	// taken effect — the checker treats both as allowed).
	OpRetries int
	// ThinkTime paces each client between operations so the workload
	// spans the nemesis window instead of finishing before the first
	// fault fires. RunChaos defaults it to Active/OpsPerClient.
	ThinkTime time.Duration
	// Memgests are the memgest IDs writes are spread over. They must
	// all be reliable schemes (Rep r>=2 or SRS): Rep(1) loses data on
	// a crash by design, which the checker would rightly flag.
	Memgests []proto.MemgestID
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Keys <= 0 {
		o.Keys = 6
	}
	if o.OpsPerClient <= 0 {
		o.OpsPerClient = 50
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 3 * time.Millisecond
	}
	if o.OpRetries <= 0 {
		o.OpRetries = 25
	}
	return o
}

// ChaosHarness owns the chaos clients and the shared history.
type ChaosHarness struct {
	sim     *Sim
	opts    ChaosOptions
	history []linearize.Op
	running int
	nextVal uint64
	// Abandoned counts operations that exhausted their retries.
	Abandoned int
}

// NewChaosHarness registers opts.Clients chaos clients on the fabric.
// Call Run (or Start + manual stepping) afterwards.
func NewChaosHarness(s *Sim, cfg *proto.Config, opts ChaosOptions) *ChaosHarness {
	opts = opts.withDefaults()
	if len(opts.Memgests) == 0 {
		panic("sim: chaos workload needs at least one reliable memgest")
	}
	h := &ChaosHarness{sim: s, opts: opts, nextVal: 1}
	for i := 0; i < opts.Clients; i++ {
		c := &chaosClient{
			h:    h,
			sim:  s,
			idx:  i,
			addr: fmt.Sprintf("client/chaos%d", i),
			cfg:  cfg.Clone(),
			rng:  rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(i)*7919)),
			left: opts.OpsPerClient,
		}
		s.RegisterClient(c.addr, c.onMessage)
		h.running++
		// Stagger starts so clients do not move in lockstep.
		start := time.Duration(i) * 20 * time.Microsecond
		cc := c
		s.At(s.Now()+start, func(now time.Duration) { cc.startNext(now) })
	}
	return h
}

// Run drives the simulation until every client finished or the horizon
// passed (ticks keep the event queue non-empty forever, so a horizon
// is required), then returns the recorded history. Operations still
// in flight at the horizon remain pending in the history.
func (h *ChaosHarness) Run(horizon time.Duration) []linearize.Op {
	for h.running > 0 && h.sim.Now() < horizon && h.sim.Step() {
	}
	return h.history
}

// History returns the recorded history so far.
func (h *ChaosHarness) History() []linearize.Op { return h.history }

// Done reports whether every client completed its operations.
func (h *ChaosHarness) Done() bool { return h.running == 0 }

// chaosOp is one logical operation possibly spanning several attempts.
type chaosOp struct {
	histIdx  int
	kind     linearize.Kind
	key      string
	arg      uint64
	mg       proto.MemgestID
	attempts int
	// reqs holds the request IDs of all outstanding attempts; a reply
	// to ANY of them completes the operation (each attempt's
	// observation falls inside the operation's real-time window).
	reqs map[proto.ReqID]bool
	done bool
}

type chaosClient struct {
	h    *ChaosHarness
	sim  *Sim
	idx  int
	addr string
	cfg  *proto.Config
	rng  *rand.Rand
	left int

	nextReq     proto.ReqID
	cur         *chaosOp
	resolveReqs map[proto.ReqID]bool
	resolveRR   int
}

// scheduleNext queues the next operation after the think-time pause.
func (c *chaosClient) scheduleNext(now time.Duration) {
	if c.h.opts.ThinkTime <= 0 {
		c.startNext(now)
		return
	}
	c.sim.At(now+c.h.opts.ThinkTime, func(tnow time.Duration) { c.startNext(tnow) })
}

func (c *chaosClient) startNext(now time.Duration) {
	if c.left == 0 {
		c.cur = nil
		c.h.running--
		return
	}
	c.left--
	var kind linearize.Kind
	switch r := c.rng.Intn(10); {
	case r < 5:
		kind = linearize.KPut
	case r < 9:
		kind = linearize.KGet
	default:
		kind = linearize.KDelete
	}
	key := fmt.Sprintf("k%d", c.rng.Intn(c.h.opts.Keys))
	op := &chaosOp{
		histIdx: len(c.h.history),
		kind:    kind,
		key:     key,
		mg:      c.h.opts.Memgests[c.rng.Intn(len(c.h.opts.Memgests))],
		reqs:    make(map[proto.ReqID]bool),
	}
	if kind == linearize.KPut {
		op.arg = c.h.nextVal
		c.h.nextVal++
	}
	c.h.history = append(c.h.history, linearize.Op{
		Client: c.idx,
		Kind:   kind,
		Key:    key,
		Arg:    op.arg,
		Invoke: now,
	})
	c.cur = op
	c.sendAttempt(now)
}

// chaosValue encodes a write's value: the 8-byte argument followed by
// deterministic filler of value-dependent length, so different writes
// exercise different block layouts and a read can recover the
// argument from the first 8 bytes.
func chaosValue(arg uint64) []byte {
	n := 8 + int(arg%121)
	v := make([]byte, n)
	binary.BigEndian.PutUint64(v, arg)
	for i := 8; i < n; i++ {
		v[i] = byte(arg) + byte(i)
	}
	return v
}

// chaosObserved recovers the argument hash from a read value.
func chaosObserved(v []byte) uint64 {
	if len(v) >= 8 {
		return binary.BigEndian.Uint64(v)
	}
	f := fnv.New64a()
	f.Write(v)
	return f.Sum64()
}

func (c *chaosClient) coordAddr(key string) string {
	return core.NodeAddr(c.cfg.CoordinatorOf(store.KeyHash(key)))
}

func (c *chaosClient) sendAttempt(now time.Duration) {
	op := c.cur
	req := c.nextReq
	c.nextReq++
	op.reqs[req] = true
	var msg proto.Message
	switch op.kind {
	case linearize.KPut:
		msg = &proto.Put{Req: req, Key: op.key, Value: chaosValue(op.arg), Memgest: op.mg}
	case linearize.KGet:
		msg = &proto.Get{Req: req, Key: op.key}
	case linearize.KDelete:
		msg = &proto.Delete{Req: req, Key: op.key}
	}
	c.sim.Send(c.addr, c.coordAddr(op.key), msg)
	att := op.attempts
	c.sim.At(now+c.h.opts.OpTimeout, func(tnow time.Duration) {
		if c.cur == op && !op.done && op.attempts == att {
			c.retry(tnow)
		}
	})
}

// retry re-resolves the configuration and re-sends the current
// operation, or abandons it after OpRetries attempts (the operation
// stays pending in the history: it may or may not have taken effect).
func (c *chaosClient) retry(now time.Duration) {
	op := c.cur
	op.attempts++
	if op.attempts > c.h.opts.OpRetries {
		op.done = true
		c.h.Abandoned++
		c.scheduleNext(now)
		return
	}
	c.resolve(now)
	c.sendAttempt(now)
}

// resolve asks the next node (round-robin) for its current
// configuration; replies with a newer epoch update the routing view.
func (c *chaosClient) resolve(now time.Duration) {
	ids := c.cfg.AllNodes()
	if len(ids) == 0 {
		return
	}
	target := ids[c.resolveRR%len(ids)]
	c.resolveRR++
	req := c.nextReq
	c.nextReq++
	if c.resolveReqs == nil {
		c.resolveReqs = make(map[proto.ReqID]bool)
	}
	c.resolveReqs[req] = true
	c.sim.Send(c.addr, core.NodeAddr(target), &proto.Resolve{Req: req})
}

func (c *chaosClient) onMessage(now time.Duration, _ string, msg proto.Message) {
	if r, ok := msg.(*proto.ResolveReply); ok {
		if c.resolveReqs[r.Req] {
			delete(c.resolveReqs, r.Req)
			if r.Config != nil && r.Config.Epoch >= c.cfg.Epoch {
				c.cfg = r.Config.Clone()
			}
		}
		return
	}
	op := c.cur
	if op == nil || op.done {
		return
	}
	var req proto.ReqID
	var status proto.Status
	var value []byte
	switch r := msg.(type) {
	case *proto.PutReply:
		req, status = r.Req, r.Status
	case *proto.GetReply:
		req, status, value = r.Req, r.Status, r.Value
	case *proto.DeleteReply:
		req, status = r.Req, r.Status
	default:
		return
	}
	if !op.reqs[req] {
		return // a previous operation's late reply
	}
	switch status {
	case proto.StOK, proto.StNotFound:
		op.done = true
		rec := &c.h.history[op.histIdx]
		rec.Return = now
		rec.Done = true
		if op.kind == linearize.KGet {
			rec.Found = status == proto.StOK
			if rec.Found {
				rec.Val = chaosObserved(value)
			}
		}
		c.scheduleNext(now)
	default:
		// StRetry, StWrongNode, StUnavailable, ...: re-resolve and try
		// again after a short backoff (immediate resends against a
		// recovering coordinator just burn attempts).
		att := op.attempts
		c.sim.At(now+c.h.opts.OpTimeout/4, func(tnow time.Duration) {
			if c.cur == op && !op.done && op.attempts == att {
				c.retry(tnow)
			}
		})
	}
}
