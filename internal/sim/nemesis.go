package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"ring/internal/proto"
)

// A nemesis schedule is a deterministic list of fault-injection steps
// executed at virtual times: crash and restart nodes, cut and heal
// links, and turn flaky message handling (drop/delay/duplicate) on and
// off. Schedules are generated from a seed, serialize to a one-line
// string (for repro commands and artifacts), parse back, and shrink by
// step removal — a removed kill leaves its restart a harmless no-op
// and vice versa, so any subset of a schedule is itself valid.

// NemesisKind enumerates schedule step types.
type NemesisKind uint8

const (
	// NemKill crashes node A (no-op if already dead).
	NemKill NemesisKind = iota + 1
	// NemRestart restarts node A with empty state (no-op if alive).
	NemRestart
	// NemPartition cuts the link between nodes A and B.
	NemPartition
	// NemHeal restores the link between nodes A and B.
	NemHeal
	// NemHealAll removes every partition.
	NemHealAll
	// NemFlaky installs a seeded random fault plane: each message is
	// dropped with DropPct%, duplicated with DupPct%, and delayed
	// uniformly in [0, MaxDelay] (delay variance is what reorders).
	NemFlaky
	// NemCalm removes the flaky fault plane.
	NemCalm
	// NemCorrupt flips one random bit in node A's newest WAL segment
	// (disk fault plane only; no-op otherwise). The CRC framing must
	// catch it at the next recovery.
	NemCorrupt
	// NemFsyncErr makes node A's disk fail every fsync; the node must
	// crash-stop at its next batch boundary (fsyncgate semantics).
	NemFsyncErr
	// NemFsyncOK heals node A's disk (clears errors and slowness).
	NemFsyncOK
	// NemFsyncSlow makes node A's fsyncs 10x slower.
	NemFsyncSlow
	// NemConvert issues a live scheme transition of workload key
	// "k<A>" to memgest B through the control agent (elastic.go),
	// which retries and re-resolves like an operator would.
	NemConvert
	// NemJoin admits node A into the cluster as a spare (idempotent).
	NemJoin
	// NemLeave gracefully removes node A: fence first, then announce.
	NemLeave
)

// NemesisStep is one scheduled fault action.
type NemesisStep struct {
	At       time.Duration
	Kind     NemesisKind
	A, B     proto.NodeID
	DropPct  int
	DupPct   int
	MaxDelay time.Duration
}

// String renders a step in the compact form ParseSchedule reads.
func (st NemesisStep) String() string {
	switch st.Kind {
	case NemKill:
		return fmt.Sprintf("%s:kill:%d", st.At, st.A)
	case NemRestart:
		return fmt.Sprintf("%s:restart:%d", st.At, st.A)
	case NemPartition:
		return fmt.Sprintf("%s:part:%d:%d", st.At, st.A, st.B)
	case NemHeal:
		return fmt.Sprintf("%s:heal:%d:%d", st.At, st.A, st.B)
	case NemHealAll:
		return fmt.Sprintf("%s:healall", st.At)
	case NemFlaky:
		return fmt.Sprintf("%s:flaky:%d:%d:%s", st.At, st.DropPct, st.DupPct, st.MaxDelay)
	case NemCalm:
		return fmt.Sprintf("%s:calm", st.At)
	case NemCorrupt:
		return fmt.Sprintf("%s:corrupt:%d", st.At, st.A)
	case NemFsyncErr:
		return fmt.Sprintf("%s:fsyncerr:%d", st.At, st.A)
	case NemFsyncOK:
		return fmt.Sprintf("%s:fsyncok:%d", st.At, st.A)
	case NemFsyncSlow:
		return fmt.Sprintf("%s:fsyncslow:%d", st.At, st.A)
	case NemConvert:
		return fmt.Sprintf("%s:convert:%d:%d", st.At, st.A, st.B)
	case NemJoin:
		return fmt.Sprintf("%s:join:%d", st.At, st.A)
	case NemLeave:
		return fmt.Sprintf("%s:leave:%d", st.At, st.A)
	}
	return fmt.Sprintf("%s:unknown", st.At)
}

// Schedule is an ordered list of nemesis steps.
type Schedule struct {
	Steps []NemesisStep
}

// String renders the schedule as a single semicolon-joined line.
func (s Schedule) String() string {
	parts := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		parts[i] = st.String()
	}
	return strings.Join(parts, ";")
}

// Without returns a copy of the schedule with step i removed (the
// shrinking primitive).
func (s Schedule) Without(i int) Schedule {
	out := Schedule{Steps: make([]NemesisStep, 0, len(s.Steps)-1)}
	out.Steps = append(out.Steps, s.Steps[:i]...)
	out.Steps = append(out.Steps, s.Steps[i+1:]...)
	return out
}

// ParseSchedule parses the String form back into a schedule.
func ParseSchedule(text string) (Schedule, error) {
	var s Schedule
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ";") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return s, fmt.Errorf("nemesis: bad step %q", part)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return s, fmt.Errorf("nemesis: bad time in %q: %v", part, err)
		}
		st := NemesisStep{At: at}
		node := func(i int) (proto.NodeID, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("nemesis: step %q is missing a node", part)
			}
			n, err := strconv.ParseUint(fields[i], 10, 32)
			return proto.NodeID(n), err
		}
		switch fields[1] {
		case "kill", "restart":
			st.Kind = NemKill
			if fields[1] == "restart" {
				st.Kind = NemRestart
			}
			if st.A, err = node(2); err != nil {
				return s, err
			}
		case "part", "heal":
			st.Kind = NemPartition
			if fields[1] == "heal" {
				st.Kind = NemHeal
			}
			if st.A, err = node(2); err != nil {
				return s, err
			}
			if st.B, err = node(3); err != nil {
				return s, err
			}
		case "healall":
			st.Kind = NemHealAll
		case "calm":
			st.Kind = NemCalm
		case "corrupt", "fsyncerr", "fsyncok", "fsyncslow", "join", "leave":
			switch fields[1] {
			case "corrupt":
				st.Kind = NemCorrupt
			case "fsyncerr":
				st.Kind = NemFsyncErr
			case "fsyncok":
				st.Kind = NemFsyncOK
			case "fsyncslow":
				st.Kind = NemFsyncSlow
			case "join":
				st.Kind = NemJoin
			case "leave":
				st.Kind = NemLeave
			}
			if st.A, err = node(2); err != nil {
				return s, err
			}
		case "convert":
			st.Kind = NemConvert
			if st.A, err = node(2); err != nil {
				return s, err
			}
			if st.B, err = node(3); err != nil {
				return s, err
			}
		case "flaky":
			st.Kind = NemFlaky
			if len(fields) != 5 {
				return s, fmt.Errorf("nemesis: bad flaky step %q", part)
			}
			if st.DropPct, err = strconv.Atoi(fields[2]); err != nil {
				return s, err
			}
			if st.DupPct, err = strconv.Atoi(fields[3]); err != nil {
				return s, err
			}
			if st.MaxDelay, err = time.ParseDuration(fields[4]); err != nil {
				return s, err
			}
		default:
			return s, fmt.Errorf("nemesis: unknown step kind %q", fields[1])
		}
		s.Steps = append(s.Steps, st)
	}
	return s, nil
}

// GenSchedule derives a nemesis schedule from a seed: alternating
// crash/restart pairs (at most one node down at a time, so quorums
// stay formable), short partitions, and flaky windows, all inside
// [0, active]; everything is healed, calmed, and restarted by the end
// of the active window so the workload tail runs on a healthy cluster
// and pending operations can settle.
func GenSchedule(seed int64, nodes []proto.NodeID, active time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	ids := append([]proto.NodeID(nil), nodes...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var s Schedule
	add := func(st NemesisStep) { s.Steps = append(s.Steps, st) }

	steps := 3 + rng.Intn(4)
	slot := active / time.Duration(steps+1)
	flaky := false
	for i := 0; i < steps; i++ {
		base := slot*time.Duration(i) + time.Duration(rng.Int63n(int64(slot/2)+1))
		switch rng.Intn(4) {
		case 0: // crash + restart one node
			n := ids[rng.Intn(len(ids))]
			down := time.Duration(rng.Int63n(int64(slot/2) + 1))
			add(NemesisStep{At: base, Kind: NemKill, A: n})
			add(NemesisStep{At: base + down, Kind: NemRestart, A: n})
		case 1: // short partition of a random pair
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			if a == b {
				b = ids[(int(b)+1)%len(ids)]
			}
			cut := time.Duration(rng.Int63n(int64(slot/2) + 1))
			add(NemesisStep{At: base, Kind: NemPartition, A: a, B: b})
			add(NemesisStep{At: base + cut, Kind: NemHeal, A: a, B: b})
		case 2: // flaky window
			add(NemesisStep{
				At: base, Kind: NemFlaky,
				DropPct: 1 + rng.Intn(8),
				DupPct:  rng.Intn(5),
				// Capped below the chaos cluster's FailAfter: delays are
				// jitter, not failures. Exceeding the detection timeout
				// would manufacture spurious-failover split brain, which
				// the crash-stop model rules out.
				MaxDelay: time.Duration(1+rng.Intn(300)) * 5 * time.Microsecond,
			})
			flaky = true
		case 3: // calm down early (no-op if not flaky)
			if flaky {
				add(NemesisStep{At: base, Kind: NemCalm})
				flaky = false
			}
		}
	}
	// Deterministic cleanup: whatever subset of the above survives
	// shrinking, the cluster is whole again after `active`.
	add(NemesisStep{At: active, Kind: NemCalm})
	add(NemesisStep{At: active, Kind: NemHealAll})
	for _, n := range ids {
		add(NemesisStep{At: active, Kind: NemRestart, A: n})
	}
	sort.SliceStable(s.Steps, func(i, j int) bool { return s.Steps[i].At < s.Steps[j].At })
	return s
}

// GenDurableSchedule derives a crash-recovery nemesis schedule from a
// seed, for runs with the disk fault plane active: kill -9 + recover
// from disk, kill + WAL bit-flip corruption + recover (the CRC framing
// must detect it and recovery must fall back to a full resync), fsync
// failure windows (the node crash-stops itself, then the disk heals
// and the node recovers), and slow-fsync windows. Like GenSchedule it
// keeps at most one node down at a time so every committed write stays
// held by a live quorum, and heals everything by the end of the active
// window.
func GenDurableSchedule(seed int64, nodes []proto.NodeID, active time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	ids := append([]proto.NodeID(nil), nodes...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var s Schedule
	add := func(st NemesisStep) { s.Steps = append(s.Steps, st) }

	steps := 3 + rng.Intn(4)
	slot := active / time.Duration(steps+1)
	for i := 0; i < steps; i++ {
		base := slot*time.Duration(i) + time.Duration(rng.Int63n(int64(slot/2)+1))
		n := ids[rng.Intn(len(ids))]
		down := time.Duration(1 + rng.Int63n(int64(slot/2)+1))
		switch rng.Intn(4) {
		case 0: // kill -9, recover from what fsync made durable
			add(NemesisStep{At: base, Kind: NemKill, A: n})
			add(NemesisStep{At: base + down, Kind: NemRestart, A: n})
		case 1: // kill -9, corrupt the WAL, recover — CRC must catch it
			add(NemesisStep{At: base, Kind: NemKill, A: n})
			add(NemesisStep{At: base + down/2, Kind: NemCorrupt, A: n})
			add(NemesisStep{At: base + down, Kind: NemRestart, A: n})
		case 2: // disk fails fsyncs: node crash-stops; heal, recover
			add(NemesisStep{At: base, Kind: NemFsyncErr, A: n})
			add(NemesisStep{At: base + down, Kind: NemFsyncOK, A: n})
			add(NemesisStep{At: base + down, Kind: NemRestart, A: n})
		case 3: // slow disk window
			add(NemesisStep{At: base, Kind: NemFsyncSlow, A: n})
			add(NemesisStep{At: base + down, Kind: NemFsyncOK, A: n})
		}
	}
	// Deterministic cleanup: whatever subset survives shrinking, every
	// disk is healthy and every node is up after `active`.
	add(NemesisStep{At: active, Kind: NemCalm})
	add(NemesisStep{At: active, Kind: NemHealAll})
	for _, n := range ids {
		add(NemesisStep{At: active, Kind: NemFsyncOK, A: n})
		add(NemesisStep{At: active, Kind: NemRestart, A: n})
	}
	sort.SliceStable(s.Steps, func(i, j int) bool { return s.Steps[i].At < s.Steps[j].At })
	return s
}

// Apply schedules every step on the simulator. faultSeed feeds the
// flaky fault plane's generator; with the same schedule and seed the
// injected faults are identical run to run (the fault hook fires in
// deterministic event order).
func (s Schedule) Apply(sim *Sim, faultSeed int64) {
	rng := rand.New(rand.NewSource(faultSeed))
	for _, st := range s.Steps {
		step := st
		sim.At(step.At, func(now time.Duration) {
			switch step.Kind {
			case NemKill:
				if !sim.Dead(step.A) {
					sim.Kill(step.A)
				}
			case NemRestart:
				if sim.Dead(step.A) {
					sim.Restart(step.A)
				}
			case NemPartition:
				sim.PartitionNodes(step.A, step.B)
			case NemHeal:
				sim.HealNodes(step.A, step.B)
			case NemHealAll:
				sim.HealAll()
			case NemFlaky:
				drop, dup, maxDelay := step.DropPct, step.DupPct, step.MaxDelay
				sim.SetFaultFunc(func(now time.Duration, from, to string, msg proto.Message, size int) FaultAction {
					var a FaultAction
					if rng.Intn(100) < drop {
						a.Drop = true
						return a
					}
					if dup > 0 && rng.Intn(100) < dup && dupSafe(msg) {
						a.Duplicate = true
					}
					if maxDelay > 0 {
						a.Delay = time.Duration(rng.Int63n(int64(maxDelay)))
					}
					return a
				})
			case NemCalm:
				sim.SetFaultFunc(nil)
			case NemCorrupt:
				sim.CorruptDisk(step.A)
			case NemFsyncErr:
				sim.FailDisk(step.A, true)
			case NemFsyncOK:
				sim.FailDisk(step.A, false)
			case NemFsyncSlow:
				sim.SlowDisk(step.A, true)
			case NemConvert, NemJoin, NemLeave:
				sim.elasticAgent().launch(now, step)
			}
		})
	}
}

// dupSafe reports whether re-delivering msg is within the protocol's
// contract. Ring runs over reliable connections (RDMA RC in the paper,
// TCP here), which never duplicate at the transport level, so the
// protocol is entitled to assume exactly-once delivery for messages
// whose handlers are not idempotent: a duplicated client write
// re-executes at the coordinator and allocates a fresh, NEWER version
// carrying the stale value, and a duplicated parity delta XORs into
// the parity region twice. The nemesis therefore duplicates only
// idempotent-tolerant messages — which still exercises every dedup
// path the protocol really has (ack trackers, seq indexes, per-request
// reply maps). Application-level duplication of client writes IS
// tested, via the chaos client's own timeouts and retries.
func dupSafe(msg proto.Message) bool {
	switch msg.(type) {
	case *proto.Put, *proto.Delete, *proto.Move, *proto.ParityUpdate,
		// A duplicated Convert re-executes after the first completed and
		// allocates a fresh version in the destination; a duplicated
		// Resize can fence a node that just rejoined. Both are client
		// writes in the same exactly-once contract as Put.
		*proto.Convert, *proto.Resize:
		return false
	}
	return true
}

// Kills returns the node IDs the schedule ever crashes, for tests that
// assert restart behaviour.
func (s Schedule) Kills() []proto.NodeID {
	var out []proto.NodeID
	seen := make(map[proto.NodeID]bool)
	for _, st := range s.Steps {
		if st.Kind == NemKill && !seen[st.A] {
			seen[st.A] = true
			out = append(out, st.A)
		}
	}
	return out
}
