package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/store"
)

// This file is the control-plane side of the elasticity nemesis: a
// deterministic agent that issues scheme conversions and join/leave
// resizes against the simulated cluster at scheduled virtual times,
// retrying and re-resolving through failures exactly like an operator
// driving ringctl would. It shares the fabric with the chaos clients
// but records nothing in the linearizability history — converts do not
// change values and resizes do not touch data, so their correctness is
// asserted indirectly: the client-visible history must stay
// linearizable while placements and schemes churn underneath it.

// nemesisAddr is the control agent's client address on the fabric.
const nemesisAddr = "client/nemesis"

const (
	// nemesisTimeout is how long the agent waits for a reply before
	// re-resolving and retrying.
	nemesisTimeout = 2 * time.Millisecond
	// nemesisRetries bounds attempts per control operation; elasticity
	// steps are fault injections, so abandoning one under a hostile
	// schedule is acceptable (and recorded).
	nemesisRetries = 30
)

// nemesisOp is one control operation possibly spanning several
// attempts.
type nemesisOp struct {
	step     NemesisStep
	attempts int
	done     bool
}

// nemesisAgent drives NemConvert/NemJoin/NemLeave steps. One per
// simulation, created lazily by the first elastic step applied.
type nemesisAgent struct {
	sim     *Sim
	cfg     *proto.Config
	nextReq proto.ReqID
	// ops maps every attempt's request ID to its operation; a reply to
	// any attempt settles the operation.
	ops         map[proto.ReqID]*nemesisOp
	resolveReqs map[proto.ReqID]bool
	rr          int

	// Acked counts control operations that reached a terminal reply;
	// Abandoned counts those that exhausted their retries.
	Acked     int
	Abandoned int
}

// elasticAgent returns the simulation's control agent, creating and
// registering it on first use.
func (s *Sim) elasticAgent() *nemesisAgent {
	if s.elastic == nil {
		s.elastic = &nemesisAgent{
			sim:         s,
			cfg:         s.cfg0.Clone(),
			nextReq:     1,
			ops:         make(map[proto.ReqID]*nemesisOp),
			resolveReqs: make(map[proto.ReqID]bool),
		}
		s.RegisterClient(nemesisAddr, s.elastic.onMessage)
	}
	return s.elastic
}

// launch starts driving one elastic schedule step.
func (a *nemesisAgent) launch(now time.Duration, step NemesisStep) {
	a.attempt(now, &nemesisOp{step: step})
}

// attempt sends one try of the operation and arms its retry timer.
func (a *nemesisAgent) attempt(now time.Duration, op *nemesisOp) {
	req := a.nextReq
	a.nextReq++
	a.ops[req] = op
	var msg proto.Message
	var target proto.NodeID
	switch op.step.Kind {
	case NemConvert:
		key := fmt.Sprintf("k%d", op.step.A)
		msg = &proto.Convert{Req: req, Key: key, To: proto.MemgestID(op.step.B)}
		target = a.cfg.CoordinatorOf(store.KeyHash(key))
	case NemJoin:
		msg = &proto.Resize{Req: req, Op: proto.ResizeJoin, Node: op.step.A}
		target = a.cfg.Leader
	case NemLeave:
		msg = &proto.Resize{Req: req, Op: proto.ResizeLeave, Node: op.step.A}
		target = a.cfg.Leader
	default:
		return
	}
	a.sim.Send(nemesisAddr, core.NodeAddr(target), msg)
	att := op.attempts
	a.sim.At(now+nemesisTimeout, func(tnow time.Duration) {
		if !op.done && op.attempts == att {
			a.retry(tnow, op)
		}
	})
}

// retry re-resolves the routing view and re-sends, or abandons the
// operation past its attempt budget.
func (a *nemesisAgent) retry(now time.Duration, op *nemesisOp) {
	op.attempts++
	if op.attempts > nemesisRetries {
		op.done = true
		a.Abandoned++
		return
	}
	a.resolve(now)
	a.attempt(now, op)
}

// resolve asks the next node (round-robin) for its configuration;
// replies with a newer epoch update routing, exactly like the chaos
// clients and the real client library.
func (a *nemesisAgent) resolve(now time.Duration) {
	ids := a.cfg.AllNodes()
	if len(ids) == 0 {
		return
	}
	target := ids[a.rr%len(ids)]
	a.rr++
	req := a.nextReq
	a.nextReq++
	a.resolveReqs[req] = true
	a.sim.Send(nemesisAddr, core.NodeAddr(target), &proto.Resolve{Req: req})
}

func (a *nemesisAgent) onMessage(now time.Duration, _ string, msg proto.Message) {
	switch r := msg.(type) {
	case *proto.ResolveReply:
		if a.resolveReqs[r.Req] {
			delete(a.resolveReqs, r.Req)
			if r.Config != nil && r.Config.Epoch >= a.cfg.Epoch {
				a.cfg = r.Config.Clone()
			}
		}
	case *proto.ConvertReply:
		a.settle(now, r.Req, r.Status)
	case *proto.ResizeReply:
		a.settle(now, r.Req, r.Status)
	}
}

// settle applies a reply: transient statuses back off and retry,
// anything else (success or a definitive rejection such as StNotFound
// for a key never written) ends the operation.
func (a *nemesisAgent) settle(now time.Duration, req proto.ReqID, st proto.Status) {
	op := a.ops[req]
	if op == nil || op.done {
		return
	}
	switch st {
	case proto.StRetry, proto.StWrongNode, proto.StUnavailable:
		att := op.attempts
		a.sim.At(now+nemesisTimeout/4, func(tnow time.Duration) {
			if !op.done && op.attempts == att {
				a.retry(tnow, op)
			}
		})
	default:
		op.done = true
		a.Acked++
	}
}

// GenElasticitySchedule derives an elasticity nemesis schedule from a
// seed: the fault mix of GenSchedule (crashes, flaky windows) blended
// with scheme conversions over the workload's keyspace and graceful
// leave/rejoin pairs on non-leader nodes, all inside [0, active]. Like
// the other generators it deterministically cleans up at the end of
// the active window; the cleanup re-admits every node that ever left
// with an idempotent join, so any shrunk subset of the schedule still
// ends on a whole cluster.
func GenElasticitySchedule(seed int64, nodes []proto.NodeID, active time.Duration, keys int, mgs []proto.MemgestID) Schedule {
	rng := rand.New(rand.NewSource(seed))
	ids := append([]proto.NodeID(nil), nodes...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var s Schedule
	add := func(st NemesisStep) { s.Steps = append(s.Steps, st) }

	steps := 4 + rng.Intn(4)
	slot := active / time.Duration(steps+1)
	flaky := false
	left := make(map[proto.NodeID]bool)
	for i := 0; i < steps; i++ {
		base := slot*time.Duration(i) + time.Duration(rng.Int63n(int64(slot/2)+1))
		switch rng.Intn(6) {
		case 0: // crash + restart one node
			n := ids[rng.Intn(len(ids))]
			down := time.Duration(rng.Int63n(int64(slot/2) + 1))
			add(NemesisStep{At: base, Kind: NemKill, A: n})
			add(NemesisStep{At: base + down, Kind: NemRestart, A: n})
		case 1: // flaky window
			add(NemesisStep{
				At: base, Kind: NemFlaky,
				DropPct:  1 + rng.Intn(8),
				DupPct:   rng.Intn(5),
				MaxDelay: time.Duration(1+rng.Intn(300)) * 5 * time.Microsecond,
			})
			flaky = true
		case 2: // calm down early (no-op if not flaky)
			if flaky {
				add(NemesisStep{At: base, Kind: NemCalm})
				flaky = false
			}
		case 3, 4: // convert a workload key to a random scheme (weighted
			// double: transitions under load are the point of this lane)
			add(NemesisStep{
				At: base, Kind: NemConvert,
				A: proto.NodeID(rng.Intn(keys)),
				B: proto.NodeID(mgs[rng.Intn(len(mgs))]),
			})
		case 5: // graceful leave, then rejoin. Never the boot leader:
			// the leader cannot fence itself out.
			n := ids[1+rng.Intn(len(ids)-1)]
			down := time.Duration(1 + rng.Int63n(int64(slot)))
			add(NemesisStep{At: base, Kind: NemLeave, A: n})
			add(NemesisStep{At: base + down, Kind: NemJoin, A: n})
			left[n] = true
		}
	}
	// Deterministic cleanup: calm, heal, restart, and re-admit every
	// node that ever left (join is idempotent, so this stays valid when
	// shrinking removes the matching leave).
	add(NemesisStep{At: active, Kind: NemCalm})
	add(NemesisStep{At: active, Kind: NemHealAll})
	for _, n := range ids {
		add(NemesisStep{At: active, Kind: NemRestart, A: n})
	}
	for _, n := range ids {
		if left[n] {
			add(NemesisStep{At: active, Kind: NemJoin, A: n})
		}
	}
	sort.SliceStable(s.Steps, func(i, j int) bool { return s.Steps[i].At < s.Steps[j].At })
	return s
}
