package sim

import (
	"testing"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
)

// TestCPUQueueSerializes: two client requests arriving together at one
// node must be served back to back, the second delayed by the first's
// service time — single-threaded server semantics.
func TestCPUQueueSerializes(t *testing.T) {
	s, c := newSim(t)
	val := make([]byte, 1024)
	// Same key -> same coordinator.
	var lat1, lat2 time.Duration
	c.PutAt(0, "q", val, 1, func(l time.Duration, r *proto.PutReply) { lat1 = l })
	c.PutAt(0, "q", val, 1, func(l time.Duration, r *proto.PutReply) { lat2 = l })
	s.RunToQuiescence()
	if lat1 == 0 || lat2 == 0 {
		t.Fatal("puts did not complete")
	}
	if lat2 <= lat1 {
		t.Fatalf("second request (%v) must queue behind the first (%v)", lat2, lat1)
	}
	// The gap is roughly one service time, well below a full round trip.
	if lat2-lat1 > lat1 {
		t.Fatalf("queueing gap %v implausibly large", lat2-lat1)
	}
}

// TestIndependentNodesRunInParallel: requests to different coordinators
// do not queue behind each other.
func TestIndependentNodesRunInParallel(t *testing.T) {
	s, c := newSim(t)
	val := make([]byte, 1024)
	// Find two keys on different shards.
	cfg, _ := core.BootConfig(paperSpec())
	key1, key2 := "a0", ""
	for i := 0; i < 100 && key2 == ""; i++ {
		k := "b" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		if cfg.CoordinatorOf(hashOf(k)) != cfg.CoordinatorOf(hashOf(key1)) {
			key2 = k
		}
	}
	if key2 == "" {
		t.Fatal("no second shard key found")
	}
	var lat1, lat2 time.Duration
	c.PutAt(0, key1, val, 1, func(l time.Duration, _ *proto.PutReply) { lat1 = l })
	c.PutAt(0, key2, val, 1, func(l time.Duration, _ *proto.PutReply) { lat2 = l })
	s.RunToQuiescence()
	ratio := float64(lat2) / float64(lat1)
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("independent shards should have similar latency: %v vs %v", lat1, lat2)
	}
}

// TestBytesOnWireAccounting: the counter grows with payload size.
func TestBytesOnWireAccounting(t *testing.T) {
	s, c := newSim(t)
	if _, _, err := c.PutSync("w", make([]byte, 64), 1); err != nil {
		t.Fatal(err)
	}
	small := s.BytesOnWire
	if small == 0 {
		t.Fatal("no bytes accounted")
	}
	if _, _, err := c.PutSync("w2", make([]byte, 4096), 1); err != nil {
		t.Fatal(err)
	}
	if s.BytesOnWire-small < 4096 {
		t.Fatalf("large put accounted only %d bytes", s.BytesOnWire-small)
	}
}

// TestControlMessageClassification: client ops are never control
// messages, acks always are.
func TestControlMessageClassification(t *testing.T) {
	if isControl(queuedMsg{msg: &proto.Get{Key: "k"}}) {
		t.Fatal("Get classified as control")
	}
	if isControl(queuedMsg{msg: &proto.Put{Key: "k"}}) {
		t.Fatal("Put classified as control")
	}
	if !isControl(queuedMsg{msg: &proto.RepAck{}}) || !isControl(queuedMsg{msg: &proto.ParityAck{}}) {
		t.Fatal("acks not classified as control")
	}
	if !isControl(queuedMsg{tick: true}) {
		t.Fatal("tick not control")
	}
	if !isReplicationPlane(&proto.RepAppend{}) || !isReplicationPlane(&proto.ParityUpdate{}) {
		t.Fatal("replication plane misclassified")
	}
	if isReplicationPlane(&proto.Get{}) {
		t.Fatal("Get classified as replication plane")
	}
}

func hashOf(key string) uint64 {
	// mirrors store.KeyHash without the import cycle risk in tests
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
