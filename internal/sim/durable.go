package sim

import (
	"errors"
	"math/rand"
	"sort"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/wal"
)

// This file is the simulator's disk fault plane: each node gets an
// in-memory filesystem with crash semantics (wal.MemFS) hosting a real
// durable engine (replog.Durable). Kill tears every file back to its
// synced prefix plus a torn fragment — exactly what kill -9 leaves on
// a real disk — and Restart recovers the node from what remains. The
// nemesis can additionally corrupt WAL bits (the CRC framing must
// catch it) and make fsyncs fail (the node must crash-stop) or slow
// down. Everything is driven by seeded RNGs in deterministic event
// order, so durable chaos runs replay bit-for-bit like all others.

// ErrSimDisk is the sticky fsync error injected by NemFsyncErr.
var ErrSimDisk = errors.New("sim: injected fsync failure")

// defaultSyncCost is the virtual latency charged per fsync the node's
// durable engine performed during one CPU slot (NVMe-class flush).
const defaultSyncCost = 10 * time.Microsecond

// durPlane holds the per-node simulated disks.
type durPlane struct {
	opts     replog.DurableOptions
	fs       map[proto.NodeID]*wal.MemFS
	crashRng *rand.Rand
	syncCost time.Duration
	slow     map[proto.NodeID]bool
	lastSync map[proto.NodeID]uint64
}

// EnableDurable attaches a durable store, on a fresh simulated disk,
// to every node. Must be called before any traffic; seed drives the
// crash-truncation and corruption RNG.
func (s *Sim) EnableDurable(seed int64, opts replog.DurableOptions) error {
	p := &durPlane{
		opts:     opts,
		fs:       make(map[proto.NodeID]*wal.MemFS),
		crashRng: rand.New(rand.NewSource(seed ^ 0x5d15c0de)),
		syncCost: defaultSyncCost,
		slow:     make(map[proto.NodeID]bool),
		lastSync: make(map[proto.NodeID]uint64),
	}
	ids := make([]proto.NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fsys := wal.NewMemFS()
		d, err := replog.OpenDurable(fsys, opts)
		if err != nil {
			return err
		}
		s.nodes[id].node.SetDurable(d)
		p.fs[id] = fsys
	}
	s.dur = p
	return nil
}

// DurableEnabled reports whether the disk fault plane is active.
func (s *Sim) DurableEnabled() bool { return s.dur != nil }

// DiskFS exposes a node's simulated disk (nil without EnableDurable);
// for tests.
func (s *Sim) DiskFS(id proto.NodeID) *wal.MemFS {
	if s.dur == nil {
		return nil
	}
	return s.dur.fs[id]
}

// CorruptDisk flips one random bit in the record region of node id's
// newest WAL segment, reporting whether a bit was flipped. The next
// recovery must detect it via the CRC framing.
func (s *Sim) CorruptDisk(id proto.NodeID) bool {
	if s.dur == nil {
		return false
	}
	fsys := s.dur.fs[id]
	if fsys == nil {
		return false
	}
	if !fsys.CorruptWAL(s.dur.crashRng) {
		return false
	}
	s.Faults.Corrupted++
	return true
}

// FailDisk makes node id's fsyncs fail (fail=true) or heals the disk
// (fail=false, which also clears slowness). A node whose fsync fails
// crash-stops at its next batch boundary.
func (s *Sim) FailDisk(id proto.NodeID, fail bool) {
	if s.dur == nil {
		return
	}
	if fsys := s.dur.fs[id]; fsys != nil {
		if fail {
			fsys.FailSyncs(ErrSimDisk)
		} else {
			fsys.FailSyncs(nil)
			s.dur.slow[id] = false
		}
	}
}

// SlowDisk multiplies node id's fsync latency by 10 (slow=true) until
// healed by FailDisk(id, false) or SlowDisk(id, false).
func (s *Sim) SlowDisk(id proto.NodeID, slow bool) {
	if s.dur == nil {
		return
	}
	s.dur.slow[id] = slow
}

// crashDisk applies kill -9 semantics to a node's disk: unsynced bytes
// are torn off at an rng-chosen point.
func (s *Sim) crashDisk(id proto.NodeID) {
	if s.dur == nil {
		return
	}
	if fsys := s.dur.fs[id]; fsys != nil {
		fsys.Crash(s.dur.crashRng)
		delete(s.dur.lastSync, id)
	}
}

// syncDurable runs the node's group commit at the end of one CPU slot
// and returns the virtual time its fsyncs cost. ok=false means the
// disk failed and the node must crash-stop without emitting outputs.
func (s *Sim) syncDurable(h *nodeHost, id proto.NodeID) (time.Duration, bool) {
	if s.dur == nil || !h.node.HasDurable() {
		return 0, true
	}
	if err := h.node.SyncDurable(); err != nil {
		return 0, false
	}
	fsys := s.dur.fs[id]
	if fsys == nil {
		return 0, true
	}
	total := fsys.Syncs()
	delta := total - s.dur.lastSync[id]
	s.dur.lastSync[id] = total
	cost := time.Duration(delta) * s.dur.syncCost
	if s.dur.slow[id] {
		cost *= 10
	}
	return cost, true
}

// recoverNode builds the state machine of a restarting node: over its
// surviving disk state when the durable plane is active (falling back
// to an empty rejoin if the disk is too broken to even open), empty
// otherwise.
func (s *Sim) recoverNode(id proto.NodeID) *core.Node {
	if s.dur != nil {
		if fsys := s.dur.fs[id]; fsys != nil {
			if d, err := replog.OpenDurable(fsys, s.dur.opts); err == nil {
				s.dur.lastSync[id] = fsys.Syncs()
				return core.NewRecovered(id, s.cfg0.Clone(), s.opts, d)
			}
		}
	}
	return core.NewRejoining(id, s.cfg0.Clone(), s.opts)
}
