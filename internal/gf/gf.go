// Package gf implements arithmetic over the Galois field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by the
// Jerasure/GF-Complete stack the paper builds on. Addition is XOR;
// multiplication and division are driven by logarithm/antilogarithm
// tables built once at package initialization.
//
// Besides scalar operations the package provides slice kernels
// (MulSlice, MulSliceXor, XorSlice) that apply one coefficient to a
// whole buffer. These are the inner loops of Reed-Solomon encoding,
// decoding, and delta parity updates, so they use a per-coefficient
// 256-entry product table and 8-way unrolling rather than log/exp
// lookups per byte.
package gf

import "fmt"

// Poly is the primitive polynomial defining the field, with the x^8
// term included (0x11d = x^8+x^4+x^3+x^2+1).
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

var (
	// expTbl[i] = g^i where g=2 is a generator. Doubled in length so
	// Mul can add logs without reducing mod 255.
	expTbl [2 * 255]byte
	// logTbl[x] = log_g(x); logTbl[0] is unused (log of zero is
	// undefined) and left as 0.
	logTbl [256]byte
	// mulTbl[c] is the 256-entry row of products c*x for every x.
	// All 256 rows (64 KiB) are materialized eagerly in init so
	// MulTable is a branch-free lookup that is safe to call from
	// concurrent encode/recovery goroutines.
	mulTbl [256][256]byte
	// invTbl[x] = x^-1; invTbl[0] unused.
	invTbl [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTbl[i] = byte(x)
		expTbl[i+255] = byte(x)
		logTbl[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 1; i < 256; i++ {
		invTbl[i] = Exp(255 - int(logTbl[i]))
	}
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			mulTbl[c][x] = Mul(byte(c), byte(x))
		}
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[int(logTbl[a])+int(logTbl[b])]
}

// Div returns a/b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTbl[a]) - int(logTbl[b])
	if d < 0 {
		d += 255
	}
	return expTbl[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return invTbl[a]
}

// Exp returns g^n for the generator g=2. Negative n is reduced modulo
// 255 into the principal range.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTbl[n]
}

// Log returns log_g(a). It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTbl[a])
}

// Pow returns a^n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return Exp(Log(a) * n % 255)
}

// MulTable returns the 256-entry product row for coefficient c:
// row[x] == Mul(c, x). The returned array is shared and must not be
// modified. Rows are precomputed at package init, so the call is a
// data-race-free constant-time lookup.
func MulTable(c byte) *[256]byte {
	return &mulTbl[c]
}

// MulSlice sets dst[i] = c*src[i] for all i. dst and src must have the
// same length (it panics otherwise). c==0 zeroes dst; c==1 copies.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf: MulSlice length mismatch %d != %d", len(src), len(dst)))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	t := MulTable(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] = t[src[i]]
		dst[i+1] = t[src[i+1]]
		dst[i+2] = t[src[i+2]]
		dst[i+3] = t[src[i+3]]
		dst[i+4] = t[src[i+4]]
		dst[i+5] = t[src[i+5]]
		dst[i+6] = t[src[i+6]]
		dst[i+7] = t[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] = t[src[i]]
	}
}

// MulSliceXor sets dst[i] ^= c*src[i] for all i. This is the kernel of
// both parity generation and delta parity updates.
func MulSliceXor(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf: MulSliceXor length mismatch %d != %d", len(src), len(dst)))
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	t := MulTable(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= t[src[i]]
		dst[i+1] ^= t[src[i+1]]
		dst[i+2] ^= t[src[i+2]]
		dst[i+3] ^= t[src[i+3]]
		dst[i+4] ^= t[src[i+4]]
		dst[i+5] ^= t[src[i+5]]
		dst[i+6] ^= t[src[i+6]]
		dst[i+7] ^= t[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] ^= t[src[i]]
	}
}

// XorSlice sets dst[i] ^= src[i] for all i (multiplication by 1).
// Word-at-a-time via unrolled byte ops; the compiler vectorizes this
// shape well.
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf: XorSlice length mismatch %d != %d", len(src), len(dst)))
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
