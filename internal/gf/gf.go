// Package gf implements arithmetic over the Galois field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by the
// Jerasure/GF-Complete stack the paper builds on. Addition is XOR;
// multiplication and division are driven by logarithm/antilogarithm
// tables built once at package initialization.
//
// Besides scalar operations the package provides slice kernels
// (MulSlice, MulSliceXor, XorSlice) that apply one coefficient to a
// whole buffer. These are the inner loops of Reed-Solomon encoding,
// decoding, and delta parity updates, so they process eight bytes per
// 64-bit word: each word is split into four 16-bit halves and mapped
// through a per-coefficient 65536-entry product table whose entries
// are the pairwise products of both bytes — the split-table scheme of
// GF-Complete's region operations, widened from nibbles to bytes
// because scalar Go has no PSHUFB. XorSlice (multiplication by one,
// the first parity row of our Cauchy matrices) defers to
// crypto/subtle.XORBytes, which the runtime implements with the
// platform's vector ISA. The byte-at-a-time kernels remain as
// MulSliceRef/MulSliceXorRef/XorSliceRef reference implementations,
// used by the differential and fuzz tests to pin bit-exactness.
package gf

import (
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Poly is the primitive polynomial defining the field, with the x^8
// term included (0x11d = x^8+x^4+x^3+x^2+1).
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

var (
	// expTbl[i] = g^i where g=2 is a generator. Doubled in length so
	// Mul can add logs without reducing mod 255.
	expTbl [2 * 255]byte
	// logTbl[x] = log_g(x); logTbl[0] is unused (log of zero is
	// undefined) and left as 0.
	logTbl [256]byte
	// mulTbl[c] is the 256-entry row of products c*x for every x.
	// All 256 rows (64 KiB) are materialized eagerly in init so
	// MulTable is a branch-free lookup that is safe to call from
	// concurrent encode/recovery goroutines.
	mulTbl [256][256]byte
	// invTbl[x] = x^-1; invTbl[0] unused.
	invTbl [256]byte
	// wordTbl[c] is the 65536-entry split product table for the
	// word-wide kernels: entry i is the product of c with both bytes
	// of i, packed in the same byte order (see wordTable). Each table
	// is 128 KiB, so rows are built lazily on first use of the
	// coefficient and published with an atomic CAS; an RS(k,m) code
	// touches only the coefficients of its coding matrix.
	wordTbl [256]atomic.Pointer[[1 << 16]uint16]
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTbl[i] = byte(x)
		expTbl[i+255] = byte(x)
		logTbl[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 1; i < 256; i++ {
		invTbl[i] = Exp(255 - int(logTbl[i]))
	}
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			mulTbl[c][x] = Mul(byte(c), byte(x))
		}
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[int(logTbl[a])+int(logTbl[b])]
}

// Div returns a/b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTbl[a]) - int(logTbl[b])
	if d < 0 {
		d += 255
	}
	return expTbl[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return invTbl[a]
}

// Exp returns g^n for the generator g=2. Negative n is reduced modulo
// 255 into the principal range.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTbl[n]
}

// Log returns log_g(a). It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTbl[a])
}

// Pow returns a^n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return Exp(Log(a) * n % 255)
}

// MulTable returns the 256-entry product row for coefficient c:
// row[x] == Mul(c, x). The returned array is shared and must not be
// modified. Rows are precomputed at package init, so the call is a
// data-race-free constant-time lookup.
func MulTable(c byte) *[256]byte {
	return &mulTbl[c]
}

// wordTable returns the split product table for coefficient c,
// building and publishing it on first use. Multiplication in GF(2^8)
// is byte-local, so applying the table to a 16-bit lane multiplies
// both bytes at once; four lane lookups cover a 64-bit word.
//
//ring:hotpath
func wordTable(c byte) *[1 << 16]uint16 {
	if t := wordTbl[c].Load(); t != nil {
		return t
	}
	return buildWordTable(c)
}

// buildWordTable materializes wordTbl[c]. Concurrent builders race
// benignly: the CAS keeps the first published table, and every build
// produces identical contents.
//
//ring:hotpath-stop cold one-time table construction (128 KiB allocation)
func buildWordTable(c byte) *[1 << 16]uint16 {
	t := new([1 << 16]uint16)
	row := &mulTbl[c]
	for i := range t {
		t[i] = uint16(row[i&0xff]) | uint16(row[i>>8])<<8
	}
	wordTbl[c].CompareAndSwap(nil, t)
	return wordTbl[c].Load()
}

// WarmTables pre-builds the split product tables for the given
// coefficients. Encoders call it at construction with their coding
// matrix so the first write of a connection never pays the 128 KiB
// table build inside the commit path.
func WarmTables(coeffs ...byte) {
	for _, c := range coeffs {
		if c > 1 {
			wordTable(c)
		}
	}
}

//ring:hotpath-stop cold panic constructor
func panicLen(kernel string, ns, nd int) {
	panic(fmt.Sprintf("gf: %s length mismatch %d != %d", kernel, ns, nd))
}

// MulSlice sets dst[i] = c*src[i] for all i. dst and src must have the
// same length (it panics otherwise). c==0 zeroes dst; c==1 copies.
//
//ring:hotpath
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panicLen("MulSlice", len(src), len(dst))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	t := wordTable(c)
	// Slice-advance main loop: re-slicing by a constant after the
	// length guard lets the compiler drop every bounds check in the
	// 32-byte body (an indexed loop would re-check per load).
	for len(src) >= 32 && len(dst) >= 32 {
		w0 := binary.LittleEndian.Uint64(src[0:8])
		w1 := binary.LittleEndian.Uint64(src[8:16])
		w2 := binary.LittleEndian.Uint64(src[16:24])
		w3 := binary.LittleEndian.Uint64(src[24:32])
		r0 := uint64(t[w0&0xffff]) | uint64(t[w0>>16&0xffff])<<16 |
			uint64(t[w0>>32&0xffff])<<32 | uint64(t[w0>>48])<<48
		r1 := uint64(t[w1&0xffff]) | uint64(t[w1>>16&0xffff])<<16 |
			uint64(t[w1>>32&0xffff])<<32 | uint64(t[w1>>48])<<48
		r2 := uint64(t[w2&0xffff]) | uint64(t[w2>>16&0xffff])<<16 |
			uint64(t[w2>>32&0xffff])<<32 | uint64(t[w2>>48])<<48
		r3 := uint64(t[w3&0xffff]) | uint64(t[w3>>16&0xffff])<<16 |
			uint64(t[w3>>32&0xffff])<<32 | uint64(t[w3>>48])<<48
		binary.LittleEndian.PutUint64(dst[0:8], r0)
		binary.LittleEndian.PutUint64(dst[8:16], r1)
		binary.LittleEndian.PutUint64(dst[16:24], r2)
		binary.LittleEndian.PutUint64(dst[24:32], r3)
		src = src[32:]
		dst = dst[32:]
	}
	row := &mulTbl[c]
	for i := range src {
		dst[i] = row[src[i]]
	}
}

// MulSliceXor sets dst[i] ^= c*src[i] for all i. This is the kernel of
// both parity generation and delta parity updates.
//
//ring:hotpath
func MulSliceXor(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panicLen("MulSliceXor", len(src), len(dst))
	}
	if c == 0 {
		return
	}
	if c == 1 {
		// The first parity row of our (normalized Cauchy) coding
		// matrices is all ones, so this dispatch routes a full 1/m of
		// parity work through the vectorized XOR.
		XorSlice(src, dst)
		return
	}
	t := wordTable(c)
	for len(src) >= 32 && len(dst) >= 32 {
		w0 := binary.LittleEndian.Uint64(src[0:8])
		w1 := binary.LittleEndian.Uint64(src[8:16])
		w2 := binary.LittleEndian.Uint64(src[16:24])
		w3 := binary.LittleEndian.Uint64(src[24:32])
		r0 := uint64(t[w0&0xffff]) | uint64(t[w0>>16&0xffff])<<16 |
			uint64(t[w0>>32&0xffff])<<32 | uint64(t[w0>>48])<<48
		r1 := uint64(t[w1&0xffff]) | uint64(t[w1>>16&0xffff])<<16 |
			uint64(t[w1>>32&0xffff])<<32 | uint64(t[w1>>48])<<48
		r2 := uint64(t[w2&0xffff]) | uint64(t[w2>>16&0xffff])<<16 |
			uint64(t[w2>>32&0xffff])<<32 | uint64(t[w2>>48])<<48
		r3 := uint64(t[w3&0xffff]) | uint64(t[w3>>16&0xffff])<<16 |
			uint64(t[w3>>32&0xffff])<<32 | uint64(t[w3>>48])<<48
		binary.LittleEndian.PutUint64(dst[0:8], binary.LittleEndian.Uint64(dst[0:8])^r0)
		binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(dst[8:16])^r1)
		binary.LittleEndian.PutUint64(dst[16:24], binary.LittleEndian.Uint64(dst[16:24])^r2)
		binary.LittleEndian.PutUint64(dst[24:32], binary.LittleEndian.Uint64(dst[24:32])^r3)
		src = src[32:]
		dst = dst[32:]
	}
	row := &mulTbl[c]
	for i := range src {
		dst[i] ^= row[src[i]]
	}
}

// XorSlice sets dst[i] ^= src[i] for all i (multiplication by 1).
// subtle.XORBytes is the stdlib's vectorized XOR; dst aliasing dst
// exactly is explicitly permitted by its contract.
//
//ring:hotpath
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panicLen("XorSlice", len(src), len(dst))
	}
	subtle.XORBytes(dst, dst, src)
}

// ------------------------------------------------ reference kernels
//
// The byte-at-a-time kernels the word-wide versions replaced. They
// stay as the ground truth for differential and fuzz tests and as the
// baseline the BENCH trajectory measures speedups against.

// MulSliceRef is the byte-wise reference for MulSlice.
func MulSliceRef(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panicLen("MulSliceRef", len(src), len(dst))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	t := MulTable(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] = t[src[i]]
		dst[i+1] = t[src[i+1]]
		dst[i+2] = t[src[i+2]]
		dst[i+3] = t[src[i+3]]
		dst[i+4] = t[src[i+4]]
		dst[i+5] = t[src[i+5]]
		dst[i+6] = t[src[i+6]]
		dst[i+7] = t[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] = t[src[i]]
	}
}

// MulSliceXorRef is the byte-wise reference for MulSliceXor.
func MulSliceXorRef(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panicLen("MulSliceXorRef", len(src), len(dst))
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSliceRef(src, dst)
		return
	}
	t := MulTable(c)
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= t[src[i]]
		dst[i+1] ^= t[src[i+1]]
		dst[i+2] ^= t[src[i+2]]
		dst[i+3] ^= t[src[i+3]]
		dst[i+4] ^= t[src[i+4]]
		dst[i+5] ^= t[src[i+5]]
		dst[i+6] ^= t[src[i+6]]
		dst[i+7] ^= t[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] ^= t[src[i]]
	}
}

// XorSliceRef is the byte-wise reference for XorSlice.
func XorSliceRef(src, dst []byte) {
	if len(src) != len(dst) {
		panicLen("XorSliceRef", len(src), len(dst))
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
