package gf

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xca) != 0x53^0xca {
		t.Fatalf("Add(0x53,0xca) = %#x", Add(0x53, 0xca))
	}
	if Sub(0x53, 0xca) != Add(0x53, 0xca) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulKnownValues(t *testing.T) {
	// Hand-checked products under polynomial 0x11d.
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 0xff, 0xff},
		{2, 2, 4},
		{2, 0x80, 0x1d}, // 0x100 reduced by 0x11d
		{3, 3, 5},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for x := 0; x < 256; x++ {
		if Mul(1, byte(x)) != byte(x) {
			t.Fatalf("1*%d != %d", x, x)
		}
		if Mul(0, byte(x)) != 0 {
			t.Fatalf("0*%d != 0", x)
		}
	}
}

func TestInvAndDiv(t *testing.T) {
	for x := 1; x < 256; x++ {
		b := byte(x)
		if Mul(b, Inv(b)) != 1 {
			t.Fatalf("x*Inv(x) != 1 for x=%d", x)
		}
		if Div(b, b) != 1 {
			t.Fatalf("x/x != 1 for x=%d", x)
		}
	}
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for x := 1; x < 256; x++ {
		if Exp(Log(byte(x))) != byte(x) {
			t.Fatalf("Exp(Log(%d)) != %d", x, x)
		}
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("negative exponent not reduced")
	}
	if Exp(255) != Exp(0) {
		t.Fatal("Exp not periodic with 255")
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Fatal("x^0 must be 1 even for x=0 (empty product convention)")
	}
	if Pow(0, 3) != 0 {
		t.Fatal("0^3 must be 0")
	}
	for x := 1; x < 256; x++ {
		b := byte(x)
		want := byte(1)
		for n := 0; n < 6; n++ {
			if got := Pow(b, n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", x, n, got, want)
			}
			want = Mul(want, b)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	// g=2 must generate all 255 nonzero elements.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator produced %d distinct elements, want 255", len(seen))
	}
}

func TestMulTableMatchesMul(t *testing.T) {
	for _, c := range []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff} {
		tbl := MulTable(c)
		for x := 0; x < 256; x++ {
			if tbl[x] != Mul(c, byte(x)) {
				t.Fatalf("MulTable(%d)[%d] mismatch", c, x)
			}
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		src := randBytes(rng, n)
		for _, c := range []byte{0, 1, 2, 0xaa} {
			dst := make([]byte, n)
			MulSlice(c, src, dst)
			for i := range src {
				if dst[i] != Mul(c, src[i]) {
					t.Fatalf("MulSlice c=%d n=%d idx=%d", c, n, i)
				}
			}
		}
	}
}

func TestMulSliceXor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 15, 16, 17, 255} {
		src := randBytes(rng, n)
		base := randBytes(rng, n)
		for _, c := range []byte{0, 1, 3, 0x7f} {
			dst := append([]byte(nil), base...)
			MulSliceXor(c, src, dst)
			for i := range src {
				if dst[i] != base[i]^Mul(c, src[i]) {
					t.Fatalf("MulSliceXor c=%d n=%d idx=%d", c, n, i)
				}
			}
		}
	}
}

func TestXorSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randBytes(rng, 100)
	base := randBytes(rng, 100)
	dst := append([]byte(nil), base...)
	XorSlice(src, dst)
	for i := range src {
		if dst[i] != base[i]^src[i] {
			t.Fatalf("XorSlice idx=%d", i)
		}
	}
	// XOR twice restores the original.
	XorSlice(src, dst)
	if !bytes.Equal(dst, base) {
		t.Fatal("double XOR did not restore original")
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulSliceXor": func() { MulSliceXor(2, make([]byte, 3), make([]byte, 4)) },
		"XorSlice":    func() { XorSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMulSliceLinearity(t *testing.T) {
	// c*(a ^ b) == c*a ^ c*b over whole slices.
	rng := rand.New(rand.NewSource(4))
	a := randBytes(rng, 512)
	b := randBytes(rng, 512)
	ab := make([]byte, 512)
	copy(ab, a)
	XorSlice(b, ab)
	for _, c := range []byte{2, 5, 0x8e} {
		lhs := make([]byte, 512)
		MulSlice(c, ab, lhs)
		rhs := make([]byte, 512)
		MulSlice(c, a, rhs)
		MulSliceXor(c, b, rhs)
		if !bytes.Equal(lhs, rhs) {
			t.Fatalf("linearity violated for c=%d", c)
		}
	}
}

func BenchmarkMulSliceXor1KiB(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	rand.New(rand.NewSource(5)).Read(src)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceXor(0x57, src, dst)
	}
}

func BenchmarkXorSlice1KiB(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(src, dst)
	}
}

func TestMulSliceXorAllocs(t *testing.T) {
	// The GF kernels are the inner loop of encode/recovery: pinned at
	// zero allocations once a coefficient's split product table has
	// been built (the one-time 128 KiB build is warmed up explicitly
	// here; steady-state encode/delta traffic reuses it).
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	rand.New(rand.NewSource(7)).Read(src)
	for _, c := range []byte{0, 1, 0x57} {
		MulSliceXor(c, src, dst) // warm the lazy word table
		allocs := testing.AllocsPerRun(100, func() {
			MulSliceXor(c, src, dst)
		})
		if allocs != 0 {
			t.Errorf("MulSliceXor(c=%#x): %.1f allocs/op, want 0", c, allocs)
		}
	}
	MulSlice(0x9e, src, dst)
	if allocs := testing.AllocsPerRun(100, func() { MulSlice(0x9e, src, dst) }); allocs != 0 {
		t.Errorf("MulSlice: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { XorSlice(src, dst) }); allocs != 0 {
		t.Errorf("XorSlice: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = MulTable(0x3c) }); allocs != 0 {
		t.Errorf("MulTable: %.1f allocs/op, want 0", allocs)
	}
}

func TestMulTableConcurrent(t *testing.T) {
	// The 256 byte rows are precomputed in init; the 128 KiB word
	// tables are built lazily and CAS-published, so concurrent
	// first-touch from parallel encode goroutines must be race-free
	// (run under -race).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := make([]byte, 256)
			dst := make([]byte, 256)
			for c := 0; c < 256; c++ {
				MulSliceXor(byte(c), src, dst)
				if got := MulTable(byte(c))[3]; got != Mul(byte(c), 3) {
					t.Errorf("row %d wrong", c)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
