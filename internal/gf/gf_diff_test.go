package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestKernelDifferential pins the word-wide kernels bit-exact against
// the byte-wise references across lengths around every boundary the
// word loop cares about (sub-word, word, 32-byte unroll block), odd
// alignments within a backing array, and every coefficient.
func TestKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 256, 1000, 4096}
	aligns := []int{0, 1, 3, 7}
	for _, n := range lengths {
		for _, a := range aligns {
			backing := randBytes(rng, n+a)
			src := backing[a : a+n]
			base := randBytes(rng, n)
			for c := 0; c < 256; c++ {
				cb := byte(c)
				want := make([]byte, n)
				got := make([]byte, n)
				MulSliceRef(cb, src, want)
				MulSlice(cb, src, got)
				if !bytes.Equal(want, got) {
					t.Fatalf("MulSlice c=%d n=%d align=%d diverges from reference", c, n, a)
				}
				copy(want, base)
				copy(got, base)
				MulSliceXorRef(cb, src, want)
				MulSliceXor(cb, src, got)
				if !bytes.Equal(want, got) {
					t.Fatalf("MulSliceXor c=%d n=%d align=%d diverges from reference", c, n, a)
				}
			}
			want := append([]byte(nil), base...)
			got := append([]byte(nil), base...)
			XorSliceRef(src, want)
			XorSlice(src, got)
			if !bytes.Equal(want, got) {
				t.Fatalf("XorSlice n=%d align=%d diverges from reference", n, a)
			}
		}
	}
}

// TestKernelInPlace pins the aliasing contract: dst == src is the
// common shape of in-place scaling during matrix inversion.
func TestKernelInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 31, 32, 100, 4096} {
		orig := randBytes(rng, n)
		for _, c := range []byte{0, 1, 2, 0x8e, 0xff} {
			want := make([]byte, n)
			MulSliceRef(c, orig, want)
			got := append([]byte(nil), orig...)
			MulSlice(c, got, got)
			if !bytes.Equal(want, got) {
				t.Fatalf("in-place MulSlice c=%d n=%d diverges", c, n)
			}
		}
	}
}

// FuzzGFKernels cross-checks the word-wide kernels against the
// byte-wise references on fuzzer-chosen coefficients, lengths, and
// alignments (ci.sh runs this as a 10s smoke).
func FuzzGFKernels(f *testing.F) {
	f.Add(byte(0), uint8(0), []byte{})
	f.Add(byte(1), uint8(1), []byte("0123456789abcdef0123456789abcdef0123456789abcdef"))
	f.Add(byte(2), uint8(3), []byte("parity"))
	f.Add(byte(0x8e), uint8(7), bytes.Repeat([]byte{0xa5, 0x17}, 64))
	f.Fuzz(func(t *testing.T, c byte, align uint8, data []byte) {
		off := int(align % 8)
		if off > len(data) {
			off = len(data)
		}
		src := data[off:]
		n := len(src)
		base := make([]byte, n)
		for i := range base {
			base[i] = byte(i*131 + 17)
		}

		want := make([]byte, n)
		got := make([]byte, n)
		MulSliceRef(c, src, want)
		MulSlice(c, src, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulSlice c=%d n=%d off=%d diverges from reference", c, n, off)
		}

		copy(want, base)
		copy(got, base)
		MulSliceXorRef(c, src, want)
		MulSliceXor(c, src, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulSliceXor c=%d n=%d off=%d diverges from reference", c, n, off)
		}

		copy(want, base)
		copy(got, base)
		XorSliceRef(src, want)
		XorSlice(src, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("XorSlice n=%d off=%d diverges from reference", n, off)
		}

		// Field identity on top of the differential check: applying c
		// then c^-1 must restore the input (for invertible c).
		if c > 1 && n > 0 {
			inv := Inv(c)
			tmp := make([]byte, n)
			MulSlice(c, src, tmp)
			MulSlice(inv, tmp, tmp)
			if !bytes.Equal(tmp, src) {
				t.Fatalf("c * c^-1 != identity for c=%d n=%d", c, n)
			}
		}
	})
}

// The 4 KiB benchmark pairs below are the before/after the BENCH
// trajectory records: <kernel> is the word-wide implementation,
// <kernel>Ref the byte-wise baseline it must beat.

func benchPair(b *testing.B, n int, word, ref func(src, dst []byte)) {
	src := make([]byte, n)
	dst := make([]byte, n)
	rand.New(rand.NewSource(13)).Read(src)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			word(src, dst)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			ref(src, dst)
		}
	})
}

func BenchmarkMulSlice4KiB(b *testing.B) {
	benchPair(b, 4096,
		func(s, d []byte) { MulSlice(0x57, s, d) },
		func(s, d []byte) { MulSliceRef(0x57, s, d) })
}

func BenchmarkMulSliceXor4KiB(b *testing.B) {
	benchPair(b, 4096,
		func(s, d []byte) { MulSliceXor(0x57, s, d) },
		func(s, d []byte) { MulSliceXorRef(0x57, s, d) })
}

func BenchmarkXorSlice4KiB(b *testing.B) {
	benchPair(b, 4096, XorSlice, XorSliceRef)
}
