package baselines

import (
	"testing"
	"time"
)

func TestMemcachedLatencyBand(t *testing.T) {
	// Paper: memcached put/get ~55 µs, ~10x Ring's REP1 (~5 µs).
	m := Memcached()
	for _, size := range []int{8, 512, 2048} {
		if l := m.GetLatency(size); l < 40*time.Microsecond || l > 80*time.Microsecond {
			t.Fatalf("memcached get(%d) = %v, want ~55µs", size, l)
		}
		if l := m.PutLatency(size); l < 40*time.Microsecond || l > 80*time.Microsecond {
			t.Fatalf("memcached put(%d) = %v, want ~55µs", size, l)
		}
	}
}

func TestDareMatchesRingRegime(t *testing.T) {
	// Dare gets are RDMA-fast (~5 µs), puts ~1 replication round.
	d := Dare()
	if l := d.GetLatency(1024); l < 3*time.Microsecond || l > 10*time.Microsecond {
		t.Fatalf("Dare get = %v, want ~5µs", l)
	}
	if p, g := d.PutLatency(1024), d.GetLatency(1024); p < g || p > 4*g {
		t.Fatalf("Dare put %v vs get %v out of regime", p, g)
	}
}

func TestRAMCloudDiskDominatesPuts(t *testing.T) {
	r := RAMCloud()
	p := r.PutLatency(512)
	if p < 35*time.Microsecond || p > 60*time.Microsecond {
		t.Fatalf("RAMCloud put = %v, paper says ~45µs median", p)
	}
	// Gets stay RDMA-fast.
	if g := r.GetLatency(512); g > 10*time.Microsecond {
		t.Fatalf("RAMCloud get = %v", g)
	}
}

func TestCocytusSlowestPutPath(t *testing.T) {
	c := Cocytus()
	d := Dare()
	if c.PutLatency(1024) < 5*d.PutLatency(1024) {
		t.Fatalf("Cocytus put %v should be far above Dare %v", c.PutLatency(1024), d.PutLatency(1024))
	}
	if c.GetLatency(1024) < 10*d.GetLatency(1024) {
		t.Fatalf("Cocytus get %v should be far above Dare %v", c.GetLatency(1024), d.GetLatency(1024))
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	for _, m := range All() {
		last := time.Duration(0)
		for size := 64; size <= 64<<10; size *= 4 {
			p := m.PutLatency(size)
			if p < last {
				t.Fatalf("%s: put latency not monotone at %d", m.Name, size)
			}
			last = p
		}
	}
}

func TestThroughputOrdering(t *testing.T) {
	// Figure 9: Ring's comparable memgests beat the baselines; among
	// baselines, Cocytus's erasure path is slowest for puts.
	co := Cocytus().PutThroughput(1024)
	da := Dare().PutThroughput(1024)
	if co >= da {
		t.Fatalf("Cocytus put throughput %.0f should trail Dare %.0f", co, da)
	}
	// Cocytus caps out around the paper's ~220K req/s for 1KiB.
	if co < 50e3 || co > 500e3 {
		t.Fatalf("Cocytus put throughput %.0f/s outside plausible band", co)
	}
	for _, m := range All() {
		if m.GetThroughput(1024) <= 0 || m.PutThroughput(1024) <= 0 {
			t.Fatalf("%s throughput nonpositive", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Dare"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(All()) != 4 {
		t.Fatal("four baselines expected")
	}
}
