// Package baselines models the four comparator systems of the paper's
// evaluation — memcached, Dare, RAMCloud, and Cocytus — as explicit
// hop-and-compute latency/throughput models built from the same
// vocabulary as the Ring simulator's cost model.
//
// Each baseline is characterized by the property the paper cites for
// it:
//
//   - memcached: no RDMA; kernel TCP adds ~25 µs per direction, so
//     puts and gets sit around 55 µs — about 10x Ring's REP1.
//   - Dare: RDMA state-machine replication with replication factor 3;
//     gets match Ring's (both answer from the leader over RDMA), puts
//     pay one RDMA round to a majority, like Ring's REP3.
//   - RAMCloud: RDMA to the master, but puts are replicated to 2
//     disk-backed backups; on the paper's HDD testbed that pins put
//     latency around 45 µs while gets stay RDMA-fast.
//   - Cocytus: RS(3,2) erasure coding without RDMA (10 GbE) and with
//     primary-backup metadata; the paper reports ~500 µs gets and puts
//     around 30x Ring's for 1 KiB objects.
//
// The models expose PutLatency/GetLatency as functions of object size
// and a server-side throughput cap, which is what Figures 7c and 9
// consume. The substitution (model instead of the authors' binaries)
// is recorded in DESIGN.md.
package baselines

import (
	"fmt"
	"time"
)

// Model is one comparator system.
type Model struct {
	Name string
	// oneWay is the one-way network latency of the system's fabric.
	oneWay time.Duration
	// bytesPerSec is the fabric bandwidth.
	bytesPerSec float64
	// cpuPut/cpuGet are fixed server-side costs per operation.
	cpuPut, cpuGet time.Duration
	// putPerByte is extra per-byte put work (encoding, disk staging).
	putPerByte time.Duration
	// putRounds is the number of sequential network rounds a put pays
	// beyond the client round trip (replication, backup, parity).
	putRounds int
	// putFanout is the number of messages sent per replication round
	// (serialized on the sender NIC).
	putFanout int
	// commitExtra is a fixed commit-path delay (e.g. disk buffering on
	// HDD-backed RAMCloud).
	commitExtra time.Duration
}

func (m Model) String() string { return m.Name }

func (m Model) tx(size int) time.Duration {
	return time.Duration(float64(size) / m.bytesPerSec * 1e9)
}

// GetLatency returns the modeled client-observed get latency.
func (m Model) GetLatency(size int) time.Duration {
	// request out, processing, response back with the object.
	return m.oneWay + m.cpuGet + m.tx(size) + m.oneWay
}

// PutLatency returns the modeled client-observed put latency.
func (m Model) PutLatency(size int) time.Duration {
	l := m.oneWay + m.tx(size) // client -> server with the object
	l += m.cpuPut + time.Duration(size)*m.putPerByte
	for r := 0; r < m.putRounds; r++ {
		// One replication round: fan-out serialized on the NIC, then
		// the farthest ack.
		l += time.Duration(m.putFanout)*m.tx(size) + 2*m.oneWay
	}
	l += m.commitExtra
	l += m.oneWay // ack to client
	return l
}

// PutThroughput returns the server-side put saturation rate
// (single-threaded, like all systems under comparison).
func (m Model) PutThroughput(size int) float64 {
	per := m.cpuPut + time.Duration(size)*m.putPerByte +
		time.Duration(m.putFanout*m.putRounds)*m.tx(size) + m.tx(size)
	if per <= 0 {
		return 0
	}
	return float64(time.Second) / float64(per)
}

// GetThroughput returns the server-side get saturation rate.
func (m Model) GetThroughput(size int) float64 {
	per := m.cpuGet + m.tx(size)
	return float64(time.Second) / float64(per)
}

// Constants shared with the Ring simulator's default model.
const (
	rdmaOneWay = 1700 * time.Nanosecond
	rdmaBW     = 3.2e9
	tcpOneWay  = 25 * time.Microsecond // kernel stack + interrupt
	tenGbE     = 1.1e9
)

// Memcached returns the memcached-like model: unreplicated cache over
// kernel TCP.
func Memcached() Model {
	return Model{
		Name:        "memcached",
		oneWay:      tcpOneWay,
		bytesPerSec: tenGbE,
		cpuPut:      1500 * time.Nanosecond,
		cpuGet:      1500 * time.Nanosecond,
	}
}

// Dare returns the Dare-like model: RDMA SMR with replication factor
// 3 (one RDMA round to a majority per put).
func Dare() Model {
	return Model{
		Name:        "Dare",
		oneWay:      rdmaOneWay,
		bytesPerSec: rdmaBW,
		cpuPut:      1100 * time.Nanosecond,
		cpuGet:      900 * time.Nanosecond,
		putRounds:   1,
		putFanout:   2,
	}
}

// RAMCloud returns the RAMCloud-like model: RDMA front, puts
// replicated to 2 disk-backed backups; the paper's testbed had HDDs,
// which dominates the put path (~45 µs median).
func RAMCloud() Model {
	return Model{
		Name:        "RAMCloud",
		oneWay:      rdmaOneWay,
		bytesPerSec: rdmaBW,
		cpuPut:      1200 * time.Nanosecond,
		cpuGet:      900 * time.Nanosecond,
		putRounds:   1,
		putFanout:   2,
		commitExtra: 36 * time.Microsecond, // HDD write buffering
	}
}

// Cocytus returns the Cocytus-like model: RS(3,2) erasure coding with
// primary-backup metadata over 10 GbE, no RDMA.
func Cocytus() Model {
	return Model{
		Name:        "Cocytus",
		oneWay:      tcpOneWay,
		bytesPerSec: tenGbE,
		cpuPut:      3 * time.Microsecond,
		cpuGet:      2 * time.Microsecond,
		putPerByte:  2 * time.Nanosecond, // RS(3,2) encode + delta build
		putRounds:   2,                   // metadata backup + parity round
		putFanout:   2,
	}
}

// All returns the four baseline models.
func All() []Model {
	return []Model{Memcached(), Dare(), RAMCloud(), Cocytus()}
}

// ByName looks a model up.
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("baselines: unknown model %q", name)
}
