package srs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeStretchedParallelMatchesSequential pins the parallel
// stripe fan-out bit-exact against inline encoding for layouts with
// several stripes, including worker counts above the stripe count.
func TestEncodeStretchedParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, geom := range []struct{ k, m, s int }{
		{2, 1, 4}, {3, 2, 4}, {2, 2, 6}, {4, 2, 6},
	} {
		l := MustLayout(geom.k, geom.m, geom.s)
		data := make([][]byte, l.L)
		for i := range data {
			data[i] = make([]byte, 512)
			rng.Read(data[i])
		}
		want, err := l.EncodeStretchedParallel(data, 1)
		if err != nil {
			t.Fatalf("%v sequential: %v", l, err)
		}
		for _, workers := range []int{0, 2, 3, 64} {
			got, err := l.EncodeStretchedParallel(data, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", l, workers, err)
			}
			for r := range want {
				for s := range want[r] {
					if !bytes.Equal(want[r][s], got[r][s]) {
						t.Fatalf("%v workers=%d parity[%d][%d] diverges", l, workers, r, s)
					}
				}
			}
		}
	}
}

// TestEncodeStretchedLargeTriggersParallel drives EncodeStretched over
// the parallel threshold and re-verifies recovery, guarding the
// automatic fan-out path end to end.
func TestEncodeStretchedLargeTriggersParallel(t *testing.T) {
	l := MustLayout(3, 2, 4) // 12 logical blocks, 4 stripes
	rng := rand.New(rand.NewSource(22))
	data := make([][]byte, l.L)
	for i := range data {
		data[i] = make([]byte, 64<<10)
		rng.Read(data[i])
	}
	parity, err := l.EncodeStretched(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one data block and recover it through the stripe.
	b := 5
	survivorData := map[int][]byte{}
	for i, d := range data {
		if i != b {
			survivorData[i] = d
		}
	}
	survivorParity := map[ParityKey][]byte{}
	for r := range parity {
		for s, p := range parity[r] {
			survivorParity[ParityKey{Node: r, Offset: s}] = p
		}
	}
	got, err := l.RecoverBlock(b, survivorData, survivorParity)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[b]) {
		t.Fatal("recovered block diverges from original after parallel encode")
	}
}
