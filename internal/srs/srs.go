// Package srs implements Stretched Reed-Solomon coding, the paper's
// central contribution (Section 3.3).
//
// An SRS(k,m,s) code applies the RS(k,m) coding algorithm to the data
// but spreads ("stretches") the data blocks over s >= k data nodes
// instead of k. The original data is divided into l = lcm(k,s) logical
// blocks; each of the s data nodes stores l/s consecutive logical
// blocks and each of the m parity nodes stores l/k parity blocks.
// Because every scheme with the same s exposes s data shards, all
// SRS(k,m,s) and Rep(r,s) schemes in one memgest group share the
// single key-to-node mapping i = h(key) mod s, which is what lets Ring
// look keys up without knowing their storage scheme and move keys
// between schemes locally.
//
// The logical-block index space works as follows (all 0-based):
//
//   - logical data blocks b in [0, l) are assigned to data node
//     b / (l/s);
//   - block b belongs to stripe position j = b / (l/k) (the column
//     block of the expanded matrix Hexp = H ∘ E of Eqn. (2)) at
//     stripe offset t = b mod (l/k);
//   - parity node r stores parity blocks P[r][t] for t in [0, l/k),
//     with P[r][t] = XOR_j g_rj * D[j*(l/k) + t].
//
// A write to logical block b therefore produces, for every parity
// node r, a delta g_{r, j(b)} * (old XOR new) applied at parity offset
// t(b), which is exactly the update path the Ring coordinator runs.
package srs

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"ring/internal/gf"
	"ring/internal/rs"
)

// Layout describes an SRS(k,m,s) code and the derived block geometry.
type Layout struct {
	K int // RS data blocks
	M int // RS parity blocks (and parity nodes)
	S int // data nodes the k blocks are stretched over (s >= k)
	L int // lcm(k, s): number of logical data blocks

	enc *rs.Encoder
}

// lcm returns the least common multiple of a and b.
func lcm(a, b int) int { return a / gcd(a, b) * b }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewLayout validates the parameters and computes the geometry.
// SRS(k,m,k) is identical to RS(k,m).
func NewLayout(k, m, s int) (*Layout, error) {
	if k < 1 {
		return nil, fmt.Errorf("srs: k must be >= 1, got %d", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("srs: m must be >= 0, got %d", m)
	}
	if s < k {
		return nil, fmt.Errorf("srs: s (%d) must be >= k (%d)", s, k)
	}
	enc, err := rs.NewEncoder(k, m)
	if err != nil {
		return nil, err
	}
	return &Layout{K: k, M: m, S: s, L: lcm(k, s), enc: enc}, nil
}

// MustLayout is NewLayout that panics on error, for tests and tables
// of static configurations.
func MustLayout(k, m, s int) *Layout {
	l, err := NewLayout(k, m, s)
	if err != nil {
		panic(err)
	}
	return l
}

// String formats the scheme like the paper: SRS(k,m,s).
func (l *Layout) String() string { return fmt.Sprintf("SRS(%d,%d,%d)", l.K, l.M, l.S) }

// Encoder exposes the underlying RS(k,m) encoder.
func (l *Layout) Encoder() *rs.Encoder { return l.enc }

// BlocksPerDataNode returns l/s, the logical blocks held by each data
// node.
func (l *Layout) BlocksPerDataNode() int { return l.L / l.S }

// BlocksPerParityNode returns l/k, the parity blocks held by each
// parity node (also the number of stripes).
func (l *Layout) BlocksPerParityNode() int { return l.L / l.K }

// Stripes returns the number of independent RS stripes, l/k.
func (l *Layout) Stripes() int { return l.L / l.K }

// TotalNodes returns s+m.
func (l *Layout) TotalNodes() int { return l.S + l.M }

// DataNodeOf returns the data node holding logical block b.
func (l *Layout) DataNodeOf(b int) int {
	l.checkBlock(b)
	return b / l.BlocksPerDataNode()
}

// NodeBlocks returns the half-open range [lo, hi) of logical blocks
// held by data node i.
func (l *Layout) NodeBlocks(i int) (lo, hi int) {
	if i < 0 || i >= l.S {
		panic(fmt.Sprintf("srs: data node %d out of range [0,%d)", i, l.S))
	}
	per := l.BlocksPerDataNode()
	return i * per, (i + 1) * per
}

// StripePos returns the RS stripe position (column block j of Hexp) of
// logical block b; the generator coefficient for parity r is G[r][j].
func (l *Layout) StripePos(b int) int {
	l.checkBlock(b)
	return b / l.Stripes()
}

// StripeOffset returns the offset t of logical block b within its
// stripe; parity for b lives at parity-local block t on every parity
// node.
func (l *Layout) StripeOffset(b int) int {
	l.checkBlock(b)
	return b % l.Stripes()
}

// BlockAt returns the logical block at stripe position j, offset t —
// the inverse of (StripePos, StripeOffset).
func (l *Layout) BlockAt(j, t int) int {
	if j < 0 || j >= l.K {
		panic(fmt.Sprintf("srs: stripe position %d out of range [0,%d)", j, l.K))
	}
	if t < 0 || t >= l.Stripes() {
		panic(fmt.Sprintf("srs: stripe offset %d out of range [0,%d)", t, l.Stripes()))
	}
	return j*l.Stripes() + t
}

// Coefficient returns the generator coefficient g applied to updates
// of logical block b when propagated to parity node r: the parity
// delta is g * (old XOR new).
func (l *Layout) Coefficient(r, b int) byte {
	return l.enc.Coefficient(r, l.StripePos(b))
}

func (l *Layout) checkBlock(b int) {
	if b < 0 || b >= l.L {
		panic(fmt.Sprintf("srs: logical block %d out of range [0,%d)", b, l.L))
	}
}

// StripeMembers returns, for stripe offset t, the logical data blocks
// participating in the stripe, ordered by stripe position.
func (l *Layout) StripeMembers(t int) []int {
	out := make([]int, l.K)
	for j := 0; j < l.K; j++ {
		out[j] = l.BlockAt(j, t)
	}
	return out
}

// EncodeStretched computes the parity blocks for l logical data
// blocks. data must contain exactly L equally sized blocks. The result
// is indexed parity[r][t]: parity node r, stripe offset t.
//
// Stripes are independent RS codewords, so large encodes (at least
// parallelEncodeBytes of data per stripe) are fanned out across
// GOMAXPROCS workers; see EncodeStretchedParallel for explicit
// control.
func (l *Layout) EncodeStretched(data [][]byte) ([][][]byte, error) {
	workers := 1
	if l.Stripes() > 1 && len(data) == l.L && len(data[0])*l.K >= parallelEncodeBytes {
		workers = 0 // let EncodeStretchedParallel pick GOMAXPROCS
	}
	return l.EncodeStretchedParallel(data, workers)
}

// parallelEncodeBytes is the per-stripe data volume below which the
// goroutine fan-out of EncodeStretched costs more than it saves.
const parallelEncodeBytes = 64 << 10

// EncodeStretchedParallel is EncodeStretched with an explicit worker
// count: the Stripes() independent RS stripes are encoded by
// min(workers, stripes) goroutines. workers <= 0 selects GOMAXPROCS;
// workers == 1 encodes inline with no goroutines.
func (l *Layout) EncodeStretchedParallel(data [][]byte, workers int) ([][][]byte, error) {
	if len(data) != l.L {
		return nil, fmt.Errorf("srs: got %d logical blocks, want %d", len(data), l.L)
	}
	stripes := l.Stripes()
	parity := make([][][]byte, l.M)
	for r := range parity {
		parity[r] = make([][]byte, stripes)
	}
	encodeStripe := func(t int) error {
		stripe := make([][]byte, l.K)
		for j := 0; j < l.K; j++ {
			stripe[j] = data[l.BlockAt(j, t)]
		}
		ps, err := l.enc.Encode(stripe)
		if err != nil {
			return err
		}
		for r := 0; r < l.M; r++ {
			parity[r][t] = ps[r]
		}
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > stripes {
		workers = stripes
	}
	if workers <= 1 {
		for t := 0; t < stripes; t++ {
			if err := encodeStripe(t); err != nil {
				return nil, err
			}
		}
		return parity, nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= stripes {
					return
				}
				if err := encodeStripe(t); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return parity, nil
}

// RecoverBlock reconstructs logical data block b from survivors:
// survivorData maps logical block index -> contents, survivorParity
// maps (parity node, stripe offset) via ParityKey -> contents. Only
// blocks from b's stripe are consulted. This mirrors the paper's
// online decoding: the recovery master collects any k corresponding
// blocks from the coding stripe and decodes.
func (l *Layout) RecoverBlock(b int, survivorData map[int][]byte, survivorParity map[ParityKey][]byte) ([]byte, error) {
	t := l.StripeOffset(b)
	want := l.StripePos(b)
	survivors := make(map[int][]byte, l.K)
	for j := 0; j < l.K; j++ {
		if j == want {
			continue
		}
		if d, ok := survivorData[l.BlockAt(j, t)]; ok {
			survivors[j] = d
		}
	}
	for r := 0; r < l.M; r++ {
		if p, ok := survivorParity[ParityKey{Node: r, Offset: t}]; ok {
			survivors[l.K+r] = p
		}
	}
	return l.enc.ReconstructShard(want, survivors)
}

// RecoverParityBlock reconstructs parity block (r, t) from the stripe's
// data blocks (re-encoding), requiring all k data blocks of stripe t.
func (l *Layout) RecoverParityBlock(r, t int, stripeData map[int][]byte) ([]byte, error) {
	survivors := make(map[int][]byte, l.K)
	for j := 0; j < l.K; j++ {
		d, ok := stripeData[l.BlockAt(j, t)]
		if !ok {
			return nil, fmt.Errorf("srs: stripe %d missing data block at position %d", t, j)
		}
		survivors[j] = d
	}
	return l.enc.ReconstructShard(l.K+r, survivors)
}

// ParityKey addresses one parity block: parity node r, stripe offset t.
type ParityKey struct {
	Node   int
	Offset int
}

// ParityDelta computes the deltas to apply at each parity node when
// logical block b changes by delta (= old XOR new): out[r] must be
// XORed into parity node r at stripe offset StripeOffset(b).
func (l *Layout) ParityDelta(b int, delta []byte) [][]byte {
	out := make([][]byte, l.M)
	j := l.StripePos(b)
	for r := 0; r < l.M; r++ {
		d := make([]byte, len(delta))
		gf.MulSlice(l.enc.Coefficient(r, j), delta, d)
		out[r] = d
	}
	return out
}

// CanTolerate reports whether the code survives the simultaneous
// failure of the given nodes. Node indices 0..s-1 are data nodes,
// s..s+m-1 are parity nodes. Because RS(k,m) is MDS, a stripe is
// recoverable iff it loses at most m of its k+m blocks; the whole
// system survives iff every stripe does. Stretching means failed data
// nodes may hit disjoint stripes, which is why SRS can sometimes
// tolerate more than m failures (e.g. SRS(2,1,4) survives the loss of
// two data nodes holding independent blocks).
func (l *Layout) CanTolerate(failed []int) bool {
	failedParity := 0
	failedDataNode := make([]bool, l.S)
	for _, n := range failed {
		switch {
		case n < 0 || n >= l.S+l.M:
			panic(fmt.Sprintf("srs: node %d out of range [0,%d)", n, l.S+l.M))
		case n < l.S:
			failedDataNode[n] = true
		default:
			failedParity++
		}
	}
	if failedParity > l.M {
		return false
	}
	// Count data losses per stripe position set: stripe t loses block
	// at position j iff the node holding BlockAt(j,t) failed.
	for t := 0; t < l.Stripes(); t++ {
		lost := failedParity
		for j := 0; j < l.K; j++ {
			if failedDataNode[l.DataNodeOf(l.BlockAt(j, t))] {
				lost++
			}
		}
		if lost > l.M {
			return false
		}
	}
	return true
}

// TolerationProbability returns f_{i-1} of Appendix A.2: the fraction
// of all i-subsets of the s+m nodes whose simultaneous failure the
// code tolerates, computed by exact enumeration.
func (l *Layout) TolerationProbability(i int) float64 {
	n := l.S + l.M
	if i < 0 || i > n {
		return 0
	}
	if i == 0 {
		return 1
	}
	total, ok := 0, 0
	subset := make([]int, 0, i)
	var rec func(start int)
	rec = func(start int) {
		if len(subset) == i {
			total++
			if l.CanTolerate(subset) {
				ok++
			}
			return
		}
		for v := start; v < n; v++ {
			subset = append(subset, v)
			rec(v + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// MaxTolerated returns u of Appendix A.2: the largest number of
// simultaneous node failures with nonzero survival probability.
func (l *Layout) MaxTolerated() int {
	u := 0
	for i := 1; i <= l.S+l.M; i++ {
		if l.TolerationProbability(i) > 0 {
			u = i
		} else {
			break
		}
	}
	return u
}

// ExpandedMatrix returns Hexp of Eqn. (2): the (l + lm/k) x l matrix
// obtained as the entry-wise expansion H ∘ E with E_ij = I_{l/k}. It
// is used by tests to verify that the block-level layout math encodes
// identically to the matrix formulation.
func (l *Layout) ExpandedMatrix() rs.Matrix {
	h := l.enc.CodingMatrix()
	blk := l.Stripes() // l/k
	rows := l.L + l.M*blk
	out := rs.NewMatrix(rows, l.L)
	for bi := 0; bi < l.K+l.M; bi++ {
		for bj := 0; bj < l.K; bj++ {
			c := h[bi][bj]
			if c == 0 {
				continue
			}
			for d := 0; d < blk; d++ {
				out[bi*blk+d][bj*blk+d] = c
			}
		}
	}
	return out
}

// StorageOverhead returns the memory overhead factor of the scheme:
// (k+m)/k. Stretching does not change the total volume of stored data,
// only its distribution.
func (l *Layout) StorageOverhead() float64 {
	return float64(l.K+l.M) / float64(l.K)
}

// SchemeCount returns the number of distinct erasure-coded storage
// schemes sharing stretch factor s, which the paper gives as
// s(s-1)/2 (all SRS(k,m,s) with 2 <= k <= s and 1 <= m < k).
func SchemeCount(s int) int {
	return s * (s - 1) / 2
}

// CountSubsets returns C(n, r) using 64-bit arithmetic; it panics on
// overflow, which cannot happen for the node counts used here.
func CountSubsets(n, r int) int {
	if r < 0 || r > n {
		return 0
	}
	if r > n-r {
		r = n - r
	}
	acc := uint64(1)
	for i := 0; i < r; i++ {
		hi, lo := bits.Mul64(acc, uint64(n-i))
		if hi != 0 {
			panic("srs: binomial overflow")
		}
		acc = lo / uint64(i+1)
	}
	return int(acc)
}
