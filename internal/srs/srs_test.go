package srs

import (
	"bytes"
	"math/rand"
	"testing"

	"ring/internal/gf"
	"ring/internal/rs"
)

func TestNewLayoutValidation(t *testing.T) {
	for _, c := range []struct{ k, m, s int }{{0, 1, 3}, {3, -1, 3}, {3, 1, 2}, {300, 1, 300}} {
		if _, err := NewLayout(c.k, c.m, c.s); err == nil {
			t.Errorf("NewLayout(%d,%d,%d) should fail", c.k, c.m, c.s)
		}
	}
	l := MustLayout(2, 1, 3)
	if l.L != 6 {
		t.Fatalf("lcm(2,3) = %d, want 6", l.L)
	}
	if l.String() != "SRS(2,1,3)" {
		t.Fatalf("String = %q", l.String())
	}
}

func TestGeometrySRS213(t *testing.T) {
	// The paper's worked example: l=6, 2 blocks per data node,
	// 3 parity blocks on the parity node, stripes t=0,1,2 with
	// P[t] = D[t] ^ D[t+3] (Eqn. (4), 0-based).
	l := MustLayout(2, 1, 3)
	if l.BlocksPerDataNode() != 2 || l.BlocksPerParityNode() != 3 || l.Stripes() != 3 {
		t.Fatalf("geometry: %d %d %d", l.BlocksPerDataNode(), l.BlocksPerParityNode(), l.Stripes())
	}
	wantNode := []int{0, 0, 1, 1, 2, 2}
	wantPos := []int{0, 0, 0, 1, 1, 1}
	wantOff := []int{0, 1, 2, 0, 1, 2}
	for b := 0; b < 6; b++ {
		if l.DataNodeOf(b) != wantNode[b] {
			t.Errorf("DataNodeOf(%d) = %d, want %d", b, l.DataNodeOf(b), wantNode[b])
		}
		if l.StripePos(b) != wantPos[b] {
			t.Errorf("StripePos(%d) = %d, want %d", b, l.StripePos(b), wantPos[b])
		}
		if l.StripeOffset(b) != wantOff[b] {
			t.Errorf("StripeOffset(%d) = %d, want %d", b, l.StripeOffset(b), wantOff[b])
		}
		if l.BlockAt(l.StripePos(b), l.StripeOffset(b)) != b {
			t.Errorf("BlockAt inverse failed for %d", b)
		}
	}
	lo, hi := l.NodeBlocks(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("NodeBlocks(1) = [%d,%d)", lo, hi)
	}
}

func TestSRSkmkIsRS(t *testing.T) {
	// SRS(k,m,k) must be identical to RS(k,m): one block per stripe
	// position per ... l == k, one block per node.
	l := MustLayout(3, 2, 3)
	if l.L != 3 || l.BlocksPerDataNode() != 1 || l.Stripes() != 1 {
		t.Fatalf("SRS(3,2,3) geometry wrong: l=%d", l.L)
	}
	for b := 0; b < 3; b++ {
		if l.DataNodeOf(b) != b || l.StripePos(b) != b || l.StripeOffset(b) != 0 {
			t.Fatalf("block %d mapping wrong", b)
		}
	}
}

func TestEncodeStretchedMatchesEqn4(t *testing.T) {
	// SRS(2,1,3): P[t] = D[t] ^ D[t+3] per Eqn. (4) (1-based in the
	// paper; 0-based here).
	l := MustLayout(2, 1, 3)
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 32)
		rng.Read(data[i])
	}
	parity, err := l.EncodeStretched(data)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 3; tt++ {
		want := make([]byte, 32)
		copy(want, data[tt])
		gf.XorSlice(data[tt+3], want)
		if !bytes.Equal(parity[0][tt], want) {
			t.Fatalf("parity[0][%d] != D%d ^ D%d", tt, tt, tt+3)
		}
	}
}

func TestEncodeStretchedMatchesExpandedMatrix(t *testing.T) {
	// Block-level encoding must equal the Hexp matrix-vector product of
	// Eqn. (2) applied byte-column-wise.
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 3}, {3, 2, 3}, {2, 2, 4}, {3, 1, 5}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		rng := rand.New(rand.NewSource(int64(cfg.k*100 + cfg.s)))
		const sz = 16
		data := make([][]byte, l.L)
		for i := range data {
			data[i] = make([]byte, sz)
			rng.Read(data[i])
		}
		parity, err := l.EncodeStretched(data)
		if err != nil {
			t.Fatal(err)
		}
		hexp := l.ExpandedMatrix()
		blk := l.Stripes()
		for row := 0; row < hexp.Rows(); row++ {
			want := make([]byte, sz)
			for col := 0; col < l.L; col++ {
				gf.MulSliceXor(hexp[row][col], data[col], want)
			}
			var got []byte
			if row < l.L {
				got = data[row]
			} else {
				p := row - l.L
				got = parity[p/blk][p%blk]
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: Hexp row %d mismatch", l, row)
			}
		}
	}
}

func TestExpandedMatrixShape(t *testing.T) {
	l := MustLayout(2, 1, 3)
	h := l.ExpandedMatrix()
	if h.Rows() != 9 || h.Cols() != 6 {
		t.Fatalf("Hexp shape %dx%d, want 9x6", h.Rows(), h.Cols())
	}
	// Eqn. (5): the top 6x6 must be the identity and the bottom rows
	// XOR pairs (1 0 0 1 0 0 / 0 1 0 0 1 0 / 0 0 1 0 0 1).
	if !h.SubMatrix(0, 6, 0, 6).Equal(rs.Identity(6)) {
		t.Fatal("top of Hexp is not identity")
	}
	for tt := 0; tt < 3; tt++ {
		row := h[6+tt]
		for c := 0; c < 6; c++ {
			want := byte(0)
			if c == tt || c == tt+3 {
				want = 1
			}
			if row[c] != want {
				t.Fatalf("Hexp parity row %d col %d = %d, want %d", tt, c, row[c], want)
			}
		}
	}
}

func TestParityDeltaConsistent(t *testing.T) {
	// Applying ParityDelta after a block update must reproduce a full
	// re-encode.
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 3}, {3, 2, 4}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		rng := rand.New(rand.NewSource(42))
		const sz = 64
		data := make([][]byte, l.L)
		for i := range data {
			data[i] = make([]byte, sz)
			rng.Read(data[i])
		}
		parity, _ := l.EncodeStretched(data)
		for b := 0; b < l.L; b++ {
			newBlock := make([]byte, sz)
			rng.Read(newBlock)
			delta := make([]byte, sz)
			copy(delta, data[b])
			gf.XorSlice(newBlock, delta)

			deltas := l.ParityDelta(b, delta)
			tOff := l.StripeOffset(b)
			upd := make([][][]byte, l.M)
			for r := 0; r < l.M; r++ {
				upd[r] = make([][]byte, l.Stripes())
				for tt := 0; tt < l.Stripes(); tt++ {
					upd[r][tt] = append([]byte(nil), parity[r][tt]...)
				}
				gf.XorSlice(deltas[r], upd[r][tOff])
			}

			newData := make([][]byte, l.L)
			copy(newData, data)
			newData[b] = newBlock
			want, _ := l.EncodeStretched(newData)
			for r := 0; r < l.M; r++ {
				for tt := 0; tt < l.Stripes(); tt++ {
					if !bytes.Equal(upd[r][tt], want[r][tt]) {
						t.Fatalf("%s block %d: parity[%d][%d] mismatch", l, b, r, tt)
					}
				}
			}
		}
	}
}

func TestRecoverBlock(t *testing.T) {
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 3}, {3, 1, 3}, {3, 2, 3}, {2, 1, 4}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		rng := rand.New(rand.NewSource(int64(cfg.s)))
		const sz = 48
		data := make([][]byte, l.L)
		for i := range data {
			data[i] = make([]byte, sz)
			rng.Read(data[i])
		}
		parity, _ := l.EncodeStretched(data)
		survivorParity := make(map[ParityKey][]byte)
		for r := 0; r < l.M; r++ {
			for tt := 0; tt < l.Stripes(); tt++ {
				survivorParity[ParityKey{r, tt}] = parity[r][tt]
			}
		}
		for b := 0; b < l.L; b++ {
			survivorData := make(map[int][]byte)
			for i := range data {
				if i != b {
					survivorData[i] = data[i]
				}
			}
			got, err := l.RecoverBlock(b, survivorData, survivorParity)
			if err != nil {
				t.Fatalf("%s block %d: %v", l, b, err)
			}
			if !bytes.Equal(got, data[b]) {
				t.Fatalf("%s block %d: wrong recovery", l, b)
			}
		}
	}
}

func TestRecoverBlockInsufficient(t *testing.T) {
	l := MustLayout(3, 1, 3)
	data := make([][]byte, 3)
	for i := range data {
		data[i] = make([]byte, 8)
	}
	// Only one survivor of stripe with k=3: must fail.
	if _, err := l.RecoverBlock(0, map[int][]byte{1: data[1]}, nil); err == nil {
		t.Fatal("expected failure with too few survivors")
	}
}

func TestRecoverParityBlock(t *testing.T) {
	l := MustLayout(2, 2, 4)
	rng := rand.New(rand.NewSource(5))
	data := make([][]byte, l.L)
	for i := range data {
		data[i] = make([]byte, 24)
		rng.Read(data[i])
	}
	parity, _ := l.EncodeStretched(data)
	all := make(map[int][]byte)
	for i, d := range data {
		all[i] = d
	}
	for r := 0; r < l.M; r++ {
		for tt := 0; tt < l.Stripes(); tt++ {
			got, err := l.RecoverParityBlock(r, tt, all)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, parity[r][tt]) {
				t.Fatalf("parity (%d,%d) recovery wrong", r, tt)
			}
		}
	}
}

func TestCanTolerateSRS214(t *testing.T) {
	// The paper: SRS(2,1,4) tolerates two simultaneous failures when
	// two independent data servers fail. Nodes 0..3 data, node 4 parity.
	// Stripe t contains blocks {t, t+2} held by nodes {t, t+2}.
	l := MustLayout(2, 1, 4)
	cases := []struct {
		failed []int
		want   bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{4}, true},
		{[]int{0, 1}, true},  // different stripes
		{[]int{0, 3}, true},  // different stripes
		{[]int{0, 2}, false}, // same stripe
		{[]int{1, 3}, false}, // same stripe
		{[]int{0, 4}, false}, // data + the only parity
		{[]int{0, 1, 2}, false},
	}
	for _, c := range cases {
		if got := l.CanTolerate(c.failed); got != c.want {
			t.Errorf("CanTolerate(%v) = %v, want %v", c.failed, got, c.want)
		}
	}
}

func TestCanTolerateUpToM(t *testing.T) {
	// Any scheme must tolerate every failure set of size <= m.
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 3}, {3, 2, 4}, {3, 2, 6}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		for i := 0; i <= l.M; i++ {
			if p := l.TolerationProbability(i); p != 1 {
				t.Errorf("%s: f_%d = %v, want 1", l, i, p)
			}
		}
	}
}

func TestTolerationProbabilitySRS214(t *testing.T) {
	// C(5,2)=10 two-subsets; tolerated: {0,1},{0,3},{1,2},{2,3} = 4/10.
	l := MustLayout(2, 1, 4)
	if p := l.TolerationProbability(2); p != 0.4 {
		t.Fatalf("f_2 = %v, want 0.4 (paper: probability 2/5)", p)
	}
	if u := l.MaxTolerated(); u != 2 {
		t.Fatalf("MaxTolerated = %d, want 2", u)
	}
}

func TestCanTolerateMatchesRankOracle(t *testing.T) {
	// The counting implementation must agree with an exhaustive
	// GF-rank check on the expanded matrix: survivors' rows of Hexp
	// must span all l data columns.
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 3}, {2, 1, 4}, {3, 2, 4}, {2, 2, 4}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		hexp := l.ExpandedMatrix()
		blk := l.Stripes()
		n := l.S + l.M
		for mask := 0; mask < 1<<n; mask++ {
			var failed []int
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					failed = append(failed, b)
				}
			}
			// Collect surviving Hexp rows.
			var rows []int
			for b := 0; b < l.L; b++ {
				if mask&(1<<l.DataNodeOf(b)) == 0 {
					rows = append(rows, b)
				}
			}
			for r := 0; r < l.M; r++ {
				if mask&(1<<(l.S+r)) == 0 {
					for tt := 0; tt < blk; tt++ {
						rows = append(rows, l.L+r*blk+tt)
					}
				}
			}
			recoverable := false
			if len(rows) >= l.L {
				recoverable = hexp.PickRows(rows).Rank() == l.L
			}
			if got := l.CanTolerate(failed); got != recoverable {
				t.Fatalf("%s: CanTolerate(%v) = %v, rank oracle says %v", l, failed, got, recoverable)
			}
		}
	}
}

func TestStripeMembers(t *testing.T) {
	l := MustLayout(2, 1, 3)
	got := l.StripeMembers(1)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("StripeMembers(1) = %v, want [1 4]", got)
	}
}

func TestStorageOverhead(t *testing.T) {
	if o := MustLayout(3, 2, 3).StorageOverhead(); o < 1.66 || o > 1.67 {
		t.Fatalf("RS(3,2) overhead = %v, want ~1.66 (paper Table, 1.66x)", o)
	}
	if o := MustLayout(3, 2, 6).StorageOverhead(); o < 1.66 || o > 1.67 {
		t.Fatal("stretching must not change storage overhead")
	}
}

func TestSchemeCount(t *testing.T) {
	// Paper: the number of erasure coded schemes with given s is s(s-1)/2.
	if SchemeCount(4) != 6 {
		t.Fatalf("SchemeCount(4) = %d", SchemeCount(4))
	}
}

func TestCountSubsets(t *testing.T) {
	cases := []struct{ n, r, want int }{{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {10, 3, 120}, {5, 6, 0}, {5, -1, 0}}
	for _, c := range cases {
		if got := CountSubsets(c.n, c.r); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestPanicsOnBadIndices(t *testing.T) {
	l := MustLayout(2, 1, 3)
	for name, f := range map[string]func(){
		"DataNodeOf":  func() { l.DataNodeOf(6) },
		"StripePos":   func() { l.StripePos(-1) },
		"NodeBlocks":  func() { l.NodeBlocks(3) },
		"BlockAt":     func() { l.BlockAt(2, 0) },
		"CanTolerate": func() { l.CanTolerate([]int{9}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkEncodeStretchedSRS323_64KiB(b *testing.B) {
	l := MustLayout(3, 2, 3)
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, l.L)
	for i := range data {
		data[i] = make([]byte, 64*1024/l.L)
		rng.Read(data[i])
	}
	b.SetBytes(64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.EncodeStretched(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestToleranceMonotone: if a failure set is not tolerable, no
// superset of it is tolerable either (checked by random sampling).
func TestToleranceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 4}, {3, 2, 5}, {2, 2, 6}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		n := l.S + l.M
		for trial := 0; trial < 200; trial++ {
			// Draw a random subset.
			var set []int
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					set = append(set, i)
				}
			}
			if l.CanTolerate(set) || len(set) == n {
				continue
			}
			// Extend with one more random node: must stay intolerable.
			extra := rng.Intn(n)
			in := false
			for _, v := range set {
				if v == extra {
					in = true
				}
			}
			if in {
				continue
			}
			if l.CanTolerate(append(append([]int{}, set...), extra)) {
				t.Fatalf("%s: superset of intolerable set %v became tolerable", l, set)
			}
		}
	}
}

// TestTolerationProbabilityMonotone: f_i is non-increasing in i.
func TestTolerationProbabilityMonotone(t *testing.T) {
	for _, cfg := range []struct{ k, m, s int }{{2, 1, 4}, {3, 1, 5}, {3, 2, 6}} {
		l := MustLayout(cfg.k, cfg.m, cfg.s)
		last := 1.0
		for i := 0; i <= l.S+l.M; i++ {
			p := l.TolerationProbability(i)
			if p > last+1e-12 {
				t.Fatalf("%s: f_%d = %v above f_%d = %v", l, i, p, i-1, last)
			}
			last = p
		}
	}
}
