package srs

import (
	"bytes"
	"testing"
)

// FuzzSRSRoundTrip fuzzes the stretched-RS geometry end to end: encode
// L logical blocks under a fuzzer-chosen (k, m, s), erase up to m
// members of one coding stripe, and require RecoverBlock to rebuild a
// lost data block bit-exactly and RecoverParityBlock to re-encode a
// parity block bit-exactly. This is the paper's per-stripe durability
// claim — any m losses within a stripe are survivable — checked over
// arbitrary geometry and contents.
func FuzzSRSRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(3), uint8(4), []byte("seed data"), uint16(0b10))
	f.Add(uint8(3), uint8(2), uint8(3), uint8(8), []byte{0xFF, 0x00, 0xA5}, uint16(0b11))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), []byte{}, uint16(0))
	f.Add(uint8(4), uint8(3), uint8(5), uint8(16), []byte("0123456789abcdef"), uint16(0b101))

	f.Fuzz(func(t *testing.T, kk, mm, ss, bs uint8, data []byte, dropMask uint16) {
		k := 1 + int(kk%4)
		m := 1 + int(mm%3)
		s := k + int(ss%3) // s >= k by construction
		blockSize := 1 + int(bs%32)
		l, err := NewLayout(k, m, s)
		if err != nil {
			t.Fatalf("NewLayout(%d,%d,%d): %v", k, m, s, err)
		}

		// Fill the L logical blocks cyclically from the fuzz data.
		blocks := make([][]byte, l.L)
		for b := range blocks {
			blocks[b] = make([]byte, blockSize)
			for i := range blocks[b] {
				if len(data) > 0 {
					blocks[b][i] = data[(b*blockSize+i)%len(data)]
				} else {
					blocks[b][i] = byte(b + i)
				}
			}
		}
		parity, err := l.EncodeStretched(blocks)
		if err != nil {
			t.Fatalf("EncodeStretched: %v", err)
		}

		// Target the stripe of logical block `lost`, then erase the
		// target plus up to m-1 further members picked by dropMask.
		lost := int(dropMask>>8) % l.L
		tOff := l.StripeOffset(lost)
		members := l.StripeMembers(tOff) // k data block ids then m parity rows
		dropped := map[int]bool{}        // index into members
		dropped[l.StripePos(lost)] = true
		for i := 0; len(dropped) < m && i < len(members); i++ {
			if dropMask&(1<<i) != 0 {
				dropped[i] = true
			}
		}

		survivorData := map[int][]byte{}
		for b := 0; b < l.L; b++ {
			if l.StripeOffset(b) == tOff && dropped[l.StripePos(b)] {
				continue
			}
			survivorData[b] = blocks[b]
		}
		survivorParity := map[ParityKey][]byte{}
		for r := 0; r < l.M; r++ {
			for tt := 0; tt < l.Stripes(); tt++ {
				if tt == tOff && dropped[l.K+r] {
					continue
				}
				survivorParity[ParityKey{Node: r, Offset: tt}] = parity[r][tt]
			}
		}

		got, err := l.RecoverBlock(lost, survivorData, survivorParity)
		if err != nil {
			t.Fatalf("SRS(%d,%d,%d) RecoverBlock(%d) with %d erasures: %v", k, m, s, lost, len(dropped), err)
		}
		if !bytes.Equal(got, blocks[lost]) {
			t.Fatalf("SRS(%d,%d,%d) RecoverBlock(%d) mismatch:\n got=%x\nwant=%x", k, m, s, lost, got, blocks[lost])
		}

		// Parity re-encoding from intact data must also be bit-exact.
		full := map[int][]byte{}
		for b := 0; b < l.L; b++ {
			full[b] = blocks[b]
		}
		for r := 0; r < l.M; r++ {
			gotP, err := l.RecoverParityBlock(r, tOff, full)
			if err != nil {
				t.Fatalf("RecoverParityBlock(%d,%d): %v", r, tOff, err)
			}
			if !bytes.Equal(gotP, parity[r][tOff]) {
				t.Fatalf("SRS(%d,%d,%d) RecoverParityBlock(%d,%d) mismatch", k, m, s, r, tOff)
			}
		}
	})
}
