// Package status exposes a node's operational state over HTTP for
// monitoring: a JSON snapshot at /status, Prometheus-style text
// metrics at /metrics, the full instrumentation document at
// /debug/ringvars (per-memgest op counters, commit-latency
// histograms, transport/client counters), and the most recent
// operations at /debug/trace. ringd serves it with the -http flag;
// `ringctl stats` scrapes and aggregates it cluster-wide.
package status

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"ring/internal/core"
	"ring/internal/proto"
)

// Snapshot is the JSON document served at /status.
type Snapshot struct {
	NodeID   proto.NodeID    `json:"node_id"`
	Epoch    proto.Epoch     `json:"epoch"`
	Leader   proto.NodeID    `json:"leader"`
	IsLeader bool            `json:"is_leader"`
	Serving  bool            `json:"serving"`
	Shards   []uint32        `json:"shards"`
	Memgests []MemgestStatus `json:"memgests"`
	Stats    core.Stats      `json:"stats"`
}

// MemgestStatus summarizes one memgest from this node's perspective.
type MemgestStatus struct {
	ID     proto.MemgestID `json:"id"`
	Scheme string          `json:"scheme"`
	Label  string          `json:"label"`
}

// Collect builds a snapshot from a quiesced node.
func Collect(n *core.Node) Snapshot {
	cfg := n.Config()
	s := Snapshot{
		NodeID:   n.ID(),
		Epoch:    cfg.Epoch,
		Leader:   cfg.Leader,
		IsLeader: n.IsLeader(),
		Serving:  n.Serving(),
		Stats:    n.Stats,
	}
	for i, c := range cfg.Coords {
		if c == n.ID() {
			s.Shards = append(s.Shards, uint32(i))
		}
	}
	for _, m := range cfg.Memgests {
		s.Memgests = append(s.Memgests, MemgestStatus{
			ID: m.ID, Scheme: m.Scheme.String(), Label: m.Scheme.Label(),
		})
	}
	return s
}

// Server serves /status and /metrics for one runner.
type Server struct {
	runner *core.Runner
	ln     net.Listener
	srv    *http.Server
}

// Serve starts the HTTP listener on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the server; Close stops it.
func Serve(r *core.Runner, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("status: listen %s: %w", addr, err)
	}
	s := &Server{runner: r, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/ringvars", s.handleRingvars)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) snapshot() Snapshot {
	var snap Snapshot
	s.runner.Inspect(func(n *core.Node) { snap = Collect(n) })
	return snap
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "ring_node_id %d\n", snap.NodeID)
	fmt.Fprintf(w, "ring_epoch %d\n", snap.Epoch)
	fmt.Fprintf(w, "ring_is_leader %d\n", b(snap.IsLeader))
	fmt.Fprintf(w, "ring_serving %d\n", b(snap.Serving))
	fmt.Fprintf(w, "ring_shards_owned %d\n", len(snap.Shards))
	fmt.Fprintf(w, "ring_memgests %d\n", len(snap.Memgests))
	st := snap.Stats
	fmt.Fprintf(w, "ring_puts_total %d\n", st.Puts)
	fmt.Fprintf(w, "ring_gets_total %d\n", st.Gets)
	fmt.Fprintf(w, "ring_deletes_total %d\n", st.Deletes)
	fmt.Fprintf(w, "ring_moves_total %d\n", st.Moves)
	fmt.Fprintf(w, "ring_commits_total %d\n", st.Commits)
	fmt.Fprintf(w, "ring_parked_gets_total %d\n", st.ParkedGets)
	fmt.Fprintf(w, "ring_parity_updates_total %d\n", st.ParityUpdates)
	fmt.Fprintf(w, "ring_rep_appends_total %d\n", st.RepAppends)
	fmt.Fprintf(w, "ring_blocks_recovered_total %d\n", st.BlocksRecovered)
	fmt.Fprintf(w, "ring_meta_recoveries_total %d\n", st.MetaRecovs)
	fmt.Fprintf(w, "ring_bytes_written_total %d\n", st.BytesWritten)
	fmt.Fprintf(w, "ring_bytes_parity_xor_total %d\n", st.BytesParityXor)
	fmt.Fprintf(w, "ring_bytes_decoded_total %d\n", st.BytesDecoded)
}
