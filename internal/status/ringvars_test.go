package status

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ring/internal/client"
	"ring/internal/core"
	"ring/internal/metrics"
	"ring/internal/proto"
)

// startObservedCluster boots a cluster with a status server on every
// node and returns the scrape addresses.
func startObservedCluster(t *testing.T, spec core.ClusterSpec) (*core.Cluster, []string) {
	t.Helper()
	cl, err := core.StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	var addrs []string
	for id := proto.NodeID(0); int(id) < len(cl.Runs); id++ {
		srv, err := Serve(cl.Runs[id], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
	}
	return cl, addrs
}

// TestRingvarsAggregateExactCounts runs a scripted workload against a
// live cluster, scrapes /debug/ringvars from every node, and checks
// the aggregated counters reproduce the workload exactly — the
// contract that makes the observability layer trustworthy.
func TestRingvarsAggregateExactCounts(t *testing.T) {
	cl, addrs := startObservedCluster(t, core.ClusterSpec{
		Shards: 3, Redundant: 2,
		Memgests: []proto.Scheme{proto.Rep(3, 3), proto.SRS(3, 2, 3)},
	})

	c, err := client.Dial(cl.Fabric, []string{core.NodeAddr(0)}, client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The scripted workload: 6 puts into the Rep memgest, 4 into the
	// SRS memgest, 5 gets, 1 delete from each memgest.
	for i := 0; i < 6; i++ {
		if _, err := c.PutIn(fmt.Sprintf("rep-%d", i), []byte("replicated"), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := c.PutIn(fmt.Sprintf("srs-%d", i), []byte("erasure-coded-value"), 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.Get(fmt.Sprintf("rep-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("rep-0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("srs-0"); err != nil {
		t.Fatal(err)
	}

	cs, errs := CollectStats(addrs)
	if len(errs) != 0 {
		t.Fatalf("scrape errors: %v", errs)
	}
	if cs.Nodes != len(addrs) {
		t.Fatalf("aggregated %d of %d nodes", cs.Nodes, len(addrs))
	}
	// The runner gauge crossed the HTTP+JSON boundary: every scraped
	// document reports this process's runners, at least one per node.
	if cs.RunnerGoroutines < int64(len(addrs)) {
		t.Fatalf("RunnerGoroutines = %d, want >= %d", cs.RunnerGoroutines, len(addrs))
	}
	if cs.Stats.Puts != 10 || cs.Stats.Gets != 5 || cs.Stats.Deletes != 2 {
		t.Fatalf("cluster ops: puts=%d gets=%d deletes=%d", cs.Stats.Puts, cs.Stats.Gets, cs.Stats.Deletes)
	}
	if cs.Stats.Commits != 12 {
		t.Fatalf("cluster commits = %d, want 12", cs.Stats.Commits)
	}
	mg1, mg2 := cs.Memgests[1], cs.Memgests[2]
	if mg1.Puts != 6 || mg1.Gets != 5 || mg1.Deletes != 1 || mg1.Commits != 7 {
		t.Fatalf("memgest 1 counts: %+v", mg1)
	}
	if mg2.Puts != 4 || mg2.Gets != 0 || mg2.Deletes != 1 || mg2.Commits != 5 {
		t.Fatalf("memgest 2 counts: %+v", mg2)
	}
	// Commit latency histograms split by scheme kind, one sample per
	// commit: 7 Rep (6 puts + 1 delete), 5 SRS.
	if cs.CommitRep.Count != 7 || cs.CommitSRS.Count != 5 {
		t.Fatalf("commit latency samples: rep=%d srs=%d", cs.CommitRep.Count, cs.CommitSRS.Count)
	}
	var bucketSum uint64
	for _, b := range cs.CommitRep.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != cs.CommitRep.Count {
		t.Fatalf("rep histogram buckets sum to %d, count %d", bucketSum, cs.CommitRep.Count)
	}

	// The rendered view carries the same numbers.
	var buf bytes.Buffer
	RenderStats(&buf, cs)
	out := buf.String()
	for _, want := range []string{
		"ops: puts=10 gets=5 deletes=2",
		"memgest 1: puts=6 gets=5 deletes=1",
		"memgest 2: puts=4 gets=0 deletes=1",
		"commit latency REP: n=7",
		"commit latency SRS: n=5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// Watch mode renders one block per round.
	buf.Reset()
	if err := WatchStats(&buf, addrs, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "--- "); got != 2 {
		t.Fatalf("watch rendered %d rounds, want 2:\n%s", got, buf.String())
	}
}

// TestAggregateProcessGauges checks that the runner-goroutine and
// group queue-depth gauges fold from the process section of ringvars
// into the cluster view — including values that went through a JSON
// round trip and therefore arrive as float64.
func TestAggregateProcessGauges(t *testing.T) {
	nodes := []Ringvars{
		{Process: map[string]any{
			"core.runner_goroutines":   float64(3), // as decoded from JSON
			"core.group.0.queue_depth": float64(2),
			"core.group.1.queue_depth": int64(5), // as from an in-process snapshot
			"transport.something":      "not a number",
		}},
		{Process: map[string]any{
			"core.runner_goroutines":   int64(2),
			"core.group.0.queue_depth": uint64(1),
			"core.group.oops":          float64(9), // malformed name: ignored
		}},
	}
	cs := Aggregate(nodes)
	if cs.RunnerGoroutines != 5 {
		t.Fatalf("RunnerGoroutines = %d, want 5", cs.RunnerGoroutines)
	}
	if cs.GroupQueueDepth[0] != 3 || cs.GroupQueueDepth[1] != 5 || len(cs.GroupQueueDepth) != 2 {
		t.Fatalf("GroupQueueDepth = %v, want {0:3 1:5}", cs.GroupQueueDepth)
	}

	var buf bytes.Buffer
	RenderStats(&buf, cs)
	if out := buf.String(); !strings.Contains(out, "runners: goroutines=5 group0_queue=3 group1_queue=5") {
		t.Fatalf("render missing runner line:\n%s", out)
	}
}

// TestTraceEndpoint drives /debug/trace: recent operations come back
// newest-last with rendered op names, the n parameter truncates, and
// malformed values are a client error, not a panic.
func TestTraceEndpoint(t *testing.T) {
	cl, addrs := startObservedCluster(t, core.ClusterSpec{
		Shards: 1, Redundant: 0,
		Memgests: []proto.Scheme{proto.Rep(1, 1)},
	})

	c, err := client.Dial(cl.Fabric, []string{core.NodeAddr(0)}, client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.Put(fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get("k-3"); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addrs[0] + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/trace?n=2")
	if code != http.StatusOK {
		t.Fatalf("trace returned %d: %s", code, body)
	}
	if got := strings.Count(body, `"seq"`); got != 2 {
		t.Fatalf("trace n=2 returned %d rows:\n%s", got, body)
	}
	// The newest entry is the get of k-3.
	if !strings.Contains(body, `"op": "get"`) || !strings.Contains(body, `"key": "k-3"`) {
		t.Fatalf("trace rows:\n%s", body)
	}

	for _, bad := range []string{"/debug/trace?n=zebra", "/debug/trace?n=-1"} {
		code, body := get(bad)
		if code != http.StatusBadRequest {
			t.Fatalf("%s returned %d, want 400: %s", bad, code, body)
		}
	}
}

// TestTraceRowUnknownStatus pins the rendering of status codes the
// binary does not know (e.g. scraping a newer node): a stable
// placeholder, not a crash or an empty string.
func TestTraceRowUnknownStatus(t *testing.T) {
	row := traceRow(metrics.TraceEntry{Op: metrics.TraceGet, Status: 250})
	if row.Status != "status(250)" {
		t.Fatalf("unknown status rendered as %q", row.Status)
	}
	if row.Op != "get" {
		t.Fatalf("op rendered as %q", row.Op)
	}
}
