package status

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ring/internal/core"
	"ring/internal/metrics"
	"ring/internal/proto"
)

// Ringvars is the expvar-style JSON document served at
// /debug/ringvars: the node's own instrumentation plus the
// process-wide registry (transport, client when present).
type Ringvars struct {
	NodeID  proto.NodeID         `json:"node_id"`
	Node    core.MetricsSnapshot `json:"node"`
	Process map[string]any       `json:"process"`
}

// TraceRow is one rendered trace entry served at /debug/trace.
type TraceRow struct {
	Seq     uint64          `json:"seq"`
	AtMS    float64         `json:"at_ms"`
	DurUS   float64         `json:"dur_us"`
	Op      string          `json:"op"`
	Key     string          `json:"key"`
	Memgest proto.MemgestID `json:"memgest"`
	Version uint64          `json:"version"`
	Status  string          `json:"status"`
}

func traceRow(e metrics.TraceEntry) TraceRow {
	return TraceRow{
		Seq:     e.Seq,
		AtMS:    float64(e.At) / float64(time.Millisecond),
		DurUS:   float64(e.Dur) / float64(time.Microsecond),
		Op:      e.Op.String(),
		Key:     e.KeyString(),
		Memgest: proto.MemgestID(e.Memgest),
		Version: e.Version,
		Status:  proto.Status(e.Status).String(),
	}
}

func (s *Server) handleRingvars(w http.ResponseWriter, _ *http.Request) {
	var rv Ringvars
	s.runner.Inspect(func(n *core.Node) {
		rv.NodeID = n.ID()
		rv.Node = n.MetricsSnapshot()
	})
	rv.Process = metrics.Default.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rv)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	count := 0 // 0 = everything held
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad n parameter %q: want a non-negative integer", q), http.StatusBadRequest)
			return
		}
		count = v
	}
	var entries []metrics.TraceEntry
	s.runner.Inspect(func(n *core.Node) { entries = n.TraceLast(count) })
	rows := make([]TraceRow, len(entries))
	for i, e := range entries {
		rows[i] = traceRow(e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rows)
}

// FetchRingvars GETs one node's /debug/ringvars document. addr is the
// node's HTTP listen address ("host:port").
func FetchRingvars(addr string) (Ringvars, error) {
	var rv Ringvars
	resp, err := http.Get("http://" + addr + "/debug/ringvars")
	if err != nil {
		return rv, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rv, fmt.Errorf("status: %s returned %s", addr, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil {
		return rv, fmt.Errorf("status: decode ringvars from %s: %w", addr, err)
	}
	return rv, nil
}

// ClusterStats is the cluster-wide aggregation of per-node ringvars,
// what `ringctl stats` renders.
type ClusterStats struct {
	Nodes           int
	Events          uint64
	MsgsOut         uint64
	PacketsOut      uint64
	RecoveryBacklog int64
	Stats           core.Stats
	Memgests        map[proto.MemgestID]core.MemgestOpCounts
	CommitRep       metrics.HistSnapshot
	CommitSRS       metrics.HistSnapshot
	// RunnerGoroutines sums core.runner_goroutines across the scraped
	// processes: the runner event loops actually executing — one per
	// (node, group) pair under memgest-group sharding.
	RunnerGoroutines int64
	// GroupQueueDepth sums core.group.<g>.queue_depth per group: the
	// instantaneous inbox backlog of each group's runners.
	GroupQueueDepth map[int]int64
}

// Aggregate folds per-node ringvars into cluster totals.
func Aggregate(nodes []Ringvars) ClusterStats {
	cs := ClusterStats{
		Memgests:        make(map[proto.MemgestID]core.MemgestOpCounts),
		GroupQueueDepth: make(map[int]int64),
	}
	for _, rv := range nodes {
		cs.Nodes++
		n := rv.Node
		cs.Events += n.Events
		cs.MsgsOut += n.MsgsOut
		cs.PacketsOut += n.PacketsOut
		cs.RecoveryBacklog += n.RecoveryBacklog
		addStats(&cs.Stats, n.Stats)
		for id, c := range n.Memgests {
			agg := cs.Memgests[id]
			agg.Add(c)
			cs.Memgests[id] = agg
		}
		cs.CommitRep = cs.CommitRep.Merge(n.CommitRep)
		cs.CommitSRS = cs.CommitSRS.Merge(n.CommitSRS)
		for name, v := range rv.Process {
			iv, ok := processInt64(v)
			if !ok {
				continue
			}
			if name == "core.runner_goroutines" {
				cs.RunnerGoroutines += iv
			} else if g, ok := groupOfQueueGauge(name); ok {
				cs.GroupQueueDepth[g] += iv
			}
		}
	}
	return cs
}

// processInt64 widens a process-registry value to int64. Values arrive
// as int64/uint64 from an in-process snapshot but as float64 after a
// JSON round trip through /debug/ringvars.
func processInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case uint64:
		return int64(x), true
	case float64:
		return int64(x), true
	}
	return 0, false
}

// groupOfQueueGauge parses "core.group.<g>.queue_depth" names.
func groupOfQueueGauge(name string) (int, bool) {
	const prefix, suffix = "core.group.", ".queue_depth"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.Atoi(name[len(prefix) : len(name)-len(suffix)])
	if err != nil || g < 0 {
		return 0, false
	}
	return g, true
}

func addStats(dst *core.Stats, s core.Stats) {
	dst.Puts += s.Puts
	dst.Gets += s.Gets
	dst.Deletes += s.Deletes
	dst.Moves += s.Moves
	dst.Commits += s.Commits
	dst.ParkedGets += s.ParkedGets
	dst.ParityUpdates += s.ParityUpdates
	dst.RepAppends += s.RepAppends
	dst.BlocksRecovered += s.BlocksRecovered
	dst.MetaRecovs += s.MetaRecovs
	dst.BytesParityXor += s.BytesParityXor
	dst.BytesWritten += s.BytesWritten
	dst.BytesDecoded += s.BytesDecoded
	dst.BytesMetaInstalled += s.BytesMetaInstalled
}

// RenderStats writes the `ringctl stats` text view of one aggregation.
func RenderStats(w io.Writer, cs ClusterStats) {
	fmt.Fprintf(w, "nodes=%d events=%d msgs_out=%d packets_out=%d recovery_backlog=%d\n",
		cs.Nodes, cs.Events, cs.MsgsOut, cs.PacketsOut, cs.RecoveryBacklog)
	fmt.Fprintf(w, "runners: goroutines=%d", cs.RunnerGoroutines)
	gs := make([]int, 0, len(cs.GroupQueueDepth))
	for g := range cs.GroupQueueDepth {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		fmt.Fprintf(w, " group%d_queue=%d", g, cs.GroupQueueDepth[g])
	}
	fmt.Fprintln(w)
	st := cs.Stats
	fmt.Fprintf(w, "ops: puts=%d gets=%d deletes=%d moves=%d commits=%d parked_gets=%d\n",
		st.Puts, st.Gets, st.Deletes, st.Moves, st.Commits, st.ParkedGets)
	ids := make([]proto.MemgestID, 0, len(cs.Memgests))
	for id := range cs.Memgests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := cs.Memgests[id]
		fmt.Fprintf(w, "memgest %d: puts=%d gets=%d deletes=%d moves=%d commits=%d\n",
			id, c.Puts, c.Gets, c.Deletes, c.Moves, c.Commits)
	}
	renderHist(w, "commit latency REP", cs.CommitRep)
	renderHist(w, "commit latency SRS", cs.CommitSRS)
}

func renderHist(w io.Writer, name string, h metrics.HistSnapshot) {
	if h.Count == 0 {
		fmt.Fprintf(w, "%s: no samples\n", name)
		return
	}
	fmt.Fprintf(w, "%s: n=%d mean=%s p50<=%s p99<=%s\n", name, h.Count,
		time.Duration(h.Mean()), time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)))
}

// CollectStats fetches and aggregates ringvars from every address,
// reporting fetch failures without aborting the whole scrape.
func CollectStats(addrs []string) (ClusterStats, []error) {
	var nodes []Ringvars
	var errs []error
	for _, a := range addrs {
		rv, err := FetchRingvars(a)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		nodes = append(nodes, rv)
	}
	return Aggregate(nodes), errs
}

// WatchStats renders cluster stats every interval for rounds
// iterations (rounds <= 0 repeats until w errors — in practice,
// forever for a terminal). It is the engine behind
// `ringctl stats -watch`.
func WatchStats(w io.Writer, addrs []string, interval time.Duration, rounds int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for i := 0; rounds <= 0 || i < rounds; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cs, errs := CollectStats(addrs)
		if _, err := fmt.Fprintf(w, "--- %s (%d/%d nodes answered)\n",
			time.Now().Format("15:04:05"), cs.Nodes, len(addrs)); err != nil {
			return err
		}
		for _, e := range errs {
			fmt.Fprintf(w, "  scrape error: %v\n", e)
		}
		RenderStats(w, cs)
	}
	return nil
}
