package status

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ring/internal/client"
	"ring/internal/core"
	"ring/internal/proto"
)

func TestStatusAndMetrics(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterSpec{
		Shards: 3, Redundant: 2,
		Memgests: []proto.Scheme{proto.Rep(1, 3), proto.SRS(3, 2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	srv, err := Serve(cl.Runs[0], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Generate some traffic so the counters move.
	c, err := client.Dial(cl.Fabric, []string{core.NodeAddr(0)}, client.Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 9; i++ {
		key := fmt.Sprintf("sk-%d", i)
		if _, err := c.PutIn(key, []byte("v"), 2); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}

	// /status: parseable JSON with the node's identity and schemes.
	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.NodeID != 0 || !snap.IsLeader || !snap.Serving {
		t.Fatalf("snapshot: %+v", snap)
	}
	if len(snap.Memgests) != 2 || snap.Memgests[1].Label != "SRS32" {
		t.Fatalf("memgests: %+v", snap.Memgests)
	}
	if len(snap.Shards) != 1 || snap.Shards[0] != 0 {
		t.Fatalf("shards: %v", snap.Shards)
	}

	// /metrics: text format with moving counters. Node 0 coordinates
	// one of three shards, so at least some traffic landed here.
	mresp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{"ring_node_id 0", "ring_is_leader 1", "ring_serving 1", "ring_memgests 2", "ring_puts_total", "ring_bytes_parity_xor_total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
