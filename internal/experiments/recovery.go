package experiments

import (
	"fmt"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/sim"
	"ring/internal/store"
)

// Fig12Point is one sample of the coordinator-recovery experiment.
type Fig12Point struct {
	// MetaBytes is the metadata volume the replacement node installed.
	MetaBytes uint64
	// Latency is the time from the crash to the replacement serving
	// again (leader detection + reconfiguration + metadata transfer +
	// volatile-hashtable rebuild — steps 1-6 of Section 6.4).
	Latency time.Duration
	Keys    int
}

// Fig12Recovery reproduces Figure 12: metadata recovery latency as a
// function of recovered metadata size. Each key-count populates the
// cluster, kills coordinator 1, and measures in virtual time until the
// promoted spare serves again.
func Fig12Recovery(keyCounts []int) ([]Fig12Point, error) {
	if len(keyCounts) == 0 {
		keyCounts = []int{2048, 4096, 8192, 16384, 32768, 65536, 131072}
	}
	var out []Fig12Point
	for _, keys := range keyCounts {
		p, err := recoverOnce(keys)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func recoverOnce(keys int) (Fig12Point, error) {
	// Block size scaled so the SRS heaps hold the largest key counts.
	spec := PaperSpec(1 << 20)
	s, err := sim.NewFromSpec(spec, sim.DefaultModel())
	if err != nil {
		return Fig12Point{}, err
	}
	cfg, _ := core.BootConfig(spec)
	c := sim.NewClient(s, "rec", cfg)
	val := make([]byte, 32)
	// Populate every memgest so the failed shard has metadata in all
	// seven metadata hashtables.
	for i := 0; i < keys; i++ {
		mg := proto.MemgestID(i%len(PaperSchemes) + 1)
		key := fmt.Sprintf("f12-%08d", i)
		if _, pr, err := c.PutSync(key, val, mg); err != nil || pr.Status != proto.StOK {
			return Fig12Point{}, fmt.Errorf("fig12 populate %s: %v (%+v)", key, err, pr)
		}
	}
	const dead, spare = proto.NodeID(1), proto.NodeID(5)
	killAt := s.Now()
	s.Kill(dead)
	s.EnableTicks(5 * time.Microsecond)
	deadline := killAt + 5*time.Second
	for s.Now() < deadline {
		if !s.Step() {
			break
		}
		n := s.Node(spare)
		if n.Config().Epoch >= 2 && int(1) < len(n.Config().Coords) &&
			n.Config().Coords[1] == spare && n.Serving() {
			return Fig12Point{
				MetaBytes: n.Stats.BytesMetaInstalled,
				Latency:   s.Now() - killAt,
				Keys:      keys,
			}, nil
		}
	}
	return Fig12Point{}, fmt.Errorf("fig12: spare never recovered (keys=%d)", keys)
}

// Fig13Point is one sample of the block-recovery experiment.
type Fig13Point struct {
	Scheme    string
	BlockSize int
	Latency   time.Duration
}

// Fig13BlockRecovery reproduces Figure 13: the latency of the online
// stripe decode for SRS(2,1,3), SRS(3,1,3) and SRS(3,2,3) as a
// function of the recovered block size. The parity master gathers the
// k-1 sibling data blocks, decodes, and returns the block; SRS21
// (k=2) needs one fetch, the k=3 schemes need two, which is exactly
// the separation the figure shows.
func Fig13BlockRecovery(blockSizes []int) ([]Fig13Point, error) {
	if len(blockSizes) == 0 {
		for b := 9; b <= 16; b++ {
			blockSizes = append(blockSizes, 1<<b) // 512 B .. 64 KiB
		}
	}
	var out []Fig13Point
	for _, label := range []string{"SRS21", "SRS31", "SRS32"} {
		for _, bs := range blockSizes {
			lat, err := blockRecoveryOnce(label, bs)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig13Point{Scheme: label, BlockSize: bs, Latency: lat})
		}
	}
	return out, nil
}

func blockRecoveryOnce(label string, blockSize int) (time.Duration, error) {
	spec := PaperSpec(blockSize)
	s, err := sim.NewFromSpec(spec, sim.DefaultModel())
	if err != nil {
		return 0, err
	}
	cfg, _ := core.BootConfig(spec)
	c := sim.NewClient(s, "blk", cfg)
	mg := MemgestID(label)
	// Fill the stripe with data: one block-sized object per shard.
	val := make([]byte, blockSize)
	for i := range val {
		val[i] = byte(i)
	}
	shardFilled := make(map[int]bool)
	for i := 0; len(shardFilled) < 3 && i < 64; i++ {
		key := fmt.Sprintf("f13-%s-%d", label, i)
		shard := cfg.ShardOf(store.KeyHash(key))
		if shardFilled[shard] {
			continue
		}
		if _, pr, err := c.PutSync(key, val, mg); err != nil || pr.Status != proto.StOK {
			return 0, fmt.Errorf("fig13 fill: %v (%v)", err, pr)
		}
		shardFilled[shard] = true
	}
	// Ask parity node 0 to decode logical block 0 (owned by shard 0).
	parity := cfg.Memgests[mg-1].Redundant[0]
	var done time.Duration
	s.RegisterClient("client/f13", func(now time.Duration, _ string, msg proto.Message) {
		if r, ok := msg.(*proto.BlockRecoverReply); ok && r.Status == proto.StOK {
			done = now
		}
	})
	start := s.Now()
	s.Send("client/f13", core.NodeAddr(parity), &proto.BlockRecover{Req: 99, Memgest: mg, Block: 0})
	s.RunToQuiescence()
	if done == 0 {
		return 0, fmt.Errorf("fig13: no recovery reply for %s/%d", label, blockSize)
	}
	return done - start, nil
}
