package experiments

import (
	"testing"
)

func TestAblationMoveVsMigrate(t *testing.T) {
	res, err := AblationMoveVsMigrate(2048)
	if err != nil {
		t.Fatal(err)
	}
	// The move never ships the object over a client link, so it puts
	// fewer bytes on the wire than get+put (which carries the value
	// twice across the client link).
	if res.MoveWireBytes >= res.MigrateWireBytes {
		t.Fatalf("move %d bytes on wire should beat migrate %d", res.MoveWireBytes, res.MigrateWireBytes)
	}
	// The migrate path carries the object at least twice.
	if res.MigrateWireBytes < 2*uint64(res.ObjectBytes) {
		t.Fatalf("migrate wire bytes %d implausibly low", res.MigrateWireBytes)
	}
	if res.MoveLatency >= res.MigrateLatency {
		t.Fatalf("move latency %v should beat migrate %v", res.MoveLatency, res.MigrateLatency)
	}
}

func TestAblationQuorumVsSync(t *testing.T) {
	res, err := AblationQuorumVsSync(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Quorum commits after 2 of 3 remote acks; sync waits for all 3,
	// so it is slower but tolerates more unavailability.
	if res.SyncPut <= res.QuorumPut {
		t.Fatalf("sync put %v should exceed quorum put %v", res.SyncPut, res.QuorumPut)
	}
	if res.QuorumTolerates != 1 || res.SyncTolerates != 3 {
		t.Fatalf("tolerance accounting wrong: %+v", res)
	}
}

func TestAblationBalance(t *testing.T) {
	res := AblationBalance()
	if res.SingleGroup <= 1.05 {
		t.Fatalf("single group imbalance %v should be visible", res.SingleGroup)
	}
	if res.Rotated > 1.01 {
		t.Fatalf("rotated imbalance %v should be ~1", res.Rotated)
	}
}
