package experiments

import (
	"fmt"
	"time"

	"ring/internal/baselines"
	"ring/internal/proto"
)

// Fig7Put reproduces Figures 7(a) and 7(b): put latency as a function
// of object size for every memgest, plus the (scheme-independent) get
// latency curve. reps <= 0 selects the default sample count.
func Fig7Put(reps int) ([]Series, error) {
	if reps <= 0 {
		reps = 31
	}
	sizes := PaperSizes()
	var series []Series
	for mgIdx, sc := range PaperSchemes {
		mg := proto.MemgestID(mgIdx + 1)
		s, c, err := newPaperSim(0)
		if err != nil {
			return nil, err
		}
		_ = s
		cur := Series{Label: sc.Label()}
		for _, size := range sizes {
			val := make([]byte, size)
			var lats []time.Duration
			for r := 0; r < reps; r++ {
				key := fmt.Sprintf("f7-%d-%d-%d", mg, size, r)
				lat, pr, err := c.PutSync(key, val, mg)
				if err != nil || pr.Status != proto.StOK {
					return nil, fmt.Errorf("fig7 put %s: %v (%v)", key, err, pr)
				}
				lats = append(lats, lat)
			}
			cur.Points = append(cur.Points, LatencyPoint{
				Size: size, Median: percentile(lats, 0.5), P90: percentile(lats, 0.9),
			})
		}
		series = append(series, cur)
	}
	return series, nil
}

// Fig7Get reproduces the get-latency curve of Figure 7(b). All
// memgests share the get path, so one representative curve is
// returned, measured across all schemes to demonstrate the invariance.
func Fig7Get(reps int) (Series, error) {
	if reps <= 0 {
		reps = 31
	}
	_, c, err := newPaperSim(0)
	if err != nil {
		return Series{}, err
	}
	cur := Series{Label: "get"}
	for _, size := range PaperSizes() {
		val := make([]byte, size)
		var lats []time.Duration
		for r := 0; r < reps; r++ {
			mg := proto.MemgestID(r%len(PaperSchemes) + 1)
			key := fmt.Sprintf("f7g-%d-%d", size, r)
			if _, pr, err := c.PutSync(key, val, mg); err != nil || pr.Status != proto.StOK {
				return Series{}, fmt.Errorf("fig7 get setup: %v", err)
			}
			lat, gr, err := c.GetSync(key)
			if err != nil || gr.Status != proto.StOK {
				return Series{}, fmt.Errorf("fig7 get: %v", err)
			}
			lats = append(lats, lat)
		}
		cur.Points = append(cur.Points, LatencyPoint{
			Size: size, Median: percentile(lats, 0.5), P90: percentile(lats, 0.9),
		})
	}
	return cur, nil
}

// Fig7c reproduces the baseline latency curves of Figure 7(c):
// memcached, Dare, and RAMCloud put and get latency by object size
// (Cocytus rows reflect the numbers its paper reports, via the model).
func Fig7c() []Series {
	sizes := PaperSizes()
	var out []Series
	for _, m := range baselines.All() {
		put := Series{Label: m.Name + " put"}
		get := Series{Label: m.Name + " get"}
		for _, size := range sizes {
			put.Points = append(put.Points, LatencyPoint{Size: size, Median: m.PutLatency(size), P90: m.PutLatency(size) * 11 / 10})
			get.Points = append(get.Points, LatencyPoint{Size: size, Median: m.GetLatency(size), P90: m.GetLatency(size) * 11 / 10})
		}
		out = append(out, put, get)
	}
	return out
}

// Fig8Move reproduces Figures 8(a) and 8(b): the latency of move
// requests by destination memgest and object size. The source scheme
// does not matter (the data is local); following the paper, sources
// are chosen so source != destination.
func Fig8Move(reps int) ([]Series, error) {
	if reps <= 0 {
		reps = 31
	}
	sizes := PaperSizes()
	var series []Series
	for mgIdx, sc := range PaperSchemes {
		dst := proto.MemgestID(mgIdx + 1)
		// Source: REP1 unless the destination is REP1, then SRS32.
		src := MemgestID("REP1")
		if dst == src {
			src = MemgestID("SRS32")
		}
		_, c, err := newPaperSim(0)
		if err != nil {
			return nil, err
		}
		cur := Series{Label: "to " + sc.Label()}
		for _, size := range sizes {
			val := make([]byte, size)
			var lats []time.Duration
			for r := 0; r < reps; r++ {
				key := fmt.Sprintf("f8-%d-%d-%d", dst, size, r)
				if _, pr, err := c.PutSync(key, val, src); err != nil || pr.Status != proto.StOK {
					return nil, fmt.Errorf("fig8 setup: %v", err)
				}
				lat, mr, err := c.MoveSync(key, dst)
				if err != nil || mr.Status != proto.StOK {
					return nil, fmt.Errorf("fig8 move: %v (%v)", err, mr)
				}
				lats = append(lats, lat)
			}
			cur.Points = append(cur.Points, LatencyPoint{
				Size: size, Median: percentile(lats, 0.5), P90: percentile(lats, 0.9),
			})
		}
		series = append(series, cur)
	}
	return series, nil
}
