package experiments

import (
	"fmt"
	"time"

	"ring/internal/balance"
	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/sim"
)

// The ablations quantify the design choices DESIGN.md calls out:
// delta parity updates vs full re-encode, SRS's local move vs the
// migration a stable-mapping-less RS system would need, quorum vs
// fully synchronous replication, and single vs rotated memgest groups.

// AblationMoveResult compares the network cost of changing a key's
// storage scheme.
type AblationMoveResult struct {
	ObjectBytes int
	// MoveWireBytes is what Ring's move puts on the wire: the move
	// request, parity deltas/replica appends of the destination, and
	// acks — the value never crosses a client link.
	MoveWireBytes uint64
	MoveLatency   time.Duration
	// MigrateWireBytes is what a client-driven re-store costs (the
	// strategy a KVS without a stable key-to-node mapping needs):
	// get + full value to the client + put with the full value +
	// destination redundancy traffic.
	MigrateWireBytes uint64
	MigrateLatency   time.Duration
}

// AblationMoveVsMigrate measures both strategies in the simulator for
// one object size, moving a key from REP1 into SRS32.
func AblationMoveVsMigrate(objectBytes int) (AblationMoveResult, error) {
	res := AblationMoveResult{ObjectBytes: objectBytes}
	val := make([]byte, objectBytes)

	// Strategy 1: Ring move.
	{
		s, c, err := newPaperSim(0)
		if err != nil {
			return res, err
		}
		if _, pr, err := c.PutSync("ab-key", val, MemgestID("REP1")); err != nil || pr.Status != proto.StOK {
			return res, fmt.Errorf("ablation setup: %v", err)
		}
		before := s.BytesOnWire
		lat, mr, err := c.MoveSync("ab-key", MemgestID("SRS32"))
		if err != nil || mr.Status != proto.StOK {
			return res, fmt.Errorf("ablation move: %v", err)
		}
		res.MoveWireBytes = s.BytesOnWire - before
		res.MoveLatency = lat
	}

	// Strategy 2: client-driven migration (get, then re-put).
	{
		s, c, err := newPaperSim(0)
		if err != nil {
			return res, err
		}
		if _, pr, err := c.PutSync("ab-key", val, MemgestID("REP1")); err != nil || pr.Status != proto.StOK {
			return res, fmt.Errorf("ablation setup: %v", err)
		}
		before := s.BytesOnWire
		glat, gr, err := c.GetSync("ab-key")
		if err != nil || gr.Status != proto.StOK {
			return res, fmt.Errorf("ablation get: %v", err)
		}
		plat, pr, err := c.PutSync("ab-key", gr.Value, MemgestID("SRS32"))
		if err != nil || pr.Status != proto.StOK {
			return res, fmt.Errorf("ablation re-put: %v", err)
		}
		res.MigrateWireBytes = s.BytesOnWire - before
		res.MigrateLatency = glat + plat
	}
	return res, nil
}

// AblationQuorumResult compares quorum and fully synchronous
// replication commits for Rep(r,3).
type AblationQuorumResult struct {
	R               int
	QuorumPut       time.Duration
	SyncPut         time.Duration
	QuorumTolerates int // availability under failures
	SyncTolerates   int
}

// AblationQuorumVsSync measures Rep(4,3) put latency under both commit
// rules (Section 3.1's trade-off).
func AblationQuorumVsSync(r int, valueSize int) (AblationQuorumResult, error) {
	res := AblationQuorumResult{
		R:               r,
		QuorumTolerates: (r - 1) / 2,
		SyncTolerates:   r - 1,
	}
	val := make([]byte, valueSize)
	measure := func(sync bool) (time.Duration, error) {
		spec := PaperSpec(0)
		spec.Opts.SyncReplication = sync
		s, err := sim.NewFromSpec(spec, sim.DefaultModel())
		if err != nil {
			return 0, err
		}
		cfg, _ := core.BootConfig(spec)
		c := sim.NewClient(s, "q", cfg)
		mg := proto.MemgestID(r) // boot order: REP1..REP4 are ids 1..4
		var lats []time.Duration
		for i := 0; i < 15; i++ {
			lat, pr, err := c.PutSync(fmt.Sprintf("q-%d", i), val, mg)
			if err != nil || pr.Status != proto.StOK {
				return 0, fmt.Errorf("quorum ablation put: %v", err)
			}
			lats = append(lats, lat)
		}
		return percentile(lats, 0.5), nil
	}
	var err error
	if res.QuorumPut, err = measure(false); err != nil {
		return res, err
	}
	if res.SyncPut, err = measure(true); err != nil {
		return res, err
	}
	return res, nil
}

// AblationBalanceResult reports the memory imbalance (max/mean) of the
// Figure 3 memgest set under a single memgest group versus the rotated
// layout of Section 5.4.
type AblationBalanceResult struct {
	SingleGroup float64
	Rotated     float64
}

// AblationBalance evaluates the balancing analysis for the paper's
// deployment.
func AblationBalance() AblationBalanceResult {
	schemes := []proto.Scheme{
		proto.Rep(2, 3), proto.Rep(3, 3), proto.Rep(4, 3),
		proto.SRS(2, 1, 3), proto.SRS(3, 1, 3), proto.SRS(3, 2, 3),
	}
	const data, meta = 1 << 30, 1 << 20
	return AblationBalanceResult{
		SingleGroup: balance.Imbalance(balance.Analyze(schemes, 3, 2, data, meta, false)),
		Rotated:     balance.Imbalance(balance.Analyze(schemes, 3, 2, data, meta, true)),
	}
}
