package experiments

import (
	"fmt"
	"time"

	"ring/internal/baselines"
	"ring/internal/metrics"
	"ring/internal/proto"
	"ring/internal/sim"
	"ring/internal/workload"
)

// Metrics counts work done by experiment runs, registered in the
// process registry so a long experiment binary is observable through
// the same /debug/ringvars document as a node.
var Metrics struct {
	// Completions is every OK reply counted by SaturatedThroughput
	// across all runs in this process.
	Completions metrics.Counter
	// Runs is the number of saturation measurements taken.
	Runs metrics.Counter
}

func init() {
	metrics.Default.Register("experiments.completions", &Metrics.Completions)
	metrics.Default.Register("experiments.runs", &Metrics.Runs)
}

// SaturatedThroughput measures the aggregate saturated request rate of
// one memgest by offering far-over-capacity open-loop load (spread
// over all shards) for a burst window and counting completions.
// mix controls the get:put ratio; valueSize is the object size.
func SaturatedThroughput(mg proto.MemgestID, mix workload.Mix, valueSize int, burst time.Duration) (float64, error) {
	if burst <= 0 {
		burst = 50 * time.Millisecond
	}
	// A large block size keeps the SRS heaps far from exhaustion
	// while overload delays commits (and therefore version GC).
	s, c, err := newPaperSim(8 << 20)
	if err != nil {
		return 0, err
	}
	// Preload the key space so gets hit.
	gen := workload.NewGenerator(workload.NewZipfian(512, workload.DefaultTheta, 1), mix, 2)
	gen.SetValueSize(valueSize)
	val := make([]byte, valueSize)
	for i := 0; i < 512; i++ {
		key := gen.Key(i)
		if _, pr, err := c.PutSync(key, val, mg); err != nil || pr.Status != proto.StOK {
			return 0, fmt.Errorf("preload %s: %v", key, err)
		}
	}
	start := s.Now()
	// Offer ~6M req/s — far above any scheme's capacity.
	const offered = 6e6
	ops := gen.ConstantRate(start, offered, int(offered*burst.Seconds()))
	var done metrics.Counter
	for _, op := range ops {
		switch op.Kind {
		case workload.OpGet:
			c.GetAt(op.At, op.Key, func(_ time.Duration, r *proto.GetReply) {
				if r.Status == proto.StOK {
					done.Inc()
				}
			})
		case workload.OpPut:
			c.PutAt(op.At, op.Key, op.Value, mg, func(_ time.Duration, r *proto.PutReply) {
				if r.Status == proto.StOK {
					done.Inc()
				}
			})
		}
	}
	s.RunToQuiescence()
	Metrics.Runs.Inc()
	Metrics.Completions.Add(done.Load())
	elapsed := (s.Now() - start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("no virtual time elapsed")
	}
	return float64(done.Load()) / elapsed, nil
}

// Fig9Sample is one point of the Figure 9 throughput traces.
type Fig9Sample struct {
	Label      string
	Second     int
	Clients    int
	ReqsPerSec float64
}

// Fig9 reproduces the put-throughput ramp of Figure 9: every second a
// new client starts offering ratePerClient put requests of 1 KiB;
// throughput follows min(offered, capacity). Capacities are measured
// in the simulator (Ring schemes) or taken from the baseline models.
func Fig9(clients int, ratePerClient float64, burst time.Duration) ([]Fig9Sample, error) {
	if clients <= 0 {
		clients = 4
	}
	if ratePerClient <= 0 {
		ratePerClient = 400e3
	}
	labels := []string{"REP1", "REP3", "SRS32"}
	caps := make(map[string]float64)
	for _, l := range labels {
		capc, err := SaturatedThroughput(MemgestID(l), workload.Mix{Get: 0, Put: 100}, 1024, burst)
		if err != nil {
			return nil, err
		}
		caps[l] = capc
	}
	caps["memcached"] = baselines.Memcached().PutThroughput(1024)
	caps["Dare"] = baselines.Dare().PutThroughput(1024)
	caps["Cocytus"] = baselines.Cocytus().PutThroughput(1024)
	var out []Fig9Sample
	for _, l := range append(labels, "memcached", "Dare", "Cocytus") {
		for sec := 1; sec <= clients; sec++ {
			offered := float64(sec) * ratePerClient
			tput := offered
			if tput > caps[l] {
				tput = caps[l]
			}
			out = append(out, Fig9Sample{Label: l, Second: sec, Clients: sec, ReqsPerSec: tput})
		}
	}
	return out, nil
}

// Fig11Row is one cell of the Figure 11 matrix: the saturated
// throughput of a scheme under a get:put mix.
type Fig11Row struct {
	Label      string
	Mix        workload.Mix
	ReqsPerSec float64
}

// Fig11 reproduces Figure 11: single-memgest throughput under the four
// YCSB mixes with Zipfian keys and 1 KiB values, for REP1, REP3,
// SRS21, and SRS32.
func Fig11(burst time.Duration) ([]Fig11Row, error) {
	var out []Fig11Row
	for _, label := range []string{"REP1", "REP3", "SRS21", "SRS32"} {
		for _, mix := range workload.PaperMixes {
			tput, err := SaturatedThroughput(MemgestID(label), mix, 1024, burst)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig11Row{Label: label, Mix: mix, ReqsPerSec: tput})
		}
	}
	return out, nil
}

// Table1 reproduces the motivation table of Section 1: reliability
// (tolerated failures for durability), put latency, put throughput and
// storage cost of Simple (Rep 1), Rep(3) and RS(3,2), normalized to
// Simple.
type Table1Row struct {
	Scheme         string
	Tolerated      int
	PutLatencyX    float64
	PutThroughputX float64
	StorageCostX   float64
}

// Table1 computes the table by measurement (latency, throughput) and
// arithmetic (durability, storage overhead).
func Table1(burst time.Duration) ([]Table1Row, error) {
	type entry struct {
		label     string
		mg        proto.MemgestID
		tolerated int
		storage   float64
	}
	entries := []entry{
		{"Simple", MemgestID("REP1"), 0, 1},
		{"Rep(3)", MemgestID("REP3"), 2, 3},
		{"RS(3,2)", MemgestID("SRS32"), 2, 5.0 / 3.0},
	}
	_, c, err := newPaperSim(0)
	if err != nil {
		return nil, err
	}
	val := make([]byte, 1024)
	lat := make(map[string]time.Duration)
	for _, e := range entries {
		var lats []time.Duration
		for r := 0; r < 15; r++ {
			l, pr, err := c.PutSync(fmt.Sprintf("t1-%s-%d", e.label, r), val, e.mg)
			if err != nil || pr.Status != proto.StOK {
				return nil, fmt.Errorf("table1 put: %v", err)
			}
			lats = append(lats, l)
		}
		lat[e.label] = percentile(lats, 0.5)
	}
	tput := make(map[string]float64)
	for _, e := range entries {
		tp, err := SaturatedThroughput(e.mg, workload.Mix{Get: 0, Put: 100}, 1024, burst)
		if err != nil {
			return nil, err
		}
		tput[e.label] = tp
	}
	base := entries[0].label
	var out []Table1Row
	for _, e := range entries {
		out = append(out, Table1Row{
			Scheme:         e.label,
			Tolerated:      e.tolerated,
			PutLatencyX:    float64(lat[e.label]) / float64(lat[base]),
			PutThroughputX: tput[e.label] / tput[base],
			StorageCostX:   e.storage,
		})
	}
	return out, nil
}

// movedThroughput is used by the heavy-updates example and the move
// benefit analysis of Section 6.2: the put-throughput gain available
// by moving a hot key set to REP1.
func movedThroughput(burst time.Duration) (rep1, srs32 float64, err error) {
	rep1, err = SaturatedThroughput(MemgestID("REP1"), workload.Mix{Put: 100}, 1024, burst)
	if err != nil {
		return
	}
	srs32, err = SaturatedThroughput(MemgestID("SRS32"), workload.Mix{Put: 100}, 1024, burst)
	return
}

// MoveSpeedup reports the throughput factor gained by serving a
// put-heavy phase from REP1 instead of SRS32 (the heavy-updates use
// case).
func MoveSpeedup(burst time.Duration) (float64, error) {
	r1, s32, err := movedThroughput(burst)
	if err != nil {
		return 0, err
	}
	return r1 / s32, nil
}

// ensure sim import is used even if future edits drop direct uses.
var _ = sim.DefaultModel
