package experiments

import (
	"fmt"

	"ring/internal/reliability"
	"ring/internal/srs"
	"ring/internal/traces"
)

// Fig2Point is one marker of Figure 2: the annual reliability of
// SRS(k,m,s), in nines.
type Fig2Point struct {
	K, M, S int
	Nines   float64
}

// Fig2Reliability reproduces Figure 2: for every RS(k,m) anchor with
// 2 <= k <= 7 and 1 <= m <= min(k-1, 5), the reliability of the
// stretched variants s = k..8, from the Appendix A Markov models.
func Fig2Reliability(params reliability.Params) []Fig2Point {
	if params == (reliability.Params{}) {
		params = reliability.DefaultParams()
	}
	var out []Fig2Point
	for k := 2; k <= 7; k++ {
		maxM := k - 1
		if maxM > 5 {
			maxM = 5
		}
		for m := 1; m <= maxM; m++ {
			for s := k; s <= 8; s++ {
				layout := srs.MustLayout(k, m, s)
				chain := reliability.SRSChain(layout, params)
				out = append(out, Fig2Point{
					K: k, M: m, S: s,
					Nines: reliability.Nines(chain.Reliability(1)),
				})
			}
		}
	}
	return out
}

// Fig16Point is one marker of Figure 16: interval availability of
// SRS(k,m,s) over one year, in nines.
type Fig16Point struct {
	K, M, S int
	Nines   float64
}

// Fig16Availability reproduces Figure 16 for the families the figure
// shows (k up to 5), using the repairable-fail-state availability
// model (see reliability.Chain.Repairable for the rationale).
func Fig16Availability(params reliability.Params) []Fig16Point {
	if params == (reliability.Params{}) {
		params = reliability.DefaultParams()
	}
	mu := params.Mu()
	var out []Fig16Point
	for k := 2; k <= 5; k++ {
		for m := 1; m <= k-1; m++ {
			for s := k; s <= 8; s++ {
				layout := srs.MustLayout(k, m, s)
				chain := reliability.SRSChain(layout, params).Repairable(mu)
				out = append(out, Fig16Point{
					K: k, M: m, S: s,
					Nines: reliability.Nines(chain.IntervalAvailability(1)),
				})
			}
		}
	}
	return out
}

// Fig10Row is one bar of Figure 10: the normalized cost of a trace
// under a storage class, itemized.
type Fig10Row struct {
	Trace                                 string
	Class                                 traces.SchemeClass
	Write, Read, Transfer, Storage, Total float64
}

// Fig10Pricing reproduces Figure 10 for the five SPC traces.
func Fig10Pricing() []Fig10Row {
	var out []Fig10Row
	for _, tr := range traces.All() {
		n := traces.Normalized(tr)
		for _, cl := range []traces.SchemeClass{traces.Simple, traces.Hot, traces.Cold} {
			c := n[cl]
			out = append(out, Fig10Row{
				Trace: tr.Name, Class: cl,
				Write: c.Write, Read: c.Read, Transfer: c.Transfer,
				Storage: c.Storage, Total: c.Total(),
			})
		}
	}
	return out
}

// FormatFig2 renders the reliability sweep grouped by anchor code.
func FormatFig2(points []Fig2Point) string {
	out := "Figure 2: annual reliability of SRS(k,m,s), in nines\n"
	last := ""
	for _, p := range points {
		anchor := fmt.Sprintf("RS(%d,%d)", p.K, p.M)
		if anchor != last {
			out += anchor + ":\n"
			last = anchor
		}
		out += fmt.Sprintf("    s=%d  %6.2f nines\n", p.S, p.Nines)
	}
	return out
}

// FormatFig16 renders the availability sweep grouped by anchor code.
func FormatFig16(points []Fig16Point) string {
	out := "Figure 16: interval availability of SRS(k,m,s), in nines\n"
	last := ""
	for _, p := range points {
		anchor := fmt.Sprintf("RS(%d,%d)", p.K, p.M)
		if anchor != last {
			out += anchor + ":\n"
			last = anchor
		}
		out += fmt.Sprintf("    s=%d  %6.3f nines\n", p.S, p.Nines)
	}
	return out
}

// FormatFig10 renders the pricing rows as the stacked components of
// the figure.
func FormatFig10(rows []Fig10Row) string {
	out := "Figure 10: normalized storage price by trace and class\n"
	out += fmt.Sprintf("%-12s %-7s %7s %7s %9s %8s %7s\n",
		"trace", "class", "write", "read", "transfer", "storage", "total")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %-7s %7.3f %7.3f %9.3f %8.3f %7.3f\n",
			r.Trace, r.Class, r.Write, r.Read, r.Transfer, r.Storage, r.Total)
	}
	return out
}
