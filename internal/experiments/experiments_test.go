package experiments

import (
	"testing"
	"time"

	"ring/internal/reliability"
	"ring/internal/workload"
)

const testBurst = 10 * time.Millisecond

func findSeries(series []Series, label string) Series {
	for _, s := range series {
		if s.Label == label {
			return s
		}
	}
	return Series{}
}

func TestFig7PutShapes(t *testing.T) {
	series, err := Fig7Put(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 7 {
		t.Fatalf("%d series", len(series))
	}
	rep1 := findSeries(series, "REP1")
	rep3 := findSeries(series, "REP3")
	srs32 := findSeries(series, "SRS32")
	srs21 := findSeries(series, "SRS21")
	srs31 := findSeries(series, "SRS31")
	for i := range rep1.Points {
		if !(rep1.Points[i].Median < rep3.Points[i].Median) {
			t.Fatalf("size %d: REP1 %v !< REP3 %v", rep1.Points[i].Size, rep1.Points[i].Median, rep3.Points[i].Median)
		}
		if !(rep3.Points[i].Median < srs32.Points[i].Median) {
			t.Fatalf("size %d: REP3 %v !< SRS32 %v", rep1.Points[i].Size, rep3.Points[i].Median, srs32.Points[i].Median)
		}
		// SRS21 == SRS31 (both one parity node).
		r := float64(srs21.Points[i].Median) / float64(srs31.Points[i].Median)
		if r < 0.9 || r > 1.1 {
			t.Fatalf("size %d: SRS21 %v vs SRS31 %v", rep1.Points[i].Size, srs21.Points[i].Median, srs31.Points[i].Median)
		}
	}
	// Latency grows with size, and the paper's band holds at 2 KiB:
	// REP1 a few µs, SRS32 below 30 µs.
	last := srs32.Points[len(srs32.Points)-1]
	if last.Median > 30*time.Microsecond {
		t.Fatalf("SRS32 put(2KiB) = %v, paper plots < 30µs", last.Median)
	}
	if rep1.Points[0].Median > 10*time.Microsecond {
		t.Fatalf("REP1 put(2B) = %v, want ~5µs", rep1.Points[0].Median)
	}
}

func TestFig7GetFlat(t *testing.T) {
	get, err := Fig7Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := get.Points[0].Median; got < 2*time.Microsecond || got > 10*time.Microsecond {
		t.Fatalf("get(2B) = %v, want ~5µs", got)
	}
	// Growth across sizes stays modest (bandwidth term only).
	first, lastP := get.Points[0].Median, get.Points[len(get.Points)-1].Median
	if float64(lastP)/float64(first) > 2.5 {
		t.Fatalf("get latency tripled with size: %v -> %v", first, lastP)
	}
}

func TestFig7cBands(t *testing.T) {
	series := Fig7c()
	if len(series) != 8 {
		t.Fatalf("%d baseline series", len(series))
	}
	mc := findSeries(series, "memcached put")
	if mc.Points[5].Median < 40*time.Microsecond {
		t.Fatalf("memcached put = %v, want ~55µs", mc.Points[5].Median)
	}
}

func TestFig8MoveShapes(t *testing.T) {
	series, err := Fig8Move(5)
	if err != nil {
		t.Fatal(err)
	}
	toRep1 := findSeries(series, "to REP1")
	// Moving to the unreliable scheme is nearly size-independent
	// (Figure 8's observation).
	first := toRep1.Points[0].Median
	lastP := toRep1.Points[len(toRep1.Points)-1].Median
	if float64(lastP)/float64(first) > 1.5 {
		t.Fatalf("move-to-REP1 latency grew %vx with size", float64(lastP)/float64(first))
	}
	// Destination SRS32 is the most expensive move target.
	toSRS32 := findSeries(series, "to SRS32")
	toRep2 := findSeries(series, "to REP2")
	n := len(toSRS32.Points) - 1
	if !(toSRS32.Points[n].Median > toRep2.Points[n].Median) {
		t.Fatalf("move to SRS32 (%v) should exceed move to REP2 (%v)",
			toSRS32.Points[n].Median, toRep2.Points[n].Median)
	}
}

func TestSaturatedThroughputOrdering(t *testing.T) {
	rep1, err := SaturatedThroughput(MemgestID("REP1"), workload.Mix{Put: 100}, 1024, testBurst)
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := SaturatedThroughput(MemgestID("REP3"), workload.Mix{Put: 100}, 1024, testBurst)
	if err != nil {
		t.Fatal(err)
	}
	srs32, err := SaturatedThroughput(MemgestID("SRS32"), workload.Mix{Put: 100}, 1024, testBurst)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9: REP1 ~1.5M/s aggregate; REP3 ~2x slower; SRS32 ~4.3x.
	if rep1 < 700e3 || rep1 > 3e6 {
		t.Fatalf("REP1 aggregate put throughput %.0f/s outside paper band (~1.5M)", rep1)
	}
	r3 := rep1 / rep3
	if r3 < 1.4 || r3 > 3.5 {
		t.Fatalf("REP1/REP3 = %.2f, paper says ~2x", r3)
	}
	rs := rep1 / srs32
	if rs < 2.5 || rs > 7 {
		t.Fatalf("REP1/SRS32 = %.2f, paper says ~4.3x", rs)
	}
	if !(rep1 > rep3 && rep3 > srs32) {
		t.Fatal("throughput ordering violated")
	}
}

func TestFig9Series(t *testing.T) {
	samples, err := Fig9(4, 400e3, testBurst)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Fig9Sample{}
	for _, s := range samples {
		byLabel[s.Label] = append(byLabel[s.Label], s)
	}
	rep1 := byLabel["REP1"]
	if len(rep1) != 4 {
		t.Fatalf("REP1 has %d samples", len(rep1))
	}
	// Throughput is non-decreasing in clients and eventually capped.
	for i := 1; i < len(rep1); i++ {
		if rep1[i].ReqsPerSec < rep1[i-1].ReqsPerSec {
			t.Fatal("REP1 ramp decreased")
		}
	}
	// At 4 clients REP1 beats SRS32.
	srs := byLabel["SRS32"]
	if rep1[3].ReqsPerSec <= srs[3].ReqsPerSec {
		t.Fatal("REP1 should beat SRS32 at saturation")
	}
	// Baselines appear.
	if len(byLabel["memcached"]) == 0 || len(byLabel["Cocytus"]) == 0 {
		t.Fatal("baseline series missing")
	}
}

func TestFig11Matrix(t *testing.T) {
	rows, err := Fig11(testBurst)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("%d rows, want 16", len(rows))
	}
	cell := func(label string, mix workload.Mix) float64 {
		for _, r := range rows {
			if r.Label == label && r.Mix == mix {
				return r.ReqsPerSec
			}
		}
		t.Fatalf("missing cell %s %v", label, mix)
		return 0
	}
	getOnly := workload.Mix{Get: 100, Put: 0}
	putOnly := workload.Mix{Get: 0, Put: 100}
	// Get-only throughput is scheme-independent (same code path).
	g1, g32 := cell("REP1", getOnly), cell("SRS32", getOnly)
	if r := g1 / g32; r < 0.9 || r > 1.1 {
		t.Fatalf("get-only throughput differs: REP1 %.0f vs SRS32 %.0f", g1, g32)
	}
	// Put-only: REP1 highest.
	if !(cell("REP1", putOnly) > cell("SRS32", putOnly)) {
		t.Fatal("REP1 put-only should beat SRS32")
	}
	// More puts in the mix lowers throughput for reliable schemes.
	if !(cell("SRS32", getOnly) > cell("SRS32", putOnly)) {
		t.Fatal("SRS32 get-only should beat put-only")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(testBurst)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	simple, rep3, rs32 := rows[0], rows[1], rows[2]
	if simple.PutLatencyX != 1 || simple.PutThroughputX != 1 || simple.StorageCostX != 1 {
		t.Fatalf("simple row not normalized: %+v", simple)
	}
	if rep3.Tolerated != 2 || rs32.Tolerated != 2 {
		t.Fatal("durability tolerance wrong")
	}
	// Paper: Rep(3) 2x latency, 0.5x throughput, 3x storage;
	// RS(3,2) 3.4x latency, 0.31x throughput, 1.66x storage.
	if rep3.PutLatencyX < 1.3 || rep3.PutLatencyX > 3.2 {
		t.Fatalf("Rep(3) latency %.2fx, paper ~2x", rep3.PutLatencyX)
	}
	if rs32.PutLatencyX < 2 || rs32.PutLatencyX > 5.5 {
		t.Fatalf("RS(3,2) latency %.2fx, paper ~3.4x", rs32.PutLatencyX)
	}
	if rep3.PutThroughputX < 0.3 || rep3.PutThroughputX > 0.75 {
		t.Fatalf("Rep(3) throughput %.2fx, paper ~0.5x", rep3.PutThroughputX)
	}
	if rs32.PutThroughputX < 0.12 || rs32.PutThroughputX > 0.45 {
		t.Fatalf("RS(3,2) throughput %.2fx, paper ~0.31x", rs32.PutThroughputX)
	}
	if rs32.StorageCostX < 1.6 || rs32.StorageCostX > 1.7 {
		t.Fatalf("RS(3,2) storage %.2fx, want 1.66x", rs32.StorageCostX)
	}
}

func TestFig2AndFig16(t *testing.T) {
	pts := Fig2Reliability(reliability.Params{})
	if len(pts) == 0 {
		t.Fatal("no fig2 points")
	}
	anchors := map[[2]int]float64{}
	for _, p := range pts {
		if p.Nines <= 0 || p.Nines > 16 {
			t.Fatalf("SRS(%d,%d,%d) nines %v", p.K, p.M, p.S, p.Nines)
		}
		if p.S == p.K {
			anchors[[2]int{p.K, p.M}] = p.Nines
		}
	}
	for _, p := range pts {
		base := anchors[[2]int{p.K, p.M}]
		if d := p.Nines - base; d < -2 || d > 2 {
			t.Fatalf("SRS(%d,%d,%d) drifts %.2f nines from anchor", p.K, p.M, p.S, d)
		}
	}
	av := Fig16Availability(reliability.Params{})
	for _, p := range av {
		if p.Nines < 1 || p.Nines > 6 {
			t.Fatalf("availability SRS(%d,%d,%d) = %.2f nines outside band", p.K, p.M, p.S, p.Nines)
		}
	}
	// Render helpers don't crash and mention the data.
	if s := FormatFig2(pts); len(s) < 100 {
		t.Fatal("FormatFig2 too short")
	}
	if s := FormatFig16(av); len(s) < 100 {
		t.Fatal("FormatFig16 too short")
	}
}

func TestFig10(t *testing.T) {
	rows := Fig10Pricing()
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 5 traces x 3 classes", len(rows))
	}
	if s := FormatFig10(rows); len(s) < 100 {
		t.Fatal("FormatFig10 too short")
	}
}

func TestFig12RecoveryGrowsWithMetadata(t *testing.T) {
	pts, err := Fig12Recovery([]int{200, 1600})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[1].MetaBytes <= pts[0].MetaBytes {
		t.Fatal("metadata size did not grow with keys")
	}
	if pts[1].Latency <= pts[0].Latency {
		t.Fatalf("recovery latency %v should grow with metadata (was %v)", pts[1].Latency, pts[0].Latency)
	}
	// The paper's regime: hundreds of µs for sub-MiB metadata.
	if pts[0].Latency > 5*time.Millisecond {
		t.Fatalf("recovery latency %v far above the paper's regime", pts[0].Latency)
	}
}

func TestFig13BlockRecovery(t *testing.T) {
	pts, err := Fig13BlockRecovery([]int{1024, 16384})
	if err != nil {
		t.Fatal(err)
	}
	get := func(scheme string, size int) time.Duration {
		for _, p := range pts {
			if p.Scheme == scheme && p.BlockSize == size {
				return p.Latency
			}
		}
		t.Fatalf("missing %s/%d", scheme, size)
		return 0
	}
	// Latency grows with block size.
	if !(get("SRS21", 16384) > get("SRS21", 1024)) {
		t.Fatal("recovery latency must grow with block size")
	}
	// SRS21 recovers faster than SRS31 (k=2 gathers one block, k=3
	// gathers two); SRS31 ~ SRS32.
	if !(get("SRS21", 16384) < get("SRS31", 16384)) {
		t.Fatalf("SRS21 (%v) should beat SRS31 (%v)", get("SRS21", 16384), get("SRS31", 16384))
	}
	r := float64(get("SRS31", 16384)) / float64(get("SRS32", 16384))
	if r < 0.7 || r > 1.4 {
		t.Fatalf("SRS31 vs SRS32 recovery should be close: ratio %.2f", r)
	}
}

func TestMoveSpeedup(t *testing.T) {
	x, err := MoveSpeedup(testBurst)
	if err != nil {
		t.Fatal(err)
	}
	if x < 2 || x > 7 {
		t.Fatalf("REP1/SRS32 speedup %.2f outside band (paper ~4.3)", x)
	}
}

func TestFormatSeries(t *testing.T) {
	s := FormatSeries("t", "µs", []Series{{Label: "a", Points: []LatencyPoint{{Size: 2, Median: time.Microsecond, P90: 2 * time.Microsecond}}}})
	if len(s) == 0 {
		t.Fatal("empty format")
	}
}
