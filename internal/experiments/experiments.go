// Package experiments regenerates every table and figure of the
// paper's evaluation section. Each experiment is a pure function from
// parameters to printable rows, shared by the ringbench binary and the
// repository's benchmark suite; EXPERIMENTS.md records paper-versus-
// measured values for each.
//
// Latency and throughput experiments run the real Ring node state
// machines inside the discrete-event simulator (package sim) with its
// calibrated RDMA-era cost model; reliability/availability and pricing
// experiments evaluate the analytic models (packages reliability and
// traces); baseline curves come from package baselines.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"ring/internal/core"
	"ring/internal/proto"
	"ring/internal/sim"
)

// PaperSchemes are the seven memgests of the paper's 5-node deployment
// (Figure 3), in memgest-ID order 1..7.
var PaperSchemes = []proto.Scheme{
	proto.Rep(1, 3),
	proto.Rep(2, 3),
	proto.Rep(3, 3),
	proto.Rep(4, 3),
	proto.SRS(2, 1, 3),
	proto.SRS(3, 1, 3),
	proto.SRS(3, 2, 3),
}

// MemgestID returns the boot-assigned memgest ID of a paper scheme.
func MemgestID(label string) proto.MemgestID {
	for i, sc := range PaperSchemes {
		if sc.Label() == label {
			return proto.MemgestID(i + 1)
		}
	}
	panic("experiments: unknown scheme label " + label)
}

// PaperSpec is the evaluation cluster: 3 coordinators, 2 redundant
// nodes, and spares for the failure experiments.
func PaperSpec(blockSize int) core.ClusterSpec {
	if blockSize <= 0 {
		blockSize = 256 << 10
	}
	return core.ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 2,
		Memgests: PaperSchemes,
		Opts: core.Options{
			BlockSize:      blockSize,
			HeartbeatEvery: 10 * time.Microsecond,
			FailAfter:      50 * time.Microsecond,
		},
	}
}

// newPaperSim boots the evaluation cluster in the simulator.
func newPaperSim(blockSize int) (*sim.Sim, *sim.Client, error) {
	spec := PaperSpec(blockSize)
	s, err := sim.NewFromSpec(spec, sim.DefaultModel())
	if err != nil {
		return nil, nil, err
	}
	cfg, err := core.BootConfig(spec)
	if err != nil {
		return nil, nil, err
	}
	return s, sim.NewClient(s, "bench", cfg), nil
}

// LatencyPoint is one (object size -> latency) sample of a figure.
type LatencyPoint struct {
	Size   int
	Median time.Duration
	P90    time.Duration
}

// Series is one labeled curve.
type Series struct {
	Label  string
	Points []LatencyPoint
}

// percentile returns the p-quantile (0..1) of a sample set.
func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// PaperSizes are the object sizes of Figures 7 and 8: 2^1..2^11 bytes.
func PaperSizes() []int {
	var out []int
	for b := 1; b <= 11; b++ {
		out = append(out, 1<<b)
	}
	return out
}

// FormatSeries renders curves as an aligned text table (sizes as rows,
// one column per series), the output format of ringbench.
func FormatSeries(title, unit string, series []Series) string {
	out := title + "\n"
	out += fmt.Sprintf("%10s", "size(B)")
	for _, s := range series {
		out += fmt.Sprintf(" %14s", s.Label)
	}
	out += fmt.Sprintf("   (%s, median/p90)\n", unit)
	if len(series) == 0 {
		return out
	}
	for i := range series[0].Points {
		out += fmt.Sprintf("%10d", series[0].Points[i].Size)
		for _, s := range series {
			p := s.Points[i]
			out += fmt.Sprintf(" %6.1f/%-7.1f", us(p.Median), us(p.P90))
		}
		out += "\n"
	}
	return out
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
