package proto

import (
	"fmt"
	"sync"
)

// MsgType tags the envelope of every wire message.
type MsgType uint8

const (
	// Client operations.
	TPut MsgType = iota + 1
	TPutReply
	TGet
	TGetReply
	TDelete
	TDeleteReply
	TMove
	TMoveReply
	TCreateMemgest
	TDeleteMemgest
	TSetDefault
	TGetDescriptor
	TMemgestReply
	TResolve
	TResolveReply
	// Replication and parity propagation.
	TRepAppend
	TRepAck
	TRepCommit
	TParityUpdate
	TParityAck
	TPurge
	// Membership.
	THeartbeat
	THeartbeatAck
	TConfigPush
	TConfigAck
	// Recovery.
	TMetaFetch
	TMetaFetchReply
	TDataFetch
	TDataFetchReply
	TBlockRecover
	TBlockRecoverReply
	TBlockFetch
	TBlockFetchReply
	// Local timer tick (never serialized onto the network, but given a
	// type so runners can inject it uniformly).
	TTick
	// Membership (late addition, tagged after TTick to keep prior tags
	// stable): a restarted node announcing itself to the leader.
	TJoin
	// Elasticity (tagged after TJoin to keep prior tags stable): online
	// per-key scheme transitions and minimal-movement cluster resizing.
	TConvert
	TConvertReply
	TResize
	TResizeReply
)

// Status is the result code carried by replies.
type Status uint8

const (
	StOK Status = iota
	StNotFound
	StNoMemgest
	StWrongNode // request reached a node that does not own the shard
	StRetry     // transient: resend after re-resolving the config
	StInvalid   // malformed or rejected request
	StUnavailable
)

func (s Status) String() string {
	switch s {
	case StOK:
		return "OK"
	case StNotFound:
		return "not found"
	case StNoMemgest:
		return "no such memgest"
	case StWrongNode:
		return "wrong node"
	case StRetry:
		return "retry"
	case StInvalid:
		return "invalid"
	case StUnavailable:
		return "unavailable"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Err converts a non-OK status into an error (nil for StOK).
func (s Status) Err() error {
	if s == StOK {
		return nil
	}
	return fmt.Errorf("ring: %s", s)
}

// Message is implemented by every wire message.
type Message interface {
	Type() MsgType
	encode(w *writer)
}

// Encode serializes a message with its envelope type byte. It is a
// convenience shim over AppendEncode that allocates a fresh buffer.
//
//ring:hotpath
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, 64), m)
}

// writerPool recycles writer headers: encode is an interface method,
// so a stack writer would escape and cost one allocation per message.
var writerPool = sync.Pool{New: func() any { return new(writer) }}

// AppendEncode serializes a message with its envelope type byte,
// appending to buf (which may be nil) and returning the extended
// slice. It is the allocation-free hot path: callers that reuse a
// buffer with sufficient capacity pay zero allocations per message.
//
//ring:hotpath
func AppendEncode(buf []byte, m Message) []byte {
	w := writerPool.Get().(*writer)
	w.b = append(buf, uint8(m.Type()))
	m.encode(w)
	buf = w.b
	w.b = nil
	writerPool.Put(w)
	return buf
}

// Decode parses an envelope produced by Encode.
//
//ring:hotpath
func Decode(buf []byte) (Message, error) {
	if len(buf) < 1 {
		return nil, ErrTruncated
	}
	r := &reader{b: buf[1:]}
	var m Message
	switch MsgType(buf[0]) {
	case TPut:
		m = decPut(r)
	case TPutReply:
		m = decPutReply(r)
	case TGet:
		m = decGet(r)
	case TGetReply:
		m = decGetReply(r)
	case TDelete:
		m = decDelete(r)
	case TDeleteReply:
		m = decDeleteReply(r)
	case TMove:
		m = decMove(r)
	case TMoveReply:
		m = decMoveReply(r)
	case TCreateMemgest:
		m = decCreateMemgest(r)
	case TDeleteMemgest:
		m = decDeleteMemgest(r)
	case TSetDefault:
		m = decSetDefault(r)
	case TGetDescriptor:
		m = decGetDescriptor(r)
	case TMemgestReply:
		m = decMemgestReply(r)
	case TResolve:
		m = decResolve(r)
	case TResolveReply:
		m = decResolveReply(r)
	case TRepAppend:
		m = decRepAppend(r)
	case TRepAck:
		m = decRepAck(r)
	case TRepCommit:
		m = decRepCommit(r)
	case TParityUpdate:
		m = decParityUpdate(r)
	case TParityAck:
		m = decParityAck(r)
	case TPurge:
		m = decPurge(r)
	case THeartbeat:
		m = decHeartbeat(r)
	case THeartbeatAck:
		m = decHeartbeatAck(r)
	case TConfigPush:
		m = decConfigPush(r)
	case TConfigAck:
		m = decConfigAck(r)
	case TMetaFetch:
		m = decMetaFetch(r)
	case TMetaFetchReply:
		m = decMetaFetchReply(r)
	case TDataFetch:
		m = decDataFetch(r)
	case TDataFetchReply:
		m = decDataFetchReply(r)
	case TBlockRecover:
		m = decBlockRecover(r)
	case TBlockRecoverReply:
		m = decBlockRecoverReply(r)
	case TBlockFetch:
		m = decBlockFetch(r)
	case TBlockFetchReply:
		m = decBlockFetchReply(r)
	case TTick:
		m = &Tick{}
	case TJoin:
		m = decJoin(r)
	case TConvert:
		m = decConvert(r)
	case TConvertReply:
		m = decConvertReply(r)
	case TResize:
		m = decResize(r)
	case TResizeReply:
		m = decResizeReply(r)
	default:
		return nil, errUnknownType(buf[0])
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// errUnknownType builds the unknown-tag error. It lives behind a
// hot-path stop so the fmt machinery never rides the decode fast path:
// the wrapped error is only constructed once a packet is already
// malformed.
//
//ring:hotpath-stop cold error constructor
func errUnknownType(tag uint8) error {
	return fmt.Errorf("%w: %d", ErrUnknownType, tag)
}

// ---------------------------------------------------------------- client ops

// Put writes a value under key into the given memgest (0 = cluster
// default).
type Put struct {
	Req     ReqID
	Key     string
	Value   []byte
	Memgest MemgestID
}

func (*Put) Type() MsgType { return TPut }
func (m *Put) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.str(m.Key)
	w.bytes(m.Value)
	w.u32(uint32(m.Memgest))
}
func decPut(r *reader) *Put {
	return &Put{Req: ReqID(r.u64()), Key: r.str(), Value: r.bytes(), Memgest: MemgestID(r.u32())}
}

// PutReply acknowledges a committed Put.
type PutReply struct {
	Req     ReqID
	Status  Status
	Version Version
}

func (*PutReply) Type() MsgType { return TPutReply }
func (m *PutReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u64(uint64(m.Version))
}
func decPutReply(r *reader) *PutReply {
	return &PutReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Version: Version(r.u64())}
}

// Get reads a version of key: Version 0 selects the highest version
// (parking the reply until it commits); a nonzero Version reads that
// exact version if it is still retained (see Options.KeepVersions),
// which is how the heavy-updates use case reads back the preserved
// reliable copy of a key.
type Get struct {
	Req     ReqID
	Key     string
	Version Version
}

func (*Get) Type() MsgType { return TGet }
func (m *Get) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.str(m.Key)
	w.u64(uint64(m.Version))
}
func decGet(r *reader) *Get {
	return &Get{Req: ReqID(r.u64()), Key: r.str(), Version: Version(r.u64())}
}

// GetReply returns the value (or NotFound).
type GetReply struct {
	Req     ReqID
	Status  Status
	Version Version
	Value   []byte
}

func (*GetReply) Type() MsgType { return TGetReply }
func (m *GetReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u64(uint64(m.Version))
	w.bytes(m.Value)
}
func decGetReply(r *reader) *GetReply {
	return &GetReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Version: Version(r.u64()), Value: r.bytes()}
}

// Delete removes key (a committed tombstone version).
type Delete struct {
	Req ReqID
	Key string
}

func (*Delete) Type() MsgType { return TDelete }
func (m *Delete) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.str(m.Key)
}
func decDelete(r *reader) *Delete { return &Delete{Req: ReqID(r.u64()), Key: r.str()} }

// DeleteReply acknowledges a Delete.
type DeleteReply struct {
	Req    ReqID
	Status Status
}

func (*DeleteReply) Type() MsgType { return TDeleteReply }
func (m *DeleteReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
}
func decDeleteReply(r *reader) *DeleteReply {
	return &DeleteReply{Req: ReqID(r.u64()), Status: Status(r.u8())}
}

// Move transfers key to another memgest without resending the value
// (the data is local to the coordinator thanks to SRS co-location).
type Move struct {
	Req     ReqID
	Key     string
	Memgest MemgestID
}

func (*Move) Type() MsgType { return TMove }
func (m *Move) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.str(m.Key)
	w.u32(uint32(m.Memgest))
}
func decMove(r *reader) *Move {
	return &Move{Req: ReqID(r.u64()), Key: r.str(), Memgest: MemgestID(r.u32())}
}

// MoveReply acknowledges a committed Move.
type MoveReply struct {
	Req     ReqID
	Status  Status
	Version Version
}

func (*MoveReply) Type() MsgType { return TMoveReply }
func (m *MoveReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u64(uint64(m.Version))
}
func decMoveReply(r *reader) *MoveReply {
	return &MoveReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Version: Version(r.u64())}
}

// CreateMemgest asks the leader to instantiate a new storage scheme.
type CreateMemgest struct {
	Req    ReqID
	Scheme Scheme
}

func (*CreateMemgest) Type() MsgType { return TCreateMemgest }
func (m *CreateMemgest) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.scheme(m.Scheme)
}
func decCreateMemgest(r *reader) *CreateMemgest {
	return &CreateMemgest{Req: ReqID(r.u64()), Scheme: r.scheme()}
}

// DeleteMemgest removes a memgest (which must be empty of live keys in
// this implementation).
type DeleteMemgest struct {
	Req     ReqID
	Memgest MemgestID
}

func (*DeleteMemgest) Type() MsgType { return TDeleteMemgest }
func (m *DeleteMemgest) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
}
func decDeleteMemgest(r *reader) *DeleteMemgest {
	return &DeleteMemgest{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32())}
}

// SetDefault selects the memgest used for puts without an explicit one.
type SetDefault struct {
	Req     ReqID
	Memgest MemgestID
}

func (*SetDefault) Type() MsgType { return TSetDefault }
func (m *SetDefault) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
}
func decSetDefault(r *reader) *SetDefault {
	return &SetDefault{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32())}
}

// GetDescriptor retrieves a memgest's scheme.
type GetDescriptor struct {
	Req     ReqID
	Memgest MemgestID
}

func (*GetDescriptor) Type() MsgType { return TGetDescriptor }
func (m *GetDescriptor) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
}
func decGetDescriptor(r *reader) *GetDescriptor {
	return &GetDescriptor{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32())}
}

// MemgestReply answers memgest management requests.
type MemgestReply struct {
	Req     ReqID
	Status  Status
	Memgest MemgestID
	Scheme  Scheme
}

func (*MemgestReply) Type() MsgType { return TMemgestReply }
func (m *MemgestReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u32(uint32(m.Memgest))
	w.scheme(m.Scheme)
}
func decMemgestReply(r *reader) *MemgestReply {
	return &MemgestReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Memgest: MemgestID(r.u32()), Scheme: r.scheme()}
}

// Resolve asks any node for the current cluster configuration.
type Resolve struct {
	Req ReqID
}

func (*Resolve) Type() MsgType      { return TResolve }
func (m *Resolve) encode(w *writer) { w.u64(uint64(m.Req)) }
func decResolve(r *reader) *Resolve { return &Resolve{Req: ReqID(r.u64())} }

// ResolveReply carries the node's current configuration.
type ResolveReply struct {
	Req    ReqID
	Config *Config
}

func (*ResolveReply) Type() MsgType { return TResolveReply }
func (m *ResolveReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.config(m.Config)
}
func decResolveReply(r *reader) *ResolveReply {
	return &ResolveReply{Req: ReqID(r.u64()), Config: r.config()}
}

// ------------------------------------------------------------- replication

// RepAppend replicates one log entry (metadata + value) of a
// replicated memgest from the coordinator to a replica.
type RepAppend struct {
	Memgest MemgestID
	Shard   uint32
	Seq     Seq
	Rec     MetaRecord
	Value   []byte
}

func (*RepAppend) Type() MsgType { return TRepAppend }
func (m *RepAppend) encode(w *writer) {
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Seq))
	w.metaRecord(&m.Rec)
	w.bytes(m.Value)
}
func decRepAppend(r *reader) *RepAppend {
	return &RepAppend{Memgest: MemgestID(r.u32()), Shard: r.u32(), Seq: Seq(r.u64()), Rec: r.metaRecord(), Value: r.bytes()}
}

// RepAck acknowledges replication of one log entry.
type RepAck struct {
	Memgest MemgestID
	Shard   uint32
	Seq     Seq
}

func (*RepAck) Type() MsgType { return TRepAck }
func (m *RepAck) encode(w *writer) {
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Seq))
}
func decRepAck(r *reader) *RepAck {
	return &RepAck{Memgest: MemgestID(r.u32()), Shard: r.u32(), Seq: Seq(r.u64())}
}

// RepCommit advances the commit index on replicas and parity nodes so
// they can flip committed flags (and lagging Rep replicas apply).
type RepCommit struct {
	Memgest MemgestID
	Shard   uint32
	Seq     Seq
}

func (*RepCommit) Type() MsgType { return TRepCommit }
func (m *RepCommit) encode(w *writer) {
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Seq))
}
func decRepCommit(r *reader) *RepCommit {
	return &RepCommit{Memgest: MemgestID(r.u32()), Shard: r.u32(), Seq: Seq(r.u64())}
}

// ParityUpdate carries the coefficient-multiplied delta produced by a
// coordinator to one parity node of an SRS memgest, together with the
// metadata record so the parity node can maintain its replica of the
// metadata hashtable. Block is the coordinator's logical block,
// StripeOff its stripe offset t, Off the byte offset within the block.
type ParityUpdate struct {
	Memgest   MemgestID
	Shard     uint32
	Seq       Seq
	Rec       MetaRecord
	Block     uint32
	StripeOff uint32
	Off       uint32
	Delta     []byte
}

func (*ParityUpdate) Type() MsgType { return TParityUpdate }
func (m *ParityUpdate) encode(w *writer) {
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Seq))
	w.metaRecord(&m.Rec)
	w.u32(m.Block)
	w.u32(m.StripeOff)
	w.u32(m.Off)
	w.bytes(m.Delta)
}
func decParityUpdate(r *reader) *ParityUpdate {
	return &ParityUpdate{
		Memgest: MemgestID(r.u32()), Shard: r.u32(), Seq: Seq(r.u64()),
		Rec: r.metaRecord(), Block: r.u32(), StripeOff: r.u32(), Off: r.u32(), Delta: r.bytes(),
	}
}

// ParityAck acknowledges application of a parity update.
type ParityAck struct {
	Memgest MemgestID
	Shard   uint32
	Seq     Seq
}

func (*ParityAck) Type() MsgType { return TParityAck }
func (m *ParityAck) encode(w *writer) {
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Seq))
}
func decParityAck(r *reader) *ParityAck {
	return &ParityAck{Memgest: MemgestID(r.u32()), Shard: r.u32(), Seq: Seq(r.u64())}
}

// Purge garbage-collects an old version of a key on redundancy nodes
// after a newer version committed.
type Purge struct {
	Memgest MemgestID
	Shard   uint32
	Key     string
	Version Version
}

func (*Purge) Type() MsgType { return TPurge }
func (m *Purge) encode(w *writer) {
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.str(m.Key)
	w.u64(uint64(m.Version))
}
func decPurge(r *reader) *Purge {
	return &Purge{Memgest: MemgestID(r.u32()), Shard: r.u32(), Key: r.str(), Version: Version(r.u64())}
}

// ------------------------------------------------------------- membership

// Heartbeat is sent by the leader to every node.
type Heartbeat struct {
	Epoch Epoch
}

func (*Heartbeat) Type() MsgType        { return THeartbeat }
func (m *Heartbeat) encode(w *writer)   { w.u64(uint64(m.Epoch)) }
func decHeartbeat(r *reader) *Heartbeat { return &Heartbeat{Epoch: Epoch(r.u64())} }

// HeartbeatAck confirms liveness to the leader.
type HeartbeatAck struct {
	Epoch Epoch
}

func (*HeartbeatAck) Type() MsgType      { return THeartbeatAck }
func (m *HeartbeatAck) encode(w *writer) { w.u64(uint64(m.Epoch)) }
func decHeartbeatAck(r *reader) *HeartbeatAck {
	return &HeartbeatAck{Epoch: Epoch(r.u64())}
}

// ConfigPush replicates a new configuration (role assignment entry of
// the membership log).
type ConfigPush struct {
	Config *Config
}

func (*ConfigPush) Type() MsgType      { return TConfigPush }
func (m *ConfigPush) encode(w *writer) { w.config(m.Config) }
func decConfigPush(r *reader) *ConfigPush {
	return &ConfigPush{Config: r.config()}
}

// Join is sent by a node that (re)started with empty state and wants
// back into the cluster. The leader strips any data roles the node
// still holds in the current configuration (its memory is gone — the
// roles must be recovered by someone else or re-recovered by the
// joiner) and re-admits it as a spare. Non-leaders answer with a
// ConfigPush of their current configuration so the joiner can locate
// the real leader.
type Join struct {
	// Node is the joiner's identity (also derivable from the sender
	// address, but carried explicitly so the message is self-contained).
	Node NodeID
	// Epoch is the configuration epoch the joiner booted with, for
	// observability; the leader's decision does not depend on it.
	Epoch Epoch
	// Durable is set when the joiner recovered committed state from its
	// data directory: the leader then re-admits it into the roles it
	// held (letting it delta-sync from the group) instead of stripping
	// it down to an empty spare.
	Durable bool
}

func (*Join) Type() MsgType { return TJoin }
func (m *Join) encode(w *writer) {
	w.u32(uint32(m.Node))
	w.u64(uint64(m.Epoch))
	w.bool(m.Durable)
}
func decJoin(r *reader) *Join {
	return &Join{Node: NodeID(r.u32()), Epoch: Epoch(r.u64()), Durable: r.bool()}
}

// ConfigAck confirms installation of a configuration epoch.
type ConfigAck struct {
	Epoch Epoch
}

func (*ConfigAck) Type() MsgType        { return TConfigAck }
func (m *ConfigAck) encode(w *writer)   { w.u64(uint64(m.Epoch)) }
func decConfigAck(r *reader) *ConfigAck { return &ConfigAck{Epoch: Epoch(r.u64())} }

// --------------------------------------------------------------- recovery

// MetaFetch asks a node for its metadata hashtable of one memgest
// shard (step 5 of the recovery sequence).
type MetaFetch struct {
	Req     ReqID
	Memgest MemgestID
	Shard   uint32
	// Since is the delta floor: a requester that recovered durable
	// state up to sequence Since only needs records past it. Zero asks
	// for the full table (the only value non-durable nodes send).
	Since Seq
}

func (*MetaFetch) Type() MsgType { return TMetaFetch }
func (m *MetaFetch) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Since))
}
func decMetaFetch(r *reader) *MetaFetch {
	return &MetaFetch{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32()), Shard: r.u32(), Since: Seq(r.u64())}
}

// MetaFetchReply returns the metadata records and the log position up
// to which they are complete.
type MetaFetchReply struct {
	Req     ReqID
	Status  Status
	Memgest MemgestID
	Shard   uint32
	Seq     Seq
	Recs    []MetaRecord
}

func (*MetaFetchReply) Type() MsgType { return TMetaFetchReply }
func (m *MetaFetchReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.u64(uint64(m.Seq))
	w.u32(uint32(len(m.Recs)))
	for i := range m.Recs {
		w.metaRecord(&m.Recs[i])
	}
}
func decMetaFetchReply(r *reader) *MetaFetchReply {
	m := &MetaFetchReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Memgest: MemgestID(r.u32()), Shard: r.u32(), Seq: Seq(r.u64())}
	n := int(r.u32())
	if r.err != nil || n > len(r.b) {
		r.fail()
		return m
	}
	m.Recs = make([]MetaRecord, n)
	for i := range m.Recs {
		m.Recs[i] = r.metaRecord()
	}
	return m
}

// DataFetch asks a replica for the value of (key, version) during
// recovery of a replicated memgest.
type DataFetch struct {
	Req     ReqID
	Memgest MemgestID
	Shard   uint32
	Key     string
	Version Version
}

func (*DataFetch) Type() MsgType { return TDataFetch }
func (m *DataFetch) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
	w.u32(m.Shard)
	w.str(m.Key)
	w.u64(uint64(m.Version))
}
func decDataFetch(r *reader) *DataFetch {
	return &DataFetch{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32()), Shard: r.u32(), Key: r.str(), Version: Version(r.u64())}
}

// DataFetchReply returns the requested value.
type DataFetchReply struct {
	Req    ReqID
	Status Status
	Value  []byte
}

func (*DataFetchReply) Type() MsgType { return TDataFetchReply }
func (m *DataFetchReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.bytes(m.Value)
}
func decDataFetchReply(r *reader) *DataFetchReply {
	return &DataFetchReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Value: r.bytes()}
}

// BlockRecover asks a parity node to reconstruct one logical block of
// an SRS memgest (the on-the-fly recovery of Section 5.5).
type BlockRecover struct {
	Req     ReqID
	Memgest MemgestID
	Block   uint32
}

func (*BlockRecover) Type() MsgType { return TBlockRecover }
func (m *BlockRecover) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
	w.u32(m.Block)
}
func decBlockRecover(r *reader) *BlockRecover {
	return &BlockRecover{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32()), Block: r.u32()}
}

// BlockRecoverReply returns the reconstructed block contents.
type BlockRecoverReply struct {
	Req    ReqID
	Status Status
	Block  uint32
	Data   []byte
}

func (*BlockRecoverReply) Type() MsgType { return TBlockRecoverReply }
func (m *BlockRecoverReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u32(m.Block)
	w.bytes(m.Data)
}
func decBlockRecoverReply(r *reader) *BlockRecoverReply {
	return &BlockRecoverReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Block: r.u32(), Data: r.bytes()}
}

// BlockFetch asks a data node for the raw contents of one of its
// logical blocks (used by the parity node while decoding a stripe).
type BlockFetch struct {
	Req     ReqID
	Memgest MemgestID
	Block   uint32
}

func (*BlockFetch) Type() MsgType { return TBlockFetch }
func (m *BlockFetch) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u32(uint32(m.Memgest))
	w.u32(m.Block)
}
func decBlockFetch(r *reader) *BlockFetch {
	return &BlockFetch{Req: ReqID(r.u64()), Memgest: MemgestID(r.u32()), Block: r.u32()}
}

// BlockFetchReply returns the raw block contents.
type BlockFetchReply struct {
	Req    ReqID
	Status Status
	Block  uint32
	Data   []byte
}

func (*BlockFetchReply) Type() MsgType { return TBlockFetchReply }
func (m *BlockFetchReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u32(m.Block)
	w.bytes(m.Data)
}
func decBlockFetchReply(r *reader) *BlockFetchReply {
	return &BlockFetchReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Block: r.u32(), Data: r.bytes()}
}

// -------------------------------------------------------------- elasticity

// Convert asks a key's coordinator to re-encode it from its current
// memgest into another — the paper's local scheme move made live as an
// online transition. The re-encode happens entirely on the coordinator
// (SRS co-location keeps the value local); reads and writes of the key
// are parked over the short commit window and released when the new
// version commits. With Prefix set, Key is a prefix and the receiving
// coordinator converts every matching key it owns, answering with the
// count.
type Convert struct {
	Req ReqID
	Key string
	// From restricts the conversion to keys currently in this memgest
	// (0 = whichever memgest holds the key's highest version).
	From MemgestID
	// To is the destination memgest.
	To MemgestID
	// Prefix treats Key as a prefix (bulk conversion).
	Prefix bool
}

func (*Convert) Type() MsgType { return TConvert }
func (m *Convert) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.str(m.Key)
	w.u32(uint32(m.From))
	w.u32(uint32(m.To))
	w.bool(m.Prefix)
}
func decConvert(r *reader) *Convert {
	return &Convert{Req: ReqID(r.u64()), Key: r.str(), From: MemgestID(r.u32()), To: MemgestID(r.u32()), Prefix: r.bool()}
}

// ConvertReply acknowledges a committed conversion. Version is the new
// version the key holds in the destination memgest (single-key form);
// Converted counts the keys transitioned (prefix form).
type ConvertReply struct {
	Req       ReqID
	Status    Status
	Version   Version
	Converted uint32
}

func (*ConvertReply) Type() MsgType { return TConvertReply }
func (m *ConvertReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u64(uint64(m.Version))
	w.u32(m.Converted)
}
func decConvertReply(r *reader) *ConvertReply {
	return &ConvertReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Version: Version(r.u64()), Converted: r.u32()}
}

// ResizeOp selects the direction of a Resize.
type ResizeOp uint8

const (
	// ResizeJoin admits a node into the cluster as a spare.
	ResizeJoin ResizeOp = iota + 1
	// ResizeLeave removes a node: the leader computes the minimal role
	// reassignment, fences the departing node with the new configuration
	// first (so it stops serving before anyone else moves), and only
	// then announces cluster-wide.
	ResizeLeave
)

// Resize asks the leader to grow or shrink the cluster by one node.
type Resize struct {
	Req  ReqID
	Op   ResizeOp
	Node NodeID
}

func (*Resize) Type() MsgType { return TResize }
func (m *Resize) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Op))
	w.u32(uint32(m.Node))
}
func decResize(r *reader) *Resize {
	return &Resize{Req: ReqID(r.u64()), Op: ResizeOp(r.u8()), Node: NodeID(r.u32())}
}

// ResizeReply confirms a membership change. Moved counts the role
// slots whose assignment actually changed — the minimal-movement
// metric: a leave that substitutes one spare moves only that node's
// slots, never the whole keyspace.
type ResizeReply struct {
	Req    ReqID
	Status Status
	Moved  uint32
	Epoch  Epoch
}

func (*ResizeReply) Type() MsgType { return TResizeReply }
func (m *ResizeReply) encode(w *writer) {
	w.u64(uint64(m.Req))
	w.u8(uint8(m.Status))
	w.u32(m.Moved)
	w.u64(uint64(m.Epoch))
}
func decResizeReply(r *reader) *ResizeReply {
	return &ResizeReply{Req: ReqID(r.u64()), Status: Status(r.u8()), Moved: r.u32(), Epoch: Epoch(r.u64())}
}

// Tick is the local timer event delivered by runners; it never crosses
// the network.
type Tick struct{}

func (*Tick) Type() MsgType    { return TTick }
func (m *Tick) encode(*writer) {}
