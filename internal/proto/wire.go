// Package proto defines the wire protocol of Ring: the identifier
// types shared across the system, the storage-scheme and cluster
// configuration descriptors, and every message exchanged between
// clients, coordinators, replicas, parity nodes, and the leader.
//
// Messages are encoded with a hand-rolled little-endian binary format
// (no reflection): an envelope of [1-byte type][body]. Each message
// implements Marshaler; Decode dispatches on the type byte. The format
// is length-prefixed for all variable fields, rejects truncated input,
// and is covered by round-trip and corpus tests.
//
// Encoding has two entry points: Encode allocates a fresh buffer, and
// AppendEncode appends into a caller-owned buffer for the
// zero-allocation hot path. Several messages bound for the same peer
// can be coalesced into one packet with AppendBatch, producing a
// TBatch envelope ([1-byte TBatch][u32 count][count length-prefixed
// messages]); ForEachPacked iterates the sub-messages of such a
// packet (and degrades to a single visit for plain envelopes). See
// batch.go for the exact frame layout.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = errors.New("proto: truncated message")

// ErrUnknownType is returned for an unrecognized message type byte.
var ErrUnknownType = errors.New("proto: unknown message type")

// writer appends primitive values to a byte slice.
type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(v string) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// reader consumes primitive values from a byte slice.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return ""
	}
	v := string(r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return errTrailing(len(r.b))
	}
	return nil
}

// errTrailing builds the trailing-bytes error. Cold by construction:
// it only runs for malformed packets, so the fmt allocation is kept
// off the decode fast path behind a hot-path stop.
//
//ring:hotpath-stop cold error constructor
func errTrailing(n int) error {
	return fmt.Errorf("proto: %d trailing bytes", n)
}
