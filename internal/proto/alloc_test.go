package proto

import "testing"

// Allocation-regression tests: the message hot path is pinned at its
// allocation counts so refactors cannot quietly reintroduce per-message
// garbage. AppendEncode into a warm buffer must be allocation-free;
// Decode pays exactly one allocation for the message struct plus one
// per variable-length field it copies out.

func TestAppendEncodeAllocs(t *testing.T) {
	val := make([]byte, 1024)
	msgs := []struct {
		name string
		m    Message
	}{
		{"Put1KiB", &Put{Req: 1, Key: "bench-key", Value: val, Memgest: 2}},
		{"RepAppend1KiB", &RepAppend{Memgest: 2, Shard: 1, Seq: 9, Rec: MetaRecord{Key: "bench-key", Version: 3, Memgest: 2, Length: 1024}, Value: val}},
		{"ParityUpdate1KiB", &ParityUpdate{Memgest: 2, Shard: 1, Seq: 9, Rec: MetaRecord{Key: "bench-key", Version: 3, Memgest: 2, Length: 1024}, Block: 4, StripeOff: 1, Off: 128, Delta: val}},
		{"RepCommit", &RepCommit{Memgest: 2, Shard: 1, Seq: 9}},
		{"PutReply", &PutReply{Req: 1, Status: StOK, Version: 3}},
	}
	for _, tc := range msgs {
		buf := make([]byte, 0, 8192)
		allocs := testing.AllocsPerRun(100, func() {
			buf = AppendEncode(buf[:0], tc.m)
		})
		if allocs != 0 {
			t.Errorf("AppendEncode(%s): %.1f allocs/op into a warm buffer, want 0", tc.name, allocs)
		}
	}
}

func TestAppendBatchAllocs(t *testing.T) {
	grp := []Message{
		&RepCommit{Memgest: 2, Shard: 1, Seq: 9},
		&Purge{Memgest: 2, Shard: 1, Key: "bench-key", Version: 2},
	}
	buf := make([]byte, 0, 8192)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBatch(buf[:0], grp...)
	})
	if allocs != 0 {
		t.Errorf("AppendBatch: %.1f allocs/op into a warm buffer, want 0", allocs)
	}
}

func TestDecodeAllocs(t *testing.T) {
	// Decode allocates the message struct and a copy of each
	// variable-length field — nothing else. The counts below are
	// ceilings: raise them only with a wire-format change that
	// justifies it.
	cases := []struct {
		name string
		m    Message
		max  float64
	}{
		{"Put1KiB", &Put{Req: 1, Key: "bench-key", Value: make([]byte, 1024), Memgest: 2}, 3},       // struct + key + value
		{"PutReply", &PutReply{Req: 1, Status: StOK, Version: 3}, 1},                                // struct only
		{"RepCommit", &RepCommit{Memgest: 2, Shard: 1, Seq: 9}, 1},                                  // struct only
		{"GetReply1KiB", &GetReply{Req: 1, Status: StOK, Version: 3, Value: make([]byte, 1024)}, 2}, // struct + value
	}
	for _, tc := range cases {
		enc := Encode(tc.m)
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := Decode(enc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > tc.max {
			t.Errorf("Decode(%s): %.1f allocs/op, want <= %.0f", tc.name, allocs, tc.max)
		}
	}
}

func TestEncodeDecodeRoundTripAllocs(t *testing.T) {
	// The full round trip a live put pays per hop: encode into a warm
	// buffer, then decode. Pinned so the end-to-end message cost stays
	// at the decode-side copies alone.
	m := &Put{Req: 1, Key: "bench-key", Value: make([]byte, 1024), Memgest: 2}
	buf := make([]byte, 0, 8192)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendEncode(buf[:0], m)
		if _, err := Decode(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Errorf("round trip: %.1f allocs/op, want <= 3", allocs)
	}
}
