package proto

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip drives arbitrary bytes through the decode→encode
// cycle and pins the fixed point: any packet Decode accepts must
// re-encode to bytes Decode accepts again with an identical second
// encoding. Divergence means an encode method and its decode arm have
// drifted (a field read but not written, or written twice) — exactly
// the asymmetry the wirepair analyzer guards statically; the fuzzer
// guards the dynamic byte-level contract.
func FuzzWireRoundTrip(f *testing.F) {
	seeds := []Message{
		&Put{Req: 7, Key: "k", Value: []byte("v"), Memgest: 3},
		&PutReply{Req: 7, Status: StOK, Version: 9},
		&Get{Req: 8, Key: "k", Version: 2},
		&GetReply{Req: 8, Status: StNotFound, Version: 0, Value: nil},
		&Tick{},
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	f.Add(AppendBatch(nil, seeds...))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0, 0, 0})
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, pkt []byte) {
		// ForEachPacked must never panic on arbitrary input, and every
		// sub-message it yields goes through the round-trip check.
		_ = ForEachPacked(pkt, func(enc []byte) error {
			checkRoundTrip(t, enc)
			return nil
		})
		checkRoundTrip(t, pkt)
	})
}

func checkRoundTrip(t *testing.T, pkt []byte) {
	t.Helper()
	m1, err := Decode(pkt)
	if err != nil {
		return // malformed input is fine; it just must not panic
	}
	enc1 := Encode(m1)
	m2, err := Decode(enc1)
	if err != nil {
		t.Fatalf("re-decode of freshly encoded %T failed: %v", m1, err)
	}
	enc2 := Encode(m2)
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("%T encode/decode is not a fixed point:\n enc1=%x\n enc2=%x", m1, enc1, enc2)
	}
}
