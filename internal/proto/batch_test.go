package proto

import (
	"reflect"
	"testing"
)

func TestAppendEncodeMatchesEncode(t *testing.T) {
	msgs := []Message{
		&Put{Req: 7, Key: "k", Value: []byte("v"), Memgest: 2},
		&GetReply{Req: 9, Status: StOK, Version: 3, Value: []byte("xyz")},
		&RepCommit{Memgest: 1, Shard: 2, Seq: 44},
		&Tick{},
	}
	for _, m := range msgs {
		plain := Encode(m)
		prefix := []byte{0xde, 0xad}
		appended := AppendEncode(append([]byte(nil), prefix...), m)
		if string(appended[:2]) != string(prefix) {
			t.Fatalf("%T: AppendEncode clobbered the prefix", m)
		}
		if string(appended[2:]) != string(plain) {
			t.Fatalf("%T: AppendEncode differs from Encode", m)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := []Message{
		&RepCommit{Memgest: 1, Shard: 0, Seq: 7},
		&Purge{Memgest: 1, Shard: 0, Key: "k", Version: 1},
		&PutReply{Req: 3, Status: StOK, Version: 2},
	}
	pkt := AppendBatch(nil, msgs...)
	if !IsBatch(pkt) {
		t.Fatalf("multi-message packet not tagged TBatch: type %d", pkt[0])
	}
	var got []Message
	if err := ForEachPacked(pkt, func(enc []byte) error {
		m, err := Decode(enc)
		if err != nil {
			return err
		}
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Fatalf("round trip diverged:\n got %#v\nwant %#v", got, msgs)
	}
}

func TestBatchSingleMessageIsPlainEnvelope(t *testing.T) {
	pkt := AppendBatch(nil, &Heartbeat{Epoch: 5})
	if IsBatch(pkt) {
		t.Fatal("single message must not pay the batch envelope")
	}
	m, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := m.(*Heartbeat); !ok || h.Epoch != 5 {
		t.Fatalf("got %#v", m)
	}
	// ForEachPacked degrades to a single visit on plain envelopes.
	visits := 0
	if err := ForEachPacked(pkt, func(enc []byte) error {
		visits++
		if len(enc) != len(pkt) {
			t.Fatalf("plain visit saw %d of %d bytes", len(enc), len(pkt))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 1 {
		t.Fatalf("visits = %d", visits)
	}
}

func TestBatchRejectsMalformed(t *testing.T) {
	nop := func([]byte) error { return nil }
	good := AppendBatch(nil, &Heartbeat{Epoch: 1}, &Heartbeat{Epoch: 2})
	cases := map[string][]byte{
		"empty body":       {byte(TBatch)},
		"short count":      {byte(TBatch), 1, 0},
		"truncated prefix": good[:len(good)-12],
		"truncated body":   good[:len(good)-1],
		"trailing bytes":   append(append([]byte(nil), good...), 0xAA),
	}
	for name, pkt := range cases {
		if err := ForEachPacked(pkt, nop); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A nested batch is malformed by construction.
	inner := AppendBatch(nil, &Heartbeat{Epoch: 1}, &Heartbeat{Epoch: 2})
	nested := []byte{byte(TBatch), 1, 0, 0, 0}
	nested = append(nested, byte(len(inner)), 0, 0, 0)
	nested = append(nested, inner...)
	if err := ForEachPacked(nested, nop); err == nil {
		t.Error("nested batch: accepted")
	}
	// Decode never sees TBatch as a message type.
	if _, err := Decode(good); err == nil {
		t.Error("Decode accepted a TBatch envelope")
	}
}

func TestBatchStopsOnCallbackError(t *testing.T) {
	pkt := AppendBatch(nil, &Heartbeat{Epoch: 1}, &Heartbeat{Epoch: 2}, &Heartbeat{Epoch: 3})
	visits := 0
	err := ForEachPacked(pkt, func([]byte) error {
		visits++
		if visits == 2 {
			return ErrTruncated // arbitrary sentinel
		}
		return nil
	})
	if err != ErrTruncated || visits != 2 {
		t.Fatalf("err=%v visits=%d", err, visits)
	}
}
