package proto

import "fmt"

// NodeID identifies a server in the cluster. IDs are assigned at
// deployment time and stable for the life of the process.
type NodeID uint32

// NilNode is the zero NodeID used to mean "no node".
const NilNode NodeID = 0xffffffff

// MemgestID identifies a memgest (storage scheme instance) within the
// cluster. ID 0 is reserved as "unset"/default marker at the API level.
type MemgestID uint32

// Epoch numbers cluster configurations; higher epochs supersede lower.
type Epoch uint64

// Seq numbers entries in a memgest's replicated log.
type Seq uint64

// Version numbers versions of a key; higher versions supersede lower
// across all memgests (Section 5.2).
type Version uint64

// ReqID correlates client requests with replies.
type ReqID uint64

// SchemeKind discriminates replication from erasure coding.
type SchemeKind uint8

const (
	// SchemeRep is replication Rep(r,s): s shards, r copies of each.
	// r=1 is the unreliable memgest.
	SchemeRep SchemeKind = iota + 1
	// SchemeSRS is Stretched Reed-Solomon SRS(k,m,s).
	SchemeSRS
)

// Scheme describes a storage scheme (the memgest descriptor of the
// createMemgest API).
type Scheme struct {
	Kind SchemeKind
	// K and M are the RS parameters (SRS only).
	K, M int
	// R is the replication factor (Rep only).
	R int
	// S is the number of key shards / data nodes, shared by every
	// scheme in one memgest group.
	S int
}

// Rep constructs a Rep(r,s) scheme descriptor.
func Rep(r, s int) Scheme { return Scheme{Kind: SchemeRep, R: r, S: s} }

// SRS constructs an SRS(k,m,s) scheme descriptor.
func SRS(k, m, s int) Scheme { return Scheme{Kind: SchemeSRS, K: k, M: m, S: s} }

// Validate checks the descriptor parameters.
func (s Scheme) Validate() error {
	if s.S < 1 {
		return fmt.Errorf("proto: scheme needs s >= 1, got %d", s.S)
	}
	switch s.Kind {
	case SchemeRep:
		if s.R < 1 {
			return fmt.Errorf("proto: Rep needs r >= 1, got %d", s.R)
		}
	case SchemeSRS:
		if s.K < 1 || s.M < 1 {
			return fmt.Errorf("proto: SRS needs k >= 1 and m >= 1, got k=%d m=%d", s.K, s.M)
		}
		if s.S < s.K {
			return fmt.Errorf("proto: SRS needs s >= k, got s=%d k=%d", s.S, s.K)
		}
	default:
		return fmt.Errorf("proto: unknown scheme kind %d", s.Kind)
	}
	return nil
}

// RedundantNodes returns how many nodes beyond the s coordinators the
// scheme occupies: m parity nodes for SRS, r-1 extra replicas for Rep.
func (s Scheme) RedundantNodes() int {
	if s.Kind == SchemeSRS {
		return s.M
	}
	return s.R - 1
}

// Tolerates returns the number of simultaneous node failures the
// scheme is guaranteed to tolerate: m for SRS and, per Section 3.1,
// floor((r-1)/2) for quorum-replicated Rep(r,s).
func (s Scheme) Tolerates() int {
	if s.Kind == SchemeSRS {
		return s.M
	}
	return (s.R - 1) / 2
}

// StorageOverhead returns the memory cost multiplier of the scheme.
func (s Scheme) StorageOverhead() float64 {
	if s.Kind == SchemeSRS {
		return float64(s.K+s.M) / float64(s.K)
	}
	return float64(s.R)
}

// String renders the paper's labels: SRS32 for SRS(3,2,s), REP3 for
// Rep(3,s).
func (s Scheme) String() string {
	if s.Kind == SchemeSRS {
		return fmt.Sprintf("SRS(%d,%d,%d)", s.K, s.M, s.S)
	}
	return fmt.Sprintf("Rep(%d,%d)", s.R, s.S)
}

// Label renders the short label used in the paper's figures.
func (s Scheme) Label() string {
	if s.Kind == SchemeSRS {
		return fmt.Sprintf("SRS%d%d", s.K, s.M)
	}
	return fmt.Sprintf("REP%d", s.R)
}

func (w *writer) scheme(s Scheme) {
	w.u8(uint8(s.Kind))
	w.u16(uint16(s.K))
	w.u16(uint16(s.M))
	w.u16(uint16(s.R))
	w.u16(uint16(s.S))
}

func (r *reader) scheme() Scheme {
	return Scheme{
		Kind: SchemeKind(r.u8()),
		K:    int(r.u16()),
		M:    int(r.u16()),
		R:    int(r.u16()),
		S:    int(r.u16()),
	}
}

// MemgestInfo pairs a memgest ID with its scheme and concrete node
// placement, as decided by the leader on createMemgest.
type MemgestInfo struct {
	ID     MemgestID
	Scheme Scheme
	// Redundant lists the nodes holding redundancy for this memgest:
	// the m parity nodes for SRS, the r-1 extra replica nodes for Rep.
	// Coordinators are implicit: shard i is owned by Config.Coords[i].
	Redundant []NodeID
}

func (w *writer) memgestInfo(m MemgestInfo) {
	w.u32(uint32(m.ID))
	w.scheme(m.Scheme)
	w.u16(uint16(len(m.Redundant)))
	for _, n := range m.Redundant {
		w.u32(uint32(n))
	}
}

func (r *reader) memgestInfo() MemgestInfo {
	m := MemgestInfo{ID: MemgestID(r.u32()), Scheme: r.scheme()}
	n := int(r.u16())
	if r.err != nil || n > len(r.b) {
		r.fail()
		return m
	}
	m.Redundant = make([]NodeID, n)
	for i := range m.Redundant {
		m.Redundant[i] = NodeID(r.u32())
	}
	return m
}

// Config is the replicated cluster configuration: the role of every
// node and the set of live memgests. It is produced by the leader,
// numbered by Epoch, and pushed to all nodes; any node or client can
// serve it to anyone who asks (Resolve).
type Config struct {
	Epoch  Epoch
	Leader NodeID
	// Coords[i] is the coordinator node for key shard i; len == s.
	Coords []NodeID
	// Redundant are the d redundancy nodes of the memgest group.
	Redundant []NodeID
	// Spares are idle nodes ready to replace failures.
	Spares []NodeID
	// Memgests lists every live memgest.
	Memgests []MemgestInfo
	// Default is the memgest used by put(key, object) without an
	// explicit memgest.
	Default MemgestID
}

// Shards returns s, the number of key shards.
func (c *Config) Shards() int { return len(c.Coords) }

// ShardOf maps a key hash to its shard: i = h(key) mod s.
func (c *Config) ShardOf(keyHash uint64) int {
	return int(keyHash % uint64(len(c.Coords)))
}

// CoordinatorOf returns the coordinator node for a key hash.
func (c *Config) CoordinatorOf(keyHash uint64) NodeID {
	return c.Coords[c.ShardOf(keyHash)]
}

// Memgest returns the info for id, or nil.
func (c *Config) Memgest(id MemgestID) *MemgestInfo {
	for i := range c.Memgests {
		if c.Memgests[i].ID == id {
			return &c.Memgests[i]
		}
	}
	return nil
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{Epoch: c.Epoch, Leader: c.Leader, Default: c.Default}
	out.Coords = append([]NodeID(nil), c.Coords...)
	out.Redundant = append([]NodeID(nil), c.Redundant...)
	out.Spares = append([]NodeID(nil), c.Spares...)
	out.Memgests = make([]MemgestInfo, len(c.Memgests))
	for i, m := range c.Memgests {
		m.Redundant = append([]NodeID(nil), m.Redundant...)
		out.Memgests[i] = m
	}
	return out
}

// AllNodes returns every node mentioned in the config, de-duplicated,
// in role order (coordinators, redundant, spares).
func (c *Config) AllNodes() []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	add := func(ns []NodeID) {
		for _, n := range ns {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	add(c.Coords)
	add(c.Redundant)
	add(c.Spares)
	return out
}

func (w *writer) config(c *Config) {
	w.u64(uint64(c.Epoch))
	w.u32(uint32(c.Leader))
	w.u16(uint16(len(c.Coords)))
	for _, n := range c.Coords {
		w.u32(uint32(n))
	}
	w.u16(uint16(len(c.Redundant)))
	for _, n := range c.Redundant {
		w.u32(uint32(n))
	}
	w.u16(uint16(len(c.Spares)))
	for _, n := range c.Spares {
		w.u32(uint32(n))
	}
	w.u16(uint16(len(c.Memgests)))
	for i := range c.Memgests {
		w.memgestInfo(c.Memgests[i])
	}
	w.u32(uint32(c.Default))
}

// nodeList decodes a u16-counted list of node IDs.
func (r *reader) nodeList() []NodeID {
	n := int(r.u16())
	if r.err != nil || n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(r.u32())
	}
	return out
}

func (r *reader) config() *Config {
	c := &Config{Epoch: Epoch(r.u64()), Leader: NodeID(r.u32())}
	c.Coords = r.nodeList()
	c.Redundant = r.nodeList()
	c.Spares = r.nodeList()
	n := int(r.u16())
	if r.err != nil || n > len(r.b) {
		r.fail()
		return c
	}
	c.Memgests = make([]MemgestInfo, n)
	for i := range c.Memgests {
		c.Memgests[i] = r.memgestInfo()
	}
	c.Default = MemgestID(r.u32())
	return c
}

// MetaRecord is one metadata hashtable entry as shipped over the wire
// (replication and recovery). It mirrors the paper's
// key,version -> data,length,committed mapping; Loc fields locate the
// primary bytes in the coordinator's block heap for SRS memgests.
type MetaRecord struct {
	Key       string
	Version   Version
	Memgest   MemgestID
	Committed bool
	Tombstone bool
	Length    uint32
	// LocBlock/LocOff place the value in the SRS logical block space
	// of the coordinator (unused for Rep memgests, which ship values).
	LocBlock uint32
	LocOff   uint32
}

func (w *writer) metaRecord(m *MetaRecord) {
	w.str(m.Key)
	w.u64(uint64(m.Version))
	w.u32(uint32(m.Memgest))
	w.bool(m.Committed)
	w.bool(m.Tombstone)
	w.u32(m.Length)
	w.u32(m.LocBlock)
	w.u32(m.LocOff)
}

func (r *reader) metaRecord() MetaRecord {
	return MetaRecord{
		Key:       r.str(),
		Version:   Version(r.u64()),
		Memgest:   MemgestID(r.u32()),
		Committed: r.bool(),
		Tombstone: r.bool(),
		Length:    r.u32(),
		LocBlock:  r.u32(),
		LocOff:    r.u32(),
	}
}
