package proto

import (
	"math/rand"
	"reflect"
	"testing"
)

func sampleConfig() *Config {
	return &Config{
		Epoch:     7,
		Leader:    2,
		Coords:    []NodeID{0, 1, 2},
		Redundant: []NodeID{3, 4},
		Spares:    []NodeID{5},
		Memgests: []MemgestInfo{
			{ID: 1, Scheme: SRS(3, 2, 3), Redundant: []NodeID{3, 4}},
			{ID: 2, Scheme: Rep(3, 3), Redundant: []NodeID{3, 4}},
			{ID: 3, Scheme: Rep(1, 3), Redundant: nil},
		},
		Default: 2,
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Encode(m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%T): %v", m, err)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	rec := MetaRecord{Key: "user:42", Version: 9, Memgest: 3, Committed: true, Tombstone: false, Length: 1024, LocBlock: 2, LocOff: 4096}
	msgs := []Message{
		&Put{Req: 1, Key: "k", Value: []byte("v"), Memgest: 2},
		&Put{Req: 2, Key: "", Value: nil, Memgest: 0},
		&PutReply{Req: 1, Status: StOK, Version: 5},
		&Get{Req: 3, Key: "key"},
		&Get{Req: 31, Key: "key", Version: 7},
		&GetReply{Req: 3, Status: StNotFound, Version: 0, Value: nil},
		&GetReply{Req: 4, Status: StOK, Version: 2, Value: []byte{1, 2, 3}},
		&Delete{Req: 5, Key: "gone"},
		&DeleteReply{Req: 5, Status: StOK},
		&Move{Req: 6, Key: "k", Memgest: 9},
		&MoveReply{Req: 6, Status: StRetry, Version: 3},
		&CreateMemgest{Req: 7, Scheme: SRS(2, 1, 3)},
		&DeleteMemgest{Req: 8, Memgest: 4},
		&SetDefault{Req: 9, Memgest: 4},
		&GetDescriptor{Req: 10, Memgest: 4},
		&MemgestReply{Req: 10, Status: StOK, Memgest: 4, Scheme: Rep(3, 3)},
		&Resolve{Req: 11},
		&ResolveReply{Req: 11, Config: sampleConfig()},
		&RepAppend{Memgest: 2, Shard: 1, Seq: 44, Rec: rec, Value: []byte("payload")},
		&RepAck{Memgest: 2, Shard: 1, Seq: 44},
		&RepCommit{Memgest: 2, Shard: 1, Seq: 44},
		&ParityUpdate{Memgest: 1, Shard: 0, Seq: 45, Rec: rec, Block: 3, StripeOff: 1, Off: 128, Delta: []byte{9, 9}},
		&ParityAck{Memgest: 1, Shard: 0, Seq: 45},
		&Purge{Memgest: 1, Shard: 0, Key: "old", Version: 1},
		&Heartbeat{Epoch: 3},
		&HeartbeatAck{Epoch: 3},
		&ConfigPush{Config: sampleConfig()},
		&ConfigAck{Epoch: 7},
		&MetaFetch{Req: 12, Memgest: 1, Shard: 2, Since: 99},
		&MetaFetchReply{Req: 12, Status: StOK, Memgest: 1, Shard: 2, Seq: 100, Recs: []MetaRecord{rec, {Key: "b"}}},
		&DataFetch{Req: 13, Memgest: 2, Shard: 0, Key: "k", Version: 7},
		&DataFetchReply{Req: 13, Status: StOK, Value: []byte("data")},
		&BlockRecover{Req: 14, Memgest: 1, Block: 5},
		&BlockRecoverReply{Req: 14, Status: StOK, Block: 5, Data: []byte("blk")},
		&BlockFetch{Req: 15, Memgest: 1, Block: 5},
		&BlockFetchReply{Req: 15, Status: StOK, Block: 5, Data: []byte("blk")},
		&Tick{},
		&Join{Node: 3, Epoch: 9, Durable: true},
		&Convert{Req: 16, Key: "k", From: 2, To: 4, Prefix: false},
		&Convert{Req: 17, Key: "user:", From: 0, To: 3, Prefix: true},
		&ConvertReply{Req: 16, Status: StOK, Version: 8, Converted: 2},
		&Resize{Req: 18, Op: ResizeLeave, Node: 5},
		&ResizeReply{Req: 18, Status: StOK, Moved: 4, Epoch: 11},
	}
	seen := make(map[MsgType]bool)
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%T round trip mismatch:\n got %#v\nwant %#v", m, got, m)
		}
		seen[m.Type()] = true
	}
	// Every defined message type must be covered.
	for ty := TPut; ty <= TResizeReply; ty++ {
		if !seen[ty] {
			t.Errorf("message type %d not covered by round-trip test", ty)
		}
	}
}

// normalize maps nil and empty slices to a canonical form so
// DeepEqual tolerates the decode side allocating empty slices.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *Put:
		if len(v.Value) == 0 {
			v.Value = nil
		}
	case *GetReply:
		if len(v.Value) == 0 {
			v.Value = nil
		}
	case *DataFetchReply:
		if len(v.Value) == 0 {
			v.Value = nil
		}
	case *ResolveReply:
		normalizeConfig(v.Config)
	case *ConfigPush:
		normalizeConfig(v.Config)
	case *MetaFetchReply:
		if len(v.Recs) == 0 {
			v.Recs = nil
		}
	}
	return m
}

func normalizeConfig(c *Config) {
	if len(c.Coords) == 0 {
		c.Coords = nil
	}
	if len(c.Redundant) == 0 {
		c.Redundant = nil
	}
	if len(c.Spares) == 0 {
		c.Spares = nil
	}
	for i := range c.Memgests {
		if len(c.Memgests[i].Redundant) == 0 {
			c.Memgests[i].Redundant = nil
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := Decode([]byte{200}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Truncate a valid message at every possible length; none may
	// panic and all but the full length must error.
	full := Encode(&ResolveReply{Req: 1, Config: sampleConfig()})
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", n, len(full))
		}
	}
	if _, err := Decode(full); err != nil {
		t.Fatalf("full message rejected: %v", err)
	}
	// Trailing garbage must be rejected.
	if _, err := Decode(append(append([]byte{}, full...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeHugeLengthPrefix(t *testing.T) {
	// A length prefix far beyond the buffer must fail cleanly, not
	// attempt a giant allocation.
	buf := Encode(&Get{Req: 1, Key: "abc"})
	// Patch the key length field (offset: 1 type + 8 req) to 2^31.
	buf[9], buf[10], buf[11], buf[12] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Decode(buf); err == nil {
		t.Fatal("huge length accepted")
	}
}

func TestSchemeValidate(t *testing.T) {
	valid := []Scheme{Rep(1, 3), Rep(5, 3), SRS(2, 1, 3), SRS(3, 2, 3), SRS(2, 2, 4)}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%v should be valid: %v", s, err)
		}
	}
	invalid := []Scheme{{}, Rep(0, 3), Rep(3, 0), SRS(0, 1, 3), SRS(3, 0, 3), SRS(4, 1, 3), {Kind: 9, S: 3}}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%v should be invalid", s)
		}
	}
}

func TestSchemeProperties(t *testing.T) {
	if got := SRS(3, 2, 3).RedundantNodes(); got != 2 {
		t.Errorf("SRS(3,2,3) redundant = %d", got)
	}
	if got := Rep(4, 3).RedundantNodes(); got != 3 {
		t.Errorf("Rep(4,3) redundant = %d", got)
	}
	if got := SRS(3, 2, 3).Tolerates(); got != 2 {
		t.Errorf("SRS(3,2,3) tolerates = %d", got)
	}
	if got := Rep(3, 3).Tolerates(); got != 1 {
		t.Errorf("Rep(3,3) tolerates = %d (quorum: floor((r-1)/2))", got)
	}
	if got := Rep(1, 3).Tolerates(); got != 0 {
		t.Errorf("Rep(1,3) tolerates = %d", got)
	}
	if o := SRS(3, 2, 3).StorageOverhead(); o < 1.66 || o > 1.67 {
		t.Errorf("SRS(3,2) overhead = %v", o)
	}
	if o := Rep(3, 3).StorageOverhead(); o != 3 {
		t.Errorf("Rep(3) overhead = %v", o)
	}
	if SRS(3, 2, 3).Label() != "SRS32" || Rep(1, 3).Label() != "REP1" {
		t.Error("labels wrong")
	}
	if SRS(3, 2, 3).String() != "SRS(3,2,3)" || Rep(2, 3).String() != "Rep(2,3)" {
		t.Error("String wrong")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := sampleConfig()
	if c.Shards() != 3 {
		t.Fatalf("Shards = %d", c.Shards())
	}
	if c.ShardOf(10) != 1 || c.CoordinatorOf(10) != 1 {
		t.Fatalf("ShardOf/CoordinatorOf wrong")
	}
	if c.Memgest(2) == nil || c.Memgest(2).Scheme.R != 3 {
		t.Fatal("Memgest lookup failed")
	}
	if c.Memgest(99) != nil {
		t.Fatal("Memgest(99) should be nil")
	}
	all := c.AllNodes()
	if len(all) != 6 {
		t.Fatalf("AllNodes = %v", all)
	}
	cl := c.Clone()
	cl.Coords[0] = 99
	cl.Memgests[0].Redundant[0] = 99
	if c.Coords[0] == 99 || c.Memgests[0].Redundant[0] == 99 {
		t.Fatal("Clone is shallow")
	}
}

func TestStatusStringsAndErr(t *testing.T) {
	if StOK.Err() != nil {
		t.Fatal("StOK.Err must be nil")
	}
	for _, s := range []Status{StNotFound, StNoMemgest, StWrongNode, StRetry, StInvalid, StUnavailable, Status(99)} {
		if s.Err() == nil {
			t.Fatalf("%v.Err must be non-nil", s)
		}
		if s.String() == "" {
			t.Fatalf("%v has empty String", s)
		}
	}
}

func BenchmarkEncodePut1KiB(b *testing.B) {
	m := &Put{Req: 1, Key: "12345678", Value: make([]byte, 1024), Memgest: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodePut1KiB(b *testing.B) {
	buf := Encode(&Put{Req: 1, Key: "12345678", Value: make([]byte, 1024), Memgest: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeMutationFuzz flips random bytes in valid encodings; Decode
// must never panic and must either fail or return a message.
func TestDecodeMutationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	corpus := [][]byte{
		Encode(&Put{Req: 1, Key: "12345678", Value: make([]byte, 64), Memgest: 3}),
		Encode(&ResolveReply{Req: 2, Config: sampleConfig()}),
		Encode(&MetaFetchReply{Req: 3, Status: StOK, Recs: []MetaRecord{{Key: "k", Version: 1}}}),
		Encode(&ParityUpdate{Memgest: 1, Seq: 9, Rec: MetaRecord{Key: "x"}, Delta: make([]byte, 32)}),
	}
	for trial := 0; trial < 5000; trial++ {
		base := corpus[rng.Intn(len(corpus))]
		buf := append([]byte(nil), base...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on mutated input: %v", r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}
