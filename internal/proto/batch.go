package proto

import "encoding/binary"

// Batch frame format.
//
// A TBatch packet carries several independently encoded messages in
// one transport send, so a fan-out of r replica appends or m parity
// updates to the same peer costs a single datagram — the analogue of
// posting back-to-back RDMA verbs and ringing the doorbell once:
//
//	[1-byte TBatch][u32 count][count × ([u32 len][len bytes of message])]
//
// Each sub-message is a complete envelope as produced by Encode /
// AppendEncode (type byte included), so decoding a batch is just
// slicing and dispatching through the ordinary Decode. Batches are
// never nested: AppendBatch emits sub-messages flat, and
// ForEachPacked treats a TBatch sub-message as malformed.

// TBatch tags a multi-message packet. It sits at the top of the type
// space, far from the iota-assigned message types, so new messages
// can be appended without colliding. It is a frame envelope, not a
// message: AppendBatch writes it and ForEachPacked strips it before
// Decode ever sees the payload.
const TBatch MsgType = 0xFF //ring:wireframe frame envelope, stripped before Decode

// AppendBatch frames msgs into buf as one packet and returns the
// extended slice. A single message is emitted as its plain envelope
// (no batch overhead); two or more are wrapped in a TBatch frame.
//
//ring:hotpath
func AppendBatch(buf []byte, msgs ...Message) []byte {
	if len(msgs) == 1 {
		return AppendEncode(buf, msgs[0])
	}
	buf = append(buf, uint8(TBatch))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msgs)))
	for _, m := range msgs {
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = AppendEncode(buf, m)
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	return buf
}

// IsBatch reports whether an encoded packet is a TBatch envelope.
func IsBatch(pkt []byte) bool {
	return len(pkt) > 0 && MsgType(pkt[0]) == TBatch
}

// ForEachPacked calls fn once per encoded message carried by pkt: for
// a TBatch packet it visits every sub-message in order, for any other
// packet it visits the packet itself. The sub-slices passed to fn
// alias pkt and are only valid during the call; fn must Decode (which
// copies all variable-length fields) or copy before retaining. A
// non-nil error from fn stops the iteration and is returned.
//
//ring:hotpath
func ForEachPacked(pkt []byte, fn func(enc []byte) error) error {
	if !IsBatch(pkt) {
		return fn(pkt)
	}
	b := pkt[1:]
	if len(b) < 4 {
		return ErrTruncated
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return ErrTruncated
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return ErrTruncated
		}
		sub := b[:n]
		b = b[n:]
		if IsBatch(sub) {
			return ErrUnknownType // nested batches are malformed
		}
		if err := fn(sub); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return ErrTruncated
	}
	return nil
}
