// Package bitcask implements the value store of the durable layer: a
// Bitcask-style log-structured hash table. Data files hold CRC-framed
// key/value records appended in write order; an in-memory keydir maps
// each live key to its newest record; Merge compacts the live set into
// fresh data files and writes hint files so the next Open rebuilds the
// keydir without reading any values.
//
// The durable layer (internal/replog) stores one record per committed
// entry under a key derived from (memgest, shard, KeyHash key,
// version), so compaction here never has to understand the
// write-ahead metadata tables — a version is immutable once written
// and is either live or deleted.
package bitcask

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"ring/internal/wal"
)

const (
	dataPrefix = "bc-"
	dataSuffix = ".data"
	hintSuffix = ".hint"
	frameSize  = 12 // u32 keyLen + u32 valLen + u32 crc32c(key||val)
	// tombstone is the valLen sentinel of a delete record (CRC over the
	// key alone).
	tombstone = ^uint32(0)
	maxKey    = 1 << 16
	maxValue  = 64 << 20

	// DefaultSegmentBytes rotates data files at this size when Options
	// leaves it zero.
	DefaultSegmentBytes = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a DB.
type Options struct {
	SegmentBytes int
}

type loc struct {
	file   uint64
	valOff int64
	valLen uint32
}

// DB is an open Bitcask store.
type DB struct {
	fs       wal.FS
	segBytes int64

	keydir  map[string]loc
	files   []uint64 // ascending; last is the active file
	active  wal.File
	handles map[uint64]wal.File // lazily opened read handles for sealed files

	activeOff int64
	dirty     bool
	damaged   bool
	syncs     uint64
	dead      int // tombstones + superseded records since the last merge
}

func dataName(idx uint64) string { return fmt.Sprintf("%s%08d%s", dataPrefix, idx, dataSuffix) }
func hintName(idx uint64) string { return fmt.Sprintf("%s%08d%s", dataPrefix, idx, hintSuffix) }

func parseDataName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, dataPrefix) || !strings.HasSuffix(name, dataSuffix) {
		return 0, false
	}
	digits := name[len(dataPrefix) : len(name)-len(dataSuffix)]
	var idx uint64
	if len(digits) == 0 {
		return 0, false
	}
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(c-'0')
	}
	return idx, true
}

// Open loads (or creates) a store. Sealed data files are indexed from
// their hint files when one exists; files without a hint — always
// including the newest, which was still accepting appends at the
// crash — are scanned record by record. A torn final record in the
// newest file is truncated away; corruption anywhere else sets
// Damaged, telling the recovery protocol to distrust local state.
func Open(fsys wal.FS, opts Options) (*DB, error) {
	segBytes := int64(opts.SegmentBytes)
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	db := &DB{
		fs:       fsys,
		segBytes: segBytes,
		keydir:   make(map[string]loc),
		handles:  make(map[uint64]wal.File),
	}
	names, err := fsys.List()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if idx, ok := parseDataName(name); ok {
			db.files = append(db.files, idx)
		}
	}
	sort.Slice(db.files, func(i, j int) bool { return db.files[i] < db.files[j] })

	for i, idx := range db.files {
		newest := i == len(db.files)-1
		if !newest && db.loadHint(idx) {
			continue
		}
		if err := db.scanData(idx, newest); err != nil {
			return nil, err
		}
	}
	if len(db.files) == 0 {
		db.files = append(db.files, 1)
	}
	activeIdx := db.files[len(db.files)-1]
	f, err := fsys.OpenFile(dataName(activeIdx))
	if err != nil {
		return nil, err
	}
	db.active = f
	db.activeOff = f.Size()
	return db, nil
}

// loadHint rebuilds keydir entries for sealed file idx from its hint
// file, reporting success; any inconsistency falls back to a scan.
func (db *DB) loadHint(idx uint64) bool {
	data, err := db.fs.ReadFile(hintName(idx))
	if err != nil {
		return false
	}
	// Hint record: [u32 keyLen][u32 valLen][u64 valOff][u32 crc(key)][key]
	type entry struct {
		key string
		l   loc
	}
	var entries []entry
	off := 0
	for off < len(data) {
		if len(data)-off < 20 {
			return false
		}
		klen := binary.LittleEndian.Uint32(data[off:])
		vlen := binary.LittleEndian.Uint32(data[off+4:])
		voff := binary.LittleEndian.Uint64(data[off+8:])
		crc := binary.LittleEndian.Uint32(data[off+16:])
		if klen > maxKey || off+20+int(klen) > len(data) {
			return false
		}
		key := data[off+20 : off+20+int(klen)]
		if crc32.Checksum(key, castagnoli) != crc {
			return false
		}
		entries = append(entries, entry{string(key), loc{idx, int64(voff), vlen}})
		off += 20 + int(klen)
	}
	for _, e := range entries {
		if old, ok := db.keydir[e.key]; ok && old.file < idx {
			db.dead++
		}
		db.keydir[e.key] = e.l
	}
	return true
}

// scanData walks data file idx record by record, updating the keydir.
// In the newest file a torn final record is truncated; everywhere
// else, and for fully-present records failing their CRC, the store is
// marked damaged.
func (db *DB) scanData(idx uint64, newest bool) error {
	data, err := db.fs.ReadFile(dataName(idx))
	if err != nil {
		return err
	}
	off := 0
	validEnd := 0
	for off < len(data) {
		if len(data)-off < frameSize {
			break // short frame: torn tail
		}
		klen := binary.LittleEndian.Uint32(data[off:])
		vlen := binary.LittleEndian.Uint32(data[off+4:])
		crc := binary.LittleEndian.Uint32(data[off+8:])
		vbytes := int(vlen)
		if vlen == tombstone {
			vbytes = 0
		}
		if klen > maxKey || vlen != tombstone && vlen > maxValue ||
			off+frameSize+int(klen)+vbytes > len(data) {
			break // frame overruns the file: torn tail
		}
		key := data[off+frameSize : off+frameSize+int(klen)]
		val := data[off+frameSize+int(klen) : off+frameSize+int(klen)+vbytes]
		sum := crc32.Checksum(key, castagnoli)
		if vlen != tombstone {
			sum = crc32.Update(sum, castagnoli, val)
		}
		if sum != crc {
			// Fully present record, bad CRC: media corruption.
			db.damaged = true
			break
		}
		if vlen == tombstone {
			if _, ok := db.keydir[string(key)]; ok {
				delete(db.keydir, string(key))
				db.dead++
			}
			db.dead++
		} else {
			if _, ok := db.keydir[string(key)]; ok {
				db.dead++
			}
			db.keydir[string(key)] = loc{idx, int64(off + frameSize + int(klen)), vlen}
		}
		off += frameSize + int(klen) + vbytes
		validEnd = off
	}
	if validEnd == len(data) {
		return nil
	}
	if !newest {
		// A break before the newest file cannot be a torn tail: sealed
		// files never change after their final sync.
		db.damaged = true
		return nil
	}
	f, err := db.fs.OpenFile(dataName(idx))
	if err != nil {
		return err
	}
	if err := f.Truncate(int64(validEnd)); err != nil {
		f.Close() //ring:durableok failed-path teardown, the primary error wins
		return err
	}
	return f.Close()
}

// Put stores key -> val, superseding any older record.
func (db *DB) Put(key string, val []byte) error {
	if len(key) > maxKey || len(val) > maxValue {
		return fmt.Errorf("bitcask: record too large (%d-byte key, %d-byte value)", len(key), len(val))
	}
	if _, ok := db.keydir[key]; ok {
		db.dead++
	}
	l, err := db.appendRecord(key, val, false)
	if err != nil {
		return err
	}
	db.keydir[key] = l
	return nil
}

// Get returns the newest value of key.
func (db *DB) Get(key string) ([]byte, bool, error) {
	l, ok := db.keydir[key]
	if !ok {
		return nil, false, nil
	}
	val := make([]byte, l.valLen)
	f, err := db.handle(l.file)
	if err != nil {
		return nil, false, err
	}
	if l.valLen == 0 {
		return val, true, nil
	}
	if _, err := f.ReadAt(val, l.valOff); err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Delete removes key by appending a tombstone. Deleting an absent key
// is a no-op.
func (db *DB) Delete(key string) error {
	if _, ok := db.keydir[key]; !ok {
		return nil
	}
	if _, err := db.appendRecord(key, nil, true); err != nil {
		return err
	}
	delete(db.keydir, key)
	db.dead += 2 // the superseded record and the tombstone itself
	return nil
}

// DeletePrefix removes every key with the given prefix, returning how
// many were deleted; used when a node sheds a shard's durable state.
func (db *DB) DeletePrefix(prefix string) (int, error) {
	var doomed []string
	for k := range db.keydir {
		if strings.HasPrefix(k, prefix) {
			doomed = append(doomed, k)
		}
	}
	sort.Strings(doomed)
	for _, k := range doomed {
		if err := db.Delete(k); err != nil {
			return 0, err
		}
	}
	return len(doomed), nil
}

func (db *DB) appendRecord(key string, val []byte, del bool) (loc, error) {
	if db.activeOff >= db.segBytes {
		if err := db.rotate(); err != nil {
			return loc{}, err
		}
	}
	var hdr [frameSize]byte
	vlen := uint32(len(val))
	sum := crc32.Checksum([]byte(key), castagnoli)
	if del {
		vlen = tombstone
	} else {
		sum = crc32.Update(sum, castagnoli, val)
	}
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:], vlen)
	binary.LittleEndian.PutUint32(hdr[8:], sum)
	if _, err := db.active.Append(hdr[:]); err != nil {
		return loc{}, err
	}
	if _, err := db.active.Append([]byte(key)); err != nil {
		return loc{}, err
	}
	if !del {
		if _, err := db.active.Append(val); err != nil {
			return loc{}, err
		}
	}
	l := loc{
		file:   db.files[len(db.files)-1],
		valOff: db.activeOff + frameSize + int64(len(key)),
		valLen: uint32(len(val)),
	}
	db.activeOff += frameSize + int64(len(key)) + int64(len(val))
	db.dirty = true
	return l, nil
}

// rotate seals the active data file (synced, closed) and opens the
// next index.
func (db *DB) rotate() error {
	if err := db.active.Sync(); err != nil {
		return err
	}
	db.syncs++
	db.dirty = false
	old := db.files[len(db.files)-1]
	if err := db.active.Close(); err != nil {
		return err
	}
	delete(db.handles, old)
	next := old + 1
	f, err := db.fs.OpenFile(dataName(next))
	if err != nil {
		return err
	}
	db.files = append(db.files, next)
	db.active = f
	db.activeOff = f.Size()
	return nil
}

func (db *DB) handle(idx uint64) (wal.File, error) {
	if idx == db.files[len(db.files)-1] {
		return db.active, nil
	}
	if f, ok := db.handles[idx]; ok {
		return f, nil
	}
	f, err := db.fs.OpenFile(dataName(idx))
	if err != nil {
		return nil, err
	}
	db.handles[idx] = f
	return f, nil
}

// Merge compacts the live set into fresh data files (indexes above
// every existing one), writes their hint files, and deletes the old
// generation. A crash mid-merge leaves overlapping generations whose
// replay converges to the same keydir — newer files win per key.
func (db *DB) Merge() error {
	if err := db.Sync(); err != nil {
		return err
	}
	keys := make([]string, 0, len(db.keydir))
	for k := range db.keydir {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	oldFiles := append([]uint64(nil), db.files...)
	if err := db.active.Close(); err != nil {
		return err
	}
	next := oldFiles[len(oldFiles)-1] + 1
	db.files = append(db.files, next)
	f, err := db.fs.OpenFile(dataName(next))
	if err != nil {
		return err
	}
	db.active, db.activeOff = f, f.Size()

	type hintRec struct {
		key string
		l   loc
	}
	hints := make(map[uint64][]hintRec)
	newLocs := make(map[string]loc, len(keys))
	for _, k := range keys {
		val, ok, err := db.getFrom(oldFiles, k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		l, err := db.appendRecord(k, val, false)
		if err != nil {
			return err
		}
		newLocs[k] = l
		hints[l.file] = append(hints[l.file], hintRec{k, l})
	}
	// Seal the merged generation behind a fresh active file before any
	// hint is written. Open trusts a hint for every non-newest file, so
	// a hint may only ever describe a file that can never be appended
	// to again: post-merge Puts must land in a hint-less file, or the
	// stale hint would hide them from the keydir after the next reopen.
	// rotate syncs the final merge file on the way out, making the
	// merged data durable.
	if err := db.rotate(); err != nil {
		return err
	}
	// Merged data durable and sealed: write the hints, then drop the
	// old generation. Hint files carry no authoritative state — a crash
	// between these steps only costs a rescan or a re-merge.
	for idx, recs := range hints {
		h, err := db.fs.OpenFile(hintName(idx))
		if err != nil {
			return err
		}
		if err := h.Truncate(0); err != nil {
			h.Close() //ring:durableok failed-path teardown, the primary error wins
			return err
		}
		var buf []byte
		for _, r := range recs {
			var hdr [20]byte
			binary.LittleEndian.PutUint32(hdr[0:], uint32(len(r.key)))
			binary.LittleEndian.PutUint32(hdr[4:], r.l.valLen)
			binary.LittleEndian.PutUint64(hdr[8:], uint64(r.l.valOff))
			binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum([]byte(r.key), castagnoli))
			buf = append(buf, hdr[:]...)
			buf = append(buf, r.key...)
		}
		if _, err := h.Append(buf); err != nil {
			h.Close() //ring:durableok failed-path teardown, the primary error wins
			return err
		}
		if err := h.Sync(); err != nil {
			h.Close() //ring:durableok failed-path teardown, the primary error wins
			return err
		}
		if err := h.Close(); err != nil {
			return err
		}
	}
	for _, idx := range oldFiles {
		delete(db.handles, idx)
		if err := db.fs.Remove(dataName(idx)); err != nil {
			return err
		}
		if err := db.fs.Remove(hintName(idx)); err != nil {
			return err
		}
	}
	kept := db.files[:0]
	for _, idx := range db.files {
		old := false
		for _, o := range oldFiles {
			if idx == o {
				old = true
				break
			}
		}
		if !old {
			kept = append(kept, idx)
		}
	}
	db.files = kept
	for k, l := range newLocs {
		db.keydir[k] = l
	}
	db.dead = 0
	return nil
}

// getFrom reads key's current value while its loc may still point into
// the pre-merge generation.
func (db *DB) getFrom(oldFiles []uint64, key string) ([]byte, bool, error) {
	l, ok := db.keydir[key]
	if !ok {
		return nil, false, nil
	}
	f, err := db.handle(l.file)
	if err != nil {
		return nil, false, err
	}
	val := make([]byte, l.valLen)
	if l.valLen == 0 {
		return val, true, nil
	}
	if _, err := f.ReadAt(val, l.valOff); err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Range calls fn for every live key in sorted order, reading each
// value once.
func (db *DB) Range(fn func(key string, val []byte) error) error {
	keys := make([]string, 0, len(db.keydir))
	for k := range db.keydir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		val, ok, err := db.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(k, val); err != nil {
			return err
		}
	}
	return nil
}

// Sync makes every record appended so far crash-durable.
func (db *DB) Sync() error {
	if !db.dirty {
		return nil
	}
	if err := db.active.Sync(); err != nil {
		return err
	}
	db.dirty = false
	db.syncs++
	return nil
}

// Dirty reports whether unsynced appends exist.
func (db *DB) Dirty() bool { return db.dirty }

// Damaged reports whether Open found lost durable bytes.
func (db *DB) Damaged() bool { return db.damaged }

// Len returns the live key count.
func (db *DB) Len() int { return len(db.keydir) }

// Dead returns the superseded/tombstone record count since the last
// merge — the fragmentation measure that triggers compaction.
func (db *DB) Dead() int { return db.dead }

// Files returns the ascending data file indexes (last is active).
func (db *DB) Files() []uint64 { return append([]uint64(nil), db.files...) }

// Syncs counts fsyncs issued by this DB instance.
func (db *DB) Syncs() uint64 { return db.syncs }

// Close syncs and closes every open handle.
func (db *DB) Close() error {
	err := db.Sync()
	if cerr := db.active.Close(); err == nil {
		err = cerr
	}
	for _, f := range db.handles {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	db.handles = make(map[uint64]wal.File)
	return err
}
