package bitcask

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ring/internal/wal"
)

func open(t *testing.T, fs wal.FS, opts Options) *DB {
	t.Helper()
	db, err := Open(fs, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func mustPut(t *testing.T, db *DB, key, val string) {
	t.Helper()
	if err := db.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put %s: %v", key, err)
	}
}

func mustGet(t *testing.T, db *DB, key, want string) {
	t.Helper()
	val, ok, err := db.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get %s = %v ok=%v", key, err, ok)
	}
	if string(val) != want {
		t.Fatalf("Get %s = %q, want %q", key, val, want)
	}
}

func TestPutGetDeleteReopen(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{})
	mustPut(t, db, "a", "1")
	mustPut(t, db, "b", "2")
	mustPut(t, db, "a", "1'")
	if err := db.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	mustGet(t, db, "a", "1'")
	if _, ok, err := db.Get("b"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("deleted key still present")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open(t, fs, Options{})
	if db2.Len() != 1 {
		t.Fatalf("Len after reopen = %d, want 1", db2.Len())
	}
	mustGet(t, db2, "a", "1'")
	if _, ok, err := db2.Get("b"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("tombstone did not survive reopen")
	}
}

func TestRotationAndCrossFileReads(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{SegmentBytes: 128})
	for i := 0; i < 16; i++ {
		mustPut(t, db, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d-%s", i, "padpadpadpad"))
	}
	if len(db.Files()) < 3 {
		t.Fatalf("no rotation: files = %v", db.Files())
	}
	for i := 0; i < 16; i++ {
		mustGet(t, db, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d-%s", i, "padpadpadpad"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := open(t, fs, Options{SegmentBytes: 128})
	for i := 0; i < 16; i++ {
		mustGet(t, db2, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d-%s", i, "padpadpadpad"))
	}
}

func TestMergeWritesHintsAndDropsOldFiles(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{SegmentBytes: 128})
	for i := 0; i < 12; i++ {
		mustPut(t, db, fmt.Sprintf("k%d", i%4), fmt.Sprintf("gen%d", i))
	}
	if err := db.Delete("k3"); err != nil {
		t.Fatal(err)
	}
	before := db.Files()
	if err := db.Merge(); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for _, idx := range before {
		if fs.FileSize(dataName(idx)) != 0 {
			t.Fatalf("old data file %d survived the merge", idx)
		}
	}
	// Every merged (sealed) file must have a hint.
	files := db.Files()
	for _, idx := range files[:len(files)-1] {
		if fs.FileSize(hintName(idx)) == 0 {
			t.Fatalf("merged file %d has no hint", idx)
		}
	}
	mustGet(t, db, "k0", "gen8")
	mustGet(t, db, "k1", "gen9")
	mustGet(t, db, "k2", "gen10")
	if _, ok, err := db.Get("k3"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("deleted key resurrected by merge")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the keydir rebuilds (from hints where present).
	db2 := open(t, fs, Options{SegmentBytes: 128})
	if db2.Len() != 3 {
		t.Fatalf("Len after merge+reopen = %d, want 3", db2.Len())
	}
	mustGet(t, db2, "k0", "gen8")
	// And the store keeps working past the merge generation.
	mustPut(t, db2, "k9", "post-merge")
	mustGet(t, db2, "k9", "post-merge")
}

func TestTornTailTruncated(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{})
	mustPut(t, db, "synced", "value")
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "torn", "this-record-is-not-synced")
	fs.Crash(rand.New(rand.NewSource(11)))

	db2 := open(t, fs, Options{})
	if db2.Damaged() {
		t.Fatal("torn tail must not count as damage")
	}
	mustGet(t, db2, "synced", "value")
	// The truncated file must accept appends cleanly.
	mustPut(t, db2, "after", "crash")
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := open(t, fs, Options{})
	mustGet(t, db3, "after", "crash")
}

func TestBitFlipMarksDamaged(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{})
	mustPut(t, db, "aaaa", "0123456789abcdef")
	mustPut(t, db, "bbbb", "0123456789abcdef")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the first record's value region.
	if !fs.FlipBit(dataName(1), int64(frameSize+4+3)*8) {
		t.Fatal("FlipBit missed")
	}
	db2 := open(t, fs, Options{})
	if !db2.Damaged() {
		t.Fatal("bit flip in a fully-present record must mark the store damaged")
	}
}

func TestRangeSortedAndComplete(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{})
	mustPut(t, db, "c", "3")
	mustPut(t, db, "a", "1")
	mustPut(t, db, "b", "2")
	var got []string
	if err := db.Range(func(k string, v []byte) error {
		got = append(got, k+"="+string(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a=1", "b=2", "c=3"}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestDeletePrefix(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{})
	mustPut(t, db, "s1/a", "x")
	mustPut(t, db, "s1/b", "y")
	mustPut(t, db, "s2/a", "z")
	n, err := db.DeletePrefix("s1/")
	if err != nil || n != 2 {
		t.Fatalf("DeletePrefix = %d, %v", n, err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d after prefix delete", db.Len())
	}
	mustGet(t, db, "s2/a", "z")
}

func TestEmptyValueRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{})
	if err := db.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	val, ok, err := db.Get("empty")
	if err != nil || !ok || len(val) != 0 {
		t.Fatalf("empty value round trip = %q ok=%v err=%v", val, ok, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := open(t, fs, Options{})
	if _, ok, err := db2.Get("empty"); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("empty value lost on reopen")
	}
}

func TestLargeValues(t *testing.T) {
	fs := wal.NewMemFS()
	db := open(t, fs, Options{SegmentBytes: 1 << 16})
	big := bytes.Repeat([]byte{0xAB}, 1<<15)
	for i := 0; i < 4; i++ {
		if err := db.Put(fmt.Sprintf("big%d", i), big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		val, ok, err := db.Get(fmt.Sprintf("big%d", i))
		if err != nil || !ok || !bytes.Equal(val, big) {
			t.Fatalf("big value %d corrupted (ok=%v err=%v)", i, ok, err)
		}
	}
}

func TestPostMergeRecordsSurviveSealAndReopen(t *testing.T) {
	// Regression: Merge used to write a hint for its final data file
	// while that file was still the active one. Records Put after the
	// merge landed in that same file, but its hint was never updated,
	// so once the file sealed via rotation a reopen trusted the stale
	// hint and silently dropped every post-merge record.
	fs := wal.NewMemFS()
	db := open(t, fs, Options{SegmentBytes: 128})
	for i := 0; i < 12; i++ {
		mustPut(t, db, fmt.Sprintf("k%d", i%4), fmt.Sprintf("gen%d", i))
	}
	if err := db.Merge(); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	mustPut(t, db, "post-merge-key", "survives")
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Seal the post-merge file by forcing rotations past it.
	for i := 0; i < 12; i++ {
		mustPut(t, db, fmt.Sprintf("fill%02d", i), "padpadpadpadpadpad")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := open(t, fs, Options{SegmentBytes: 128})
	mustGet(t, db2, "post-merge-key", "survives")
	mustGet(t, db2, "k0", "gen8")
	for i := 0; i < 12; i++ {
		mustGet(t, db2, fmt.Sprintf("fill%02d", i), "padpadpadpadpadpad")
	}
}
