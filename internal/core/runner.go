package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ring/internal/metrics"
	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/transport"
	"ring/internal/wal"
)

// RunnerGoroutines counts live runner event-loop goroutines
// process-wide, one per hosted node. With memgest-group sharding a
// process hosts one runner per (node, group) pair, so this gauge is
// how an operator sees the parallelism actually running — exposed as
// core.runner_goroutines via /debug/ringvars and `ringctl stats`.
var RunnerGoroutines metrics.Gauge

func init() {
	metrics.Default.Register("core.runner_goroutines", &RunnerGoroutines)
}

// Runner hosts one Node on a fabric: a single goroutine serializes
// incoming packets and timer ticks through the state machine, exactly
// like the paper's single-threaded servers.
type Runner struct {
	node  *Node
	ep    transport.Endpoint
	ticks time.Duration

	mu      sync.Mutex // guards node during Inspect
	start   time.Time
	stopped chan struct{}
	done    chan struct{}
	epOnce  sync.Once // ep.Close exactly once (halt and Stop both close)

	// depth reports the current inbox backlog; set once at start, read
	// by the queue-depth gauges at scrape time.
	depth func() int

	// Event-loop scratch (single-goroutine): the dispatch copy of the
	// node's output buffer and the per-destination coalescing group.
	// Reused across events so the steady-state send path does not
	// allocate beyond the owned payload buffers handed to the fabric.
	scratch []Out
	group   []proto.Message
}

// StartRunner registers the node's endpoint on the fabric and starts
// its event loop. tickEvery <= 0 selects 10ms.
//
//ring:wallclock the Runner is the deliberate real-time boundary hosting the event-driven node
func StartRunner(n *Node, fabric transport.Fabric, tickEvery time.Duration) (*Runner, error) {
	if tickEvery <= 0 {
		tickEvery = 10 * time.Millisecond
	}
	ep, err := fabric.Register(NodeAddr(n.ID()))
	if err != nil {
		return nil, err
	}
	r := &Runner{
		node:    n,
		ep:      ep,
		ticks:   tickEvery,
		start:   time.Now(),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cr, ok := ep.(transport.ChanReceiver); ok {
		// Fabric with a channel inbox (memnet): the event loop selects
		// on it directly — no forwarder goroutine, one less handoff per
		// packet.
		inbox := cr.RecvChan()
		r.depth = func() int { return len(inbox) }
		RunnerGoroutines.Add(1)
		go r.loop(inbox, cr.Closed())
	} else {
		packets := make(chan transport.Packet, 1024)
		r.depth = func() int { return len(packets) }
		go func() {
			for {
				p, err := ep.Recv()
				if err != nil {
					close(packets)
					return
				}
				select {
				case packets <- p:
				case <-r.stopped:
					return
				}
			}
		}()
		RunnerGoroutines.Add(1)
		go r.loop(packets, nil)
	}
	return r, nil
}

// InboxDepth returns the runner's current receive backlog — the
// instantaneous form of the InboxHighWater mark, summed per group by
// the queue-depth gauges.
func (r *Runner) InboxDepth() int {
	if r.depth == nil {
		return 0
	}
	return r.depth()
}

// loop is the node's event loop. packets either closes on shutdown
// (forwarder path) or stays open with epClosed signalling shutdown
// (ChanReceiver path); a nil epClosed never fires.
//
//ring:wallclock real-time ticker driving the node's virtual clock
func (r *Runner) loop(packets <-chan transport.Packet, epClosed <-chan struct{}) {
	defer close(r.done)
	defer RunnerGoroutines.Add(-1)
	ticker := time.NewTicker(r.ticks)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopped:
			return
		case <-epClosed:
			return
		case p, ok := <-packets:
			if !ok {
				return
			}
			if !r.drain(p, packets) {
				return
			}
		case <-ticker.C:
			if !r.dispatch(r.node.HandleTick) {
				return
			}
		}
	}
}

// maxDrain bounds how many queued packets one drain pass consumes, so
// a flooded node still flushes sends and honours Stop promptly.
const maxDrain = 64

// drain runs p plus any backlog already queued on packets through the
// state machine under a single lock, then flushes every resulting send
// in one coalesced pass. Processing the backlog per wakeup instead of
// per packet amortises lock and scheduler traffic, and lets outputs of
// different events destined for the same peer share a packet — e.g. a
// coordinator that finds several acks queued emits the commit fan-out
// and the client replies they unlock as single per-peer sends. It
// returns false once the packet channel has closed.
//
// SyncDurable runs under r.mu by design: the fsync must land before any
// of the batch's outputs escape the lock (crash-stop-before-outputs),
// and r.mu has no other contenders besides Inspect.
//
//ring:hotpath
//ring:wallclock converts wall time to the node's event clock
//ring:lockok deliberate hold-across-fsync, see above
func (r *Runner) drain(p transport.Packet, packets <-chan transport.Packet) bool {
	open := true
	r.mu.Lock()
	now := time.Since(r.start)
	r.scratch = r.scratch[:0]
	// The channel backlog plus the packet in hand is the inbox depth
	// this wakeup observed.
	r.node.Metrics.InboxHighWater.Observe(int64(len(packets)) + 1)
	for drained := 0; ; drained++ {
		// A packet carries one message or a TBatch of several; each is
		// run through the state machine in arrival order.
		_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
			msg, err := proto.Decode(enc)
			if err != nil {
				return nil // drop malformed messages
			}
			r.scratch = append(r.scratch, r.node.HandleMessage(now, p.From, msg)...)
			return nil
		})
		// Decode copied every field out, so the payload can be
		// recycled into the send-side buffer pool.
		transport.ReleaseBuf(p.Payload)
		if drained >= maxDrain {
			break
		}
		var more bool
		select {
		case p, more = <-packets:
			if !more {
				open = false
			}
		default:
		}
		if !more {
			break
		}
	}
	syncErr := r.node.SyncDurable()
	r.mu.Unlock()
	if syncErr != nil {
		// Durability lost: crash-stop before any of the batch's outputs
		// escape, so nothing acknowledged this batch can be un-durable.
		r.halt()
		return false
	}
	r.flush(r.scratch)
	return open
}

// dispatch runs one state-machine step under the lock and flushes the
// outputs outside it.
//
//ring:hotpath
//ring:wallclock converts wall time to the node's event clock
//ring:lockok deliberate hold-across-fsync, see drain
func (r *Runner) dispatch(f func(time.Duration) []Out) bool {
	r.mu.Lock()
	outs := f(time.Since(r.start))
	// Copy into the runner-owned scratch: the node reuses its output
	// buffer across calls, and sends must happen outside the lock.
	r.scratch = append(r.scratch[:0], outs...)
	syncErr := r.node.SyncDurable()
	r.mu.Unlock()
	if syncErr != nil {
		r.halt()
		return false
	}
	r.flush(r.scratch)
	return true
}

// flush coalesces one event's outputs by destination and transmits
// each group as a single packet: m parity updates or r replica
// appends fanning out to the same peer cost one Send, the equivalent
// of posting back-to-back verbs with a single doorbell. Message order
// per destination is preserved; entries are cleared afterwards so the
// scratch slice does not pin messages.
//
//ring:hotpath
func (r *Runner) flush(outs []Out) {
	for i := range outs {
		if outs[i].To == "" {
			continue // already coalesced into an earlier group
		}
		to := outs[i].To
		r.group = append(r.group[:0], outs[i].Msg)
		for j := i + 1; j < len(outs); j++ {
			if outs[j].To == to {
				r.group = append(r.group, outs[j].Msg)
				outs[j] = Out{}
			}
		}
		buf := proto.AppendBatch(transport.AcquireBuf(), r.group...)
		r.node.Metrics.MsgsOut.Add(uint64(len(r.group)))
		r.node.Metrics.PacketsOut.Inc()
		// Best-effort, like a datagram fabric: dead peers are the
		// failure detector's problem, not the sender's.
		_ = r.ep.Send(to, buf)
		outs[i] = Out{}
	}
	for i := range r.group {
		r.group[i] = nil
	}
}

// Inspect runs f with the node quiesced; for tests and stats scraping.
func (r *Runner) Inspect(f func(*Node)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(r.node)
}

// halt is the crash-stop path taken by the event loop itself when the
// node can no longer promise durability: the endpoint closes so the
// node vanishes from the fabric, exactly as if it had been killed.
func (r *Runner) halt() {
	r.epOnce.Do(func() { r.ep.Close() })
}

// Stop terminates the runner and unregisters the endpoint, then closes
// the durable store cleanly (flush + fsync) if one is attached. A
// stopped runner's node simply vanishes from the fabric — the exact
// failure model of the paper's "manually killing processes"
// experiments.
func (r *Runner) Stop() {
	r.stop(true)
}

// Kill terminates the runner WITHOUT closing the durable store — the
// in-process equivalent of kill -9: whatever the last fsync made
// durable stays on disk, everything after it is torn away.
func (r *Runner) Kill() {
	r.stop(false)
}

// stop shuts the event loop down. CloseDurable holds r.mu so a
// concurrent Inspect cannot observe a half-closed store; the event loop
// is already drained here.
//
//ring:lockok CloseDurable intentionally closes under r.mu, see above
func (r *Runner) stop(closeDurable bool) {
	select {
	case <-r.stopped:
	default:
		close(r.stopped)
	}
	r.epOnce.Do(func() { r.ep.Close() })
	<-r.done
	if closeDurable {
		r.mu.Lock()
		err := r.node.CloseDurable()
		r.mu.Unlock()
		_ = err // a node stopping anyway has nowhere to report it
	}
}

// Cluster is a convenience harness: n nodes on one fabric with a
// shared initial configuration.
type Cluster struct {
	Fabric *transport.MemFabric
	Cfg    *proto.Config
	Runs   map[proto.NodeID]*Runner
	opts   Options
	tick   time.Duration

	dataDir string
	durOpts replog.DurableOptions
}

// ClusterSpec describes a cluster to boot.
type ClusterSpec struct {
	// Shards (s), Redundant (d) and Spares (n) node counts; node IDs
	// are assigned 0..s+d+n-1 in role order.
	Shards, Redundant, Spares int
	// Memgests created at boot (IDs assigned 1..len in order; the
	// first becomes the default).
	Memgests []proto.Scheme
	Opts     Options
	// TickEvery is the runner tick period.
	TickEvery time.Duration
	// DataDir, when non-empty, gives every node a durable store rooted
	// at DataDir/node-<id> (directories created on demand). Killed nodes
	// can then come back through Cluster.Restart with their state.
	DataDir string
	// DurableOpts configures the durable stores (fsync policy etc.).
	DurableOpts replog.DurableOptions
}

// BootConfig builds the initial configuration for a spec.
func BootConfig(spec ClusterSpec) (*proto.Config, error) {
	if spec.Shards < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one shard")
	}
	cfg := &proto.Config{Epoch: 1, Leader: 0}
	id := proto.NodeID(0)
	for i := 0; i < spec.Shards; i++ {
		cfg.Coords = append(cfg.Coords, id)
		id++
	}
	for i := 0; i < spec.Redundant; i++ {
		cfg.Redundant = append(cfg.Redundant, id)
		id++
	}
	for i := 0; i < spec.Spares; i++ {
		cfg.Spares = append(cfg.Spares, id)
		id++
	}
	for i, sc := range spec.Memgests {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if sc.S != spec.Shards {
			return nil, fmt.Errorf("core: memgest %v does not match cluster shards %d", sc, spec.Shards)
		}
		cfg.Memgests = append(cfg.Memgests, proto.MemgestInfo{
			ID:        proto.MemgestID(i + 1),
			Scheme:    sc,
			Redundant: append([]proto.NodeID(nil), cfg.Redundant...),
		})
	}
	if len(cfg.Memgests) > 0 {
		cfg.Default = cfg.Memgests[0].ID
	}
	return cfg, nil
}

// StartCluster boots a full in-process cluster on a fresh memnet
// fabric.
func StartCluster(spec ClusterSpec) (*Cluster, error) {
	cfg, err := BootConfig(spec)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Fabric:  transport.NewMemFabric(0),
		Cfg:     cfg,
		Runs:    make(map[proto.NodeID]*Runner),
		opts:    spec.Opts,
		tick:    spec.TickEvery,
		dataDir: spec.DataDir,
		durOpts: spec.DurableOpts,
	}
	for _, id := range cfg.AllNodes() {
		n := New(id, cfg.Clone(), spec.Opts)
		if c.dataDir != "" {
			d, err := c.openDurable(id)
			if err != nil {
				c.Stop()
				return nil, err
			}
			n.SetDurable(d)
		}
		r, err := StartRunner(n, c.Fabric, spec.TickEvery)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Runs[id] = r
	}
	return c, nil
}

// NodeDataDir returns the data directory of one node of a durable
// cluster.
func (c *Cluster) NodeDataDir(id proto.NodeID) string {
	return filepath.Join(c.dataDir, fmt.Sprintf("node-%d", id))
}

func (c *Cluster) openDurable(id proto.NodeID) (*replog.Durable, error) {
	dir := c.NodeDataDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return replog.OpenDurable(wal.DirFS(dir), c.durOpts)
}

// Restart brings a killed node of a durable cluster back over its data
// directory: it replays the WAL, rebuilds its state up to the durable
// commit index, and rejoins quarantined — the leader re-admits it into
// its old roles and it delta-syncs the rest from the group.
func (c *Cluster) Restart(id proto.NodeID) error {
	if c.dataDir == "" {
		return fmt.Errorf("core: cluster has no data dir")
	}
	if _, ok := c.Runs[id]; ok {
		return fmt.Errorf("core: node %d still running", id)
	}
	d, err := c.openDurable(id)
	if err != nil {
		return err
	}
	n := NewRecovered(id, c.Cfg.Clone(), c.opts, d)
	r, err := StartRunner(n, c.Fabric, c.tick)
	if err != nil {
		return err
	}
	c.Runs[id] = r
	return nil
}

// Kill simulates a crash: the node's runner stops and its endpoint
// disappears from the fabric. The durable store (if any) is NOT closed
// cleanly — its data directory keeps exactly what the last fsync made
// durable, like kill -9.
func (c *Cluster) Kill(id proto.NodeID) {
	if r, ok := c.Runs[id]; ok {
		r.Kill()
		delete(c.Runs, id)
	}
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for id, r := range c.Runs {
		r.Stop()
		delete(c.Runs, id)
	}
}
