package core

import (
	"fmt"
	"sync"
	"time"

	"ring/internal/proto"
	"ring/internal/transport"
)

// Runner hosts one Node on a fabric: a single goroutine serializes
// incoming packets and timer ticks through the state machine, exactly
// like the paper's single-threaded servers.
type Runner struct {
	node  *Node
	ep    transport.Endpoint
	ticks time.Duration

	mu      sync.Mutex // guards node during Inspect
	start   time.Time
	stopped chan struct{}
	done    chan struct{}
}

// StartRunner registers the node's endpoint on the fabric and starts
// its event loop. tickEvery <= 0 selects 10ms.
func StartRunner(n *Node, fabric transport.Fabric, tickEvery time.Duration) (*Runner, error) {
	if tickEvery <= 0 {
		tickEvery = 10 * time.Millisecond
	}
	ep, err := fabric.Register(NodeAddr(n.ID()))
	if err != nil {
		return nil, err
	}
	r := &Runner{
		node:    n,
		ep:      ep,
		ticks:   tickEvery,
		start:   time.Now(),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	packets := make(chan transport.Packet, 1024)
	go func() {
		for {
			p, err := ep.Recv()
			if err != nil {
				close(packets)
				return
			}
			select {
			case packets <- p:
			case <-r.stopped:
				return
			}
		}
	}()
	go r.loop(packets)
	return r, nil
}

func (r *Runner) loop(packets chan transport.Packet) {
	defer close(r.done)
	ticker := time.NewTicker(r.ticks)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopped:
			return
		case p, ok := <-packets:
			if !ok {
				return
			}
			msg, err := proto.Decode(p.Payload)
			if err != nil {
				continue // drop malformed packets
			}
			r.dispatch(func(now time.Duration) []Out {
				return r.node.HandleMessage(now, p.From, msg)
			})
		case <-ticker.C:
			r.dispatch(r.node.HandleTick)
		}
	}
}

func (r *Runner) dispatch(f func(time.Duration) []Out) {
	r.mu.Lock()
	outs := f(time.Since(r.start))
	// Copy: the node reuses its output buffer across calls.
	toSend := make([]Out, len(outs))
	copy(toSend, outs)
	r.mu.Unlock()
	for _, o := range toSend {
		// Best-effort, like a datagram fabric: dead peers are the
		// failure detector's problem, not the sender's.
		_ = r.ep.Send(o.To, proto.Encode(o.Msg))
	}
}

// Inspect runs f with the node quiesced; for tests and stats scraping.
func (r *Runner) Inspect(f func(*Node)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(r.node)
}

// Stop terminates the runner and unregisters the endpoint. A stopped
// runner's node simply vanishes from the fabric — the exact failure
// model of the paper's "manually killing processes" experiments.
func (r *Runner) Stop() {
	select {
	case <-r.stopped:
		return
	default:
	}
	close(r.stopped)
	r.ep.Close()
	<-r.done
}

// Cluster is a convenience harness: n nodes on one fabric with a
// shared initial configuration.
type Cluster struct {
	Fabric *transport.MemFabric
	Cfg    *proto.Config
	Runs   map[proto.NodeID]*Runner
	opts   Options
	tick   time.Duration
}

// ClusterSpec describes a cluster to boot.
type ClusterSpec struct {
	// Shards (s), Redundant (d) and Spares (n) node counts; node IDs
	// are assigned 0..s+d+n-1 in role order.
	Shards, Redundant, Spares int
	// Memgests created at boot (IDs assigned 1..len in order; the
	// first becomes the default).
	Memgests []proto.Scheme
	Opts     Options
	// TickEvery is the runner tick period.
	TickEvery time.Duration
}

// BootConfig builds the initial configuration for a spec.
func BootConfig(spec ClusterSpec) (*proto.Config, error) {
	if spec.Shards < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one shard")
	}
	cfg := &proto.Config{Epoch: 1, Leader: 0}
	id := proto.NodeID(0)
	for i := 0; i < spec.Shards; i++ {
		cfg.Coords = append(cfg.Coords, id)
		id++
	}
	for i := 0; i < spec.Redundant; i++ {
		cfg.Redundant = append(cfg.Redundant, id)
		id++
	}
	for i := 0; i < spec.Spares; i++ {
		cfg.Spares = append(cfg.Spares, id)
		id++
	}
	for i, sc := range spec.Memgests {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if sc.S != spec.Shards {
			return nil, fmt.Errorf("core: memgest %v does not match cluster shards %d", sc, spec.Shards)
		}
		cfg.Memgests = append(cfg.Memgests, proto.MemgestInfo{
			ID:        proto.MemgestID(i + 1),
			Scheme:    sc,
			Redundant: append([]proto.NodeID(nil), cfg.Redundant...),
		})
	}
	if len(cfg.Memgests) > 0 {
		cfg.Default = cfg.Memgests[0].ID
	}
	return cfg, nil
}

// StartCluster boots a full in-process cluster on a fresh memnet
// fabric.
func StartCluster(spec ClusterSpec) (*Cluster, error) {
	cfg, err := BootConfig(spec)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Fabric: transport.NewMemFabric(0),
		Cfg:    cfg,
		Runs:   make(map[proto.NodeID]*Runner),
		opts:   spec.Opts,
		tick:   spec.TickEvery,
	}
	for _, id := range cfg.AllNodes() {
		n := New(id, cfg.Clone(), spec.Opts)
		r, err := StartRunner(n, c.Fabric, spec.TickEvery)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Runs[id] = r
	}
	return c, nil
}

// Kill simulates a crash: the node's runner stops and its endpoint
// disappears from the fabric.
func (c *Cluster) Kill(id proto.NodeID) {
	if r, ok := c.Runs[id]; ok {
		r.Stop()
		delete(c.Runs, id)
	}
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for id, r := range c.Runs {
		r.Stop()
		delete(c.Runs, id)
	}
}
