package core

import (
	"ring/internal/proto"
	"ring/internal/store"
)

// rmetaFor returns (creating on demand) the redundancy-side metadata
// table for one shard of a memgest. Creation on demand tolerates
// config installation races between coordinator and redundancy nodes.
func (st *mgState) rmetaFor(shard uint32) *store.MetaTable {
	t, ok := st.rmeta[shard]
	if !ok {
		t = store.NewMetaTable()
		st.rmeta[shard] = t
	}
	return t
}

// rseqFor returns the seq -> entry-key index of a shard, used to flip
// committed flags when RepCommit arrives (which carries only the seq).
func (st *mgState) rseqFor(shard uint32) map[proto.Seq]store.EntryKey {
	if st.rseq == nil {
		st.rseq = make(map[uint32]map[proto.Seq]store.EntryKey)
	}
	m, ok := st.rseq[shard]
	if !ok {
		m = make(map[proto.Seq]store.EntryKey)
		st.rseq[shard] = m
	}
	return m
}

// handleRepAppend applies a replicated-log entry on a replica of a
// Rep memgest: store the (still uncommitted) metadata record and the
// value, then acknowledge.
//
//ring:handler persist
func (n *Node) handleRepAppend(from string, m *proto.RepAppend) {
	st := n.mgFor(m.Memgest)
	if st == nil {
		return
	}
	rt := st.rmetaFor(m.Shard)
	e := &store.Entry{Rec: m.Rec, Value: m.Value, Seq: m.Seq}
	rt.Put(e)
	st.rseqFor(m.Shard)[m.Seq] = store.EntryKey{Key: m.Rec.Key, Version: m.Rec.Version}
	n.persistAppend(st, m.Shard, e)
	n.send(from, &proto.RepAck{Memgest: m.Memgest, Shard: m.Shard, Seq: m.Seq})
}

// handleParityUpdate applies a coefficient-multiplied delta to this
// parity node's region and installs the metadata record in its replica
// of the shard's metadata hashtable.
//
//ring:handler persist
func (n *Node) handleParityUpdate(from string, m *proto.ParityUpdate) {
	st := n.mgFor(m.Memgest)
	if st == nil || st.parity == nil {
		return
	}
	if len(m.Delta) > 0 {
		st.parity.ApplyDelta(int(m.StripeOff), int(m.Off), m.Delta)
		n.Stats.BytesParityXor += uint64(len(m.Delta))
	}
	rt := st.rmetaFor(m.Shard)
	e := &store.Entry{Rec: m.Rec, Seq: m.Seq}
	rt.Put(e)
	st.rseqFor(m.Shard)[m.Seq] = store.EntryKey{Key: m.Rec.Key, Version: m.Rec.Version}
	n.persistAppend(st, m.Shard, e)
	n.send(from, &proto.ParityAck{Memgest: m.Memgest, Shard: m.Shard, Seq: m.Seq})
}

// handleRepCommit flips the committed flag on the redundancy copy of a
// log entry.
func (n *Node) handleRepCommit(_ string, m *proto.RepCommit) {
	st := n.mgFor(m.Memgest)
	if st == nil {
		return
	}
	seqIdx := st.rseqFor(m.Shard)
	ek, ok := seqIdx[m.Seq]
	if !ok {
		return
	}
	delete(seqIdx, m.Seq)
	if e := st.rmetaFor(m.Shard).Get(ek.Key, ek.Version); e != nil {
		e.Rec.Committed = true
		n.persistCommit(st, m.Shard, e)
	}
}

// handlePurge removes a superseded version from the redundancy copy.
// Parity bytes are left in place: the freed extent keeps its contents
// until reused, and reuse deltas are computed against those contents,
// so the stripe invariant holds throughout.
func (n *Node) handlePurge(_ string, m *proto.Purge) {
	st := n.mgFor(m.Memgest)
	if st == nil {
		return
	}
	var seq proto.Seq
	if e := st.rmetaFor(m.Shard).Get(m.Key, m.Version); e != nil {
		delete(st.rseqFor(m.Shard), e.Seq)
		seq = e.Seq
	}
	st.rmetaFor(m.Shard).Delete(m.Key, m.Version)
	// Persist even when the in-memory copy is already gone: the durable
	// store may still hold the record from a previous life.
	n.persistPurge(m.Memgest, m.Shard, m.Key, m.Version, seq)
}

// handleMetaFetch serves a node recovering the metadata hashtable of
// one memgest shard. Coordinators answer from their authoritative
// table; redundancy nodes answer from their replica.
func (n *Node) handleMetaFetch(from string, m *proto.MetaFetch) {
	st := n.mgFor(m.Memgest)
	if st == nil {
		n.send(from, &proto.MetaFetchReply{Req: m.Req, Status: proto.StNoMemgest, Memgest: m.Memgest, Shard: m.Shard})
		return
	}
	var recs []proto.MetaRecord
	var seq proto.Seq
	if cs := st.coord[m.Shard]; cs != nil {
		recs = cs.meta.RecordsSince(m.Since)
		seq = cs.meta.MaxSeq()
	} else if rt, ok := st.rmeta[m.Shard]; ok {
		recs = rt.RecordsSince(m.Since)
		seq = rt.MaxSeq()
	} else {
		n.send(from, &proto.MetaFetchReply{Req: m.Req, Status: proto.StNotFound, Memgest: m.Memgest, Shard: m.Shard})
		return
	}
	n.send(from, &proto.MetaFetchReply{
		Req: m.Req, Status: proto.StOK, Memgest: m.Memgest, Shard: m.Shard, Seq: seq, Recs: recs,
	})
}

// handleDataFetch serves the value of (key, version) from a replica's
// copy (Rep recovery: "it will request a copy of the requested data
// from any available replica").
func (n *Node) handleDataFetch(from string, m *proto.DataFetch) {
	st := n.mgFor(m.Memgest)
	if st == nil {
		n.send(from, &proto.DataFetchReply{Req: m.Req, Status: proto.StNoMemgest})
		return
	}
	var e *store.Entry
	if cs := st.coord[m.Shard]; cs != nil {
		e = cs.meta.Get(m.Key, m.Version)
	}
	if e == nil {
		if rt, ok := st.rmeta[m.Shard]; ok {
			e = rt.Get(m.Key, m.Version)
		}
	}
	if e == nil || (e.Value == nil && e.Rec.Length > 0) {
		n.send(from, &proto.DataFetchReply{Req: m.Req, Status: proto.StNotFound})
		return
	}
	n.send(from, &proto.DataFetchReply{Req: m.Req, Status: proto.StOK, Value: e.Value})
}

// handleBlockFetch serves the raw contents of one SRS logical block
// from the coordinator owning it (used by parity decode).
func (n *Node) handleBlockFetch(from string, m *proto.BlockFetch) {
	st := n.mgFor(m.Memgest)
	if st == nil || st.layout == nil {
		n.send(from, &proto.BlockFetchReply{Req: m.Req, Status: proto.StNoMemgest, Block: m.Block})
		return
	}
	shard := uint32(st.layout.DataNodeOf(int(m.Block)))
	cs := st.coord[shard]
	if cs == nil || !cs.blockOK[m.Block] {
		n.send(from, &proto.BlockFetchReply{Req: m.Req, Status: proto.StNotFound, Block: m.Block})
		return
	}
	n.send(from, &proto.BlockFetchReply{
		Req: m.Req, Status: proto.StOK, Block: m.Block,
		Data: append([]byte(nil), cs.heap.BlockData(m.Block)...),
	})
}
