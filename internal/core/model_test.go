package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ring/internal/proto"
	"ring/internal/store"
)

// TestRandomOpsAgainstModel runs long random operation sequences
// through the deterministic harness and checks every reply against a
// simple sequential model (a map), then verifies the storage
// invariants: the SRS parity stripe equation, volatile-index /
// metadata consistency, and version GC.
func TestRandomOpsAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomOps(t, seed, 400, false)
		})
	}
}

// TestRandomOpsWithFailover injects a coordinator crash in the middle
// of a random workload restricted to reliable schemes; after recovery
// the model must still agree.
func TestRandomOpsWithFailover(t *testing.T) {
	for seed := int64(10); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomOps(t, seed, 250, true)
		})
	}
}

type modelVal struct {
	data []byte
	ver  proto.Version
}

func runRandomOps(t *testing.T, seed int64, ops int, failover bool) {
	rng := rand.New(rand.NewSource(seed))
	h := newHarness(t, figure3Spec())
	model := make(map[string]modelVal)

	memgests := []proto.MemgestID{mgREP1, mgREP2, mgREP3, mgREP4, mgSRS21, mgSRS31, mgSRS32}
	if failover {
		// Restrict to schemes that survive a single node failure.
		memgests = []proto.MemgestID{mgREP2, mgREP3, mgREP4, mgSRS21, mgSRS31, mgSRS32}
	}
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("rk-%02d", i)
	}

	killed := false
	for i := 0; i < ops; i++ {
		if failover && !killed && i == ops/2 {
			// Crash a non-leader coordinator mid-workload and let the
			// cluster reconfigure and recover.
			h.kill(1)
			for tick := 0; tick < 80; tick++ {
				h.tick(10 * time.Millisecond)
			}
			killed = true
		}
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put
			mg := memgests[rng.Intn(len(memgests))]
			val := make([]byte, 1+rng.Intn(600))
			rng.Read(val)
			r := h.put(key, val, mg)
			if r.Status != proto.StOK {
				t.Fatalf("op %d: put %s into %d: %v", i, key, mg, r.Status)
			}
			m := model[key]
			if r.Version <= m.ver {
				t.Fatalf("op %d: version %d not above %d", i, r.Version, m.ver)
			}
			model[key] = modelVal{data: val, ver: r.Version}
		case 4, 5, 6: // get
			r := h.get(key)
			m, exists := model[key]
			if !exists {
				if r.Status != proto.StNotFound {
					t.Fatalf("op %d: get of absent %s: %v", i, key, r.Status)
				}
				continue
			}
			if r.Status != proto.StOK {
				t.Fatalf("op %d: get %s: %v", i, key, r.Status)
			}
			if r.Version != m.ver || !bytes.Equal(r.Value, m.data) {
				t.Fatalf("op %d: get %s returned v%d (%d bytes), model has v%d (%d bytes)",
					i, key, r.Version, len(r.Value), m.ver, len(m.data))
			}
		case 7, 8: // move
			mg := memgests[rng.Intn(len(memgests))]
			r := h.move(key, mg)
			m, exists := model[key]
			if !exists {
				if r.Status != proto.StNotFound {
					t.Fatalf("op %d: move of absent %s: %v", i, key, r.Status)
				}
				continue
			}
			if r.Status != proto.StOK {
				t.Fatalf("op %d: move %s to %d: %v", i, key, mg, r.Status)
			}
			if r.Version < m.ver {
				t.Fatalf("op %d: move decreased version", i)
			}
			model[key] = modelVal{data: m.data, ver: r.Version}
		case 9: // delete
			r := h.del(key)
			if _, exists := model[key]; !exists {
				if r.Status != proto.StNotFound {
					t.Fatalf("op %d: delete of absent %s: %v", i, key, r.Status)
				}
				continue
			}
			if r.Status != proto.StOK {
				t.Fatalf("op %d: delete %s: %v", i, key, r.Status)
			}
			delete(model, key)
		}
	}

	// Final full read-back.
	for _, key := range keys {
		r := h.get(key)
		if m, exists := model[key]; exists {
			if r.Status != proto.StOK || !bytes.Equal(r.Value, m.data) {
				t.Fatalf("final get %s mismatch: %v", key, r.Status)
			}
		} else if r.Status != proto.StNotFound {
			t.Fatalf("final get of absent %s: %v", key, r.Status)
		}
	}
	if !failover {
		h.checkParityInvariant()
	}
	h.checkIndexConsistency()
}

// checkIndexConsistency verifies, for every live coordinator, that the
// volatile hashtable and the memgest metadata hashtables agree: every
// index entry resolves to a metadata entry and vice versa for
// committed data.
func (h *harness) checkIndexConsistency() {
	h.t.Helper()
	for id, n := range h.nodes {
		if h.dead[id] {
			continue
		}
		for shard, vol := range n.vol {
			if !n.coordinates(shard) {
				continue
			}
			// Every (key, version) in a metadata table appears in the
			// volatile index.
			for mgID, st := range n.mg {
				cs := st.coord[shard]
				if cs == nil {
					continue
				}
				cs.meta.Range(func(e *store.Entry) bool {
					refs := vol.All(e.Rec.Key)
					found := false
					for _, ref := range refs {
						if ref.Version == e.Rec.Version && ref.Memgest == mgID {
							found = true
						}
					}
					if !found {
						h.t.Fatalf("node %d shard %d: metadata entry (%s,v%d,mg%d) missing from volatile index",
							id, shard, e.Rec.Key, e.Rec.Version, mgID)
					}
					return true
				})
			}
		}
	}
}
