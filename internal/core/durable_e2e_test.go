package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/store"
	"ring/internal/transport"
)

// durClient is a minimal request/reply client for durable cluster
// tests: it sends one message and waits for the matching reply.
type durClient struct {
	t  *testing.T
	ep transport.Endpoint
}

func newDurClient(t *testing.T, cl *Cluster) *durClient {
	t.Helper()
	ep, err := cl.Fabric.Register(fmt.Sprintf("client/%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return &durClient{t: t, ep: ep}
}

// rpc sends msg to addr and returns the first reply whose concrete
// type the caller's match func accepts.
func (c *durClient) rpc(addr string, msg proto.Message, match func(proto.Message) bool) proto.Message {
	c.t.Helper()
	if err := c.ep.Send(addr, proto.Encode(msg)); err != nil {
		c.t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		p, err := c.ep.Recv()
		if err != nil {
			c.t.Fatal(err)
		}
		var got proto.Message
		_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
			if m, err := proto.Decode(enc); err == nil && got == nil && match(m) {
				got = m
			}
			return nil
		})
		if got != nil {
			return got
		}
	}
	c.t.Fatalf("rpc to %s timed out waiting for reply to %#v", addr, msg)
	return nil
}

func (c *durClient) put(addr string, req proto.ReqID, key string, value []byte) {
	c.t.Helper()
	m := c.rpc(addr, &proto.Put{Req: req, Key: key, Value: value}, func(m proto.Message) bool {
		r, ok := m.(*proto.PutReply)
		return ok && r.Req == req
	})
	if r := m.(*proto.PutReply); r.Status != proto.StOK {
		c.t.Fatalf("put %q: %v", key, r.Status)
	}
}

// get retries through StRetry (node rejoining or recovering) until a
// definitive answer arrives.
func (c *durClient) get(addr string, req proto.ReqID, key string) (proto.Status, []byte) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := c.rpc(addr, &proto.Get{Req: req, Key: key}, func(m proto.Message) bool {
			r, ok := m.(*proto.GetReply)
			return ok && r.Req == req
		})
		r := m.(*proto.GetReply)
		if r.Status != proto.StRetry || time.Now().After(deadline) {
			return r.Status, r.Value
		}
		req += 1000
		time.Sleep(5 * time.Millisecond) //ring:sleepok retry pacing against a live TCP cluster, bounded by the deadline
	}
}

// TestClusterKillRestartRecovers is the end-to-end durability test: a
// coordinator is killed mid-life (kill -9: no clean close, the data
// directory keeps only what fsync made durable), restarted over its
// data directory, re-admitted into its old roles by the leader, and
// must then serve every value it had acknowledged before the crash.
func TestClusterKillRestartRecovers(t *testing.T) {
	spec := ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 1,
		Memgests: []proto.Scheme{proto.Rep(3, 3)},
		// Failure detection slower than the test: the kill/restart cycle
		// races no role substitution, so the durable rejoin path (keep
		// roles, delta-sync) is the one exercised.
		Opts:        Options{HeartbeatEvery: 20 * time.Millisecond, FailAfter: 10 * time.Minute},
		TickEvery:   2 * time.Millisecond,
		DataDir:     t.TempDir(),
		DurableOpts: replog.DurableOptions{Policy: replog.FsyncAlways},
	}
	cl, err := StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := newDurClient(t, cl)

	// Pick a victim coordinator that is not the leader, and write a
	// handful of keys it owns.
	var victim proto.NodeID = proto.NilNode
	var keys []string
	for i := 0; len(keys) < 5 && i < 1000; i++ {
		key := fmt.Sprintf("dur-key-%d", i)
		coord := cl.Cfg.CoordinatorOf(store.KeyHash(key))
		if victim == proto.NilNode && coord != cl.Cfg.Leader {
			victim = coord
		}
		if coord == victim {
			keys = append(keys, key)
		}
	}
	if victim == proto.NilNode || len(keys) < 5 {
		t.Fatalf("could not find a non-leader coordinator with 5 keys")
	}
	addr := NodeAddr(victim)
	want := make(map[string][]byte)
	for i, key := range keys {
		val := []byte(fmt.Sprintf("value-of-%s", key))
		c.put(addr, proto.ReqID(i+1), key, val)
		want[key] = val
	}

	// Crash and restart over the same data directory.
	cl.Kill(victim)
	if err := cl.Restart(victim); err != nil {
		t.Fatal(err)
	}

	for i, key := range keys {
		st, val := c.get(addr, proto.ReqID(100+i), key)
		if st != proto.StOK {
			t.Fatalf("get %q after restart: %v", key, st)
		}
		if !bytes.Equal(val, want[key]) {
			t.Fatalf("get %q after restart: value %q, want %q", key, val, want[key])
		}
	}

	// The recovered node must have come back through the durable rejoin
	// path — holding its shard state, not as a wiped spare.
	cl.Runs[victim].Inspect(func(n *Node) {
		if n.Rejoining() {
			t.Error("recovered node still quarantined after serving reads")
		}
		if !n.HasDurable() {
			t.Error("recovered node lost its durable store")
		}
	})
}

// TestClusterRestartAfterCleanStop checks the clean-shutdown half: a
// Stop flushes and closes the WAL, and a restart over the directory
// recovers everything including writes never group-committed by an
// interval fsync.
func TestClusterRestartAfterCleanStop(t *testing.T) {
	spec := ClusterSpec{
		Shards: 3, Redundant: 2,
		Memgests:    []proto.Scheme{proto.Rep(3, 3)},
		Opts:        Options{HeartbeatEvery: 20 * time.Millisecond, FailAfter: 10 * time.Minute},
		TickEvery:   2 * time.Millisecond,
		DataDir:     t.TempDir(),
		DurableOpts: replog.DurableOptions{Policy: replog.FsyncInterval, Interval: time.Hour},
	}
	cl, err := StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := newDurClient(t, cl)

	key := "clean-stop-key"
	victim := cl.Cfg.CoordinatorOf(store.KeyHash(key))
	if victim == cl.Cfg.Leader {
		key = "clean-stop-key-b"
		victim = cl.Cfg.CoordinatorOf(store.KeyHash(key))
	}
	if victim == cl.Cfg.Leader {
		t.Skip("both probe keys hash to the leader's shard")
	}
	addr := NodeAddr(victim)
	c.put(addr, 1, key, []byte("survives-clean-stop"))

	// Stop (clean close: flush + fsync even though the interval policy
	// never synced) and restart.
	if r, ok := cl.Runs[victim]; ok {
		r.Stop()
		delete(cl.Runs, victim)
	}
	if err := cl.Restart(victim); err != nil {
		t.Fatal(err)
	}

	st, val := c.get(addr, 2, key)
	if st != proto.StOK {
		t.Fatalf("get after clean stop + restart: %v", st)
	}
	if string(val) != "survives-clean-stop" {
		t.Fatalf("get after clean stop + restart: %q", val)
	}
}
