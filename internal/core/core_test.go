package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ring/internal/proto"
	"ring/internal/store"
)

// harness is a deterministic synchronous router over node state
// machines: messages are delivered FIFO with no latency, time advances
// only via Tick, and killed nodes silently drop traffic — a miniature
// of the discrete-event simulator for white-box protocol tests.
type harness struct {
	t     *testing.T
	nodes map[proto.NodeID]*Node
	dead  map[proto.NodeID]bool
	queue []routedMsg
	// client inboxes, keyed by address.
	clientIn map[string][]proto.Message
	now      time.Duration
}

type routedMsg struct {
	from, to string
	msg      proto.Message
}

func newHarness(t *testing.T, spec ClusterSpec) *harness {
	cfg, err := BootConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:        t,
		nodes:    make(map[proto.NodeID]*Node),
		dead:     make(map[proto.NodeID]bool),
		clientIn: make(map[string][]proto.Message),
	}
	for _, id := range cfg.AllNodes() {
		h.nodes[id] = New(id, cfg.Clone(), spec.Opts)
	}
	return h
}

// figure3Spec is the paper's 5-node deployment: 3 coordinators, 2
// redundant nodes, and the 7 memgests of Figure 3, plus 2 spares for
// failover tests.
func figure3Spec() ClusterSpec {
	return ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 2,
		Memgests: []proto.Scheme{
			proto.Rep(1, 3),    // 1 REP1 (default)
			proto.Rep(2, 3),    // 2
			proto.Rep(3, 3),    // 3
			proto.Rep(4, 3),    // 4
			proto.SRS(2, 1, 3), // 5
			proto.SRS(3, 1, 3), // 6
			proto.SRS(3, 2, 3), // 7
		},
		Opts: Options{BlockSize: 4096, HeartbeatEvery: 10 * time.Millisecond, FailAfter: 50 * time.Millisecond},
	}
}

const (
	mgREP1  proto.MemgestID = 1
	mgREP2  proto.MemgestID = 2
	mgREP3  proto.MemgestID = 3
	mgREP4  proto.MemgestID = 4
	mgSRS21 proto.MemgestID = 5
	mgSRS31 proto.MemgestID = 6
	mgSRS32 proto.MemgestID = 7
)

// sendFrom injects a message from a client address to a node.
func (h *harness) send(fromClient string, to proto.NodeID, msg proto.Message) {
	h.queue = append(h.queue, routedMsg{from: fromClient, to: NodeAddr(to), msg: msg})
}

// run delivers queued messages until quiescent.
func (h *harness) run() {
	for guard := 0; len(h.queue) > 0; guard++ {
		if guard > 1_000_000 {
			h.t.Fatal("harness: message storm, no quiescence")
		}
		m := h.queue[0]
		h.queue = h.queue[1:]
		id, ok := parseNodeAddr(m.to)
		if !ok {
			h.clientIn[m.to] = append(h.clientIn[m.to], m.msg)
			continue
		}
		if h.dead[id] {
			continue
		}
		n := h.nodes[id]
		if n == nil {
			continue
		}
		outs := n.HandleMessage(h.now, m.from, m.msg)
		for _, o := range outs {
			h.queue = append(h.queue, routedMsg{from: m.to, to: o.To, msg: o.Msg})
		}
	}
}

// tickUntil advances virtual time in steps of d until cond holds,
// giving up after max steps. Tests assert on the protocol state they
// actually need instead of hard-coding tick counts tuned to one
// heartbeat configuration — the counts silently break when
// HeartbeatEvery or FailAfter change.
func (h *harness) tickUntil(d time.Duration, max int, cond func() bool) bool {
	for i := 0; i < max; i++ {
		if cond() {
			return true
		}
		h.tick(d)
	}
	return cond()
}

// recovered reports whether a node finished recovery completely:
// serving, with the background block/value queue drained.
func (h *harness) recovered(id proto.NodeID) bool {
	n := h.nodes[id]
	return n.serving && len(n.bgQueue) == 0 && n.bgInflight == 0
}

// tick advances virtual time and fires every node's timer.
func (h *harness) tick(d time.Duration) {
	h.now += d
	for id, n := range h.nodes {
		if h.dead[id] {
			continue
		}
		outs := n.HandleTick(h.now)
		for _, o := range outs {
			h.queue = append(h.queue, routedMsg{from: NodeAddr(id), to: o.To, msg: o.Msg})
		}
	}
	h.run()
}

// kill marks a node crashed.
func (h *harness) kill(id proto.NodeID) { h.dead[id] = true }

// coordinatorOf returns the live node coordinating key.
func (h *harness) coordinatorOf(key string) (*Node, proto.NodeID) {
	// Use any live node's config (highest epoch wins).
	var cfg *proto.Config
	for id, n := range h.nodes {
		if h.dead[id] {
			continue
		}
		if cfg == nil || n.cfg.Epoch > cfg.Epoch {
			cfg = n.cfg
		}
	}
	id := cfg.CoordinatorOf(store.KeyHash(key))
	return h.nodes[id], id
}

// lastReply pops the most recent reply delivered to a client address.
func (h *harness) lastReply(client string) proto.Message {
	msgs := h.clientIn[client]
	if len(msgs) == 0 {
		h.t.Fatalf("no reply for %s", client)
	}
	m := msgs[len(msgs)-1]
	h.clientIn[client] = msgs[:len(msgs)-1]
	return m
}

func (h *harness) replies(client string) []proto.Message { return h.clientIn[client] }

// put is a synchronous helper returning the reply.
func (h *harness) put(key string, value []byte, mg proto.MemgestID) *proto.PutReply {
	_, id := h.coordinatorOf(key)
	h.send("client/t", id, &proto.Put{Req: 1, Key: key, Value: value, Memgest: mg})
	h.run()
	r, ok := h.lastReply("client/t").(*proto.PutReply)
	if !ok {
		h.t.Fatalf("put %q: wrong reply type", key)
	}
	return r
}

func (h *harness) get(key string) *proto.GetReply {
	_, id := h.coordinatorOf(key)
	h.send("client/t", id, &proto.Get{Req: 2, Key: key})
	h.run()
	r, ok := h.lastReply("client/t").(*proto.GetReply)
	if !ok {
		h.t.Fatalf("get %q: wrong reply type", key)
	}
	return r
}

func (h *harness) move(key string, mg proto.MemgestID) *proto.MoveReply {
	_, id := h.coordinatorOf(key)
	h.send("client/t", id, &proto.Move{Req: 3, Key: key, Memgest: mg})
	h.run()
	r, ok := h.lastReply("client/t").(*proto.MoveReply)
	if !ok {
		h.t.Fatalf("move %q: wrong reply type", key)
	}
	return r
}

func (h *harness) del(key string) *proto.DeleteReply {
	_, id := h.coordinatorOf(key)
	h.send("client/t", id, &proto.Delete{Req: 4, Key: key})
	h.run()
	r, ok := h.lastReply("client/t").(*proto.DeleteReply)
	if !ok {
		h.t.Fatalf("delete %q: wrong reply type", key)
	}
	return r
}

// checkParityInvariant verifies that for every SRS memgest, re-encoding
// the coordinators' primary blocks reproduces exactly the parity nodes'
// regions — the core stripe invariant of the system.
func (h *harness) checkParityInvariant() {
	h.t.Helper()
	var cfg *proto.Config
	for id, n := range h.nodes {
		if !h.dead[id] {
			cfg = n.cfg
			break
		}
	}
	for _, mi := range cfg.Memgests {
		if mi.Scheme.Kind != proto.SchemeSRS {
			continue
		}
		var layout = h.nodes[cfg.Coords[0]].mg[mi.ID].layout
		data := make([][]byte, layout.L)
		for b := 0; b < layout.L; b++ {
			owner := cfg.Coords[layout.DataNodeOf(b)]
			if h.dead[owner] {
				return // cannot verify with dead owners
			}
			cs := h.nodes[owner].mg[mi.ID].coord[uint32(layout.DataNodeOf(b))]
			data[b] = cs.heap.BlockData(uint32(b))
		}
		parity, err := layout.EncodeStretched(data)
		if err != nil {
			h.t.Fatal(err)
		}
		for r, pid := range mi.Redundant[:mi.Scheme.M] {
			if h.dead[pid] {
				continue
			}
			region := h.nodes[pid].mg[mi.ID].parity
			for t := 0; t < layout.Stripes(); t++ {
				if !bytes.Equal(region.Block(t), parity[r][t]) {
					h.t.Fatalf("%s: parity node %d stripe %d diverged from encode of data", mi.Scheme, pid, t)
				}
			}
		}
	}
}

func TestBootConfig(t *testing.T) {
	cfg, err := BootConfig(figure3Spec())
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Coords) != 3 || len(cfg.Redundant) != 2 || len(cfg.Spares) != 2 {
		t.Fatalf("role counts wrong: %+v", cfg)
	}
	if len(cfg.Memgests) != 7 || cfg.Default != 1 {
		t.Fatalf("memgests wrong: %+v", cfg.Memgests)
	}
	if _, err := BootConfig(ClusterSpec{Shards: 0}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := BootConfig(ClusterSpec{Shards: 3, Memgests: []proto.Scheme{proto.Rep(2, 4)}}); err == nil {
		t.Fatal("mismatched s accepted")
	}
}

func TestReplicaSet(t *testing.T) {
	cfg, _ := BootConfig(figure3Spec())
	rep4 := cfg.Memgest(mgREP4)
	rs := replicaSet(cfg, rep4, 0)
	if len(rs) != 3 {
		t.Fatalf("Rep(4,3) shard 0 replicas = %v", rs)
	}
	// Redundant nodes 3,4 first, then the next coordinator.
	if rs[0] != 3 || rs[1] != 4 || rs[2] != 1 {
		t.Fatalf("replica order = %v, want [3 4 1]", rs)
	}
	rep1 := cfg.Memgest(mgREP1)
	if got := replicaSet(cfg, rep1, 0); len(got) != 0 {
		t.Fatalf("Rep(1) has replicas: %v", got)
	}
}

func TestQuorumAcks(t *testing.T) {
	cases := []struct {
		sc   proto.Scheme
		want int
	}{
		{proto.Rep(1, 3), 0},
		{proto.Rep(2, 3), 1},
		{proto.Rep(3, 3), 1}, // majority of 3 = 2, minus self
		{proto.Rep(4, 3), 2},
		{proto.Rep(5, 3), 2},
		{proto.SRS(2, 1, 3), 1},
		{proto.SRS(3, 2, 3), 2},
	}
	n := New(0, &proto.Config{Epoch: 1, Coords: []proto.NodeID{0}}, Options{})
	for _, c := range cases {
		if got := n.quorumAcks(c.sc); got != c.want {
			t.Errorf("quorumAcks(%v) = %d, want %d", c.sc, got, c.want)
		}
	}
	// Synchronous replication needs every copy.
	ns := New(0, &proto.Config{Epoch: 1, Coords: []proto.NodeID{0}}, Options{SyncReplication: true})
	if got := ns.quorumAcks(proto.Rep(4, 3)); got != 3 {
		t.Errorf("sync quorumAcks(Rep4) = %d, want 3", got)
	}
}

func TestPutGetAllMemgests(t *testing.T) {
	h := newHarness(t, figure3Spec())
	for mg := mgREP1; mg <= mgSRS32; mg++ {
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("key-%d-%d", mg, i)
			val := bytes.Repeat([]byte{byte(mg), byte(i)}, 100+i)
			r := h.put(key, val, mg)
			if r.Status != proto.StOK || r.Version != 1 {
				t.Fatalf("put %s into mg %d: %+v", key, mg, r)
			}
			g := h.get(key)
			if g.Status != proto.StOK || !bytes.Equal(g.Value, val) || g.Version != 1 {
				t.Fatalf("get %s from mg %d: status=%v", key, mg, g.Status)
			}
		}
	}
	h.checkParityInvariant()
}

func TestPutVersioningAndOverwrite(t *testing.T) {
	h := newHarness(t, figure3Spec())
	for i := 1; i <= 5; i++ {
		r := h.put("k", []byte(fmt.Sprintf("v%d", i)), mgSRS32)
		if r.Version != proto.Version(i) {
			t.Fatalf("put %d: version %d", i, r.Version)
		}
	}
	g := h.get("k")
	if string(g.Value) != "v5" || g.Version != 5 {
		t.Fatalf("get: %q v%d", g.Value, g.Version)
	}
	h.checkParityInvariant()
	// Old versions must be GCed on the coordinator.
	n, _ := h.coordinatorOf("k")
	shard := n.shardOf("k")
	if got := len(n.volFor(shard).All("k")); got != 1 {
		t.Fatalf("GC left %d versions", got)
	}
	cs := n.mg[mgSRS32].coord[shard]
	if cs.meta.Len() != 1 {
		t.Fatalf("metadata has %d entries after GC", cs.meta.Len())
	}
}

func TestGetMissingKey(t *testing.T) {
	h := newHarness(t, figure3Spec())
	if g := h.get("nope"); g.Status != proto.StNotFound {
		t.Fatalf("get missing: %v", g.Status)
	}
}

func TestDelete(t *testing.T) {
	h := newHarness(t, figure3Spec())
	for _, mg := range []proto.MemgestID{mgREP1, mgREP3, mgSRS32} {
		key := fmt.Sprintf("dk-%d", mg)
		h.put(key, []byte("x"), mg)
		if d := h.del(key); d.Status != proto.StOK {
			t.Fatalf("delete in mg %d: %v", mg, d.Status)
		}
		if g := h.get(key); g.Status != proto.StNotFound {
			t.Fatalf("get after delete in mg %d: %v", mg, g.Status)
		}
	}
	if d := h.del("never-existed"); d.Status != proto.StNotFound {
		t.Fatalf("delete missing: %v", d.Status)
	}
	h.checkParityInvariant()
}

func TestMoveAcrossSchemes(t *testing.T) {
	h := newHarness(t, figure3Spec())
	val := bytes.Repeat([]byte("m"), 1024)
	h.put("mk", val, mgREP1)
	// Tour the key through every scheme; contents must survive.
	tour := []proto.MemgestID{mgSRS32, mgREP3, mgSRS21, mgREP4, mgSRS31, mgREP2, mgREP1}
	ver := proto.Version(1)
	for _, mg := range tour {
		r := h.move("mk", mg)
		if r.Status != proto.StOK {
			t.Fatalf("move to %d: %v", mg, r.Status)
		}
		if r.Version != ver+1 {
			t.Fatalf("move to %d: version %d, want %d", mg, r.Version, ver+1)
		}
		ver = r.Version
		g := h.get("mk")
		if g.Status != proto.StOK || !bytes.Equal(g.Value, val) {
			t.Fatalf("get after move to %d: %v", mg, g.Status)
		}
		h.checkParityInvariant()
	}
	// Move to the memgest it is already in: no new version.
	r := h.move("mk", mgREP1)
	if r.Status != proto.StOK || r.Version != ver {
		t.Fatalf("no-op move: %+v", r)
	}
	// Move of a missing key.
	if r := h.move("ghost", mgREP1); r.Status != proto.StNotFound {
		t.Fatalf("move missing: %v", r.Status)
	}
}

func TestWrongNodeRouting(t *testing.T) {
	h := newHarness(t, figure3Spec())
	_, right := h.coordinatorOf("wk")
	wrong := (right + 1) % 3
	h.send("client/w", wrong, &proto.Put{Req: 9, Key: "wk", Value: []byte("v")})
	h.run()
	r := h.lastReply("client/w").(*proto.PutReply)
	if r.Status != proto.StWrongNode {
		t.Fatalf("wrong node put: %v", r.Status)
	}
}

func TestUncommittedGetIsParked(t *testing.T) {
	// Drive a Rep(3) put manually: before the acks arrive, a get for
	// the key must be parked, and released at commit with the new
	// value — Figure 5's client D.
	spec := figure3Spec()
	h := newHarness(t, spec)
	h.put("pk", []byte("old"), mgREP3)

	n, id := h.coordinatorOf("pk")
	// Inject the put but do NOT run the router yet: replication
	// messages stay queued.
	outs := n.HandleMessage(h.now, "client/p", &proto.Put{Req: 10, Key: "pk", Value: []byte("new"), Memgest: mgREP3})
	var repl []routedMsg
	for _, o := range outs {
		repl = append(repl, routedMsg{from: NodeAddr(id), to: o.To, msg: o.Msg})
	}
	// Concurrent get: arrives while version 2 is uncommitted.
	outs = n.HandleMessage(h.now, "client/g", &proto.Get{Req: 11, Key: "pk"})
	if len(outs) != 0 {
		t.Fatalf("get of uncommitted version answered immediately: %v", outs)
	}
	if n.Stats.ParkedGets != 1 {
		t.Fatalf("ParkedGets = %d", n.Stats.ParkedGets)
	}
	// Now deliver the replication traffic; the commit must release
	// both the put reply and the parked get.
	h.queue = append(h.queue, repl...)
	h.run()
	pr := h.lastReply("client/p").(*proto.PutReply)
	if pr.Status != proto.StOK || pr.Version != 2 {
		t.Fatalf("put reply: %+v", pr)
	}
	gr := h.lastReply("client/g").(*proto.GetReply)
	if gr.Status != proto.StOK || string(gr.Value) != "new" || gr.Version != 2 {
		t.Fatalf("parked get reply: %+v", gr)
	}
}

func TestRepQuorumCommitBeforeAllAcks(t *testing.T) {
	// Rep(4,3): quorum = 2 remote acks of 3 replicas. Deliver exactly
	// two acks; the put must commit without the third.
	h := newHarness(t, figure3Spec())
	n, id := h.coordinatorOf("qk")
	outs := n.HandleMessage(h.now, "client/q", &proto.Put{Req: 12, Key: "qk", Value: []byte("v"), Memgest: mgREP4})
	var appends []routedMsg
	for _, o := range outs {
		appends = append(appends, routedMsg{from: NodeAddr(id), to: o.To, msg: o.Msg})
	}
	if len(appends) != 3 {
		t.Fatalf("Rep(4) sent %d appends, want 3", len(appends))
	}
	// Deliver only the first two replicas' traffic.
	h.queue = append(h.queue, appends[:2]...)
	h.run()
	pr := h.lastReply("client/q").(*proto.PutReply)
	if pr.Status != proto.StOK {
		t.Fatalf("put did not commit on quorum: %+v", pr)
	}
}

func TestParityDeltaPath(t *testing.T) {
	// Overwriting a key in SRS reuses heap space via GC; the parity
	// invariant must hold through alloc-free-realloc cycles.
	h := newHarness(t, figure3Spec())
	for i := 0; i < 50; i++ {
		val := bytes.Repeat([]byte{byte(i)}, 512+(i%7)*64)
		h.put("cycle", val, mgSRS32)
		if i%10 == 9 {
			h.checkParityInvariant()
		}
	}
	// Also interleave two keys on the same shard... any keys work.
	for i := 0; i < 20; i++ {
		h.put(fmt.Sprintf("other-%d", i%3), bytes.Repeat([]byte{0xee}, 300), mgSRS21)
	}
	h.checkParityInvariant()
}

func TestCreateAndUseMemgest(t *testing.T) {
	h := newHarness(t, figure3Spec())
	leader := h.nodes[0]
	outs := leader.HandleMessage(h.now, "client/m", &proto.CreateMemgest{Req: 20, Scheme: proto.SRS(2, 2, 3)})
	for _, o := range outs {
		h.queue = append(h.queue, routedMsg{from: NodeAddr(0), to: o.To, msg: o.Msg})
	}
	h.run()
	mr := h.lastReply("client/m").(*proto.MemgestReply)
	if mr.Status != proto.StOK {
		t.Fatalf("create: %v", mr.Status)
	}
	newID := mr.Memgest
	if newID != 8 {
		t.Fatalf("new memgest id = %d", newID)
	}
	r := h.put("nk", []byte("in new scheme"), newID)
	if r.Status != proto.StOK {
		t.Fatalf("put into new memgest: %v", r.Status)
	}
	if g := h.get("nk"); string(g.Value) != "in new scheme" {
		t.Fatal("get from new memgest failed")
	}
	h.checkParityInvariant()

	// Invalid schemes are rejected.
	for _, sc := range []proto.Scheme{proto.SRS(3, 3, 3), proto.Rep(9, 3), proto.SRS(2, 1, 4)} {
		outs := leader.HandleMessage(h.now, "client/m", &proto.CreateMemgest{Req: 21, Scheme: sc})
		if len(outs) != 1 {
			t.Fatal("expected direct reply")
		}
		if outs[0].Msg.(*proto.MemgestReply).Status != proto.StInvalid {
			t.Fatalf("scheme %v accepted", sc)
		}
	}
	// Non-leader rejects management ops.
	outs = h.nodes[1].HandleMessage(h.now, "client/m", &proto.CreateMemgest{Req: 22, Scheme: proto.Rep(2, 3)})
	if outs[0].Msg.(*proto.MemgestReply).Status != proto.StWrongNode {
		t.Fatal("non-leader accepted createMemgest")
	}
}

func TestSetDefaultMemgest(t *testing.T) {
	h := newHarness(t, figure3Spec())
	h.send("client/d", 0, &proto.SetDefault{Req: 30, Memgest: mgSRS32})
	h.run()
	if r := h.lastReply("client/d").(*proto.MemgestReply); r.Status != proto.StOK {
		t.Fatalf("set default: %v", r.Status)
	}
	// A put without memgest now lands in SRS32.
	r := h.put("dk", []byte("v"), 0)
	if r.Status != proto.StOK {
		t.Fatal(r.Status)
	}
	n, _ := h.coordinatorOf("dk")
	shard := n.shardOf("dk")
	ref, _ := n.volFor(shard).Highest("dk")
	if ref.Memgest != mgSRS32 {
		t.Fatalf("default put landed in %d", ref.Memgest)
	}
}

func TestDeleteMemgest(t *testing.T) {
	h := newHarness(t, figure3Spec())
	h.send("client/d", 0, &proto.DeleteMemgest{Req: 31, Memgest: mgREP2})
	h.run()
	if r := h.lastReply("client/d").(*proto.MemgestReply); r.Status != proto.StOK {
		t.Fatalf("delete memgest: %v", r.Status)
	}
	r := h.put("x", []byte("v"), mgREP2)
	if r.Status != proto.StNoMemgest {
		t.Fatalf("put into deleted memgest: %v", r.Status)
	}
	// Unknown memgest.
	h.send("client/d", 0, &proto.DeleteMemgest{Req: 32, Memgest: 99})
	h.run()
	if r := h.lastReply("client/d").(*proto.MemgestReply); r.Status != proto.StNoMemgest {
		t.Fatalf("delete unknown: %v", r.Status)
	}
}

func TestHeartbeatsKeepClusterStable(t *testing.T) {
	h := newHarness(t, figure3Spec())
	for i := 0; i < 30; i++ {
		h.tick(10 * time.Millisecond)
	}
	for id, n := range h.nodes {
		if n.cfg.Epoch != 1 {
			t.Fatalf("node %d: spurious reconfiguration to epoch %d", id, n.cfg.Epoch)
		}
	}
}

func TestCoordinatorFailover(t *testing.T) {
	h := newHarness(t, figure3Spec())
	// Write keys into several memgests.
	keys := map[string]proto.MemgestID{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("fk-%d", i)
		mg := []proto.MemgestID{mgREP3, mgSRS21, mgSRS32, mgREP4}[i%4]
		h.put(key, []byte("val-"+key), mg)
		keys[key] = mg
	}
	// Kill coordinator 1 (not the leader).
	h.kill(1)
	// Let the leader detect the failure and reconfigure.
	lead := h.nodes[0]
	if !h.tickUntil(10*time.Millisecond, 100, func() bool { return lead.cfg.Epoch >= 2 }) {
		t.Fatal("leader did not reconfigure")
	}
	if lead.cfg.Coords[1] == 1 {
		t.Fatal("dead node still coordinates shard 1")
	}
	newCoord := lead.cfg.Coords[1]
	if newCoord != 5 && newCoord != 6 {
		t.Fatalf("unexpected replacement %d", newCoord)
	}
	// Let recovery complete (metadata + background blocks).
	if !h.tickUntil(10*time.Millisecond, 200, func() bool { return h.recovered(newCoord) }) {
		t.Fatal("replacement never finished recovery")
	}
	// Every key must still be readable with its original value.
	for key, mg := range keys {
		g := h.get(key)
		if g.Status != proto.StOK || string(g.Value) != "val-"+key {
			t.Fatalf("key %s (mg %d) after failover: %v %q", key, mg, g.Status, g.Value)
		}
	}
	// And writable.
	for key := range keys {
		if r := h.put(key, []byte("post-failover"), keys[key]); r.Status != proto.StOK {
			t.Fatalf("put %s after failover: %v", key, r.Status)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	h := newHarness(t, figure3Spec())
	h.put("lk", []byte("v"), mgREP3)
	h.kill(0) // the leader coordinates shard 0 too
	// Node 1 (lowest surviving ID) must take leadership.
	n1 := h.nodes[1]
	if !h.tickUntil(10*time.Millisecond, 100, n1.IsLeader) {
		t.Fatalf("node 1 is not leader (cfg leader = %d)", n1.cfg.Leader)
	}
	if n1.cfg.Coords[0] == 0 {
		t.Fatal("dead leader still coordinates shard 0")
	}
	// All surviving nodes converge on the same epoch and leader.
	converged := func() bool {
		for id, n := range h.nodes {
			if !h.dead[id] && n.cfg.Leader != 1 {
				return false
			}
		}
		return true
	}
	if !h.tickUntil(10*time.Millisecond, 100, converged) {
		for id, n := range h.nodes {
			if !h.dead[id] && n.cfg.Leader != 1 {
				t.Fatalf("node %d sees leader %d", id, n.cfg.Leader)
			}
		}
	}
	// Let recovery finish, then the cluster must serve again.
	newCoord0 := n1.cfg.Coords[0]
	if !h.tickUntil(10*time.Millisecond, 200, func() bool { return h.recovered(newCoord0) }) {
		t.Fatal("shard 0 replacement never finished recovery")
	}
	if r := h.put("lk2", []byte("w"), mgREP3); r.Status != proto.StOK {
		t.Fatalf("put after leader failover: %v", r.Status)
	}
}

func TestParityNodeFailover(t *testing.T) {
	h := newHarness(t, figure3Spec())
	for i := 0; i < 10; i++ {
		h.put(fmt.Sprintf("pfk-%d", i), bytes.Repeat([]byte{byte(i)}, 700), mgSRS32)
	}
	// Node 4 is the second redundant node: parity 1 of SRS32.
	h.kill(4)
	lead := h.nodes[0]
	rebuilt := func() bool {
		repl := lead.cfg.Memgests[mgSRS32-1].Redundant[1]
		return repl != 4 && h.recovered(repl)
	}
	if !h.tickUntil(10*time.Millisecond, 200, rebuilt) {
		t.Fatal("dead parity node not replaced and rebuilt")
	}
	repl := lead.cfg.Memgests[mgSRS32-1].Redundant[1]
	if repl == 4 {
		t.Fatal("dead parity node not replaced")
	}
	// The replacement must have rebuilt identical parity: verify the
	// stripe invariant across the whole memgest.
	h.checkParityInvariant()
	// New writes keep working.
	if r := h.put("pfk-new", []byte("fresh"), mgSRS32); r.Status != proto.StOK {
		t.Fatalf("put after parity failover: %v", r.Status)
	}
	h.checkParityInvariant()
}

func TestUnreliableMemgestLosesDataOnFailure(t *testing.T) {
	// Rep(1,s) data is gone after its coordinator dies — the documented
	// trade-off of the unreliable memgest.
	h := newHarness(t, figure3Spec())
	h.put("uk", []byte("volatile"), mgREP1)
	h.put("rk", []byte("durable"), mgREP3)
	n, id := h.coordinatorOf("uk")
	_ = n
	h.kill(id)
	for i := 0; i < 80; i++ {
		h.tick(10 * time.Millisecond)
	}
	if g := h.get("uk"); g.Status != proto.StNotFound {
		t.Fatalf("unreliable key survived: %v", g.Status)
	}
	// But the reliable key (possibly on another shard) is intact.
	if _, rid := h.coordinatorOf("rk"); rid != id {
		if g := h.get("rk"); g.Status != proto.StOK {
			t.Fatalf("reliable key lost: %v", g.Status)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(t, figure3Spec())
	h.put("sk", []byte("v"), mgSRS32)
	h.get("sk")
	n, _ := h.coordinatorOf("sk")
	if n.Stats.Puts != 1 || n.Stats.Gets != 1 || n.Stats.Commits != 1 {
		t.Fatalf("stats: %+v", n.Stats)
	}
	if n.Stats.ParityUpdates != 2 {
		t.Fatalf("SRS32 put sent %d parity updates, want 2", n.Stats.ParityUpdates)
	}
}

func TestDoubleFailureRecovery(t *testing.T) {
	// Kill a coordinator AND a parity node at once. The replacement
	// coordinator's metadata fetch initially targets the dead parity
	// node; the tick-driven retry must prune it once the leader
	// reconfigures, letting recovery converge instead of wedging.
	h := newHarness(t, figure3Spec())
	keys := map[string][]byte{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("df-%d", i)
		val := bytes.Repeat([]byte{byte(i + 1)}, 400)
		mg := []proto.MemgestID{mgSRS32, mgREP3}[i%2]
		h.put(key, val, mg)
		keys[key] = val
	}
	h.kill(1) // coordinator of shard 1
	h.kill(4) // redundant node: parity 1 of SRS32, replica of REP3
	// Both dead nodes must be replaced (idle spares are trivially
	// "recovered", so require the reconfiguration first) and both
	// replacements must finish recovery completely.
	lead := h.nodes[0]
	replaced := func() bool {
		if lead.cfg.Coords[1] == 1 {
			return false
		}
		for _, r := range lead.cfg.Memgests[mgSRS32-1].Redundant {
			if r == 4 {
				return false
			}
		}
		return h.recovered(5) && h.recovered(6)
	}
	if !h.tickUntil(10*time.Millisecond, 400, replaced) {
		t.Fatalf("double failure never fully recovered (epoch %d, coords %v)", lead.cfg.Epoch, lead.cfg.Coords)
	}
	// Survivable data: REP3 keys always (quorum held); SRS32 keys on
	// shards other than 1 trivially; SRS32 keys on shard 1 lost BOTH a
	// data column and one parity — still within m=2, so they must be
	// recoverable too.
	for key, val := range keys {
		g := h.get(key)
		if g.Status != proto.StOK || !bytes.Equal(g.Value, val) {
			t.Fatalf("key %s after double failure: %v", key, g.Status)
		}
	}
	// Cluster accepts new writes everywhere.
	for i := 0; i < 6; i++ {
		if r := h.put(fmt.Sprintf("df-new-%d", i), []byte("post"), mgSRS32); r.Status != proto.StOK {
			t.Fatalf("post-recovery put: %v", r.Status)
		}
	}
}

// TestFailoverTimingVariants runs a coordinator failover under both a
// faster and a much slower failure detector, proving failover is
// driven by the configured HeartbeatEvery/FailAfter rather than by
// constants the other tests happen to match — and that the detector
// does not fire early.
func TestFailoverTimingVariants(t *testing.T) {
	for _, tc := range []struct {
		name     string
		hb, fail time.Duration
	}{
		{"fast", 5 * time.Millisecond, 25 * time.Millisecond},
		{"slow", 40 * time.Millisecond, 200 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := figure3Spec()
			spec.Opts.HeartbeatEvery = tc.hb
			spec.Opts.FailAfter = tc.fail
			h := newHarness(t, spec)
			h.put("tk", []byte("v"), mgREP3)
			h.kill(1)
			killedAt := h.now

			// No premature detection: the last heartbeat from node 1
			// arrived at most one heartbeat period before the kill, so
			// the leader must not reconfigure before killedAt +
			// FailAfter - HeartbeatEvery.
			lead := h.nodes[0]
			for h.now < killedAt+tc.fail-2*tc.hb {
				h.tick(tc.hb)
				if lead.cfg.Epoch != 1 {
					t.Fatalf("reconfigured at %v, before FailAfter=%v elapsed", h.now-killedAt, tc.fail)
				}
			}

			// Then detection, replacement, and full recovery.
			if !h.tickUntil(tc.hb, 400, func() bool { return lead.cfg.Epoch >= 2 }) {
				t.Fatal("leader never reconfigured")
			}
			newCoord := lead.cfg.Coords[1]
			if newCoord == 1 {
				t.Fatal("dead node still coordinates shard 1")
			}
			if !h.tickUntil(tc.hb, 400, func() bool { return h.recovered(newCoord) }) {
				t.Fatal("replacement never finished recovery")
			}
			if g := h.get("tk"); g.Status != proto.StOK || string(g.Value) != "v" {
				t.Fatalf("key after failover: %v %q", g.Status, g.Value)
			}
		})
	}
}
