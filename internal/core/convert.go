package core

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"ring/internal/proto"
	"ring/internal/store"
)

// This file implements online per-key scheme transitions ("convert"):
// re-encoding a key's durable highest version from its current memgest
// into another one — Rep(3) to SRS(3,2), say — while the cluster keeps
// serving. A conversion is a journaled re-put: the coordinator reads
// the committed source version locally (SRS co-location makes the read
// free of network traffic), opens a transition window, and runs the
// normal write pipeline into the destination memgest. Client writes to
// the key park on the window and replay when it closes; reads ride the
// existing parked-get machinery (a get of the in-flight destination
// version parks until commit, gets of the source version keep being
// served from it). The window is crash-safe: a conv-begin record is
// journaled before the destination write launches and a conv-end
// record is journaled before the ack escapes, so replay lands on
// exactly the old or the new scheme, never a hybrid.

// convKey identifies one open transition window on a coordinator.
type convKey struct {
	shard uint32
	key   string
}

// convState is the coordinator-side state of one open window.
type convState struct {
	// client/req is the reply owed when the window closes (possibly a
	// bulk-convert internal address, see bulkConvPrefix).
	client string
	req    proto.ReqID
	// src/dst are the source and destination memgests; newVer is the
	// version the destination write is in flight under.
	src, dst proto.MemgestID
	newVer   proto.Version
	// parked holds client writes that arrived inside the window, in
	// arrival order; they replay through the normal dispatch when the
	// window closes.
	parked []parkedOp
	// started drives the window timeout (convertTick): a destination
	// write whose appends or acks the network ate would otherwise hold
	// the window — and every write parked on it — open forever.
	started time.Duration
}

// parkedOp is one client write parked on a transition window.
type parkedOp struct {
	from string
	msg  proto.Message
}

// bulkConvPrefix marks the internal reply address of a per-key convert
// launched by a bulk (prefix) conversion; the suffix is the bulk id.
const bulkConvPrefix = "bulkconv/"

// bulkConvert aggregates the per-key outcomes of one prefix convert.
type bulkConvert struct {
	client      string
	req         proto.ReqID
	outstanding int
	converted   uint32
	failed      proto.Status
}

// parkOnConvert parks a client write that arrived inside the key's
// open transition window. It reports whether the write was parked; a
// parked write replays when the window closes.
func (n *Node) parkOnConvert(shard uint32, key, from string, msg proto.Message) bool {
	cv := n.converting[convKey{shard: shard, key: key}]
	if cv == nil {
		return false
	}
	cv.parked = append(cv.parked, parkedOp{from: from, msg: msg})
	return true
}

// handleConvert coordinates a client scheme transition.
//
//ring:handler
func (n *Node) handleConvert(from string, m *proto.Convert) {
	n.Stats.Converts++
	if m.Prefix {
		n.handleConvertPrefix(from, m)
		return
	}
	fail := func(s proto.Status) { n.send(from, &proto.ConvertReply{Req: m.Req, Status: s}) }
	shard, ok := n.checkClientOp(m.Key, fail)
	if !ok {
		return
	}
	if n.parkOnConvert(shard, m.Key, from, m) {
		return
	}
	n.convertKey(from, m.Req, shard, m.Key, m.From, m.To)
}

// convertKey validates and launches one key's transition. client may be
// a bulk-convert internal address; every reply goes through replyStatus
// so the routing is uniform.
func (n *Node) convertKey(client string, req proto.ReqID, shard uint32, key string, from, to proto.MemgestID) {
	fail := func(s proto.Status) { n.replyStatus(client, req, replyConvert, s, 0) }
	if n.cfg.Memgest(to) == nil {
		fail(proto.StNoMemgest)
		return
	}
	ref, found := n.volFor(shard).Highest(key)
	if !found {
		fail(proto.StNotFound)
		return
	}
	e := n.lookupEntry(shard, key, ref)
	if e == nil || e.Rec.Tombstone {
		fail(proto.StNotFound)
		return
	}
	if from != 0 && ref.Memgest != from {
		// Conditional convert: the key is not under the scheme the
		// caller believes (a concurrent move or convert won).
		fail(proto.StInvalid)
		return
	}
	if ref.Memgest == to {
		// Nothing to re-encode. The version acked is already committed
		// and durable under the destination scheme.
		n.replyStatus(client, req, replyConvert, proto.StOK, ref.Version) //ring:ackok no-op convert: the version acked is already durable
		return
	}
	if !e.Rec.Committed {
		// Same postponement rule as move: transition only durable state.
		e.ParkedMoves = append(e.ParkedMoves, store.MoveWaiter{Client: client, Req: req, Dst: to, Convert: true})
		return
	}
	n.performConvert(client, req, shard, key, to)
}

// performConvert reads the durable highest version locally (recovering
// the backing value or SRS block on demand) and starts the journaled
// transition into dst. Mirrors performMove, plus the window.
func (n *Node) performConvert(client string, req proto.ReqID, shard uint32, key string, dst proto.MemgestID) {
	fail := func(s proto.Status) { n.replyStatus(client, req, replyConvert, s, 0) }
	ref, found := n.volFor(shard).Highest(key)
	if !found {
		fail(proto.StNotFound)
		return
	}
	st := n.mgFor(ref.Memgest)
	e := n.lookupEntry(shard, key, ref)
	if st == nil || e == nil || e.Rec.Tombstone {
		fail(proto.StNotFound)
		return
	}
	if ref.Memgest == dst {
		n.replyStatus(client, req, replyConvert, proto.StOK, ref.Version) //ring:ackok no-op convert: the version acked is already durable
		return
	}
	if n.cfg.Memgest(dst) == nil {
		fail(proto.StNoMemgest)
		return
	}
	cs := st.coord[shard]
	var value []byte
	switch st.info.Scheme.Kind {
	case proto.SchemeRep:
		if e.Value == nil && e.Rec.Length > 0 {
			n.parkOnValueRecovery(st, cs, e, blockWaiter{client: client, req: req, key: key, version: ref.Version, kind: replyConvert, dst: dst})
			return
		}
		value = e.Value
	case proto.SchemeSRS:
		if e.Rec.Length > 0 {
			if !cs.blockOK[e.Ext.Block] {
				n.parkOnBlockRecovery(st, cs, e.Ext.Block, blockWaiter{client: client, req: req, key: key, version: ref.Version, kind: replyConvert, dst: dst})
				return
			}
			value = cs.heap.Read(e.Ext)
		}
	}
	n.startConvert(client, req, shard, key, ref, value, dst)
}

// startConvert opens the transition window: journal the conv-begin
// record, then run the destination write through the normal pipeline.
// The window closes in commitEntry (conv-end journaled before the ack)
// or right here on a synchronous launch failure.
//
// The journal obligation is rooted here rather than on handleConvert:
// downstream of the conv-begin record the transition rides the shared
// write pipeline, whose acks for ordinary puts legitimately carry no
// journal record — the analyzer cannot split commitEntry's kind
// conditional, but it can (and does) prove no ack escapes this
// function before the conv-begin record is down. The conv-end-before-
// ack half lives in commitEntry and is covered by the crash-matrix
// e2e tests and the elasticity chaos lane.
//
//ring:handler journal transition windows must hit the journal before any ack
func (n *Node) startConvert(client string, req proto.ReqID, shard uint32, key string, src store.VersionRef, value []byte, dst proto.MemgestID) {
	newVer := src.Version + 1
	if n.opts.ChaosUnsafeConvert {
		// Injected bug (elasticity chaos-lane validation only): ack the
		// transition before any journal record exists and purge the
		// source version while the destination write is still in flight.
		// A coordinator crash inside that gap silently loses the key's
		// acknowledged state, which the linearizability checker must flag
		// and the shrinker must reduce.
		n.replyStatus(client, req, replyConvert, proto.StOK, newVer) //ring:ackok deliberate ack-before-journal chaos injection
		n.doWrite("", 0, replyNone, shard, key, value, dst, false)   //ring:ackok chaos injection: the unjournaled write is the injected bug
		n.purgeVersion(shard, key, src)
		return
	}
	ck := convKey{shard: shard, key: key}
	cv := &convState{client: client, req: req, src: src.Memgest, dst: dst, newVer: newVer, started: n.now}
	n.converting[ck] = cv
	n.persistConvertBegin(dst, shard, key, newVer, src.Memgest)
	if !n.doWrite(client, req, replyConvert, shard, key, value, dst, false) {
		// The launch failed synchronously and the error reply is already
		// queued: close the journal window and lift the parking.
		n.persistConvertEnd(dst, shard, key, newVer, 0)
		n.finishConvert(ck, cv)
	}
}

// finishConvert closes a transition window and replays the writes that
// parked on it, in arrival order, through the normal dispatch.
func (n *Node) finishConvert(ck convKey, cv *convState) {
	delete(n.converting, ck)
	parked := cv.parked
	cv.parked = nil
	for _, p := range parked {
		n.redispatchParked(p)
	}
}

// redispatchParked re-enters a parked client write. Replaying through
// the public handlers keeps every rule (routing, version allocation,
// re-parking on a window a replayed convert just opened) in one place.
func (n *Node) redispatchParked(p parkedOp) {
	switch m := p.msg.(type) {
	case *proto.Put:
		n.handlePut(p.from, m) //ring:ackok replayed op: it owes and runs its own barrier pipeline
	case *proto.Delete:
		n.handleDelete(p.from, m) //ring:ackok replayed op: it owes and runs its own barrier pipeline
	case *proto.Move:
		n.handleMove(p.from, m) //ring:ackok replayed op: it owes and runs its own barrier pipeline
	case *proto.Convert:
		n.handleConvert(p.from, m) //ring:ackok replayed op: it owes and runs its own barrier pipeline
	}
}

// handleConvertPrefix fans a bulk conversion out over every key this
// node coordinates that matches the prefix. Each key runs the normal
// single-key transition with an internal reply address; the client gets
// one aggregated reply once the last key settles.
func (n *Node) handleConvertPrefix(from string, m *proto.Convert) {
	fail := func(s proto.Status) { n.send(from, &proto.ConvertReply{Req: m.Req, Status: s}) }
	if len(n.cfg.Coords) == 0 {
		fail(proto.StUnavailable)
		return
	}
	if !n.serving {
		fail(proto.StRetry)
		return
	}
	if n.cfg.Memgest(m.To) == nil {
		fail(proto.StNoMemgest)
		return
	}
	// Collect matching keys across every owned shard. Hashtable
	// iteration order is arbitrary; sort so simulator replays are
	// deterministic.
	var keys []string
	for _, shard := range n.ownedShards() {
		n.volFor(shard).EachKey(func(key string) bool {
			if strings.HasPrefix(key, m.Key) {
				keys = append(keys, key)
			}
			return true
		})
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		n.send(from, &proto.ConvertReply{Req: m.Req, Status: proto.StOK}) //ring:ackok empty bulk convert: no state changed, nothing owed durability
		return
	}
	id := strconv.FormatUint(n.nextBulkID, 10)
	n.nextBulkID++
	n.bulkConverts[id] = &bulkConvert{client: from, req: m.Req, outstanding: len(keys)}
	replyTo := bulkConvPrefix + id
	for _, key := range keys {
		shard := n.shardOf(key)
		if n.parkOnConvert(shard, key, replyTo, &proto.Convert{Req: m.Req, Key: key, From: m.From, To: m.To}) {
			continue
		}
		n.convertKey(replyTo, m.Req, shard, key, m.From, m.To)
	}
}

// bulkConvertDone records one key's outcome against its bulk convert
// and emits the aggregated reply when the last key settles. Keys
// already under the destination scheme count as converted; the first
// non-OK status wins the aggregate (individual keys may still have
// converted — Converted reports how many).
func (n *Node) bulkConvertDone(id string, s proto.Status) {
	bc := n.bulkConverts[id]
	if bc == nil {
		return
	}
	if s == proto.StOK {
		bc.converted++
	} else if bc.failed == proto.StOK {
		bc.failed = s
	}
	bc.outstanding--
	if bc.outstanding > 0 {
		return
	}
	delete(n.bulkConverts, id)
	n.send(bc.client, &proto.ConvertReply{Req: bc.req, Status: bc.failed, Converted: bc.converted}) //ring:ackok aggregate reply: every per-key outcome it summarizes passed its own barriers
}

// abortConvertWrite cancels a window's in-flight destination write:
// the pending commit is dropped (a late ack must not resurrect it),
// requests parked on the uncommitted destination version are bounced
// with StRetry, the version is purged, and the journal window closed.
// The committed source version is untouched — aborting a transition
// always lands on the old scheme.
func (n *Node) abortConvertWrite(ck convKey, cv *convState) {
	if st := n.mgFor(cv.dst); st != nil {
		if cs := st.coord[ck.shard]; cs != nil {
			if e := cs.meta.Get(ck.key, cv.newVer); e != nil && !e.Rec.Committed {
				for seq, pc := range cs.pending {
					if pc.key == ck.key && pc.version == cv.newVer {
						delete(cs.pending, seq)
					}
				}
				for _, w := range e.ParkedGets {
					n.send(w.Client, &proto.GetReply{Req: w.Req, Status: proto.StRetry})
				}
				e.ParkedGets = nil
				moves := e.ParkedMoves
				e.ParkedMoves = nil
				for _, mw := range moves {
					kind := replyMove
					if mw.Convert {
						kind = replyConvert
					}
					n.replyStatus(mw.Client, mw.Req, kind, proto.StRetry, 0)
				}
				n.purgeVersion(ck.shard, ck.key, store.VersionRef{Version: cv.newVer, Memgest: cv.dst})
			}
		}
	}
	n.persistConvertEnd(cv.dst, ck.shard, ck.key, cv.newVer, 0)
}

// convertTick aborts transition windows that outlived the failure
// detector. A window normally spans one destination write round-trip;
// one still open past FailAfter has lost an append or an ack to the
// fault plane, and the write pipeline has no retransmit of its own —
// client writes recover from loss through client retries, but those
// park on the window here, so a stuck window would wedge the key
// forever (new attempts of the conversion itself included). The abort
// purges the uncommitted destination version, journals the transition
// closed, and answers StRetry; the committed source version is
// untouched, so the caller simply converts again.
func (n *Node) convertTick() {
	if len(n.converting) == 0 {
		return
	}
	var stale []convKey
	for ck, cv := range n.converting {
		if n.now-cv.started > n.opts.FailAfter {
			stale = append(stale, ck)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].shard != stale[j].shard {
			return stale[i].shard < stale[j].shard
		}
		return stale[i].key < stale[j].key
	})
	for _, ck := range stale {
		cv := n.converting[ck]
		if cv == nil {
			continue // closed by an earlier abort's replay
		}
		n.Metrics.ConvertsAborted.Inc()
		n.abortConvertWrite(ck, cv)
		delete(n.converting, ck)
		n.replyStatus(cv.client, cv.req, replyConvert, proto.StRetry, 0)
		for _, p := range cv.parked {
			n.redispatchParked(p)
		}
	}
}

// replanConverts re-examines every open transition window after a
// configuration change (installConfig calls it last): a window whose
// destination write was fanned out under the old redundancy assignment
// may never reach quorum under the new one, and a window whose shard
// moved away no longer belongs here. Each affected window is aborted
// and — when this node still coordinates the key — relaunched against
// the new configuration, so a convert racing a node departure replans
// instead of wedging.
func (n *Node) replanConverts() {
	if len(n.converting) == 0 {
		return
	}
	cks := make([]convKey, 0, len(n.converting))
	for ck := range n.converting {
		cks = append(cks, ck)
	}
	sort.Slice(cks, func(i, j int) bool {
		if cks[i].shard != cks[j].shard {
			return cks[i].shard < cks[j].shard
		}
		return cks[i].key < cks[j].key
	})
	for _, ck := range cks {
		cv := n.converting[ck]
		if cv == nil {
			continue // closed by an earlier replan's replay
		}
		n.Metrics.ConvertsReplanned.Inc()
		if !n.coordinates(ck.shard) {
			// The shard moved to another coordinator along with all its
			// state; the caller retries there. Parked writes replay below
			// and bounce off checkClientOp with StWrongNode.
			delete(n.converting, ck)
			n.replyStatus(cv.client, cv.req, replyConvert, proto.StRetry, 0)
			for _, p := range cv.parked {
				n.redispatchParked(p)
			}
			continue
		}
		n.abortConvertWrite(ck, cv)
		delete(n.converting, ck)
		parked := cv.parked
		if n.cfg.Memgest(cv.dst) == nil {
			n.replyStatus(cv.client, cv.req, replyConvert, proto.StNoMemgest, 0)
		} else {
			n.convertKey(cv.client, cv.req, ck.shard, ck.key, 0, cv.dst)
		}
		// The relaunch may have opened a fresh window for the key: carry
		// the parked writes over (they arrived first, they stay first).
		// Otherwise it settled synchronously and they replay now.
		if nv := n.converting[ck]; nv != nil {
			nv.parked = append(parked, nv.parked...)
		} else {
			for _, p := range parked {
				n.redispatchParked(p)
			}
		}
	}
}
