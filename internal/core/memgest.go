package core

import (
	"fmt"
	"time"

	"ring/internal/metrics"
	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/srs"
	"ring/internal/store"
)

// mgState is everything one node holds for one memgest, across all the
// roles it plays in it.
type mgState struct {
	info   proto.MemgestInfo
	layout *srs.Layout // nil for Rep memgests
	// met caches this memgest's op counters so the write/read hot path
	// bumps them through one pointer, never a map lookup.
	met *MemgestMetrics

	// coord holds coordinator-side state for each shard this node
	// coordinates (normally one; several after spare exhaustion or in
	// rotated memgest-group deployments).
	coord map[uint32]*coordShard

	// parityIdx is this node's index among the memgest's parity nodes
	// (SRS), or -1.
	parityIdx int
	// parity is the parity-block region (SRS parity role).
	parity *store.ParityRegion
	// rmeta holds this node's replica of metadata hashtables, per
	// shard, for its replica (Rep) or parity (SRS) roles. Entries of
	// replicated memgests carry values; parity-side entries are
	// metadata only (the parity bytes live in the parity region).
	rmeta map[uint32]*store.MetaTable
	// rseq maps log sequences to entry keys on the redundancy side, so
	// RepCommit (which carries only a seq) can flip committed flags.
	rseq map[uint32]map[proto.Seq]store.EntryKey
}

// coordShard is the coordinator-side state of (memgest, shard).
type coordShard struct {
	shard   uint32
	meta    *store.MetaTable
	heap    *store.BlockHeap // SRS only
	tracker *replog.Tracker
	log     *replog.Log
	// pending maps in-flight sequences to their commit actions.
	pending map[proto.Seq]*pendingCommit
	// blockOK marks SRS logical blocks whose data is valid; false for
	// blocks still awaiting recovery after a failover.
	blockOK map[uint32]bool
	// blockWaiters queues requests waiting for a block recovery, and
	// blockFetching marks blocks with a recovery in flight.
	blockWaiters  map[uint32][]blockWaiter
	blockFetching map[uint32]bool
	// valueWaiters queues requests waiting for a Rep value fetch, and
	// valueFetching marks fetches in flight.
	valueWaiters  map[store.EntryKey][]blockWaiter
	valueFetching map[store.EntryKey]bool
}

// pendingCommit describes what to do when an in-flight entry reaches
// its quorum.
type pendingCommit struct {
	key     string
	version proto.Version
	// start is the node-local time the write arrived, for the commit
	// latency histograms.
	start time.Duration
	// replyTo/req/kind describe the client reply owed at commit time;
	// kind 0 means no reply (internal write, e.g. recovery re-insert).
	replyTo string
	req     proto.ReqID
	kind    replyKind
}

type replyKind uint8

const (
	replyNone replyKind = iota
	replyPut
	replyDelete
	replyMove
	replyConvert
)

// traceOp maps a reply kind to its trace classification; internal
// writes (replyNone) are not traced.
func (k replyKind) traceOp() metrics.TraceOp {
	switch k {
	case replyPut:
		return metrics.TracePut
	case replyDelete:
		return metrics.TraceDelete
	case replyMove:
		return metrics.TraceMove
	case replyConvert:
		return metrics.TraceConvert
	}
	return metrics.TraceNone
}

// replicaSet returns the redundancy nodes of a replicated memgest for
// a shard: the first r-1 candidates from the memgest's redundant nodes
// followed by the other coordinators in rotation. This realizes the
// paper's bound r <= s+d.
func replicaSet(cfg *proto.Config, info *proto.MemgestInfo, shard uint32) []proto.NodeID {
	need := info.Scheme.R - 1
	if need <= 0 {
		return nil
	}
	var cands []proto.NodeID
	cands = append(cands, info.Redundant...)
	s := len(cfg.Coords)
	for i := 1; i < s; i++ {
		cands = append(cands, cfg.Coords[(int(shard)+i)%s])
	}
	self := cfg.Coords[shard]
	out := make([]proto.NodeID, 0, need)
	for _, c := range cands {
		if c == self {
			continue
		}
		out = append(out, c)
		if len(out) == need {
			break
		}
	}
	return out
}

// parityNodes returns the parity nodes of an SRS memgest.
func parityNodes(info *proto.MemgestInfo) []proto.NodeID {
	return info.Redundant[:info.Scheme.M]
}

// quorumAcks returns the number of remote acks a coordinator needs
// before committing: all m parity nodes for SRS; a majority of the r
// replicas (counting itself) for Rep, or all r-1 replicas under
// synchronous replication.
func (n *Node) quorumAcks(sc proto.Scheme) int {
	if sc.Kind == proto.SchemeSRS {
		return sc.M
	}
	if n.opts.SyncReplication {
		return sc.R - 1
	}
	// majority of r including self => floor(r/2) remote acks.
	return sc.R / 2
}

// newMgState builds the state for a memgest this node participates in.
func (n *Node) newMgState(info proto.MemgestInfo) *mgState {
	st := &mgState{
		info:      info,
		parityIdx: -1,
		met:       n.Metrics.mgMetrics(info.ID),
		coord:     make(map[uint32]*coordShard),
		rmeta:     make(map[uint32]*store.MetaTable),
	}
	if info.Scheme.Kind == proto.SchemeSRS {
		st.layout = srs.MustLayout(info.Scheme.K, info.Scheme.M, info.Scheme.S)
	}
	return st
}

// newCoordShard builds coordinator state for one shard of a memgest.
// fresh indicates the memgest is newly created (all blocks valid); a
// non-fresh creation (failover takeover) starts with every block
// invalid pending recovery.
func (n *Node) newCoordShard(st *mgState, shard uint32, fresh bool) *coordShard {
	cs := &coordShard{
		shard:        shard,
		meta:         store.NewMetaTable(),
		tracker:      replog.NewTracker(),
		log:          replog.NewLog(n.opts.LogRetain),
		pending:      make(map[proto.Seq]*pendingCommit),
		blockOK:      make(map[uint32]bool),
		blockWaiters: make(map[uint32][]blockWaiter),
	}
	if st.layout != nil {
		lo, hi := st.layout.NodeBlocks(int(shard))
		cs.heap = store.NewBlockHeap(lo, hi-lo, n.opts.BlockSize)
		for b := lo; b < hi; b++ {
			cs.blockOK[uint32(b)] = fresh
		}
	}
	st.coord[shard] = cs
	return cs
}

// mgFor returns the memgest state, or nil when unknown.
func (n *Node) mgFor(id proto.MemgestID) *mgState {
	return n.mg[id]
}

// installConfig applies a configuration, creating role state for new
// assignments and scheduling recovery for roles taken over from failed
// nodes. bootstrap suppresses recovery (initial cluster construction).
func (n *Node) installConfig(cfg *proto.Config, bootstrap bool) {
	prev := n.cfg
	n.cfg = cfg
	n.prev = prev
	if cfg.Leader == n.id {
		// Seed liveness tracking so freshly learned nodes are not
		// instantly declared dead.
		for _, id := range cfg.AllNodes() {
			if _, ok := n.lastAck[id]; !ok {
				n.lastAck[id] = n.now
			}
		}
		// Memgest IDs continue above anything in the config.
		for _, mi := range cfg.Memgests {
			if mi.ID >= n.nextMgID {
				n.nextMgID = mi.ID + 1
			}
		}
	}

	// Drop state (and counters) for memgests that no longer exist. The
	// durable shards are voided too: replaying them in a later life
	// would resurrect a deleted memgest.
	for id := range n.mg {
		if cfg.Memgest(id) == nil {
			n.resetMgDurable(n.mg[id])
			delete(n.mg, id)
			delete(n.Metrics.mg, id)
		}
	}

	needsRecovery := false
	for _, mi := range cfg.Memgests {
		existedBefore := prev != nil && prev.Memgest(mi.ID) != nil
		st := n.mg[mi.ID]
		if st == nil {
			st = n.newMgState(mi)
			n.mg[mi.ID] = st
		} else {
			st.info = mi
		}

		// Coordinator roles.
		for shard := uint32(0); int(shard) < len(cfg.Coords); shard++ {
			if cfg.Coords[shard] != n.id {
				// Lost the role (shouldn't happen in this design except
				// via memgest deletion); drop any stale state, durable
				// state included.
				if _, ok := st.coord[shard]; ok {
					delete(st.coord, shard)
					n.persistReset(mi.ID, shard)
				}
				continue
			}
			if _, ok := st.coord[shard]; ok {
				continue
			}
			takeover := existedBefore && !bootstrap
			cs := n.newCoordShard(st, shard, !takeover)
			if takeover {
				needsRecovery = true
				since := n.installCoordStash(st, cs)
				n.startMetaRecovery(mi.ID, shard, roleCoordinator, since)
				n.scheduleDataRecovery(st, cs)
			}
		}

		// Redundancy roles.
		switch mi.Scheme.Kind {
		case proto.SchemeSRS:
			pidx := -1
			for i, p := range parityNodes(&mi) {
				if p == n.id {
					pidx = i
					break
				}
			}
			st.parityIdx = pidx
			if pidx >= 0 && st.parity == nil {
				st.parity = store.NewParityRegion(st.layout.Stripes(), n.opts.BlockSize)
				for shard := 0; shard < mi.Scheme.S; shard++ {
					st.rmeta[uint32(shard)] = store.NewMetaTable()
				}
				if existedBefore && !bootstrap {
					needsRecovery = true
					for shard := 0; shard < mi.Scheme.S; shard++ {
						since := n.installRedundantStash(st, uint32(shard))
						n.startMetaRecovery(mi.ID, uint32(shard), roleParity, since)
					}
					n.scheduleParityRebuild(st)
				}
			}
		case proto.SchemeRep:
			for shard := uint32(0); int(shard) < len(cfg.Coords); shard++ {
				isReplica := false
				for _, r := range replicaSet(cfg, &mi, shard) {
					if r == n.id {
						isReplica = true
						break
					}
				}
				if !isReplica {
					continue
				}
				if _, ok := st.rmeta[shard]; ok {
					continue
				}
				st.rmeta[shard] = store.NewMetaTable()
				if existedBefore && !bootstrap {
					needsRecovery = true
					since := n.installRedundantStash(st, shard)
					n.startMetaRecovery(mi.ID, shard, roleReplica, since)
				}
			}
		}
	}
	if needsRecovery {
		n.serving = false
	}
	if n.rejoining {
		for _, id := range cfg.AllNodes() {
			if id == n.id {
				// The leader re-admitted us: leave quarantine. Usually we
				// come back as a role-less spare and serve immediately;
				// if no spare was free we kept our old roles and the
				// takeover recovery scheduled above re-fetches their
				// state (serving stays false until it completes).
				n.rejoining = false
				n.joinAttempts = 0
				n.serving = !needsRecovery
				break
			}
		}
	}
	// Durable shards no installed role claimed are voided: either the
	// leader re-admitted us into different roles, or a role moved while
	// we were down. Keeping them would resurrect stale state next life.
	if n.durStash != nil && !n.rejoining {
		n.resetUnconsumedStash()
	}
	// A pending leave fence is void if another configuration overtook
	// it; open scheme-transition windows were planned against the
	// previous configuration — abort and relaunch any the change
	// invalidated.
	n.abandonResize(cfg)
	n.replanConverts()
}

// ownedShards returns the shards this node currently coordinates.
func (n *Node) ownedShards() []uint32 {
	var out []uint32
	for i, c := range n.cfg.Coords {
		if c == n.id {
			out = append(out, uint32(i))
		}
	}
	return out
}

// String renders the node's role summary for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("node %d (epoch %d, leader=%v, serving=%v, shards=%v)",
		n.id, n.cfg.Epoch, n.IsLeader(), n.serving, n.ownedShards())
}
