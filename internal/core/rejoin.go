package core

import (
	"sort"
	"time"

	"ring/internal/proto"
	"ring/internal/store"
)

// This file implements the crash-restart half of the membership
// protocol: a node that comes back after a crash has lost its entire
// in-memory state (the paper's servers are volatile stores), so it
// must not resume any role it still holds in the configuration. It
// boots in a quarantined "rejoining" state, announces itself with a
// Join message, and waits for the leader to strip its stale roles and
// re-admit it as a spare. The chaos harness (internal/sim, cmd/
// ringchaos) exercises this path continuously.

// NewRejoining creates a node restarting after a crash with empty
// state. It knows only the (possibly stale) configuration it booted
// from — used purely to locate peers — and installs no data roles
// from it. Until a leader re-admits it via ConfigPush it drops all
// replication, recovery, and membership traffic (an amnesiac replica
// acking appends would silently weaken quorums) and answers client
// operations with StRetry.
func NewRejoining(id proto.NodeID, cfg *proto.Config, opts Options) *Node {
	n := &Node{
		id:             id,
		opts:           opts.Defaults(),
		cfg:            cfg,
		vol:            make(map[uint32]*store.VolatileIndex),
		mg:             make(map[proto.MemgestID]*mgState),
		lastAck:        make(map[proto.NodeID]time.Duration),
		recovering:     make(map[proto.ReqID]*metaRecovery),
		blockRecs:      make(map[proto.ReqID]*blockRecovery),
		dataRecs:       make(map[proto.ReqID]*dataRecovery),
		parityRebuilds: make(map[proto.ReqID]*parityRebuild),
		bgTasks0:       make(map[proto.ReqID]bgTask),
		converting:     make(map[convKey]*convState),
		bulkConverts:   make(map[string]*bulkConvert),
		rejoining:      true,
		nextReq:        1,
		nextMgID:       1,
		Metrics:        newNodeMetrics(),
	}
	return n
}

// Rejoining reports whether the node is quarantined awaiting
// re-admission.
func (n *Node) Rejoining() bool { return n.rejoining }

// handleRejoining is the restricted message dispatch of a quarantined
// node: configuration pushes are processed (they are how the node is
// re-admitted), client operations get StRetry so callers re-resolve
// and retry, and everything else — heartbeats, replication traffic,
// recovery fetches addressed to state this node no longer has — is
// dropped on the floor.
func (n *Node) handleRejoining(from string, msg proto.Message) {
	switch m := msg.(type) {
	case *proto.ConfigPush:
		n.handleConfigPush(from, m)
	case *proto.Resolve:
		// The boot config is stale but still routes the client to live
		// nodes; a wrong coordinator answers StWrongNode and the client
		// re-resolves.
		n.send(from, &proto.ResolveReply{Req: m.Req, Config: n.cfg.Clone()})
	case *proto.Put:
		n.send(from, &proto.PutReply{Req: m.Req, Status: proto.StRetry})
	case *proto.Get:
		n.send(from, &proto.GetReply{Req: m.Req, Status: proto.StRetry})
	case *proto.Delete:
		n.send(from, &proto.DeleteReply{Req: m.Req, Status: proto.StRetry})
	case *proto.Move:
		n.send(from, &proto.MoveReply{Req: m.Req, Status: proto.StRetry})
	case *proto.Convert:
		n.send(from, &proto.ConvertReply{Req: m.Req, Status: proto.StRetry})
	case *proto.Resize:
		n.send(from, &proto.ResizeReply{Req: m.Req, Status: proto.StRetry})
	case *proto.CreateMemgest:
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
	case *proto.DeleteMemgest:
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
	case *proto.SetDefault:
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
	case *proto.GetDescriptor:
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
	}
}

// joinTick periodically re-announces a rejoining node: first to the
// leader of its boot configuration, then round-robin over every other
// known peer (the boot leader may itself be dead). Join is idempotent
// on the receiving side, so re-sending until a ConfigPush lands is
// safe.
func (n *Node) joinTick() {
	ids := n.cfg.AllNodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	peers := ids[:0:0]
	for _, id := range ids {
		if id != n.id {
			peers = append(peers, id)
		}
	}
	if len(peers) == 0 {
		return
	}
	target := n.cfg.Leader
	if target == n.id || n.joinAttempts > 0 {
		target = peers[n.joinAttempts%len(peers)]
	}
	n.joinAttempts++
	n.sendNode(target, &proto.Join{Node: n.id, Epoch: n.cfg.Epoch, Durable: n.joinDurable()})
}

// handleJoin processes a restarted node's announcement. Non-leaders
// point the joiner at the current configuration (and therefore the
// current leader). The leader strips any data roles the joiner still
// holds — its memory is gone, so those roles must be re-recovered by
// a substitute, or by the joiner itself through the normal takeover
// path if no spare is available — and re-admits it as a spare.
func (n *Node) handleJoin(from string, m *proto.Join) {
	if m.Node == n.id {
		return
	}
	if !n.IsLeader() {
		n.send(from, &proto.ConfigPush{Config: n.cfg.Clone()})
		return
	}
	if n.pendingResize != nil {
		// A leave fence owns reconfiguration; the joiner's tick-driven
		// re-announce retries after it completes.
		return
	}
	n.lastAck[m.Node] = n.now
	switch {
	case n.holdsDataRole(m.Node):
		if m.Durable {
			// Durable rejoin: the node recovered committed state from its
			// data directory, so its roles are worth keeping. Resend the
			// current configuration unchanged; the joiner installs its
			// stash under the takeover path and delta-syncs from the
			// group instead of refetching everything.
			n.sendNode(m.Node, &proto.ConfigPush{Config: n.cfg.Clone()})
			return
		}
		// Amnesiac rejoin: still assigned roles, state lost. Same
		// substitution as a detected failure, then back in as a spare,
		// all in one configuration change.
		cfg := n.cfg.Clone()
		cfg.Epoch++
		stripRoles(cfg, m.Node)
		cfg.Spares = append(cfg.Spares, m.Node)
		n.pushConfig(cfg)
	case n.inConfig(m.Node):
		// Already re-admitted (a previous ConfigPush was lost): resend.
		n.sendNode(m.Node, &proto.ConfigPush{Config: n.cfg.Clone()})
	default:
		cfg := n.cfg.Clone()
		cfg.Epoch++
		cfg.Spares = append(cfg.Spares, m.Node)
		n.pushConfig(cfg)
	}
}

// holdsDataRole reports whether id is assigned any coordinator or
// redundancy role in the current configuration.
func (n *Node) holdsDataRole(id proto.NodeID) bool {
	for _, c := range n.cfg.Coords {
		if c == id {
			return true
		}
	}
	for _, r := range n.cfg.Redundant {
		if r == id {
			return true
		}
	}
	for i := range n.cfg.Memgests {
		for _, r := range n.cfg.Memgests[i].Redundant {
			if r == id {
				return true
			}
		}
	}
	return false
}

// inConfig reports whether id appears anywhere in the configuration.
func (n *Node) inConfig(id proto.NodeID) bool {
	for _, nid := range n.cfg.AllNodes() {
		if nid == id {
			return true
		}
	}
	return false
}

// stripRoles removes every data role `dead` holds from cfg,
// substituting the first available spare (if any) — shared by
// failure-driven replacement (replaceNode) and amnesiac rejoin
// (handleJoin). With no spare the roles keep their assignment; the
// joiner will re-recover them itself through the takeover path.
func stripRoles(cfg *proto.Config, dead proto.NodeID) {
	var spare proto.NodeID = proto.NilNode
	for i, s := range cfg.Spares {
		if s != dead {
			spare = s
			cfg.Spares = append(cfg.Spares[:i], cfg.Spares[i+1:]...)
			break
		}
	}
	// If the dead node was itself a spare, just drop it.
	for i, s := range cfg.Spares {
		if s == dead {
			cfg.Spares = append(cfg.Spares[:i], cfg.Spares[i+1:]...)
			break
		}
	}
	substitute := func(ids []proto.NodeID) {
		for i, id := range ids {
			if id == dead && spare != proto.NilNode {
				ids[i] = spare
			}
		}
	}
	substitute(cfg.Coords)
	substitute(cfg.Redundant)
	for i := range cfg.Memgests {
		substitute(cfg.Memgests[i].Redundant)
	}
}
