package core

import (
	"sort"

	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/store"
)

// This file wires the durable engine (internal/replog.Durable) into
// the node state machine. Every mutation of a metadata table has a
// persist hook; the hooks only buffer (group commit), and the hosting
// runner calls SyncDurable at each event-batch boundary BEFORE any of
// the batch's outputs are transmitted — so under fsync policy
// "always", an acknowledged write is a durable write.
//
// Persist errors are sticky: after the first failed append or sync
// the node must crash-stop (fsyncgate semantics — a node that cannot
// promise durability must not keep acknowledging), which the runner
// enforces by dropping the batch's outputs and halting the node.

// SetDurable attaches a durable store to a freshly constructed node
// (empty data directory). For a node restarting over an existing data
// directory use NewRecovered instead.
func (n *Node) SetDurable(d *replog.Durable) {
	n.durable = d
}

// NewRecovered creates a node restarting after a crash WITH durable
// state recovered from its data directory. Like NewRejoining it boots
// quarantined — its roles in the current configuration are decided by
// the leader — but its Join advertises the durable state, so a leader
// re-admits it into the roles it held and the node resyncs the delta
// from the group instead of refetching everything as an empty spare.
func NewRecovered(id proto.NodeID, cfg *proto.Config, opts Options, d *replog.Durable) *Node {
	n := NewRejoining(id, cfg, opts)
	n.durable = d
	n.durStash = d.Recovered()
	return n
}

// HasDurable reports whether a durable store is attached.
func (n *Node) HasDurable() bool { return n.durable != nil }

// joinDurable reports whether the node's Join should advertise
// recovered durable state (it holds committed entries worth keeping
// its roles for).
func (n *Node) joinDurable() bool {
	for _, rs := range n.durStash {
		if len(rs.Entries) > 0 {
			return true
		}
	}
	return false
}

// SyncDurable applies the fsync policy at an event-batch boundary.
// The runner must call it BEFORE emitting the batch's outputs and
// crash-stop the node on error.
func (n *Node) SyncDurable() error {
	if n.durable == nil {
		return nil
	}
	if n.durableErr != nil {
		return n.durableErr
	}
	if err := n.durable.MaybeSync(n.now); err != nil {
		n.durableErr = err
		return err
	}
	return nil
}

// CloseDurable flushes and closes the durable store (clean shutdown;
// a crash simply skips this).
func (n *Node) CloseDurable() error {
	if n.durable == nil {
		return nil
	}
	d := n.durable
	n.durable = nil
	return d.Close()
}

// persistErr records the first durable-layer error; every later hook
// and SyncDurable observe it, so the failure surfaces at the next
// batch boundary no matter which mutation hit it.
func (n *Node) persistErr(err error) {
	if err != nil && n.durableErr == nil {
		n.durableErr = err
	}
}

func durKey(mgID proto.MemgestID, shard uint32) replog.ShardKey {
	return replog.ShardKey{Memgest: mgID, Shard: shard}
}

// durValue extracts what the durable layer should persist as the
// entry's value: Rep memgests persist the full copy; SRS memgests
// persist metadata only (block data is re-decoded from the parity
// group on recovery, per the paper's recovery protocol).
func durValue(st *mgState, e *store.Entry) ([]byte, bool) {
	if st.info.Scheme.Kind == proto.SchemeRep && e.Value != nil {
		return e.Value, true
	}
	return nil, false
}

// persistAppend records a write-ahead append (coordinator doWrite,
// replica RepAppend, parity ParityUpdate).
func (n *Node) persistAppend(st *mgState, shard uint32, e *store.Entry) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	value, hasValue := durValue(st, e)
	n.persistErr(n.durable.Append(durKey(st.info.ID, shard), e.Seq, &e.Rec, value, hasValue))
}

// persistCommit records an entry's commit.
func (n *Node) persistCommit(st *mgState, shard uint32, e *store.Entry) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	value, hasValue := durValue(st, e)
	n.persistErr(n.durable.Commit(durKey(st.info.ID, shard), e.Seq, &e.Rec, value, hasValue))
}

// persistInstall records an entry learned through recovery (already
// committed group-wide).
func (n *Node) persistInstall(st *mgState, shard uint32, e *store.Entry) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	value, hasValue := durValue(st, e)
	n.persistErr(n.durable.Install(durKey(st.info.ID, shard), e.Seq, &e.Rec, value, hasValue))
}

// persistPurge records the removal of one version.
func (n *Node) persistPurge(mgID proto.MemgestID, shard uint32, key string, ver proto.Version, seq proto.Seq) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	n.persistErr(n.durable.Purge(durKey(mgID, shard), seq, key, ver))
}

// persistConvertBegin journals the opening of a scheme-transition
// window: key is being re-encoded from srcMg into mgID as version ver.
// It is written BEFORE the destination write launches, so a crash in
// the window replays to the committed source version (the destination
// append, being uncommitted, is dropped and the open window reported
// via RecoveredShard.OpenConverts).
func (n *Node) persistConvertBegin(mgID proto.MemgestID, shard uint32, key string, ver proto.Version, srcMg proto.MemgestID) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	rec := proto.MetaRecord{Key: key, Version: ver, Memgest: srcMg}
	n.persistErr(n.durable.ConvertBegin(durKey(mgID, shard), 0, &rec))
}

// persistConvertEnd journals the closing of a transition window
// (commit or abort). On the commit path it is ordered before the ack
// escapes — the ackorder journal barrier — so an acknowledged
// transition always replays to the new scheme.
func (n *Node) persistConvertEnd(mgID proto.MemgestID, shard uint32, key string, ver proto.Version, seq proto.Seq) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	rec := proto.MetaRecord{Key: key, Version: ver}
	n.persistErr(n.durable.ConvertEnd(durKey(mgID, shard), seq, &rec))
}

// persistReset voids the durable state of a shard whose role this
// node lost — replaying it in a later life would resurrect state that
// now belongs to another node.
func (n *Node) persistReset(mgID proto.MemgestID, shard uint32) {
	if n.durable == nil || n.durableErr != nil {
		return
	}
	n.persistErr(n.durable.Reset(durKey(mgID, shard)))
}

// takeStash consumes the recovered durable state of one shard, if any.
func (n *Node) takeStash(mgID proto.MemgestID, shard uint32) *replog.RecoveredShard {
	if n.durStash == nil {
		return nil
	}
	sk := durKey(mgID, shard)
	rs := n.durStash[sk]
	if rs != nil {
		delete(n.durStash, sk)
	}
	return rs
}

// installCoordStash seeds a taken-over coordinator shard from the
// recovered durable state and returns the delta floor for the group
// sync. All stash entries are committed; SRS entries re-reserve their
// heap extents (block data itself is re-decoded in the background),
// Rep entries carry their persisted values.
func (n *Node) installCoordStash(st *mgState, cs *coordShard) proto.Seq {
	rs := n.takeStash(st.info.ID, cs.shard)
	if rs == nil {
		return 0
	}
	vol := n.volFor(cs.shard)
	for i := range rs.Entries {
		re := &rs.Entries[i]
		e := &store.Entry{Rec: re.Rec, Seq: re.Seq}
		if re.HasValue {
			e.Value = re.Value
		}
		if st.layout != nil && re.Rec.Length > 0 && !re.Rec.Tombstone {
			e.Ext = store.Extent{Block: re.Rec.LocBlock, Off: re.Rec.LocOff, Len: re.Rec.Length}
			if err := cs.heap.Reserve(e.Ext); err != nil {
				// Conflicting extent (only possible after disk damage,
				// which already forces Since == 0): let the group sync
				// re-install this entry.
				continue
			}
		}
		cs.meta.Put(e)
		vol.Add(re.Rec.Key, re.Rec.Version, st.info.ID)
	}
	// Sequences allocated in the new life must never collide with the
	// old life's (a replica matching an old seq to a new entry would
	// corrupt commit resolution).
	cs.tracker.Advance(rs.MaxSeq)
	return rs.Since
}

// installRedundantStash seeds a taken-over replica/parity metadata
// table from the recovered durable state and returns the delta floor.
func (n *Node) installRedundantStash(st *mgState, shard uint32) proto.Seq {
	rs := n.takeStash(st.info.ID, shard)
	if rs == nil {
		return 0
	}
	rt := st.rmetaFor(shard)
	for i := range rs.Entries {
		re := &rs.Entries[i]
		e := &store.Entry{Rec: re.Rec, Seq: re.Seq}
		if re.HasValue {
			e.Value = re.Value
		}
		rt.Put(e)
	}
	return rs.Since
}

// resetUnconsumedStash voids durable shards no installed role claimed
// (the leader re-admitted us as a spare, or a role moved while we were
// down). Runs once, after the re-admitting configuration installs.
func (n *Node) resetUnconsumedStash() {
	stash := n.durStash
	n.durStash = nil
	if n.durable == nil || len(stash) == 0 {
		return
	}
	sks := make([]replog.ShardKey, 0, len(stash))
	for sk := range stash {
		sks = append(sks, sk)
	}
	sort.Slice(sks, func(i, j int) bool {
		if sks[i].Memgest != sks[j].Memgest {
			return sks[i].Memgest < sks[j].Memgest
		}
		return sks[i].Shard < sks[j].Shard
	})
	for _, sk := range sks {
		n.persistErr(n.durable.Reset(sk))
	}
}

// resetMgDurable voids every durable shard of a memgest this node is
// dropping (memgest deleted, or coordinator shard reassigned).
func (n *Node) resetMgDurable(st *mgState) {
	if n.durable == nil {
		return
	}
	shards := make(map[uint32]bool)
	for shard := range st.coord {
		shards[shard] = true
	}
	for shard := range st.rmeta {
		shards[shard] = true
	}
	ordered := make([]uint32, 0, len(shards))
	for shard := range shards {
		ordered = append(ordered, shard)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, shard := range ordered {
		n.persistReset(st.info.ID, shard)
	}
}
