package core

import (
	"sort"

	"ring/internal/proto"
)

// handleTick drives all time-based behaviour of the node.
func (n *Node) handleTick() {
	if n.rejoining {
		n.joinTick()
		return
	}
	if n.IsLeader() {
		n.leaderTick()
	} else {
		n.followerTick()
	}
	n.recoveryTick()
	n.convertTick()
}

// leaderTick sends heartbeats and checks follower liveness.
func (n *Node) leaderTick() {
	for _, id := range n.cfg.AllNodes() {
		if id == n.id {
			continue
		}
		n.sendNode(id, &proto.Heartbeat{Epoch: n.cfg.Epoch})
	}
	if n.pendingResize != nil {
		// A leave fence is in flight; it owns reconfiguration until it
		// completes (failure detection would race it to the same epoch).
		n.resizeTick()
		return
	}
	// Failure detection: promote a spare for the first node that went
	// silent (one reconfiguration at a time keeps reasoning simple).
	for _, id := range n.cfg.AllNodes() {
		if id == n.id {
			continue
		}
		last, ok := n.lastAck[id]
		if !ok {
			n.lastAck[id] = n.now
			continue
		}
		if n.now-last > n.opts.FailAfter {
			n.replaceNode(id)
			return
		}
	}
}

// followerTick checks leader liveness and, if this node is the
// designated successor, takes over the leadership.
func (n *Node) followerTick() {
	if n.lastHeartbeat == 0 {
		n.lastHeartbeat = n.now
		return
	}
	if n.now-n.lastHeartbeat <= n.opts.FailAfter {
		return
	}
	// The successor is the lowest-ID node other than the dead leader.
	// Everyone evaluates the same deterministic rule; conflicting
	// configs are resolved by epoch (then leader ID) on installation.
	succ := n.successor(n.cfg.Leader)
	if succ != n.id {
		return
	}
	n.lastHeartbeat = n.now // avoid re-triggering while reconfiguring
	n.becomeLeaderAndReplace(n.cfg.Leader)
}

// successor returns the lowest node ID in the config excluding the
// given (presumed dead) node.
func (n *Node) successor(dead proto.NodeID) proto.NodeID {
	ids := n.cfg.AllNodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id != dead {
			return id
		}
	}
	return n.id
}

// becomeLeaderAndReplace assumes leadership with a bumped epoch and
// substitutes a spare for the dead node's roles.
func (n *Node) becomeLeaderAndReplace(dead proto.NodeID) {
	cfg := n.cfg.Clone()
	cfg.Epoch++
	cfg.Leader = n.id
	n.cfg = cfg
	for _, id := range cfg.AllNodes() {
		n.lastAck[id] = n.now
	}
	n.replaceNode(dead)
}

// replaceNode builds and broadcasts a new configuration in which the
// first spare takes over every role of the failed node. With no spare
// available the node is removed from the spare list only; coordinator
// and redundancy roles it held become unavailable until an operator
// adds capacity — matching the paper's deployment assumption of
// provisioned spares.
func (n *Node) replaceNode(dead proto.NodeID) {
	cfg := n.cfg.Clone()
	cfg.Epoch++
	delete(n.lastAck, dead)
	stripRoles(cfg, dead)
	n.pushConfig(cfg)
}

// pushConfig installs a new configuration locally and replicates it to
// every node (the membership log entry of Section 5.5: "the leader
// replicates an entry over the log, which consists of the new
// responsibilities for all of the nodes").
func (n *Node) pushConfig(cfg *proto.Config) {
	n.installConfig(cfg, false)
	for _, id := range cfg.AllNodes() {
		if id == n.id {
			continue
		}
		n.sendNode(id, &proto.ConfigPush{Config: cfg.Clone()})
	}
}

func (n *Node) handleHeartbeat(from string, m *proto.Heartbeat) {
	if m.Epoch < n.cfg.Epoch {
		return // stale leader
	}
	n.lastHeartbeat = n.now
	n.send(from, &proto.HeartbeatAck{Epoch: m.Epoch})
}

func (n *Node) handleHeartbeatAck(from string, m *proto.HeartbeatAck) {
	if !n.IsLeader() || m.Epoch != n.cfg.Epoch {
		return
	}
	if id, ok := parseNodeAddr(from); ok {
		n.lastAck[id] = n.now
	}
}

func (n *Node) handleConfigPush(from string, m *proto.ConfigPush) {
	if m.Config.Epoch < n.cfg.Epoch {
		return
	}
	if m.Config.Epoch == n.cfg.Epoch && !n.rejoining {
		// Same epoch: deterministic tie-break on leader ID keeps all
		// nodes convergent if two successors raced. A rejoining node
		// is exempt: its boot config may carry the current epoch (no
		// failure was ever detected), and the push is how it learns it
		// has been re-admitted.
		if m.Config.Leader >= n.cfg.Leader {
			return
		}
	}
	n.installConfig(m.Config, false)
	n.lastHeartbeat = n.now
	n.send(from, &proto.ConfigAck{Epoch: m.Config.Epoch})
}

// handleCreateMemgest processes the leader-only createMemgest request:
// validate the descriptor, place its redundancy, assign an ID, and
// replicate the new configuration.
func (n *Node) handleCreateMemgest(from string, m *proto.CreateMemgest) {
	if !n.IsLeader() {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StWrongNode})
		return
	}
	if n.pendingResize != nil {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
		return
	}
	sc := m.Scheme
	reject := func() {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StInvalid})
	}
	if err := sc.Validate(); err != nil {
		reject()
		return
	}
	s, d := len(n.cfg.Coords), len(n.cfg.Redundant)
	if sc.S != s {
		reject() // every memgest in the group shares the same s
		return
	}
	switch sc.Kind {
	case proto.SchemeSRS:
		if sc.M > d {
			reject() // d bounds the number of parity nodes
			return
		}
	case proto.SchemeRep:
		if sc.R > s+d {
			reject() // s+d bounds the replication factor
			return
		}
	}
	id := n.nextMgID
	n.nextMgID++
	cfg := n.cfg.Clone()
	cfg.Epoch++
	cfg.Memgests = append(cfg.Memgests, proto.MemgestInfo{
		ID:        id,
		Scheme:    sc,
		Redundant: append([]proto.NodeID(nil), cfg.Redundant...),
	})
	if cfg.Default == 0 {
		cfg.Default = id
	}
	n.pushConfig(cfg)
	n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StOK, Memgest: id, Scheme: sc})
}

// handleDeleteMemgest removes a memgest cluster-wide. Keys stored only
// in it become unavailable; callers are expected to have moved them.
func (n *Node) handleDeleteMemgest(from string, m *proto.DeleteMemgest) {
	if !n.IsLeader() {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StWrongNode})
		return
	}
	if n.pendingResize != nil {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
		return
	}
	if n.cfg.Memgest(m.Memgest) == nil {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StNoMemgest})
		return
	}
	cfg := n.cfg.Clone()
	cfg.Epoch++
	for i := range cfg.Memgests {
		if cfg.Memgests[i].ID == m.Memgest {
			cfg.Memgests = append(cfg.Memgests[:i], cfg.Memgests[i+1:]...)
			break
		}
	}
	if cfg.Default == m.Memgest {
		cfg.Default = 0
		if len(cfg.Memgests) > 0 {
			cfg.Default = cfg.Memgests[0].ID
		}
	}
	n.pushConfig(cfg)
	n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StOK, Memgest: m.Memgest})
}

// handleSetDefault changes the memgest used by puts without an
// explicit memgest argument.
func (n *Node) handleSetDefault(from string, m *proto.SetDefault) {
	if !n.IsLeader() {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StWrongNode})
		return
	}
	if n.pendingResize != nil {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StRetry})
		return
	}
	if n.cfg.Memgest(m.Memgest) == nil {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StNoMemgest})
		return
	}
	cfg := n.cfg.Clone()
	cfg.Epoch++
	cfg.Default = m.Memgest
	n.pushConfig(cfg)
	n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StOK, Memgest: m.Memgest})
}

// handleGetDescriptor serves a memgest's scheme from any node.
func (n *Node) handleGetDescriptor(from string, m *proto.GetDescriptor) {
	mi := n.cfg.Memgest(m.Memgest)
	if mi == nil {
		n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StNoMemgest})
		return
	}
	n.send(from, &proto.MemgestReply{Req: m.Req, Status: proto.StOK, Memgest: mi.ID, Scheme: mi.Scheme})
}
