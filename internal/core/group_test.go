package core

import (
	"fmt"
	"testing"
	"time"

	"ring/internal/metrics"
	"ring/internal/proto"
	"ring/internal/store"
	"ring/internal/transport"
)

func TestGroupOf(t *testing.T) {
	// Deterministic, in range, and independent of shard routing.
	counts := make([]int, 4)
	shardSkew := make(map[[2]int]int)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("key-%05d", i)
		g := GroupOf(key, 4)
		if g != GroupOf(key, 4) {
			t.Fatalf("GroupOf not deterministic for %q", key)
		}
		if g < 0 || g >= 4 {
			t.Fatalf("GroupOf(%q, 4) = %d out of range", key, g)
		}
		counts[g]++
		shardSkew[[2]int{g, int(store.KeyHash(key) % 4)}]++
	}
	for g, n := range counts {
		if n < 4096/4/2 || n > 4096/4*2 {
			t.Errorf("group %d holds %d of 4096 keys; distribution too skewed", g, n)
		}
	}
	// Groups must not alias shards: with 4 groups and 4 shards every
	// (group, shard) cell should be populated, which fails if group
	// routing reuses h mod s.
	for g := 0; g < 4; g++ {
		for s := 0; s < 4; s++ {
			if shardSkew[[2]int{g, s}] == 0 {
				t.Errorf("no keys land in group %d shard %d: group routing correlates with shard routing", g, s)
			}
		}
	}
	if GroupOf("anything", 1) != 0 || GroupOf("anything", 0) != 0 {
		t.Error("GroupOf must collapse to 0 for <= 1 group")
	}
}

// groupPut writes a key through one group's fabric and waits for the
// commit, returning the PutReply status.
func groupPut(t *testing.T, c *Cluster, ep transport.Endpoint, req proto.ReqID, key string) proto.Status {
	t.Helper()
	coord := NodeAddr(c.Cfg.CoordinatorOf(store.KeyHash(key)))
	msg := &proto.Put{Req: req, Key: key, Value: []byte("v-" + key), Memgest: 1}
	if err := ep.Send(coord, proto.Encode(msg)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for put %q", key)
		default:
		}
		p, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var st proto.Status
		var done bool
		_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
			if m, err := proto.Decode(enc); err == nil {
				if r, ok := m.(*proto.PutReply); ok && r.Req == req {
					st, done = r.Status, true
				}
			}
			return nil
		})
		if done {
			return st
		}
	}
}

// groupGet reads a key through one group's fabric, returning the
// GetReply status.
func groupGet(t *testing.T, c *Cluster, ep transport.Endpoint, req proto.ReqID, key string) proto.Status {
	t.Helper()
	coord := NodeAddr(c.Cfg.CoordinatorOf(store.KeyHash(key)))
	if err := ep.Send(coord, proto.Encode(&proto.Get{Req: req, Key: key})); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for get %q", key)
		default:
		}
		p, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var st proto.Status
		var done bool
		_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
			if m, err := proto.Decode(enc); err == nil {
				if r, ok := m.(*proto.GetReply); ok && r.Req == req {
					st, done = r.Status, true
				}
			}
			return nil
		})
		if done {
			return st
		}
	}
}

func TestGroupClusterShardsKeys(t *testing.T) {
	spec := ClusterSpec{
		Shards: 3, Redundant: 2,
		Memgests: []proto.Scheme{proto.Rep(3, 3)},
		Opts:     Options{HeartbeatEvery: time.Minute, FailAfter: 10 * time.Minute},
	}
	gc, err := StartGroupCluster(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Stop()
	if len(gc.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(gc.Groups))
	}

	eps := make([]transport.Endpoint, len(gc.Groups))
	for g, c := range gc.Groups {
		ep, err := c.Fabric.Register("client/t")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[g] = ep
	}

	// Route 32 keys by GroupOf and write each through its group.
	keyGroup := make(map[string]int)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("gk-%03d", i)
		g := gc.GroupFor(key)
		keyGroup[key] = g
		if st := groupPut(t, gc.Groups[g], eps[g], proto.ReqID(i+1), key); st != proto.StOK {
			t.Fatalf("put %q via group %d: %v", key, g, st)
		}
	}

	// Each key is readable through its own group and absent from the
	// other — groups are fully independent deployments.
	req := proto.ReqID(1000)
	for key, g := range keyGroup {
		for gi, c := range gc.Groups {
			req++
			st := groupGet(t, c, eps[gi], req, key)
			if gi == g && st != proto.StOK {
				t.Errorf("key %q via its group %d: %v, want OK", key, gi, st)
			}
			if gi != g && st != proto.StNotFound {
				t.Errorf("key %q leaked into group %d: %v, want NotFound", key, gi, st)
			}
		}
	}

	// The parallelism is observable: one runner goroutine per node per
	// group, and a queue-depth gauge per group.
	snap := metrics.Default.Snapshot()
	if got := snap["core.runner_goroutines"].(int64); got < int64(2*len(gc.Groups[0].Runs)) {
		t.Errorf("core.runner_goroutines = %d, want >= %d", got, 2*len(gc.Groups[0].Runs))
	}
	for g := range gc.Groups {
		name := fmt.Sprintf("core.group.%d.queue_depth", g)
		if _, ok := snap[name].(int64); !ok {
			t.Errorf("gauge %s missing from process registry (have %T)", name, snap[name])
		}
	}
}
