package core

import (
	"fmt"

	"ring/internal/metrics"
	"ring/internal/store"
)

// Memgest-group sharding (ROADMAP: saturate real cores).
//
// A Ring node is a deliberately single-threaded state machine, so one
// group of memgests can use at most one core per node. Groups are
// mutually independent by construction — no message, stripe, or
// recovery action ever crosses a group boundary — which makes them
// the natural unit of parallelism: a deployment runs G complete,
// independent group instances and partitions the key space between
// them with a second hash. Each group keeps its own fabric, nodes,
// runner goroutines, and configuration epochs; a process hosting one
// ringd node of G groups therefore runs G runner goroutines and
// saturates up to G cores while every per-node invariant (and the
// zero-alloc pins on drain/dispatch/flush) is untouched.

// groupMix is the 64-bit finalizer of MurmurHash3. Shard routing
// inside a group already uses h(key) mod s on the same FNV hash, so
// group routing must decorrelate from it: the finalizer's avalanche
// makes group and shard choice independent even when G shares factors
// with s.
const groupMix = 0xff51afd7ed558ccd

// GroupOf routes a key to one of `groups` independent memgest groups.
// Every client of a sharded deployment must use this same mapping.
//
//ring:hotpath
func GroupOf(key string, groups int) int {
	if groups <= 1 {
		return 0
	}
	h := store.KeyHash(key)
	h ^= h >> 33
	h *= groupMix
	h ^= h >> 33
	return int(h % uint64(groups))
}

// GroupCluster is an embedded sharded deployment: G independent
// in-process clusters, each with its own memnet fabric and runner
// goroutines, with keys partitioned by GroupOf.
type GroupCluster struct {
	Groups []*Cluster
}

// StartGroupCluster boots `groups` independent clusters of the same
// spec and registers their queue-depth gauges. groups < 1 selects 1.
func StartGroupCluster(spec ClusterSpec, groups int) (*GroupCluster, error) {
	if groups < 1 {
		groups = 1
	}
	gc := &GroupCluster{}
	for g := 0; g < groups; g++ {
		c, err := StartCluster(spec)
		if err != nil {
			gc.Stop()
			return nil, err
		}
		gc.Groups = append(gc.Groups, c)
		runners := make([]*Runner, 0, len(c.Runs))
		for _, r := range c.Runs {
			runners = append(runners, r)
		}
		RegisterGroupQueueGauge(g, runners)
	}
	return gc, nil
}

// GroupFor returns the group index responsible for key.
func (gc *GroupCluster) GroupFor(key string) int {
	return GroupOf(key, len(gc.Groups))
}

// Stop shuts down every group.
func (gc *GroupCluster) Stop() {
	for _, c := range gc.Groups {
		c.Stop()
	}
}

// RegisterGroupQueueGauge exposes the summed inbox backlog of one
// group's runners as core.group.<g>.queue_depth in the process
// registry (scraped through /debug/ringvars and `ringctl stats`).
// Call it once per hosted group with the runners the process owns.
func RegisterGroupQueueGauge(group int, runners []*Runner) {
	rs := append([]*Runner(nil), runners...)
	metrics.Default.Register(
		fmt.Sprintf("core.group.%d.queue_depth", group),
		metrics.GaugeFunc(func() int64 {
			var sum int64
			for _, r := range rs {
				sum += int64(r.InboxDepth())
			}
			return sum
		}))
}
