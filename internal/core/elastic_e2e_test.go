package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/store"
	"ring/internal/testutil"
)

// This file holds the end-to-end elasticity tests: kill -9 at each
// phase of a scheme transition must recover to exactly the old or the
// new scheme (never a hybrid), and join/leave must move only the
// computed-minimal placement slots, as reported by the movement
// counters.
//
// The transition crash matrix, by journal state at the kill:
//
//	before ConvertBegin   — nothing happened; trivially the old scheme.
//	window open           — ConvertBegin journaled, destination write
//	                        uncommitted: recovery drops the uncommitted
//	                        append and replays the committed source
//	                        version (TestConvertKillMidWindowRecoversOld).
//	after ConvertEnd      — the journal barrier ordered ConvertEnd
//	                        before the ack escaped, so an acknowledged
//	                        transition replays to the new scheme
//	                        (TestConvertKillAfterCommitRecoversNew).

func (c *durClient) convert(addr string, req proto.ReqID, key string, to proto.MemgestID) *proto.ConvertReply {
	c.t.Helper()
	m := c.rpc(addr, &proto.Convert{Req: req, Key: key, To: to}, func(m proto.Message) bool {
		r, ok := m.(*proto.ConvertReply)
		return ok && r.Req == req
	})
	return m.(*proto.ConvertReply)
}

func (c *durClient) resize(addr string, req proto.ReqID, op proto.ResizeOp, node proto.NodeID) *proto.ResizeReply {
	c.t.Helper()
	m := c.rpc(addr, &proto.Resize{Req: req, Op: op, Node: node}, func(m proto.Message) bool {
		r, ok := m.(*proto.ResizeReply)
		return ok && r.Req == req
	})
	return m.(*proto.ResizeReply)
}

// elasticSpec is a durable cluster with two reliable memgests to
// convert between: mg1 Rep(3,3) and mg2 SRS(2,1,3). Failure detection
// is effectively off so kill/restart cycles exercise the durable
// rejoin path, not role substitution.
func elasticSpec(t *testing.T) ClusterSpec {
	return ClusterSpec{
		Shards: 3, Redundant: 2, Spares: 1,
		Memgests: []proto.Scheme{proto.Rep(3, 3), proto.SRS(2, 1, 3)},
		Opts: Options{
			BlockSize:      16 << 10,
			HeartbeatEvery: 20 * time.Millisecond,
			FailAfter:      10 * time.Minute,
		},
		TickEvery:   2 * time.Millisecond,
		DataDir:     t.TempDir(),
		DurableOpts: replog.DurableOptions{Policy: replog.FsyncAlways},
	}
}

// pickVictimKey finds a non-leader coordinator and a key it owns.
func pickVictimKey(t *testing.T, cl *Cluster) (proto.NodeID, string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("conv-key-%d", i)
		coord := cl.Cfg.CoordinatorOf(store.KeyHash(key))
		if coord != cl.Cfg.Leader {
			return coord, key
		}
	}
	t.Fatal("no key hashing to a non-leader coordinator")
	return proto.NilNode, ""
}

// TestConvertKillAfterCommitRecoversNew crashes the coordinator right
// after a transition acknowledged. The ConvertEnd journal record was
// fsynced before the ack escaped, so the restarted node must serve the
// key from the new scheme.
func TestConvertKillAfterCommitRecoversNew(t *testing.T) {
	cl, err := StartCluster(elasticSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := newDurClient(t, cl)
	victim, key := pickVictimKey(t, cl)
	addr := NodeAddr(victim)

	val := bytes.Repeat([]byte("conv"), 300)
	c.put(addr, 1, key, val)
	r := c.convert(addr, 2, key, 2)
	if r.Status != proto.StOK {
		t.Fatalf("convert: %v", r.Status)
	}

	cl.Kill(victim)
	if err := cl.Restart(victim); err != nil {
		t.Fatal(err)
	}

	st, got := c.get(addr, 3, key)
	if st != proto.StOK || !bytes.Equal(got, val) {
		t.Fatalf("get after crash: %v %dB", st, len(got))
	}
	// The highest version must live in the destination memgest — an
	// acknowledged transition never replays to the source scheme.
	ok := testutil.Eventually(10*time.Second, 10*time.Millisecond, func() bool {
		var ref store.VersionRef
		var found bool
		cl.Runs[victim].Inspect(func(n *Node) {
			ref, found = n.volFor(n.shardOf(key)).Highest(key)
		})
		return found && ref.Memgest == 2 && ref.Version == r.Version
	})
	if !ok {
		t.Fatal("recovered key not in the destination memgest")
	}
}

// TestConvertKillMidWindowRecoversOld crashes the coordinator while a
// transition window is open: the destination is SRS(2,1,3) whose single
// parity node is dead, so the destination write can never reach quorum.
// ConvertBegin is journaled but the destination append is uncommitted;
// recovery must drop it and serve the committed source version — old
// scheme exactly, no hybrid.
func TestConvertKillMidWindowRecoversOld(t *testing.T) {
	cl, err := StartCluster(elasticSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := newDurClient(t, cl)
	victim, key := pickVictimKey(t, cl)
	addr := NodeAddr(victim)

	val := bytes.Repeat([]byte("wind"), 300)
	c.put(addr, 1, key, val)

	// SRS(2,1,3) commits only after its one parity node acked. Cut the
	// coordinator<->parity link (both stay alive and serving, so no
	// recovery interlock later) and the destination append is lost: the
	// window stays open indefinitely (the write pipeline never
	// retransmits, and the FailAfter abort is 10min away).
	parity := cl.Cfg.Redundant[0]
	vAddr, pAddr := NodeAddr(victim), NodeAddr(parity)
	cl.Fabric.SetDropFunc(func(from, to string) bool {
		return (from == vAddr && to == pAddr) || (from == pAddr && to == vAddr)
	})

	// Fire the convert without waiting for a reply (none will come) and
	// wait for the window to register on the coordinator.
	if err := c.ep.Send(addr, proto.Encode(&proto.Convert{Req: 2, Key: key, To: 2})); err != nil {
		t.Fatal(err)
	}
	open := testutil.Eventually(10*time.Second, 5*time.Millisecond, func() bool {
		var windows int
		cl.Runs[victim].Inspect(func(n *Node) { windows = len(n.converting) })
		return windows == 1
	})
	if !open {
		t.Fatal("transition window never opened")
	}

	// kill -9 with the window open, heal the link, restart. Every peer
	// is alive and serving, so the victim's recovery completes.
	cl.Kill(victim)
	cl.Fabric.SetDropFunc(nil)
	if err := cl.Restart(victim); err != nil {
		t.Fatal(err)
	}

	st, got := c.get(addr, 3, key)
	if st != proto.StOK || !bytes.Equal(got, val) {
		t.Fatalf("get after mid-window crash: %v %dB", st, len(got))
	}
	// Never hybrid: the recovered index holds exactly the committed
	// source version; no trace of the uncommitted destination write.
	cl.Runs[victim].Inspect(func(n *Node) {
		refs := n.volFor(n.shardOf(key)).All(key)
		if len(refs) != 1 || refs[0].Memgest != 1 {
			t.Errorf("recovered versions %v, want exactly one in memgest 1", refs)
		}
		if len(n.converting) != 0 {
			t.Error("transition window survived the crash")
		}
	})
}

// TestResizeLeaveJoinMinimalMovement drives a graceful leave of a
// coordinator and a join re-admitting it, asserting the protocol's
// minimal-movement contract: leave moves exactly the placement slots
// the departing node held (reported by the reply and the ShardsMoved
// counter), join moves zero.
func TestResizeLeaveJoinMinimalMovement(t *testing.T) {
	spec := elasticSpec(t)
	spec.Spares = 2
	spec.DataDir = "" // membership test: durability is irrelevant here
	cl, err := StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := newDurClient(t, cl)

	// Data on every shard so availability across the resize is checked.
	want := make(map[string][]byte)
	for i := 0; i < 9; i++ {
		key := fmt.Sprintf("rsz-key-%d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		c.put(NodeAddr(cl.Cfg.CoordinatorOf(store.KeyHash(key))), proto.ReqID(i+1), key, val)
		want[key] = val
	}

	leader := cl.Cfg.Leader
	var victim proto.NodeID = proto.NilNode
	for _, id := range cl.Cfg.Coords {
		if id != leader {
			victim = id
			break
		}
	}
	// The slots the victim holds are exactly what a minimal leave moves.
	held := uint32(0)
	for _, id := range cl.Cfg.Coords {
		if id == victim {
			held++
		}
	}
	for _, id := range cl.Cfg.Redundant {
		if id == victim {
			held++
		}
	}
	for i := range cl.Cfg.Memgests {
		for _, id := range cl.Cfg.Memgests[i].Redundant {
			if id == victim {
				held++
			}
		}
	}

	r := c.resize(NodeAddr(leader), 100, proto.ResizeLeave, victim)
	if r.Status != proto.StOK {
		t.Fatalf("leave: %v", r.Status)
	}
	if r.Moved != held {
		t.Fatalf("leave moved %d slots, want the %d the node held", r.Moved, held)
	}
	var shardsMoved uint64
	var cfgAfter *proto.Config
	cl.Runs[leader].Inspect(func(n *Node) {
		shardsMoved = n.Metrics.ShardsMoved.Load()
		cfgAfter = n.Config().Clone()
	})
	if shardsMoved != uint64(held) {
		t.Fatalf("ShardsMoved = %d, want %d", shardsMoved, held)
	}
	for _, id := range cfgAfter.AllNodes() {
		if id == victim {
			t.Fatal("departed node still in the configuration")
		}
	}

	// Every key stays readable: the substitute recovers the departed
	// coordinator's shard, everything else never moved.
	for key, val := range want {
		addr := NodeAddr(cfgAfter.CoordinatorOf(store.KeyHash(key)))
		st, got := c.get(addr, proto.ReqID(200+len(key)), key)
		if st != proto.StOK || !bytes.Equal(got, val) {
			t.Fatalf("get %q after leave: %v", key, st)
		}
	}

	// Join the node back: zero movement, spare role only.
	r2 := c.resize(NodeAddr(leader), 300, proto.ResizeJoin, victim)
	if r2.Status != proto.StOK {
		t.Fatalf("join: %v", r2.Status)
	}
	if r2.Moved != 0 {
		t.Fatalf("join moved %d slots, want 0", r2.Moved)
	}
	if r2.Epoch <= r.Epoch {
		t.Fatalf("join epoch %d not past leave epoch %d", r2.Epoch, r.Epoch)
	}
	cl.Runs[leader].Inspect(func(n *Node) {
		if n.Metrics.ShardsMoved.Load() != uint64(held) {
			t.Error("join changed the ShardsMoved counter")
		}
		spare := false
		for _, id := range n.Config().Spares {
			spare = spare || id == victim
		}
		if !spare {
			t.Error("rejoined node is not a spare")
		}
	})
}
