package core

import (
	"ring/internal/metrics"
	"ring/internal/proto"
)

// MemgestMetrics counts client operations actually executed against one
// memgest. Ops are counted only after routing, serving, and memgest
// resolution succeed — a scripted workload of N puts therefore shows
// exactly N here, never N plus redirects.
type MemgestMetrics struct {
	Puts     metrics.Counter
	Gets     metrics.Counter
	Deletes  metrics.Counter
	Moves    metrics.Counter
	Converts metrics.Counter
	Commits  metrics.Counter
}

// NodeMetrics is a node's always-on instrumentation. Counters and
// histograms are atomic (readable by a scraper at any time); the trace
// ring and the per-memgest map follow the node's single-threaded
// discipline and must be read under the runner lock (Runner.Inspect).
//
// It deliberately lives beside, not inside, Stats: Stats is copied by
// value in the simulator's accounting, which atomics would forbid.
type NodeMetrics struct {
	// Events counts state-machine message dispatches; Ticks counts
	// timer dispatches.
	Events metrics.Counter
	Ticks  metrics.Counter
	// MsgsOut and PacketsOut measure runner send coalescing: messages
	// emitted by the state machine vs. packets actually transmitted
	// after per-destination batching.
	MsgsOut    metrics.Counter
	PacketsOut metrics.Counter
	// InboxHighWater is the largest backlog one drain pass consumed.
	InboxHighWater metrics.MaxGauge
	// CommitRep and CommitSRS hold commit latency (write arrival to
	// quorum commit) split by scheme class.
	CommitRep metrics.Histogram
	CommitSRS metrics.Histogram
	// RecoveryBacklog is the current background recovery queue depth
	// (queued + in flight); it drains to zero as a failover heals.
	RecoveryBacklog metrics.Gauge
	// ShardsMoved counts placement slots the leader actually reassigned
	// across resizes — the minimal-movement metric the elasticity tests
	// assert on (a join moves zero; a leave moves only the departing
	// node's slots).
	ShardsMoved metrics.Counter
	// ConvertsReplanned counts transition windows aborted and relaunched
	// because a configuration change invalidated their in-flight
	// destination write.
	ConvertsReplanned metrics.Counter
	// ConvertsAborted counts transition windows the timeout closed
	// because their destination write lost an append or ack to the
	// network (the caller retries the conversion).
	ConvertsAborted metrics.Counter

	// Trace is the per-op trace ring (runner-lock discipline).
	Trace *metrics.TraceRing

	// mg holds per-memgest op counters, maintained by installConfig so
	// the hot path dereferences a cached pointer, never this map.
	mg map[proto.MemgestID]*MemgestMetrics
}

func newNodeMetrics() *NodeMetrics {
	return &NodeMetrics{
		Trace: metrics.NewTraceRing(256),
		mg:    make(map[proto.MemgestID]*MemgestMetrics),
	}
}

// mgMetrics returns (creating if needed) the counters of a memgest.
// Counters survive reconfigurations that keep the memgest alive.
func (m *NodeMetrics) mgMetrics(id proto.MemgestID) *MemgestMetrics {
	mm, ok := m.mg[id]
	if !ok {
		mm = &MemgestMetrics{}
		m.mg[id] = mm
	}
	return mm
}

// MemgestOpCounts is the JSON-ready copy of one memgest's counters.
type MemgestOpCounts struct {
	Puts     uint64 `json:"puts"`
	Gets     uint64 `json:"gets"`
	Deletes  uint64 `json:"deletes"`
	Moves    uint64 `json:"moves"`
	Converts uint64 `json:"converts"`
	Commits  uint64 `json:"commits"`
}

// Add accumulates another count set (for cluster-wide aggregation).
func (c *MemgestOpCounts) Add(o MemgestOpCounts) {
	c.Puts += o.Puts
	c.Gets += o.Gets
	c.Deletes += o.Deletes
	c.Moves += o.Moves
	c.Converts += o.Converts
	c.Commits += o.Commits
}

// MetricsSnapshot is a point-in-time copy of a node's instrumentation,
// shaped for /debug/ringvars and ringctl aggregation.
type MetricsSnapshot struct {
	Events          uint64                              `json:"events"`
	Ticks           uint64                              `json:"ticks"`
	MsgsOut         uint64                              `json:"msgs_out"`
	PacketsOut      uint64                              `json:"packets_out"`
	InboxHighWater  int64                               `json:"inbox_high_water"`
	RecoveryBacklog int64                               `json:"recovery_backlog"`
	ShardsMoved     uint64                              `json:"shards_moved"`
	ConvertsRepl    uint64                              `json:"converts_replanned"`
	ConvertsAborted uint64                              `json:"converts_aborted"`
	CommitRep       metrics.HistSnapshot                `json:"commit_latency_rep"`
	CommitSRS       metrics.HistSnapshot                `json:"commit_latency_srs"`
	Stats           Stats                               `json:"stats"`
	Memgests        map[proto.MemgestID]MemgestOpCounts `json:"memgests"`
	TraceRecorded   uint64                              `json:"trace_recorded"`
}

// MetricsSnapshot copies the node's instrumentation. Like every Node
// method it must run on the node's event goroutine or under its
// runner's Inspect.
func (n *Node) MetricsSnapshot() MetricsSnapshot {
	m := n.Metrics
	s := MetricsSnapshot{
		Events:          m.Events.Load(),
		Ticks:           m.Ticks.Load(),
		MsgsOut:         m.MsgsOut.Load(),
		PacketsOut:      m.PacketsOut.Load(),
		InboxHighWater:  m.InboxHighWater.Load(),
		RecoveryBacklog: m.RecoveryBacklog.Load(),
		ShardsMoved:     m.ShardsMoved.Load(),
		ConvertsRepl:    m.ConvertsReplanned.Load(),
		ConvertsAborted: m.ConvertsAborted.Load(),
		CommitRep:       m.CommitRep.Snapshot(),
		CommitSRS:       m.CommitSRS.Snapshot(),
		Stats:           n.Stats,
		Memgests:        make(map[proto.MemgestID]MemgestOpCounts, len(m.mg)),
		TraceRecorded:   m.Trace.Recorded(),
	}
	for id, mm := range m.mg {
		s.Memgests[id] = MemgestOpCounts{
			Puts:     mm.Puts.Load(),
			Gets:     mm.Gets.Load(),
			Deletes:  mm.Deletes.Load(),
			Moves:    mm.Moves.Load(),
			Converts: mm.Converts.Load(),
			Commits:  mm.Commits.Load(),
		}
	}
	return s
}

// TraceLast copies out the node's most recent n trace entries (same
// calling discipline as MetricsSnapshot).
func (n *Node) TraceLast(count int) []metrics.TraceEntry {
	return n.Metrics.Trace.Last(count)
}
