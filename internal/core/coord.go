package core

import (
	"strconv"
	"strings"
	"time"

	"ring/internal/metrics"
	"ring/internal/proto"
	"ring/internal/store"
)

// parseNodeAddr extracts the node ID from a "node/<id>" address.
func parseNodeAddr(addr string) (proto.NodeID, bool) {
	rest, ok := strings.CutPrefix(addr, "node/")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(rest, 10, 32)
	if err != nil {
		return 0, false
	}
	return proto.NodeID(v), true
}

// blockWaiter is a request parked on an SRS block recovery.
type blockWaiter struct {
	client  string
	req     proto.ReqID
	key     string
	version proto.Version
	kind    replyKind // replyNone => parked get; replyMove => parked move
	dst     proto.MemgestID
}

// resolveMemgest maps a request's memgest field (0 = default) to the
// memgest info, or nil.
func (n *Node) resolveMemgest(id proto.MemgestID) *proto.MemgestInfo {
	if id == 0 {
		id = n.cfg.Default
	}
	return n.cfg.Memgest(id)
}

// checkClientOp performs the routing checks shared by all client data
// operations and returns the shard, or false after queuing an error
// reply built by fail.
func (n *Node) checkClientOp(key string, fail func(proto.Status)) (uint32, bool) {
	if len(n.cfg.Coords) == 0 {
		fail(proto.StUnavailable)
		return 0, false
	}
	shard := n.shardOf(key)
	if !n.coordinates(shard) {
		fail(proto.StWrongNode)
		return 0, false
	}
	if !n.serving {
		fail(proto.StRetry)
		return 0, false
	}
	return shard, true
}

// handlePut coordinates a client write.
//
//ring:handler
func (n *Node) handlePut(from string, m *proto.Put) {
	n.Stats.Puts++
	fail := func(s proto.Status) { n.send(from, &proto.PutReply{Req: m.Req, Status: s}) }
	shard, ok := n.checkClientOp(m.Key, fail)
	if !ok {
		return
	}
	if n.parkOnConvert(shard, m.Key, from, m) {
		return
	}
	mi := n.resolveMemgest(m.Memgest)
	if mi == nil {
		fail(proto.StNoMemgest)
		return
	}
	n.doWrite(from, m.Req, replyPut, shard, m.Key, m.Value, mi.ID, false)
}

// handleDelete coordinates a client delete (a tombstone write).
//
//ring:handler
func (n *Node) handleDelete(from string, m *proto.Delete) {
	n.Stats.Deletes++
	fail := func(s proto.Status) { n.send(from, &proto.DeleteReply{Req: m.Req, Status: s}) }
	shard, ok := n.checkClientOp(m.Key, fail)
	if !ok {
		return
	}
	if n.parkOnConvert(shard, m.Key, from, m) {
		return
	}
	// A delete is a tombstone put into the memgest currently holding
	// the key's highest version (metadata suffices; no value). A key
	// whose newest version is already a tombstone is absent.
	ref, found := n.volFor(shard).Highest(m.Key)
	if !found {
		fail(proto.StNotFound)
		return
	}
	if e := n.lookupEntry(shard, m.Key, ref); e == nil || e.Rec.Tombstone {
		fail(proto.StNotFound)
		return
	}
	n.doWrite(from, m.Req, replyDelete, shard, m.Key, nil, ref.Memgest, true)
}

// doWrite runs the write-ahead, replicate, commit pipeline shared by
// put, delete (tombstone), and the local half of move and convert. It
// reports whether the write was actually launched (false means an
// error reply was already sent) so the convert path can close its
// journal window on a synchronous failure.
func (n *Node) doWrite(replyTo string, req proto.ReqID, kind replyKind, shard uint32, key string, value []byte, mgID proto.MemgestID, tombstone bool) bool {
	st := n.mgFor(mgID)
	if st == nil {
		n.replyStatus(replyTo, req, kind, proto.StNoMemgest, 0)
		return false
	}
	cs := st.coord[shard]
	if cs == nil {
		n.replyStatus(replyTo, req, kind, proto.StWrongNode, 0)
		return false
	}
	// Count the op against its memgest only now, with routing and
	// memgest resolution behind us: these counters promise to match an
	// accepted workload exactly.
	switch kind {
	case replyPut:
		st.met.Puts.Inc()
	case replyDelete:
		st.met.Deletes.Inc()
	case replyMove:
		st.met.Moves.Inc()
	case replyConvert:
		st.met.Converts.Inc()
	}
	vol := n.volFor(shard)
	var ver proto.Version = 1
	if hi, ok := vol.Highest(key); ok {
		ver = hi.Version + 1
	}
	rec := proto.MetaRecord{
		Key: key, Version: ver, Memgest: mgID,
		Tombstone: tombstone, Length: uint32(len(value)),
	}
	seq := cs.tracker.Next()
	e := &store.Entry{Rec: rec, Seq: seq}

	if n.opts.ChaosUnsafeAck {
		// Injected bug (chaos-harness validation only): acknowledge and
		// commit locally without waiting for — or even issuing — the
		// redundancy writes, the classic ack-before-quorum bug where the
		// reply path races ahead of the replication path. Every
		// acknowledged write now lives only on this coordinator, so a
		// later crash of it silently loses acked data, which the
		// linearizability checker must flag and the shrinker must reduce
		// to a minimal kill schedule.
		if st.info.Scheme.Kind == proto.SchemeSRS && !tombstone && len(value) > 0 {
			ext, err := cs.heap.Alloc(len(value))
			if err != nil {
				n.replyStatus(replyTo, req, kind, proto.StUnavailable, 0)
				return false
			}
			cs.heap.Write(ext, value)
			e.Ext = ext
			e.Rec.LocBlock = ext.Block
			e.Rec.LocOff = ext.Off
		} else if st.info.Scheme.Kind == proto.SchemeRep {
			e.Value = append([]byte(nil), value...)
		}
		cs.meta.Put(e)
		vol.Add(key, ver, mgID)
		n.persistAppend(st, shard, e)
		n.commitEntry(st, cs, key, ver, replyTo, req, kind, n.now) //ring:ackok deliberate ack-before-quorum chaos injection
		return true
	}

	// The quorum size is decided up front, before any redundancy
	// traffic is issued: every scheme owes the same answer, and the
	// commit decision below must be dominated by this bookkeeping
	// (ackorder checks exactly that).
	need := n.quorumAcks(st.info.Scheme)

	switch st.info.Scheme.Kind {
	case proto.SchemeSRS:
		if !tombstone && len(value) > 0 {
			ext, err := cs.heap.Alloc(len(value))
			if err != nil {
				n.replyStatus(replyTo, req, kind, proto.StUnavailable, 0)
				return false
			}
			if !cs.blockOK[ext.Block] {
				// The target block has not been re-decoded yet after a
				// failover; writing would corrupt parity deltas.
				cs.heap.Free(ext)
				n.replyStatus(replyTo, req, kind, proto.StRetry, 0)
				return false
			}
			delta := cs.heap.Write(ext, value)
			n.Stats.BytesWritten += uint64(len(value))
			e.Ext = ext
			e.Rec.LocBlock = ext.Block
			e.Rec.LocOff = ext.Off
			stripeOff := uint32(st.layout.StripeOffset(int(ext.Block)))
			deltas := st.layout.ParityDelta(int(ext.Block), delta)
			// The coordinator performs the GF multiplications that
			// build the per-parity deltas ("data nodes are responsible
			// for calculating updates").
			n.Stats.BytesParityXor += uint64(len(delta) * st.info.Scheme.M)
			for r, pn := range parityNodes(&st.info) {
				n.sendNode(pn, &proto.ParityUpdate{
					Memgest: mgID, Shard: shard, Seq: seq, Rec: e.Rec,
					Block: ext.Block, StripeOff: stripeOff, Off: ext.Off,
					Delta: deltas[r],
				})
				n.Stats.ParityUpdates++
			}
		} else {
			// Metadata-only update (tombstone or empty value): still
			// replicated to every parity node for durability.
			for _, pn := range parityNodes(&st.info) {
				n.sendNode(pn, &proto.ParityUpdate{
					Memgest: mgID, Shard: shard, Seq: seq, Rec: e.Rec,
				})
				n.Stats.ParityUpdates++
			}
		}

	case proto.SchemeRep:
		e.Value = append([]byte(nil), value...)
		msg := &proto.RepAppend{Memgest: mgID, Shard: shard, Seq: seq, Rec: e.Rec, Value: e.Value}
		for _, rn := range replicaSet(n.cfg, &st.info, shard) {
			n.sendNode(rn, msg)
			n.Stats.RepAppends++
		}
	}

	// Write-ahead: the entry is inserted (uncommitted) before the
	// commit decision.
	cs.meta.Put(e)
	vol.Add(key, ver, mgID)
	n.persistAppend(st, shard, e)

	if need == 0 {
		// Unreliable memgests commit immediately (Rep(1,s)).
		n.commitEntry(st, cs, key, ver, replyTo, req, kind, n.now)
		return true
	}
	cs.tracker.Open(seq, need)
	cs.pending[seq] = &pendingCommit{key: key, version: ver, start: n.now, replyTo: replyTo, req: req, kind: kind}
	return true
}

// replyStatus sends the error reply appropriate for a write kind.
func (n *Node) replyStatus(replyTo string, req proto.ReqID, kind replyKind, s proto.Status, ver proto.Version) {
	switch kind {
	case replyPut:
		n.send(replyTo, &proto.PutReply{Req: req, Status: s, Version: ver})
	case replyDelete:
		n.send(replyTo, &proto.DeleteReply{Req: req, Status: s})
	case replyMove:
		n.send(replyTo, &proto.MoveReply{Req: req, Status: s, Version: ver})
	case replyConvert:
		if id, ok := strings.CutPrefix(replyTo, bulkConvPrefix); ok {
			n.bulkConvertDone(id, s)
			return
		}
		n.send(replyTo, &proto.ConvertReply{Req: req, Status: s, Version: ver})
	}
}

// commitEntry marks (key, version) committed, replies to the client,
// answers parked requests, propagates the commit to redundancy nodes,
// and garbage-collects superseded versions.
func (n *Node) commitEntry(st *mgState, cs *coordShard, key string, ver proto.Version, replyTo string, req proto.ReqID, kind replyKind, start time.Duration) {
	e := cs.meta.Get(key, ver)
	if e == nil {
		return // purged concurrently (superseded before committing)
	}
	e.Rec.Committed = true
	n.persistCommit(st, cs.shard, e)
	n.Stats.Commits++
	st.met.Commits.Inc()
	if st.info.Scheme.Kind == proto.SchemeSRS {
		n.Metrics.CommitSRS.Observe(n.now - start)
	} else {
		n.Metrics.CommitRep.Observe(n.now - start)
	}
	if op := kind.traceOp(); op != metrics.TraceNone {
		n.Metrics.Trace.Record(op, key, uint32(st.info.ID), uint64(ver), uint8(proto.StOK), n.now, n.now-start)
	}
	if kind == replyConvert {
		// Transition journal: the conversion's close record must be
		// ordered before the ack escapes (the ackorder journal barrier) —
		// a crash after the ack must replay to the new scheme, never the
		// old one.
		n.persistConvertEnd(st.info.ID, cs.shard, key, ver, e.Seq)
	}
	n.replyStatus(replyTo, req, kind, proto.StOK, ver)

	// Answer gets parked on this entry (Figure 5: replies are released
	// at commit time with this exact version).
	for _, w := range e.ParkedGets {
		n.sendValueReply(st, cs, e, w.Client, w.Req)
	}
	e.ParkedGets = nil
	moves := e.ParkedMoves
	e.ParkedMoves = nil

	// Propagate the commit so redundancy copies flip their flag.
	n.broadcastCommit(st, cs.shard, e.Seq)

	// GC versions superseded by the newest committed one.
	n.gcKey(cs.shard, key)

	// A committed conversion closes its transition window, replaying
	// any client writes parked on it.
	if kind == replyConvert {
		ck := convKey{shard: cs.shard, key: key}
		if cv := n.converting[ck]; cv != nil && cv.newVer == ver {
			n.finishConvert(ck, cv)
		}
	}

	// Parked moves proceed now that the source version is durable;
	// parked converts go through the journaled transition path.
	for _, mw := range moves {
		if mw.Convert {
			n.performConvert(mw.Client, mw.Req, cs.shard, key, mw.Dst)
		} else {
			n.performMove(mw.Client, mw.Req, cs.shard, key, mw.Dst)
		}
	}
}

// broadcastCommit notifies the memgest's redundancy nodes that seq
// committed.
func (n *Node) broadcastCommit(st *mgState, shard uint32, seq proto.Seq) {
	msg := &proto.RepCommit{Memgest: st.info.ID, Shard: shard, Seq: seq}
	if st.info.Scheme.Kind == proto.SchemeSRS {
		for _, pn := range parityNodes(&st.info) {
			n.sendNode(pn, msg)
		}
	} else {
		for _, rn := range replicaSet(n.cfg, &st.info, shard) {
			n.sendNode(rn, msg)
		}
	}
}

// gcKey removes committed versions of key that are superseded by the
// newest committed version, keeping Options.KeepVersions extras.
func (n *Node) gcKey(shard uint32, key string) {
	vol := n.volFor(shard)
	refs := vol.All(key)
	// Find the newest committed version.
	newestCommitted := -1
	for i, ref := range refs {
		if e := n.lookupEntry(shard, key, ref); e != nil && e.Rec.Committed {
			newestCommitted = i
			break
		}
	}
	if newestCommitted < 0 {
		return
	}
	keep := n.opts.KeepVersions
	kept := 0
	// With KeepDurableBackup, while the newest committed version is
	// unreliable, the newest committed *reliable* version is pinned.
	durablePinned := false
	newestIsUnreliable := false
	if n.opts.KeepDurableBackup {
		if mi := n.cfg.Memgest(refs[newestCommitted].Memgest); mi != nil {
			newestIsUnreliable = mi.Scheme.Kind == proto.SchemeRep && mi.Scheme.R == 1
		}
	}
	for _, ref := range refs[newestCommitted+1:] {
		e := n.lookupEntry(shard, key, ref)
		if e == nil || !e.Rec.Committed {
			// Uncommitted lower versions stay: they may commit later
			// and owe parked replies (then this GC runs again).
			continue
		}
		if newestIsUnreliable && !durablePinned {
			if mi := n.cfg.Memgest(ref.Memgest); mi != nil &&
				!(mi.Scheme.Kind == proto.SchemeRep && mi.Scheme.R == 1) {
				durablePinned = true
				continue // pinned reliable backup
			}
		}
		if kept < keep {
			kept++
			continue
		}
		n.purgeVersion(shard, key, ref)
	}
	// A committed tombstone that has become the key's only version
	// carries no information: the key is absent either way. Reclaim it
	// once no newer (uncommitted) versions are in flight and nothing
	// is parked on it.
	if newestCommitted == 0 && kept == 0 {
		if cur := vol.All(key); len(cur) == 1 {
			if e := n.lookupEntry(shard, key, cur[0]); e != nil &&
				e.Rec.Tombstone && e.Rec.Committed &&
				len(e.ParkedGets) == 0 && len(e.ParkedMoves) == 0 {
				n.purgeVersion(shard, key, cur[0])
			}
		}
	}
}

// lookupEntry fetches the metadata entry behind a volatile-index ref.
func (n *Node) lookupEntry(shard uint32, key string, ref store.VersionRef) *store.Entry {
	st := n.mgFor(ref.Memgest)
	if st == nil {
		return nil
	}
	cs := st.coord[shard]
	if cs == nil {
		return nil
	}
	return cs.meta.Get(key, ref.Version)
}

// purgeVersion removes one version locally and tells the memgest's
// redundancy nodes to do the same.
func (n *Node) purgeVersion(shard uint32, key string, ref store.VersionRef) {
	st := n.mgFor(ref.Memgest)
	if st == nil {
		return
	}
	cs := st.coord[shard]
	if cs == nil {
		return
	}
	e := cs.meta.Delete(key, ref.Version)
	if e == nil {
		return
	}
	n.persistPurge(ref.Memgest, shard, key, ref.Version, e.Seq)
	if e.Ext.Len > 0 && cs.heap != nil {
		cs.heap.Free(e.Ext)
	}
	n.volFor(shard).Remove(key, ref.Version)
	msg := &proto.Purge{Memgest: ref.Memgest, Shard: shard, Key: key, Version: ref.Version}
	if st.info.Scheme.Kind == proto.SchemeSRS {
		for _, pn := range parityNodes(&st.info) {
			n.sendNode(pn, msg)
		}
	} else if st.info.Scheme.R > 1 {
		for _, rn := range replicaSet(n.cfg, &st.info, shard) {
			n.sendNode(rn, msg)
		}
	}
}

func (n *Node) handleGet(from string, m *proto.Get) {
	n.Stats.Gets++
	fail := func(s proto.Status) { n.send(from, &proto.GetReply{Req: m.Req, Status: s}) }
	shard, ok := n.checkClientOp(m.Key, fail)
	if !ok {
		return
	}
	var ref store.VersionRef
	var found bool
	if m.Version == 0 {
		ref, found = n.volFor(shard).Highest(m.Key)
	} else {
		// Exact-version read: serve the requested version if it is
		// still retained (Options.KeepVersions governs retention).
		for _, r := range n.volFor(shard).All(m.Key) {
			if r.Version == m.Version {
				ref, found = r, true
				break
			}
		}
	}
	if !found {
		fail(proto.StNotFound)
		return
	}
	st := n.mgFor(ref.Memgest)
	e := n.lookupEntry(shard, m.Key, ref)
	if st == nil || e == nil {
		fail(proto.StNotFound)
		return
	}
	cs := st.coord[shard]
	st.met.Gets.Inc()
	if !e.Rec.Committed {
		// Park: the reply is released when this exact version commits
		// (Figure 5, client D).
		e.ParkedGets = append(e.ParkedGets, store.Waiter{Client: from, Req: m.Req})
		n.Stats.ParkedGets++
		return
	}
	n.sendValueReply(st, cs, e, from, m.Req)
}

// sendValueReply emits a GetReply for a committed entry, recovering
// the backing SRS block on demand if it was lost in a failover.
func (n *Node) sendValueReply(st *mgState, cs *coordShard, e *store.Entry, client string, req proto.ReqID) {
	if e.Rec.Tombstone {
		n.Metrics.Trace.Record(metrics.TraceGet, e.Rec.Key, uint32(st.info.ID), uint64(e.Rec.Version), uint8(proto.StNotFound), n.now, 0)
		n.send(client, &proto.GetReply{Req: req, Status: proto.StNotFound})
		return
	}
	var value []byte
	switch st.info.Scheme.Kind {
	case proto.SchemeRep:
		if e.Value == nil && e.Rec.Length > 0 {
			// Value lost in failover and not yet re-fetched: park on
			// data recovery.
			n.parkOnValueRecovery(st, cs, e, blockWaiter{client: client, req: req, key: e.Rec.Key, version: e.Rec.Version})
			return
		}
		value = e.Value
	case proto.SchemeSRS:
		if e.Rec.Length > 0 {
			if !cs.blockOK[e.Ext.Block] {
				n.parkOnBlockRecovery(st, cs, e.Ext.Block, blockWaiter{client: client, req: req, key: e.Rec.Key, version: e.Rec.Version})
				return
			}
			value = cs.heap.Read(e.Ext)
		}
	}
	n.Metrics.Trace.Record(metrics.TraceGet, e.Rec.Key, uint32(st.info.ID), uint64(e.Rec.Version), uint8(proto.StOK), n.now, 0)
	n.send(client, &proto.GetReply{Req: req, Status: proto.StOK, Version: e.Rec.Version, Value: value})
}

// handleMove coordinates a client move (re-put under a new memgest).
//
//ring:handler
func (n *Node) handleMove(from string, m *proto.Move) {
	n.Stats.Moves++
	fail := func(s proto.Status) { n.send(from, &proto.MoveReply{Req: m.Req, Status: s}) }
	shard, ok := n.checkClientOp(m.Key, fail)
	if !ok {
		return
	}
	if n.parkOnConvert(shard, m.Key, from, m) {
		return
	}
	if n.cfg.Memgest(m.Memgest) == nil {
		fail(proto.StNoMemgest)
		return
	}
	ref, found := n.volFor(shard).Highest(m.Key)
	if !found {
		fail(proto.StNotFound)
		return
	}
	e := n.lookupEntry(shard, m.Key, ref)
	if e == nil {
		fail(proto.StNotFound)
		return
	}
	if !e.Rec.Committed {
		// The paper: "the move request will also be postponed if the
		// requested object is not durable."
		e.ParkedMoves = append(e.ParkedMoves, store.MoveWaiter{Client: from, Req: m.Req, Dst: m.Memgest})
		return
	}
	n.performMove(from, m.Req, shard, m.Key, m.Memgest)
}

// performMove reads the durable highest version locally and re-puts it
// into the destination memgest with the next version number. No value
// crosses the network from the client; thanks to SRS co-location the
// read is purely local.
func (n *Node) performMove(client string, req proto.ReqID, shard uint32, key string, dst proto.MemgestID) {
	ref, found := n.volFor(shard).Highest(key)
	if !found {
		n.send(client, &proto.MoveReply{Req: req, Status: proto.StNotFound})
		return
	}
	st := n.mgFor(ref.Memgest)
	e := n.lookupEntry(shard, key, ref)
	if st == nil || e == nil || e.Rec.Tombstone {
		n.send(client, &proto.MoveReply{Req: req, Status: proto.StNotFound})
		return
	}
	if ref.Memgest == dst {
		// Already there: succeed without a new version. The version
		// being reported is already committed and durable, so this is
		// not an early ack.
		n.send(client, &proto.MoveReply{Req: req, Status: proto.StOK, Version: ref.Version}) //ring:ackok no-op move: the version acked is already durable
		return
	}
	cs := st.coord[shard]
	var value []byte
	switch st.info.Scheme.Kind {
	case proto.SchemeRep:
		if e.Value == nil && e.Rec.Length > 0 {
			n.parkOnValueRecovery(st, cs, e, blockWaiter{client: client, req: req, key: key, version: ref.Version, kind: replyMove, dst: dst})
			return
		}
		value = e.Value
	case proto.SchemeSRS:
		if e.Rec.Length > 0 {
			if !cs.blockOK[e.Ext.Block] {
				n.parkOnBlockRecovery(st, cs, e.Ext.Block, blockWaiter{client: client, req: req, key: key, version: ref.Version, kind: replyMove, dst: dst})
				return
			}
			value = cs.heap.Read(e.Ext)
		}
	}
	n.doWrite(client, req, replyMove, shard, key, value, dst, false)
}

// handleRepAck counts a replica's ack toward the write's quorum.
//
//ring:handler
func (n *Node) handleRepAck(from string, m *proto.RepAck) {
	id, ok := parseNodeAddr(from)
	if !ok {
		return
	}
	n.handleAck(m.Memgest, m.Shard, m.Seq, id)
}

// handleParityAck counts a parity node's ack toward the write's quorum.
//
//ring:handler
func (n *Node) handleParityAck(from string, m *proto.ParityAck) {
	id, ok := parseNodeAddr(from)
	if !ok {
		return
	}
	n.handleAck(m.Memgest, m.Shard, m.Seq, id)
}

func (n *Node) handleAck(mgID proto.MemgestID, shard uint32, seq proto.Seq, from proto.NodeID) {
	st := n.mgFor(mgID)
	if st == nil {
		return
	}
	cs := st.coord[shard]
	if cs == nil {
		return
	}
	if !cs.tracker.Ack(seq, from) {
		return
	}
	pc := cs.pending[seq]
	if pc == nil {
		return
	}
	delete(cs.pending, seq)
	n.commitEntry(st, cs, pc.key, pc.version, pc.replyTo, pc.req, pc.kind, pc.start)
}
