package core

import (
	"sort"

	"ring/internal/proto"
	"ring/internal/store"
)

// bgKind classifies background recovery work items.
type bgKind uint8

const (
	bgBlock  bgKind = iota + 1 // SRS coordinator: decode one logical block
	bgValue                    // Rep: fetch one value copy
	bgParity                   // SRS parity: rebuild one stripe's parity block
)

// bgTask is one queued background recovery item.
type bgTask struct {
	kind    bgKind
	memgest proto.MemgestID
	shard   uint32
	block   uint32 // bgBlock
	stripe  int    // bgParity
	key     string // bgValue
	version proto.Version
	replica bool // bgValue: install into the replica table, not coord
	retries int
}

const (
	maxBgInflight = 4
	maxRetries    = 16
)

// startMetaRecovery begins fetching the metadata hashtable of one
// memgest shard from the nodes that replicate it (step 5 of the
// Section 6.4 recovery sequence). since > 0 turns the fetch into a
// delta sync: the node recovered durable state up to that sequence
// and only needs what came after.
func (n *Node) startMetaRecovery(mgID proto.MemgestID, shard uint32, role recoveredRole, since proto.Seq) {
	mi := n.cfg.Memgest(mgID)
	if mi == nil {
		return
	}
	var peers []proto.NodeID
	switch role {
	case roleCoordinator:
		if mi.Scheme.Kind == proto.SchemeSRS {
			peers = parityNodes(mi)
		} else if mi.Scheme.R > 1 {
			peers = replicaSet(n.cfg, mi, shard)
		}
		// Rep(1,s): nothing replicates the shard; it restarts empty.
	case roleReplica, roleParity:
		// Redundancy copies recover from the authoritative coordinator.
		if int(shard) < len(n.cfg.Coords) {
			peers = []proto.NodeID{n.cfg.Coords[shard]}
		}
	}
	// Never fetch from ourselves.
	filtered := peers[:0:0]
	for _, p := range peers {
		if p != n.id {
			filtered = append(filtered, p)
		}
	}
	if len(filtered) == 0 {
		return
	}
	req := n.reqID()
	mr := &metaRecovery{memgest: mgID, shard: shard, role: role, since: since, waiting: make(map[proto.NodeID]bool)}
	for _, p := range filtered {
		mr.waiting[p] = true
		n.sendNode(p, &proto.MetaFetch{Req: req, Memgest: mgID, Shard: shard, Since: since})
	}
	mr.lastSent = n.now
	n.recovering[req] = mr
	n.serving = false
}

// pumpMetaRecoveries retries stalled metadata fetches and prunes peers
// that have been removed from the configuration (they died and were
// replaced); without this, a peer failing mid-recovery would wedge the
// recovering node in the non-serving state forever.
func (n *Node) pumpMetaRecoveries() {
	if len(n.recovering) == 0 {
		return
	}
	alive := make(map[proto.NodeID]bool)
	for _, id := range n.cfg.AllNodes() {
		alive[id] = true
	}
	// Iterate in request order: map order would vary run to run, and
	// replayability (ringchaos) requires every state transition and
	// message send to happen in identical order for identical seeds.
	reqs := make([]proto.ReqID, 0, len(n.recovering))
	for req := range n.recovering {
		reqs = append(reqs, req)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
	for _, req := range reqs {
		mr := n.recovering[req]
		if n.now-mr.lastSent <= n.opts.FailAfter {
			continue
		}
		for _, p := range sortedWaiting(mr.waiting) {
			if !alive[p] {
				delete(mr.waiting, p)
			}
		}
		if len(mr.waiting) == 0 {
			delete(n.recovering, req)
			n.finishMetaRecovery(mr)
			if len(n.recovering) == 0 {
				n.serving = true
			}
			continue
		}
		mr.lastSent = n.now
		for _, p := range sortedWaiting(mr.waiting) {
			n.sendNode(p, &proto.MetaFetch{Req: req, Memgest: mr.memgest, Shard: mr.shard, Since: mr.since})
		}
	}
}

// sortedWaiting returns a recovery's outstanding peers in ID order, so
// retransmits go out deterministically.
func sortedWaiting(waiting map[proto.NodeID]bool) []proto.NodeID {
	ids := make([]proto.NodeID, 0, len(waiting))
	for p := range waiting {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (n *Node) handleMetaFetchReply(from string, m *proto.MetaFetchReply) {
	mr := n.recovering[m.Req]
	if mr == nil {
		return
	}
	id, ok := parseNodeAddr(from)
	if !ok || !mr.waiting[id] {
		return
	}
	delete(mr.waiting, id)
	if m.Status == proto.StOK {
		mr.replies = append(mr.replies, m)
	}
	if len(mr.waiting) > 0 {
		return
	}
	delete(n.recovering, m.Req)
	n.finishMetaRecovery(mr)
	if len(n.recovering) == 0 {
		n.serving = true
	}
}

// finishMetaRecovery merges the fetched metadata copies and installs
// them for the recovered role, then queues background data recovery.
//
// Commit resolution: every entry present on ANY queried copy is
// treated as committed. A write-ahead entry reaches a redundancy node
// only for an operation the client either saw acknowledged (the
// quorum commit may have included exactly that node, so dropping the
// entry would lose an acked write — a violation the chaos harness
// catches as a stale read or resurrected delete) or never saw
// complete (a pending operation, which linearizability allows to take
// effect). Committing both is always safe because reads serve the
// highest committed version: a resurrected stale version is
// superseded by the newer committed version that any ack quorum
// guarantees is also in the union.
func (n *Node) finishMetaRecovery(mr *metaRecovery) {
	st := n.mgFor(mr.memgest)
	if st == nil {
		return
	}
	n.Stats.MetaRecovs++

	type merged struct {
		rec   proto.MetaRecord
		count int
	}
	union := make(map[store.EntryKey]*merged)
	for _, rep := range mr.replies {
		for _, rec := range rep.Recs {
			ek := store.EntryKey{Key: rec.Key, Version: rec.Version}
			mg, ok := union[ek]
			if !ok {
				union[ek] = &merged{rec: rec, count: 1}
				continue
			}
			mg.count++
			if rec.Committed {
				mg.rec.Committed = true
			}
		}
	}
	// Install in (key, version) order: map iteration order is random
	// per run, and it leaks into the heap-extent reservation order, the
	// background-recovery queue, and ultimately the message schedule —
	// which must be a pure function of the seed for replay to work.
	keys := make([]store.EntryKey, 0, len(union))
	for ek := range union {
		keys = append(keys, ek)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Key != keys[j].Key {
			return keys[i].Key < keys[j].Key
		}
		return keys[i].Version < keys[j].Version
	})

	for _, ek := range keys {
		mg := union[ek]
		mg.rec.Committed = true
		n.Stats.BytesMetaInstalled += uint64(len(mg.rec.Key)) + 26
	}

	switch mr.role {
	case roleCoordinator:
		cs := st.coord[mr.shard]
		if cs == nil {
			return
		}
		// A durable node delta-synced: advance the sequence allocator
		// past everything the peers have seen, so re-allocated sequences
		// never collide with the previous life's.
		for _, rep := range mr.replies {
			cs.tracker.Advance(rep.Seq)
		}
		vol := n.volFor(mr.shard)
		for _, ek := range keys {
			mg := union[ek]
			if existing := cs.meta.Get(ek.Key, ek.Version); existing != nil {
				// Already installed from the durable stash: keep its value
				// and extent, just make sure it is committed.
				if !existing.Rec.Committed {
					existing.Rec.Committed = true
					n.persistInstall(st, mr.shard, existing)
				}
				continue
			}
			e := &store.Entry{Rec: mg.rec}
			if st.layout != nil && mg.rec.Length > 0 && !mg.rec.Tombstone {
				e.Ext = store.Extent{Block: mg.rec.LocBlock, Off: mg.rec.LocOff, Len: mg.rec.Length}
				if err := cs.heap.Reserve(e.Ext); err != nil {
					// Conflicting metadata (should not happen); skip.
					continue
				}
			}
			cs.meta.Put(e)
			vol.Add(mg.rec.Key, mg.rec.Version, mr.memgest)
			n.persistInstall(st, mr.shard, e)
		}
		// Queue background data recovery.
		if st.layout != nil {
			lo, hi := st.layout.NodeBlocks(int(mr.shard))
			for b := lo; b < hi; b++ {
				n.bgQueue = append(n.bgQueue, bgTask{kind: bgBlock, memgest: mr.memgest, shard: mr.shard, block: uint32(b)})
			}
		} else if st.info.Scheme.R > 1 {
			cs.meta.Range(func(e *store.Entry) bool {
				if e.Rec.Length > 0 && !e.Rec.Tombstone {
					n.bgQueue = append(n.bgQueue, bgTask{kind: bgValue, memgest: mr.memgest, shard: mr.shard, key: e.Rec.Key, version: e.Rec.Version})
				}
				return true
			})
		}

	case roleReplica:
		rt := st.rmetaFor(mr.shard)
		for _, ek := range keys {
			mg := union[ek]
			if existing := rt.Get(ek.Key, ek.Version); existing != nil {
				if !existing.Rec.Committed {
					existing.Rec.Committed = true
					n.persistInstall(st, mr.shard, existing)
				}
				if existing.Value != nil || mg.rec.Length == 0 || mg.rec.Tombstone {
					continue
				}
				n.bgQueue = append(n.bgQueue, bgTask{kind: bgValue, memgest: mr.memgest, shard: mr.shard, key: mg.rec.Key, version: mg.rec.Version, replica: true})
				continue
			}
			e := &store.Entry{Rec: mg.rec}
			rt.Put(e)
			n.persistInstall(st, mr.shard, e)
			if mg.rec.Length > 0 && !mg.rec.Tombstone {
				n.bgQueue = append(n.bgQueue, bgTask{kind: bgValue, memgest: mr.memgest, shard: mr.shard, key: mg.rec.Key, version: mg.rec.Version, replica: true})
			}
		}

	case roleParity:
		rt := st.rmetaFor(mr.shard)
		for _, ek := range keys {
			mg := union[ek]
			if existing := rt.Get(ek.Key, ek.Version); existing != nil {
				if !existing.Rec.Committed {
					existing.Rec.Committed = true
					n.persistInstall(st, mr.shard, existing)
				}
				continue
			}
			e := &store.Entry{Rec: mg.rec}
			rt.Put(e)
			n.persistInstall(st, mr.shard, e)
		}
		// Parity blocks are rebuilt once per stripe, not per shard;
		// scheduleParityRebuild queued them already.
	}
}

// scheduleDataRecovery marks every block of a taken-over SRS shard as
// pending (bgBlock tasks are queued after metadata arrives, since
// extents must be reserved first). For Rep shards values are queued in
// finishMetaRecovery. Present for symmetry and future use.
func (n *Node) scheduleDataRecovery(st *mgState, cs *coordShard) {}

// scheduleParityRebuild queues a rebuild of every parity stripe block
// of a newly assigned parity node.
func (n *Node) scheduleParityRebuild(st *mgState) {
	for t := 0; t < st.layout.Stripes(); t++ {
		n.bgQueue = append(n.bgQueue, bgTask{kind: bgParity, memgest: st.info.ID, stripe: t})
	}
}

// recoveryTick pumps the background recovery queue and retries
// stalled metadata fetches.
func (n *Node) recoveryTick() {
	n.pumpMetaRecoveries()
	for n.bgInflight < maxBgInflight && len(n.bgQueue) > 0 {
		task := n.bgQueue[0]
		n.bgQueue = n.bgQueue[1:]
		n.issueBgTask(task)
	}
	n.Metrics.RecoveryBacklog.Set(int64(len(n.bgQueue) + n.bgInflight))
}

// requeue retries a failed background task, giving up after a bound.
func (n *Node) requeue(task bgTask) {
	task.retries++
	if task.retries > maxRetries {
		return
	}
	n.bgQueue = append(n.bgQueue, task)
}

func (n *Node) issueBgTask(task bgTask) {
	st := n.mgFor(task.memgest)
	if st == nil {
		return
	}
	switch task.kind {
	case bgBlock:
		cs := st.coord[task.shard]
		if cs == nil || cs.blockOK[task.block] {
			return
		}
		if cs.blockFetching == nil {
			cs.blockFetching = make(map[uint32]bool)
		}
		if cs.blockFetching[task.block] {
			return
		}
		cs.blockFetching[task.block] = true
		n.issueBlockRecover(st, cs, task)

	case bgValue:
		var e *store.Entry
		if task.replica {
			e = st.rmetaFor(task.shard).Get(task.key, task.version)
		} else if cs := st.coord[task.shard]; cs != nil {
			e = cs.meta.Get(task.key, task.version)
		}
		if e == nil || e.Value != nil {
			return
		}
		n.issueValueFetch(st, task)

	case bgParity:
		if st.parity == nil || st.layout == nil {
			return
		}
		n.issueParityRebuild(st, task)
	}
}

// issueBlockRecover asks a parity node to decode one lost block. The
// parity node is chosen round-robin by retry count so a dead parity
// does not wedge recovery.
func (n *Node) issueBlockRecover(st *mgState, cs *coordShard, task bgTask) {
	pns := parityNodes(&st.info)
	target := pns[task.retries%len(pns)]
	req := n.reqID()
	n.dataRecs[req] = &dataRecovery{memgest: task.memgest, shard: task.shard, block: task.block}
	n.bgInflight++
	n.bgTasks0[req] = task
	n.sendNode(target, &proto.BlockRecover{Req: req, Memgest: task.memgest, Block: task.block})
}

// issueValueFetch asks a peer holding a copy for (key, version).
func (n *Node) issueValueFetch(st *mgState, task bgTask) {
	var target proto.NodeID
	if task.replica {
		// Replicas fetch from the coordinator.
		target = n.cfg.Coords[task.shard]
	} else {
		// Coordinators fetch from a replica, rotating on retries.
		rs := replicaSet(n.cfg, &st.info, task.shard)
		if len(rs) == 0 {
			return
		}
		target = rs[task.retries%len(rs)]
	}
	if target == n.id {
		return
	}
	req := n.reqID()
	n.dataRecs[req] = &dataRecovery{memgest: task.memgest, shard: task.shard, key: task.key, version: task.version}
	n.bgInflight++
	n.bgTasks0[req] = task
	n.sendNode(target, &proto.DataFetch{Req: req, Memgest: task.memgest, Shard: task.shard, Key: task.key, Version: task.version})
}

// issueParityRebuild gathers the k data blocks of one stripe so this
// parity node can recompute its parity block.
func (n *Node) issueParityRebuild(st *mgState, task bgTask) {
	members := st.layout.StripeMembers(task.stripe)
	pr := &parityRebuild{memgest: task.memgest, stripe: task.stripe, have: make(map[int][]byte), task: task}
	for _, b := range members {
		owner := n.cfg.Coords[st.layout.DataNodeOf(b)]
		req := n.reqID()
		n.parityRebuilds[req] = pr
		pr.pending++
		n.sendNode(owner, &proto.BlockFetch{Req: req, Memgest: task.memgest, Block: uint32(b)})
	}
	if pr.pending > 0 {
		n.bgInflight++
	}
}

// parityRebuild tracks one stripe rebuild on a new parity node.
type parityRebuild struct {
	memgest proto.MemgestID
	stripe  int
	have    map[int][]byte
	pending int
	failed  bool
	task    bgTask
}

// handleBlockRecover runs on a parity node: gather the k-1 sibling
// data blocks of the lost block's stripe, add the local parity block,
// and decode (the online decoding algorithm of Section 5.5).
func (n *Node) handleBlockRecover(from string, m *proto.BlockRecover) {
	st := n.mgFor(m.Memgest)
	if st == nil || st.parity == nil || st.layout == nil || int(m.Block) >= st.layout.L {
		n.send(from, &proto.BlockRecoverReply{Req: m.Req, Status: proto.StNoMemgest, Block: m.Block})
		return
	}
	t := st.layout.StripeOffset(int(m.Block))
	targetPos := st.layout.StripePos(int(m.Block))
	br := &blockRecovery{
		requester: from, req: m.Req, memgest: m.Memgest, block: m.Block,
		have: map[int][]byte{
			st.layout.K + st.parityIdx: append([]byte(nil), st.parity.Block(t)...),
		},
	}
	for _, b := range st.layout.StripeMembers(t) {
		if st.layout.StripePos(b) == targetPos {
			continue
		}
		owner := n.cfg.Coords[st.layout.DataNodeOf(b)]
		req := n.reqID()
		n.blockRecs[req] = br
		br.pending++
		n.sendNode(owner, &proto.BlockFetch{Req: req, Memgest: m.Memgest, Block: uint32(b)})
	}
	if br.pending == 0 {
		n.finishBlockRecovery(st, br)
	}
}

func (n *Node) handleBlockFetchReply(_ string, m *proto.BlockFetchReply) {
	// The reply may belong to a block recovery (parity master) or to a
	// parity rebuild (new parity node).
	if br, ok := n.blockRecs[m.Req]; ok {
		delete(n.blockRecs, m.Req)
		st := n.mgFor(br.memgest)
		if st == nil || st.layout == nil {
			return
		}
		br.pending--
		if m.Status == proto.StOK {
			br.have[st.layout.StripePos(int(m.Block))] = m.Data
		}
		if br.pending == 0 {
			n.finishBlockRecovery(st, br)
		}
		return
	}
	if pr, ok := n.parityRebuilds[m.Req]; ok {
		delete(n.parityRebuilds, m.Req)
		st := n.mgFor(pr.memgest)
		if st == nil || st.layout == nil {
			return
		}
		pr.pending--
		if m.Status == proto.StOK {
			pr.have[st.layout.StripePos(int(m.Block))] = m.Data
		} else {
			pr.failed = true
		}
		if pr.pending == 0 {
			n.bgInflight--
			if pr.failed || len(pr.have) < st.layout.K {
				n.requeue(pr.task)
				return
			}
			// Recompute this node's parity block from the k data
			// columns of the stripe.
			stripeData := make(map[int][]byte, st.layout.K)
			for pos, data := range pr.have {
				stripeData[st.layout.BlockAt(pos, pr.stripe)] = data
			}
			blk, err := st.layout.RecoverParityBlock(st.parityIdx, pr.stripe, stripeData)
			if err != nil {
				n.requeue(pr.task)
				return
			}
			copy(st.parity.Block(pr.stripe), blk)
		}
	}
}

// finishBlockRecovery decodes the lost block and replies; it also
// refreshes this parity node's own stripe block from the now-complete
// data columns, restoring the encode invariant even if a torn put had
// diverged the parity copies.
func (n *Node) finishBlockRecovery(st *mgState, br *blockRecovery) {
	targetPos := st.layout.StripePos(int(br.block))
	t := st.layout.StripeOffset(int(br.block))
	data, err := st.layout.Encoder().ReconstructShard(targetPos, br.have)
	if err != nil {
		n.send(br.requester, &proto.BlockRecoverReply{Req: br.req, Status: proto.StUnavailable, Block: br.block})
		return
	}
	n.Stats.BlocksRecovered++
	n.Stats.BytesDecoded += uint64(st.layout.K * len(data))
	// Scrub: recompute our own parity block from the full stripe.
	stripeData := make(map[int][]byte, st.layout.K)
	for pos, blk := range br.have {
		if pos < st.layout.K {
			stripeData[st.layout.BlockAt(pos, t)] = blk
		}
	}
	stripeData[int(br.block)] = data
	if len(stripeData) == st.layout.K {
		if blk, err := st.layout.RecoverParityBlock(st.parityIdx, t, stripeData); err == nil {
			copy(st.parity.Block(t), blk)
		}
	}
	n.send(br.requester, &proto.BlockRecoverReply{Req: br.req, Status: proto.StOK, Block: br.block, Data: data})
}

// handleBlockRecoverReply installs a recovered block on the
// coordinator and releases requests parked on it.
func (n *Node) handleBlockRecoverReply(_ string, m *proto.BlockRecoverReply) {
	dr, ok := n.dataRecs[m.Req]
	if !ok {
		return
	}
	delete(n.dataRecs, m.Req)
	task, tracked := n.bgTasks0[m.Req]
	if tracked {
		delete(n.bgTasks0, m.Req)
		n.bgInflight--
	}
	st := n.mgFor(dr.memgest)
	if st == nil {
		return
	}
	cs := st.coord[dr.shard]
	if cs == nil {
		return
	}
	if cs.blockFetching != nil {
		delete(cs.blockFetching, m.Block)
	}
	if m.Status != proto.StOK {
		if tracked {
			n.requeue(task)
		}
		return
	}
	if cs.blockOK[m.Block] {
		return
	}
	cs.heap.SetBlockData(m.Block, m.Data)
	cs.blockOK[m.Block] = true
	// Release requests parked on this block.
	waiters := cs.blockWaiters[m.Block]
	delete(cs.blockWaiters, m.Block)
	for _, w := range waiters {
		n.releaseWaiter(st, cs, w)
	}
}

// handleDataFetchReply installs a recovered value and releases parked
// requests.
func (n *Node) handleDataFetchReply(_ string, m *proto.DataFetchReply) {
	dr, ok := n.dataRecs[m.Req]
	if !ok {
		return
	}
	delete(n.dataRecs, m.Req)
	task, tracked := n.bgTasks0[m.Req]
	if tracked {
		delete(n.bgTasks0, m.Req)
		n.bgInflight--
	}
	st := n.mgFor(dr.memgest)
	if st == nil {
		return
	}
	if m.Status != proto.StOK {
		if tracked {
			n.requeue(task)
		}
		return
	}
	ek := store.EntryKey{Key: dr.key, Version: dr.version}
	if tracked && task.replica {
		if e := st.rmetaFor(dr.shard).Get(dr.key, dr.version); e != nil {
			e.Value = m.Value
			n.persistInstall(st, dr.shard, e)
		}
		return
	}
	cs := st.coord[dr.shard]
	if cs == nil {
		return
	}
	e := cs.meta.Get(dr.key, dr.version)
	if e == nil {
		return
	}
	e.Value = m.Value
	n.persistInstall(st, dr.shard, e)
	if cs.valueFetching != nil {
		delete(cs.valueFetching, ek)
	}
	waiters := cs.valueWaiters[ek]
	delete(cs.valueWaiters, ek)
	for _, w := range waiters {
		n.releaseWaiter(st, cs, w)
	}
}

// releaseWaiter resumes a request that was parked on data recovery.
func (n *Node) releaseWaiter(st *mgState, cs *coordShard, w blockWaiter) {
	if w.kind == replyMove {
		n.performMove(w.client, w.req, cs.shard, w.key, w.dst)
		return
	}
	if w.kind == replyConvert {
		n.performConvert(w.client, w.req, cs.shard, w.key, w.dst)
		return
	}
	e := cs.meta.Get(w.key, w.version)
	if e == nil {
		n.send(w.client, &proto.GetReply{Req: w.req, Status: proto.StNotFound})
		return
	}
	n.sendValueReply(st, cs, e, w.client, w.req)
}

// parkOnBlockRecovery queues a request behind an SRS block decode and
// kicks an on-demand, high-priority recovery ("If the requested data
// is lost, it will be recovered with an on the fly recovery algorithm
// with high priority").
func (n *Node) parkOnBlockRecovery(st *mgState, cs *coordShard, block uint32, w blockWaiter) {
	cs.blockWaiters[block] = append(cs.blockWaiters[block], w)
	if cs.blockFetching == nil {
		cs.blockFetching = make(map[uint32]bool)
	}
	if cs.blockFetching[block] {
		return
	}
	cs.blockFetching[block] = true
	// On-demand recovery bypasses the background queue and its
	// in-flight limit.
	pns := parityNodes(&st.info)
	req := n.reqID()
	n.dataRecs[req] = &dataRecovery{memgest: st.info.ID, shard: cs.shard, block: block}
	n.bgTasks0[req] = bgTask{kind: bgBlock, memgest: st.info.ID, shard: cs.shard, block: block}
	n.bgInflight++
	n.sendNode(pns[0], &proto.BlockRecover{Req: req, Memgest: st.info.ID, Block: block})
}

// parkOnValueRecovery queues a request behind a Rep value fetch.
func (n *Node) parkOnValueRecovery(st *mgState, cs *coordShard, e *store.Entry, w blockWaiter) {
	ek := store.EntryKey{Key: e.Rec.Key, Version: e.Rec.Version}
	if cs.valueWaiters == nil {
		cs.valueWaiters = make(map[store.EntryKey][]blockWaiter)
	}
	cs.valueWaiters[ek] = append(cs.valueWaiters[ek], w)
	if cs.valueFetching == nil {
		cs.valueFetching = make(map[store.EntryKey]bool)
	}
	if cs.valueFetching[ek] {
		return
	}
	cs.valueFetching[ek] = true
	rs := replicaSet(n.cfg, &st.info, cs.shard)
	if len(rs) == 0 {
		n.send(w.client, &proto.GetReply{Req: w.req, Status: proto.StUnavailable})
		return
	}
	req := n.reqID()
	n.dataRecs[req] = &dataRecovery{memgest: st.info.ID, shard: cs.shard, key: e.Rec.Key, version: e.Rec.Version}
	n.bgTasks0[req] = bgTask{kind: bgValue, memgest: st.info.ID, shard: cs.shard, key: e.Rec.Key, version: e.Rec.Version}
	n.bgInflight++
	n.sendNode(rs[0], &proto.DataFetch{Req: req, Memgest: st.info.ID, Shard: cs.shard, Key: e.Rec.Key, Version: e.Rec.Version})
}
