package core

import (
	"fmt"
	"testing"
	"time"

	"ring/internal/metrics"
	"ring/internal/proto"
	"ring/internal/store"
)

// soloNode builds a single node that coordinates everything with an
// unreliable Rep(1,1) memgest, so puts commit in one event and the
// whole data path runs inside HandleMessage.
func soloNode(t *testing.T) *Node {
	t.Helper()
	cfg, err := BootConfig(ClusterSpec{Shards: 1, Memgests: []proto.Scheme{proto.Rep(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	return New(0, cfg, Options{})
}

// TestNodeMetricsExactCounts drives a scripted workload through the
// state machine and requires the per-memgest counters, the commit
// histograms, and the trace ring to match it exactly — the contract
// /debug/ringvars exposes.
func TestNodeMetricsExactCounts(t *testing.T) {
	n := soloNode(t)
	now := time.Duration(0)
	step := func(msg proto.Message) []Out {
		now += time.Millisecond
		return n.HandleMessage(now, "client/1", msg)
	}
	const puts, gets = 5, 3
	for i := 0; i < puts; i++ {
		outs := step(&proto.Put{Req: proto.ReqID(i + 1), Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
		if r := outs[0].Msg.(*proto.PutReply); r.Status != proto.StOK {
			t.Fatalf("put %d: %v", i, r.Status)
		}
	}
	for i := 0; i < gets; i++ {
		outs := step(&proto.Get{Req: proto.ReqID(100 + i), Key: fmt.Sprintf("k%d", i)})
		if r := outs[0].Msg.(*proto.GetReply); r.Status != proto.StOK {
			t.Fatalf("get %d: %v", i, r.Status)
		}
	}
	outs := step(&proto.Delete{Req: 200, Key: "k0"})
	if r := outs[0].Msg.(*proto.DeleteReply); r.Status != proto.StOK {
		t.Fatalf("delete: %v", r.Status)
	}

	s := n.MetricsSnapshot()
	mg := s.Memgests[1]
	if mg.Puts != puts || mg.Gets != gets || mg.Deletes != 1 || mg.Moves != 0 {
		t.Fatalf("memgest counts = %+v", mg)
	}
	if want := uint64(puts + 1); mg.Commits != want {
		t.Fatalf("commits = %d, want %d", mg.Commits, want)
	}
	if s.CommitRep.Count != uint64(puts+1) || s.CommitSRS.Count != 0 {
		t.Fatalf("commit histograms: rep=%d srs=%d", s.CommitRep.Count, s.CommitSRS.Count)
	}
	if s.Events != uint64(puts+gets+1) {
		t.Fatalf("events = %d", s.Events)
	}
	// Every client-visible op leaves a trace entry: puts and the delete
	// at commit, gets at serve.
	if want := uint64(puts + gets + 1); s.TraceRecorded != want {
		t.Fatalf("trace recorded = %d, want %d", s.TraceRecorded, want)
	}
	last := n.TraceLast(0)
	if got := last[len(last)-1]; got.Op != metrics.TraceDelete || got.KeyString() != "k0" {
		t.Fatalf("newest trace entry = %v %q", got.Op, got.KeyString())
	}
	for _, e := range last[:puts] {
		if e.Op != metrics.TracePut {
			t.Fatalf("expected put trace entries first, got %v", e.Op)
		}
	}
}

// TestPerMemgestCountersSplitBySchemes checks ops land on the memgest
// they executed against, and SRS commits feed the SRS histogram.
func TestPerMemgestCountersSplitBySchemes(t *testing.T) {
	spec := ClusterSpec{
		Shards: 3, Redundant: 2,
		Memgests:  []proto.Scheme{proto.Rep(3, 3), proto.SRS(3, 2, 3)},
		Opts:      Options{HeartbeatEvery: time.Minute, FailAfter: 10 * time.Minute},
		TickEvery: time.Minute,
	}
	cl, err := StartCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ep, err := cl.Fabric.Register("client/t")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	put := func(req proto.ReqID, key string, mg proto.MemgestID) {
		t.Helper()
		coord := NodeAddr(cl.Cfg.CoordinatorOf(store.KeyHash(key)))
		if err := ep.Send(coord, proto.Encode(&proto.Put{Req: req, Key: key, Value: []byte("x"), Memgest: mg})); err != nil {
			t.Fatal(err)
		}
		for {
			p, err := ep.Recv()
			if err != nil {
				t.Fatal(err)
			}
			var done bool
			_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
				if m, err := proto.Decode(enc); err == nil {
					if r, ok := m.(*proto.PutReply); ok && r.Req == req {
						if r.Status != proto.StOK {
							t.Fatalf("put %s: %v", key, r.Status)
						}
						done = true
					}
				}
				return nil
			})
			if done {
				return
			}
		}
	}
	const perMg = 4
	for i := 0; i < perMg; i++ {
		put(proto.ReqID(i+1), fmt.Sprintf("rep-%d", i), 1)
		put(proto.ReqID(100+i), fmt.Sprintf("srs-%d", i), 2)
	}

	var total map[proto.MemgestID]MemgestOpCounts
	var repLat, srsLat uint64
	total = make(map[proto.MemgestID]MemgestOpCounts)
	for _, r := range cl.Runs {
		r.Inspect(func(n *Node) {
			s := n.MetricsSnapshot()
			for id, c := range s.Memgests {
				agg := total[id]
				agg.Add(c)
				total[id] = agg
			}
			repLat += s.CommitRep.Count
			srsLat += s.CommitSRS.Count
		})
	}
	if total[1].Puts != perMg || total[2].Puts != perMg {
		t.Fatalf("per-memgest puts = %d/%d, want %d each", total[1].Puts, total[2].Puts, perMg)
	}
	if repLat != perMg || srsLat != perMg {
		t.Fatalf("commit latency samples rep=%d srs=%d, want %d each", repLat, srsLat, perMg)
	}
}

// TestInstrumentedHotPathAllocs pins the end-to-end allocation cost of
// a put and a get running through the fully instrumented state machine.
// The ceilings equal the measured pre-instrumentation baseline (the
// path's intrinsic costs: reply struct, stored entry/value, closure
// captures) — the counters, histograms, and trace ring contribute
// exactly zero, as internal/metrics pins separately, so any increase
// here is a real hot-path regression.
func TestInstrumentedHotPathAllocs(t *testing.T) {
	n := soloNode(t)
	now := time.Duration(0)
	val := []byte("value-bytes")
	// Warm up: first put creates the shard index and key entries.
	n.HandleMessage(now, "client/1", &proto.Put{Req: 1, Key: "hot", Value: val})

	req := proto.ReqID(2)
	putAllocs := testing.AllocsPerRun(100, func() {
		now += time.Millisecond
		req++
		n.HandleMessage(now, "client/1", &proto.Put{Req: req, Key: "hot", Value: val})
	})
	getAllocs := testing.AllocsPerRun(100, func() {
		now += time.Millisecond
		req++
		n.HandleMessage(now, "client/1", &proto.Get{Req: req, Key: "hot"})
	})
	// Put: reply struct + stored entry + value copy + index/GC churn.
	if putAllocs > 9 {
		t.Errorf("instrumented put path: %.1f allocs/op, want <= 9", putAllocs)
	}
	// Get: reply struct + the fail-closure capture.
	if getAllocs > 2 {
		t.Errorf("instrumented get path: %.1f allocs/op, want <= 2", getAllocs)
	}
}
