// Package core implements the Ring server: a single-threaded,
// event-driven node state machine that plays every role of the paper's
// architecture — shard coordinator, replica, parity node, leader, and
// spare — plus the livenet runner that drives a cluster of such nodes
// over a real transport.
//
// The state machine design mirrors the paper's single-threaded servers
// and is what allows the same node logic to run both over goroutines
// and real message fabrics (tests, examples, live benchmarks) and
// inside the discrete-event simulator (package sim) that reproduces
// the paper's microsecond-scale latency figures.
package core

import (
	"fmt"
	"time"

	"ring/internal/proto"
	"ring/internal/replog"
	"ring/internal/store"
)

// nodeAddrs caches the addresses of small node IDs: NodeAddr sits on
// the per-message send path, where a fmt.Sprintf per call is real CPU.
var nodeAddrs = func() (a [256]string) {
	for i := range a {
		a[i] = fmt.Sprintf("node/%d", i)
	}
	return
}()

// NodeAddr returns the fabric address of a node ID.
func NodeAddr(id proto.NodeID) string {
	if int(id) < len(nodeAddrs) {
		return nodeAddrs[id]
	}
	return fmt.Sprintf("node/%d", id)
}

// Options tunes a node. The zero value is completed by Defaults.
type Options struct {
	// BlockSize is the capacity of one SRS logical block in bytes.
	BlockSize int
	// HeartbeatEvery is the leader's heartbeat period.
	HeartbeatEvery time.Duration
	// FailAfter is the silence threshold after which the leader
	// declares a node dead (and a follower suspects the leader).
	FailAfter time.Duration
	// KeepVersions is how many committed versions older than the
	// newest committed one are retained before GC removes them. The
	// paper's default ("removing of old versions after every committed
	// put") is 0; the dynamic-importance use case raises it.
	KeepVersions int
	// LogRetain bounds the per-shard replicated log.
	LogRetain int
	// KeepDurableBackup prevents GC from removing the newest committed
	// version that lives in a *reliable* memgest while every newer
	// version sits in the unreliable Rep(1) scheme — the paper's
	// "preserving previous reliable copies" semantics for the
	// heavy-updates use case. It composes with KeepVersions.
	KeepDurableBackup bool
	// ChaosUnsafeAck deliberately acknowledges writes before the
	// replication quorum is reached. It exists ONLY to validate the
	// chaos harness (cmd/ringchaos -bug): the linearizability checker
	// must catch the lost updates this produces under faults. Never
	// set it outside that test path.
	ChaosUnsafeAck bool
	// ChaosUnsafeConvert deliberately acknowledges scheme transitions
	// before the transition journal record is written and purges the
	// source version before the destination write is durable. It exists
	// ONLY to validate the elasticity chaos lane (cmd/ringchaos
	// -convbug): a coordinator crash in the window silently loses the
	// key, which the checker must flag. Never set it outside that path.
	ChaosUnsafeConvert bool
	// SyncReplication switches Rep memgests from quorum commits
	// (majority of r) to fully synchronous commits (all r copies), the
	// alternative discussed in Section 3.1: r-1 failures tolerated for
	// availability, at higher put latency. Used by the ablation bench.
	SyncReplication bool
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 64 << 10
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 50 * time.Millisecond
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 5 * o.HeartbeatEvery
	}
	if o.LogRetain <= 0 {
		o.LogRetain = 4096
	}
	return o
}

// Out is one outgoing message produced by a state transition.
type Out struct {
	To  string
	Msg proto.Message
}

// Node is one Ring server. It is not safe for concurrent use: a runner
// must serialize HandleMessage and HandleTick calls, exactly like the
// paper's single-threaded event loop.
type Node struct {
	id   proto.NodeID
	opts Options

	cfg  *proto.Config
	prev *proto.Config // previous config, to detect role changes

	// vol is the volatile hashtable, one per shard this node
	// coordinates.
	vol map[uint32]*store.VolatileIndex
	// mg is the per-memgest state for every role this node plays.
	mg map[proto.MemgestID]*mgState

	// Leader state.
	lastAck  map[proto.NodeID]time.Duration
	nextMgID proto.MemgestID
	// Follower state.
	lastHeartbeat time.Duration

	// Recovery state: outstanding metadata fetches keyed by request.
	recovering map[proto.ReqID]*metaRecovery
	// Pending block recoveries this node is running as parity master.
	blockRecs map[proto.ReqID]*blockRecovery
	// Outstanding data/block recovery requests issued by this node as
	// a recovering coordinator or replica.
	dataRecs map[proto.ReqID]*dataRecovery
	// parityRebuilds tracks stripe rebuilds on a new parity node.
	parityRebuilds map[proto.ReqID]*parityRebuild
	// bgQueue and bgInflight implement the bounded background data
	// recovery pump; bgTasks0 maps outstanding request IDs back to
	// their queue task for retry accounting.
	bgQueue    []bgTask
	bgInflight int
	bgTasks0   map[proto.ReqID]bgTask

	// converting tracks the open scheme-transition windows of shards
	// this node coordinates: client writes to a converting key park here
	// and replay when the window closes (commit or abort).
	converting map[convKey]*convState
	// bulkConverts aggregates in-flight prefix conversions; nextBulkID
	// names them (node-local, never crosses the wire).
	bulkConverts map[string]*bulkConvert
	nextBulkID   uint64
	// pendingResize is the leader's in-flight leave fence (one at a
	// time): the new configuration is pushed to the departing node
	// first, and announced cluster-wide only once that node acked it
	// (or went silent past FailAfter).
	pendingResize *resizeState

	// serving is false while metadata recovery is in progress; client
	// requests are answered with StRetry until it completes.
	serving bool

	// rejoining is true on a node that restarted with empty state and
	// has not yet been re-admitted by the leader (see rejoin.go). While
	// set, only ConfigPush, Resolve, and client retries are serviced.
	rejoining    bool
	joinAttempts int

	// durable is the optional persistent engine (see durable.go);
	// durableErr is the sticky first persist failure (the node must
	// crash-stop once set); durStash is state recovered from disk,
	// consumed when the re-admitting configuration installs.
	durable    *replog.Durable
	durableErr error
	durStash   map[replog.ShardKey]*replog.RecoveredShard

	nextReq proto.ReqID
	now     time.Duration
	outs    []Out

	// Counters for tests and instrumentation.
	Stats Stats
	// Metrics is the always-on observability surface (atomic counters,
	// latency histograms, trace ring); see NodeMetrics for the reading
	// discipline.
	Metrics *NodeMetrics
}

// Stats counts node activity.
type Stats struct {
	Puts, Gets, Deletes, Moves   uint64
	Converts                     uint64
	Commits, ParkedGets          uint64
	ParityUpdates, RepAppends    uint64
	BlocksRecovered, MetaRecovs  uint64
	BytesParityXor, BytesWritten uint64
	// BytesDecoded counts erasure-decode work (recovery path); the
	// simulator charges CPU time proportionally.
	BytesDecoded uint64
	// BytesMetaInstalled counts metadata records installed during
	// recovery, which dominates the Figure 12 experiment.
	BytesMetaInstalled uint64
}

// metaRecovery tracks one outstanding MetaFetch.
type metaRecovery struct {
	memgest proto.MemgestID
	shard   uint32
	// role is what this node becomes for the memgest once recovered.
	role recoveredRole
	// peers yet to answer (for union merging we ask several).
	waiting map[proto.NodeID]bool
	// replies collected so far, per peer.
	replies []*proto.MetaFetchReply
	// lastSent drives the tick-based retry: peers that die mid-fetch
	// are pruned once the config drops them, and surviving peers are
	// re-asked (MetaFetch is an idempotent snapshot read).
	lastSent time.Duration
	// since is the delta floor carried on every (re)send: a node that
	// recovered durable state only needs records past it.
	since proto.Seq
}

type recoveredRole uint8

const (
	roleCoordinator recoveredRole = iota + 1
	roleReplica
	roleParity
)

// blockRecovery is parity-master state for one in-flight stripe decode.
type blockRecovery struct {
	requester string
	req       proto.ReqID
	memgest   proto.MemgestID
	block     uint32
	// have maps stripe position -> block contents gathered so far
	// (including this node's own parity at position k+r).
	have    map[int][]byte
	pending int
}

// dataRecovery tracks a value or block this node asked to be recovered.
type dataRecovery struct {
	memgest proto.MemgestID
	shard   uint32
	block   uint32 // SRS block recovery
	key     string // Rep value recovery
	version proto.Version
}

// New creates a node with an installed initial configuration. All
// nodes of a fresh cluster are constructed with the same config; no
// recovery is triggered for roles assigned at construction.
func New(id proto.NodeID, cfg *proto.Config, opts Options) *Node {
	n := &Node{
		id:             id,
		opts:           opts.Defaults(),
		vol:            make(map[uint32]*store.VolatileIndex),
		mg:             make(map[proto.MemgestID]*mgState),
		lastAck:        make(map[proto.NodeID]time.Duration),
		recovering:     make(map[proto.ReqID]*metaRecovery),
		blockRecs:      make(map[proto.ReqID]*blockRecovery),
		dataRecs:       make(map[proto.ReqID]*dataRecovery),
		parityRebuilds: make(map[proto.ReqID]*parityRebuild),
		bgTasks0:       make(map[proto.ReqID]bgTask),
		converting:     make(map[convKey]*convState),
		bulkConverts:   make(map[string]*bulkConvert),
		serving:        true,
		nextReq:        1,
		nextMgID:       1,
		Metrics:        newNodeMetrics(),
	}
	n.installConfig(cfg, true)
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() proto.NodeID { return n.id }

// Config returns the currently installed configuration.
func (n *Node) Config() *proto.Config { return n.cfg }

// Serving reports whether the node has completed recovery and serves
// client requests.
func (n *Node) Serving() bool { return n.serving }

// IsLeader reports whether this node is the current leader.
func (n *Node) IsLeader() bool { return n.cfg != nil && n.cfg.Leader == n.id }

// send queues an outgoing message.
func (n *Node) send(to string, msg proto.Message) {
	n.outs = append(n.outs, Out{To: to, Msg: msg})
}

// sendNode queues a message to another node.
func (n *Node) sendNode(id proto.NodeID, msg proto.Message) {
	n.send(NodeAddr(id), msg)
}

// reqID allocates an internal request id for node-initiated requests.
func (n *Node) reqID() proto.ReqID {
	r := n.nextReq
	n.nextReq++
	return r
}

// HandleMessage processes one incoming message at the given node-local
// time and returns the messages to transmit. `from` is the fabric
// address of the sender.
//
//ring:hotpath-stop the Node state machine is bounded by its own rules (simdeterminism), not the zero-alloc budget
func (n *Node) HandleMessage(now time.Duration, from string, msg proto.Message) []Out {
	n.now = now
	n.outs = n.outs[:0]
	n.Metrics.Events.Inc()
	if n.rejoining {
		n.handleRejoining(from, msg)
		return n.outs
	}
	switch m := msg.(type) {
	// Client operations.
	case *proto.Put:
		n.handlePut(from, m)
	case *proto.Get:
		n.handleGet(from, m)
	case *proto.Delete:
		n.handleDelete(from, m)
	case *proto.Move:
		n.handleMove(from, m)
	case *proto.Convert:
		n.handleConvert(from, m)
	case *proto.Resize:
		n.handleResize(from, m)
	case *proto.CreateMemgest:
		n.handleCreateMemgest(from, m)
	case *proto.DeleteMemgest:
		n.handleDeleteMemgest(from, m)
	case *proto.SetDefault:
		n.handleSetDefault(from, m)
	case *proto.GetDescriptor:
		n.handleGetDescriptor(from, m)
	case *proto.Resolve:
		n.send(from, &proto.ResolveReply{Req: m.Req, Config: n.cfg.Clone()})
	// Replication plane.
	case *proto.RepAppend:
		n.handleRepAppend(from, m)
	case *proto.RepAck:
		n.handleRepAck(from, m)
	case *proto.RepCommit:
		n.handleRepCommit(from, m)
	case *proto.ParityUpdate:
		n.handleParityUpdate(from, m)
	case *proto.ParityAck:
		n.handleParityAck(from, m)
	case *proto.Purge:
		n.handlePurge(from, m)
	// Membership.
	case *proto.Heartbeat:
		n.handleHeartbeat(from, m)
	case *proto.HeartbeatAck:
		n.handleHeartbeatAck(from, m)
	case *proto.ConfigPush:
		n.handleConfigPush(from, m)
	case *proto.ConfigAck:
		n.handleConfigAck(from, m)
	case *proto.Join:
		n.handleJoin(from, m)
	// Recovery.
	case *proto.MetaFetch:
		n.handleMetaFetch(from, m)
	case *proto.MetaFetchReply:
		n.handleMetaFetchReply(from, m)
	case *proto.DataFetch:
		n.handleDataFetch(from, m)
	case *proto.DataFetchReply:
		n.handleDataFetchReply(from, m)
	case *proto.BlockRecover:
		n.handleBlockRecover(from, m)
	case *proto.BlockRecoverReply:
		n.handleBlockRecoverReply(from, m)
	case *proto.BlockFetch:
		n.handleBlockFetch(from, m)
	case *proto.BlockFetchReply:
		n.handleBlockFetchReply(from, m)
	case *proto.Tick:
		n.handleTick()
	}
	return n.outs
}

// HandleTick drives time-based behaviour (heartbeats, failure
// detection, background recovery).
//
//ring:hotpath-stop the Node state machine is bounded by its own rules (simdeterminism), not the zero-alloc budget
func (n *Node) HandleTick(now time.Duration) []Out {
	n.now = now
	n.outs = n.outs[:0]
	n.Metrics.Ticks.Inc()
	n.handleTick()
	return n.outs
}

// shardOf returns the shard a key maps to under the current config.
func (n *Node) shardOf(key string) uint32 {
	return uint32(n.cfg.ShardOf(store.KeyHash(key)))
}

// coordinates reports whether this node coordinates the given shard.
func (n *Node) coordinates(shard uint32) bool {
	return int(shard) < len(n.cfg.Coords) && n.cfg.Coords[shard] == n.id
}

// volFor returns (creating if needed) the volatile index of a shard
// this node coordinates.
func (n *Node) volFor(shard uint32) *store.VolatileIndex {
	v, ok := n.vol[shard]
	if !ok {
		v = store.NewVolatileIndex()
		n.vol[shard] = v
	}
	return v
}
