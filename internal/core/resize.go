package core

import (
	"time"

	"ring/internal/proto"
)

// This file implements operator-driven cluster resizing: node join and
// node leave as first-class Resize requests, built on the same
// configuration machinery as failure replacement but with minimal data
// movement as an explicit, measured property.
//
// Join is trivial by design: the new node enters as a spare, zero
// placements change, and the configuration broadcast is the whole
// protocol. Leave is a fence-then-announce: the leader builds the new
// configuration with the departing node's roles substituted by a spare
// (exactly stripRoles, the failure path — only the departing node's
// slots change), pushes it to the departing node FIRST, and announces
// it cluster-wide only once that node acked the fence (or went silent
// past FailAfter, at which point leave degenerates into the failure
// path it shares its mechanics with). Fencing first means the departing
// node stops acting on its roles before any substitute starts
// recovering them, so a graceful leave never yields two nodes serving
// the same shard.

// resizeState is the leader's in-flight leave fence (one at a time).
type resizeState struct {
	// client/req is the ResizeReply owed when the fence completes.
	client string
	req    proto.ReqID
	// node is the departing node; cfg is the already-built configuration
	// excluding it, held back until the fence acks.
	node proto.NodeID
	cfg  *proto.Config
	// moved is configDelta(old, cfg), reported to the client and added
	// to the ShardsMoved counter on completion.
	moved uint32
	// started drives the FailAfter escape hatch.
	started time.Duration
}

// handleResize processes an operator join/leave request (leader only).
func (n *Node) handleResize(from string, m *proto.Resize) {
	fail := func(s proto.Status) { n.send(from, &proto.ResizeReply{Req: m.Req, Status: s}) }
	if !n.IsLeader() {
		fail(proto.StWrongNode)
		return
	}
	if n.pendingResize != nil {
		fail(proto.StRetry) // one resize at a time
		return
	}
	switch m.Op {
	case proto.ResizeJoin:
		n.handleResizeJoin(from, m)
	case proto.ResizeLeave:
		n.handleResizeLeave(from, m)
	default:
		fail(proto.StInvalid)
	}
}

// handleResizeJoin admits a node as a spare. No placement changes: the
// join is a pure configuration broadcast, and the spare only starts
// moving data if a later failure, leave, or transition assigns it
// roles. Idempotent, so chaos schedules may repeat it freely.
func (n *Node) handleResizeJoin(from string, m *proto.Resize) {
	if m.Node == proto.NilNode {
		n.send(from, &proto.ResizeReply{Req: m.Req, Status: proto.StInvalid})
		return
	}
	if n.inConfig(m.Node) {
		n.send(from, &proto.ResizeReply{Req: m.Req, Status: proto.StOK, Epoch: n.cfg.Epoch})
		return
	}
	cfg := n.cfg.Clone()
	cfg.Epoch++
	cfg.Spares = append(cfg.Spares, m.Node)
	n.lastAck[m.Node] = n.now
	n.pushConfig(cfg)
	n.send(from, &proto.ResizeReply{Req: m.Req, Status: proto.StOK, Epoch: cfg.Epoch})
}

// handleResizeLeave starts the fence for a graceful departure.
func (n *Node) handleResizeLeave(from string, m *proto.Resize) {
	fail := func(s proto.Status) { n.send(from, &proto.ResizeReply{Req: m.Req, Status: s}) }
	if m.Node == n.id {
		fail(proto.StInvalid) // the leader cannot fence itself
		return
	}
	if !n.inConfig(m.Node) {
		fail(proto.StNotFound)
		return
	}
	if n.holdsDataRole(m.Node) && !n.spareAvailable(m.Node) {
		// stripRoles without a spare would leave the departing node's
		// roles assigned to it; a leave must fully vacate.
		fail(proto.StUnavailable)
		return
	}
	cfg := n.cfg.Clone()
	cfg.Epoch++
	stripRoles(cfg, m.Node)
	n.pendingResize = &resizeState{
		client: from, req: m.Req, node: m.Node, cfg: cfg,
		moved: configDelta(n.cfg, cfg), started: n.now,
	}
	// Fence: only the departing node learns the new configuration for
	// now. It installs a config that excludes itself and goes idle; its
	// ConfigAck releases the cluster-wide announcement.
	n.sendNode(m.Node, &proto.ConfigPush{Config: cfg.Clone()})
}

// spareAvailable reports whether a spare other than the departing node
// exists to substitute into its roles.
func (n *Node) spareAvailable(leaving proto.NodeID) bool {
	for _, s := range n.cfg.Spares {
		if s != leaving {
			return true
		}
	}
	return false
}

// handleConfigAck releases a pending fence once the departing node
// acknowledged the fencing configuration. All other ConfigAck traffic
// is informational and ignored.
func (n *Node) handleConfigAck(from string, m *proto.ConfigAck) {
	pr := n.pendingResize
	if pr == nil || !n.IsLeader() {
		return
	}
	id, ok := parseNodeAddr(from)
	if !ok || id != pr.node || m.Epoch != pr.cfg.Epoch {
		return
	}
	n.completeResize()
}

// completeResize announces the held-back configuration cluster-wide
// and answers the operator. Substitutes recover the departing node's
// roles through the normal takeover path; every placement slot the
// configuration did not touch keeps its data where it is.
func (n *Node) completeResize() {
	pr := n.pendingResize
	n.pendingResize = nil
	delete(n.lastAck, pr.node)
	n.pushConfig(pr.cfg)
	n.Metrics.ShardsMoved.Add(uint64(pr.moved))
	n.send(pr.client, &proto.ResizeReply{Req: pr.req, Status: proto.StOK, Moved: pr.moved, Epoch: pr.cfg.Epoch})
}

// resizeTick drives an in-flight fence: re-push to the departing node
// (the fence ConfigPush may have been lost), and once it has been
// silent past FailAfter complete anyway — the pending configuration
// already strips its roles, so a dead departing node makes a graceful
// leave identical to failure replacement.
func (n *Node) resizeTick() {
	pr := n.pendingResize
	if n.now-pr.started > n.opts.FailAfter {
		n.completeResize()
		return
	}
	n.sendNode(pr.node, &proto.ConfigPush{Config: pr.cfg.Clone()})
}

// abandonResize cancels an in-flight fence when a configuration from
// elsewhere overtakes it (leadership moved, or a competing leader's
// push won the tie-break). The operator retries against the new
// leader. Called from installConfig.
func (n *Node) abandonResize(cfg *proto.Config) {
	pr := n.pendingResize
	if pr == nil || cfg.Epoch < pr.cfg.Epoch {
		return
	}
	n.pendingResize = nil
	n.send(pr.client, &proto.ResizeReply{Req: pr.req, Status: proto.StRetry})
}

// configDelta counts the placement slots that differ between two
// configurations: coordinator slots, group redundancy slots, and each
// memgest's redundancy slots (matched by memgest ID). It is the data
// movement a reconfiguration induces — each changed slot is one shard
// of state its new owner must recover — and what the minimal-movement
// tests assert on.
func configDelta(oldCfg, newCfg *proto.Config) uint32 {
	var moved uint32
	for i, c := range newCfg.Coords {
		if i >= len(oldCfg.Coords) || oldCfg.Coords[i] != c {
			moved++
		}
	}
	for i, r := range newCfg.Redundant {
		if i >= len(oldCfg.Redundant) || oldCfg.Redundant[i] != r {
			moved++
		}
	}
	for i := range newCfg.Memgests {
		mi := &newCfg.Memgests[i]
		omi := oldCfg.Memgest(mi.ID)
		for j, r := range mi.Redundant {
			if omi == nil || j >= len(omi.Redundant) || omi.Redundant[j] != r {
				moved++
			}
		}
	}
	return moved
}
