package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ring/internal/proto"
)

// getVersion drives an exact-version read through the harness.
func (h *harness) getVersion(key string, ver proto.Version) *proto.GetReply {
	_, id := h.coordinatorOf(key)
	h.send("client/t", id, &proto.Get{Req: 5, Key: key, Version: ver})
	h.run()
	r, ok := h.lastReply("client/t").(*proto.GetReply)
	if !ok {
		h.t.Fatalf("getVersion %q: wrong reply type", key)
	}
	return r
}

func TestKeepVersionsRetainsOldCopies(t *testing.T) {
	spec := figure3Spec()
	spec.Opts.KeepVersions = 1
	h := newHarness(t, spec)

	// v1 reliable, v2 unreliable: the reliable copy must survive.
	h.put("vk", []byte("durable"), mgSRS32)
	h.put("vk", []byte("fast"), mgREP1)

	if g := h.get("vk"); string(g.Value) != "fast" || g.Version != 2 {
		t.Fatalf("newest: %q v%d", g.Value, g.Version)
	}
	if g := h.getVersion("vk", 1); g.Status != proto.StOK || string(g.Value) != "durable" {
		t.Fatalf("retained v1: %v %q", g.Status, g.Value)
	}
	// A third put evicts v1 (KeepVersions=1 keeps only v2).
	h.put("vk", []byte("newest"), mgREP1)
	if g := h.getVersion("vk", 1); g.Status != proto.StNotFound {
		t.Fatalf("v1 should be GCed, got %v", g.Status)
	}
	if g := h.getVersion("vk", 2); g.Status != proto.StOK || string(g.Value) != "fast" {
		t.Fatalf("v2 should be retained: %v", g.Status)
	}
}

func TestGetVersionDefaultGC(t *testing.T) {
	// With KeepVersions=0 old versions vanish at commit.
	h := newHarness(t, figure3Spec())
	h.put("gk", []byte("one"), mgREP3)
	h.put("gk", []byte("two"), mgREP3)
	if g := h.getVersion("gk", 1); g.Status != proto.StNotFound {
		t.Fatalf("v1 should be gone: %v", g.Status)
	}
	if g := h.getVersion("gk", 2); g.Status != proto.StOK {
		t.Fatalf("v2 missing: %v", g.Status)
	}
	if g := h.getVersion("gk", 99); g.Status != proto.StNotFound {
		t.Fatalf("future version: %v", g.Status)
	}
}

func TestKeepDurableBackupPinsReliableCopy(t *testing.T) {
	spec := figure3Spec()
	spec.Opts.KeepDurableBackup = true
	h := newHarness(t, spec)

	// Durable v1, then a storm of unreliable puts. The durable copy
	// must survive arbitrarily many unreliable versions.
	h.put("bk", []byte("durable"), mgSRS32)
	for i := 0; i < 20; i++ {
		h.put("bk", []byte(fmt.Sprintf("bid-%d", i)), mgREP1)
	}
	if g := h.getVersion("bk", 1); g.Status != proto.StOK || string(g.Value) != "durable" {
		t.Fatalf("durable backup lost: %v %q", g.Status, g.Value)
	}
	// Intermediate unreliable versions are still GCed.
	if g := h.getVersion("bk", 2); g.Status != proto.StNotFound {
		t.Fatalf("unreliable v2 should be GCed: %v", g.Status)
	}
	// Once a newer durable version commits, the pin moves to it and the
	// old one is collected.
	h.put("bk", []byte("durable2"), mgSRS32)
	h.put("bk", []byte("after"), mgREP1)
	if g := h.getVersion("bk", 1); g.Status != proto.StNotFound {
		t.Fatalf("old durable should be GCed after a new durable commit: %v", g.Status)
	}
	if g := h.getVersion("bk", 22); g.Status != proto.StOK || string(g.Value) != "durable2" {
		t.Fatalf("new durable pin missing: %v %q", g.Status, g.Value)
	}
	h.checkParityInvariant()
}

func TestKeepVersionsSurvivesCoordinatorFailure(t *testing.T) {
	// The heavy-updates story: reliable v1 retained while v2 lives in
	// the unreliable memgest; killing the coordinator loses v2 but the
	// recovered node still serves v1.
	spec := figure3Spec()
	spec.Opts.KeepVersions = 1
	h := newHarness(t, spec)

	h.put("hk", []byte("reliable"), mgSRS32)
	h.put("hk", []byte("volatile"), mgREP1)
	_, dead := h.coordinatorOf("hk")
	if dead == 0 {
		// Keep the leader alive for a simpler test; re-key if needed.
		for i := 0; ; i++ {
			key := fmt.Sprintf("hk-%d", i)
			if _, id := h.coordinatorOf(key); id != 0 {
				h.put(key, []byte("reliable"), mgSRS32)
				h.put(key, []byte("volatile"), mgREP1)
				dead = id
				h.kill(dead)
				for tick := 0; tick < 100; tick++ {
					h.tick(10 * time.Millisecond)
				}
				g := h.get(key)
				if g.Status != proto.StOK || !bytes.Equal(g.Value, []byte("reliable")) {
					t.Fatalf("after failover: %v %q (want the preserved reliable copy)", g.Status, g.Value)
				}
				return
			}
		}
	}
	h.kill(dead)
	for tick := 0; tick < 100; tick++ {
		h.tick(10 * time.Millisecond)
	}
	// The unreliable v2 died with the node; the newest surviving
	// version is the reliable v1.
	g := h.get("hk")
	if g.Status != proto.StOK || !bytes.Equal(g.Value, []byte("reliable")) || g.Version != 1 {
		t.Fatalf("after failover: %v %q v%d (want reliable v1)", g.Status, g.Value, g.Version)
	}
}

// TestParkedMove: a move requested while the key's highest version is
// still uncommitted must wait for durability, then run (Section 5.2:
// "the move request will also be postponed if the requested object is
// not durable").
func TestParkedMove(t *testing.T) {
	h := newHarness(t, figure3Spec())
	h.put("pmk", []byte("v1"), mgREP3)

	n, id := h.coordinatorOf("pmk")
	// Inject a put but hold back its replication traffic.
	outs := n.HandleMessage(h.now, "client/p", &proto.Put{Req: 40, Key: "pmk", Value: []byte("v2"), Memgest: mgREP3})
	var held []routedMsg
	for _, o := range outs {
		held = append(held, routedMsg{from: NodeAddr(id), to: o.To, msg: o.Msg})
	}
	// Move arrives while v2 is uncommitted: must produce no reply yet.
	outs = n.HandleMessage(h.now, "client/m", &proto.Move{Req: 41, Key: "pmk", Memgest: mgSRS32})
	if len(outs) != 0 {
		t.Fatalf("move of uncommitted version answered immediately: %v", outs)
	}
	// Release replication; the commit must trigger the parked move,
	// which itself commits into SRS32.
	h.queue = append(h.queue, held...)
	h.run()
	mr := h.lastReply("client/m").(*proto.MoveReply)
	if mr.Status != proto.StOK || mr.Version != 3 {
		t.Fatalf("parked move reply: %+v", mr)
	}
	g := h.get("pmk")
	if g.Status != proto.StOK || string(g.Value) != "v2" || g.Version != 3 {
		t.Fatalf("after parked move: %v %q v%d", g.Status, g.Value, g.Version)
	}
	// The value now lives in SRS32.
	shard := n.shardOf("pmk")
	ref, _ := n.volFor(shard).Highest("pmk")
	if ref.Memgest != mgSRS32 {
		t.Fatalf("key landed in memgest %d", ref.Memgest)
	}
	h.checkParityInvariant()
}

// TestMoveOfTombstoneIsNotFound: moving a deleted key fails cleanly.
func TestMoveOfTombstoneIsNotFound(t *testing.T) {
	h := newHarness(t, figure3Spec())
	h.put("tk", []byte("x"), mgREP1)
	h.del("tk")
	if r := h.move("tk", mgSRS32); r.Status != proto.StNotFound {
		t.Fatalf("move of tombstone: %v", r.Status)
	}
}
