package core

import (
	"sync"
	"testing"
	"time"

	"ring/internal/proto"
	"ring/internal/store"
	"ring/internal/testutil"
	"ring/internal/transport"
)

// TestFlushCoalescesPerDestination pins the coalescing contract of the
// runner's send path: one event's outputs to the same peer leave as a
// single packet, in order, while singletons stay plain envelopes.
func TestFlushCoalescesPerDestination(t *testing.T) {
	f := transport.NewMemFabric(0)
	a, err := f.Register("peer/a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Register("peer/b")
	if err != nil {
		t.Fatal(err)
	}
	self, err := f.Register("self")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{ep: self, node: New(0, &proto.Config{Epoch: 1}, Options{})}

	outs := []Out{
		{To: "peer/a", Msg: &proto.RepCommit{Memgest: 1, Shard: 0, Seq: 7}},
		{To: "peer/b", Msg: &proto.Heartbeat{Epoch: 3}},
		{To: "peer/a", Msg: &proto.Purge{Memgest: 1, Shard: 0, Key: "k", Version: 1}},
		{To: "peer/a", Msg: &proto.RepCommit{Memgest: 1, Shard: 0, Seq: 8}},
	}
	r.flush(outs)
	for i, o := range outs {
		if o != (Out{}) {
			t.Errorf("outs[%d] not cleared after flush: %+v", i, o)
		}
	}

	// Sentinels: if flush had emitted more than one packet per peer,
	// the extra packet would arrive before the sentinel.
	if err := self.Send("peer/a", proto.Encode(&proto.Tick{})); err != nil {
		t.Fatal(err)
	}
	if err := self.Send("peer/b", proto.Encode(&proto.Tick{})); err != nil {
		t.Fatal(err)
	}

	pa, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !proto.IsBatch(pa.Payload) {
		t.Fatalf("3 messages to peer/a should arrive as one TBatch packet, got type %d", pa.Payload[0])
	}
	var got []proto.Message
	if err := proto.ForEachPacked(pa.Payload, func(enc []byte) error {
		m, err := proto.Decode(enc)
		if err != nil {
			return err
		}
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("peer/a batch carries %d messages, want 3", len(got))
	}
	if c, ok := got[0].(*proto.RepCommit); !ok || c.Seq != 7 {
		t.Fatalf("batch[0] = %#v, want RepCommit seq 7", got[0])
	}
	if p, ok := got[1].(*proto.Purge); !ok || p.Key != "k" {
		t.Fatalf("batch[1] = %#v, want Purge k", got[1])
	}
	if c, ok := got[2].(*proto.RepCommit); !ok || c.Seq != 8 {
		t.Fatalf("batch[2] = %#v, want RepCommit seq 8", got[2])
	}
	if p, err := a.Recv(); err != nil {
		t.Fatal(err)
	} else if m, _ := proto.Decode(p.Payload); m == nil {
		t.Fatalf("sentinel did not decode")
	} else if _, ok := m.(*proto.Tick); !ok {
		t.Fatalf("extra packet to peer/a before sentinel: %#v", m)
	}

	pb, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if proto.IsBatch(pb.Payload) {
		t.Fatal("single message to peer/b must stay a plain envelope")
	}
	if m, _ := proto.Decode(pb.Payload); m == nil {
		t.Fatal("peer/b packet did not decode")
	} else if h, ok := m.(*proto.Heartbeat); !ok || h.Epoch != 3 {
		t.Fatalf("peer/b got %#v", m)
	}
}

// packetCounter taps every fabric send without dropping anything.
type packetCounter struct {
	mu     sync.Mutex
	counts map[[2]string]int
}

func (pc *packetCounter) tap(from, to string) bool {
	pc.mu.Lock()
	pc.counts[[2]string{from, to}]++
	pc.mu.Unlock()
	return false
}

func (pc *packetCounter) get(from, to string) int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.counts[[2]string{from, to}]
}

// TestFanoutOnePacketPerPeerPerEvent verifies end to end, by counting
// memnet packets, that a coordinator's write fan-out costs one
// transport send per destination peer per event: the append/update
// event is one packet per redundancy node, and the commit event —
// which carries both the RepCommit and the Purge of the superseded
// version to the same peer — is one more.
func TestFanoutOnePacketPerPeerPerEvent(t *testing.T) {
	for _, tc := range []struct {
		name string
		mg   proto.MemgestID
	}{
		{"REP3", 1},
		{"SRS32", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := ClusterSpec{
				Shards: 3, Redundant: 2,
				Memgests: []proto.Scheme{proto.Rep(3, 3), proto.SRS(3, 2, 3)},
				// Quiesce all timer traffic: the only packets during the
				// measurement window come from the puts themselves.
				Opts:      Options{BlockSize: 64 << 10, HeartbeatEvery: time.Minute, FailAfter: 10 * time.Minute},
				TickEvery: time.Minute,
			}
			cl, err := StartCluster(spec)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			ep, err := cl.Fabric.Register("client/t")
			if err != nil {
				t.Fatal(err)
			}
			defer ep.Close()

			key := "fanout-key"
			coord := NodeAddr(cl.Cfg.CoordinatorOf(store.KeyHash(key)))
			put := func(req proto.ReqID) {
				t.Helper()
				msg := &proto.Put{Req: req, Key: key, Value: make([]byte, 512), Memgest: tc.mg}
				if err := ep.Send(coord, proto.Encode(msg)); err != nil {
					t.Fatal(err)
				}
				for {
					p, err := ep.Recv()
					if err != nil {
						t.Fatal(err)
					}
					var done bool
					_ = proto.ForEachPacked(p.Payload, func(enc []byte) error {
						if m, err := proto.Decode(enc); err == nil {
							if r, ok := m.(*proto.PutReply); ok && r.Req == req {
								if r.Status != proto.StOK {
									t.Fatalf("put: %v", r.Status)
								}
								done = true
							}
						}
						return nil
					})
					if done {
						return
					}
				}
			}

			put(1) // version 1 commits; nothing to purge yet

			pc := &packetCounter{counts: make(map[[2]string]int)}
			cl.Fabric.SetDropFunc(pc.tap)
			put(2) // overwrite: append event + commit event (commit+purge)
			// The client reply is flushed before the commit-event packets
			// to the redundancy peers; poll until they land instead of
			// guessing a fixed delay. A timeout falls through to the
			// exact-count assertions below, which report the shortfall.
			testutil.Eventually(5*time.Second, time.Millisecond, func() bool {
				return pc.get(coord, NodeAddr(3)) >= 2 && pc.get(coord, NodeAddr(4)) >= 2
			})
			cl.Fabric.SetDropFunc(nil)

			for _, peer := range []proto.NodeID{3, 4} {
				got := pc.get(coord, NodeAddr(peer))
				if got != 2 {
					t.Errorf("%s -> %s: %d packets for one overwrite put, want 2 (append event + coalesced commit event)",
						coord, NodeAddr(peer), got)
				}
			}
		})
	}
}
