package transport

import "testing"

// TestSendCountersMove checks the transport instruments track sends,
// drops, and failures on the memnet fabric. Counters are process-wide,
// so assertions are on deltas.
func TestSendCountersMove(t *testing.T) {
	f := NewMemFabric(0)
	a, err := f.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	pkts0 := Metrics.PacketsSent.Load()
	bytes0 := Metrics.BytesSent.Load()
	recv0 := Metrics.PacketsRecv.Load()
	drops0 := Metrics.Drops.Load()
	errs0 := Metrics.SendErrors.Load()

	payload := []byte("hello-metrics")
	if err := a.Send("b", append([]byte(nil), payload...)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := Metrics.PacketsSent.Load() - pkts0; got != 1 {
		t.Fatalf("packets sent delta = %d", got)
	}
	if got := Metrics.BytesSent.Load() - bytes0; got != uint64(len(payload)) {
		t.Fatalf("bytes sent delta = %d", got)
	}
	if got := Metrics.PacketsRecv.Load() - recv0; got != 1 {
		t.Fatalf("packets recv delta = %d", got)
	}

	// An injected drop counts as a drop, not a send.
	f.SetDropFunc(func(from, to string) bool { return true })
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	f.SetDropFunc(nil)
	if got := Metrics.Drops.Load() - drops0; got != 1 {
		t.Fatalf("drops delta = %d", got)
	}
	if got := Metrics.PacketsSent.Load() - pkts0; got != 1 {
		t.Fatalf("dropped packet counted as sent: delta = %d", got)
	}

	// Unknown peers count as send errors.
	if err := a.Send("nobody", []byte("x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
	if got := Metrics.SendErrors.Load() - errs0; got != 1 {
		t.Fatalf("send errors delta = %d", got)
	}
	if got := Metrics.InboxHighWater.Load(); got < 1 {
		t.Fatalf("inbox high water = %d", got)
	}
}
