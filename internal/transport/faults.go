package transport

import "time"

// FaultAction describes what a fabric does with one in-flight packet.
// The zero value delivers the packet normally.
type FaultAction struct {
	// Drop loses the packet silently, like a datagram on a congested
	// link. Drop wins over Delay and Duplicate.
	Drop bool
	// Delay holds the packet back before delivery (reordering it past
	// packets sent later).
	Delay time.Duration
	// Duplicate delivers one extra copy of the packet immediately, in
	// addition to the (possibly delayed) original.
	Duplicate bool
}

// FaultFunc inspects an in-flight packet and decides its fate. It runs
// on the sender's goroutine under no fabric locks; implementations
// must be safe for concurrent calls. It generalizes the older boolean
// drop predicate (SetDropFunc) with delay and duplication — the same
// fault plane the deterministic simulator exposes (sim.FaultFunc), so
// a nemesis schedule's message faults can be mirrored against the real
// transports in integration tests.
type FaultFunc func(from, to string, size int) FaultAction

// FaultInjector is implemented by fabrics that support fault
// injection.
type FaultInjector interface {
	// SetFaultFunc installs the hook (nil disables).
	SetFaultFunc(FaultFunc)
}

var (
	_ FaultInjector = (*MemFabric)(nil)
	_ FaultInjector = (*TCPFabric)(nil)
)
